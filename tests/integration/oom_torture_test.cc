/**
 * @file
 * OOM torture: real workloads (threadtest, larson) driven over
 * fault-injecting and hard-budget page providers, under both the
 * native and the simulated execution policy.  The allocator must
 * never crash, must keep its emptiness invariants through every
 * injected failure, and must hand back every byte at teardown.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>

#include "baselines/ownership_allocator.h"
#include "baselines/pure_private_allocator.h"
#include "baselines/serial_allocator.h"
#include "core/hoard_allocator.h"
#include "os/fault_injection.h"
#include "policy/native_policy.h"
#include "policy/sim_policy.h"
#include "sim/machine.h"
#include "workloads/larson.h"
#include "workloads/runners.h"
#include "workloads/threadtest.h"

namespace hoard {
namespace {

using NativeHoard = HoardAllocator<NativePolicy>;
using SimHoard = HoardAllocator<SimPolicy>;

workloads::ThreadtestParams
small_threadtest()
{
    workloads::ThreadtestParams params;
    params.nthreads = 4;
    params.iterations = 6;
    params.total_objects = 8000;
    params.object_bytes = 8;
    return params;
}

workloads::LarsonParams
small_larson()
{
    workloads::LarsonParams params;
    params.nthreads = 4;
    params.slots_per_thread = 200;
    params.rounds_per_epoch = 400;
    params.epochs = 2;
    return params;
}

TEST(OomTorture, NativeThreadtestUnderFailEveryK)
{
    os::MmapPageProvider inner;
    os::FaultInjectingPageProvider provider(inner);
    provider.fail_every_kth_map(3);
    Config config;
    config.heap_count = 4;
    {
        NativeHoard allocator(config, provider);
        workloads::ThreadtestParams params = small_threadtest();
        workloads::native_run(params.nthreads, [&](int tid) {
            workloads::threadtest_thread<NativePolicy>(allocator, params,
                                                       tid);
        });
        allocator.flush_thread_caches();
        EXPECT_TRUE(allocator.check_invariants());
        EXPECT_EQ(allocator.stats().in_use_bytes.current(), 0u);
    }
    // Teardown returned every byte to the OS despite the failures.
    EXPECT_EQ(provider.mapped_bytes(), 0u);
    EXPECT_EQ(inner.mapped_bytes(), 0u);
    EXPECT_GT(provider.injected_failures(), 0u);
}

TEST(OomTorture, NativeLarsonUnderShrinkingBudget)
{
    os::MmapPageProvider inner;
    os::CappedPageProvider provider(inner, 1u << 20);
    Config config;
    config.heap_count = 4;
    {
        NativeHoard allocator(config, provider);
        workloads::LarsonParams params = small_larson();
        // Memory pressure mounts between generations: the ceiling drops
        // from comfortable to far below the workload's live set.
        const std::size_t budgets[] = {1u << 20, 256u * 1024, 64u * 1024,
                                       16u * 1024};
        for (std::size_t budget : budgets) {
            provider.set_budget(budget);
            // React to the pressure notification the way a server
            // would: trim, then run the next generation under the
            // tighter ceiling (forcing fresh maps against it).
            allocator.release_free_memory();
            workloads::native_run(params.nthreads, [&](int tid) {
                workloads::larson_thread<NativePolicy>(allocator, params,
                                                       tid);
            });
            allocator.flush_thread_caches();
            EXPECT_TRUE(allocator.check_invariants());
            EXPECT_EQ(allocator.stats().in_use_bytes.current(), 0u);
        }
        // The tight rounds forced real rejections and real reclaims.
        EXPECT_GT(provider.budget_rejections(), 0u);
        EXPECT_GT(allocator.stats().oom_reclaims.get(), 0u);
    }
    EXPECT_EQ(provider.mapped_bytes(), 0u);
    EXPECT_EQ(inner.mapped_bytes(), 0u);
}

TEST(OomTorture, SimThreadtestUnderFailEveryKIsDeterministic)
{
    auto run_once = [] {
        os::MmapPageProvider inner;
        os::FaultInjectingPageProvider provider(inner);
        provider.fail_every_kth_map(3);
        Config config;
        config.heap_count = 4;
        std::uint64_t makespan = 0;
        {
            SimHoard allocator(config, provider);
            workloads::ThreadtestParams params = small_threadtest();
            params.iterations = 3;
            params.total_objects = 4000;
            makespan = workloads::sim_run(
                4, params.nthreads, [&](int tid) {
                    workloads::threadtest_thread<SimPolicy>(allocator,
                                                            params, tid);
                });
            // Flushing and invariant checks lock VirtualMutexes, so
            // they must run on a machine.
            sim::Machine quiesce(1);
            quiesce.spawn(0, 0, [&allocator] {
                allocator.flush_thread_caches();
                EXPECT_TRUE(allocator.check_invariants());
            });
            quiesce.run();
            EXPECT_EQ(allocator.stats().in_use_bytes.current(), 0u);
        }
        EXPECT_EQ(provider.mapped_bytes(), 0u);
        EXPECT_GT(provider.injected_failures(), 0u);
        return makespan;
    };
    std::uint64_t first = run_once();
    EXPECT_GT(first, 0u);
    // Virtual time plus a deterministic schedule: bit-equal reruns.
    EXPECT_EQ(first, run_once());
}

TEST(OomTorture, SimLarsonUnderHardBudget)
{
    os::MmapPageProvider inner;
    // Twelve superblocks for a workload that wants several dozen.
    os::CappedPageProvider provider(inner, 96u * 1024);
    Config config;
    config.heap_count = 4;
    {
        SimHoard allocator(config, provider);
        workloads::LarsonParams params = small_larson();
        params.slots_per_thread = 150;
        params.rounds_per_epoch = 300;
        std::uint64_t makespan = workloads::sim_run(
            4, params.nthreads, [&](int tid) {
                workloads::larson_thread<SimPolicy>(allocator, params, tid);
            });
        EXPECT_GT(makespan, 0u);
        sim::Machine quiesce(1);
        quiesce.spawn(0, 0, [&allocator] {
            allocator.flush_thread_caches();
            EXPECT_TRUE(allocator.check_invariants());
        });
        quiesce.run();
        EXPECT_EQ(allocator.stats().in_use_bytes.current(), 0u);
        EXPECT_GT(provider.budget_rejections(), 0u);
        EXPECT_GT(allocator.stats().oom_reclaims.get(), 0u);
    }
    EXPECT_EQ(provider.mapped_bytes(), 0u);
}

TEST(OomTorture, BaselinesSurviveFailEveryK)
{
    Config config;
    config.heap_count = 4;
    workloads::ThreadtestParams params = small_threadtest();
    params.iterations = 3;

    auto torture = [&](auto make_allocator) {
        os::MmapPageProvider inner;
        os::FaultInjectingPageProvider provider(inner);
        provider.fail_every_kth_map(2);
        {
            auto allocator = make_allocator(provider);
            workloads::native_run(params.nthreads, [&](int tid) {
                workloads::threadtest_thread<NativePolicy>(*allocator,
                                                           params, tid);
            });
            EXPECT_EQ(allocator->stats().in_use_bytes.current(), 0u);
        }
        EXPECT_EQ(provider.mapped_bytes(), 0u);
        EXPECT_GT(provider.injected_failures(), 0u);
    };

    torture([&](os::PageProvider& p) {
        return std::make_unique<baselines::SerialAllocator<NativePolicy>>(
            config, p);
    });
    torture([&](os::PageProvider& p) {
        return std::make_unique<
            baselines::PurePrivateAllocator<NativePolicy>>(config, p);
    });
    torture([&](os::PageProvider& p) {
        return std::make_unique<
            baselines::OwnershipAllocator<NativePolicy>>(config, p);
    });
}

}  // namespace
}  // namespace hoard
