/**
 * @file
 * The background engine in both execution worlds.
 *
 * Native: a live worker thread refills bins, settles remote queues,
 * and pre-commits spans *while* producer/consumer pairs hammer the
 * allocator — then the quiesced snapshot must reconcile byte-exactly
 * and every remote push must have been drained.  The engine must
 * never perturb the accounting, only move where the work happens.
 *
 * Sim: the worker is a deterministic fiber (bg_worker_sim) scheduled
 * by the machine like any workload fiber; running the identical
 * configuration twice must produce byte-identical results — makespan,
 * every counter, every gauge — or replay debugging is dead.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/hoard_allocator.h"
#include "os/reserved_arena.h"
#include "policy/native_policy.h"
#include "policy/sim_policy.h"
#include "sim/machine.h"
#include "workloads/runners.h"

namespace hoard {
namespace {

using NativeHoard = HoardAllocator<NativePolicy>;
using SimHoard = HoardAllocator<SimPolicy>;

/** One producer/consumer handoff slot. */
struct Mailbox
{
    std::atomic<void**> batch{nullptr};
};

constexpr int kRounds = 200;
constexpr int kBatch = 32;
constexpr std::size_t kBytes = 64;

/** Producer fiber/thread body: fills batches, hands them over. */
template <typename Policy>
void
produce(Allocator& allocator, Mailbox& box, void** storage, int tid,
        int rounds)
{
    Policy::rebind_thread_index(tid);
    for (int round = 0; round < rounds; ++round) {
        void** batch = storage + (round % 2) * kBatch;
        for (int i = 0; i < kBatch; ++i)
            batch[i] = allocator.allocate(kBytes);
        while (box.batch.load(std::memory_order_acquire) != nullptr)
            Policy::work(CostKind::list_op);
        box.batch.store(batch, std::memory_order_release);
    }
    while (box.batch.load(std::memory_order_acquire) != nullptr)
        Policy::work(CostKind::list_op);
}

/** Consumer body: every free is cross-thread. */
template <typename Policy>
void
consume(Allocator& allocator, Mailbox& box, int tid, int rounds)
{
    Policy::rebind_thread_index(tid);
    for (int round = 0; round < rounds; ++round) {
        void** batch;
        while ((batch = box.batch.load(std::memory_order_acquire)) ==
               nullptr)
            Policy::work(CostKind::list_op);
        for (int i = 0; i < kBatch; ++i)
            allocator.deallocate(batch[i]);
        box.batch.store(nullptr, std::memory_order_release);
    }
}

TEST(BackgroundWorld, NativeWorkerPreservesExactAccounting)
{
    Config config;
    config.heap_count = 4;
    config.background_engine = true;
    config.bg_interval_ticks = 100000;  // pass every 0.1 ms
    config.bg_drain_threshold = 4;      // settle eagerly
    NativeHoard allocator(config);
    allocator.start_background();
    ASSERT_TRUE(allocator.background_running());

    const int pairs = 2;
    std::vector<Mailbox> boxes(pairs);
    std::vector<std::vector<void*>> storage(
        pairs, std::vector<void*>(2 * kBatch));
    workloads::native_run(2 * pairs, [&](int tid) {
        auto pair = static_cast<std::size_t>(tid / 2);
        if (tid % 2 == 0)
            produce<NativePolicy>(allocator, boxes[pair],
                                  storage[pair].data(), tid, kRounds);
        else
            consume<NativePolicy>(allocator, boxes[pair], tid, kRounds);
    });

    allocator.stop_background();
    EXPECT_FALSE(allocator.background_running());
    EXPECT_GT(allocator.background_passes(), 0u);

    // The quiesced snapshot drains what the worker had not reached
    // yet; after it, every remote push is accounted as drained and
    // the gauges reconcile to the byte.
    obs::AllocatorSnapshot snap = allocator.take_snapshot();
    EXPECT_TRUE(snap.reconciles());
    EXPECT_TRUE(snap.all_heaps_satisfy_invariant());
    EXPECT_EQ(allocator.stats().remote_frees.get(),
              allocator.stats().remote_drains.get());
    EXPECT_EQ(allocator.stats().in_use_bytes.current(), 0u);
    EXPECT_TRUE(allocator.check_invariants());
}

/** Everything that must match between two identical sim runs. */
struct SimDigest
{
    std::uint64_t makespan = 0;
    std::uint64_t allocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t remote_frees = 0;
    std::uint64_t remote_drains = 0;
    std::uint64_t bg_wakeups = 0;
    std::uint64_t bg_refills = 0;
    std::uint64_t bg_drains = 0;
    std::uint64_t bg_precommits = 0;
    std::uint64_t in_use = 0;
    std::uint64_t held = 0;
    std::uint64_t committed = 0;
    bool reconciles = false;

    bool
    operator==(const SimDigest& other) const
    {
        return makespan == other.makespan && allocs == other.allocs &&
               frees == other.frees &&
               remote_frees == other.remote_frees &&
               remote_drains == other.remote_drains &&
               bg_wakeups == other.bg_wakeups &&
               bg_refills == other.bg_refills &&
               bg_drains == other.bg_drains &&
               bg_precommits == other.bg_precommits &&
               in_use == other.in_use && held == other.held &&
               committed == other.committed &&
               reconciles == other.reconciles;
    }
};

SimDigest
run_sim_once()
{
    Config config;
    config.heap_count = 2;
    config.background_engine = true;
    config.bg_drain_threshold = 4;
    // A private provider per run: the process-global one stays warm
    // (prewarm counts only cold->RW transitions), so byte-identical
    // replay needs both runs to start from the same cold arena.
    os::ReservedArenaProvider provider;
    SimHoard allocator(config, provider);

    Mailbox box;
    std::vector<void*> storage(2 * kBatch);

    // Two workload fibers plus the worker fiber on a third processor.
    sim::Machine machine(3);
    machine.spawn(0, 0, [&] {
        produce<SimPolicy>(allocator, box, storage.data(), 0, kRounds);
    });
    machine.spawn(1, 1, [&] {
        consume<SimPolicy>(allocator, box, 1, kRounds);
    });
    machine.spawn(2, 2, [&allocator] {
        SimPolicy::rebind_thread_index(2);
        allocator.bg_worker_sim(400);
    });

    SimDigest digest;
    digest.makespan = machine.run();

    obs::AllocatorSnapshot snap;
    sim::Machine checker(1);
    checker.spawn(0, 0,
                  [&allocator, &snap] { snap = allocator.take_snapshot(); });
    checker.run();

    digest.allocs = snap.stats.allocs;
    digest.frees = snap.stats.frees;
    digest.remote_frees = snap.stats.remote_frees;
    digest.remote_drains = snap.stats.remote_drains;
    digest.bg_wakeups = snap.stats.bg_wakeups;
    digest.bg_refills = snap.stats.bg_refills;
    digest.bg_drains = snap.stats.bg_drains;
    digest.bg_precommits = snap.stats.bg_precommits;
    digest.in_use = snap.stats.in_use_bytes;
    digest.held = snap.stats.held_bytes;
    digest.committed = snap.stats.committed_bytes;
    digest.reconciles = snap.reconciles();
    return digest;
}

TEST(BackgroundWorld, SimReplayByteIdenticalWithWorkerFiber)
{
    SimDigest first = run_sim_once();
    SimDigest second = run_sim_once();

    // The worker fiber did real work deterministically...
    EXPECT_EQ(first.bg_wakeups, 400u);
    EXPECT_TRUE(first.reconciles);
    EXPECT_EQ(first.remote_frees, first.remote_drains);
    // ...and an identical second run lands on identical bytes.
    EXPECT_TRUE(first == second)
        << "sim replay diverged with the worker fiber scheduled:"
        << " makespan " << first.makespan << " vs " << second.makespan
        << ", bg_refills " << first.bg_refills << " vs "
        << second.bg_refills << ", bg_drains " << first.bg_drains
        << " vs " << second.bg_drains;
}

}  // namespace
}  // namespace hoard
