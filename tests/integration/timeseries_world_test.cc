/**
 * @file
 * End-to-end time-series sampler test: run a multithreaded workload
 * with sampling enabled, then check that
 *
 *  - retained sample timestamps are monotone nondecreasing policy
 *    time,
 *  - the ring overwrites oldest-first and accounts for every drop,
 *  - a forced quiesced sample reconciles exactly with take_snapshot()
 *    (global gauges and per-heap u_i/a_i),
 *  - the timeline exports as valid JSONL,
 *
 * under both execution worlds (native threads and the virtual-time
 * simulator).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/hoard_allocator.h"
#include "metrics/json_value.h"
#include "obs/gating.h"
#include "obs/timeseries.h"
#include "obs/trace_export.h"
#include "policy/native_policy.h"
#include "policy/sim_policy.h"
#include "sim/machine.h"
#include "tests/common/json_check.h"
#include "workloads/larson.h"
#include "workloads/runners.h"

namespace hoard {
namespace {

workloads::LarsonParams
small_larson(int nthreads)
{
    workloads::LarsonParams params;
    params.nthreads = nthreads;
    params.slots_per_thread = 300;
    params.rounds_per_epoch = 800;
    params.epochs = 3;
    return params;
}

/** Checks the post-run invariants shared by both worlds. */
template <typename Policy>
void
check_quiesced(HoardAllocator<Policy>& allocator,
               const obs::AllocatorSnapshot& snap)
{
    const obs::TimeSeriesSampler* sampler = allocator.sampler();
    ASSERT_NE(sampler, nullptr);
    EXPECT_GT(sampler->total_samples(), 0u);

    std::vector<obs::TimeSample> samples = sampler->collect();
    ASSERT_FALSE(samples.empty());

    // Policy-time timestamps never go backwards in the retained
    // window, even across the overwrite boundary.
    for (std::size_t i = 1; i < samples.size(); ++i)
        EXPECT_GE(samples[i].timestamp, samples[i - 1].timestamp);

    // The ring retains at most its capacity and accounts for every
    // overwritten sample.
    EXPECT_LE(samples.size(), sampler->capacity());
    EXPECT_EQ(sampler->dropped(),
              sampler->total_samples() > sampler->capacity()
                  ? sampler->total_samples() - sampler->capacity()
                  : 0u);

    // The forced sample ran quiesced, so it must agree exactly with
    // the snapshot: global gauges and every heap's u_i/a_i.
    const obs::TimeSample& last = samples.back();
    EXPECT_EQ(last.in_use, snap.stats.in_use_bytes);
    EXPECT_EQ(last.held, snap.stats.held_bytes);
    EXPECT_EQ(last.cached_bytes, snap.cached_bytes);
    ASSERT_EQ(last.heaps.size(), snap.heaps.size());
    for (std::size_t h = 0; h < snap.heaps.size(); ++h) {
        EXPECT_EQ(last.heaps[h].in_use, snap.heaps[h].in_use) << h;
        EXPECT_EQ(last.heaps[h].held, snap.heaps[h].held) << h;
    }

    // The workload allocated and freed; the cumulative counters in the
    // final sample saw it.
    EXPECT_GT(last.allocs, 0u);
    EXPECT_GT(last.frees, 0u);

    // Every JSONL line is one valid JSON document with the schema tag
    // and a heap array matching the allocator's shape.
    std::ostringstream os;
    obs::write_timeseries_jsonl(os, *sampler);
    std::istringstream lines(os.str());
    std::string line;
    std::size_t count = 0;
    while (std::getline(lines, line)) {
        ++count;
        ASSERT_TRUE(testutil::json_valid(line)) << line;
        metrics::JsonValue doc = metrics::JsonValue::parse(line);
        EXPECT_EQ(doc.string_or("schema", ""), "hoard-timeline-v5");
        const metrics::JsonValue* heaps = doc.find("heaps");
        ASSERT_NE(heaps, nullptr);
        EXPECT_EQ(heaps->items().size(), snap.heaps.size());
    }
    EXPECT_EQ(count, samples.size());
}

TEST(TimeseriesWorld, NativeLarsonRun)
{
    if (!obs::kCompiledIn)
        GTEST_SKIP() << "observability compiled out (HOARD_OBS=OFF)";

    constexpr int kThreads = 4;
    Config config;
    config.heap_count = kThreads;
    config.observability = true;
    config.obs_sample_interval = 1;  // sample at every cadence check
    config.obs_sample_slots = 8;     // small: force overwrites
    HoardAllocator<NativePolicy> allocator(config);
    ASSERT_NE(allocator.sampler(), nullptr);

    workloads::LarsonParams params = small_larson(kThreads);
    workloads::native_run(kThreads, [&allocator, &params](int tid) {
        workloads::larson_thread<NativePolicy>(allocator, params, tid);
    });

    ASSERT_TRUE(allocator.sample_now());
    obs::AllocatorSnapshot snap = allocator.take_snapshot();
    EXPECT_TRUE(snap.reconciles());
    check_quiesced(allocator, snap);

    // interval=1 with a multi-epoch workload overruns 64 slots; the
    // overwrite path (not just the happy path) was exercised.
    EXPECT_GT(allocator.sampler()->dropped(), 0u);
}

TEST(TimeseriesWorld, SimLarsonRun)
{
    if (!obs::kCompiledIn)
        GTEST_SKIP() << "observability compiled out (HOARD_OBS=OFF)";

    constexpr int kThreads = 4;
    Config config;
    config.heap_count = kThreads;
    config.observability = true;
    config.obs_sample_interval = 1000;  // virtual cycles
    config.obs_sample_slots = 64;
    HoardAllocator<SimPolicy> allocator(config);
    ASSERT_NE(allocator.sampler(), nullptr);

    workloads::LarsonParams params = small_larson(kThreads);
    params.rounds_per_epoch = 400;  // virtual time is serial; keep short
    std::uint64_t makespan = workloads::sim_run(
        kThreads, kThreads, [&allocator, &params](int tid) {
            workloads::larson_thread<SimPolicy>(allocator, params, tid);
        });
    EXPECT_GT(makespan, 0u);

    // Sampling and snapshotting take virtual mutexes, so both run on a
    // fresh one-processor checker machine.  Its clock restarts at
    // zero; sample_now() must still stamp the flush at or after the
    // last in-run sample.
    obs::AllocatorSnapshot snap;
    bool sampled = false;
    sim::Machine checker(1);
    checker.spawn(0, 0, [&allocator, &snap, &sampled] {
        sampled = allocator.sample_now();
        snap = allocator.take_snapshot();
    });
    checker.run();
    ASSERT_TRUE(sampled);
    EXPECT_TRUE(snap.reconciles());

    check_quiesced(allocator, snap);

    // In-run samples carry virtual-cycle timestamps within the
    // makespan (the flush is clamped to the last in-run stamp, so it
    // obeys the same bound).
    for (const obs::TimeSample& s : allocator.sampler()->collect())
        EXPECT_LE(s.timestamp, makespan);
}

}  // namespace
}  // namespace hoard
