/**
 * @file
 * Whole-process integration: this binary replaces the global operator
 * new/delete with Hoard (core/global_new.h), so gtest, the standard
 * library, and everything below run on the reproduction allocator.
 * The tests then exercise heavy C++ allocation and verify the global
 * instance's books.
 */

#define HOARD_REPLACE_GLOBAL_NEW
#include "core/global_new.h"

#include <gtest/gtest.h>

#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

namespace hoard {
namespace {

/**
 * A request no machine can satisfy, loaded through a volatile so the
 * compiler cannot see the constant (and cannot warn about it).
 */
std::size_t
impossible_size()
{
    static volatile std::size_t huge =
        std::numeric_limits<std::size_t>::max() / 2;
    return huge;
}

int g_handler_calls = 0;

/** new_handler that gives up (uninstalls itself) after three calls. */
void
counting_handler()
{
    ++g_handler_calls;
    if (g_handler_calls >= 3)
        std::set_new_handler(nullptr);
}

TEST(GlobalNew, OperatorNewGoesThroughHoard)
{
    std::uint64_t before = hoard_stats().allocs.get();
    auto* x = new int(42);
    EXPECT_EQ(*x, 42);
    delete x;
    EXPECT_GT(hoard_stats().allocs.get(), before);
}

TEST(GlobalNew, ArrayForms)
{
    auto* xs = new double[1000];
    for (int i = 0; i < 1000; ++i)
        xs[i] = i * 0.25;
    EXPECT_DOUBLE_EQ(xs[999], 249.75);
    delete[] xs;
}

TEST(GlobalNew, NothrowForm)
{
    int* p = new (std::nothrow) int[64];
    ASSERT_NE(p, nullptr);
    delete[] p;
}

TEST(GlobalNew, OverAlignedTypes)
{
    struct alignas(128) Wide
    {
        char data[256];
    };
    auto* w = new Wide();
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w) % 128, 0u);
    delete w;

    auto* ws = new Wide[4];
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(ws) % 128, 0u);
    delete[] ws;
}

TEST(GlobalNew, ContainersWorkAtScale)
{
    std::map<std::string, std::vector<int>> table;
    for (int i = 0; i < 2000; ++i) {
        std::string key = "key-" + std::to_string(i % 97);
        table[key].push_back(i);
    }
    EXPECT_EQ(table.size(), 97u);
    std::deque<std::string> q;
    for (int i = 0; i < 5000; ++i)
        q.push_back(std::string(static_cast<std::size_t>(i % 200), 'x'));
    EXPECT_EQ(q.size(), 5000u);
}

TEST(GlobalNew, SmartPointersAndThreads)
{
    std::vector<std::thread> threads;
    std::vector<std::shared_ptr<std::string>> results(8);
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&results, t] {
            auto local = std::make_unique<std::vector<int>>();
            for (int i = 0; i < 20000; ++i)
                local->push_back(i);
            results[static_cast<std::size_t>(t)] =
                std::make_shared<std::string>(
                    "thread " + std::to_string(t) + " ok, sum tail " +
                    std::to_string(local->back()));
        });
    }
    for (auto& t : threads)
        t.join();
    for (auto& r : results) {
        ASSERT_NE(r, nullptr);
        EXPECT_NE(r->find("ok"), std::string::npos);
    }
}

TEST(GlobalNew, NothrowExhaustionReturnsNull)
{
    std::uint64_t allocs = hoard_stats().allocs.get();
    EXPECT_EQ(operator new(impossible_size(), std::nothrow), nullptr);
    EXPECT_EQ(operator new[](impossible_size(), std::nothrow), nullptr);
    EXPECT_EQ(operator new(impossible_size(), std::align_val_t{256},
                           std::nothrow),
              nullptr);
    // The failed attempts recorded nothing and corrupted nothing.
    EXPECT_EQ(hoard_stats().allocs.get(), allocs);
    EXPECT_TRUE(global_allocator().check_invariants());
}

TEST(GlobalNew, NewHandlerIsConsultedBeforeThrowing)
{
    // The throwing forms must loop through std::get_new_handler: call
    // it on failure, retry, and only throw once the handler is gone.
    g_handler_calls = 0;
    std::new_handler old = std::set_new_handler(counting_handler);
    EXPECT_THROW(operator new(impossible_size()), std::bad_alloc);
    EXPECT_EQ(g_handler_calls, 3);

    g_handler_calls = 0;
    std::set_new_handler(counting_handler);
    EXPECT_THROW(operator new(impossible_size(), std::align_val_t{128}),
                 std::bad_alloc);
    EXPECT_EQ(g_handler_calls, 3);

    std::set_new_handler(old);
    EXPECT_TRUE(global_allocator().check_invariants());
}

TEST(GlobalNew, AllocatorBooksStayConsistent)
{
    // Everything this whole binary did so far ran on Hoard; the global
    // instance must still satisfy its invariants.
    EXPECT_TRUE(global_allocator().check_invariants());
    EXPECT_GE(hoard_stats().allocs.get(), hoard_stats().frees.get());
    EXPECT_GT(hoard_stats().held_bytes.peak(), 0u);
}

}  // namespace
}  // namespace hoard
