/**
 * @file
 * Trace replay under the simulator, and N-thread virtual-mutex and
 * facade concurrency stress — the remaining cross-module seams.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <vector>

#include "core/facade.h"
#include "core/hoard_allocator.h"
#include "policy/sim_policy.h"
#include "sim/machine.h"
#include "sim/virtual_mutex.h"
#include "workloads/runners.h"
#include "workloads/synthetic.h"
#include "workloads/trace.h"

namespace hoard {
namespace {

TEST(SimReplay, SyntheticTraceReplaysUnderSim)
{
    workloads::SyntheticParams params;
    params.operations = 3000;
    params.cross_thread_free_fraction = 0.25;
    workloads::Trace trace =
        workloads::generate_synthetic_trace(params);

    HoardAllocator<SimPolicy> allocator{Config{}};
    workloads::ReplayResult result;
    sim::Machine machine(1);
    machine.spawn(0, 0, [&] {
        result = workloads::replay<SimPolicy>(allocator, trace);
    });
    std::uint64_t makespan = machine.run();

    EXPECT_EQ(result.allocs, 3000u);
    EXPECT_GT(makespan, 0u);
    EXPECT_EQ(allocator.stats().in_use_bytes.current(), 0u);
}

TEST(SimReplay, SimAndNativeReplayAgreeOnMemory)
{
    // Footprint is a pure function of the operation sequence, so the
    // two execution worlds must land on identical byte counts.
    workloads::SyntheticParams params;
    params.operations = 2500;
    workloads::Trace trace =
        workloads::generate_synthetic_trace(params);

    HoardAllocator<NativePolicy> native{Config{}};
    auto native_result = workloads::replay<NativePolicy>(native, trace);

    HoardAllocator<SimPolicy> simulated{Config{}};
    workloads::ReplayResult sim_result;
    sim::Machine machine(1);
    machine.spawn(0, 0, [&] {
        sim_result = workloads::replay<SimPolicy>(simulated, trace);
    });
    machine.run();

    EXPECT_EQ(native_result.peak_held_bytes,
              sim_result.peak_held_bytes);
    EXPECT_EQ(native_result.peak_in_use_bytes,
              sim_result.peak_in_use_bytes);
}

class VirtualMutexStress : public ::testing::TestWithParam<int>
{};

TEST_P(VirtualMutexStress, ManyThreadsSerializeCorrectly)
{
    const int nthreads = GetParam();
    sim::Machine machine(nthreads, sim::CostModel(), /*quantum=*/1);
    sim::VirtualMutex mutex;
    long counter = 0;
    for (int t = 0; t < nthreads; ++t) {
        machine.spawn(t, t, [&] {
            for (int i = 0; i < 50; ++i) {
                std::lock_guard<sim::VirtualMutex> guard(mutex);
                long snapshot = counter;
                sim::Machine::current()->charge(30);
                sim::Machine::current()->yield();
                counter = snapshot + 1;  // lost update unless exclusive
            }
        });
    }
    machine.run();
    EXPECT_EQ(counter, 50L * nthreads);
}

INSTANTIATE_TEST_SUITE_P(Widths, VirtualMutexStress,
                         ::testing::Values(2, 3, 8, 16, 32));

TEST(FacadeConcurrency, GlobalInstanceUnderRealThreads)
{
    const int kThreads = 8;
    workloads::native_run(kThreads, [](int tid) {
        NativePolicy::rebind_thread_index(tid);
        std::vector<void*> live;
        for (int i = 0; i < 4000; ++i) {
            live.push_back(
                hoard_malloc(static_cast<std::size_t>(i % 700) + 1));
            if (live.size() > 64) {
                hoard_free(live.front());
                live.erase(live.begin());
            }
        }
        for (void* p : live)
            hoard_free(p);
    });
    EXPECT_TRUE(global_allocator().check_invariants());
}

class ReallocSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>>
{};

TEST_P(ReallocSweep, ContentPreservedAcrossClasses)
{
    auto [from, to] = GetParam();
    HoardAllocator<NativePolicy> allocator{Config{}};
    auto* p = static_cast<unsigned char*>(allocator.allocate(from));
    for (std::size_t i = 0; i < from; ++i)
        p[i] = static_cast<unsigned char>(i * 7 + 1);
    auto* q = static_cast<unsigned char*>(allocator.reallocate(p, to));
    ASSERT_NE(q, nullptr);
    std::size_t preserved = std::min(from, to);
    for (std::size_t i = 0; i < preserved; ++i)
        ASSERT_EQ(q[i], static_cast<unsigned char>(i * 7 + 1)) << i;
    EXPECT_GE(allocator.usable_size(q), to);
    allocator.deallocate(q);
    EXPECT_EQ(allocator.stats().in_use_bytes.current(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ReallocSweep,
    ::testing::Values(std::make_pair(std::size_t{8}, std::size_t{16}),
                      std::make_pair(std::size_t{8}, std::size_t{4096}),
                      std::make_pair(std::size_t{100}, std::size_t{100}),
                      std::make_pair(std::size_t{500}, std::size_t{20}),
                      std::make_pair(std::size_t{3000},
                                     std::size_t{200000}),
                      std::make_pair(std::size_t{200000},
                                     std::size_t{64}),
                      std::make_pair(std::size_t{100000},
                                     std::size_t{400000})));

}  // namespace
}  // namespace hoard
