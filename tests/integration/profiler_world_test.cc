/**
 * @file
 * End-to-end heap-profiler test in both execution worlds.
 *
 * Arms the profiler in exact mode (rate 1: every allocation sampled,
 * Poisson weight 1) so its live attribution is a census, then checks
 * that at quiescence the profiler's live gauges reconcile *exactly*
 * with the allocator's in_use gauge — through magazine churn, the
 * global heap, and the huge path.  The sim-world variant additionally
 * proves determinism: two identical virtual-time runs produce
 * byte-identical pprof serializations, because SimPolicy's "backtrace"
 * is the fiber's site token rather than a real stack.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/hoard_allocator.h"
#include "obs/gating.h"
#include "obs/heap_profiler.h"
#include "policy/native_policy.h"
#include "policy/sim_policy.h"
#include "sim/machine.h"
#include "workloads/larson.h"
#include "workloads/runners.h"

namespace hoard {
namespace {

Config
profiled_config(int heaps)
{
    Config config;
    config.heap_count = heaps;
    config.profile_sample_rate = 1;  // exact mode: census, not sample
    config.profile_site_slots = 4096;
    config.profile_live_slots = 8192;
    // Shallow backtraces: the frame chain is only trustworthy while
    // it stays inside this binary's fp-preserving code.  Past libc's
    // fp-less start_thread frame (6 hops from the allocation site
    // under sanitizer codegen) the walk reads stack garbage that
    // varies per call, and every sample would mint a brand-new
    // "site" until the table fills.  The zero-drop assertions below
    // need the stable prefix only.
    config.profile_max_frames = 6;
    return config;
}

TEST(ProfilerWorld, NativeLiveBytesReconcileWithGauges)
{
    if (!obs::kProfilerCompiledIn)
        GTEST_SKIP() << "profiler compiled out (HOARD_PROFILER=OFF)";

    constexpr int kThreads = 4;
    HoardAllocator<NativePolicy> allocator(profiled_config(kThreads));
    ASSERT_NE(allocator.profiler(), nullptr);
    EXPECT_EQ(allocator.profiler()->sample_rate(), 1u);

    // Multithreaded churn that frees everything it allocates: the
    // profiler must pair every one of those frees through magazines,
    // remote queues, and the global heap.
    workloads::LarsonParams params;
    params.nthreads = kThreads;
    params.slots_per_thread = 200;
    params.rounds_per_epoch = 500;
    params.epochs = 2;
    workloads::native_run(kThreads, [&allocator, &params](int tid) {
        workloads::larson_thread<NativePolicy>(allocator, params, tid);
    });

    // A known survivor set on top: small classes plus one huge block.
    std::vector<void*> keep;
    std::size_t keep_requested = 0;
    for (int i = 0; i < 300; ++i) {
        const std::size_t size = 16 + 24 * (i % 20);
        void* p = allocator.allocate(size);
        ASSERT_NE(p, nullptr);
        keep.push_back(p);
        keep_requested += size;
    }
    const std::size_t huge_bytes =
        allocator.config().superblock_bytes;  // forces the huge path
    void* huge = allocator.allocate(huge_bytes);
    ASSERT_NE(huge, nullptr);
    keep.push_back(huge);
    keep_requested += huge_bytes;

    const obs::ProfilerTotals t = allocator.profiler()->totals();
    ASSERT_EQ(t.site_drops, 0u) << "site table too small for the test";
    ASSERT_EQ(t.live_drops, 0u) << "live map too small for the test";

    // Exact mode + exact pairing: the profiler's live census must
    // equal the allocator's own gauge, byte for byte.
    const obs::AllocatorSnapshot snap = allocator.take_snapshot();
    EXPECT_TRUE(snap.reconciles());
    EXPECT_EQ(t.live_bytes, snap.stats.in_use_bytes);
    EXPECT_EQ(t.live_objects, keep.size());
    EXPECT_EQ(t.live_requested, keep_requested);
    EXPECT_GT(t.sampled_objects, t.live_objects);
    EXPECT_GT(t.sites, 0u);
    EXPECT_EQ(t.sampled_objects,
              t.frees_paired + t.live_objects + t.live_drops);

    // Freeing the survivors drains the census to zero.
    for (void* p : keep)
        allocator.deallocate(p);
    const obs::ProfilerTotals after = allocator.profiler()->totals();
    EXPECT_EQ(after.live_objects, 0u);
    EXPECT_EQ(after.live_bytes, 0u);
    EXPECT_EQ(allocator.take_snapshot().stats.in_use_bytes, 0u);

    // The leak report agrees: nothing sampled is still live.
    std::ostringstream report;
    EXPECT_EQ(allocator.profiler()->write_leak_report(report), 0u);
    EXPECT_NE(report.str().find("no leaks detected"),
              std::string::npos);
}

/** One deterministic sim run; returns the pprof bytes. */
std::string
sim_profiled_run(std::uint64_t& live_bytes_out,
                 std::uint64_t& in_use_out)
{
    constexpr int kThreads = 2;
    HoardAllocator<SimPolicy> allocator(profiled_config(kThreads));
    if (allocator.profiler() == nullptr)
        return std::string();

    sim::Machine machine(kThreads);
    std::vector<std::vector<void*>> survivors(kThreads);
    for (int tid = 0; tid < kThreads; ++tid) {
        machine.spawn(tid, tid, [&allocator, &survivors, tid] {
            // The deterministic analogue of a stack: every allocation
            // in this fiber attributes to this token.
            sim::Machine::current()->set_profile_site(
                0xA000u + static_cast<unsigned>(tid));
            for (int i = 0; i < 400; ++i) {
                void* p = allocator.allocate(
                    32 + 16 * static_cast<std::size_t>(i % 8));
                if (p == nullptr)
                    continue;
                if (i % 3 == 0)
                    survivors[tid].push_back(p);  // stays live
                else
                    allocator.deallocate(p);
            }
        });
    }
    machine.run();

    // Snapshots take virtual mutexes: run quiescent checks on a fresh
    // one-processor checker machine (sim test idiom).
    obs::AllocatorSnapshot snap;
    sim::Machine checker(1);
    checker.spawn(0, 0,
                  [&allocator, &snap] { snap = allocator.take_snapshot(); });
    checker.run();
    in_use_out = snap.stats.in_use_bytes;
    live_bytes_out = allocator.profiler()->totals().live_bytes;

    std::ostringstream os;
    allocator.profiler()->write_pprof_profile(os);

    // Release the survivors inside a machine so SimPolicy has a clock.
    sim::Machine cleanup(1);
    cleanup.spawn(0, 0, [&allocator, &survivors] {
        for (auto& fiber_ptrs : survivors)
            for (void* p : fiber_ptrs)
                allocator.deallocate(p);
    });
    cleanup.run();
    return os.str();
}

TEST(ProfilerWorld, SimLiveBytesReconcileAndProfilesReplay)
{
    if (!obs::kProfilerCompiledIn)
        GTEST_SKIP() << "profiler compiled out (HOARD_PROFILER=OFF)";

    std::uint64_t live_a = 0, in_use_a = 0;
    const std::string profile_a = sim_profiled_run(live_a, in_use_a);
    ASSERT_FALSE(profile_a.empty());
    EXPECT_EQ(live_a, in_use_a);
    EXPECT_GT(live_a, 0u);

    // Determinism: an identical virtual-time run serializes the exact
    // same profile — the property that makes sim profiler regressions
    // diffable.
    std::uint64_t live_b = 0, in_use_b = 0;
    const std::string profile_b = sim_profiled_run(live_b, in_use_b);
    EXPECT_EQ(live_a, live_b);
    EXPECT_EQ(in_use_a, in_use_b);
    EXPECT_EQ(profile_a, profile_b);

    // The sim "stacks" really are the fiber tokens: both appear as
    // distinct sites (plus the thread tag frame).
    EXPECT_EQ(static_cast<unsigned char>(profile_a[0]), 0x0Au);
}

}  // namespace
}  // namespace hoard
