/**
 * @file
 * End-to-end latency-histogram test: run a multithreaded workload
 * with the per-path histograms armed in exact mode, then check that
 *
 *  - every accepted malloc/free landed in exactly one path histogram
 *    (the histogram mass reconciles with the allocator's op
 *    counters),
 *  - the snapshot plumbing (take_snapshot, latency_armed) and the
 *    per-path split behave,
 *  - an outlier threshold of one cycle traces every slow op into the
 *    event ring,
 *  - two identical sim runs produce byte-identical merged snapshots
 *    (LatencySnapshot operator== compares every bucket),
 *
 * under both execution worlds (native threads and the virtual-time
 * simulator).
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "core/hoard_allocator.h"
#include "obs/event_ring.h"
#include "obs/gating.h"
#include "obs/latency.h"
#include "policy/native_policy.h"
#include "policy/sim_policy.h"
#include "sim/machine.h"
#include "workloads/larson.h"
#include "workloads/runners.h"

namespace hoard {
namespace {

workloads::LarsonParams
small_larson(int nthreads)
{
    workloads::LarsonParams params;
    params.nthreads = nthreads;
    params.slots_per_thread = 300;
    params.rounds_per_epoch = 800;
    params.epochs = 3;
    return params;
}

/**
 * Exact mode records every accepted op once: the malloc-family
 * histogram mass must equal the alloc counter and the free-family
 * mass the free counter (owner_drain is nested work, outside both).
 */
void
check_reconciles(const obs::AllocatorSnapshot& snap)
{
    ASSERT_TRUE(snap.latency_armed);
    ASSERT_EQ(snap.latency.sample_period, 1u);

    using obs::LatencyPath;
    std::uint64_t malloc_ops = 0, free_ops = 0;
    for (LatencyPath p :
         {LatencyPath::malloc_fast, LatencyPath::malloc_refill,
          LatencyPath::malloc_global_fetch,
          LatencyPath::malloc_fresh_map})
        malloc_ops += snap.latency.path(p).count();
    for (LatencyPath p :
         {LatencyPath::free_fast, LatencyPath::free_spill,
          LatencyPath::free_remote_push})
        free_ops += snap.latency.path(p).count();

    EXPECT_EQ(malloc_ops, snap.stats.allocs);
    EXPECT_EQ(free_ops, snap.stats.frees);

    // A larson churn mallocs far more often than it maps: the fast
    // path must dominate, and some op must have reached a deeper
    // stage (the first allocation of each class maps fresh memory).
    EXPECT_GT(snap.latency.path(LatencyPath::malloc_fast).count(), 0u);
    EXPECT_GT(snap.latency.path(LatencyPath::malloc_fresh_map).count(),
              0u);
    EXPECT_GT(snap.latency.path(LatencyPath::free_fast).count(), 0u);
}

TEST(LatencyWorld, NativeLarsonReconciles)
{
    if (!obs::kCompiledIn)
        GTEST_SKIP() << "observability compiled out (HOARD_OBS=OFF)";

    constexpr int kThreads = 4;
    Config config;
    config.heap_count = kThreads;
    config.latency_histograms = true;
    config.latency_sample_period = 1;  // exact mode
    HoardAllocator<NativePolicy> allocator(config);
    ASSERT_NE(allocator.latency(), nullptr);

    workloads::LarsonParams params = small_larson(kThreads);
    workloads::native_run(kThreads, [&allocator, &params](int tid) {
        workloads::larson_thread<NativePolicy>(allocator, params, tid);
    });

    obs::AllocatorSnapshot snap = allocator.take_snapshot();
    EXPECT_TRUE(snap.reconciles());
    check_reconciles(snap);

    // Real cycle counts: the histograms saw nonzero time somewhere.
    EXPECT_GT(snap.latency.path(obs::LatencyPath::malloc_fresh_map)
                  .sum(),
              0u);
}

TEST(LatencyWorld, NativeDisarmedByDefault)
{
    if (!obs::kCompiledIn)
        GTEST_SKIP() << "observability compiled out (HOARD_OBS=OFF)";

    Config config;
    config.heap_count = 2;
    HoardAllocator<NativePolicy> allocator(config);
    EXPECT_EQ(allocator.latency(), nullptr);

    void* p = allocator.allocate(64);
    allocator.deallocate(p);
    obs::AllocatorSnapshot snap = allocator.take_snapshot();
    EXPECT_FALSE(snap.latency_armed);
    EXPECT_EQ(snap.latency.total_count(), 0u);
}

TEST(LatencyWorld, NativeOutliersTraceIntoEventRing)
{
    if (!obs::kCompiledIn)
        GTEST_SKIP() << "observability compiled out (HOARD_OBS=OFF)";

    Config config;
    config.heap_count = 2;
    config.observability = true;  // event ring for the trace records
    config.latency_histograms = true;
    config.latency_sample_period = 1;
    config.latency_outlier_cycles = 1;  // every timed op is an outlier
    HoardAllocator<NativePolicy> allocator(config);
    ASSERT_NE(allocator.latency(), nullptr);

    constexpr int kOps = 64;
    void* slots[kOps] = {};
    for (int i = 0; i < kOps; ++i)
        slots[i] = allocator.allocate(64);
    for (int i = 0; i < kOps; ++i)
        allocator.deallocate(slots[i]);

    EXPECT_GT(allocator.latency()->outliers(), 0u);
    auto outliers = allocator.latency()->recent_outliers();
    ASSERT_FALSE(outliers.empty());
    for (const obs::LatencyOutlier& o : outliers)
        EXPECT_GE(o.cycles, 1u);

    // Each outlier also left a trace record in the event ring, with
    // the path in the size_class slot and the cycles in bytes.
    std::size_t traced = 0;
    for (const obs::TraceEvent& ev : allocator.recorder()->collect()) {
        if (ev.kind != obs::EventKind::latency_outlier)
            continue;
        ++traced;
        EXPECT_GE(ev.size_class, 0);
        EXPECT_LT(ev.size_class, obs::kLatencyPathCount);
        EXPECT_GE(ev.bytes, 1u);
    }
    EXPECT_GT(traced, 0u);
}

TEST(LatencyWorld, SimLarsonReconciles)
{
    if (!obs::kCompiledIn)
        GTEST_SKIP() << "observability compiled out (HOARD_OBS=OFF)";

    constexpr int kThreads = 4;
    Config config;
    config.heap_count = kThreads;
    config.latency_histograms = true;
    config.latency_sample_period = 1;
    HoardAllocator<SimPolicy> allocator(config);
    ASSERT_NE(allocator.latency(), nullptr);

    workloads::LarsonParams params = small_larson(kThreads);
    params.rounds_per_epoch = 400;  // virtual time is serial
    workloads::sim_run(kThreads, kThreads,
                       [&allocator, &params](int tid) {
                           workloads::larson_thread<SimPolicy>(
                               allocator, params, tid);
                       });

    obs::AllocatorSnapshot snap;
    sim::Machine checker(1);
    checker.spawn(0, 0,
                  [&allocator, &snap] {
                      snap = allocator.take_snapshot();
                  });
    checker.run();

    EXPECT_TRUE(snap.reconciles());
    check_reconciles(snap);

    // Virtual clocks: every recorded latency is a deterministic cycle
    // count, so the mean is reproducible too.
    EXPECT_GT(snap.latency.path(obs::LatencyPath::malloc_fast).sum(),
              0u);
}

/** One full armed sim run; returns the merged latency snapshot. */
obs::LatencySnapshot
sim_run_snapshot()
{
    constexpr int kThreads = 4;
    Config config;
    config.heap_count = kThreads;
    config.latency_histograms = true;
    config.latency_sample_period = 1;
    HoardAllocator<SimPolicy> allocator(config);

    workloads::LarsonParams params = small_larson(kThreads);
    params.rounds_per_epoch = 400;
    workloads::sim_run(kThreads, kThreads,
                       [&allocator, &params](int tid) {
                           workloads::larson_thread<SimPolicy>(
                               allocator, params, tid);
                       });
    return allocator.latency()->snapshot();
}

TEST(LatencyWorld, SimRunsAreByteIdentical)
{
    if (!obs::kCompiledIn)
        GTEST_SKIP() << "observability compiled out (HOARD_OBS=OFF)";

    // Virtual time plus commutative recording: two identical runs
    // must merge to byte-identical histograms — every bucket, count,
    // sum, and max equal across all 8 paths (operator== compares them
    // all).
    obs::LatencySnapshot first = sim_run_snapshot();
    obs::LatencySnapshot second = sim_run_snapshot();
    EXPECT_GT(first.total_count(), 0u);
    EXPECT_TRUE(first == second);
}

}  // namespace
}  // namespace hoard
