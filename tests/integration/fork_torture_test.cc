/**
 * @file
 * Fork torture for the global instance: fork() while sibling threads
 * are mid-malloc/mid-free, then prove the child inherited a working
 * allocator — every lock released, remote queues settled, magazines
 * flushed, and the gauges recounted to byte-exact reconciliation
 * (snapshot.reconciles()).  Exercises the pthread_atfork handlers the
 * LD_PRELOAD shim installs (hoard_install_atfork; docs/SHIM.md).
 *
 * Children never run gtest assertions: they report through their exit
 * status and leave with _exit (no static destructors in a forked
 * child of a threaded parent).
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/facade.h"

/** TSan aborts forked children of threaded parents by default; this
    test exists precisely to fork under thread churn. */
extern "C" const char*
__tsan_default_options()
{
    return "die_after_fork=0";
}

namespace hoard {
namespace {

/**
 * Child-side verdict: the inherited allocator must serve a fresh
 * churn, reconcile byte-exactly, and pass the emptiness invariant.
 * Exit codes name the failing check for the parent's message.
 */
int
child_verdict()
{
    std::vector<void*> blocks;
    blocks.reserve(256);
    for (std::size_t i = 0; i < 256; ++i) {
        void* p = hoard_malloc(i % 1999 + 1);
        if (p == nullptr)
            return 1;
        blocks.push_back(p);
    }
    void* big = hoard_malloc(32768);  // huge path too
    if (big == nullptr)
        return 1;
    hoard_free(big);
    for (void* p : blocks)
        hoard_free(p);

    obs::AllocatorSnapshot snap = hoard_snapshot();
    if (!snap.reconciles())
        return 2;
    if (!snap.all_heaps_satisfy_invariant())
        return 3;
    if (!global_allocator().check_invariants())
        return 4;
    return 0;
}

/** Allocation churn that keeps the allocator's locks hot while the
    main or a sibling thread forks. */
void
churn(std::atomic<bool>& stop, int tid)
{
    std::vector<void*> slots(64, nullptr);
    std::uint64_t rng =
        0x9e3779b97f4a7c15ull ^ static_cast<std::uint64_t>(tid);
    while (!stop.load(std::memory_order_relaxed)) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        std::size_t slot = (rng >> 20) % slots.size();
        if (slots[slot] != nullptr) {
            hoard_free(slots[slot]);
            slots[slot] = nullptr;
        } else {
            slots[slot] = hoard_malloc((rng >> 33) % 2048 + 1);
        }
    }
    for (void* p : slots)
        if (p != nullptr)
            hoard_free(p);
}

/** Forks @p rounds times, waits each child, returns the first nonzero
    child verdict (0 when every child passed). */
int
fork_rounds(int rounds)
{
    for (int round = 0; round < rounds; ++round) {
        pid_t pid = fork();
        if (pid < 0)
            return 100;
        if (pid == 0)
            _exit(child_verdict());
        int status = 0;
        if (waitpid(pid, &status, 0) != pid)
            return 101;
        if (!WIFEXITED(status))
            return 102;
        if (WEXITSTATUS(status) != 0)
            return WEXITSTATUS(status);
    }
    return 0;
}

TEST(ForkTorture, ForkWhileSiblingsChurn)
{
    hoard_install_atfork();
    std::atomic<bool> stop{false};
    std::vector<std::thread> churners;
    for (int t = 0; t < 4; ++t)
        churners.emplace_back([&stop, t] { churn(stop, t); });

    int verdict = fork_rounds(8);
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : churners)
        t.join();

    EXPECT_EQ(verdict, 0)
        << "1=alloc failed 2=gauges don't reconcile 3=heap invariant "
           "4=structural check 100+=fork/wait plumbing";
    EXPECT_TRUE(hoard_snapshot().reconciles())
        << "parent must reconcile after its atfork handlers too";
}

TEST(ForkTorture, ForkFromSpawnedThread)
{
    hoard_install_atfork();
    std::atomic<bool> stop{false};
    std::vector<std::thread> churners;
    for (int t = 0; t < 3; ++t)
        churners.emplace_back([&stop, t] { churn(stop, t); });

    // fork() from a thread that is not main: the child's only thread
    // is then a *non-main* thread image, the shape that breaks naive
    // singletons.
    std::atomic<int> verdict{-1};
    std::thread forker(
        [&verdict] { verdict.store(fork_rounds(4)); });
    forker.join();
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : churners)
        t.join();

    EXPECT_EQ(verdict.load(), 0)
        << "1=alloc failed 2=gauges don't reconcile 3=heap invariant "
           "4=structural check 100+=fork/wait plumbing";
    EXPECT_TRUE(global_allocator().check_invariants());
}

}  // namespace
}  // namespace hoard
