/**
 * @file
 * End-to-end observability test: run a Larson-style multithreaded
 * workload with tracing and lock profiling on, then check that
 *
 *  - the per-heap snapshot totals reconcile exactly with the global
 *    gauges (quiesced),
 *  - every per-processor heap satisfies the emptiness invariant,
 *  - the event recorder captured the run and exports valid Chrome
 *    trace JSON,
 *
 * under both execution worlds (native threads and the virtual-time
 * simulator).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/hoard_allocator.h"
#include "obs/gating.h"
#include "obs/trace_export.h"
#include "policy/native_policy.h"
#include "policy/sim_policy.h"
#include "sim/machine.h"
#include "tests/common/json_check.h"
#include "workloads/larson.h"
#include "workloads/runners.h"

namespace hoard {
namespace {

workloads::LarsonParams
small_larson(int nthreads)
{
    workloads::LarsonParams params;
    params.nthreads = nthreads;
    params.slots_per_thread = 300;
    params.rounds_per_epoch = 800;
    params.epochs = 3;
    return params;
}

TEST(ObsReconcile, NativeLarsonRun)
{
    if (!obs::kCompiledIn)
        GTEST_SKIP() << "observability compiled out (HOARD_OBS=OFF)";

    constexpr int kThreads = 4;
    Config config;
    config.heap_count = kThreads;
    config.thread_cache_blocks = 8;  // exercise cache hit/miss events
    config.observability = true;
    HoardAllocator<NativePolicy> allocator(config);
    ASSERT_TRUE(allocator.observability_enabled());

    workloads::LarsonParams params = small_larson(kThreads);
    workloads::native_run(kThreads, [&allocator, &params](int tid) {
        workloads::larson_thread<NativePolicy>(allocator, params, tid);
    });

    obs::AllocatorSnapshot snap = allocator.take_snapshot();

    // Quiesced: per-heap sums must match the global gauges exactly.
    EXPECT_TRUE(snap.reconciles())
        << "sum(u)=" << snap.sum_in_use()
        << " sum(a)=" << snap.sum_held()
        << " in_use=" << snap.stats.in_use_bytes
        << " held=" << snap.stats.held_bytes
        << " cached=" << snap.cached_bytes;
    EXPECT_TRUE(snap.all_heaps_satisfy_invariant());
    EXPECT_TRUE(allocator.check_invariants());

    // The workload's cross-thread churn must have produced events
    // (at minimum class refills for the 10..100-byte classes).  The
    // recorder is an overwrite ring, and the refills cluster at the
    // start of the run: once the window wraps, a schedule where every
    // thread refills early can evict all of them, so the kind check
    // only holds for an unwrapped window.
    const obs::EventRecorder* recorder = allocator.recorder();
    ASSERT_NE(recorder, nullptr);
    EXPECT_GT(recorder->total_recorded(), 0u);
    const bool window_wrapped = recorder->dropped() > 0;
    std::vector<std::uint64_t> counts = recorder->kind_counts();
    if (!window_wrapped)
        EXPECT_GT(counts[static_cast<std::size_t>(
                      obs::EventKind::class_refill)],
                  0u);

    // Heap locks were profiled: the run acquired them many times.
    std::uint64_t acquires = 0;
    for (const obs::HeapSnapshot& h : snap.heaps)
        acquires += h.lock.acquires;
    EXPECT_GT(acquires, 0u);

    // The retained window exports as valid Chrome trace JSON with the
    // per-event metadata intact.
    std::ostringstream os;
    obs::write_chrome_trace(os, *recorder);
    std::string trace = os.str();
    EXPECT_TRUE(testutil::json_valid(trace));
    if (!window_wrapped)
        EXPECT_NE(trace.find("\"name\":\"class_refill\""),
                  std::string::npos);

    // Exporters accept the live snapshot.
    std::ostringstream prom;
    obs::write_prometheus(prom, snap);
    EXPECT_NE(prom.str().find("hoard_in_use_bytes"), std::string::npos);
    std::ostringstream human;
    obs::write_human(human, snap);
    EXPECT_NE(human.str().find("reconciles: yes"), std::string::npos);
    EXPECT_NE(human.str().find("invariant: ok"), std::string::npos);
}

TEST(ObsReconcile, SimLarsonRun)
{
    if (!obs::kCompiledIn)
        GTEST_SKIP() << "observability compiled out (HOARD_OBS=OFF)";

    constexpr int kThreads = 4;
    Config config;
    config.heap_count = kThreads;
    config.observability = true;
    HoardAllocator<SimPolicy> allocator(config);
    ASSERT_TRUE(allocator.observability_enabled());

    workloads::LarsonParams params = small_larson(kThreads);
    params.rounds_per_epoch = 400;  // virtual time is serial; keep short
    std::uint64_t makespan = workloads::sim_run(
        kThreads, kThreads, [&allocator, &params](int tid) {
            workloads::larson_thread<SimPolicy>(allocator, params, tid);
        });
    EXPECT_GT(makespan, 0u);

    // Lock-taking introspection must itself run on a simulated thread.
    obs::AllocatorSnapshot snap;
    sim::Machine checker(1);
    checker.spawn(0, 0, [&allocator, &snap] {
        snap = allocator.take_snapshot();
    });
    checker.run();

    EXPECT_TRUE(snap.reconciles());
    EXPECT_TRUE(snap.all_heaps_satisfy_invariant());

    const obs::EventRecorder* recorder = allocator.recorder();
    ASSERT_NE(recorder, nullptr);
    EXPECT_GT(recorder->total_recorded(), 0u);

    // Event timestamps are virtual cycles: all within the makespan of
    // the run (collect() may see a torn event under concurrent
    // writers, but this read is quiesced).
    for (const obs::TraceEvent& ev : recorder->collect())
        EXPECT_LE(ev.timestamp, makespan);

    // Identity scaling keeps virtual cycles in the exported trace.
    std::ostringstream os;
    obs::write_chrome_trace(os, *recorder, /*ts_per_us=*/1.0);
    EXPECT_TRUE(testutil::json_valid(os.str()));
}

}  // namespace
}  // namespace hoard
