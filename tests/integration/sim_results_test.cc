/**
 * @file
 * Headline-result guards: small simulated runs of every figure, with
 * assertions on the paper's qualitative claims (who wins, what
 * collapses, where the gaps are).  If a refactor breaks the shapes the
 * benches reproduce, these tests fail first.
 */

#include <gtest/gtest.h>

#include "metrics/speedup.h"
#include "workloads/sim_bodies.h"

namespace hoard {
namespace {

using baselines::AllocatorKind;

constexpr std::size_t kHoard = 0;      // index in kAllKinds
constexpr std::size_t kSerial = 1;
constexpr std::size_t kPrivate = 2;
constexpr std::size_t kOwnership = 3;

metrics::SpeedupOptions
small_options()
{
    metrics::SpeedupOptions options;
    options.procs = {1, 8};
    return options;
}

TEST(SimResults, ThreadtestShapes)
{
    workloads::ThreadtestParams params;
    params.total_objects = 6000;
    params.iterations = 3;
    auto result = metrics::run_speedup_experiment(
        "guard", small_options(), workloads::threadtest_body(params));

    double hoard = result.at(1, kHoard).speedup;
    double serial = result.at(1, kSerial).speedup;
    EXPECT_GT(hoard, 6.0) << "Hoard must be near-linear at P=8";
    EXPECT_LT(serial, 1.0) << "one lock must not scale";
    EXPECT_GT(hoard / serial, 5.0) << "the paper's headline gap";
}

TEST(SimResults, ActiveFalseShapes)
{
    workloads::FalseSharingParams params;
    params.total_objects = 640;
    params.writes_per_object = 400;
    auto result = metrics::run_speedup_experiment(
        "guard", small_options(),
        workloads::active_false_body(params));

    EXPECT_GT(result.at(1, kHoard).speedup, 5.0)
        << "Hoard avoids active false sharing";
    EXPECT_LT(result.at(1, kSerial).speedup, 2.5)
        << "line-splitting allocator must be crushed by ping-pong";
    // The cache model must show the mechanism, not just the outcome.
    EXPECT_GT(result.at(1, kSerial).remote_transfers,
              50 * result.at(1, kHoard).remote_transfers + 1);
}

TEST(SimResults, PassiveFalseShapes)
{
    workloads::FalseSharingParams params;
    params.total_objects = 640;
    params.writes_per_object = 400;
    auto result = metrics::run_speedup_experiment(
        "guard", small_options(),
        workloads::passive_false_body(params));

    double hoard = result.at(1, kHoard).speedup;
    double priv = result.at(1, kPrivate).speedup;
    EXPECT_GT(hoard, 5.0);
    EXPECT_GT(hoard, priv * 1.3)
        << "pure private heaps inherit the handed-off line fragments";
}

TEST(SimResults, LarsonShapes)
{
    workloads::LarsonParams params;
    params.slots_per_thread = 800;
    params.rounds_per_epoch = 120000;
    params.epochs = 2;
    auto result = metrics::run_speedup_experiment(
        "guard", small_options(), workloads::larson_body(params));

    double hoard = result.at(1, kHoard).speedup;
    double serial = result.at(1, kSerial).speedup;
    EXPECT_GT(hoard, 3.0) << "Hoard must scale under thread churn";
    EXPECT_LT(serial, 1.0);
    // The ownership baseline models the LKmalloc end of its class,
    // which the paper also shows scaling on larson (its failure mode
    // is O(P) blowup, demonstrated in the blowup tests); Hoard must be
    // competitive with it, not necessarily ahead.
    EXPECT_GT(hoard, result.at(1, kOwnership).speedup * 0.75);
}

TEST(SimResults, BemAndBarnesScaleForEveryone)
{
    workloads::BemSimParams bem;
    bem.phases = 1;
    bem.total_panels = 16;
    bem.elements_per_panel = 150;
    auto bem_result = metrics::run_speedup_experiment(
        "guard", small_options(), workloads::bemsim_body(bem));

    workloads::BarnesHutParams bh;
    bh.total_systems = 16;
    bh.bodies_per_system = 120;
    bh.steps = 1;
    auto bh_result = metrics::run_speedup_experiment(
        "guard", small_options(), workloads::barneshut_body(bh));

    // Compute-heavy applications: even serial scales somewhat, Hoard
    // leads or ties.
    EXPECT_GT(bem_result.at(1, kHoard).speedup, 3.0);
    EXPECT_GE(bem_result.at(1, kHoard).speedup,
              bem_result.at(1, kSerial).speedup);
    EXPECT_GT(bh_result.at(1, kHoard).speedup, 3.0);
    EXPECT_GE(bh_result.at(1, kHoard).speedup,
              bh_result.at(1, kSerial).speedup * 0.95);
}

TEST(SimResults, SpeedupMonotonicallyImprovesForHoard)
{
    metrics::SpeedupOptions options;
    options.procs = {1, 2, 4, 8};
    options.kinds = {AllocatorKind::hoard};
    workloads::ThreadtestParams params;
    params.total_objects = 6000;
    params.iterations = 3;
    auto result = metrics::run_speedup_experiment(
        "guard", options, workloads::threadtest_body(params));
    for (std::size_t pi = 1; pi < options.procs.size(); ++pi) {
        EXPECT_GT(result.at(pi, 0).speedup,
                  result.at(pi - 1, 0).speedup)
            << "P=" << options.procs[pi];
    }
}

}  // namespace
}  // namespace hoard
