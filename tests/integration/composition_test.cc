/**
 * @file
 * Composition integration: the library's layers must stack —
 * DebugAllocator over a thread-cached Hoard on a private provider,
 * containers over the debug layer, trace recording through the whole
 * stack — because that is how a downstream user actually deploys it.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/debug_allocator.h"
#include "core/hoard_allocator.h"
#include "core/pmr_resource.h"
#include "core/stl_allocator.h"
#include "os/page_provider.h"
#include "policy/native_policy.h"
#include "workloads/runners.h"
#include "workloads/trace.h"

namespace hoard {
namespace {

TEST(Composition, DebugOverCachedHoardOnPrivateProvider)
{
    os::MmapPageProvider provider;
    Config config;
    config.heap_count = 4;
    config.thread_cache_blocks = 32;
    {
        HoardAllocator<NativePolicy> inner(config, provider);
        DebugAllocator debug(inner);

        workloads::native_run(4, [&](int tid) {
            NativePolicy::rebind_thread_index(tid);
            detail::Rng rng(static_cast<std::uint64_t>(tid) + 40);
            std::vector<void*> live;
            for (int op = 0; op < 5000; ++op) {
                if (live.size() < 100 || rng.chance(0.5)) {
                    live.push_back(debug.allocate(rng.range(1, 500)));
                } else {
                    auto idx = static_cast<std::size_t>(
                        rng.below(live.size()));
                    debug.deallocate(live[idx]);
                    live[idx] = live.back();
                    live.pop_back();
                }
            }
            for (void* p : live)
                debug.deallocate(p);
        });

        EXPECT_EQ(debug.live_allocations(), 0u);
        EXPECT_EQ(debug.bad_free_count(), 0u);
        EXPECT_EQ(debug.overrun_count(), 0u);
        inner.flush_thread_caches();
        EXPECT_EQ(inner.stats().in_use_bytes.current(), 0u);
        EXPECT_TRUE(inner.check_invariants());
    }
    EXPECT_EQ(provider.mapped_bytes(), 0u)
        << "the whole stack must return every byte";
}

TEST(Composition, ContainersOverDebugLayer)
{
    HoardAllocator<NativePolicy> inner{Config{}};
    DebugAllocator debug(inner);
    {
        std::vector<int, StlAllocator<int>> v{StlAllocator<int>(debug)};
        for (int i = 0; i < 20000; ++i)
            v.push_back(i);
        EXPECT_EQ(v[19999], 19999);
    }
    EXPECT_EQ(debug.live_allocations(), 0u);
    EXPECT_EQ(debug.overrun_count(), 0u);
}

TEST(Composition, TraceRecordedThroughDebugLayer)
{
    HoardAllocator<NativePolicy> inner{Config{}};
    DebugAllocator debug(inner);
    workloads::Trace trace;
    workloads::TraceRecorder recorder(debug, trace);

    NativePolicy::rebind_thread_index(0);
    std::vector<void*> blocks;
    for (int i = 0; i < 200; ++i)
        blocks.push_back(recorder.allocate(
            static_cast<std::size_t>(i % 300) + 1));
    for (void* p : blocks)
        recorder.deallocate(p);

    EXPECT_EQ(trace.size(), 400u);
    EXPECT_EQ(debug.live_allocations(), 0u);

    // Replay the debug-layer trace against a bare Hoard.
    HoardAllocator<NativePolicy> target{Config{}};
    auto result = workloads::replay<NativePolicy>(target, trace);
    EXPECT_EQ(result.allocs, 200u);
    EXPECT_TRUE(target.check_invariants());
}

TEST(Composition, PmrOverDebugOverHoard)
{
    HoardAllocator<NativePolicy> inner{Config{}};
    DebugAllocator debug(inner);
    PmrResource resource(debug);
    {
        std::pmr::map<int, std::pmr::string> m(&resource);
        for (int i = 0; i < 300; ++i) {
            m.emplace(i, std::pmr::string(
                             "value-" + std::to_string(i),
                             m.get_allocator()));
        }
        EXPECT_EQ(m.at(299), "value-299");
    }
    EXPECT_EQ(debug.live_allocations(), 0u);
    EXPECT_EQ(debug.overrun_count(), 0u);
}

TEST(Composition, TwoIndependentAllocatorsDoNotInterfere)
{
    os::MmapPageProvider provider_a, provider_b;
    Config config;
    HoardAllocator<NativePolicy> a(config, provider_a);
    HoardAllocator<NativePolicy> b(config, provider_b);

    void* pa = a.allocate(100);
    void* pb = b.allocate(100);
    // Pointers belong to their own instance's pages.
    EXPECT_GT(provider_a.mapped_bytes(), 0u);
    EXPECT_GT(provider_b.mapped_bytes(), 0u);
    a.deallocate(pa);
    b.deallocate(pb);
    EXPECT_EQ(a.stats().in_use_bytes.current(), 0u);
    EXPECT_EQ(b.stats().in_use_bytes.current(), 0u);
}

TEST(Composition, DumpAfterHeavyCompositionRuns)
{
    Config config;
    config.thread_cache_blocks = 8;
    HoardAllocator<NativePolicy> allocator(config);
    std::vector<void*> keep;
    for (int i = 0; i < 1000; ++i)
        keep.push_back(allocator.allocate(
            static_cast<std::size_t>(i % 900) + 1));
    std::ostringstream os;
    allocator.dump(os);
    EXPECT_GT(os.str().size(), 100u);
    for (void* p : keep)
        allocator.deallocate(p);
    allocator.flush_thread_caches();
}

}  // namespace
}  // namespace hoard
