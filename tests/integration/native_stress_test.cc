/**
 * @file
 * Native multithreaded stress: the ownership-change race (paper §3.4),
 * producer/consumer pipelines over real threads, and sustained mixed
 * churn with invariant checks — the tests that gate the allocator's
 * claim to be a real thread-safe malloc.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/memutil.h"
#include "common/rng.h"
#include "core/hoard_allocator.h"
#include "policy/native_policy.h"

namespace hoard {
namespace {

using NativeHoard = HoardAllocator<NativePolicy>;

TEST(NativeStress, OwnershipChangeRace)
{
    // Thread A mass-frees into heap X, constantly triggering transfers
    // to the global heap, while thread B frees blocks from the same
    // superblocks — the deadlock/lost-update surface of the free path.
    Config config;
    config.heap_count = 4;
    config.slack_superblocks = 0;  // maximize transfer frequency
    NativeHoard allocator(config);

    for (int round = 0; round < 20; ++round) {
        std::vector<void*> a_blocks, b_blocks;
        NativePolicy::rebind_thread_index(0);
        for (int i = 0; i < 3000; ++i) {
            void* p = allocator.allocate(48);
            (i % 2 == 0 ? a_blocks : b_blocks).push_back(p);
        }
        std::thread t1([&] {
            NativePolicy::rebind_thread_index(1);
            for (void* p : a_blocks)
                allocator.deallocate(p);
        });
        std::thread t2([&] {
            NativePolicy::rebind_thread_index(2);
            for (void* p : b_blocks)
                allocator.deallocate(p);
        });
        t1.join();
        t2.join();
    }
    EXPECT_TRUE(allocator.check_invariants());
    EXPECT_EQ(allocator.stats().in_use_bytes.current(), 0u);
    EXPECT_GT(allocator.stats().superblock_transfers.get(), 0u);
}

TEST(NativeStress, RealProducerConsumerQueue)
{
    // A genuine two-thread pipeline (not the rebinding trick): the
    // producer allocates, the consumer frees, through a mutex queue.
    Config config;
    config.heap_count = 4;
    NativeHoard allocator(config);

    std::mutex queue_mutex;
    std::deque<void*> queue;
    std::atomic<bool> done{false};
    const int kItems = 60000;
    const std::size_t kQueueCap = 2048;  // bounds live memory

    std::thread producer([&] {
        NativePolicy::rebind_thread_index(0);
        for (int i = 0; i < kItems; ++i) {
            void* p = allocator.allocate(64);
            detail::pattern_fill(p, 64, 11);
            for (;;) {
                {
                    std::lock_guard<std::mutex> guard(queue_mutex);
                    if (queue.size() < kQueueCap) {
                        queue.push_back(p);
                        break;
                    }
                }
                std::this_thread::yield();
            }
        }
        done = true;
    });
    std::thread consumer([&] {
        NativePolicy::rebind_thread_index(1);
        int freed = 0;
        while (freed < kItems) {
            void* p = nullptr;
            {
                std::lock_guard<std::mutex> guard(queue_mutex);
                if (!queue.empty()) {
                    p = queue.front();
                    queue.pop_front();
                }
            }
            if (p != nullptr) {
                EXPECT_TRUE(detail::pattern_check(p, 64, 11));
                allocator.deallocate(p);
                ++freed;
            } else if (done) {
                std::this_thread::yield();
            }
        }
    });
    producer.join();
    consumer.join();

    EXPECT_EQ(allocator.stats().in_use_bytes.current(), 0u);
    EXPECT_TRUE(allocator.check_invariants());
    // Bounded footprint despite a full producer->consumer flow: the
    // emptiness invariant must have recycled superblocks throughout.
    EXPECT_LT(allocator.stats().held_bytes.peak(),
              static_cast<std::size_t>(kItems) * 64 / 4)
        << "footprint approached total allocation volume: no reuse";
}

TEST(NativeStress, ManyThreadsMixedSizes)
{
    Config config;
    config.heap_count = 8;
    NativeHoard allocator(config);
    const int kThreads = 8;

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&allocator, t] {
            NativePolicy::rebind_thread_index(t);
            detail::Rng rng(static_cast<std::uint64_t>(t) * 7 + 1);
            std::vector<std::pair<void*, std::size_t>> live;
            for (int op = 0; op < 15000; ++op) {
                if (live.size() < 128 || rng.chance(0.5)) {
                    // Mix in occasional huge allocations.
                    std::size_t size = rng.chance(0.01)
                                           ? rng.range(5000, 100000)
                                           : rng.range(1, 1500);
                    void* p = allocator.allocate(size);
                    ASSERT_NE(p, nullptr);
                    detail::pattern_fill(
                        p, std::min<std::size_t>(size, 256), size);
                    live.emplace_back(p, size);
                } else {
                    auto idx = static_cast<std::size_t>(
                        rng.below(live.size()));
                    ASSERT_TRUE(detail::pattern_check(
                        live[idx].first,
                        std::min<std::size_t>(live[idx].second, 256),
                        live[idx].second));
                    allocator.deallocate(live[idx].first);
                    live[idx] = live.back();
                    live.pop_back();
                }
            }
            for (auto& [p, size] : live)
                allocator.deallocate(p);
        });
    }
    for (auto& t : threads)
        t.join();

    EXPECT_EQ(allocator.stats().in_use_bytes.current(), 0u);
    EXPECT_TRUE(allocator.check_invariants());
}

TEST(NativeStress, ThreadChurnManyGenerations)
{
    // Threads are born, allocate, die leaving live blocks; successors
    // free their predecessors' blocks — long-running-server shape.
    Config config;
    config.heap_count = 4;
    NativeHoard allocator(config);

    std::vector<void*> inherited;
    for (int generation = 0; generation < 30; ++generation) {
        std::vector<void*> next;
        std::thread worker([&] {
            NativePolicy::rebind_thread_index(generation + 10);
            for (void* p : inherited)
                allocator.deallocate(p);
            for (int i = 0; i < 2000; ++i)
                next.push_back(allocator.allocate(80));
        });
        worker.join();
        inherited = std::move(next);
    }
    NativePolicy::rebind_thread_index(0);
    for (void* p : inherited)
        allocator.deallocate(p);

    EXPECT_TRUE(allocator.check_invariants());
    EXPECT_EQ(allocator.stats().in_use_bytes.current(), 0u);
    // 30 generations of 2000x80B: footprint must stay near one
    // generation's worth, not thirty.
    EXPECT_LT(allocator.stats().held_bytes.peak(),
              30u * 2000u * 80u / 4u);
}

}  // namespace
}  // namespace hoard
