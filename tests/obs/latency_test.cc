/** @file Unit tests for the per-path latency histograms. */

#include "obs/latency.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace hoard {
namespace obs {
namespace {

using Hist = LatencyHistogram;

TEST(LatencyBuckets, GoldenBoundaries)
{
    // Exact buckets for 0..3.
    EXPECT_EQ(Hist::bucket_for(0), 0);
    EXPECT_EQ(Hist::bucket_for(1), 1);
    EXPECT_EQ(Hist::bucket_for(2), 2);
    EXPECT_EQ(Hist::bucket_for(3), 3);
    // Octave [4, 8): 4 linear sub-buckets of width 1.
    EXPECT_EQ(Hist::bucket_for(4), 4);
    EXPECT_EQ(Hist::bucket_for(5), 5);
    EXPECT_EQ(Hist::bucket_for(6), 6);
    EXPECT_EQ(Hist::bucket_for(7), 7);
    // Octave [8, 16): sub-buckets of width 2.
    EXPECT_EQ(Hist::bucket_for(8), 8);
    EXPECT_EQ(Hist::bucket_for(9), 8);
    EXPECT_EQ(Hist::bucket_for(10), 9);
    EXPECT_EQ(Hist::bucket_for(15), 11);
    // Octave [16, 32): width 4.
    EXPECT_EQ(Hist::bucket_for(16), 12);

    EXPECT_EQ(Hist::bucket_lower(8), 8u);
    EXPECT_EQ(Hist::bucket_lower(9), 10u);
    EXPECT_EQ(Hist::bucket_lower(11), 14u);
    EXPECT_EQ(Hist::bucket_lower(12), 16u);
    EXPECT_EQ(Hist::bucket_upper(11), 16u);
}

TEST(LatencyBuckets, SaturationAtMaxOctave)
{
    const std::uint64_t top = std::uint64_t{1} << Hist::kMaxOctave;
    EXPECT_EQ(Hist::bucket_for(top), Hist::kBuckets - 1);
    EXPECT_EQ(Hist::bucket_for(top - 1), Hist::kBuckets - 2);
    EXPECT_EQ(Hist::bucket_for(~std::uint64_t{0}), Hist::kBuckets - 1);
    EXPECT_EQ(Hist::bucket_lower(Hist::kBuckets - 1), top);
    EXPECT_EQ(Hist::bucket_upper(Hist::kBuckets - 1),
              ~std::uint64_t{0});
}

TEST(LatencyBuckets, RoundTripsEveryBucket)
{
    for (int b = 0; b < Hist::kBuckets; ++b) {
        EXPECT_EQ(Hist::bucket_for(Hist::bucket_lower(b)), b)
            << "lower edge of bucket " << b;
        if (b + 1 < Hist::kBuckets) {
            EXPECT_EQ(Hist::bucket_for(Hist::bucket_upper(b) - 1), b)
                << "upper edge of bucket " << b;
            EXPECT_EQ(Hist::bucket_upper(b), Hist::bucket_lower(b + 1))
                << "buckets must tile without gaps at " << b;
        }
    }
}

TEST(LatencyHistogramTest, RecordTracksCountSumMax)
{
    Hist h;
    h.record(5);
    h.record(100);
    h.record(3);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 108u);
    EXPECT_EQ(h.max(), 100u);
    EXPECT_DOUBLE_EQ(h.mean(), 36.0);
}

TEST(LatencyHistogramTest, MergeIsAssociativeAndCommutative)
{
    Hist a, b, c;
    for (std::uint64_t v : {1u, 7u, 300u})
        a.record(v);
    for (std::uint64_t v : {12u, 12u, 9000u})
        b.record(v);
    for (std::uint64_t v : {0u, 1u << 20})
        c.record(v);

    Hist ab = a;
    ab.merge(b);
    Hist ab_c = ab;
    ab_c.merge(c);

    Hist bc = b;
    bc.merge(c);
    Hist a_bc = a;
    a_bc.merge(bc);

    Hist cba = c;
    cba.merge(b);
    cba.merge(a);

    EXPECT_EQ(ab_c, a_bc);
    EXPECT_EQ(ab_c, cba);
    EXPECT_EQ(ab_c.count(), 8u);
}

TEST(LatencyHistogramTest, PercentileOfEmptyIsZero)
{
    Hist h;
    EXPECT_DOUBLE_EQ(h.percentile(0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(99.9), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 0.0);
}

TEST(LatencyHistogramTest, PercentileSingleBucketClampsToMax)
{
    // One sample: every percentile must land on a value that was
    // actually possible — between the bucket's lower edge and the
    // recorded max, never past the max.
    Hist h;
    h.record(9);  // bucket [8, 10)
    for (double p : {1.0, 50.0, 99.0, 99.9, 100.0}) {
        EXPECT_GE(h.percentile(p), 8.0) << "p" << p;
        EXPECT_LE(h.percentile(p), 9.0) << "p" << p;
    }
    EXPECT_DOUBLE_EQ(h.percentile(100), 9.0);
}

TEST(LatencyHistogramTest, PercentileInterpolatesWithinBucket)
{
    // 4 samples all in bucket [16, 20); interpolation walks the
    // bucket linearly with the capped upper edge (max = 19).
    Hist h;
    for (int i = 0; i < 4; ++i)
        h.record(19);
    const double p25 = h.percentile(25);
    const double p75 = h.percentile(75);
    EXPECT_GE(p25, 16.0);
    EXPECT_LT(p25, p75);
    EXPECT_LE(p75, 19.0);
}

TEST(LatencyHistogramTest, PercentileSaturatingLastBucket)
{
    // A sample beyond 2^48 saturates into the open-ended last bucket;
    // the interpolation's upper edge must be capped at the recorded
    // max, not the bucket's astronomically large span.
    Hist h;
    const std::uint64_t huge_v = (std::uint64_t{1} << 50) + 12345;
    h.record(huge_v);
    const double lo =
        static_cast<double>(std::uint64_t{1} << Hist::kMaxOctave);
    for (double p : {1.0, 50.0, 99.9}) {
        EXPECT_GE(h.percentile(p), lo) << "p" << p;
        EXPECT_LE(h.percentile(p), static_cast<double>(huge_v))
            << "p" << p;
    }
    EXPECT_DOUBLE_EQ(h.percentile(100),
                     static_cast<double>(huge_v));
}

TEST(LatencyHistogramTest, PercentileEdgesOrdered)
{
    Hist h;
    for (std::uint64_t v = 1; v <= 1000; ++v)
        h.record(v);
    double prev = -1.0;
    for (double p : {0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
        const double v = h.percentile(p);
        EXPECT_GE(v, prev) << "p" << p;
        prev = v;
    }
    EXPECT_DOUBLE_EQ(h.percentile(100), 1000.0);
}

TEST(AtomicLatencyHistogramTest, MatchesPlainHistogram)
{
    AtomicLatencyHistogram atomic;
    Hist plain;
    for (std::uint64_t v : {0u, 1u, 63u, 64u, 65u, 4096u, 1u << 30}) {
        atomic.record(v);
        plain.record(v);
    }
    Hist merged;
    atomic.merge_into(merged);
    EXPECT_EQ(merged, plain);
}

TEST(AtomicLatencyHistogramTest, ConcurrentRecordsAllLand)
{
    AtomicLatencyHistogram atomic;
    constexpr int kThreads = 8;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&atomic, t] {
            for (int i = 0; i < kPerThread; ++i)
                atomic.record(
                    static_cast<std::uint64_t>(t * 1000 + i % 997));
        });
    }
    for (auto& th : threads)
        th.join();
    Hist merged;
    atomic.merge_into(merged);
    EXPECT_EQ(merged.count(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(LatencyCollectorTest, SnapshotMergesShardsPerPath)
{
    LatencyCollector collector(/*sample_period=*/1,
                               /*outlier_cycles=*/0);
    // Same path from many tids lands in different shards but one
    // histogram; different paths stay separate.
    for (int tid = 0; tid < 40; ++tid)
        collector.record(tid, LatencyPath::malloc_fast, 10);
    collector.record(3, LatencyPath::free_spill, 777);

    LatencySnapshot snap = collector.snapshot();
    EXPECT_EQ(snap.path(LatencyPath::malloc_fast).count(), 40u);
    EXPECT_EQ(snap.path(LatencyPath::free_spill).count(), 1u);
    EXPECT_EQ(snap.path(LatencyPath::free_spill).max(), 777u);
    EXPECT_EQ(snap.path(LatencyPath::owner_drain).count(), 0u);
    EXPECT_EQ(snap.total_count(), 41u);
    EXPECT_EQ(snap.sample_period, 1u);
}

TEST(LatencyCollectorTest, TickHonorsSamplePeriod)
{
    LatencyCollector collector(/*sample_period=*/4,
                               /*outlier_cycles=*/0);
    // The countdown is thread-local and may be mid-stride from other
    // tests on this thread; after the first firing the cadence must
    // be exactly one in four.
    while (!collector.tick()) {
    }
    int fired = 0;
    for (int i = 0; i < 40; ++i)
        fired += collector.tick() ? 1 : 0;
    EXPECT_EQ(fired, 10);
}

TEST(LatencyCollectorTest, ExactModeTicksEveryOp)
{
    LatencyCollector collector(/*sample_period=*/1,
                               /*outlier_cycles=*/0);
    while (!collector.tick()) {
    }
    for (int i = 0; i < 16; ++i)
        EXPECT_TRUE(collector.tick());
}

TEST(LatencyCollectorTest, OutlierThreshold)
{
    LatencyCollector off(/*sample_period=*/1, /*outlier_cycles=*/0);
    EXPECT_FALSE(off.is_outlier(~std::uint64_t{0}));

    LatencyCollector on(/*sample_period=*/1, /*outlier_cycles=*/500);
    EXPECT_FALSE(on.is_outlier(499));
    EXPECT_TRUE(on.is_outlier(500));
    EXPECT_TRUE(on.is_outlier(501));
}

TEST(LatencyCollectorTest, OutlierRingRetainsNewest)
{
    LatencyCollector collector(/*sample_period=*/1,
                               /*outlier_cycles=*/100);
    const int total = LatencyCollector::kOutlierSlots + 10;
    for (int i = 0; i < total; ++i) {
        std::uintptr_t frames[2] = {0x1000u + i, 0x2000u};
        collector.record_outlier(
            /*timestamp=*/static_cast<std::uint64_t>(i),
            /*tid=*/i & 7, LatencyPath::malloc_fresh_map,
            /*cycles=*/200 + static_cast<std::uint64_t>(i), frames, 2);
    }
    EXPECT_EQ(collector.outliers(), static_cast<std::uint64_t>(total));
    std::vector<LatencyOutlier> kept = collector.recent_outliers();
    ASSERT_EQ(kept.size(),
              static_cast<std::size_t>(LatencyCollector::kOutlierSlots));
    // Oldest retained is record #10; newest is the last written.
    EXPECT_EQ(kept.front().timestamp, 10u);
    EXPECT_EQ(kept.back().timestamp,
              static_cast<std::uint64_t>(total - 1));
    EXPECT_EQ(kept.back().path, LatencyPath::malloc_fresh_map);
    EXPECT_EQ(kept.back().frame_count, 2);
    EXPECT_EQ(kept.back().frames[1], 0x2000u);
}

TEST(LatencyCollectorTest, NullFramesRecordZeroFrameCount)
{
    LatencyCollector collector(/*sample_period=*/1,
                               /*outlier_cycles=*/1);
    collector.record_outlier(1, 0, LatencyPath::free_fast, 50, nullptr,
                             8);
    std::vector<LatencyOutlier> kept = collector.recent_outliers();
    ASSERT_EQ(kept.size(), 1u);
    EXPECT_EQ(kept[0].frame_count, 0);
}

TEST(LatencyPathTest, NamesAreStable)
{
    EXPECT_STREQ(to_string(LatencyPath::malloc_fast), "malloc_fast");
    EXPECT_STREQ(to_string(LatencyPath::malloc_refill),
                 "malloc_refill");
    EXPECT_STREQ(to_string(LatencyPath::malloc_global_fetch),
                 "malloc_global_fetch");
    EXPECT_STREQ(to_string(LatencyPath::malloc_fresh_map),
                 "malloc_fresh_map");
    EXPECT_STREQ(to_string(LatencyPath::free_fast), "free_fast");
    EXPECT_STREQ(to_string(LatencyPath::free_spill), "free_spill");
    EXPECT_STREQ(to_string(LatencyPath::free_remote_push),
                 "free_remote_push");
    EXPECT_STREQ(to_string(LatencyPath::owner_drain), "owner_drain");
}

TEST(LatencyProbeTest, DeepestStageWins)
{
    LatencyProbe probe;
    EXPECT_FALSE(probe.active);
    probe.begin(1000);
    EXPECT_TRUE(probe.active);
    EXPECT_EQ(probe.t0, 1000u);
    probe.begin(2000);  // second begin must not restart the clock
    EXPECT_EQ(probe.t0, 1000u);

    probe.raise(LatencyPath::malloc_global_fetch);
    EXPECT_EQ(probe.stage, LatencyPath::malloc_global_fetch);
    probe.raise(LatencyPath::malloc_refill);  // shallower: ignored
    EXPECT_EQ(probe.stage, LatencyPath::malloc_global_fetch);
    probe.raise(LatencyPath::malloc_fresh_map);
    EXPECT_EQ(probe.stage, LatencyPath::malloc_fresh_map);
}

}  // namespace
}  // namespace obs
}  // namespace hoard
