/** @file Unit tests for allocator snapshots and the invariant math. */

#include "obs/snapshot.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/hoard_allocator.h"
#include "core/superblock.h"
#include "policy/native_policy.h"

namespace hoard {
namespace obs {
namespace {

constexpr std::size_t kS = 8192;
constexpr double kT = 0.5;
constexpr std::size_t kK = 2;

HeapSnapshot
heap_with(int index, std::uint64_t in_use, std::uint64_t held,
          std::uint64_t uncarved = 0, std::uint64_t active_classes = 0)
{
    HeapSnapshot h;
    h.index = index;
    h.in_use = in_use;
    h.held = held;
    h.uncarved = uncarved;
    h.active_classes = active_classes;
    return h;
}

TEST(HeapSnapshot, GlobalHeapIsExemptFromInvariant)
{
    // Heap 0 is the buffer the invariant pushes *into*; it can be
    // arbitrarily empty.
    HeapSnapshot h = heap_with(0, 0, 100 * kS);
    EXPECT_TRUE(h.emptiness_ok(kS, kT, kK));
}

TEST(HeapSnapshot, SlackTermAbsorbsSmallHeaps)
{
    // u + K*S + S >= a: a heap holding few superblocks passes however
    // empty it is.
    HeapSnapshot h = heap_with(1, 0, (kK + 1) * kS);
    EXPECT_TRUE(h.emptiness_ok(kS, kT, kK));
}

TEST(HeapSnapshot, GrosslyEmptyLargeHeapViolates)
{
    // 100 superblocks held, nothing in use, no allowance: clearly
    // below u >= (1-t) a - K*S - S.
    HeapSnapshot h = heap_with(1, 0, 100 * kS);
    EXPECT_FALSE(h.emptiness_ok(kS, kT, kK));
    EXPECT_LT(h.invariant_slack_bytes(kS, kT, kK), 0.0);
}

TEST(HeapSnapshot, DenseLargeHeapPasses)
{
    HeapSnapshot h = heap_with(1, 90 * kS, 100 * kS);
    EXPECT_TRUE(h.emptiness_ok(kS, kT, kK));
    EXPECT_GT(h.invariant_slack_bytes(kS, kT, kK), 0.0);
}

TEST(HeapSnapshot, AllowanceRelaxesTheBound)
{
    // Just enough held that the fast path fails; allowance terms
    // (uncarved + (active+1)*S) shrink the effective a_i below the
    // violation threshold.
    std::uint64_t held = 20 * kS;
    HeapSnapshot bare = heap_with(1, 0, held);
    EXPECT_FALSE(bare.emptiness_ok(kS, kT, kK));
    HeapSnapshot relaxed =
        heap_with(1, 0, held, /*uncarved=*/4 * kS, /*active=*/9);
    // allowance = 4S + 10S = 14S; (1-t)(20S-14S) - 3S = 0 <= u.
    EXPECT_TRUE(relaxed.emptiness_ok(kS, kT, kK));
}

TEST(HeapSnapshot, SlackSignMatchesVerdict)
{
    for (std::uint64_t used = 0; used <= 50; used += 5) {
        HeapSnapshot h = heap_with(1, used * kS, 50 * kS);
        bool ok = h.emptiness_ok(kS, kT, kK);
        double slack = h.invariant_slack_bytes(kS, kT, kK);
        if (ok)
            EXPECT_GE(slack, 0.0) << "u=" << used << "S";
        else
            EXPECT_LT(slack, 0.0) << "u=" << used << "S";
    }
}

TEST(AllocatorSnapshot, SumsAndReconciliation)
{
    AllocatorSnapshot snap;
    snap.heaps.push_back(heap_with(0, 100, 1000));
    snap.heaps.push_back(heap_with(1, 200, 2000));
    snap.heaps.push_back(heap_with(2, 300, 3000));
    EXPECT_EQ(snap.sum_in_use(), 600u);
    EXPECT_EQ(snap.sum_held(), 6000u);

    // Identities: sum(u)+huge_user == in_use+cached,
    //             sum(a)+huge_span == held, and the virtual-memory
    //             ledger committed + purged == held.
    snap.huge_user_bytes = 50;
    snap.huge_span_bytes = 64;
    snap.cached_bytes = 40;
    snap.stats.in_use_bytes = 610;
    snap.stats.held_bytes = 6064;
    snap.stats.committed_bytes = 6000;
    snap.stats.purged_bytes = 64;
    EXPECT_TRUE(snap.reconciles());

    snap.stats.in_use_bytes = 611;  // one stray byte breaks it
    EXPECT_FALSE(snap.reconciles());
    snap.stats.in_use_bytes = 610;
    snap.stats.held_bytes = 6063;
    EXPECT_FALSE(snap.reconciles());
    snap.stats.held_bytes = 6064;
    snap.stats.purged_bytes = 63;  // a lost purged byte breaks it too
    EXPECT_FALSE(snap.reconciles());
}

TEST(AllocatorSnapshot, InvariantScanCoversEveryHeap)
{
    AllocatorSnapshot snap;
    snap.superblock_bytes = kS;
    snap.release_threshold = kT;
    snap.slack_superblocks = kK;
    snap.heaps.push_back(heap_with(0, 0, 100 * kS));  // exempt
    snap.heaps.push_back(heap_with(1, 90 * kS, 100 * kS));
    EXPECT_TRUE(snap.all_heaps_satisfy_invariant());
    snap.heaps.push_back(heap_with(2, 0, 100 * kS));  // violator
    EXPECT_FALSE(snap.all_heaps_satisfy_invariant());
}

TEST(LiveSnapshot, ReflectsSingleThreadedAllocations)
{
    Config config;
    config.heap_count = 2;
    HoardAllocator<NativePolicy> allocator(config);

    std::vector<void*> blocks;
    for (int i = 0; i < 200; ++i)
        blocks.push_back(allocator.allocate(64));

    AllocatorSnapshot snap = allocator.take_snapshot();
    EXPECT_EQ(snap.allocator_name, "hoard");
    EXPECT_EQ(snap.superblock_bytes, config.superblock_bytes);
    EXPECT_EQ(snap.heap_count, config.heap_count);
    ASSERT_EQ(snap.heaps.size(),
              static_cast<std::size_t>(config.heap_count) + 1);
    EXPECT_GE(snap.sum_in_use(), 200u * 64u);
    EXPECT_GE(snap.sum_held(), snap.sum_in_use());
    EXPECT_TRUE(snap.reconciles());
    EXPECT_TRUE(snap.all_heaps_satisfy_invariant());

    // Exactly one size class is populated, with full group breakdown.
    bool found = false;
    for (const HeapSnapshot& h : snap.heaps) {
        for (const ClassSnapshot& c : h.classes) {
            found = true;
            EXPECT_GE(c.block_bytes, 64u);
            EXPECT_GT(c.superblocks, 0u);
            EXPECT_LE(c.used_blocks, c.capacity_blocks);
            ASSERT_EQ(c.group_counts.size(),
                      static_cast<std::size_t>(
                          Superblock::kGroupCount));
            std::uint64_t group_total = 0;
            for (std::uint64_t g : c.group_counts)
                group_total += g;
            EXPECT_EQ(group_total, c.superblocks);
        }
    }
    EXPECT_TRUE(found);

    for (void* p : blocks)
        allocator.deallocate(p);
    AllocatorSnapshot after = allocator.take_snapshot();
    EXPECT_TRUE(after.reconciles());
    EXPECT_EQ(after.stats.in_use_bytes, 0u);
}

TEST(LiveSnapshot, CountsHugeAllocationsSeparately)
{
    Config config;
    config.heap_count = 1;
    HoardAllocator<NativePolicy> allocator(config);
    std::size_t huge = config.superblock_bytes;  // > S/2 => huge path
    void* p = allocator.allocate(huge);
    ASSERT_NE(p, nullptr);

    AllocatorSnapshot snap = allocator.take_snapshot();
    EXPECT_EQ(snap.huge_count, 1u);
    EXPECT_GE(snap.huge_user_bytes, huge);
    EXPECT_GE(snap.huge_span_bytes, snap.huge_user_bytes);
    EXPECT_TRUE(snap.reconciles());

    allocator.deallocate(p);
    snap = allocator.take_snapshot();
    EXPECT_EQ(snap.huge_count, 0u);
    EXPECT_TRUE(snap.reconciles());
}

TEST(LiveSnapshot, LockStatsPopulatedWhenObservabilityOn)
{
    Config config;
    config.heap_count = 1;
    config.observability = true;
    HoardAllocator<NativePolicy> allocator(config);
    if (!kCompiledIn)
        GTEST_SKIP() << "observability compiled out (HOARD_OBS=OFF)";
    ASSERT_TRUE(allocator.observability_enabled());

    void* p = allocator.allocate(128);
    allocator.deallocate(p);

    AllocatorSnapshot snap = allocator.take_snapshot();
    std::uint64_t acquires = 0;
    for (const HeapSnapshot& h : snap.heaps)
        acquires += h.lock.acquires;
    EXPECT_GT(acquires, 0u);
}

TEST(LiveSnapshot, LockStatsZeroWhenObservabilityOff)
{
    Config config;
    config.heap_count = 1;
    HoardAllocator<NativePolicy> allocator(config);
    EXPECT_FALSE(allocator.observability_enabled());
    void* p = allocator.allocate(128);
    allocator.deallocate(p);
    AllocatorSnapshot snap = allocator.take_snapshot();
    for (const HeapSnapshot& h : snap.heaps) {
        EXPECT_EQ(h.lock.acquires, 0u);
        EXPECT_EQ(h.lock.contended, 0u);
    }
}

}  // namespace
}  // namespace obs
}  // namespace hoard
