/** @file Unit tests for the Chrome trace / Prometheus / human exporters. */

#include "obs/trace_export.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/event_ring.h"
#include "obs/snapshot.h"
#include "tests/common/json_check.h"

namespace hoard {
namespace obs {
namespace {

using testutil::json_valid;

EventRecorder
recorder_with_events()
{
    EventRecorder recorder(16);
    recorder.record(1000, 0, EventKind::cache_miss, 1, 3, 64);
    recorder.record(2000, 1, EventKind::class_refill, 2, 3, 8192);
    recorder.record(3000, 0, EventKind::transfer_to_global, 1, 3, 8192);
    recorder.record(4000, 2, EventKind::huge_alloc, 0, -1, 1 << 20);
    return recorder;
}

AllocatorSnapshot
sample_snapshot()
{
    AllocatorSnapshot snap;
    snap.allocator_name = "hoard";
    snap.superblock_bytes = 8192;
    snap.empty_fraction = 0.25;
    snap.release_threshold = 0.5;
    snap.slack_superblocks = 2;
    snap.heap_count = 2;
    for (int i = 0; i < 3; ++i) {
        HeapSnapshot h;
        h.index = i;
        h.in_use = static_cast<std::uint64_t>(i) * 1000;
        h.held = static_cast<std::uint64_t>(i) * 8192;
        if (i == 2) {
            ClassSnapshot c;
            c.size_class = 3;
            c.block_bytes = 64;
            c.superblocks = 2;
            c.used_blocks = 31;
            c.capacity_blocks = 254;
            c.group_counts.assign(9, 0);
            c.group_counts[1] = 2;
            h.classes.push_back(c);
            h.lock.acquires = 10;
            h.lock.contended = 2;
            h.lock.wait.record(500);
            h.lock.wait.record(900);
        }
        snap.heaps.push_back(std::move(h));
    }
    snap.stats.in_use_bytes = 3000;
    snap.stats.held_bytes = 24576;
    return snap;
}

TEST(ChromeTrace, EmitsValidJson)
{
    std::ostringstream os;
    write_chrome_trace(os, recorder_with_events());
    std::string out = os.str();
    EXPECT_TRUE(json_valid(out)) << out;
}

TEST(ChromeTrace, ContainsEveryEventWithMetadata)
{
    std::ostringstream os;
    write_chrome_trace(os, recorder_with_events());
    std::string out = os.str();
    EXPECT_NE(out.find("\"name\":\"cache_miss\""), std::string::npos);
    EXPECT_NE(out.find("\"name\":\"class_refill\""), std::string::npos);
    EXPECT_NE(out.find("\"name\":\"transfer_to_global\""),
              std::string::npos);
    EXPECT_NE(out.find("\"name\":\"huge_alloc\""), std::string::npos);
    // Instant-event phase markers and the drop accounting footer.
    EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(out.find("\"recorded\":4"), std::string::npos);
    EXPECT_NE(out.find("\"dropped\":0"), std::string::npos);
    // The huge event's sentinel size class survives as a signed value.
    EXPECT_NE(out.find("\"size_class\":-1"), std::string::npos);
}

TEST(ChromeTrace, TimestampScalingIsApplied)
{
    // ts_per_us=1000 (ns -> us): 2000 ns must print as 2.000 us.
    std::ostringstream os;
    write_chrome_trace(os, recorder_with_events(), 1000.0);
    EXPECT_NE(os.str().find("\"ts\":2.000"), std::string::npos);

    // Identity scaling keeps virtual cycles as-is.
    std::ostringstream raw;
    write_chrome_trace(raw, recorder_with_events(), 1.0);
    EXPECT_NE(raw.str().find("\"ts\":2000.000"), std::string::npos);
}

TEST(ChromeTrace, EmptyRecorderStillValid)
{
    EventRecorder empty(2);
    std::ostringstream os;
    write_chrome_trace(os, empty);
    std::string out = os.str();
    EXPECT_TRUE(json_valid(out)) << out;
    EXPECT_NE(out.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(out.find("\"recorded\":0"), std::string::npos);
}

TEST(JsonChecker, CatchesMalformedDocuments)
{
    // Sanity-check the checker itself so a vacuous pass can't hide.
    EXPECT_TRUE(json_valid("{\"a\":[1,2.5,-3e2,\"x\\n\",true,null]}"));
    EXPECT_FALSE(json_valid("{\"a\":1,}"));
    EXPECT_FALSE(json_valid("{\"a\":1} junk"));
    EXPECT_FALSE(json_valid("[1,2"));
    EXPECT_FALSE(json_valid("{'a':1}"));
    EXPECT_FALSE(json_valid("{\"a\":01}"));
}

TEST(Prometheus, EmitsWellFormedExposition)
{
    std::ostringstream os;
    write_prometheus(os, sample_snapshot());
    std::string out = os.str();

    // Every metric family gets HELP/TYPE headers.
    EXPECT_NE(out.find("# HELP hoard_heap_in_use_bytes"),
              std::string::npos);
    EXPECT_NE(out.find("# TYPE hoard_heap_in_use_bytes gauge"),
              std::string::npos);
    EXPECT_NE(out.find("# TYPE hoard_lock_acquires_total counter"),
              std::string::npos);

    // Labeled samples carry the heap index and values.
    EXPECT_NE(out.find("hoard_heap_in_use_bytes{heap=\"1\"} 1000"),
              std::string::npos);
    EXPECT_NE(out.find("hoard_heap_superblocks{heap=\"2\","
                       "size_class=\"3\"} 2"),
              std::string::npos);
    EXPECT_NE(out.find("hoard_lock_acquires_total{heap=\"2\"} 10"),
              std::string::npos);
    EXPECT_NE(out.find("quantile=\"0.99\""), std::string::npos);

    // Global totals appear unlabeled.
    EXPECT_NE(out.find("hoard_in_use_bytes 3000"), std::string::npos);
    EXPECT_NE(out.find("hoard_held_bytes 24576"), std::string::npos);

    // Exposition format: no tabs, every non-empty line is either a
    // comment or "name{labels} value".
    std::istringstream lines(out);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty())
            continue;
        EXPECT_EQ(line.find('\t'), std::string::npos) << line;
        if (line[0] == '#')
            continue;
        std::size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        EXPECT_GT(space, 0u) << line;
    }
}

TEST(Prometheus, SkipsGlobalHeapSlackSample)
{
    std::ostringstream os;
    write_prometheus(os, sample_snapshot());
    EXPECT_EQ(os.str().find("hoard_heap_invariant_slack_bytes"
                            "{heap=\"0\"}"),
              std::string::npos);
}

TEST(HumanDump, SummarizesVerdictsAndHeaps)
{
    std::ostringstream os;
    write_human(os, sample_snapshot());
    std::string out = os.str();
    EXPECT_NE(out.find("hoard snapshot"), std::string::npos);
    EXPECT_NE(out.find("reconciles:"), std::string::npos);
    EXPECT_NE(out.find("invariant:"), std::string::npos);
    EXPECT_NE(out.find("heap 0 (global)"), std::string::npos);
    EXPECT_NE(out.find("class 3 (64 B)"), std::string::npos);
    EXPECT_NE(out.find("lock(acq=10"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace hoard
