/** @file Unit tests for the lock-free event ring and recorder. */

#include "obs/event_ring.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace hoard {
namespace obs {
namespace {

TraceEvent
make_event(std::uint64_t ts, int tid = 0,
           EventKind kind = EventKind::cache_hit)
{
    TraceEvent ev;
    ev.timestamp = ts;
    ev.bytes = ts * 10;
    ev.tid = tid;
    ev.size_class = static_cast<std::int32_t>(ts % 7);
    ev.heap = static_cast<std::uint16_t>(tid % 4);
    ev.kind = kind;
    return ev;
}

TEST(EventRing, RoundTripsAllFields)
{
    EventRing ring(8);
    TraceEvent in;
    in.timestamp = 0x1122334455667788;
    in.bytes = 4096;
    in.tid = 42;
    in.size_class = -1;  // SizeClasses::kHuge encodes as -1
    in.heap = 3;
    in.kind = EventKind::huge_alloc;
    ring.record(in);

    std::vector<TraceEvent> out;
    EXPECT_EQ(ring.collect(out), 1u);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].timestamp, in.timestamp);
    EXPECT_EQ(out[0].bytes, in.bytes);
    EXPECT_EQ(out[0].tid, in.tid);
    EXPECT_EQ(out[0].size_class, in.size_class);
    EXPECT_EQ(out[0].heap, in.heap);
    EXPECT_EQ(out[0].kind, in.kind);
}

TEST(EventRing, CollectReturnsOldestFirst)
{
    EventRing ring(8);
    for (std::uint64_t i = 1; i <= 5; ++i)
        ring.record(make_event(i));
    std::vector<TraceEvent> out;
    ring.collect(out);
    ASSERT_EQ(out.size(), 5u);
    for (std::uint64_t i = 0; i < 5; ++i)
        EXPECT_EQ(out[i].timestamp, i + 1);
}

TEST(EventRing, OverwritesOldestWhenFull)
{
    EventRing ring(4);
    for (std::uint64_t i = 1; i <= 10; ++i)
        ring.record(make_event(i));
    EXPECT_EQ(ring.total_recorded(), 10u);
    EXPECT_EQ(ring.dropped(), 6u);
    std::vector<TraceEvent> out;
    ring.collect(out);
    ASSERT_EQ(out.size(), 4u);
    // The four newest survive, oldest first.
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(out[i].timestamp, i + 7);
}

TEST(EventRing, NoDropsUntilCapacityExceeded)
{
    EventRing ring(4);
    for (std::uint64_t i = 0; i < 4; ++i) {
        EXPECT_EQ(ring.dropped(), 0u);
        ring.record(make_event(i + 1));
    }
    EXPECT_EQ(ring.dropped(), 0u);
    ring.record(make_event(5));
    EXPECT_EQ(ring.dropped(), 1u);
}

TEST(EventRingDeathTest, RejectsNonPowerOfTwoCapacity)
{
    EXPECT_DEATH(EventRing ring(3), "invariant failed");
    EXPECT_DEATH(EventRing ring(0), "invariant failed");
    EXPECT_DEATH(EventRing ring(1), "invariant failed");
}

TEST(EventRing, ConcurrentWritersLoseNothingFromCounts)
{
    // 4 writers, ring big enough to retain everything: total_recorded
    // must be exact and every retained slot must hold a plausible event
    // (fields may mix between racing writers, but counts cannot).
    EventRing ring(4096);
    constexpr int kWriters = 4;
    constexpr int kPerWriter = 1000;
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
        threads.emplace_back([&ring, w] {
            for (int i = 0; i < kPerWriter; ++i)
                ring.record(make_event(
                    static_cast<std::uint64_t>(i) + 1, w));
        });
    }
    for (auto& t : threads)
        t.join();
    EXPECT_EQ(ring.total_recorded(),
              static_cast<std::uint64_t>(kWriters * kPerWriter));
    EXPECT_EQ(ring.dropped(), 0u);
    std::vector<TraceEvent> out;
    EXPECT_EQ(ring.collect(out),
              static_cast<std::size_t>(kWriters * kPerWriter));
}

TEST(EventRecorder, ShardsByThreadAndMergesSorted)
{
    EventRecorder recorder(16);
    // Record with interleaved timestamps from many "threads".
    for (int tid = 0; tid < 32; ++tid) {
        recorder.record(static_cast<std::uint64_t>(100 - tid), tid,
                        EventKind::class_refill, tid % 4, 2, 512);
    }
    std::vector<TraceEvent> events = recorder.collect();
    ASSERT_EQ(events.size(), 32u);
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_LE(events[i - 1].timestamp, events[i].timestamp);
    EXPECT_EQ(recorder.total_recorded(), 32u);
    EXPECT_EQ(recorder.dropped(), 0u);
}

TEST(EventRecorder, KindCountsTallyRetainedWindow)
{
    EventRecorder recorder(16);
    for (int i = 0; i < 5; ++i)
        recorder.record(1, 0, EventKind::cache_hit, 1, 0, 8);
    for (int i = 0; i < 3; ++i)
        recorder.record(2, 1, EventKind::transfer_to_global, 1, 0, 8192);
    recorder.record(3, 2, EventKind::oom_reclaim, 0, -1, 1 << 20);

    std::vector<std::uint64_t> counts = recorder.kind_counts();
    ASSERT_EQ(counts.size(),
              static_cast<std::size_t>(EventKind::kCount));
    EXPECT_EQ(counts[static_cast<std::size_t>(EventKind::cache_hit)], 5u);
    EXPECT_EQ(
        counts[static_cast<std::size_t>(EventKind::transfer_to_global)],
        3u);
    EXPECT_EQ(counts[static_cast<std::size_t>(EventKind::oom_reclaim)],
              1u);
    EXPECT_EQ(counts[static_cast<std::size_t>(EventKind::huge_alloc)],
              0u);
}

TEST(EventKindNames, AreStableAndDistinct)
{
    EXPECT_STREQ(to_string(EventKind::transfer_to_global),
                 "transfer_to_global");
    EXPECT_STREQ(to_string(EventKind::fetch_from_global),
                 "fetch_from_global");
    EXPECT_STREQ(to_string(EventKind::cache_hit), "cache_hit");
    EXPECT_STREQ(to_string(EventKind::cache_miss), "cache_miss");
    EXPECT_STREQ(to_string(EventKind::class_refill), "class_refill");
    EXPECT_STREQ(to_string(EventKind::oom_reclaim), "oom_reclaim");
    EXPECT_STREQ(to_string(EventKind::huge_alloc), "huge_alloc");
    EXPECT_STREQ(to_string(EventKind::kCount), "?");
}

}  // namespace
}  // namespace obs
}  // namespace hoard
