/** @file Unit tests for the gauge time-series sampler ring. */

#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace hoard {
namespace obs {
namespace {

void
write_sample(TimeSeriesSampler& sampler, std::uint64_t ts)
{
    TimeSeriesSampler::Writer w = sampler.begin_sample(ts);
    w.set_gauges(ts * 10, ts * 20, ts * 30, ts * 40);
    w.set_counters(ts + 1, ts + 2, ts + 3, ts + 4);
    for (std::size_t h = 0; h < sampler.heap_slots(); ++h)
        w.set_heap(h, ts * 100 + h, ts * 200 + h);
}

TEST(TimeSeriesSampler, RoundTripsAllFields)
{
    TimeSeriesSampler sampler(8, 3, 10);
    write_sample(sampler, 7);

    std::vector<TimeSample> out = sampler.collect();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].timestamp, 7u);
    EXPECT_EQ(out[0].in_use, 70u);
    EXPECT_EQ(out[0].held, 140u);
    EXPECT_EQ(out[0].committed_bytes, 210u);
    EXPECT_EQ(out[0].cached_bytes, 280u);
    EXPECT_EQ(out[0].allocs, 8u);
    EXPECT_EQ(out[0].frees, 9u);
    EXPECT_EQ(out[0].transfers, 10u);
    EXPECT_EQ(out[0].global_fetches, 11u);
    ASSERT_EQ(out[0].heaps.size(), 3u);
    for (std::size_t h = 0; h < 3; ++h) {
        EXPECT_EQ(out[0].heaps[h].in_use, 700u + h);
        EXPECT_EQ(out[0].heaps[h].held, 1400u + h);
    }
}

TEST(TimeSeriesSampler, OverwritesOldestAndCountsDrops)
{
    TimeSeriesSampler sampler(4, 1, 1);
    for (std::uint64_t ts = 1; ts <= 10; ++ts)
        write_sample(sampler, ts);

    EXPECT_EQ(sampler.total_samples(), 10u);
    EXPECT_EQ(sampler.dropped(), 6u);

    std::vector<TimeSample> out = sampler.collect();
    ASSERT_EQ(out.size(), 4u);
    // Oldest retained first: 7, 8, 9, 10.
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(out[i].timestamp, 7u + i);
}

TEST(TimeSeriesSampler, ClaimDueEnforcesInterval)
{
    TimeSeriesSampler sampler(8, 1, 100);
    EXPECT_TRUE(sampler.claim_due(100));   // 100 >= 0 + 100
    EXPECT_FALSE(sampler.claim_due(150));  // 150 < 100 + 100
    EXPECT_FALSE(sampler.claim_due(199));
    EXPECT_TRUE(sampler.claim_due(200));
    EXPECT_TRUE(sampler.claim_due(1000));
}

TEST(TimeSeriesSampler, ClaimRejectsRegressedTime)
{
    TimeSeriesSampler sampler(8, 1, 10);
    EXPECT_TRUE(sampler.claim_due(500));
    // Another thread's clock reading behind the last claim loses: the
    // retained timeline stays monotone nondecreasing.
    EXPECT_FALSE(sampler.claim_due(400));
}

TEST(TimeSeriesSampler, ClaimFlushIgnoresIntervalAndClampsForward)
{
    TimeSeriesSampler sampler(8, 1, 1000000);
    EXPECT_EQ(sampler.claim_flush(5), 5u);
    EXPECT_EQ(sampler.claim_flush(6), 6u);  // interval never consulted
    // A flush from a clock that restarted (fresh checker machine)
    // stamps at the last claimed time instead of going backwards.
    EXPECT_EQ(sampler.claim_flush(2), 6u);
    EXPECT_TRUE(sampler.claim_due(1000006));
    EXPECT_EQ(sampler.claim_flush(0), 1000006u);
}

TEST(TimeSeriesSampler, WriterIgnoresOutOfRangeHeap)
{
    TimeSeriesSampler sampler(4, 2, 1);
    TimeSeriesSampler::Writer w = sampler.begin_sample(1);
    w.set_heap(0, 1, 2);
    w.set_heap(5, 99, 99);  // silently dropped, no overrun
    std::vector<TimeSample> out = sampler.collect();
    ASSERT_EQ(out.size(), 1u);
    ASSERT_EQ(out[0].heaps.size(), 2u);
    EXPECT_EQ(out[0].heaps[0].in_use, 1u);
    EXPECT_EQ(out[0].heaps[1].in_use, 0u);
}

TEST(TimeSeriesSampler, BlowupComputedPerSample)
{
    TimeSeriesSampler sampler(4, 1, 1);
    TimeSeriesSampler::Writer w = sampler.begin_sample(1);
    w.set_gauges(100, 250, 0, 0);
    std::vector<TimeSample> out = sampler.collect();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_DOUBLE_EQ(out[0].blowup(), 2.5);

    TimeSample empty;
    EXPECT_DOUBLE_EQ(empty.blowup(), 0.0);  // nothing live
}

TEST(TimeSeriesSampler, ConcurrentClaimsYieldOnePerWindow)
{
    TimeSeriesSampler sampler(64, 1, 10);
    constexpr int kThreads = 8;
    std::atomic<int> claims{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            // All threads contend for the same window at ts=10.
            if (sampler.claim_due(10))
                claims.fetch_add(1);
        });
    }
    for (auto& th : threads)
        th.join();
    EXPECT_EQ(claims.load(), 1);
}

}  // namespace
}  // namespace obs
}  // namespace hoard
