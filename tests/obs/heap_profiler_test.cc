/**
 * @file
 * Unit tests for the sampling heap profiler (obs/heap_profiler.h):
 * golden bytes for the hand-rolled pprof varint encoder, the sampling
 * distribution's mean, site-table collision/drop behavior, exact
 * free pairing through the live map, and the shape of the three
 * exports (pprof, leak report, Prometheus).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/heap_profiler.h"

namespace hoard {
namespace obs {
namespace {

std::string
bytes(std::initializer_list<unsigned char> v)
{
    return std::string(v.begin(), v.end());
}

std::string
varint(std::uint64_t v)
{
    std::string out;
    pprof_put_varint(out, v);
    return out;
}

TEST(PprofWire, VarintGoldenBytes)
{
    // protobuf.dev/programming-guides/encoding reference vectors.
    EXPECT_EQ(varint(0), bytes({0x00}));
    EXPECT_EQ(varint(1), bytes({0x01}));
    EXPECT_EQ(varint(127), bytes({0x7F}));
    EXPECT_EQ(varint(128), bytes({0x80, 0x01}));
    EXPECT_EQ(varint(300), bytes({0xAC, 0x02}));
    EXPECT_EQ(varint(16384), bytes({0x80, 0x80, 0x01}));
    // The widest case: 10 bytes, 9 continuations then the top bit.
    EXPECT_EQ(varint(~std::uint64_t{0}),
              bytes({0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                     0xFF, 0x01}));
}

TEST(PprofWire, FieldEncodings)
{
    std::string out;
    pprof_put_field_varint(out, 1, 2);  // tag = (1<<3)|0
    EXPECT_EQ(out, bytes({0x08, 0x02}));

    out.clear();
    pprof_put_field_varint(out, 12, 300);  // tag 0x60
    EXPECT_EQ(out, bytes({0x60, 0xAC, 0x02}));

    out.clear();
    pprof_put_field_bytes(out, 6, "abc");  // tag = (6<<3)|2
    EXPECT_EQ(out, bytes({0x32, 0x03}) + "abc");
}

/** A fake one-frame stack, distinct per @p token. */
std::uintptr_t
site_token(unsigned token)
{
    return 0x1000u + 0x40u * token;
}

/** Records one sampled allocation with a single-frame stack. */
void
record(HeapProfiler& prof, const void* ptr, std::size_t requested,
       std::size_t rounded, unsigned token, std::uint64_t now = 10)
{
    const std::uintptr_t frames[1] = {site_token(token)};
    prof.record_alloc(ptr, requested, rounded, /*cls=*/0, frames, 1,
                      now);
}

TEST(HeapProfilerSampling, ExactModeSamplesEveryAllocation)
{
    HeapProfiler prof(/*rate=*/1, 64, 64, 8, 4);
    for (int i = 0; i < 1000; ++i)
        EXPECT_TRUE(prof.tick(0, 8));
    // Even a zero-byte charge trips the armed threshold of 1 at most
    // one allocation late; with any positive charge it trips every
    // time, which is what makes rate==1 an exact census.
}

TEST(HeapProfilerSampling, MeanGapMatchesRate)
{
    // The RNG is seeded deterministically per countdown slot, so the
    // sample count for a fixed call sequence is reproducible; the
    // bounds below are ~6 standard deviations wide.
    constexpr std::size_t kRate = 4096;
    constexpr std::size_t kBytes = 64;
    constexpr int kTicks = 200000;
    HeapProfiler prof(kRate, 64, 64, 8, 4);
    int samples = 0;
    for (int i = 0; i < kTicks; ++i)
        samples += prof.tick(/*thread_index=*/0, kBytes) ? 1 : 0;

    const double expected =
        static_cast<double>(kTicks) * kBytes / kRate;  // 3125
    EXPECT_GT(samples, expected * 0.88);
    EXPECT_LT(samples, expected * 1.12);
}

TEST(HeapProfilerSampling, ThreadSlotsAreIndependent)
{
    constexpr std::size_t kRate = 1024;
    HeapProfiler prof(kRate, 64, 64, 8, 4);
    // Each slot draws its own exponential sequence; a slot that never
    // ticks stays armed and contributes nothing.
    int samples0 = 0, samples7 = 0;
    for (int i = 0; i < 50000; ++i) {
        samples0 += prof.tick(0, 32) ? 1 : 0;
        samples7 += prof.tick(7, 32) ? 1 : 0;
    }
    EXPECT_GT(samples0, 0);
    EXPECT_GT(samples7, 0);
    const double expected = 50000.0 * 32 / kRate;
    EXPECT_LT(std::abs(samples0 - expected), expected * 0.25);
    EXPECT_LT(std::abs(samples7 - expected), expected * 0.25);
}

TEST(HeapProfilerSites, SameStackMergesDifferentStacksSplit)
{
    HeapProfiler prof(1, 64, 64, 8, 4);
    int x1, x2, x3;
    record(prof, &x1, 10, 16, /*token=*/1);
    record(prof, &x2, 12, 16, /*token=*/1);
    record(prof, &x3, 20, 32, /*token=*/2);

    ProfilerTotals t = prof.totals();
    EXPECT_EQ(t.sampled_objects, 3u);
    EXPECT_EQ(t.sampled_requested, 42u);
    EXPECT_EQ(t.sampled_rounded, 64u);
    EXPECT_EQ(t.sites, 2u);
    EXPECT_EQ(t.site_drops, 0u);

    std::size_t visited = 0;
    prof.for_each_site([&](const std::uintptr_t* frames, int depth,
                           std::uint64_t objects, std::uint64_t req,
                           std::uint64_t rounded, std::uint64_t live,
                           std::uint64_t, std::uint64_t, std::uint64_t,
                           std::uint64_t) {
        ++visited;
        ASSERT_EQ(depth, 1);
        if (frames[0] == site_token(1)) {
            EXPECT_EQ(objects, 2u);
            EXPECT_EQ(req, 22u);
            EXPECT_EQ(rounded, 32u);
            EXPECT_EQ(live, 2u);
        } else {
            EXPECT_EQ(frames[0], site_token(2));
            EXPECT_EQ(objects, 1u);
        }
    });
    EXPECT_EQ(visited, 2u);
}

TEST(HeapProfilerSites, FullTableDropsIntoCounterWithoutLiveInsert)
{
    // Two slots, bounded probing: token floods past capacity must land
    // in site_drops, and dropped samples must NOT touch the live
    // gauges (otherwise live attribution would leak estimates with no
    // site to charge them to).
    HeapProfiler prof(1, /*site_slots=*/2, 64, 8, 4);
    std::vector<int> anchors(100);
    for (unsigned i = 0; i < anchors.size(); ++i)
        record(prof, &anchors[i], 8, 8, /*token=*/i);

    ProfilerTotals t = prof.totals();
    EXPECT_EQ(t.sampled_objects, 100u);
    EXPECT_LE(t.sites, 2u);
    EXPECT_GE(t.site_drops, 98u);
    // A dropped sample never enters the live map, so live attribution
    // stays exact: inserts + drops account for every sample.
    EXPECT_EQ(t.live_objects + t.site_drops, 100u);
}

TEST(HeapProfilerLiveMap, FreePairingIsExact)
{
    HeapProfiler prof(1, 256, 256, 8, 4);
    std::vector<long> blocks(50);
    for (unsigned i = 0; i < blocks.size(); ++i)
        record(prof, &blocks[i], 24, 32, /*token=*/i % 4,
               /*now=*/100 + i);

    ProfilerTotals before = prof.totals();
    ASSERT_EQ(before.live_objects, 50u);
    ASSERT_EQ(before.live_bytes, 50u * 32);
    ASSERT_EQ(before.live_requested, 50u * 24);
    ASSERT_EQ(before.live_drops, 0u);

    // A pointer that was never sampled misses without reading the
    // clock.
    long unsampled;
    bool clock_read = false;
    EXPECT_FALSE(prof.on_free(&unsampled, [&] {
        clock_read = true;
        return std::uint64_t{0};
    }));
    EXPECT_FALSE(clock_read);

    // Every sampled pointer pairs exactly once.
    for (unsigned i = 0; i < blocks.size(); ++i)
        EXPECT_TRUE(
            prof.on_free(&blocks[i], [] { return std::uint64_t{500}; }))
            << i;
    for (unsigned i = 0; i < blocks.size(); ++i)
        EXPECT_FALSE(
            prof.on_free(&blocks[i], [] { return std::uint64_t{501}; }))
            << "double pairing " << i;

    ProfilerTotals after = prof.totals();
    EXPECT_EQ(after.live_objects, 0u);
    EXPECT_EQ(after.live_bytes, 0u);
    EXPECT_EQ(after.live_requested, 0u);
    EXPECT_EQ(after.frees_paired, 50u);

    // Lifetimes were recorded against the sites.
    std::uint64_t lifetime_count = 0;
    prof.for_each_site([&](const std::uintptr_t*, int, std::uint64_t,
                           std::uint64_t, std::uint64_t, std::uint64_t,
                           std::uint64_t, std::uint64_t, std::uint64_t,
                           std::uint64_t count) {
        lifetime_count += count;
    });
    EXPECT_EQ(lifetime_count, 50u);
}

TEST(HeapProfilerLiveMap, WindowOverflowDropsAreCountedNotMisattributed)
{
    // live_slots == 8 collapses the map to a single 8-slot window:
    // the ninth insert must be dropped and counted, and the eight that
    // did land must all still pair.
    HeapProfiler prof(1, 64, /*live_slots=*/8, 8, 4);
    std::vector<int> blocks(9);
    for (unsigned i = 0; i < blocks.size(); ++i)
        record(prof, &blocks[i], 16, 16, /*token=*/0);

    ProfilerTotals t = prof.totals();
    EXPECT_EQ(t.live_drops, 1u);
    EXPECT_EQ(t.live_drop_bytes, 16u);
    EXPECT_EQ(t.live_objects, 8u);

    int paired = 0;
    for (unsigned i = 0; i < blocks.size(); ++i)
        paired +=
            prof.on_free(&blocks[i], [] { return std::uint64_t{9}; })
                ? 1
                : 0;
    EXPECT_EQ(paired, 8);
    EXPECT_EQ(prof.totals().live_objects, 0u);
}

TEST(HeapProfilerExport, PprofStartsWithSampleTypeAndParses)
{
    HeapProfiler prof(1, 64, 64, 8, 4);
    int anchor;
    record(prof, &anchor, 100, 128, 1);

    std::ostringstream os;
    prof.write_pprof_profile(os);
    const std::string profile = os.str();
    ASSERT_GT(profile.size(), 16u);
    // Field 1 (sample_type), wiretype 2: the fixed header every pprof
    // reader keys on — also what the CI preload smoke checks.
    EXPECT_EQ(static_cast<unsigned char>(profile[0]), 0x0Au);
    // Four sample types, each a 4-byte ValueType submessage referring
    // to interned strings: the first is {type=1, unit=2}.
    EXPECT_EQ(profile.substr(0, 6),
              bytes({0x0A, 0x04, 0x08, 0x01, 0x10, 0x02}));

    // Serialization is deterministic for a fixed site table.
    std::ostringstream again;
    prof.write_pprof_profile(again);
    EXPECT_EQ(profile, again.str());
}

TEST(HeapProfilerExport, LeakReportListsLiveSitesThenGoesQuiet)
{
    HeapProfiler prof(1, 64, 64, 8, 4);
    std::vector<int> blocks(3);
    for (unsigned i = 0; i < blocks.size(); ++i)
        record(prof, &blocks[i], 40, 64, /*token=*/i);

    std::ostringstream leaks;
    EXPECT_EQ(prof.write_leak_report(leaks), 3u);
    EXPECT_NE(leaks.str().find("LEAK:"), std::string::npos);

    for (unsigned i = 0; i < blocks.size(); ++i)
        ASSERT_TRUE(
            prof.on_free(&blocks[i], [] { return std::uint64_t{1}; }));

    std::ostringstream clean;
    EXPECT_EQ(prof.write_leak_report(clean), 0u);
    EXPECT_NE(clean.str().find("no leaks detected"), std::string::npos);
}

TEST(HeapProfilerExport, PrometheusCarriesClassFragmentation)
{
    HeapProfiler prof(1, 64, 64, 8, /*num_classes=*/4);
    int a, b;
    const std::uintptr_t frames[1] = {site_token(9)};
    prof.record_alloc(&a, 24, 32, /*cls=*/2, frames, 1, 5);
    prof.record_alloc(&b, 4096, 4096, HeapProfiler::kHugeClass, frames,
                      1, 6);

    ClassProfile cls2 = prof.class_profile(2);
    EXPECT_EQ(cls2.objects, 1u);
    EXPECT_EQ(cls2.requested_bytes, 24u);
    EXPECT_EQ(cls2.rounded_bytes, 32u);
    ClassProfile huge = prof.class_profile(prof.num_classes());
    EXPECT_EQ(huge.objects, 1u);

    std::ostringstream os;
    prof.write_prometheus(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("hoard_profiler_sampled_objects_total"),
              std::string::npos);
    EXPECT_NE(text.find("class=\"2\""), std::string::npos);
    EXPECT_NE(text.find("class=\"huge\""), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace hoard
