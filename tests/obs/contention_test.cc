/** @file Unit tests for the lock-contention profiler. */

#include "obs/contention.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "policy/native_policy.h"

namespace hoard {
namespace obs {
namespace {

TEST(ProfiledMutex, UnprofiledStaysSilent)
{
    ProfiledMutex<NativePolicy> m;
    for (int i = 0; i < 10; ++i) {
        m.lock();
        m.unlock();
    }
    m.lock();
    EXPECT_EQ(m.stats_locked().acquires, 0u);
    EXPECT_EQ(m.stats_locked().contended, 0u);
    m.unlock();
    EXPECT_FALSE(m.profiled());
}

TEST(ProfiledMutex, CountsUncontendedAcquires)
{
    if (!kCompiledIn)
        GTEST_SKIP() << "observability compiled out (HOARD_OBS=OFF)";
    ProfiledMutex<NativePolicy> m;
    m.set_profiled(true);
    for (int i = 0; i < 25; ++i) {
        m.lock();
        m.unlock();
    }
    m.lock();
    EXPECT_EQ(m.stats_locked().acquires, 26u);
    EXPECT_EQ(m.stats_locked().contended, 0u);
    EXPECT_EQ(m.stats_locked().wait.count(), 0u);
    m.unlock();
}

TEST(ProfiledMutex, CountsSuccessfulTryLocks)
{
    if (!kCompiledIn)
        GTEST_SKIP() << "observability compiled out (HOARD_OBS=OFF)";
    ProfiledMutex<NativePolicy> m;
    m.set_profiled(true);
    ASSERT_TRUE(m.try_lock());
    EXPECT_EQ(m.stats_locked().acquires, 1u);
    EXPECT_FALSE(m.try_lock());  // held; failure must not count
    EXPECT_EQ(m.stats_locked().acquires, 1u);
    m.unlock();
}

TEST(ProfiledMutex, WorksWithLockGuard)
{
    if (!kCompiledIn)
        GTEST_SKIP() << "observability compiled out (HOARD_OBS=OFF)";
    ProfiledMutex<NativePolicy> m;
    m.set_profiled(true);
    {
        std::lock_guard<ProfiledMutex<NativePolicy>> guard(m);
    }
    m.lock();
    EXPECT_EQ(m.stats_locked().acquires, 2u);
    m.unlock();
}

TEST(ProfiledMutex, DetectsContentionAcrossThreads)
{
    if (!kCompiledIn)
        GTEST_SKIP() << "observability compiled out (HOARD_OBS=OFF)";
    ProfiledMutex<NativePolicy> m;
    m.set_profiled(true);
    constexpr int kThreads = 4;
    constexpr int kIters = 2000;
    std::atomic<int> spin{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&m, &spin] {
            for (int i = 0; i < kIters; ++i) {
                m.lock();
                // A little work under the lock so others pile up.
                spin.fetch_add(1, std::memory_order_relaxed);
                m.unlock();
            }
        });
    }
    for (auto& t : threads)
        t.join();

    m.lock();  // counts as one more acquire
    const LockStats& stats = m.stats_locked();
    EXPECT_EQ(stats.acquires,
              static_cast<std::uint64_t>(kThreads * kIters) + 1);
    EXPECT_LE(stats.contended, stats.acquires);
    // Every contended acquisition recorded its wait.
    EXPECT_EQ(stats.wait.count(), stats.contended);
    if (stats.contended > 0) {
        EXPECT_GT(stats.wait.max(), 0u);
    }
    m.unlock();
    EXPECT_EQ(spin.load(), kThreads * kIters);
}

/**
 * Same policy with instrumentation compiled out: the profiling flag
 * becomes inert and stats stay zero, which is what the overhead
 * benchmark's uninstrumented variant relies on.
 */
struct NoObsPolicy : NativePolicy
{
    static constexpr bool kObsEnabled = false;
};

TEST(ProfiledMutex, CompiledOutPolicyRecordsNothing)
{
    ProfiledMutex<NoObsPolicy> m;
    m.set_profiled(true);  // ignored: kObsEnabled is false
    for (int i = 0; i < 10; ++i) {
        m.lock();
        m.unlock();
    }
    ASSERT_TRUE(m.try_lock());
    EXPECT_EQ(m.stats_locked().acquires, 0u);
    EXPECT_EQ(m.stats_locked().contended, 0u);
    m.unlock();
}

TEST(LockStats, DefaultsToZero)
{
    LockStats stats;
    EXPECT_EQ(stats.acquires, 0u);
    EXPECT_EQ(stats.contended, 0u);
    EXPECT_EQ(stats.wait.count(), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace hoard
