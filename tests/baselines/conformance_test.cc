/**
 * @file
 * Cross-allocator conformance suite: every allocator in the taxonomy
 * must be a *correct* allocator — distinct writable memory, survival
 * of cross-thread frees, usable_size honesty, stats consistency —
 * whatever its performance class.  TEST_P over all four kinds.
 */

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "baselines/factory.h"
#include "common/memutil.h"
#include "common/rng.h"
#include "policy/native_policy.h"
#include "workloads/runners.h"

namespace hoard {
namespace {

class ConformanceTest
    : public ::testing::TestWithParam<baselines::AllocatorKind>
{
  protected:
    std::unique_ptr<Allocator>
    make(int heaps = 4)
    {
        Config config;
        config.heap_count = heaps;
        return baselines::make_allocator<NativePolicy>(GetParam(),
                                                       config);
    }
};

TEST_P(ConformanceTest, DistinctWritableBlocks)
{
    auto allocator = make();
    std::set<void*> seen;
    std::vector<void*> blocks;
    for (int i = 0; i < 2000; ++i) {
        void* p = allocator->allocate(40);
        ASSERT_NE(p, nullptr);
        EXPECT_TRUE(seen.insert(p).second);
        detail::pattern_fill(p, 40, static_cast<std::uint64_t>(i));
        blocks.push_back(p);
    }
    for (std::size_t i = 0; i < blocks.size(); ++i)
        EXPECT_TRUE(detail::pattern_check(blocks[i], 40, i));
    for (void* p : blocks)
        allocator->deallocate(p);
}

TEST_P(ConformanceTest, UsableSizeCoversRequest)
{
    auto allocator = make();
    for (std::size_t size :
         {1u, 7u, 8u, 63u, 100u, 1023u, 3000u, 100000u}) {
        void* p = allocator->allocate(size);
        ASSERT_NE(p, nullptr) << size;
        EXPECT_GE(allocator->usable_size(p), size);
        allocator->deallocate(p);
    }
}

TEST_P(ConformanceTest, NullFreeIsNoop)
{
    auto allocator = make();
    allocator->deallocate(nullptr);
}

TEST_P(ConformanceTest, ReallocatePreservesPrefix)
{
    auto allocator = make();
    auto* p = static_cast<char*>(allocator->allocate(64));
    detail::pattern_fill(p, 64, 9);
    auto* q = static_cast<char*>(allocator->reallocate(p, 6000));
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(q[i], static_cast<char>(detail::pattern_byte(p, i, 9)));
    allocator->deallocate(q);
}

TEST_P(ConformanceTest, HugeObjects)
{
    auto allocator = make();
    void* p = allocator->allocate(1 << 20);
    ASSERT_NE(p, nullptr);
    detail::pattern_fill(p, 1 << 20, 4);
    EXPECT_TRUE(detail::pattern_check(p, 1 << 20, 4));
    allocator->deallocate(p);
}

TEST_P(ConformanceTest, StatsBalance)
{
    auto allocator = make();
    std::vector<void*> blocks;
    for (int i = 0; i < 500; ++i)
        blocks.push_back(allocator->allocate(96));
    EXPECT_EQ(allocator->stats().allocs.get(), 500u);
    for (void* p : blocks)
        allocator->deallocate(p);
    EXPECT_EQ(allocator->stats().frees.get(), 500u);
    EXPECT_EQ(allocator->stats().in_use_bytes.current(), 0u);
    EXPECT_GE(allocator->stats().held_bytes.peak(),
              allocator->stats().in_use_bytes.peak());
}

TEST_P(ConformanceTest, CrossThreadFreeIsSafe)
{
    auto allocator = make();
    std::vector<void*> blocks(4000);
    workloads::native_run(2, [&](int tid) {
        NativePolicy::rebind_thread_index(tid);
        if (tid == 0) {
            for (auto& p : blocks) {
                p = allocator->allocate(56);
                detail::pattern_fill(p, 56, 1);
            }
        }
    });
    // All blocks written by thread 0; a different thread frees them.
    workloads::native_run(1, [&](int) {
        NativePolicy::rebind_thread_index(1);
        for (void* p : blocks) {
            EXPECT_TRUE(detail::pattern_check(p, 56, 1));
            allocator->deallocate(p);
        }
    });
    EXPECT_EQ(allocator->stats().in_use_bytes.current(), 0u);
}

TEST_P(ConformanceTest, ConcurrentChurnNoCorruption)
{
    auto allocator = make();
    const int kThreads = 4;
    workloads::native_run(kThreads, [&](int tid) {
        NativePolicy::rebind_thread_index(tid);
        detail::Rng rng(static_cast<std::uint64_t>(tid) + 100);
        std::vector<std::pair<void*, std::size_t>> live;
        for (int op = 0; op < 8000; ++op) {
            if (live.size() < 64 || rng.chance(0.5)) {
                std::size_t size = rng.range(1, 400);
                void* p = allocator->allocate(size);
                ASSERT_NE(p, nullptr);
                detail::pattern_fill(p, size, size ^ 0x5aULL);
                live.emplace_back(p, size);
            } else {
                auto idx =
                    static_cast<std::size_t>(rng.below(live.size()));
                ASSERT_TRUE(detail::pattern_check(
                    live[idx].first, live[idx].second,
                    live[idx].second ^ 0x5aULL));
                allocator->deallocate(live[idx].first);
                live[idx] = live.back();
                live.pop_back();
            }
        }
        for (auto& [p, size] : live)
            allocator->deallocate(p);
    });
    EXPECT_EQ(allocator->stats().in_use_bytes.current(), 0u);
}

TEST_P(ConformanceTest, MemoryComesFromOwnProvider)
{
    os::MmapPageProvider provider;
    Config config;
    config.heap_count = 2;
    auto allocator = baselines::make_allocator<NativePolicy>(
        GetParam(), config, provider);
    void* p = allocator->allocate(64);
    EXPECT_GT(provider.mapped_bytes(), 0u);
    allocator->deallocate(p);
    allocator.reset();
    EXPECT_EQ(provider.mapped_bytes(), 0u)
        << "allocator destructor must return every byte to the OS";
}

TEST_P(ConformanceTest, NameMatchesFactoryString)
{
    auto allocator = make();
    EXPECT_STREQ(allocator->name(), baselines::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ConformanceTest,
    ::testing::ValuesIn(baselines::kAllKinds),
    [](const ::testing::TestParamInfo<baselines::AllocatorKind>& info) {
        return baselines::to_string(info.param);
    });

}  // namespace
}  // namespace hoard
