/**
 * @file
 * Behavioral distinction tests: each baseline must exhibit exactly the
 * failure mode its taxonomy row (paper Table 1) assigns to it, and
 * Hoard must exhibit none.  These are the repository's executable
 * version of the paper's §2 analysis.
 */

#include <gtest/gtest.h>

#include <vector>

#include "baselines/factory.h"
#include "baselines/ownership_allocator.h"
#include "baselines/pure_private_allocator.h"
#include "policy/native_policy.h"
#include "workloads/prodcons.h"

namespace hoard {
namespace {

std::vector<std::size_t>
prodcons_series(Allocator& allocator, int rounds)
{
    workloads::ProdConsParams params;
    params.rounds = rounds;
    params.batch_objects = 300;
    params.object_bytes = 64;
    std::vector<std::size_t> held;
    workloads::prodcons_pair<NativePolicy>(allocator, params, 0, &held);
    return held;
}

TEST(Blowup, PurePrivateGrowsWithoutBound)
{
    Config config;
    config.heap_count = 4;
    auto allocator = baselines::make_allocator<NativePolicy>(
        baselines::AllocatorKind::pure_private, config);
    auto held = prodcons_series(*allocator, 60);
    // Footprint keeps growing: round 60 far above round 10.
    EXPECT_GT(held[59], held[9] * 3)
        << "pure private heaps must leak the producer's superblocks";
    // And the growth is roughly linear in rounds (each batch strands).
    EXPECT_GT(held[59], held[29]);
}

TEST(Blowup, HoardSerialOwnershipAreBounded)
{
    for (auto kind : {baselines::AllocatorKind::hoard,
                      baselines::AllocatorKind::serial,
                      baselines::AllocatorKind::ownership}) {
        Config config;
        config.heap_count = 4;
        auto allocator =
            baselines::make_allocator<NativePolicy>(kind, config);
        auto held = prodcons_series(*allocator, 60);
        EXPECT_LE(held[59], held[9] + 4 * config.superblock_bytes)
            << baselines::to_string(kind);
    }
}

TEST(Blowup, OwnershipStrandsOneBatchPerRoleHoardDoesNot)
{
    // The paper's O(P) vs O(1) distinction (§2.2): rotate the producer
    // role around P logical threads while live memory stays at exactly
    // one batch.  Ownership arenas never release, so each role strands
    // a batch; Hoard recycles abandoned heaps through the global heap.
    auto footprint = [](baselines::AllocatorKind kind, int roles) {
        Config config;
        config.heap_count = roles;
        auto allocator =
            baselines::make_allocator<NativePolicy>(kind, config);
        workloads::ProdConsParams params;
        params.rounds = 4 * roles;  // every role becomes producer
        // The batch must dwarf the per-heap K*S slack so the O(P) vs
        // O(1) asymptotics dominate the constants.
        params.batch_objects = 6000;
        params.object_bytes = 64;
        workloads::prodcons_rotating<NativePolicy>(*allocator, params,
                                                   roles);
        return allocator->stats().held_bytes.peak();
    };

    const std::size_t batch = 6000 * 64;
    std::size_t own16 = footprint(baselines::AllocatorKind::ownership, 16);
    std::size_t hoard16 = footprint(baselines::AllocatorKind::hoard, 16);
    // Ownership: ~one batch per role.
    EXPECT_GT(own16, 10 * batch);
    // Hoard: bounded by live/(1-f) plus K*S slack per heap.
    EXPECT_LT(hoard16, own16 / 2);
}

TEST(Ownership, FreedMemoryReturnsToOwningArena)
{
    Config config;
    config.heap_count = 2;
    baselines::OwnershipAllocator<NativePolicy> allocator(config);

    NativePolicy::rebind_thread_index(0);
    void* p = allocator.allocate(64);
    NativePolicy::rebind_thread_index(1);
    allocator.deallocate(p);
    NativePolicy::rebind_thread_index(0);
    void* q = allocator.allocate(64);
    EXPECT_EQ(p, q) << "block must return to arena 0's free space";
    allocator.deallocate(q);
}

TEST(PurePrivate, FreedMemoryStaysWithFreeingThread)
{
    Config config;
    config.heap_count = 2;
    baselines::PurePrivateAllocator<NativePolicy> allocator(config);

    NativePolicy::rebind_thread_index(0);
    void* p = allocator.allocate(64);
    NativePolicy::rebind_thread_index(1);
    allocator.deallocate(p);
    // Thread 0 cannot see it again...
    NativePolicy::rebind_thread_index(0);
    void* q = allocator.allocate(64);
    EXPECT_NE(q, p);
    // ...but thread 1 reuses it immediately.
    NativePolicy::rebind_thread_index(1);
    void* r = allocator.allocate(64);
    EXPECT_EQ(r, p);
    allocator.deallocate(q);
    allocator.deallocate(r);
}

TEST(Serial, SingleHeapSharedByAllThreads)
{
    Config config;
    config.heap_count = 8;  // ignored by the serial allocator
    auto allocator = baselines::make_allocator<NativePolicy>(
        baselines::AllocatorKind::serial, config);
    // Consecutive allocations from different logical threads come from
    // one superblock: adjacent addresses (the active-false mechanism).
    NativePolicy::rebind_thread_index(0);
    auto* a = static_cast<char*>(allocator->allocate(8));
    NativePolicy::rebind_thread_index(1);
    auto* b = static_cast<char*>(allocator->allocate(8));
    EXPECT_EQ(b - a, 8) << "serial allocator splits one cache line"
                           " across threads";
    allocator->deallocate(a);
    allocator->deallocate(b);
}

TEST(Hoard, ThreadsGetDisjointSuperblocks)
{
    Config config;
    config.heap_count = 4;
    auto allocator = baselines::make_allocator<NativePolicy>(
        baselines::AllocatorKind::hoard, config);
    NativePolicy::rebind_thread_index(0);
    auto* a = static_cast<char*>(allocator->allocate(8));
    NativePolicy::rebind_thread_index(1);
    auto* b = static_cast<char*>(allocator->allocate(8));
    // Different heaps, different superblocks: at least S/2 apart.
    auto distance = a < b ? b - a : a - b;
    EXPECT_GE(static_cast<std::size_t>(distance),
              config.superblock_bytes / 2)
        << "per-processor heaps must not share cache lines";
    allocator->deallocate(a);
    allocator->deallocate(b);
}

}  // namespace
}  // namespace hoard
