/**
 * @file
 * Workload smoke tests: every benchmark from the paper's Table 2 runs
 * natively, leak-free and corruption-free, on every allocator — the
 * precondition for trusting any number the benches print.
 */

#include <gtest/gtest.h>

#include <memory>

#include "baselines/factory.h"
#include "policy/native_policy.h"
#include "workloads/native_bodies.h"
#include "workloads/prodcons.h"
#include "workloads/runners.h"

namespace hoard {
namespace {

struct WorkloadCase
{
    const char* name;
    // Factory, not instance: passive-false state is one-shot.
    workloads::NativeWorkloadBody (*make)();
};

workloads::NativeWorkloadBody
make_threadtest()
{
    workloads::ThreadtestParams p;
    p.total_objects = 4000;
    p.iterations = 2;
    return workloads::native_threadtest_body(p);
}

workloads::NativeWorkloadBody
make_shbench()
{
    workloads::ShbenchParams p;
    p.operations = 8000;
    p.working_set = 100;
    return workloads::native_shbench_body(p);
}

workloads::NativeWorkloadBody
make_larson()
{
    workloads::LarsonParams p;
    p.slots_per_thread = 100;
    p.rounds_per_epoch = 4000;
    p.epochs = 2;
    return workloads::native_larson_body(p);
}

workloads::NativeWorkloadBody
make_active_false()
{
    workloads::FalseSharingParams p;
    p.total_objects = 400;
    p.writes_per_object = 50;
    return workloads::native_active_false_body(p);
}

workloads::NativeWorkloadBody
make_passive_false()
{
    workloads::FalseSharingParams p;
    p.total_objects = 400;
    p.writes_per_object = 50;
    return workloads::native_passive_false_body(p);
}

workloads::NativeWorkloadBody
make_bemsim()
{
    workloads::BemSimParams p;
    p.phases = 1;
    p.total_panels = 8;
    p.elements_per_panel = 100;
    return workloads::native_bemsim_body(p);
}

workloads::NativeWorkloadBody
make_barneshut()
{
    workloads::BarnesHutParams p;
    p.total_systems = 8;
    p.bodies_per_system = 100;
    p.steps = 2;
    return workloads::native_barneshut_body(p);
}

class WorkloadSmokeTest
    : public ::testing::TestWithParam<
          std::tuple<baselines::AllocatorKind, WorkloadCase>>
{};

TEST_P(WorkloadSmokeTest, RunsLeakFree)
{
    auto [kind, wl] = GetParam();
    const int nthreads = 4;
    Config config;
    config.heap_count = nthreads;
    auto allocator =
        baselines::make_allocator<NativePolicy>(kind, config);

    workloads::NativeWorkloadBody body = wl.make();
    workloads::native_run(nthreads, [&](int tid) {
        body(*allocator, tid, nthreads);
    });

    const detail::AllocatorStats& stats = allocator->stats();
    EXPECT_GT(stats.allocs.get(), 0u);
    EXPECT_EQ(stats.allocs.get(), stats.frees.get())
        << "workload leaked objects";
    EXPECT_EQ(stats.in_use_bytes.current(), 0u);
}

std::vector<WorkloadCase>
all_workloads()
{
    return {
        {"threadtest", &make_threadtest},
        {"shbench", &make_shbench},
        {"larson", &make_larson},
        {"activefalse", &make_active_false},
        {"passivefalse", &make_passive_false},
        {"bemsim", &make_bemsim},
        {"barneshut", &make_barneshut},
    };
}

INSTANTIATE_TEST_SUITE_P(
    Suite, WorkloadSmokeTest,
    ::testing::Combine(::testing::ValuesIn(baselines::kAllKinds),
                       ::testing::ValuesIn(all_workloads())),
    [](const ::testing::TestParamInfo<
        std::tuple<baselines::AllocatorKind, WorkloadCase>>& info) {
        return std::string(
                   baselines::to_string(std::get<0>(info.param))) +
               "_" + std::get<1>(info.param).name;
    });

TEST(ProdConsWorkload, DeterministicSeries)
{
    auto run = [] {
        Config config;
        config.heap_count = 4;
        auto allocator = baselines::make_allocator<NativePolicy>(
            baselines::AllocatorKind::hoard, config);
        workloads::ProdConsParams params;
        params.rounds = 20;
        std::vector<std::size_t> held;
        workloads::prodcons_pair<NativePolicy>(*allocator, params, 0,
                                               &held);
        return held;
    };
    EXPECT_EQ(run(), run());
}

TEST(LarsonWorkload, EpochRebindingChangesHeaps)
{
    // After larson completes, the thread's index reflects its last
    // epoch's identity, not its starting one.
    Config config;
    config.heap_count = 4;
    auto allocator = baselines::make_allocator<NativePolicy>(
        baselines::AllocatorKind::hoard, config);
    workloads::LarsonParams params;
    params.nthreads = 1;
    params.slots_per_thread = 10;
    params.rounds_per_epoch = 10;
    params.epochs = 3;
    workloads::larson_thread<NativePolicy>(*allocator, params, 0);
    // Each epoch rebinds by nthreads+1 (a multiple of nthreads would
    // hash back to the birth heap).
    EXPECT_EQ(NativePolicy::thread_index(),
              3 * (params.nthreads + 1));
}

}  // namespace
}  // namespace hoard
