/** @file Tests for the synthetic workload generator. */

#include "workloads/synthetic.h"

#include <gtest/gtest.h>

#include <map>

#include "core/hoard_allocator.h"
#include "policy/native_policy.h"

namespace hoard {
namespace workloads {
namespace {

TEST(Synthetic, TraceIsBalanced)
{
    SyntheticParams params;
    params.operations = 5000;
    Trace trace = generate_synthetic_trace(params);
    std::map<std::uint64_t, int> state;  // +1 alloc, -1 free
    std::size_t allocs = 0, frees = 0;
    for (const TraceOp& op : trace.ops()) {
        if (op.kind == TraceOp::Kind::alloc) {
            EXPECT_EQ(state[op.object], 0) << "double alloc";
            state[op.object] = 1;
            ++allocs;
        } else {
            EXPECT_EQ(state[op.object], 1) << "free before alloc";
            state[op.object] = 0;
            ++frees;
        }
    }
    EXPECT_EQ(allocs, 5000u);
    EXPECT_EQ(frees, 5000u);
}

TEST(Synthetic, DeterministicInSeed)
{
    SyntheticParams params;
    params.operations = 2000;
    EXPECT_TRUE(generate_synthetic_trace(params) ==
                generate_synthetic_trace(params));
    SyntheticParams other = params;
    other.seed = 999;
    EXPECT_FALSE(generate_synthetic_trace(params) ==
                 generate_synthetic_trace(other));
}

TEST(Synthetic, SizesRespectBounds)
{
    for (auto dist : {SizeDist::uniform, SizeDist::geometric,
                      SizeDist::bimodal}) {
        SyntheticParams params;
        params.size_dist = dist;
        params.min_size = 32;
        params.max_size = 2048;
        detail::Rng rng(7);
        for (int i = 0; i < 5000; ++i) {
            std::size_t size = synthetic_size(rng, params);
            EXPECT_GE(size, params.min_size);
            EXPECT_LE(size, params.max_size);
        }
    }
}

TEST(Synthetic, GeometricSkewsSmall)
{
    SyntheticParams params;
    params.size_dist = SizeDist::geometric;
    params.min_size = 16;
    params.max_size = 16384;
    detail::Rng rng(11);
    int small = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        small += synthetic_size(rng, params) < 64;
    // P(size < 64) = P(stop in first two octaves) = 0.75.
    EXPECT_GT(small, n / 2);
}

TEST(Synthetic, PhasedLifetimesDieAtBoundaries)
{
    SyntheticParams params;
    params.lifetime_dist = LifetimeDist::phased;
    params.phase_length = 100;
    detail::Rng rng(13);
    for (int op : {0, 37, 99, 100, 150, 199}) {
        int life = synthetic_lifetime(rng, params, op);
        EXPECT_EQ((op + life) % params.phase_length, 0) << op;
        EXPECT_GT(life, 0);
    }
}

TEST(Synthetic, ExponentialMeanInRightBallpark)
{
    SyntheticParams params;
    params.lifetime_dist = LifetimeDist::exponential;
    params.mean_lifetime = 100;
    detail::Rng rng(17);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += synthetic_lifetime(rng, params, 0);
    EXPECT_NEAR(sum / n, 100.0, 20.0);
}

TEST(Synthetic, CrossThreadFractionProducesForeignFrees)
{
    SyntheticParams params;
    params.operations = 4000;
    params.nthreads = 4;
    params.cross_thread_free_fraction = 0.5;
    Trace trace = generate_synthetic_trace(params);

    std::map<std::uint64_t, std::int32_t> birth_tid;
    int cross = 0, total_frees = 0;
    for (const TraceOp& op : trace.ops()) {
        if (op.kind == TraceOp::Kind::alloc) {
            birth_tid[op.object] = op.tid;
        } else {
            ++total_frees;
            cross += op.tid != birth_tid[op.object];
        }
    }
    // 50% redraw uniformly over 4 threads -> 3/8 truly foreign.
    EXPECT_NEAR(static_cast<double>(cross) / total_frees, 0.375, 0.05);
}

TEST(Synthetic, ReplaysCleanlyAgainstHoard)
{
    SyntheticParams params;
    params.operations = 6000;
    params.cross_thread_free_fraction = 0.2;
    Trace trace = generate_synthetic_trace(params);

    HoardAllocator<NativePolicy> allocator{Config{}};
    auto result = replay<NativePolicy>(allocator, trace);
    EXPECT_EQ(result.allocs, 6000u);
    EXPECT_EQ(allocator.stats().in_use_bytes.current(), 0u);
    EXPECT_TRUE(allocator.check_invariants());
    EXPECT_GE(result.peak_in_use_bytes, trace.max_live_bytes());
}

}  // namespace
}  // namespace workloads
}  // namespace hoard
