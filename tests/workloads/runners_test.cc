/** @file Tests for the native/simulated workload runners. */

#include "workloads/runners.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

namespace hoard {
namespace workloads {
namespace {

TEST(NativeRun, RunsEveryTidExactlyOnce)
{
    std::vector<std::atomic<int>> hits(6);
    native_run(6, [&hits](int tid) {
        hits[static_cast<std::size_t>(tid)].fetch_add(1);
    });
    for (auto& h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(NativeRun, ZeroThreadsIsNoop)
{
    bool ran = false;
    native_run(0, [&ran](int) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(SimRun, ReturnsMakespanOfSlowestThread)
{
    std::uint64_t makespan = sim_run(4, 4, [](int tid) {
        sim::Machine::current()->charge(
            static_cast<std::uint64_t>(100 * (tid + 1)));
    });
    EXPECT_EQ(makespan, 400u);
}

TEST(SimRun, MoreThreadsThanProcsWrapAround)
{
    // 6 threads on 2 procs: threads 0,2,4 on proc 0; 1,3,5 on proc 1.
    std::vector<int> procs(6, -1);
    sim_run(2, 6, [&procs](int tid) {
        procs[static_cast<std::size_t>(tid)] =
            sim::Machine::current()->current_proc();
    });
    for (int tid = 0; tid < 6; ++tid)
        EXPECT_EQ(procs[static_cast<std::size_t>(tid)], tid % 2);
}

TEST(SimRun, LogicalTidsMatchSpawnOrder)
{
    std::set<int> tids;
    sim_run(3, 3, [&tids](int tid) {
        EXPECT_EQ(sim::Machine::current()->current_tid(), tid);
        tids.insert(tid);
    });
    EXPECT_EQ(tids.size(), 3u);
}

TEST(SimRun, CustomCostsAndQuantumApply)
{
    sim::CostModel costs;
    costs.cache_cold = 1000;
    static char target[64];
    std::uint64_t makespan = sim_run(
        1, 1,
        [](int) { sim::Machine::current()->touch(target, 1, true); },
        costs, /*quantum=*/50);
    EXPECT_EQ(makespan, 1000u);
}

}  // namespace
}  // namespace workloads
}  // namespace hoard
