/** @file Tests for trace recording, serialization, and replay. */

#include "workloads/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "baselines/factory.h"
#include "core/hoard_allocator.h"
#include "policy/native_policy.h"
#include "workloads/native_bodies.h"
#include "workloads/shbench.h"

namespace hoard {
namespace workloads {
namespace {

Trace
record_small_workload(Allocator& inner)
{
    Trace trace;
    TraceRecorder recorder(inner, trace);
    NativePolicy::rebind_thread_index(0);
    ShbenchParams params;
    params.operations = 2000;
    params.working_set = 64;
    shbench_thread<NativePolicy>(recorder, params, 0);
    return trace;
}

TEST(Trace, RecorderCapturesBalancedOps)
{
    HoardAllocator<NativePolicy> inner{Config{}};
    Trace trace = record_small_workload(inner);
    ASSERT_FALSE(trace.empty());
    std::size_t allocs = 0, frees = 0;
    for (const TraceOp& op : trace.ops()) {
        if (op.kind == TraceOp::Kind::alloc)
            ++allocs;
        else
            ++frees;
    }
    EXPECT_EQ(allocs, frees) << "shbench frees everything";
    EXPECT_GT(trace.max_live_bytes(), 0u);
}

TEST(Trace, SaveLoadRoundTrip)
{
    HoardAllocator<NativePolicy> inner{Config{}};
    Trace trace = record_small_workload(inner);
    std::stringstream buffer;
    trace.save(buffer);
    Trace loaded = Trace::load(buffer);
    EXPECT_TRUE(trace == loaded);
}

TEST(Trace, ReplayIsFaithful)
{
    // Record against Hoard, replay against a fresh Hoard: same op
    // counts, leak-free finish.
    HoardAllocator<NativePolicy> recording_inner{Config{}};
    Trace trace = record_small_workload(recording_inner);

    HoardAllocator<NativePolicy> target{Config{}};
    ReplayResult result = replay<NativePolicy>(target, trace);
    EXPECT_EQ(result.allocs + result.frees, trace.size());
    EXPECT_EQ(target.stats().in_use_bytes.current(), 0u);
    EXPECT_TRUE(target.check_invariants());
}

TEST(Trace, ReplayDeterministicFootprint)
{
    HoardAllocator<NativePolicy> recording_inner{Config{}};
    Trace trace = record_small_workload(recording_inner);

    auto run = [&trace] {
        HoardAllocator<NativePolicy> target{Config{}};
        return replay<NativePolicy>(target, trace).peak_held_bytes;
    };
    EXPECT_EQ(run(), run());
}

TEST(Trace, ReplayComparesAllocators)
{
    // The fragmentation-study use case: one trace, every allocator.
    HoardAllocator<NativePolicy> recording_inner{Config{}};
    Trace trace = record_small_workload(recording_inner);
    std::uint64_t live = trace.max_live_bytes();
    ASSERT_GT(live, 0u);

    for (auto kind : baselines::kAllKinds) {
        auto allocator = baselines::make_allocator<NativePolicy>(kind);
        ReplayResult result = replay<NativePolicy>(*allocator, trace);
        EXPECT_GE(result.peak_in_use_bytes, live)
            << baselines::to_string(kind);
        EXPECT_GE(result.peak_held_bytes, result.peak_in_use_bytes)
            << baselines::to_string(kind);
    }
}

TEST(Trace, CrossThreadOpsSurviveReplay)
{
    Trace trace;
    // Hand-written trace: thread 0 allocates, thread 1 frees.
    for (std::uint64_t i = 0; i < 64; ++i)
        trace.append({TraceOp::Kind::alloc, 0, i, 64});
    for (std::uint64_t i = 0; i < 64; ++i)
        trace.append({TraceOp::Kind::free_op, 1, i, 0});

    HoardAllocator<NativePolicy> target{Config{}};
    ReplayResult result = replay<NativePolicy>(target, trace);
    EXPECT_EQ(result.allocs, 64u);
    EXPECT_EQ(result.frees, 64u);
    EXPECT_TRUE(target.check_invariants());
}

TEST(Trace, UnbalancedTraceIsDrained)
{
    Trace trace;
    trace.append({TraceOp::Kind::alloc, 0, 0, 128});
    trace.append({TraceOp::Kind::alloc, 0, 1, 128});
    // Only one free recorded.
    trace.append({TraceOp::Kind::free_op, 0, 0, 0});

    HoardAllocator<NativePolicy> target{Config{}};
    replay<NativePolicy>(target, trace);
    EXPECT_EQ(target.stats().in_use_bytes.current(), 0u)
        << "replayer must drain leaked objects";
}

TEST(Trace, LoadRejectsGarbage)
{
    std::stringstream bad("x 1 2 3\n");
    EXPECT_DEATH(Trace::load(bad), "unknown trace record");
}

}  // namespace
}  // namespace workloads
}  // namespace hoard
