/** @file Unit tests for the table writer. */

#include "metrics/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace hoard {
namespace metrics {
namespace {

TEST(Table, AlignsColumns)
{
    Table table({"name", "value"});
    table.begin_row();
    table.cell("x");
    table.cell_u64(1);
    table.begin_row();
    table.cell("longer-name");
    table.cell_u64(123456);

    std::ostringstream os;
    table.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    EXPECT_NE(out.find("123456"), std::string::npos);
    // Separator rule present.
    EXPECT_NE(out.find("----"), std::string::npos);
    // All data lines start aligned: "x" padded to the widest cell.
    EXPECT_NE(out.find("x            1"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table table({"a", "b"});
    table.begin_row();
    table.cell("1");
    table.cell("2");
    std::ostringstream os;
    table.print_csv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, DoubleFormatting)
{
    Table table({"v"});
    table.begin_row();
    table.cell_double(3.14159, 3);
    std::ostringstream os;
    table.print_csv(os);
    EXPECT_EQ(os.str(), "v\n3.142\n");
}

TEST(Table, CountsRowsAndColumns)
{
    Table table({"a", "b", "c"});
    EXPECT_EQ(table.columns(), 3u);
    EXPECT_EQ(table.rows(), 0u);
    table.begin_row();
    table.cell("1");
    EXPECT_EQ(table.rows(), 1u);
}

TEST(FormatBytes, HumanReadable)
{
    EXPECT_EQ(format_bytes(0), "0 B");
    EXPECT_EQ(format_bytes(512), "512 B");
    EXPECT_EQ(format_bytes(1024), "1.0 KiB");
    EXPECT_EQ(format_bytes(1536), "1.5 KiB");
    EXPECT_EQ(format_bytes(8ull << 20), "8.0 MiB");
    EXPECT_EQ(format_bytes(3ull << 30), "3.0 GiB");
}

}  // namespace
}  // namespace metrics
}  // namespace hoard
