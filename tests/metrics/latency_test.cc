/** @file Unit tests for the latency histogram. */

#include "metrics/latency.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hoard {
namespace metrics {
namespace {

TEST(LatencyHistogram, EmptyIsZero)
{
    LatencyHistogram hist;
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
    EXPECT_DOUBLE_EQ(hist.percentile(50), 0.0);
    EXPECT_EQ(hist.max(), 0u);
}

TEST(LatencyHistogram, MeanAndMaxAreExact)
{
    LatencyHistogram hist;
    hist.record(10);
    hist.record(20);
    hist.record(90);
    EXPECT_EQ(hist.count(), 3u);
    EXPECT_DOUBLE_EQ(hist.mean(), 40.0);
    EXPECT_EQ(hist.max(), 90u);
}

TEST(LatencyHistogram, PercentileWithinBucketFactor)
{
    LatencyHistogram hist;
    for (int i = 0; i < 1000; ++i)
        hist.record(100);
    double p50 = hist.percentile(50);
    EXPECT_GE(p50, 100.0 / 1.5);
    EXPECT_LE(p50, 100.0 * 1.5);
}

TEST(LatencyHistogram, TailSeparatesFromBody)
{
    LatencyHistogram hist;
    for (int i = 0; i < 990; ++i)
        hist.record(100);
    for (int i = 0; i < 10; ++i)
        hist.record(100000);
    EXPECT_LT(hist.percentile(50), 200.0);
    EXPECT_GT(hist.percentile(99.5), 50000.0);
    EXPECT_GT(hist.percentile(99.5), 100 * hist.percentile(50));
}

TEST(LatencyHistogram, PercentilesMonotonic)
{
    LatencyHistogram hist;
    detail::Rng rng(3);
    for (int i = 0; i < 20000; ++i)
        hist.record(rng.range(1, 1 << 20));
    double prev = 0.0;
    for (double p : {1.0, 10.0, 50.0, 90.0, 99.0, 100.0}) {
        double v = hist.percentile(p);
        EXPECT_GE(v, prev) << "p" << p;
        prev = v;
    }
}

TEST(LatencyHistogram, ZeroAndOneShareLowestBucket)
{
    LatencyHistogram hist;
    hist.record(0);
    hist.record(1);
    EXPECT_DOUBLE_EQ(hist.percentile(50), 1.0);
}

TEST(LatencyHistogram, HugeValuesClampToLastBucket)
{
    LatencyHistogram hist;
    hist.record(~std::uint64_t{0});
    EXPECT_EQ(hist.count(), 1u);
    EXPECT_GT(hist.percentile(50), 1e12);
}

TEST(LatencyHistogram, MergeCombines)
{
    LatencyHistogram a, b;
    for (int i = 0; i < 100; ++i)
        a.record(10);
    for (int i = 0; i < 100; ++i)
        b.record(100000);
    a.merge(b);
    EXPECT_EQ(a.count(), 200u);
    EXPECT_EQ(a.max(), 100000u);
    EXPECT_LT(a.percentile(25), 100.0);
    EXPECT_GT(a.percentile(75), 10000.0);
}

}  // namespace
}  // namespace metrics
}  // namespace hoard
