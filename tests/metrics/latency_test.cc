/** @file Unit tests for the latency histogram. */

#include "metrics/latency.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hoard {
namespace metrics {
namespace {

TEST(LatencyHistogram, EmptyIsZero)
{
    LatencyHistogram hist;
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
    EXPECT_DOUBLE_EQ(hist.percentile(50), 0.0);
    EXPECT_EQ(hist.max(), 0u);
}

TEST(LatencyHistogram, MeanAndMaxAreExact)
{
    LatencyHistogram hist;
    hist.record(10);
    hist.record(20);
    hist.record(90);
    EXPECT_EQ(hist.count(), 3u);
    EXPECT_DOUBLE_EQ(hist.mean(), 40.0);
    EXPECT_EQ(hist.max(), 90u);
}

TEST(LatencyHistogram, PercentileWithinBucketFactor)
{
    LatencyHistogram hist;
    for (int i = 0; i < 1000; ++i)
        hist.record(100);
    double p50 = hist.percentile(50);
    EXPECT_GE(p50, 100.0 / 1.5);
    EXPECT_LE(p50, 100.0 * 1.5);
}

TEST(LatencyHistogram, TailSeparatesFromBody)
{
    LatencyHistogram hist;
    for (int i = 0; i < 990; ++i)
        hist.record(100);
    for (int i = 0; i < 10; ++i)
        hist.record(100000);
    EXPECT_LT(hist.percentile(50), 200.0);
    EXPECT_GT(hist.percentile(99.5), 50000.0);
    EXPECT_GT(hist.percentile(99.5), 100 * hist.percentile(50));
}

TEST(LatencyHistogram, PercentilesMonotonic)
{
    LatencyHistogram hist;
    detail::Rng rng(3);
    for (int i = 0; i < 20000; ++i)
        hist.record(rng.range(1, 1 << 20));
    double prev = 0.0;
    for (double p : {1.0, 10.0, 50.0, 90.0, 99.0, 100.0}) {
        double v = hist.percentile(p);
        EXPECT_GE(v, prev) << "p" << p;
        prev = v;
    }
}

TEST(LatencyHistogram, ZeroAndOneShareLowestBucket)
{
    LatencyHistogram hist;
    hist.record(0);
    hist.record(1);
    EXPECT_DOUBLE_EQ(hist.percentile(50), 1.0);
}

TEST(LatencyHistogram, HugeValuesClampToLastBucket)
{
    LatencyHistogram hist;
    hist.record(~std::uint64_t{0});
    EXPECT_EQ(hist.count(), 1u);
    EXPECT_GT(hist.percentile(50), 1e12);
}

TEST(LatencyHistogram, SingleSampleDrivesEveryPercentile)
{
    LatencyHistogram hist;
    hist.record(100);
    double p0 = hist.percentile(0);
    double p50 = hist.percentile(50);
    double p100 = hist.percentile(100);
    EXPECT_DOUBLE_EQ(p0, p50);
    EXPECT_DOUBLE_EQ(p50, p100);
    EXPECT_GE(p50, 100.0 / 1.5);
    EXPECT_LE(p50, 100.0 * 1.5);
}

TEST(LatencyHistogram, ExtremePercentilesHitExtremeBuckets)
{
    LatencyHistogram hist;
    for (int i = 0; i < 10; ++i)
        hist.record(1);
    for (int i = 0; i < 10; ++i)
        hist.record(1 << 20);
    EXPECT_DOUBLE_EQ(hist.percentile(0), 1.0);
    EXPECT_GT(hist.percentile(100), 1e6 / 1.5);
}

TEST(LatencyHistogram, BoundaryBetweenFirstTwoBuckets)
{
    // Bucket 0 holds {0, 1} and reports exactly 1.0; value 2 is the
    // first sample of bucket 1 and reports its geometric midpoint.
    LatencyHistogram ones;
    ones.record(1);
    EXPECT_DOUBLE_EQ(ones.percentile(50), 1.0);

    LatencyHistogram twos;
    twos.record(2);
    double mid = twos.percentile(50);
    EXPECT_GT(mid, 2.0);
    EXPECT_LT(mid, 4.0);
    EXPECT_GT(mid, ones.percentile(50));
}

TEST(LatencyHistogram, LastBucketSaturatesButKeepsExactMax)
{
    // Everything at or beyond 2^(kBuckets-1) lands in the last bucket:
    // percentiles collapse to one midpoint, but max() stays exact.
    LatencyHistogram hist;
    std::uint64_t lo = std::uint64_t{1} << (LatencyHistogram::kBuckets - 1);
    hist.record(lo);
    hist.record(lo * 4);
    hist.record(~std::uint64_t{0});
    EXPECT_EQ(hist.count(), 3u);
    EXPECT_DOUBLE_EQ(hist.percentile(1), hist.percentile(99));
    EXPECT_EQ(hist.max(), ~std::uint64_t{0});
}

TEST(LatencyHistogram, MergeCombines)
{
    LatencyHistogram a, b;
    for (int i = 0; i < 100; ++i)
        a.record(10);
    for (int i = 0; i < 100; ++i)
        b.record(100000);
    a.merge(b);
    EXPECT_EQ(a.count(), 200u);
    EXPECT_EQ(a.max(), 100000u);
    EXPECT_LT(a.percentile(25), 100.0);
    EXPECT_GT(a.percentile(75), 10000.0);
}

}  // namespace
}  // namespace metrics
}  // namespace hoard
