/** @file Unit tests for the JSON document model (parse + serialize). */

#include "metrics/json_value.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "obs/trace_export.h"
#include "tests/common/json_check.h"

namespace hoard {
namespace metrics {
namespace {

TEST(JsonValue, BuildsAndAccessesObjects)
{
    JsonValue doc = JsonValue::make_object();
    doc.set("name", JsonValue::make_string("hoard"));
    doc.set("speedup", JsonValue::make_number(7.5));
    doc.set("ok", JsonValue::make_bool(true));

    EXPECT_TRUE(doc.is_object());
    ASSERT_NE(doc.find("name"), nullptr);
    EXPECT_EQ(doc.find("name")->as_string(), "hoard");
    EXPECT_DOUBLE_EQ(doc.number_or("speedup", 0.0), 7.5);
    EXPECT_EQ(doc.number_or("absent", -1.0), -1.0);
    EXPECT_EQ(doc.string_or("name", ""), "hoard");
    EXPECT_EQ(doc.find("missing"), nullptr);

    // set() replaces in place, preserving insertion order.
    doc.set("speedup", JsonValue::make_number(8.0));
    EXPECT_DOUBLE_EQ(doc.number_or("speedup", 0.0), 8.0);
    ASSERT_EQ(doc.members().size(), 3u);
    EXPECT_EQ(doc.members()[1].first, "speedup");
}

TEST(JsonValue, SerializedFormIsValidJson)
{
    JsonValue doc = JsonValue::make_object();
    doc.set("text", JsonValue::make_string("line\nbreak \"quoted\""));
    JsonValue arr = JsonValue::make_array();
    arr.append(JsonValue::make_number(1));
    arr.append(JsonValue());
    arr.append(JsonValue::make_bool(false));
    doc.set("items", std::move(arr));

    for (int indent : {-1, 0, 2}) {
        std::string text = doc.to_string(indent);
        EXPECT_TRUE(testutil::json_valid(text))
            << "indent=" << indent << ":\n" << text;
    }
}

TEST(JsonValue, ParseRoundTripsDocument)
{
    const std::string text =
        "{\"a\": [1, 2.5, -3e2], \"b\": {\"nested\": true},"
        " \"s\": \"\\u0041\\n\", \"n\": null}";
    std::string error;
    JsonValue doc = JsonValue::parse(text, &error);
    ASSERT_TRUE(doc.is_object()) << error;

    const JsonValue* a = doc.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->items().size(), 3u);
    EXPECT_DOUBLE_EQ(a->items()[1].as_number(), 2.5);
    EXPECT_DOUBLE_EQ(a->items()[2].as_number(), -300.0);
    EXPECT_TRUE(doc.find("b")->find("nested")->as_bool());
    EXPECT_EQ(doc.find("s")->as_string(), "A\n");
    EXPECT_TRUE(doc.find("n")->is_null());

    // write(parse(text)) parses back to the same document.
    JsonValue again = JsonValue::parse(doc.to_string(), &error);
    ASSERT_TRUE(again.is_object()) << error;
    EXPECT_EQ(again.to_string(), doc.to_string());
}

TEST(JsonValue, NumbersRoundTripExactly)
{
    for (double v : {0.0, -0.0, 1.0 / 3.0, 1e-300, 123456789.123456789,
                     9007199254740993.0}) {
        JsonValue n = JsonValue::make_number(v);
        JsonValue parsed = JsonValue::parse(n.to_string(-1));
        ASSERT_TRUE(parsed.is_number());
        EXPECT_EQ(parsed.as_number(), v);
    }
    // Non-finite values degrade to null, keeping documents valid.
    EXPECT_EQ(JsonValue::make_number(NAN).to_string(-1), "null");
}

TEST(JsonValue, RejectsMalformedDocuments)
{
    for (const char* bad :
         {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru", "01",
          "\"unterminated", "{\"a\":1} trailing", "[1 2]",
          "\"bad\\q\"", "\"\\u12\"", "1.", "-"}) {
        std::string error;
        EXPECT_FALSE(JsonValue::parse_ok(bad, &error)) << bad;
        EXPECT_FALSE(error.empty()) << bad;
    }
}

TEST(JsonValue, ParseOkDistinguishesNullLiteral)
{
    EXPECT_TRUE(JsonValue::parse_ok("null"));
    EXPECT_TRUE(JsonValue::parse("null").is_null());
    EXPECT_FALSE(JsonValue::parse_ok("nul"));
}

TEST(JsonValue, WriteJsonStringEscapesControls)
{
    std::ostringstream os;
    write_json_string(os, std::string("a\001b\t"));
    EXPECT_EQ(os.str(), "\"a\\u0001b\\t\"");
}

TEST(JsonValue, ObsEscapedStringsRoundTrip)
{
    // The obs exporters escape with obs::json_escape (header-only —
    // hoard_obs cannot link this library), so prove the contract
    // end-to-end here: text escaped by its rules parses back to the
    // original through this parser, for every class of character it
    // special-cases (quotes, backslashes, \n\r\t, raw controls).
    const std::string nasty =
        std::string("quote\" back\\slash\nnew\rline\ttab") +
        '\x01' + "operator\"\"_x";
    const std::string quoted = '"' + obs::json_escape(nasty) + '"';
    ASSERT_TRUE(testutil::json_valid(quoted)) << quoted;
    JsonValue parsed = JsonValue::parse(quoted);
    ASSERT_TRUE(parsed.is_string());
    EXPECT_EQ(parsed.as_string(), nasty);

    // write_json_string (this library's escaper) agrees byte-for-byte
    // on everything json_escape special-cases.
    std::ostringstream os;
    write_json_string(os, nasty);
    EXPECT_EQ(os.str(), quoted);

    // The same text embedded as an object member survives a document
    // round trip (parse(write(v)) == v).
    JsonValue doc = JsonValue::make_object();
    doc.set("name", JsonValue::make_string(nasty));
    JsonValue reparsed = JsonValue::parse(doc.to_string());
    EXPECT_EQ(reparsed.string_or("name", ""), nasty);
}

}  // namespace
}  // namespace metrics
}  // namespace hoard
