/** @file Unit tests for the speedup harness. */

#include "metrics/speedup.h"

#include <gtest/gtest.h>

#include <sstream>

#include "policy/sim_policy.h"

namespace hoard {
namespace metrics {
namespace {

/** Trivial embarrassingly-parallel body: pure compute, no allocation. */
void
compute_body(Allocator& /*allocator*/, int /*tid*/, int nthreads)
{
    // Fixed total work split across threads.
    SimPolicy::work(static_cast<std::uint64_t>(120000 / nthreads));
}

TEST(SpeedupHarness, PerfectlyParallelWorkScalesLinearly)
{
    SpeedupOptions options;
    options.procs = {1, 2, 4};
    options.kinds = {baselines::AllocatorKind::hoard};
    SpeedupResult result =
        run_speedup_experiment("unit", options, compute_body);

    EXPECT_DOUBLE_EQ(result.at(0, 0).speedup, 1.0);
    EXPECT_NEAR(result.at(1, 0).speedup, 2.0, 0.01);
    EXPECT_NEAR(result.at(2, 0).speedup, 4.0, 0.01);
}

TEST(SpeedupHarness, AllocatingBodyRunsAllKinds)
{
    SpeedupOptions options;
    options.procs = {1, 2};
    SpeedupResult result = run_speedup_experiment(
        "unit", options, [](Allocator& a, int, int) {
            for (int i = 0; i < 50; ++i) {
                void* p = a.allocate(64);
                a.deallocate(p);
            }
        });
    ASSERT_EQ(result.cells.size(), 2u);
    ASSERT_EQ(result.cells[0].size(), baselines::kAllKinds.size());
    for (std::size_t k = 0; k < baselines::kAllKinds.size(); ++k) {
        EXPECT_GT(result.at(0, k).makespan, 0u);
        EXPECT_DOUBLE_EQ(result.at(0, k).speedup, 1.0);
    }
}

TEST(SpeedupHarness, PrintProducesTable)
{
    SpeedupOptions options;
    options.procs = {1, 2};
    options.kinds = {baselines::AllocatorKind::hoard,
                     baselines::AllocatorKind::serial};
    SpeedupResult result =
        run_speedup_experiment("my title", options, compute_body);
    std::ostringstream os;
    result.print(os, /*diagnostics=*/true);
    std::string out = os.str();
    EXPECT_NE(out.find("my title"), std::string::npos);
    EXPECT_NE(out.find("hoard"), std::string::npos);
    EXPECT_NE(out.find("serial"), std::string::npos);
    EXPECT_NE(out.find("diagnostics"), std::string::npos);
}

TEST(SpeedupHarness, DeterministicAcrossRepeats)
{
    SpeedupOptions options;
    options.procs = {1, 4};
    options.kinds = {baselines::AllocatorKind::hoard};
    auto body = [](Allocator& a, int, int nthreads) {
        for (int i = 0; i < 400 / nthreads; ++i) {
            void* p = a.allocate(32);
            a.deallocate(p);
        }
    };
    auto r1 = run_speedup_experiment("u", options, body);
    auto r2 = run_speedup_experiment("u", options, body);
    for (std::size_t pi = 0; pi < options.procs.size(); ++pi)
        EXPECT_EQ(r1.at(pi, 0).makespan, r2.at(pi, 0).makespan);
}

}  // namespace
}  // namespace metrics
}  // namespace hoard
