/**
 * @file
 * Tests for the bench report builder and the regression comparator —
 * the contract CI's bench gate (bench/bench_compare) relies on.
 */

#include "metrics/bench_report.h"

#include <gtest/gtest.h>

#include <string>

#include "baselines/factory.h"
#include "metrics/speedup.h"
#include "tests/common/json_check.h"

namespace hoard {
namespace metrics {
namespace {

BenchReport
sample_report()
{
    BenchReport report("tbl_example", /*quick=*/true);
    report.set_title("Example table");
    report.add_metric("latency/hoard/p99", 120.0, "ns", Better::lower);
    report.add_metric("speedup/hoard/p8", 7.5, "x", Better::higher);
    report.add_metric("frag/hoard", 1.12, "ratio", Better::info);
    return report;
}

TEST(BenchReport, EmitsValidSchemaDocument)
{
    BenchReport report = sample_report();
    std::string text = report.to_json().to_string();
    ASSERT_TRUE(testutil::json_valid(text)) << text;

    std::string error;
    JsonValue doc = JsonValue::parse(text, &error);
    ASSERT_TRUE(doc.is_object()) << error;
    EXPECT_EQ(doc.string_or("schema", ""), BenchReport::kSchema);
    EXPECT_EQ(doc.string_or("bench", ""), "tbl_example");
    EXPECT_EQ(doc.string_or("title", ""), "Example table");
    ASSERT_NE(doc.find("quick"), nullptr);
    EXPECT_TRUE(doc.find("quick")->as_bool());

    const JsonValue* env = doc.find("environment");
    ASSERT_NE(env, nullptr);
    EXPECT_NE(env->find("compiler"), nullptr);
    EXPECT_NE(env->find("obs_compiled"), nullptr);
    EXPECT_NE(env->find("hardware_threads"), nullptr);

    const JsonValue* metrics = doc.find("metrics");
    ASSERT_NE(metrics, nullptr);
    ASSERT_EQ(metrics->items().size(), 3u);
    EXPECT_EQ(metrics->items()[0].string_or("key", ""),
              "latency/hoard/p99");
    EXPECT_EQ(metrics->items()[0].string_or("better", ""), "lower");
    EXPECT_EQ(metrics->items()[1].string_or("better", ""), "higher");
    EXPECT_EQ(metrics->items()[2].string_or("better", ""), "info");
}

TEST(BenchReport, RecordsSpeedupCellsAndConfig)
{
    SpeedupResult result;
    result.title = "FIG-example";
    result.options.procs = {1, 8};
    result.options.kinds = {baselines::AllocatorKind::hoard,
                            baselines::AllocatorKind::serial};
    result.options.observability = true;
    result.cells.resize(2, std::vector<SpeedupCell>(2));
    result.cells[0][0].makespan = 1000;
    result.cells[0][0].speedup = 1.0;
    result.cells[1][0].makespan = 130;
    result.cells[1][0].speedup = 7.7;
    result.cells[1][0].timeline_samples = 42;
    result.cells[1][1].makespan = 990;
    result.cells[1][1].speedup = 1.01;

    BenchReport report("fig_example", false);
    report.add_speedup_result(result);

    JsonValue doc = report.to_json();
    // One gated speedup + one info makespan per (P, allocator) cell.
    ASSERT_EQ(report.metrics().size(), 8u);

    const JsonValue* cells = doc.find("cells");
    ASSERT_NE(cells, nullptr);
    ASSERT_EQ(cells->items().size(), 4u);
    const JsonValue& hoard_p8 = cells->items()[2];
    EXPECT_EQ(hoard_p8.string_or("allocator", ""), "hoard");
    EXPECT_DOUBLE_EQ(hoard_p8.number_or("procs", 0.0), 8.0);
    EXPECT_DOUBLE_EQ(hoard_p8.number_or("speedup", 0.0), 7.7);
    const JsonValue* obs = hoard_p8.find("obs");
    ASSERT_NE(obs, nullptr);
    EXPECT_DOUBLE_EQ(obs->number_or("timeline_samples", 0.0), 42.0);

    // The allocator configuration the sweep ran with is echoed.
    const JsonValue* config = doc.find("config");
    ASSERT_NE(config, nullptr);
    EXPECT_NE(config->find("superblock_bytes"), nullptr);
    EXPECT_NE(config->find("empty_fraction"), nullptr);
}

TEST(BenchCompare, IdenticalReportsPass)
{
    JsonValue doc = sample_report().to_json();
    CompareResult cmp = compare_reports(doc, doc, 10.0);
    EXPECT_TRUE(cmp.ok());
    EXPECT_EQ(cmp.regressions, 0);
    EXPECT_TRUE(cmp.missing.empty());
    // Only the two gated metrics produce deltas; "info" is skipped.
    EXPECT_EQ(cmp.deltas.size(), 2u);
}

TEST(BenchCompare, FlagsHalvedSpeedupAsRegression)
{
    JsonValue base = sample_report().to_json();

    BenchReport worse("tbl_example", true);
    worse.add_metric("latency/hoard/p99", 120.0, "ns", Better::lower);
    worse.add_metric("speedup/hoard/p8", 3.75, "x", Better::higher);
    worse.add_metric("frag/hoard", 1.12, "ratio", Better::info);
    JsonValue next = worse.to_json();

    CompareResult cmp = compare_reports(base, next, 10.0);
    EXPECT_FALSE(cmp.ok());
    EXPECT_EQ(cmp.regressions, 1);
    bool found = false;
    for (const MetricDelta& d : cmp.deltas) {
        if (d.key == "speedup/hoard/p8") {
            found = true;
            EXPECT_TRUE(d.regression);
            EXPECT_DOUBLE_EQ(d.change_pct, -50.0);
        } else {
            EXPECT_FALSE(d.regression);
        }
    }
    EXPECT_TRUE(found);
}

TEST(BenchCompare, FlagsLatencyIncreaseAsRegression)
{
    JsonValue base = sample_report().to_json();

    BenchReport worse("tbl_example", true);
    worse.add_metric("latency/hoard/p99", 200.0, "ns", Better::lower);
    worse.add_metric("speedup/hoard/p8", 7.5, "x", Better::higher);
    JsonValue next = worse.to_json();

    CompareResult cmp = compare_reports(base, next, 10.0);
    EXPECT_EQ(cmp.regressions, 1);
    ASSERT_FALSE(cmp.deltas.empty());
    EXPECT_EQ(cmp.deltas[0].key, "latency/hoard/p99");
    EXPECT_TRUE(cmp.deltas[0].regression);
}

TEST(BenchCompare, InfoMetricsNeverGate)
{
    BenchReport base_r("tbl_example", true);
    base_r.add_metric("frag/hoard", 1.0, "ratio", Better::info);
    BenchReport next_r("tbl_example", true);
    next_r.add_metric("frag/hoard", 100.0, "ratio", Better::info);

    CompareResult cmp =
        compare_reports(base_r.to_json(), next_r.to_json(), 10.0);
    EXPECT_TRUE(cmp.ok());
    EXPECT_TRUE(cmp.deltas.empty());
}

TEST(BenchCompare, ImprovementsAndSlackTolerated)
{
    BenchReport base_r("b", true);
    base_r.add_metric("speedup/hoard/p8", 8.0, "x", Better::higher);
    base_r.add_metric("latency/hoard/p99", 100.0, "ns", Better::lower);
    BenchReport next_r("b", true);
    // 2x better speedup, 5% worse latency: both within a 10% gate.
    next_r.add_metric("speedup/hoard/p8", 16.0, "x", Better::higher);
    next_r.add_metric("latency/hoard/p99", 105.0, "ns", Better::lower);

    CompareResult cmp =
        compare_reports(base_r.to_json(), next_r.to_json(), 10.0);
    EXPECT_TRUE(cmp.ok());
}

TEST(BenchCompare, MissingMetricsListedNotGated)
{
    BenchReport base_r("b", true);
    base_r.add_metric("speedup/hoard/p8", 8.0, "x", Better::higher);
    base_r.add_metric("gone/metric", 1.0, "x", Better::higher);
    BenchReport next_r("b", true);
    next_r.add_metric("speedup/hoard/p8", 8.0, "x", Better::higher);

    CompareResult cmp =
        compare_reports(base_r.to_json(), next_r.to_json(), 10.0);
    EXPECT_TRUE(cmp.ok());
    ASSERT_EQ(cmp.missing.size(), 1u);
    EXPECT_EQ(cmp.missing[0], "gone/metric");
}

TEST(BenchCompare, SuiteDocumentsFlattenWithBenchPrefix)
{
    JsonValue suite_base = JsonValue::make_object();
    suite_base.set("schema",
                   JsonValue::make_string(BenchReport::kSuiteSchema));
    JsonValue benches = JsonValue::make_object();
    benches.set("tbl_example", sample_report().to_json());
    suite_base.set("benches", std::move(benches));

    BenchReport worse("tbl_example", true);
    worse.add_metric("speedup/hoard/p8", 1.0, "x", Better::higher);
    JsonValue suite_next = JsonValue::make_object();
    JsonValue next_benches = JsonValue::make_object();
    next_benches.set("tbl_example", worse.to_json());
    suite_next.set("benches", std::move(next_benches));

    CompareResult cmp =
        compare_reports(suite_base, suite_next, 10.0);
    EXPECT_FALSE(cmp.ok());
    bool found = false;
    for (const MetricDelta& d : cmp.deltas) {
        if (d.key == "tbl_example/speedup/hoard/p8") {
            found = true;
            EXPECT_TRUE(d.regression);
        }
    }
    EXPECT_TRUE(found);
}

}  // namespace
}  // namespace metrics
}  // namespace hoard
