/** @file Tests for the execution-policy layer (native and simulated). */

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "policy/native_policy.h"
#include "policy/sim_policy.h"
#include "sim/machine.h"

namespace hoard {
namespace {

TEST(ThreadRegistry, AssignsDistinctIndices)
{
    std::vector<int> indices(8, -1);
    std::vector<std::thread> threads;
    for (int i = 0; i < 8; ++i) {
        threads.emplace_back([&indices, i] {
            indices[static_cast<std::size_t>(i)] =
                NativePolicy::thread_index();
        });
    }
    for (auto& t : threads)
        t.join();
    std::set<int> unique(indices.begin(), indices.end());
    EXPECT_EQ(unique.size(), 8u);
    for (int idx : indices)
        EXPECT_GE(idx, 0);
}

TEST(ThreadRegistry, IndexIsStablePerThread)
{
    int first = NativePolicy::thread_index();
    int second = NativePolicy::thread_index();
    EXPECT_EQ(first, second);
}

TEST(ThreadRegistry, RebindTakesEffect)
{
    NativePolicy::rebind_thread_index(12345);
    EXPECT_EQ(NativePolicy::thread_index(), 12345);
    EXPECT_GE(ThreadRegistry::count(), 12346);
    NativePolicy::rebind_thread_index(0);
}

TEST(NativePolicyHooks, CostHooksAreFree)
{
    // Compiles to nothing; the calls must simply be valid.
    NativePolicy::work(1000);
    NativePolicy::work(CostKind::malloc_base);
    int x = 0;
    NativePolicy::touch(&x, sizeof(x), true);
}

TEST(NativeEvent, SignalReleasesWaiters)
{
    NativeEvent event;
    EXPECT_FALSE(event.is_set());
    std::vector<std::thread> waiters;
    std::atomic<int> released{0};
    for (int i = 0; i < 3; ++i) {
        waiters.emplace_back([&] {
            event.wait();
            released.fetch_add(1);
        });
    }
    event.signal();
    for (auto& t : waiters)
        t.join();
    EXPECT_EQ(released.load(), 3);
    EXPECT_TRUE(event.is_set());
    event.wait();  // waiting after signal returns immediately
}

TEST(SimPolicyHooks, WorkChargesCurrentMachine)
{
    sim::Machine machine(1);
    machine.spawn(0, 0, [] {
        SimPolicy::work(123);
        SimPolicy::work(CostKind::os_map);
    });
    std::uint64_t makespan = machine.run();
    EXPECT_EQ(makespan, 123 + sim::CostModel().os_map);
}

TEST(SimPolicyHooks, EveryCostKindMapsToModel)
{
    const sim::CostModel costs;
    struct KindCost
    {
        CostKind kind;
        std::uint64_t expected;
    };
    const std::vector<KindCost> kinds = {
        {CostKind::malloc_base, costs.malloc_base},
        {CostKind::free_base, costs.free_base},
        {CostKind::list_op, costs.list_op},
        {CostKind::superblock_init, costs.superblock_init},
        {CostKind::os_map, costs.os_map},
        {CostKind::transfer, costs.transfer},
    };
    for (const KindCost& kc : kinds) {
        sim::Machine machine(1);
        machine.spawn(0, 0, [&kc] { SimPolicy::work(kc.kind); });
        EXPECT_EQ(machine.run(), kc.expected);
    }
}

TEST(SimPolicyHooks, ThreadIndexTracksFiber)
{
    sim::Machine machine(2);
    std::vector<int> seen(2, -1);
    for (int i = 0; i < 2; ++i) {
        machine.spawn(i, 10 + i, [&seen, i] {
            seen[static_cast<std::size_t>(i)] =
                SimPolicy::thread_index();
            SimPolicy::rebind_thread_index(20 + i);
            EXPECT_EQ(SimPolicy::thread_index(), 20 + i);
        });
    }
    machine.run();
    EXPECT_EQ(seen[0], 10);
    EXPECT_EQ(seen[1], 11);
}

TEST(SimPolicyHooks, TouchGoesThroughCacheModel)
{
    sim::Machine machine(1);
    static int target;
    machine.spawn(0, 0, [] { SimPolicy::touch(&target, 4, true); });
    machine.run();
    EXPECT_EQ(machine.cache().cold_misses(), 1u);
}

}  // namespace
}  // namespace hoard
