/**
 * @file
 * Minimal recursive-descent JSON validator for tests.
 *
 * The Chrome trace exporter emits JSON by hand; these tests verify the
 * output actually parses rather than eyeballing substrings.  The
 * validator accepts exactly RFC 8259 JSON (objects, arrays, strings
 * with escapes, numbers, true/false/null) and rejects trailing junk.
 * It deliberately builds no DOM — tests combine it with substring
 * checks for content assertions.
 */

#ifndef HOARD_TESTS_COMMON_JSON_CHECK_H_
#define HOARD_TESTS_COMMON_JSON_CHECK_H_

#include <cctype>
#include <string>

namespace hoard {
namespace testutil {

class JsonChecker
{
  public:
    explicit JsonChecker(const std::string& text) : text_(text) {}

    /** True when the whole text is one valid JSON value. */
    bool
    valid()
    {
        pos_ = 0;
        bool ok = value();
        skip_ws();
        return ok && pos_ == text_.size();
    }

  private:
    bool
    value()
    {
        skip_ws();
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    object()
    {
        ++pos_;  // '{'
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skip_ws();
            if (!string())
                return false;
            skip_ws();
            if (peek() != ':')
                return false;
            ++pos_;
            if (!value())
                return false;
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_;  // '['
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            if (!value())
                return false;
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return false;
                char e = text_[pos_];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= text_.size() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(text_[pos_])))
                            return false;
                    }
                } else if (e != '"' && e != '\\' && e != '/' &&
                           e != 'b' && e != 'f' && e != 'n' &&
                           e != 'r' && e != 't') {
                    return false;
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return false;  // raw control character
            }
            ++pos_;
        }
        return false;  // unterminated
    }

    bool
    number()
    {
        std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (!digit())
            return false;
        if (text_[pos_] == '0') {
            ++pos_;
        } else {
            while (digit())
                ++pos_;
        }
        if (peek() == '.') {
            ++pos_;
            if (!digit())
                return false;
            while (digit())
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!digit())
                return false;
            while (digit())
                ++pos_;
        }
        return pos_ > start;
    }

    bool
    literal(const char* word)
    {
        for (const char* c = word; *c != '\0'; ++c, ++pos_) {
            if (pos_ >= text_.size() || text_[pos_] != *c)
                return false;
        }
        return true;
    }

    bool
    digit() const
    {
        return pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]));
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    skip_ws()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

/** Convenience wrapper. */
inline bool
json_valid(const std::string& text)
{
    return JsonChecker(text).valid();
}

}  // namespace testutil
}  // namespace hoard

#endif  // HOARD_TESTS_COMMON_JSON_CHECK_H_
