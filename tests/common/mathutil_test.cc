/** @file Unit tests for the alignment/integer helpers. */

#include "common/mathutil.h"

#include <gtest/gtest.h>

namespace hoard {
namespace detail {
namespace {

TEST(MathUtil, IsPow2)
{
    EXPECT_FALSE(is_pow2(0));
    EXPECT_TRUE(is_pow2(1));
    EXPECT_TRUE(is_pow2(2));
    EXPECT_FALSE(is_pow2(3));
    EXPECT_TRUE(is_pow2(4096));
    EXPECT_FALSE(is_pow2(4097));
    EXPECT_TRUE(is_pow2(std::size_t{1} << 62));
}

TEST(MathUtil, AlignUp)
{
    EXPECT_EQ(align_up(0, 8), 0u);
    EXPECT_EQ(align_up(1, 8), 8u);
    EXPECT_EQ(align_up(8, 8), 8u);
    EXPECT_EQ(align_up(9, 8), 16u);
    EXPECT_EQ(align_up(4095, 4096), 4096u);
    EXPECT_EQ(align_up(4097, 4096), 8192u);
}

TEST(MathUtil, AlignDown)
{
    EXPECT_EQ(align_down(0, 8), 0u);
    EXPECT_EQ(align_down(7, 8), 0u);
    EXPECT_EQ(align_down(8, 8), 8u);
    EXPECT_EQ(align_down(8191, 4096), 4096u);
}

TEST(MathUtil, IsAlignedInteger)
{
    EXPECT_TRUE(is_aligned(std::size_t{0}, 16));
    EXPECT_TRUE(is_aligned(std::size_t{32}, 16));
    EXPECT_FALSE(is_aligned(std::size_t{24}, 16));
}

TEST(MathUtil, IsAlignedPointer)
{
    alignas(64) char buffer[128];
    EXPECT_TRUE(is_aligned(static_cast<void*>(buffer), 64));
    EXPECT_FALSE(is_aligned(static_cast<void*>(buffer + 1), 2));
}

TEST(MathUtil, CeilDiv)
{
    EXPECT_EQ(ceil_div(0, 8), 0u);
    EXPECT_EQ(ceil_div(1, 8), 1u);
    EXPECT_EQ(ceil_div(8, 8), 1u);
    EXPECT_EQ(ceil_div(9, 8), 2u);
}

TEST(MathUtil, FloorLog2)
{
    EXPECT_EQ(floor_log2(1), 0u);
    EXPECT_EQ(floor_log2(2), 1u);
    EXPECT_EQ(floor_log2(3), 1u);
    EXPECT_EQ(floor_log2(4), 2u);
    EXPECT_EQ(floor_log2(4096), 12u);
}

TEST(MathUtil, NextPow2)
{
    EXPECT_EQ(next_pow2(1), 1u);
    EXPECT_EQ(next_pow2(3), 4u);
    EXPECT_EQ(next_pow2(4), 4u);
    EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(MathUtil, AlignRoundTripProperty)
{
    for (std::size_t align : {std::size_t{8}, std::size_t{64},
                              std::size_t{4096}}) {
        for (std::size_t x = 0; x < 3 * align; x += 7) {
            std::size_t up = align_up(x, align);
            EXPECT_GE(up, x);
            EXPECT_LT(up - x, align);
            EXPECT_TRUE(is_aligned(up, align));
            std::size_t down = align_down(x, align);
            EXPECT_LE(down, x);
            EXPECT_LT(x - down, align);
            EXPECT_TRUE(is_aligned(down, align));
        }
    }
}

}  // namespace
}  // namespace detail
}  // namespace hoard
