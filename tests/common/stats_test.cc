/** @file Unit tests for counters, gauges, and the stats block. */

#include "common/stats.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace hoard {
namespace detail {
namespace {

TEST(Counter, AddsAndResets)
{
    Counter c;
    EXPECT_EQ(c.get(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.get(), 42u);
    c.reset();
    EXPECT_EQ(c.get(), 0u);
}

TEST(Gauge, TracksLevelAndPeak)
{
    Gauge g;
    g.add(100);
    EXPECT_EQ(g.current(), 100u);
    EXPECT_EQ(g.peak(), 100u);
    g.sub(60);
    EXPECT_EQ(g.current(), 40u);
    EXPECT_EQ(g.peak(), 100u);
    g.add(30);
    EXPECT_EQ(g.current(), 70u);
    EXPECT_EQ(g.peak(), 100u);
    g.add(100);
    EXPECT_EQ(g.peak(), 170u);
}

TEST(Gauge, SubToExactlyZeroIsBalanced)
{
    Gauge g;
    g.add(64);
    g.sub(64);
    EXPECT_EQ(g.current(), 0u);
    EXPECT_EQ(g.peak(), 64u);
}

#ifndef NDEBUG
TEST(GaugeDeathTest, SubBelowZeroIsACallerBug)
{
    Gauge g;
    g.add(10);
    EXPECT_DEATH(g.sub(11), "invariant failed");
}

TEST(GaugeDeathTest, SubOnEmptyGaugeIsACallerBug)
{
    Gauge g;
    EXPECT_DEATH(g.sub(1), "invariant failed");
}
#endif

TEST(Gauge, ResetClearsLevelAndPeak)
{
    Gauge g;
    g.add(100);
    g.sub(40);
    g.reset();
    EXPECT_EQ(g.current(), 0u);
    EXPECT_EQ(g.peak(), 0u);
    g.add(5);
    EXPECT_EQ(g.peak(), 5u);
}

TEST(Gauge, PeakIsSupremumOfRacingLevels)
{
    // Each thread repeatedly holds a distinct level live; the CAS-max
    // loop must record at least the largest single contribution and at
    // most the sum of all concurrent ones.
    Gauge g;
    std::vector<std::thread> threads;
    for (int t = 1; t <= 4; ++t) {
        threads.emplace_back([&g, t] {
            for (int i = 0; i < 10000; ++i) {
                g.add(static_cast<std::uint64_t>(t));
                g.sub(static_cast<std::uint64_t>(t));
            }
        });
    }
    for (auto& t : threads)
        t.join();
    EXPECT_EQ(g.current(), 0u);
    EXPECT_GE(g.peak(), 4u);
    EXPECT_LE(g.peak(), 10u);  // 1+2+3+4
}

TEST(Gauge, PeakUnderConcurrency)
{
    Gauge g;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&g] {
            for (int i = 0; i < 10000; ++i) {
                g.add(3);
                g.sub(3);
            }
        });
    }
    for (auto& t : threads)
        t.join();
    EXPECT_EQ(g.current(), 0u);
    EXPECT_GE(g.peak(), 3u);
    EXPECT_LE(g.peak(), 12u);
}

TEST(AllocatorStats, FragmentationDefinition)
{
    AllocatorStats stats;
    EXPECT_DOUBLE_EQ(stats.fragmentation(), 1.0);  // no data yet
    stats.in_use_bytes.add(100);
    stats.held_bytes.add(150);
    EXPECT_DOUBLE_EQ(stats.fragmentation(), 1.5);
    // Fragmentation uses peaks, not current levels.
    stats.in_use_bytes.sub(100);
    stats.held_bytes.sub(150);
    EXPECT_DOUBLE_EQ(stats.fragmentation(), 1.5);
}

}  // namespace
}  // namespace detail
}  // namespace hoard
