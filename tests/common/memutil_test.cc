/** @file Unit tests for the memory-pattern helpers. */

#include "common/memutil.h"

#include <gtest/gtest.h>

#include <vector>

namespace hoard {
namespace detail {
namespace {

TEST(MemUtil, FillThenCheckPasses)
{
    std::vector<char> buffer(257);
    pattern_fill(buffer.data(), buffer.size(), 99);
    EXPECT_TRUE(pattern_check(buffer.data(), buffer.size(), 99));
}

TEST(MemUtil, CorruptionDetected)
{
    std::vector<char> buffer(64);
    pattern_fill(buffer.data(), buffer.size(), 5);
    buffer[17] = static_cast<char>(buffer[17] + 1);
    EXPECT_FALSE(pattern_check(buffer.data(), buffer.size(), 5));
}

TEST(MemUtil, SaltMatters)
{
    std::vector<char> buffer(64);
    pattern_fill(buffer.data(), buffer.size(), 1);
    EXPECT_FALSE(pattern_check(buffer.data(), buffer.size(), 2));
}

TEST(MemUtil, AddressMatters)
{
    // The same bytes at a different base address fail the check, so
    // overlapping allocations show up even with equal fill order.
    std::vector<char> buffer(128);
    pattern_fill(buffer.data(), 64, 3);
    EXPECT_FALSE(pattern_check(buffer.data() + 1, 63, 3));
}

TEST(MemUtil, ZeroLengthIsTriviallyValid)
{
    char c = 0;
    pattern_fill(&c, 0, 1);
    EXPECT_TRUE(pattern_check(&c, 0, 1));
}

}  // namespace
}  // namespace detail
}  // namespace hoard
