/** @file Unit tests for the deterministic RNG. */

#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace hoard {
namespace detail {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    bool lo_hit = false, hi_hit = false;
    for (int i = 0; i < 5000; ++i) {
        std::uint64_t v = rng.range(10, 13);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 13u);
        lo_hit |= v == 10;
        hi_hit |= v == 13;
    }
    EXPECT_TRUE(lo_hit);
    EXPECT_TRUE(hi_hit);
    EXPECT_EQ(rng.range(5, 5), 5u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.03);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(17);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

}  // namespace
}  // namespace detail
}  // namespace hoard
