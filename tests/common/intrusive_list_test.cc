/** @file Unit tests for detail::IntrusiveList. */

#include "common/intrusive_list.h"

#include <gtest/gtest.h>

#include <vector>

namespace hoard {
namespace detail {
namespace {

struct Item
{
    explicit Item(int v = 0) : value(v) {}
    ListNode hook;
    int value;
};

using List = IntrusiveList<Item, &Item::hook>;

TEST(IntrusiveList, StartsEmpty)
{
    List list;
    EXPECT_TRUE(list.empty());
    EXPECT_EQ(list.size(), 0u);
    EXPECT_EQ(list.front(), nullptr);
    EXPECT_EQ(list.back(), nullptr);
    EXPECT_EQ(list.pop_front(), nullptr);
    EXPECT_EQ(list.pop_back(), nullptr);
}

TEST(IntrusiveList, PushFrontOrders)
{
    List list;
    Item a(1), b(2), c(3);
    list.push_front(&a);
    list.push_front(&b);
    list.push_front(&c);
    EXPECT_EQ(list.size(), 3u);
    EXPECT_EQ(list.front(), &c);
    EXPECT_EQ(list.back(), &a);
}

TEST(IntrusiveList, PushBackOrders)
{
    List list;
    Item a(1), b(2);
    list.push_back(&a);
    list.push_back(&b);
    EXPECT_EQ(list.front(), &a);
    EXPECT_EQ(list.back(), &b);
}

TEST(IntrusiveList, PopFrontIsFifoForPushBack)
{
    List list;
    std::vector<Item> items(5);
    for (auto& item : items)
        list.push_back(&item);
    for (auto& item : items)
        EXPECT_EQ(list.pop_front(), &item);
    EXPECT_TRUE(list.empty());
}

TEST(IntrusiveList, PopBackIsLifoForPushBack)
{
    List list;
    std::vector<Item> items(5);
    for (auto& item : items)
        list.push_back(&item);
    for (int i = 4; i >= 0; --i)
        EXPECT_EQ(list.pop_back(), &items[static_cast<std::size_t>(i)]);
}

TEST(IntrusiveList, RemoveMiddle)
{
    List list;
    Item a, b, c;
    list.push_back(&a);
    list.push_back(&b);
    list.push_back(&c);
    list.remove(&b);
    EXPECT_EQ(list.size(), 2u);
    EXPECT_EQ(list.front(), &a);
    EXPECT_EQ(list.next(&a), &c);
    EXPECT_EQ(list.next(&c), nullptr);
    EXPECT_FALSE(List::is_linked(&b));
}

TEST(IntrusiveList, RemoveEnds)
{
    List list;
    Item a, b, c;
    list.push_back(&a);
    list.push_back(&b);
    list.push_back(&c);
    list.remove(&a);
    list.remove(&c);
    EXPECT_EQ(list.front(), &b);
    EXPECT_EQ(list.back(), &b);
    EXPECT_EQ(list.size(), 1u);
}

TEST(IntrusiveList, ReinsertAfterRemove)
{
    List list;
    Item a;
    list.push_back(&a);
    list.remove(&a);
    EXPECT_FALSE(List::is_linked(&a));
    list.push_front(&a);
    EXPECT_TRUE(List::is_linked(&a));
    EXPECT_EQ(list.front(), &a);
}

TEST(IntrusiveList, ElementCanMoveBetweenLists)
{
    List one, two;
    Item a;
    one.push_back(&a);
    one.remove(&a);
    two.push_back(&a);
    EXPECT_TRUE(one.empty());
    EXPECT_EQ(two.front(), &a);
}

TEST(IntrusiveList, NextWalksWholeList)
{
    List list;
    std::vector<Item> items(10);
    for (std::size_t i = 0; i < items.size(); ++i) {
        items[i].value = static_cast<int>(i);
        list.push_back(&items[i]);
    }
    int expected = 0;
    for (Item* it = list.front(); it != nullptr; it = list.next(it))
        EXPECT_EQ(it->value, expected++);
    EXPECT_EQ(expected, 10);
}

TEST(IntrusiveList, HookNotFirstMember)
{
    // The container_of recovery must work no matter where the hook sits.
    struct Late
    {
        long padding[3] = {};
        ListNode hook;
        int value = 7;
    };
    IntrusiveList<Late, &Late::hook> list;
    Late item;
    list.push_back(&item);
    EXPECT_EQ(list.front(), &item);
    EXPECT_EQ(list.front()->value, 7);
}

TEST(IntrusiveList, LargePopulationStaysConsistent)
{
    List list;
    std::vector<Item> items(1000);
    for (auto& item : items)
        list.push_back(&item);
    // Remove every other element.
    for (std::size_t i = 0; i < items.size(); i += 2)
        list.remove(&items[i]);
    EXPECT_EQ(list.size(), 500u);
    std::size_t count = 0;
    for (Item* it = list.front(); it != nullptr; it = list.next(it))
        ++count;
    EXPECT_EQ(count, 500u);
}

}  // namespace
}  // namespace detail
}  // namespace hoard
