/** @file Unit tests for the mmap page provider. */

#include "os/page_provider.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/mathutil.h"

namespace hoard {
namespace os {
namespace {

TEST(PageProvider, MapsAlignedChunks)
{
    MmapPageProvider provider;
    for (std::size_t align : {std::size_t{4096}, std::size_t{8192},
                              std::size_t{65536}}) {
        void* p = provider.map(align, align);
        ASSERT_NE(p, nullptr);
        EXPECT_TRUE(detail::is_aligned(p, align));
        provider.unmap(p, align);
    }
}

TEST(PageProvider, MemoryIsZeroedAndWritable)
{
    MmapPageProvider provider;
    const std::size_t bytes = 16384;
    auto* p = static_cast<unsigned char*>(provider.map(bytes, 8192));
    ASSERT_NE(p, nullptr);
    for (std::size_t i = 0; i < bytes; i += 997)
        EXPECT_EQ(p[i], 0u);
    std::memset(p, 0xcd, bytes);
    EXPECT_EQ(p[bytes - 1], 0xcd);
    provider.unmap(p, bytes);
}

TEST(PageProvider, AccountsMappedBytes)
{
    MmapPageProvider provider;
    EXPECT_EQ(provider.mapped_bytes(), 0u);
    void* a = provider.map(8192, 8192);
    EXPECT_EQ(provider.mapped_bytes(), 8192u);
    void* b = provider.map(4096, 4096);
    EXPECT_EQ(provider.mapped_bytes(), 12288u);
    EXPECT_EQ(provider.peak_mapped_bytes(), 12288u);
    provider.unmap(a, 8192);
    EXPECT_EQ(provider.mapped_bytes(), 4096u);
    EXPECT_EQ(provider.peak_mapped_bytes(), 12288u);
    provider.unmap(b, 4096);
    EXPECT_EQ(provider.mapped_bytes(), 0u);
}

TEST(PageProvider, RoundsSubPageRequestsUp)
{
    MmapPageProvider provider;
    void* p = provider.map(100, 64);
    ASSERT_NE(p, nullptr);
    EXPECT_GE(provider.mapped_bytes(), 4096u);
    provider.unmap(p, 100);
    EXPECT_EQ(provider.mapped_bytes(), 0u);
}

TEST(PageProvider, ManySmallChunksDistinct)
{
    MmapPageProvider provider;
    std::vector<void*> chunks;
    for (int i = 0; i < 64; ++i) {
        void* p = provider.map(8192, 8192);
        ASSERT_NE(p, nullptr);
        // Chunks must not overlap: each 8K-aligned start is unique.
        for (void* q : chunks)
            EXPECT_NE(p, q);
        chunks.push_back(p);
    }
    for (void* p : chunks)
        provider.unmap(p, 8192);
}

TEST(PageProvider, LargeAlignmentLargerThanSize)
{
    MmapPageProvider provider;
    void* p = provider.map(4096, 1 << 20);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(detail::is_aligned(p, 1 << 20));
    provider.unmap(p, 4096);
}

TEST(PageProvider, DefaultProviderIsSingleton)
{
    EXPECT_EQ(&default_page_provider(), &default_page_provider());
}

}  // namespace
}  // namespace os
}  // namespace hoard
