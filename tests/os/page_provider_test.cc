/** @file Unit tests for the mmap page provider. */

#include "os/page_provider.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/mathutil.h"

namespace hoard {
namespace os {
namespace {

/**
 * Total bytes of anonymous read/write mappings in this process, from
 * /proc/self/maps.  Named mappings ([heap], [stack], files) are
 * excluded; what remains is exactly where a missed head/tail trim in
 * the over-map alignment path would show up.
 */
std::size_t
anon_rw_bytes()
{
    std::ifstream maps("/proc/self/maps");
    std::size_t total = 0;
    std::string line;
    while (std::getline(maps, line)) {
        unsigned long long start = 0, end = 0, offset = 0, inode = 0;
        unsigned dev_major = 0, dev_minor = 0;
        char perms[8] = {};
        char path[256] = {};
        const int n = std::sscanf(
            line.c_str(), "%llx-%llx %7s %llx %x:%x %llu %255s", &start,
            &end, perms, &offset, &dev_major, &dev_minor, &inode, path);
        if (n < 7)
            continue;
        const bool anonymous = inode == 0 && (n < 8 || path[0] == '\0');
        if (anonymous && perms[0] == 'r' && perms[1] == 'w')
            total += static_cast<std::size_t>(end - start);
    }
    return total;
}

TEST(PageProvider, MapsAlignedChunks)
{
    MmapPageProvider provider;
    for (std::size_t align : {std::size_t{4096}, std::size_t{8192},
                              std::size_t{65536}}) {
        void* p = provider.map(align, align);
        ASSERT_NE(p, nullptr);
        EXPECT_TRUE(detail::is_aligned(p, align));
        provider.unmap(p, align);
    }
}

TEST(PageProvider, MemoryIsZeroedAndWritable)
{
    MmapPageProvider provider;
    const std::size_t bytes = 16384;
    auto* p = static_cast<unsigned char*>(provider.map(bytes, 8192));
    ASSERT_NE(p, nullptr);
    for (std::size_t i = 0; i < bytes; i += 997)
        EXPECT_EQ(p[i], 0u);
    std::memset(p, 0xcd, bytes);
    EXPECT_EQ(p[bytes - 1], 0xcd);
    provider.unmap(p, bytes);
}

TEST(PageProvider, AccountsMappedBytes)
{
    MmapPageProvider provider;
    EXPECT_EQ(provider.mapped_bytes(), 0u);
    void* a = provider.map(8192, 8192);
    EXPECT_EQ(provider.mapped_bytes(), 8192u);
    void* b = provider.map(4096, 4096);
    EXPECT_EQ(provider.mapped_bytes(), 12288u);
    EXPECT_EQ(provider.peak_mapped_bytes(), 12288u);
    provider.unmap(a, 8192);
    EXPECT_EQ(provider.mapped_bytes(), 4096u);
    EXPECT_EQ(provider.peak_mapped_bytes(), 12288u);
    provider.unmap(b, 4096);
    EXPECT_EQ(provider.mapped_bytes(), 0u);
}

TEST(PageProvider, RoundsSubPageRequestsUp)
{
    MmapPageProvider provider;
    void* p = provider.map(100, 64);
    ASSERT_NE(p, nullptr);
    EXPECT_GE(provider.mapped_bytes(), 4096u);
    provider.unmap(p, 100);
    EXPECT_EQ(provider.mapped_bytes(), 0u);
}

TEST(PageProvider, ManySmallChunksDistinct)
{
    MmapPageProvider provider;
    std::vector<void*> chunks;
    for (int i = 0; i < 64; ++i) {
        void* p = provider.map(8192, 8192);
        ASSERT_NE(p, nullptr);
        // Chunks must not overlap: each 8K-aligned start is unique.
        for (void* q : chunks)
            EXPECT_NE(p, q);
        chunks.push_back(p);
    }
    for (void* p : chunks)
        provider.unmap(p, 8192);
}

TEST(PageProvider, LargeAlignmentLargerThanSize)
{
    MmapPageProvider provider;
    void* p = provider.map(4096, 1 << 20);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(detail::is_aligned(p, 1 << 20));
    provider.unmap(p, 4096);
}

TEST(PageProvider, OverMapTrimLeaksNoRwPages)
{
    // The alignment path over-maps bytes + align - page and trims the
    // misaligned head and tail in one checked pass.  A missed trim
    // leaks an anonymous RW mapping per call: 32 cycles at 1 MiB
    // alignment would leave ~32 MiB visible in /proc/self/maps.
    MmapPageProvider provider;
    const std::size_t before = anon_rw_bytes();
    for (int i = 0; i < 32; ++i) {
        void* p = provider.map(8192, 1 << 20);
        ASSERT_NE(p, nullptr);
        EXPECT_TRUE(detail::is_aligned(p, 1 << 20));
        std::memset(p, 0x11, 8192);
        provider.unmap(p, 8192);
    }
    EXPECT_EQ(provider.mapped_bytes(), 0u);
    const std::size_t after = anon_rw_bytes();
    // Unrelated allocations (gtest bookkeeping, libc arenas) may add
    // noise, but nothing near the >= 32 MiB a leaked trim would cost.
    EXPECT_LT(after, before + (4u << 20));
}

TEST(PageProvider, DefaultProviderIsSingleton)
{
    EXPECT_EQ(&default_page_provider(), &default_page_provider());
}

}  // namespace
}  // namespace os
}  // namespace hoard
