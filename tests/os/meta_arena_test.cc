/** @file Unit tests for the metadata bump arena. */

#include "os/meta_arena.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

#include "common/mathutil.h"
#include "os/fault_injection.h"

namespace hoard {
namespace os {
namespace {

TEST(MetaArena, AllocatesAligned)
{
    MmapPageProvider provider;
    MetaArena arena(provider);
    void* a = arena.allocate(3, 1);
    void* b = arena.allocate(64, 64);
    void* c = arena.allocate(1, 16);
    EXPECT_NE(a, nullptr);
    EXPECT_TRUE(detail::is_aligned(b, 64));
    EXPECT_TRUE(detail::is_aligned(c, 16));
}

TEST(MetaArena, AllocationsDoNotOverlap)
{
    MmapPageProvider provider;
    MetaArena arena(provider);
    auto* a = static_cast<char*>(arena.allocate(100));
    auto* b = static_cast<char*>(arena.allocate(100));
    std::memset(a, 1, 100);
    std::memset(b, 2, 100);
    EXPECT_EQ(a[50], 1);
    EXPECT_EQ(b[50], 2);
}

TEST(MetaArena, GrowsBeyondOneChunk)
{
    MmapPageProvider provider;
    MetaArena arena(provider, 4096);
    std::vector<void*> blocks;
    for (int i = 0; i < 100; ++i)
        blocks.push_back(arena.allocate(1024));
    for (void* p : blocks)
        EXPECT_NE(p, nullptr);
    EXPECT_GE(arena.allocated_bytes(), 100u * 1024u);
    EXPECT_GT(provider.mapped_bytes(), 4096u);
}

TEST(MetaArena, MakeConstructsObjects)
{
    struct Widget
    {
        Widget(int a_, int b_) : a(a_), b(b_) {}
        int a, b;
    };
    MmapPageProvider provider;
    MetaArena arena(provider);
    Widget* w = arena.make<Widget>(3, 4);
    EXPECT_EQ(w->a, 3);
    EXPECT_EQ(w->b, 4);
}

TEST(MetaArena, MakeArrayDefaultInitializes)
{
    MmapPageProvider provider;
    MetaArena arena(provider);
    int* xs = arena.make_array<int>(50);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(xs[i], 0);
}

TEST(MetaArena, ReleasesOnDestruction)
{
    MmapPageProvider provider;
    {
        MetaArena arena(provider, 4096);
        arena.allocate(100000);
        EXPECT_GT(provider.mapped_bytes(), 0u);
    }
    EXPECT_EQ(provider.mapped_bytes(), 0u);
}

TEST(MetaArena, MapFailurePropagatesAsNull)
{
    MmapPageProvider inner;
    FaultInjectingPageProvider provider(inner);
    MetaArena arena(provider, 4096);
    provider.fail_nth_map(1);
    EXPECT_EQ(arena.allocate(100), nullptr);
    EXPECT_EQ(arena.allocated_bytes(), 0u);
    // The failure left the arena consistent: the next allocation (with
    // the schedule exhausted) succeeds.
    void* p = arena.allocate(100);
    EXPECT_NE(p, nullptr);
    EXPECT_EQ(arena.allocated_bytes(), 100u);
}

TEST(MetaArena, MakeReturnsNullOnExhaustion)
{
    struct Widget
    {
        int a = 1;
    };
    MmapPageProvider inner;
    FaultInjectingPageProvider provider(inner);
    MetaArena arena(provider, 4096);
    provider.fail_every_kth_map(1);  // every map fails
    EXPECT_EQ(arena.make<Widget>(), nullptr);
    EXPECT_EQ(arena.make_array<int>(32), nullptr);
    provider.clear_schedule();
    Widget* w = arena.make<Widget>();
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->a, 1);
}

TEST(MetaArena, GrowthFailureMidStreamKeepsEarlierAllocations)
{
    MmapPageProvider inner;
    FaultInjectingPageProvider provider(inner);
    MetaArena arena(provider, 4096);
    auto* a = static_cast<char*>(arena.allocate(1024));
    ASSERT_NE(a, nullptr);
    std::memset(a, 7, 1024);
    // Force the next chunk map to fail: a large request must grow.
    provider.fail_nth_map(1);
    EXPECT_EQ(arena.allocate(64 * 1024), nullptr);
    // Earlier memory is untouched and the arena still serves from the
    // current chunk.
    EXPECT_EQ(a[512], 7);
    void* b = arena.allocate(16);
    EXPECT_NE(b, nullptr);
}

TEST(MetaArena, AlignmentHonoredOnFreshChunk)
{
    // The first allocation of a chunk must respect large alignments
    // even though the chunk cursor starts just past the header.
    MmapPageProvider provider;
    MetaArena arena(provider, 4096);
    void* p = arena.allocate(64, 64);
    EXPECT_TRUE(detail::is_aligned(p, 64));
    MetaArena arena2(provider, 4096);
    void* q = arena2.allocate(8, 256);
    EXPECT_TRUE(detail::is_aligned(q, 256));
}

TEST(MetaArena, ThreadSafeAllocation)
{
    MmapPageProvider provider;
    MetaArena arena(provider, 8192);
    std::vector<std::thread> threads;
    std::vector<std::vector<void*>> results(4);
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&arena, &results, t] {
            for (int i = 0; i < 500; ++i)
                results[static_cast<std::size_t>(t)].push_back(
                    arena.allocate(64));
        });
    }
    for (auto& t : threads)
        t.join();
    // All 2000 allocations must be distinct.
    std::vector<void*> all;
    for (auto& r : results)
        all.insert(all.end(), r.begin(), r.end());
    std::sort(all.begin(), all.end());
    EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
}

}  // namespace
}  // namespace os
}  // namespace hoard
