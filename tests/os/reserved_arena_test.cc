/**
 * @file
 * Unit tests for the reserved-arena page provider: reservation vs
 * commit accounting, syscall-free span recycling, purge/unpurge, the
 * over-max-span fallback, and — through the protected syscall seams —
 * survival of reservation, commit, and decommit failures.
 */

#include "os/reserved_arena.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/mathutil.h"
#include "common/memutil.h"
#include "os/page_provider.h"

namespace hoard {
namespace os {
namespace {

constexpr std::size_t kSpan = std::size_t{64} << 10;  // 64 KiB spans

/** Small arenas so tests reserve 4 MiB, not the production 1 GiB. */
ReservedArenaProvider::Options
small_options()
{
    ReservedArenaProvider::Options o;
    o.arena_bytes = std::size_t{4} << 20;
    o.max_span_bytes = std::size_t{1} << 20;
    return o;
}

TEST(ReservedArena, SpansAreAlignedZeroedWritable)
{
    ReservedArenaProvider provider(small_options());
    for (std::size_t bytes : {std::size_t{4096}, std::size_t{8192},
                              kSpan, std::size_t{1} << 20}) {
        auto* p =
            static_cast<unsigned char*>(provider.map(bytes, bytes));
        ASSERT_NE(p, nullptr) << bytes;
        EXPECT_TRUE(detail::is_aligned(p, bytes));
        for (std::size_t i = 0; i < bytes; i += 1021)
            EXPECT_EQ(p[i], 0u);
        std::memset(p, 0xcd, bytes);
        EXPECT_EQ(p[bytes - 1], 0xcd);
        provider.unmap(p, bytes);
    }
}

TEST(ReservedArena, ReservesArenasCommitsLazily)
{
    ReservedArenaProvider provider(small_options());
    EXPECT_EQ(provider.reserved_bytes(), 0u);
    EXPECT_EQ(provider.mapped_bytes(), 0u);

    void* p = provider.map(kSpan, kSpan);
    ASSERT_NE(p, nullptr);
    // One whole arena is reserved, but only the carved span commits.
    EXPECT_EQ(provider.reserved_bytes(), provider.options().arena_bytes);
    EXPECT_EQ(provider.mapped_bytes(), kSpan);
    EXPECT_EQ(provider.reservations(), 1u);
    EXPECT_EQ(provider.commit_calls(), 1u);
    EXPECT_EQ(provider.span_carves(), 1u);

    // A second span splits from the same reservation: no new arena.
    void* q = provider.map(kSpan, kSpan);
    ASSERT_NE(q, nullptr);
    EXPECT_EQ(provider.reservations(), 1u);
    EXPECT_EQ(provider.mapped_bytes(), 2 * kSpan);

    provider.unmap(p, kSpan);
    provider.unmap(q, kSpan);
    EXPECT_EQ(provider.mapped_bytes(), 0u);
    // Unmap decommits but keeps the address space reserved.
    EXPECT_EQ(provider.reserved_bytes(), provider.options().arena_bytes);
}

TEST(ReservedArena, RecyclesSpansWithoutCommitSyscalls)
{
    ReservedArenaProvider provider(small_options());
    void* p = provider.map(kSpan, kSpan);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0x5a, kSpan);
    provider.unmap(p, kSpan);
    EXPECT_EQ(provider.decommit_calls(), 1u);

    // The recycled span comes back at the same address, already RW
    // (zero commit syscalls), and refaults zeroed after the
    // MADV_DONTNEED in unmap().
    auto* q = static_cast<unsigned char*>(provider.map(kSpan, kSpan));
    EXPECT_EQ(q, p);
    EXPECT_EQ(provider.commit_calls(), 1u);
    EXPECT_EQ(provider.span_recycles(), 1u);
    for (std::size_t i = 0; i < kSpan; i += 1021)
        EXPECT_EQ(q[i], 0u);
    provider.unmap(q, kSpan);
}

TEST(ReservedArena, ManySpansDistinctAndNonOverlapping)
{
    ReservedArenaProvider provider(small_options());
    std::vector<char*> spans;
    for (int i = 0; i < 32; ++i) {
        auto* p = static_cast<char*>(provider.map(kSpan, kSpan));
        ASSERT_NE(p, nullptr);
        for (char* q : spans) {
            EXPECT_TRUE(p + kSpan <= q || q + kSpan <= p)
                << "span overlap";
        }
        std::memset(p, i + 1, kSpan);
        spans.push_back(p);
    }
    for (std::size_t i = 0; i < spans.size(); ++i)
        EXPECT_EQ(spans[i][kSpan - 1], static_cast<char>(i + 1));
    for (char* p : spans)
        provider.unmap(p, kSpan);
    EXPECT_EQ(provider.mapped_bytes(), 0u);
}

TEST(ReservedArena, PurgeDropsCommittedKeepsSpanMapped)
{
    ReservedArenaProvider provider(small_options());
    auto* p = static_cast<unsigned char*>(provider.map(kSpan, kSpan));
    ASSERT_NE(p, nullptr);
    std::memset(p, 0x77, kSpan);
    EXPECT_EQ(provider.mapped_bytes(), kSpan);

    // Purge the tail of the span (as the allocator purges a
    // superblock's payload while keeping its header page committed).
    const std::size_t page = page_bytes();
    ASSERT_TRUE(provider.purge(p + page, kSpan - page));
    EXPECT_EQ(provider.mapped_bytes(), page);
    // The range is still mapped: reads refault zeroed pages, the
    // untouched head keeps its data.
    EXPECT_EQ(p[0], 0x77u);
    EXPECT_EQ(p[page], 0u);
    EXPECT_EQ(p[kSpan - 1], 0u);

    provider.unpurge(p + page, kSpan - page);
    EXPECT_EQ(provider.mapped_bytes(), kSpan);
    std::memset(p, 0x78, kSpan);
    provider.unmap(p, kSpan);
    EXPECT_EQ(provider.mapped_bytes(), 0u);
}

TEST(ReservedArena, FallbackServesOverMaxSpanRequests)
{
    ReservedArenaProvider provider(small_options());
    const std::size_t huge = provider.options().max_span_bytes * 2;
    auto* p = static_cast<char*>(provider.map(huge, kSpan));
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(detail::is_aligned(p, kSpan));
    EXPECT_EQ(provider.fallback_maps(), 1u);
    // Fallback mappings are committed memory: both gauges charge.
    EXPECT_EQ(provider.mapped_bytes(), huge);
    EXPECT_EQ(provider.reserved_bytes(), huge);
    std::memset(p, 0x31, huge);
    provider.unmap(p, huge);
    EXPECT_EQ(provider.mapped_bytes(), 0u);
    EXPECT_EQ(provider.reserved_bytes(), 0u);
}

TEST(ReservedArena, FallbackServesOverAlignedRequests)
{
    // Alignment stricter than the natural span size cannot use the
    // carve path (unmap could not recompute the span from bytes
    // alone), so it over-maps and trims like the mmap provider.
    ReservedArenaProvider provider(small_options());
    void* p = provider.map(4096, std::size_t{2} << 20);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(detail::is_aligned(p, std::size_t{2} << 20));
    EXPECT_EQ(provider.fallback_maps(), 1u);
    provider.unmap(p, 4096);
    EXPECT_EQ(provider.mapped_bytes(), 0u);
}

/** Syscall-seam override: each os_* hook can be failed on demand. */
class FlakyArena : public ReservedArenaProvider
{
  public:
    using ReservedArenaProvider::ReservedArenaProvider;

    bool fail_reserve = false;
    bool fail_commit = false;
    bool fail_decommit = false;
    bool fail_map_rw = false;

  protected:
    void*
    os_reserve(std::size_t bytes) override
    {
        return fail_reserve ? nullptr
                            : ReservedArenaProvider::os_reserve(bytes);
    }
    bool
    os_commit(void* p, std::size_t bytes) override
    {
        return !fail_commit &&
               ReservedArenaProvider::os_commit(p, bytes);
    }
    bool
    os_decommit(void* p, std::size_t bytes) override
    {
        return !fail_decommit &&
               ReservedArenaProvider::os_decommit(p, bytes);
    }
    void*
    os_map_rw(std::size_t bytes) override
    {
        return fail_map_rw ? nullptr
                           : ReservedArenaProvider::os_map_rw(bytes);
    }
};

TEST(ReservedArenaFaults, ReservationFailureFallsBackThenFailsClean)
{
    FlakyArena provider(small_options());
    provider.fail_reserve = true;

    // No arena can be reserved; the span request degrades to the
    // plain-mmap fallback instead of crashing.
    void* p = provider.map(kSpan, kSpan);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(provider.fallback_maps(), 1u);
    EXPECT_EQ(provider.reservations(), 0u);
    std::memset(p, 0x42, kSpan);
    provider.unmap(p, kSpan);

    // With the fallback failing too, map reports OOM with nullptr and
    // clean gauges — the contract the allocator's reclaim path needs.
    provider.fail_map_rw = true;
    EXPECT_EQ(provider.map(kSpan, kSpan), nullptr);
    EXPECT_EQ(provider.mapped_bytes(), 0u);
    EXPECT_EQ(provider.reserved_bytes(), 0u);

    // Pressure passes: the same provider serves spans again.
    provider.fail_reserve = false;
    provider.fail_map_rw = false;
    void* q = provider.map(kSpan, kSpan);
    ASSERT_NE(q, nullptr);
    EXPECT_EQ(provider.reservations(), 1u);
    provider.unmap(q, kSpan);
}

TEST(ReservedArenaFaults, CommitFailureReportsOomAndRetries)
{
    FlakyArena provider(small_options());
    provider.fail_commit = true;

    // The span carves but cannot be committed: nullptr, nothing
    // charged, and the span is parked for a later retry.
    EXPECT_EQ(provider.map(kSpan, kSpan), nullptr);
    EXPECT_EQ(provider.commit_calls(), 1u);
    EXPECT_EQ(provider.mapped_bytes(), 0u);

    provider.fail_commit = false;
    auto* p = static_cast<unsigned char*>(provider.map(kSpan, kSpan));
    ASSERT_NE(p, nullptr);
    // The retry recycled the parked span and committed it this time.
    EXPECT_EQ(provider.span_recycles(), 1u);
    EXPECT_EQ(provider.commit_calls(), 2u);
    EXPECT_EQ(provider.mapped_bytes(), kSpan);
    std::memset(p, 0x13, kSpan);
    provider.unmap(p, kSpan);
}

TEST(ReservedArenaFaults, DecommitFailureOnUnmapLeavesVaHole)
{
    FlakyArena provider(small_options());
    void* p = provider.map(kSpan, kSpan);
    ASSERT_NE(p, nullptr);

    provider.fail_decommit = true;
    provider.unmap(p, kSpan);
    EXPECT_EQ(provider.decommit_failures(), 1u);
    // The span was released outright (a permanent VA hole): committed
    // and reserved both drop, and nothing was parked for recycling.
    EXPECT_EQ(provider.mapped_bytes(), 0u);
    EXPECT_EQ(provider.reserved_bytes(),
              provider.options().arena_bytes - kSpan);

    // The provider keeps working: the next map carves a fresh span.
    provider.fail_decommit = false;
    auto* q = static_cast<unsigned char*>(provider.map(kSpan, kSpan));
    ASSERT_NE(q, nullptr);
    EXPECT_NE(q, p);
    std::memset(q, 0x29, kSpan);
    provider.unmap(q, kSpan);
    EXPECT_EQ(provider.mapped_bytes(), 0u);
}

TEST(ReservedArenaFaults, PurgeFailureLeavesRangeCommitted)
{
    FlakyArena provider(small_options());
    auto* p = static_cast<unsigned char*>(provider.map(kSpan, kSpan));
    ASSERT_NE(p, nullptr);
    std::memset(p, 0x66, kSpan);

    provider.fail_decommit = true;
    EXPECT_FALSE(provider.purge(p, kSpan));
    EXPECT_EQ(provider.decommit_failures(), 1u);
    // "Nothing happened": the gauge is unchanged and the data intact.
    EXPECT_EQ(provider.mapped_bytes(), kSpan);
    EXPECT_EQ(p[kSpan - 1], 0x66u);

    provider.fail_decommit = false;
    EXPECT_TRUE(provider.purge(p, kSpan));
    EXPECT_EQ(provider.mapped_bytes(), 0u);
    provider.unpurge(p, kSpan);
    provider.unmap(p, kSpan);
}

}  // namespace
}  // namespace os
}  // namespace hoard
