/** @file Unit tests for the fault-injecting page-substrate decorators. */

#include "os/fault_injection.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/mathutil.h"
#include "os/page_provider.h"

namespace hoard {
namespace os {
namespace {

TEST(FaultInjectingPageProvider, PassesThroughWhenDisarmed)
{
    MmapPageProvider inner;
    FaultInjectingPageProvider provider(inner);
    void* p = provider.map(8192, 8192);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(detail::is_aligned(p, 8192));
    EXPECT_EQ(provider.mapped_bytes(), 8192u);
    provider.unmap(p, 8192);
    EXPECT_EQ(provider.mapped_bytes(), 0u);
    EXPECT_EQ(provider.map_calls(), 1u);
    EXPECT_EQ(provider.unmap_calls(), 1u);
    EXPECT_EQ(provider.injected_failures(), 0u);
}

TEST(FaultInjectingPageProvider, FailNthMapFailsExactlyOnce)
{
    MmapPageProvider inner;
    FaultInjectingPageProvider provider(inner);
    provider.fail_nth_map(3);
    std::vector<void*> mapped;
    for (int i = 0; i < 6; ++i) {
        void* p = provider.map(4096, 4096);
        if (i == 2) {
            EXPECT_EQ(p, nullptr) << "call " << i + 1;
        } else {
            EXPECT_NE(p, nullptr) << "call " << i + 1;
            mapped.push_back(p);
        }
    }
    EXPECT_EQ(provider.injected_failures(), 1u);
    EXPECT_EQ(provider.map_calls(), 6u);
    for (void* p : mapped)
        provider.unmap(p, 4096);
    EXPECT_EQ(provider.mapped_bytes(), 0u);
}

TEST(FaultInjectingPageProvider, FailEveryKth)
{
    MmapPageProvider inner;
    FaultInjectingPageProvider provider(inner);
    provider.fail_every_kth_map(3);
    for (int i = 1; i <= 12; ++i) {
        void* p = provider.map(4096, 4096);
        if (i % 3 == 0) {
            EXPECT_EQ(p, nullptr) << "call " << i;
        } else {
            ASSERT_NE(p, nullptr) << "call " << i;
            provider.unmap(p, 4096);
        }
    }
    EXPECT_EQ(provider.injected_failures(), 4u);
}

TEST(FaultInjectingPageProvider, ProbabilisticIsSeededAndDeterministic)
{
    // Same seed -> identical failure pattern on two providers.
    MmapPageProvider inner_a, inner_b;
    FaultInjectingPageProvider a(inner_a), b(inner_b);
    a.fail_with_probability(0.5, 42);
    b.fail_with_probability(0.5, 42);
    int failures = 0;
    for (int i = 0; i < 64; ++i) {
        void* pa = a.map(4096, 4096);
        void* pb = b.map(4096, 4096);
        EXPECT_EQ(pa == nullptr, pb == nullptr) << "call " << i;
        if (pa == nullptr)
            ++failures;
        if (pa != nullptr)
            a.unmap(pa, 4096);
        if (pb != nullptr)
            b.unmap(pb, 4096);
    }
    // p = 0.5 over 64 draws: some of each, overwhelmingly likely.
    EXPECT_GT(failures, 0);
    EXPECT_LT(failures, 64);
}

TEST(FaultInjectingPageProvider, ProbabilityExtremes)
{
    MmapPageProvider inner;
    FaultInjectingPageProvider provider(inner);
    provider.fail_with_probability(1.0, 7);
    EXPECT_EQ(provider.map(4096, 4096), nullptr);
    EXPECT_EQ(provider.map(4096, 4096), nullptr);
    provider.fail_with_probability(0.0, 7);
    void* p = provider.map(4096, 4096);
    EXPECT_NE(p, nullptr);
    provider.unmap(p, 4096);
}

TEST(FaultInjectingPageProvider, ClearScheduleDisarms)
{
    MmapPageProvider inner;
    FaultInjectingPageProvider provider(inner);
    provider.fail_every_kth_map(1);  // every call fails
    EXPECT_EQ(provider.map(4096, 4096), nullptr);
    provider.clear_schedule();
    void* p = provider.map(4096, 4096);
    ASSERT_NE(p, nullptr);
    provider.unmap(p, 4096);
}

TEST(FaultInjectingPageProvider, PurgePassesThroughWhenDisarmed)
{
    MmapPageProvider inner;
    FaultInjectingPageProvider provider(inner);
    auto* p = static_cast<unsigned char*>(provider.map(8192, 8192));
    ASSERT_NE(p, nullptr);
    std::memset(p, 0x5a, 8192);
    EXPECT_TRUE(provider.purge(p, 8192));
    EXPECT_EQ(provider.purge_calls(), 1u);
    EXPECT_EQ(provider.injected_purge_failures(), 0u);
    EXPECT_EQ(provider.mapped_bytes(), 0u);
    EXPECT_EQ(p[0], 0u);  // refaulted zero page
    provider.unpurge(p, 8192);
    EXPECT_EQ(provider.mapped_bytes(), 8192u);
    provider.unmap(p, 8192);
}

TEST(FaultInjectingPageProvider, FailPurgesTogglesIndependently)
{
    // Purge failure has its own toggle — it must not consume or
    // disturb the map() schedule.
    MmapPageProvider inner;
    FaultInjectingPageProvider provider(inner);
    provider.fail_nth_map(2);
    provider.set_fail_purges(true);

    auto* p = static_cast<unsigned char*>(provider.map(8192, 8192));
    ASSERT_NE(p, nullptr);
    std::memset(p, 0x66, 8192);
    EXPECT_FALSE(provider.purge(p, 8192));
    EXPECT_EQ(provider.injected_purge_failures(), 1u);
    // Failure means "nothing happened": gauge and data intact.
    EXPECT_EQ(provider.mapped_bytes(), 8192u);
    EXPECT_EQ(p[8191], 0x66u);

    // The map schedule is still armed and positioned at call 2.
    EXPECT_EQ(provider.map(8192, 8192), nullptr);
    EXPECT_EQ(provider.injected_failures(), 1u);

    provider.set_fail_purges(false);
    EXPECT_TRUE(provider.purge(p, 8192));
    provider.unpurge(p, 8192);
    provider.unmap(p, 8192);
}

TEST(FaultInjectingPageProvider, ReservedBytesPassThrough)
{
    MmapPageProvider inner;
    FaultInjectingPageProvider provider(inner);
    void* p = provider.map(8192, 8192);
    ASSERT_NE(p, nullptr);
    // The mmap provider reserves exactly what it commits; the
    // decorator must forward both gauges untouched.
    EXPECT_EQ(provider.reserved_bytes(), inner.reserved_bytes());
    EXPECT_EQ(provider.reserved_bytes(), 8192u);
    EXPECT_EQ(provider.peak_reserved_bytes(), 8192u);
    provider.unmap(p, 8192);
    EXPECT_EQ(provider.reserved_bytes(), 0u);
}

TEST(CappedPageProvider, EnforcesBudget)
{
    MmapPageProvider inner;
    CappedPageProvider provider(inner, 16384);
    void* a = provider.map(8192, 8192);
    ASSERT_NE(a, nullptr);
    void* b = provider.map(8192, 8192);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(provider.mapped_bytes(), 16384u);
    // Budget exhausted: the next map must fail without side effects.
    EXPECT_EQ(provider.map(4096, 4096), nullptr);
    EXPECT_EQ(provider.budget_rejections(), 1u);
    EXPECT_EQ(provider.mapped_bytes(), 16384u);
    // Releasing memory restores headroom.
    provider.unmap(a, 8192);
    void* c = provider.map(4096, 4096);
    ASSERT_NE(c, nullptr);
    provider.unmap(b, 8192);
    provider.unmap(c, 4096);
    EXPECT_EQ(provider.mapped_bytes(), 0u);
}

TEST(CappedPageProvider, AccountsPageRounding)
{
    // A 100-byte request costs a whole page; the budget check must use
    // the rounded charge, not the raw request.
    MmapPageProvider inner;
    CappedPageProvider provider(inner, 4096);
    void* p = provider.map(100, 64);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(provider.mapped_bytes(), 4096u);
    EXPECT_EQ(provider.map(100, 64), nullptr);
    provider.unmap(p, 100);
    EXPECT_EQ(provider.mapped_bytes(), 0u);
}

TEST(CappedPageProvider, ShrinkingBudgetBelowMappedTotal)
{
    MmapPageProvider inner;
    CappedPageProvider provider(inner, 1 << 20);
    void* a = provider.map(65536, 65536);
    ASSERT_NE(a, nullptr);
    // Pressure arrives: the ceiling drops below what is already out.
    provider.set_budget(4096);
    EXPECT_EQ(provider.budget(), 4096u);
    EXPECT_EQ(provider.map(4096, 4096), nullptr);
    // The existing mapping stays valid and can be returned.
    std::memset(a, 0x5a, 65536);
    provider.unmap(a, 65536);
    EXPECT_EQ(provider.mapped_bytes(), 0u);
    // With memory back under the ceiling, mapping works again.
    void* b = provider.map(4096, 4096);
    ASSERT_NE(b, nullptr);
    provider.unmap(b, 4096);
}

TEST(CappedPageProvider, ZeroBudgetRefusesEverything)
{
    MmapPageProvider inner;
    CappedPageProvider provider(inner, 0);
    EXPECT_EQ(provider.map(4096, 4096), nullptr);
    EXPECT_EQ(provider.mapped_bytes(), 0u);
    EXPECT_EQ(inner.mapped_bytes(), 0u);
}

TEST(CappedPageProvider, ComposesWithFaultInjection)
{
    // Stacked decorators: a budget AND a deterministic failure schedule.
    MmapPageProvider inner;
    CappedPageProvider capped(inner, 1 << 20);
    FaultInjectingPageProvider provider(capped);
    provider.fail_nth_map(2);
    void* a = provider.map(8192, 8192);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(provider.map(8192, 8192), nullptr);  // injected
    void* b = provider.map(8192, 8192);
    ASSERT_NE(b, nullptr);
    provider.unmap(a, 8192);
    provider.unmap(b, 8192);
    EXPECT_EQ(provider.mapped_bytes(), 0u);
}

}  // namespace
}  // namespace os
}  // namespace hoard
