/** @file Unit tests for the virtual-time mutex. */

#include "sim/virtual_mutex.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <vector>

#include "sim/machine.h"

namespace hoard {
namespace sim {
namespace {

TEST(VirtualMutex, UncontendedLockUnlock)
{
    Machine machine(1);
    VirtualMutex mutex;
    machine.spawn(0, 0, [&mutex] {
        mutex.lock();
        mutex.unlock();
        EXPECT_TRUE(mutex.try_lock());
        mutex.unlock();
    });
    machine.run();
    EXPECT_EQ(mutex.contentions(), 0u);
}

TEST(VirtualMutex, MutualExclusionInVirtualTime)
{
    Machine machine(2, CostModel(), /*quantum=*/1);
    VirtualMutex mutex;
    int inside = 0;
    int max_inside = 0;
    for (int i = 0; i < 2; ++i) {
        machine.spawn(i, i, [&] {
            for (int k = 0; k < 50; ++k) {
                std::lock_guard<VirtualMutex> guard(mutex);
                ++inside;
                max_inside = std::max(max_inside, inside);
                // Hold much longer than the lock-line transfer costs so
                // the threads' critical sections must overlap in
                // virtual time and queue on the mutex.
                Machine::current()->charge(500);
                Machine::current()->yield();
                --inside;
            }
        });
    }
    machine.run();
    EXPECT_EQ(max_inside, 1);
    EXPECT_GT(mutex.contentions(), 0u);
}

TEST(VirtualMutex, ContentionSerializesTime)
{
    CostModel costs;
    const int kOps = 100;
    const std::uint64_t kCritical = 50;

    auto run_with_threads = [&](int nthreads) {
        Machine machine(nthreads, costs, /*quantum=*/1);
        VirtualMutex mutex;
        for (int i = 0; i < nthreads; ++i) {
            machine.spawn(i, i, [&mutex, nthreads, kCritical] {
                for (int k = 0; k < kOps / nthreads; ++k) {
                    mutex.lock();
                    Machine::current()->charge(kCritical);
                    mutex.unlock();
                }
            });
        }
        return machine.run();
    };

    std::uint64_t t1 = run_with_threads(1);
    std::uint64_t t4 = run_with_threads(4);
    // Fixed total critical work through one lock cannot speed up; with
    // handoff overhead it must be slower.
    EXPECT_GT(t4, t1);
}

TEST(VirtualMutex, FifoHandoff)
{
    Machine machine(3, CostModel(), /*quantum=*/1);
    VirtualMutex mutex;
    std::vector<int> order;
    for (int i = 0; i < 3; ++i) {
        machine.spawn(i, i, [&, i] {
            // Stagger arrival: 0 first (holds long), then 1, then 2.
            Machine::current()->charge(
                static_cast<std::uint64_t>(1 + i * 2));
            mutex.lock();
            order.push_back(i);
            Machine::current()->charge(100);
            mutex.unlock();
        });
    }
    machine.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(VirtualMutex, TryLockFailsWhenHeld)
{
    Machine machine(2, CostModel(), /*quantum=*/1);
    VirtualMutex mutex;
    bool observed_failure = false;
    machine.spawn(0, 0, [&] {
        mutex.lock();
        Machine::current()->charge(500);
        mutex.unlock();
    });
    machine.spawn(1, 1, [&] {
        Machine::current()->charge(100);  // inside holder's window
        observed_failure = !mutex.try_lock();
        if (!observed_failure)
            mutex.unlock();
    });
    machine.run();
    EXPECT_TRUE(observed_failure);
}

TEST(VirtualMutex, WaiterResumesAfterReleaseTime)
{
    CostModel costs;
    Machine machine(2, costs, /*quantum=*/1);
    VirtualMutex mutex;
    std::uint64_t waiter_acquire = 0;
    machine.spawn(0, 0, [&] {
        mutex.lock();
        Machine::current()->charge(1000);
        Machine::current()->yield();
        mutex.unlock();
    });
    machine.spawn(1, 1, [&] {
        Machine::current()->charge(10);
        mutex.lock();
        waiter_acquire = 1;  // resumed holding the lock
        mutex.unlock();
    });
    std::uint64_t makespan = machine.run();
    EXPECT_EQ(waiter_acquire, 1u);
    // The waiter's clock must end beyond the holder's critical section
    // plus the handoff cost.
    EXPECT_GE(makespan, 1000 + costs.lock_handoff);
}

}  // namespace
}  // namespace sim
}  // namespace hoard
