/** @file Unit tests for ucontext fibers. */

#include "sim/fiber.h"

#include <gtest/gtest.h>

#include <vector>

namespace hoard {
namespace sim {
namespace {

TEST(Fiber, RunsBodyAndSwitchesBack)
{
    auto host = Fiber::wrap_host();
    int step = 0;
    Fiber* worker_ptr = nullptr;
    Fiber worker([&] {
        step = 1;
        host->resume_from(*worker_ptr);
        step = 2;
        host->resume_from(*worker_ptr);
    });
    worker_ptr = &worker;

    EXPECT_EQ(step, 0);
    worker.resume_from(*host);
    EXPECT_EQ(step, 1);
    worker.resume_from(*host);
    EXPECT_EQ(step, 2);
}

TEST(Fiber, PingPongManyTimes)
{
    auto host = Fiber::wrap_host();
    int count = 0;
    Fiber* self = nullptr;
    Fiber worker([&] {
        for (;;) {
            ++count;
            host->resume_from(*self);
        }
    });
    self = &worker;
    for (int i = 0; i < 1000; ++i)
        worker.resume_from(*host);
    EXPECT_EQ(count, 1000);
}

TEST(Fiber, MultipleFibersInterleave)
{
    auto host = Fiber::wrap_host();
    std::vector<int> order;
    std::vector<Fiber*> ptrs(3, nullptr);
    std::vector<std::unique_ptr<Fiber>> fibers;
    for (int i = 0; i < 3; ++i) {
        fibers.push_back(std::make_unique<Fiber>([&, i] {
            for (;;) {
                order.push_back(i);
                host->resume_from(*ptrs[static_cast<std::size_t>(i)]);
            }
        }));
        ptrs[static_cast<std::size_t>(i)] = fibers.back().get();
    }
    for (int round = 0; round < 2; ++round) {
        for (auto& f : fibers)
            f->resume_from(*host);
    }
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 0, 1, 2}));
}

TEST(Fiber, DeepStackUsage)
{
    auto host = Fiber::wrap_host();
    long result = 0;
    Fiber* self = nullptr;
    // ~100 KB of stack through recursion: must fit the 256 KB default.
    struct Recurse
    {
        static long
        go(int depth)
        {
            char pad[1024];
            pad[0] = static_cast<char>(depth);
            if (depth == 0)
                return pad[0];
            return pad[0] + go(depth - 1);
        }
    };
    Fiber worker([&] {
        result = Recurse::go(96);
        host->resume_from(*self);
    });
    self = &worker;
    worker.resume_from(*host);
    EXPECT_NE(result, 0);
}

}  // namespace
}  // namespace sim
}  // namespace hoard
