/** @file Unit tests for the MESI-flavored cache cost model. */

#include "sim/cache_model.h"

#include <gtest/gtest.h>

namespace hoard {
namespace sim {
namespace {

class CacheModelTest : public ::testing::Test
{
  protected:
    CostModel costs;
    CacheModel cache{costs};
    // A fake address comfortably line-aligned.
    const char* line0 = reinterpret_cast<const char*>(0x10000);
    const char* line1 = reinterpret_cast<const char*>(0x10040);
};

TEST_F(CacheModelTest, FirstTouchIsCold)
{
    EXPECT_EQ(cache.access(0, line0, 8, true), costs.cache_cold);
    EXPECT_EQ(cache.cold_misses(), 1u);
}

TEST_F(CacheModelTest, RepeatWriteByOwnerIsHit)
{
    cache.access(0, line0, 8, true);
    EXPECT_EQ(cache.access(0, line0, 8, true), costs.cache_hit);
    EXPECT_EQ(cache.hits(), 1u);
}

TEST_F(CacheModelTest, WriteAfterRemoteWriteIsTransfer)
{
    cache.access(0, line0, 8, true);
    EXPECT_EQ(cache.access(1, line0, 8, true), costs.cache_remote);
    EXPECT_GE(cache.remote_transfers(), 1u);
    // The steal opens a contended window: the thief's immediate
    // follow-up writes still price as transfers (two processors
    // hammering one line alternate per write on real hardware, even
    // when the simulator's scheduler batches them).
    EXPECT_EQ(cache.access(1, line0, 8, true), costs.cache_remote);
    EXPECT_EQ(cache.access(0, line0, 8, true), costs.cache_remote);
}

TEST_F(CacheModelTest, ContentionWindowMatchesPriorOwnerWrites)
{
    // Proc 0 hammers 100 writes, then proc 1 steals: proc 1 inherits a
    // 100-write contended window (the symmetric half of the duel),
    // after which its writes are local again.
    for (int i = 0; i < 100; ++i)
        cache.access(0, line0, 8, true);
    EXPECT_EQ(cache.access(1, line0, 8, true), costs.cache_remote);
    int remote = 0;
    for (int i = 0; i < 150; ++i) {
        if (cache.access(1, line0, 8, true) == costs.cache_remote)
            ++remote;
    }
    EXPECT_EQ(remote, 100);
    EXPECT_EQ(cache.access(1, line0, 8, true), costs.cache_hit);
}

TEST_F(CacheModelTest, SingleWriteMigrationIsCheap)
{
    // A cross-thread free writes a line once; when the owner takes it
    // back, it pays one transfer plus a one-write window — not a
    // hammer-length penalty.
    for (int i = 0; i < 100; ++i)
        cache.access(0, line0, 8, true);
    cache.access(1, line0, 8, true);  // the migrating single write
    std::uint64_t back = cache.access(0, line0, 8, true);
    EXPECT_EQ(back, costs.cache_remote);
    EXPECT_EQ(cache.access(0, line0, 8, true), costs.cache_remote);
    EXPECT_EQ(cache.access(0, line0, 8, true), costs.cache_hit);
}

TEST_F(CacheModelTest, ReadOfDirtyRemoteLineTransfers)
{
    cache.access(0, line0, 8, true);
    EXPECT_EQ(cache.access(1, line0, 8, false), costs.cache_remote);
    // Now clean-shared: both read cheaply.
    EXPECT_EQ(cache.access(1, line0, 8, false), costs.cache_hit);
    EXPECT_EQ(cache.access(0, line0, 8, false), costs.cache_hit);
}

TEST_F(CacheModelTest, SharedReadThenUpgradeInvalidates)
{
    cache.access(0, line0, 8, true);
    cache.access(1, line0, 8, false);  // share it
    // Proc 1 upgrades to write: others must be invalidated.
    EXPECT_EQ(cache.access(1, line0, 8, true), costs.cache_remote);
    // Proc 0's next read misses (its copy was invalidated).
    EXPECT_EQ(cache.access(0, line0, 8, false), costs.cache_remote);
}

TEST_F(CacheModelTest, DistinctLinesIndependent)
{
    cache.access(0, line0, 8, true);
    cache.access(1, line1, 8, true);
    EXPECT_EQ(cache.access(0, line0, 8, true), costs.cache_hit);
    EXPECT_EQ(cache.access(1, line1, 8, true), costs.cache_hit);
    EXPECT_EQ(cache.remote_transfers(), 0u);
}

TEST_F(CacheModelTest, SpanningAccessChargesEachLine)
{
    // 8 bytes straddling a line boundary -> two cold lines.
    const char* straddle = line0 + 60;
    EXPECT_EQ(cache.access(0, straddle, 8, true), 2 * costs.cache_cold);
}

TEST_F(CacheModelTest, FalseSharingScenario)
{
    // Two procs write different halves of one line: every alternation
    // is a transfer — the phenomenon behind active-false.
    const char* mine = line0;
    const char* yours = line0 + 8;
    cache.access(0, mine, 8, true);
    std::uint64_t pingpong = 0;
    for (int i = 0; i < 10; ++i) {
        pingpong += cache.access(1, yours, 8, true);
        pingpong += cache.access(0, mine, 8, true);
    }
    EXPECT_EQ(pingpong, 20 * costs.cache_remote);
}

TEST_F(CacheModelTest, PaddedObjectsDoNotFalseShare)
{
    cache.access(0, line0, 8, true);
    cache.access(1, line1, 8, true);
    std::uint64_t total = 0;
    for (int i = 0; i < 10; ++i) {
        total += cache.access(0, line0, 8, true);
        total += cache.access(1, line1, 8, true);
    }
    EXPECT_EQ(total, 20 * costs.cache_hit);
}

TEST_F(CacheModelTest, ResetForgetsOwnership)
{
    cache.access(0, line0, 8, true);
    cache.reset();
    EXPECT_EQ(cache.access(0, line0, 8, true), costs.cache_cold);
}

TEST_F(CacheModelTest, ZeroByteAccessTouchesOneLine)
{
    EXPECT_EQ(cache.access(0, line0, 0, false), costs.cache_cold);
}

}  // namespace
}  // namespace sim
}  // namespace hoard
