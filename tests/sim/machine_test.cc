/** @file Unit tests for the virtual-time machine and scheduler. */

#include "sim/machine.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/virtual_mutex.h"

namespace hoard {
namespace sim {
namespace {

TEST(Machine, EmptyRunHasZeroMakespan)
{
    Machine machine(4);
    EXPECT_EQ(machine.run(), 0u);
}

TEST(Machine, SingleThreadAccumulatesCharges)
{
    Machine machine(1);
    machine.spawn(0, 0, [] {
        Machine::current()->charge(100);
        Machine::current()->charge(250);
    });
    EXPECT_EQ(machine.run(), 350u);
}

TEST(Machine, MakespanIsMaxOverThreads)
{
    Machine machine(4);
    for (int i = 0; i < 4; ++i) {
        machine.spawn(i, i, [i] {
            Machine::current()->charge(
                static_cast<std::uint64_t>(100 * (i + 1)));
        });
    }
    EXPECT_EQ(machine.run(), 400u);
}

TEST(Machine, ThreadsRunInVirtualTimeOrder)
{
    Machine machine(2, CostModel(), /*quantum=*/1);
    std::vector<int> order;
    machine.spawn(0, 0, [&order] {
        Machine* m = Machine::current();
        m->charge(10);   // t=10
        order.push_back(0);
        m->charge(100);  // t=110
        order.push_back(2);
    });
    machine.spawn(1, 1, [&order] {
        Machine* m = Machine::current();
        m->charge(50);   // t=50
        order.push_back(1);
        m->charge(100);  // t=150
        order.push_back(3);
    });
    machine.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Machine, DeterministicAcrossRuns)
{
    auto run_once = [] {
        Machine machine(3);
        std::vector<int> order;
        for (int i = 0; i < 3; ++i) {
            machine.spawn(i, i, [&order, i] {
                for (int k = 0; k < 5; ++k) {
                    Machine::current()->charge(
                        static_cast<std::uint64_t>(30 + i * 7));
                    Machine::current()->yield();
                    order.push_back(i);
                }
            });
        }
        std::uint64_t makespan = machine.run();
        return std::make_pair(makespan, order);
    };
    auto a = run_once();
    auto b = run_once();
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
}

TEST(Machine, CurrentIsNullOutsideRun)
{
    EXPECT_EQ(Machine::current(), nullptr);
    Machine machine(1);
    machine.spawn(0, 0, [] { EXPECT_NE(Machine::current(), nullptr); });
    machine.run();
    EXPECT_EQ(Machine::current(), nullptr);
}

TEST(Machine, LogicalTidAndRebind)
{
    Machine machine(2);
    machine.spawn(0, 7, [] {
        Machine* m = Machine::current();
        EXPECT_EQ(m->current_tid(), 7);
        EXPECT_EQ(m->current_proc(), 0);
        m->rebind_tid(19);
        EXPECT_EQ(m->current_tid(), 19);
        EXPECT_EQ(m->current_proc(), 0);  // proc pinning unaffected
    });
    machine.run();
}

TEST(Machine, TouchChargesThroughCacheModel)
{
    Machine machine(2);
    static int shared_target;
    machine.spawn(0, 0, [] {
        Machine::current()->touch(&shared_target, 4, true);
    });
    std::uint64_t makespan = machine.run();
    // One cold write: cache_cold cycles.
    EXPECT_EQ(makespan, CostModel().cache_cold);
    EXPECT_EQ(machine.cache().cold_misses(), 1u);
}

TEST(Machine, RemoteWriteCostsMoreThanLocal)
{
    CostModel costs;
    static long long target;

    Machine local(2);
    local.spawn(0, 0, [] {
        Machine::current()->touch(&target, 8, true);
        Machine::current()->touch(&target, 8, true);
    });
    std::uint64_t local_cost = local.run();

    Machine remote(2);
    remote.spawn(0, 0, [] { Machine::current()->touch(&target, 8, true); });
    remote.spawn(1, 1, [] {
        Machine::current()->charge(1);  // ensure it runs second
        Machine::current()->touch(&target, 8, true);
    });
    std::uint64_t remote_cost = remote.run();

    EXPECT_EQ(local_cost, costs.cache_cold + costs.cache_hit);
    EXPECT_GT(remote_cost, local_cost);
}

TEST(Machine, QuantumBoundsRunahead)
{
    // With a large quantum a thread only commits at yields; with a
    // small one, charges force preemption.  Either way the makespan is
    // identical — the quantum affects interleaving, not total work.
    for (std::uint64_t quantum : {std::uint64_t{1}, std::uint64_t{1000}}) {
        Machine machine(2, CostModel(), quantum);
        for (int i = 0; i < 2; ++i) {
            machine.spawn(i, i, [] {
                for (int k = 0; k < 100; ++k)
                    Machine::current()->charge(10);
            });
        }
        EXPECT_EQ(machine.run(), 1000u) << "quantum=" << quantum;
    }
}

TEST(MachineDeath, DeadlockIsReported)
{
    EXPECT_DEATH(
        {
            Machine machine(1);
            VirtualMutex* leaked = new VirtualMutex();
            machine.spawn(0, 0, [leaked] {
                leaked->lock();
                leaked->lock();  // self-deadlock
            });
            machine.run();
        },
        "deadlock");
}

}  // namespace
}  // namespace sim
}  // namespace hoard
