/** @file Unit tests for the virtual-time one-shot event. */

#include "sim/virtual_event.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/machine.h"

namespace hoard {
namespace sim {
namespace {

TEST(VirtualEvent, WaitersResumeAtSignalTime)
{
    Machine machine(3, CostModel(), /*quantum=*/1);
    VirtualEvent event;
    std::vector<std::uint64_t> resume_clocks(2, 0);

    machine.spawn(0, 0, [&] {
        Machine::current()->charge(500);
        Machine::current()->yield();
        event.signal();
    });
    for (int i = 0; i < 2; ++i) {
        machine.spawn(i + 1, i + 1, [&, i] {
            event.wait();
            Machine::current()->yield();  // commit before reading makespan
            resume_clocks[static_cast<std::size_t>(i)] = 1;
        });
    }
    std::uint64_t makespan = machine.run();
    EXPECT_EQ(resume_clocks[0], 1u);
    EXPECT_EQ(resume_clocks[1], 1u);
    EXPECT_GE(makespan, 500u);
}

TEST(VirtualEvent, WaitAfterSignalJumpsForward)
{
    Machine machine(2, CostModel(), /*quantum=*/1);
    VirtualEvent event;
    machine.spawn(0, 0, [&] {
        Machine::current()->charge(300);
        Machine::current()->yield();
        event.signal();
    });
    machine.spawn(1, 1, [&] {
        Machine::current()->charge(1000);  // arrives after the signal
        Machine::current()->yield();
        event.wait();  // already set: no block, clock unchanged upward
    });
    std::uint64_t makespan = machine.run();
    EXPECT_EQ(makespan, 1000u + CostModel().lock_base * 0);
    EXPECT_TRUE(event.is_set());
}

TEST(VirtualEvent, LaggardWaiterAdvancesToSignal)
{
    Machine machine(2, CostModel(), /*quantum=*/1);
    VirtualEvent event;
    machine.spawn(0, 0, [&] {
        Machine::current()->charge(700);
        Machine::current()->yield();
        event.signal();
    });
    std::uint64_t after_wait = 0;
    machine.spawn(1, 1, [&] {
        Machine::current()->charge(10);
        Machine::current()->yield();
        event.wait();
        after_wait = 1;
    });
    std::uint64_t makespan = machine.run();
    EXPECT_EQ(after_wait, 1u);
    EXPECT_GE(makespan, 700u);  // waiter cannot observe signal earlier
}

TEST(VirtualEvent, SignalWithNoWaitersIsFine)
{
    Machine machine(1);
    VirtualEvent event;
    machine.spawn(0, 0, [&] { event.signal(); });
    machine.run();
    EXPECT_TRUE(event.is_set());
}

}  // namespace
}  // namespace sim
}  // namespace hoard
