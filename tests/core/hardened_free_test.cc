/**
 * @file
 * The hardened free path (Config::hardened_free): the full bad-free
 * matrix — double free, interior pointer, stack (wild) pointer,
 * foreign-arena pointer — under both Config::on_bad_free policies.
 * The warn policy must count, leak, and leave the allocator fully
 * usable; the fatal policy must abort with a diagnostic.  Legitimate
 * frees, including pointers interior to a block (which aligned
 * allocation hands out), must keep passing.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "core/hoard_allocator.h"
#include "core/superblock.h"
#include "policy/native_policy.h"

namespace hoard {
namespace {

Config
warn_config()
{
    Config config;
    config.heap_count = 2;
    config.on_bad_free = Config::BadFreePolicy::warn;
    return config;
}

std::uint64_t
bad_free_total(const detail::AllocatorStats& stats)
{
    return stats.bad_free_wild.get() + stats.bad_free_foreign.get() +
           stats.bad_free_interior.get() + stats.bad_free_double.get();
}

TEST(HardenedFree, DoubleFreeIsCountedAndLeaked)
{
    HoardAllocator<NativePolicy> allocator(warn_config());
    void* p = allocator.allocate(64);
    ASSERT_NE(p, nullptr);
    allocator.deallocate(p);

    const std::uint64_t frees = allocator.stats().frees.get();
    const std::uint64_t in_use = allocator.stats().in_use_bytes.current();
    allocator.deallocate(p);  // the bug under test
    EXPECT_EQ(allocator.stats().bad_free_double.get(), 1u);
    // Rejected: neither the free counter nor the gauge moved.
    EXPECT_EQ(allocator.stats().frees.get(), frees);
    EXPECT_EQ(allocator.stats().in_use_bytes.current(), in_use);

    // The allocator survives and keeps serving.
    void* q = allocator.allocate(64);
    ASSERT_NE(q, nullptr);
    allocator.deallocate(q);
    EXPECT_TRUE(allocator.check_invariants());
}

TEST(HardenedFree, HeaderInteriorPointerIsRejected)
{
    Config config = warn_config();
    HoardAllocator<NativePolicy> allocator(config);
    void* p = allocator.allocate(64);
    ASSERT_NE(p, nullptr);

    // Inside the superblock's span but before the carved payload: no
    // allocation path ever hands this address out.
    auto* sb = Superblock::from_pointer(p, config.superblock_bytes);
    allocator.deallocate(reinterpret_cast<char*>(sb) + 8);
    EXPECT_EQ(allocator.stats().bad_free_interior.get(), 1u);

    allocator.deallocate(p);  // the real block still frees
    EXPECT_EQ(allocator.stats().bad_free_double.get(), 0u);
    EXPECT_TRUE(allocator.check_invariants());
}

TEST(HardenedFree, HugeInteriorPointerIsRejected)
{
    HoardAllocator<NativePolicy> allocator(warn_config());
    void* p = allocator.allocate(32768);  // above the largest class
    ASSERT_NE(p, nullptr);

    allocator.deallocate(static_cast<char*>(p) + 64);
    EXPECT_EQ(allocator.stats().bad_free_interior.get(), 1u);

    allocator.deallocate(p);
    EXPECT_EQ(bad_free_total(allocator.stats()), 1u);
}

TEST(HardenedFree, StackPointerIsWild)
{
    HoardAllocator<NativePolicy> allocator(warn_config());
    void* p = allocator.allocate(64);  // establish a mapped hull
    ASSERT_NE(p, nullptr);

    int on_stack = 0;
    allocator.deallocate(&on_stack);
    EXPECT_EQ(allocator.stats().bad_free_wild.get(), 1u);

    allocator.deallocate(p);
    EXPECT_TRUE(allocator.check_invariants());
}

TEST(HardenedFree, ForeignArenaPointerIsRejected)
{
    HoardAllocator<NativePolicy> owner(warn_config());
    HoardAllocator<NativePolicy> stranger(warn_config());
    void* theirs = stranger.allocate(64);
    void* p = owner.allocate(64);
    ASSERT_NE(p, nullptr);

    // Whether the foreign block falls inside the stranger's mapped
    // hull is placement luck: inside, the arena-id check fires
    // (foreign); outside, the range check does (wild).  Either way it
    // is rejected exactly once and the owner can still free it.
    stranger.deallocate(p);
    EXPECT_EQ(stranger.stats().bad_free_foreign.get() +
                  stranger.stats().bad_free_wild.get(),
              1u);
    EXPECT_EQ(stranger.stats().frees.get(), 0u);

    owner.deallocate(p);
    stranger.deallocate(theirs);
    EXPECT_EQ(bad_free_total(owner.stats()), 0u);
    EXPECT_TRUE(owner.check_invariants());
    EXPECT_TRUE(stranger.check_invariants());
}

TEST(HardenedFree, BlockInteriorPointerStillFrees)
{
    // Aligned allocation can return an address interior to a block, so
    // the hardened path must accept those — only addresses no
    // allocation can have produced are bad.
    HoardAllocator<NativePolicy> allocator(warn_config());
    void* p = allocator.allocate_aligned(100, 256);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 256, 0u);
    allocator.deallocate(p);
    EXPECT_EQ(bad_free_total(allocator.stats()), 0u);
    EXPECT_EQ(allocator.stats().in_use_bytes.current(), 0u);
    EXPECT_TRUE(allocator.check_invariants());
}

TEST(HardenedFree, CountersReachTheSnapshot)
{
    HoardAllocator<NativePolicy> allocator(warn_config());
    void* p = allocator.allocate(64);
    allocator.deallocate(p);
    allocator.deallocate(p);
    obs::AllocatorSnapshot snap = allocator.take_snapshot();
    EXPECT_EQ(snap.stats.bad_free_double, 1u);
    EXPECT_EQ(snap.stats.bad_free_wild, 0u);
}

TEST(HardenedFree, TrustingPathWhenDisabled)
{
    Config config = warn_config();
    config.hardened_free = false;
    HoardAllocator<NativePolicy> allocator(config);
    std::vector<void*> blocks;
    for (int i = 0; i < 100; ++i)
        blocks.push_back(allocator.allocate(static_cast<std::size_t>(
            i % 200 + 1)));
    for (void* block : blocks)
        allocator.deallocate(block);
    EXPECT_EQ(bad_free_total(allocator.stats()), 0u);
    EXPECT_TRUE(allocator.check_invariants());
}

using HardenedFreeDeathTest = ::testing::Test;

TEST(HardenedFreeDeathTest, FatalPolicyAbortsOnDoubleFree)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Config config;
    config.heap_count = 2;
    ASSERT_EQ(config.on_bad_free, Config::BadFreePolicy::fatal)
        << "fatal must be the default";
    EXPECT_DEATH(
        {
            HoardAllocator<NativePolicy> allocator(config);
            void* p = allocator.allocate(64);
            allocator.deallocate(p);
            allocator.deallocate(p);
        },
        "bad free \\(double\\)");
}

TEST(HardenedFreeDeathTest, FatalPolicyAbortsOnWildFree)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Config config;
    config.heap_count = 2;
    EXPECT_DEATH(
        {
            HoardAllocator<NativePolicy> allocator(config);
            void* warm = allocator.allocate(64);
            (void)warm;
            int on_stack = 0;
            allocator.deallocate(&on_stack);
        },
        "bad free \\(wild\\)");
}

}  // namespace
}  // namespace hoard
