/** @file Unit tests for the STL allocator adapter. */

#include "core/stl_allocator.h"

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <string>
#include <vector>

#include "baselines/serial_allocator.h"
#include "core/hoard_allocator.h"
#include "policy/native_policy.h"

namespace hoard {
namespace {

TEST(StlAllocator, VectorGrowsAndShrinks)
{
    HoardAllocator<NativePolicy> backend{Config{}};
    std::vector<int, StlAllocator<int>> v{StlAllocator<int>(backend)};
    for (int i = 0; i < 100000; ++i)
        v.push_back(i);
    for (int i = 0; i < 100000; ++i)
        ASSERT_EQ(v[static_cast<std::size_t>(i)], i);
    EXPECT_GT(backend.stats().allocs.get(), 0u);
    v.clear();
    v.shrink_to_fit();
    EXPECT_EQ(backend.stats().in_use_bytes.current(), 0u);
}

TEST(StlAllocator, MapAndListWork)
{
    HoardAllocator<NativePolicy> backend{Config{}};
    using Pair = std::pair<const int, int>;
    std::map<int, int, std::less<int>, StlAllocator<Pair>> m{
        std::less<int>(), StlAllocator<Pair>(backend)};
    std::list<int, StlAllocator<int>> l{StlAllocator<int>(backend)};
    for (int i = 0; i < 1000; ++i) {
        m[i] = i * i;
        l.push_back(i);
    }
    EXPECT_EQ(m.at(31), 961);
    EXPECT_EQ(l.size(), 1000u);
    m.clear();
    l.clear();
    EXPECT_EQ(backend.stats().in_use_bytes.current(), 0u);
    backend.check_invariants();
}

TEST(StlAllocator, DefaultUsesGlobalInstance)
{
    std::vector<int, StlAllocator<int>> v;
    v.resize(100, 7);
    EXPECT_EQ(v[99], 7);
}

TEST(StlAllocator, EqualityFollowsBackend)
{
    HoardAllocator<NativePolicy> a{Config{}};
    baselines::SerialAllocator<NativePolicy> b{Config{}};
    StlAllocator<int> sa(a), sa2(a), sb(b);
    EXPECT_EQ(sa, sa2);
    EXPECT_NE(sa, sb);
}

TEST(StlAllocator, RebindKeepsBackend)
{
    HoardAllocator<NativePolicy> backend{Config{}};
    StlAllocator<int> ints(backend);
    StlAllocator<double> doubles(ints);  // converting constructor
    EXPECT_EQ(doubles.backend(), ints.backend());
}

TEST(StlAllocator, WorksWithBaselineBackends)
{
    baselines::SerialAllocator<NativePolicy> backend{Config{}};
    std::basic_string<char, std::char_traits<char>, StlAllocator<char>>
        s{StlAllocator<char>(backend)};
    for (int i = 0; i < 1000; ++i)
        s += static_cast<char>('a' + i % 26);
    EXPECT_EQ(s.size(), 1000u);
}

}  // namespace
}  // namespace hoard
