/**
 * @file
 * Tests for the lock-free fast-path machinery: thread-exit magazine
 * flushes (native threads and sim fibers) and the per-heap remote-free
 * queues under genuinely cross-thread alloc/free traffic.  The
 * accounting claims under test: after the owners are gone the
 * cached-bytes gauge is exactly zero, every remote push is eventually
 * drained (remote_frees == remote_drains at quiescence), and snapshots
 * drain-and-attribute so reconciliation stays byte-exact.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/memutil.h"
#include "core/hoard_allocator.h"
#include "policy/native_policy.h"
#include "policy/sim_policy.h"
#include "sim/machine.h"
#include "workloads/runners.h"

namespace hoard {
namespace {

using NativeHoard = HoardAllocator<NativePolicy>;
using SimHoard = HoardAllocator<SimPolicy>;

TEST(MagazineExit, JoinedThreadsLeaveNothingCached)
{
    Config config;
    config.heap_count = 4;
    config.thread_cache_blocks = 32;
    NativeHoard allocator(config);

    std::vector<void*> live(400);
    workloads::native_run(4, [&](int tid) {
        NativePolicy::rebind_thread_index(tid);
        for (int i = 0; i < 100; ++i) {
            void* keep = allocator.allocate(64);
            detail::pattern_fill(keep, 64, static_cast<std::uint64_t>(tid));
            live[static_cast<std::size_t>(tid * 100 + i)] = keep;
            void* churn = allocator.allocate(72);
            allocator.deallocate(churn);  // parks in the magazine
        }
    });

    // Joined: every worker's exit hook has flushed its magazines, and
    // this thread never touched the allocator, so the gauge is exactly
    // zero — not merely bounded.
    EXPECT_EQ(allocator.stats().cached_bytes.current(), 0u);
    obs::AllocatorSnapshot snap = allocator.take_snapshot();
    EXPECT_EQ(snap.cached_bytes, 0u);
    EXPECT_TRUE(snap.reconciles());
    // Classes round requests up, so the live bytes are a lower bound.
    EXPECT_GE(snap.stats.in_use_bytes,
              static_cast<std::uint64_t>(live.size()) * 64u);

    for (void* p : live) {
        EXPECT_TRUE(detail::pattern_check(p, 64, 0) ||
                    detail::pattern_check(p, 64, 1) ||
                    detail::pattern_check(p, 64, 2) ||
                    detail::pattern_check(p, 64, 3));
        allocator.deallocate(p);
    }
    allocator.flush_thread_caches();
    EXPECT_EQ(allocator.stats().in_use_bytes.current(), 0u);
    EXPECT_EQ(allocator.stats().cached_bytes.current(), 0u);
    EXPECT_TRUE(allocator.check_invariants());
}

TEST(MagazineExit, SimFiberExitFlushesMagazines)
{
    Config config;
    config.heap_count = 2;
    config.thread_cache_blocks = 16;
    SimHoard allocator(config);
    sim::Machine machine(2);
    for (int t = 0; t < 2; ++t) {
        machine.spawn(t, t, [&allocator] {
            for (int i = 0; i < 300; ++i) {
                void* p = allocator.allocate(64);
                allocator.deallocate(p);
            }
        });
    }
    machine.run();
    // Fibers exited inside the run: their exit hooks flushed, so no
    // flusher machine is needed for the gauge to read zero.
    EXPECT_GT(allocator.stats().cached_bytes.peak(), 0u);
    EXPECT_EQ(allocator.stats().cached_bytes.current(), 0u);
    EXPECT_EQ(allocator.stats().in_use_bytes.current(), 0u);
    sim::Machine checker(1);
    checker.spawn(0, 0,
                  [&allocator] { allocator.check_invariants(); });
    checker.run();
}

/**
 * One spin-loop beat: virtual work under the simulator (so the
 * scheduler preempts at quantum edges) and a scheduler yield on real
 * threads (so a 1-core host does not burn a whole timeslice spinning).
 */
template <typename Policy>
void
spin_pause()
{
    if constexpr (std::is_same_v<Policy, NativePolicy>)
        std::this_thread::yield();
    else
        Policy::work(CostKind::list_op);
}

/**
 * Double-buffered producer/consumer ping-pong: the consumer frees
 * batch k into the producer's heap while the producer carves batch
 * k+1 from it, so frees constantly target a heap whose lock is hot.
 */
template <typename Policy>
void
pingpong_pair(Allocator& allocator, std::atomic<void**>& box, int tid,
              int rounds, int batch_blocks, void** storage)
{
    Policy::rebind_thread_index(tid);
    if (tid % 2 == 0) {
        for (int r = 0; r < rounds; ++r) {
            void** batch = storage + (r % 2) * batch_blocks;
            for (int i = 0; i < batch_blocks; ++i) {
                batch[i] = allocator.allocate(64);
                detail::pattern_fill(batch[i], 64,
                                     static_cast<std::uint64_t>(r));
            }
            while (box.load(std::memory_order_acquire) != nullptr)
                spin_pause<Policy>();
            box.store(batch, std::memory_order_release);
        }
        while (box.load(std::memory_order_acquire) != nullptr)
            spin_pause<Policy>();
    } else {
        for (int r = 0; r < rounds; ++r) {
            void** batch;
            while ((batch = box.load(std::memory_order_acquire)) ==
                   nullptr)
                spin_pause<Policy>();
            for (int i = 0; i < batch_blocks; ++i) {
                EXPECT_TRUE(detail::pattern_check(
                    batch[i], 64, static_cast<std::uint64_t>(r)));
                allocator.deallocate(batch[i]);
            }
            box.store(nullptr, std::memory_order_release);
        }
    }
}

TEST(RemoteFree, NativePingPongBooksStayExact)
{
    Config config;
    config.heap_count = 2;  // thread caching off: frees hit free_block
    NativeHoard allocator(config);
    constexpr int kRounds = 400;
    constexpr int kBatch = 32;
    std::atomic<void**> box{nullptr};
    std::vector<void*> storage(2 * kBatch);
    workloads::native_run(2, [&](int tid) {
        pingpong_pair<NativePolicy>(allocator, box, tid, kRounds,
                                    kBatch, storage.data());
    });

    // take_snapshot's pre-drain settles whatever the last frees left
    // on the remote queues; after it, every push has been drained.
    obs::AllocatorSnapshot snap = allocator.take_snapshot();
    EXPECT_TRUE(snap.reconciles());
    EXPECT_EQ(allocator.stats().in_use_bytes.current(), 0u);
    EXPECT_EQ(allocator.stats().remote_frees.get(),
              allocator.stats().remote_drains.get());
    EXPECT_TRUE(allocator.check_invariants());
}

TEST(RemoteFree, SimPingPongExercisesRemoteQueue)
{
    Config config;
    config.heap_count = 4;
    SimHoard allocator(config);
    constexpr int kRounds = 60;
    constexpr int kBatch = 32;
    constexpr int kPairs = 2;
    std::vector<std::atomic<void**>> boxes(kPairs);
    for (auto& b : boxes)
        b.store(nullptr);
    std::vector<std::vector<void*>> storage(
        kPairs, std::vector<void*>(2 * kBatch));

    sim::Machine machine(2 * kPairs);
    for (int t = 0; t < 2 * kPairs; ++t) {
        machine.spawn(t, t, [&, t] {
            auto pair = static_cast<std::size_t>(t / 2);
            pingpong_pair<SimPolicy>(allocator, boxes[pair], t, kRounds,
                                     kBatch, storage[pair].data());
        });
    }
    machine.run();

    // Virtual time preempts producers inside their heap-lock critical
    // sections deterministically, so the contended path is guaranteed
    // to have been taken — this is the sim half's extra assertion over
    // the native run.
    EXPECT_GT(allocator.stats().remote_frees.get(), 0u);
    EXPECT_EQ(allocator.stats().in_use_bytes.current(), 0u);

    sim::Machine checker(1);
    checker.spawn(0, 0, [&allocator] {
        obs::AllocatorSnapshot snap = allocator.take_snapshot();
        EXPECT_TRUE(snap.reconciles());
        EXPECT_EQ(allocator.stats().remote_frees.get(),
                  allocator.stats().remote_drains.get());
        allocator.check_invariants();
    });
    checker.run();
}

TEST(RemoteFree, MagazinesAndRemoteQueuesCompose)
{
    // Both extensions on: spills from a full magazine return blocks
    // through the bulk path, which remote-pushes when the owner is
    // busy; the exit hooks then flush what is left.
    Config config;
    config.heap_count = 2;
    config.thread_cache_blocks = 16;
    NativeHoard allocator(config);
    constexpr int kRounds = 300;
    constexpr int kBatch = 32;
    std::atomic<void**> box{nullptr};
    std::vector<void*> storage(2 * kBatch);
    workloads::native_run(2, [&](int tid) {
        pingpong_pair<NativePolicy>(allocator, box, tid, kRounds,
                                    kBatch, storage.data());
    });

    EXPECT_EQ(allocator.stats().cached_bytes.current(), 0u);
    obs::AllocatorSnapshot snap = allocator.take_snapshot();
    EXPECT_TRUE(snap.reconciles());
    EXPECT_EQ(allocator.stats().in_use_bytes.current(), 0u);
    EXPECT_TRUE(allocator.check_invariants());
}

}  // namespace
}  // namespace hoard
