/** @file Tests for the shadow-checking DebugAllocator wrapper. */

#include "core/debug_allocator.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "baselines/factory.h"
#include "core/hoard_allocator.h"
#include "policy/native_policy.h"

namespace hoard {
namespace {

class DebugAllocatorTest : public ::testing::Test
{
  protected:
    Config
    config()
    {
        Config c;
        c.heap_count = 2;
        return c;
    }
};

TEST_F(DebugAllocatorTest, PassesThroughNormalUse)
{
    HoardAllocator<NativePolicy> inner{Config{}};
    DebugAllocator debug(inner);
    std::vector<void*> blocks;
    for (int i = 0; i < 500; ++i) {
        void* p = debug.allocate(static_cast<std::size_t>(i % 200) + 1);
        ASSERT_NE(p, nullptr);
        blocks.push_back(p);
    }
    EXPECT_EQ(debug.live_allocations(), 500u);
    for (void* p : blocks)
        debug.deallocate(p);
    EXPECT_EQ(debug.live_allocations(), 0u);
    EXPECT_EQ(debug.bad_free_count(), 0u);
    EXPECT_EQ(debug.overrun_count(), 0u);
}

TEST_F(DebugAllocatorTest, DetectsDoubleFree)
{
    HoardAllocator<NativePolicy> inner{Config{}};
    DebugAllocator debug(inner, DebugAllocator::OnError::count);
    void* p = debug.allocate(64);
    debug.deallocate(p);
    debug.deallocate(p);  // double free: counted, not forwarded
    EXPECT_EQ(debug.bad_free_count(), 1u);
    EXPECT_EQ(debug.stats().frees.get(), 1u);
}

TEST_F(DebugAllocatorTest, DetectsForeignPointer)
{
    HoardAllocator<NativePolicy> inner{Config{}};
    DebugAllocator debug(inner, DebugAllocator::OnError::count);
    int stack_var = 0;
    debug.deallocate(&stack_var);
    EXPECT_EQ(debug.bad_free_count(), 1u);
}

TEST_F(DebugAllocatorTest, DetectsOverrun)
{
    HoardAllocator<NativePolicy> inner{Config{}};
    DebugAllocator debug(inner, DebugAllocator::OnError::count);
    auto* p = static_cast<char*>(debug.allocate(100));
    std::memset(p, 0x42, 104);  // four bytes past the end
    debug.deallocate(p);
    EXPECT_EQ(debug.overrun_count(), 1u);
}

TEST_F(DebugAllocatorTest, FatalModeAborts)
{
    HoardAllocator<NativePolicy> inner{Config{}};
    DebugAllocator debug(inner);  // OnError::fatal
    void* p = debug.allocate(32);
    debug.deallocate(p);
    EXPECT_DEATH(debug.deallocate(p), "untracked pointer");
}

TEST_F(DebugAllocatorTest, ForeignPointerReportFires)
{
    // The failure report itself must fire (not just a counter tick)
    // when a pointer this wrapper never handed out is freed.
    HoardAllocator<NativePolicy> inner{Config{}};
    DebugAllocator debug(inner);  // OnError::fatal
    int stack_var = 0;
    EXPECT_DEATH(debug.deallocate(&stack_var), "untracked pointer");
}

TEST_F(DebugAllocatorTest, OverrunReportFires)
{
    HoardAllocator<NativePolicy> inner{Config{}};
    DebugAllocator debug(inner);  // OnError::fatal
    auto* p = static_cast<char*>(debug.allocate(100));
    std::memset(p, 0x42, 104);  // trample the tail canary
    EXPECT_DEATH(debug.deallocate(p), "overrun");
}

TEST_F(DebugAllocatorTest, DoubleFreeDoesNotCorruptInner)
{
    // In counting mode the bad free is swallowed, never forwarded: the
    // inner allocator's books and invariants stay exact.
    HoardAllocator<NativePolicy> inner{Config{}};
    DebugAllocator debug(inner, DebugAllocator::OnError::count);
    void* p = debug.allocate(64);
    debug.deallocate(p);
    std::uint64_t frees = inner.stats().frees.get();
    debug.deallocate(p);
    debug.deallocate(p);
    EXPECT_EQ(debug.bad_free_count(), 2u);
    EXPECT_EQ(inner.stats().frees.get(), frees);
    EXPECT_TRUE(inner.check_invariants());
    // The wrapper keeps working afterwards.
    void* q = debug.allocate(64);
    ASSERT_NE(q, nullptr);
    debug.deallocate(q);
    EXPECT_EQ(debug.live_allocations(), 0u);
}

TEST_F(DebugAllocatorTest, LeakReport)
{
    HoardAllocator<NativePolicy> inner{Config{}};
    DebugAllocator debug(inner);
    void* a = debug.allocate(10);
    void* b = debug.allocate(20);
    void* c = debug.allocate(30);
    debug.deallocate(b);
    auto leaks = debug.leak_report();
    EXPECT_EQ(leaks.size(), 2u);
    EXPECT_EQ(debug.live_bytes(), 40u);
    debug.deallocate(a);
    debug.deallocate(c);
    EXPECT_TRUE(debug.leak_report().empty());
}

TEST_F(DebugAllocatorTest, UsableSizeReflectsRequest)
{
    HoardAllocator<NativePolicy> inner{Config{}};
    DebugAllocator debug(inner);
    void* p = debug.allocate(77);
    EXPECT_EQ(debug.usable_size(p), 77u);
    debug.deallocate(p);
    EXPECT_EQ(debug.usable_size(p), 0u);  // no longer tracked
}

TEST_F(DebugAllocatorTest, ComposesWithEveryBaseline)
{
    for (auto kind : baselines::kAllKinds) {
        auto inner = baselines::make_allocator<NativePolicy>(kind);
        DebugAllocator debug(*inner);
        std::vector<void*> blocks;
        for (int i = 0; i < 200; ++i)
            blocks.push_back(
                debug.allocate(static_cast<std::size_t>(i) % 300 + 1));
        for (void* p : blocks)
            debug.deallocate(p);
        EXPECT_EQ(debug.live_allocations(), 0u)
            << baselines::to_string(kind);
        EXPECT_EQ(debug.overrun_count(), 0u)
            << baselines::to_string(kind);
    }
}

TEST_F(DebugAllocatorTest, ReallocatePreservesTracking)
{
    HoardAllocator<NativePolicy> inner{Config{}};
    DebugAllocator debug(inner);
    auto* p = static_cast<char*>(debug.allocate(40));
    std::memcpy(p, "hello", 6);
    auto* q = static_cast<char*>(debug.reallocate(p, 4000));
    EXPECT_STREQ(q, "hello");
    EXPECT_EQ(debug.live_allocations(), 1u);
    debug.deallocate(q);
    EXPECT_EQ(debug.live_allocations(), 0u);
}

}  // namespace
}  // namespace hoard
