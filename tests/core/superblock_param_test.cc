/**
 * @file
 * Parameterized superblock sweeps: the carve/free/fullness machinery
 * must hold for every (superblock size, block size) combination the
 * configuration space allows, not just the defaults.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

#include "common/memutil.h"
#include "core/superblock.h"
#include "os/page_provider.h"

namespace hoard {
namespace {

using Params = std::tuple<std::size_t, std::uint32_t>;  // S, block

class SuperblockParamTest : public ::testing::TestWithParam<Params>
{
  protected:
    void
    SetUp() override
    {
        std::tie(sb_bytes_, block_bytes_) = GetParam();
        memory_ = provider_.map(sb_bytes_, sb_bytes_);
        ASSERT_NE(memory_, nullptr);
        sb_ = Superblock::create(memory_, sb_bytes_, 0, block_bytes_);
    }

    void TearDown() override { provider_.unmap(memory_, sb_bytes_); }

    os::MmapPageProvider provider_;
    std::size_t sb_bytes_ = 0;
    std::uint32_t block_bytes_ = 0;
    void* memory_ = nullptr;
    Superblock* sb_ = nullptr;
};

TEST_P(SuperblockParamTest, CapacityMatchesGeometry)
{
    EXPECT_EQ(sb_->capacity(),
              (sb_bytes_ - Superblock::header_bytes()) / block_bytes_);
    EXPECT_GE(sb_->capacity(), 2u);
}

TEST_P(SuperblockParamTest, FillDrainFillAgain)
{
    std::vector<void*> blocks;
    std::set<void*> seen;
    while (!sb_->full()) {
        void* p = sb_->allocate();
        EXPECT_TRUE(seen.insert(p).second);
        blocks.push_back(p);
    }
    EXPECT_EQ(blocks.size(), sb_->capacity());
    for (void* p : blocks)
        sb_->deallocate(p);
    EXPECT_TRUE(sb_->empty());
    // Refill entirely from the free list.
    std::size_t count = 0;
    while (!sb_->full()) {
        sb_->allocate();
        ++count;
    }
    EXPECT_EQ(count, sb_->capacity());
}

TEST_P(SuperblockParamTest, BlocksStayInsideTheSpan)
{
    auto base = reinterpret_cast<std::uintptr_t>(sb_);
    while (!sb_->full()) {
        auto addr = reinterpret_cast<std::uintptr_t>(sb_->allocate());
        EXPECT_GE(addr, base + Superblock::header_bytes());
        EXPECT_LE(addr + block_bytes_, base + sb_bytes_);
    }
}

TEST_P(SuperblockParamTest, MaskRecoversFromEveryBlockByte)
{
    void* p = sb_->allocate();
    auto* bytes = static_cast<char*>(p);
    for (std::uint32_t off = 0; off < block_bytes_;
         off += block_bytes_ / 4 + 1) {
        EXPECT_EQ(Superblock::from_pointer(bytes + off, sb_bytes_), sb_);
        EXPECT_EQ(sb_->block_start(bytes + off), p);
    }
}

TEST_P(SuperblockParamTest, FullnessGroupEndpoints)
{
    EXPECT_EQ(sb_->fullness_group(), 0);
    while (!sb_->full())
        sb_->allocate();
    EXPECT_EQ(sb_->fullness_group(), Superblock::kFullGroup);
}

TEST_P(SuperblockParamTest, PatternsSurviveFullPopulation)
{
    std::vector<void*> blocks;
    while (!sb_->full()) {
        void* p = sb_->allocate();
        detail::pattern_fill(p, block_bytes_,
                             reinterpret_cast<std::uintptr_t>(p));
        blocks.push_back(p);
    }
    for (void* p : blocks) {
        EXPECT_TRUE(detail::pattern_check(
            p, block_bytes_, reinterpret_cast<std::uintptr_t>(p)));
    }
    for (void* p : blocks)
        sb_->deallocate(p);
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, SuperblockParamTest,
    ::testing::Values(Params{4096, 8}, Params{4096, 1024},
                      Params{8192, 8}, Params{8192, 16},
                      Params{8192, 24}, Params{8192, 512},
                      Params{8192, 4000}, Params{16384, 8},
                      Params{16384, 7168}, Params{65536, 8},
                      Params{65536, 32768 - 64}),
    [](const ::testing::TestParamInfo<Params>& info) {
        return "S" + std::to_string(std::get<0>(info.param)) + "_b" +
               std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace hoard
