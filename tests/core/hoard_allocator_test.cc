/** @file Unit tests for the Hoard allocator (single-threaded behavior). */

#include "core/hoard_allocator.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "common/memutil.h"
#include "common/rng.h"
#include "policy/native_policy.h"

namespace hoard {
namespace {

using NativeHoard = HoardAllocator<NativePolicy>;

class HoardAllocatorTest : public ::testing::Test
{
  protected:
    Config
    small_config()
    {
        Config config;
        config.heap_count = 4;
        return config;
    }
};

TEST_F(HoardAllocatorTest, AllocateGivesWritableDistinctMemory)
{
    NativeHoard allocator(small_config());
    std::set<void*> seen;
    std::vector<void*> blocks;
    for (int i = 0; i < 1000; ++i) {
        void* p = allocator.allocate(48);
        ASSERT_NE(p, nullptr);
        EXPECT_TRUE(seen.insert(p).second);
        detail::pattern_fill(p, 48, static_cast<std::uint64_t>(i));
        blocks.push_back(p);
    }
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        EXPECT_TRUE(detail::pattern_check(blocks[i], 48, i));
        allocator.deallocate(blocks[i]);
    }
    EXPECT_TRUE(allocator.check_invariants());
}

TEST_F(HoardAllocatorTest, UsableSizeCoversRequest)
{
    NativeHoard allocator(small_config());
    for (std::size_t size : {1u, 8u, 17u, 100u, 1000u, 3000u}) {
        void* p = allocator.allocate(size);
        EXPECT_GE(allocator.usable_size(p), size);
        allocator.deallocate(p);
    }
}

TEST_F(HoardAllocatorTest, NullAndZeroEdgeCases)
{
    NativeHoard allocator(small_config());
    allocator.deallocate(nullptr);  // must be a no-op
    void* p = allocator.allocate(0);
    EXPECT_NE(p, nullptr);
    allocator.deallocate(p);
}

TEST_F(HoardAllocatorTest, MemoryIsReusedAfterFree)
{
    NativeHoard allocator(small_config());
    void* a = allocator.allocate(64);
    allocator.deallocate(a);
    void* b = allocator.allocate(64);
    EXPECT_EQ(a, b);  // LIFO reuse within the same heap/superblock
    allocator.deallocate(b);
}

TEST_F(HoardAllocatorTest, HugeAllocationRoundTrip)
{
    NativeHoard allocator(small_config());
    const std::size_t big = 100 * 1024;
    void* p = allocator.allocate(big);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(allocator.usable_size(p), big);
    detail::pattern_fill(p, big, 7);
    EXPECT_TRUE(detail::pattern_check(p, big, 7));
    EXPECT_EQ(allocator.stats().huge_allocs.get(), 1u);
    allocator.deallocate(p);
    EXPECT_EQ(allocator.stats().committed_bytes.current(), 0u)
        << "huge region must be unmapped immediately";
}

TEST_F(HoardAllocatorTest, HugeBoundaryIsLargestClass)
{
    NativeHoard allocator(small_config());
    std::size_t largest = allocator.size_classes().largest();
    void* small = allocator.allocate(largest);
    void* huge = allocator.allocate(largest + 1);
    EXPECT_EQ(allocator.stats().huge_allocs.get(), 1u);
    allocator.deallocate(small);
    allocator.deallocate(huge);
}

TEST_F(HoardAllocatorTest, AlignedAllocation)
{
    NativeHoard allocator(small_config());
    for (std::size_t align : {32u, 64u, 256u, 1024u, 4096u}) {
        void* p = allocator.allocate_aligned(100, align);
        ASSERT_NE(p, nullptr);
        EXPECT_TRUE(detail::is_aligned(p, align)) << align;
        EXPECT_GE(allocator.usable_size(p), 100u);
        detail::pattern_fill(p, 100, align);
        EXPECT_TRUE(detail::pattern_check(p, 100, align));
        allocator.deallocate(p);
    }
    EXPECT_TRUE(allocator.check_invariants());
}

TEST_F(HoardAllocatorTest, AlignedHugeAllocation)
{
    NativeHoard allocator(small_config());
    void* p = allocator.allocate_aligned(50000, 4096);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(detail::is_aligned(p, 4096));
    EXPECT_GE(allocator.usable_size(p), 50000u);
    allocator.deallocate(p);
}

TEST_F(HoardAllocatorTest, AlignedAllocationRejectsBadAlignment)
{
    NativeHoard allocator(small_config());
    EXPECT_DEATH(allocator.allocate_aligned(10, 48), "power of two");
    EXPECT_DEATH(allocator.allocate_aligned(10, 8192), "exceeds");
}

TEST_F(HoardAllocatorTest, ReallocateGrowsAndPreserves)
{
    NativeHoard allocator(small_config());
    auto* p = static_cast<char*>(allocator.allocate(40));
    detail::pattern_fill(p, 40, 3);
    auto* q = static_cast<char*>(allocator.reallocate(p, 4000));
    ASSERT_NE(q, nullptr);
    // Contents of the first 40 bytes moved verbatim.
    for (int i = 0; i < 40; ++i)
        EXPECT_EQ(q[i], static_cast<char>(detail::pattern_byte(p, i, 3)));
    allocator.deallocate(q);
}

TEST_F(HoardAllocatorTest, ReallocateSameClassReturnsSamePointer)
{
    NativeHoard allocator(small_config());
    void* p = allocator.allocate(100);
    std::size_t usable = allocator.usable_size(p);
    EXPECT_EQ(allocator.reallocate(p, usable), p);
    allocator.deallocate(p);
}

TEST_F(HoardAllocatorTest, ReallocateEdgeCases)
{
    NativeHoard allocator(small_config());
    void* fresh = allocator.reallocate(nullptr, 64);
    EXPECT_NE(fresh, nullptr);
    EXPECT_EQ(allocator.reallocate(fresh, 0), nullptr);  // acts as free
    EXPECT_EQ(allocator.stats().allocs.get(),
              allocator.stats().frees.get());
}

TEST_F(HoardAllocatorTest, StatsCountOperations)
{
    NativeHoard allocator(small_config());
    std::vector<void*> blocks;
    for (int i = 0; i < 100; ++i)
        blocks.push_back(allocator.allocate(32));
    EXPECT_EQ(allocator.stats().allocs.get(), 100u);
    EXPECT_EQ(allocator.stats().frees.get(), 0u);
    EXPECT_GE(allocator.stats().in_use_bytes.current(), 3200u);
    for (void* p : blocks)
        allocator.deallocate(p);
    EXPECT_EQ(allocator.stats().frees.get(), 100u);
    EXPECT_EQ(allocator.stats().in_use_bytes.current(), 0u);
    EXPECT_GT(allocator.stats().held_bytes.current(), 0u)
        << "empty superblocks are cached, not unmapped";
}

TEST_F(HoardAllocatorTest, EmptyCacheLimitReturnsMemoryToOs)
{
    Config config = small_config();
    config.empty_cache_limit = 0;  // release every empty superblock
    config.slack_superblocks = 0;
    NativeHoard allocator(config);
    std::vector<void*> blocks;
    for (int i = 0; i < 5000; ++i)
        blocks.push_back(allocator.allocate(64));
    std::size_t peak = allocator.stats().committed_bytes.current();
    for (void* p : blocks)
        allocator.deallocate(p);
    EXPECT_LT(allocator.stats().committed_bytes.current(), peak / 2)
        << "most superblocks should have been unmapped";
    EXPECT_TRUE(allocator.check_invariants());
}

TEST_F(HoardAllocatorTest, HeapAssignmentFollowsThreadIndex)
{
    Config config = small_config();
    NativeHoard allocator(config);
    NativePolicy::rebind_thread_index(0);
    EXPECT_EQ(allocator.my_heap_index(), 1);
    NativePolicy::rebind_thread_index(3);
    EXPECT_EQ(allocator.my_heap_index(), 4);
    NativePolicy::rebind_thread_index(4);
    EXPECT_EQ(allocator.my_heap_index(), 1);  // wraps mod heap_count
}

TEST_F(HoardAllocatorTest, CrossHeapFreeViaRebinding)
{
    NativeHoard allocator(small_config());
    NativePolicy::rebind_thread_index(0);
    std::vector<void*> blocks;
    for (int i = 0; i < 2000; ++i)
        blocks.push_back(allocator.allocate(64));

    NativePolicy::rebind_thread_index(1);
    for (void* p : blocks)
        allocator.deallocate(p);

    EXPECT_TRUE(allocator.check_invariants());
    // The emptied superblocks must have migrated to the global heap
    // (or back through it), not stayed captive in heap 1.
    EXPECT_GT(allocator.stats().superblock_transfers.get(), 0u);
    std::size_t global_held = allocator.heap_held(0);
    EXPECT_GT(global_held, 0u);
}

TEST_F(HoardAllocatorTest, GlobalHeapRecyclesAcrossSizeClasses)
{
    Config config = small_config();
    // No slack: emptied superblocks must flow to the global heap
    // immediately (this test exercises the recycling machinery; the
    // default K would retain them in the per-processor heap instead).
    config.slack_superblocks = 0;
    NativeHoard allocator(config);
    NativePolicy::rebind_thread_index(0);
    // Create superblocks of class A, empty them to the global heap.
    std::vector<void*> blocks;
    for (int i = 0; i < 2000; ++i)
        blocks.push_back(allocator.allocate(32));
    for (void* p : blocks)
        allocator.deallocate(p);
    std::uint64_t mapped_before = allocator.stats().superblock_allocs.get();

    // Allocate a different class: recycled superblocks must be reused.
    blocks.clear();
    for (int i = 0; i < 500; ++i)
        blocks.push_back(allocator.allocate(128));
    std::uint64_t mapped_after = allocator.stats().superblock_allocs.get();
    // 500 x 128 B needs ~8 superblocks; recycling must cover most of
    // them (the per-heap K-slack retains a few class-32 stragglers).
    EXPECT_LT(mapped_after - mapped_before, 6u)
        << "class-128 demand should be served by recycled superblocks";
    for (void* p : blocks)
        allocator.deallocate(p);
}

TEST_F(HoardAllocatorTest, ManySizesChurnKeepsInvariants)
{
    NativeHoard allocator(small_config());
    detail::Rng rng(21);
    std::vector<std::pair<void*, std::size_t>> live;
    for (int op = 0; op < 20000; ++op) {
        if (live.size() < 200 || rng.chance(0.5)) {
            std::size_t size = rng.range(1, 2000);
            void* p = allocator.allocate(size);
            detail::pattern_fill(p, size, size);
            live.emplace_back(p, size);
        } else {
            auto idx = static_cast<std::size_t>(rng.below(live.size()));
            EXPECT_TRUE(detail::pattern_check(live[idx].first,
                                              live[idx].second,
                                              live[idx].second));
            allocator.deallocate(live[idx].first);
            live[idx] = live.back();
            live.pop_back();
        }
    }
    EXPECT_TRUE(allocator.check_invariants());
    for (auto& [p, size] : live)
        allocator.deallocate(p);
    EXPECT_EQ(allocator.stats().in_use_bytes.current(), 0u);
    EXPECT_TRUE(allocator.check_invariants());
}

TEST_F(HoardAllocatorTest, ConfigValidationRejectsBadValues)
{
    Config bad;
    bad.superblock_bytes = 5000;  // not a power of two
    EXPECT_DEATH(NativeHoard{bad}, "power of two");

    Config bad2;
    bad2.empty_fraction = 1.5;
    EXPECT_DEATH(NativeHoard{bad2}, "empty_fraction");

    Config bad3;
    bad3.heap_count = 0;
    EXPECT_DEATH(NativeHoard{bad3}, "heap_count");
}

TEST_F(HoardAllocatorTest, CustomSuperblockSizes)
{
    for (std::size_t s : {std::size_t{4096}, std::size_t{16384},
                          std::size_t{65536}}) {
        Config config;
        config.superblock_bytes = s;
        config.heap_count = 2;
        NativeHoard allocator(config);
        std::vector<void*> blocks;
        for (int i = 0; i < 500; ++i) {
            void* p = allocator.allocate(100);
            detail::pattern_fill(p, 100, s);
            blocks.push_back(p);
        }
        for (void* p : blocks) {
            EXPECT_TRUE(detail::pattern_check(p, 100, s));
            allocator.deallocate(p);
        }
        EXPECT_TRUE(allocator.check_invariants());
    }
}

}  // namespace
}  // namespace hoard
