/** @file Unit tests for the superblock data structure. */

#include "core/superblock.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/memutil.h"
#include "os/page_provider.h"

namespace hoard {
namespace {

constexpr std::size_t kS = 8192;

class SuperblockTest : public ::testing::Test
{
  protected:
    void*
    map()
    {
        void* mem = provider_.map(kS, kS);
        mapped_.push_back(mem);
        return mem;
    }

    void
    TearDown() override
    {
        for (void* mem : mapped_)
            provider_.unmap(mem, kS);
    }

    os::MmapPageProvider provider_;
    std::vector<void*> mapped_;
};

TEST_F(SuperblockTest, CreateComputesCapacity)
{
    Superblock* sb = Superblock::create(map(), kS, 3, 64);
    EXPECT_EQ(sb->size_class(), 3);
    EXPECT_EQ(sb->block_bytes(), 64u);
    EXPECT_EQ(sb->capacity(), (kS - Superblock::header_bytes()) / 64);
    EXPECT_TRUE(sb->empty());
    EXPECT_FALSE(sb->full());
    EXPECT_FALSE(sb->huge());
}

TEST_F(SuperblockTest, HeaderKeepsBlocksAligned)
{
    EXPECT_EQ(Superblock::header_bytes() % detail::kCacheLineBytes, 0u);
    Superblock* sb = Superblock::create(map(), kS, 0, 16);
    void* first = sb->allocate();
    EXPECT_TRUE(detail::is_aligned(first, 16));
}

TEST_F(SuperblockTest, AllocateAllBlocksDistinctAndInRange)
{
    Superblock* sb = Superblock::create(map(), kS, 0, 128);
    std::set<void*> blocks;
    while (!sb->full()) {
        void* p = sb->allocate();
        EXPECT_TRUE(blocks.insert(p).second) << "duplicate block";
        auto addr = reinterpret_cast<std::uintptr_t>(p);
        auto base = reinterpret_cast<std::uintptr_t>(sb);
        EXPECT_GE(addr, base + Superblock::header_bytes());
        EXPECT_LE(addr + 128, base + kS);
    }
    EXPECT_EQ(blocks.size(), sb->capacity());
    EXPECT_EQ(sb->used(), sb->capacity());
}

TEST_F(SuperblockTest, FreeListLifoReuse)
{
    Superblock* sb = Superblock::create(map(), kS, 0, 64);
    void* a = sb->allocate();
    void* b = sb->allocate();
    sb->deallocate(a);
    sb->deallocate(b);
    // LIFO: most recently freed comes back first.
    EXPECT_EQ(sb->allocate(), b);
    EXPECT_EQ(sb->allocate(), a);
}

TEST_F(SuperblockTest, UsedCountsTrackOperations)
{
    Superblock* sb = Superblock::create(map(), kS, 0, 256);
    std::vector<void*> blocks;
    for (int i = 0; i < 10; ++i)
        blocks.push_back(sb->allocate());
    EXPECT_EQ(sb->used(), 10u);
    EXPECT_EQ(sb->used_bytes(), 10u * 256u);
    for (int i = 0; i < 4; ++i) {
        sb->deallocate(blocks.back());
        blocks.pop_back();
    }
    EXPECT_EQ(sb->used(), 6u);
}

TEST_F(SuperblockTest, FromPointerMasksAnyInteriorAddress)
{
    Superblock* sb = Superblock::create(map(), kS, 0, 64);
    void* p = sb->allocate();
    auto* bytes = static_cast<char*>(p);
    EXPECT_EQ(Superblock::from_pointer(p, kS), sb);
    EXPECT_EQ(Superblock::from_pointer(bytes + 63, kS), sb);
}

TEST_F(SuperblockTest, BlockStartRoundsInteriorPointers)
{
    Superblock* sb = Superblock::create(map(), kS, 0, 64);
    void* a = sb->allocate();
    void* b = sb->allocate();
    auto* mid_b = static_cast<char*>(b) + 17;
    EXPECT_EQ(sb->block_start(mid_b), b);
    EXPECT_EQ(sb->block_start(a), a);
}

TEST_F(SuperblockTest, DeallocateInteriorPointerFreesWholeBlock)
{
    Superblock* sb = Superblock::create(map(), kS, 0, 64);
    void* a = sb->allocate();
    sb->deallocate(static_cast<char*>(a) + 32);
    EXPECT_TRUE(sb->empty());
    EXPECT_EQ(sb->allocate(), a);
}

TEST_F(SuperblockTest, FullnessGroupBands)
{
    Superblock* sb = Superblock::create(map(), kS, 0, 64);
    EXPECT_EQ(sb->fullness_group(), 0);
    std::vector<void*> blocks;
    while (!sb->full())
        blocks.push_back(sb->allocate());
    EXPECT_EQ(sb->fullness_group(), Superblock::kFullGroup);
    // Free half: group must be the middle band.
    for (std::size_t i = 0; i < blocks.size() / 2; ++i)
        sb->deallocate(blocks[i]);
    int g = sb->fullness_group();
    EXPECT_GE(g, Superblock::kFullnessBands / 2 - 1);
    EXPECT_LE(g, Superblock::kFullnessBands / 2 + 1);
}

TEST_F(SuperblockTest, FullnessGroupMonotonicInUsed)
{
    Superblock* sb = Superblock::create(map(), kS, 0, 512);
    int prev = sb->fullness_group();
    while (!sb->full()) {
        sb->allocate();
        int g = sb->fullness_group();
        EXPECT_GE(g, prev);
        prev = g;
    }
}

TEST_F(SuperblockTest, AtLeastFractionEmpty)
{
    Superblock* sb = Superblock::create(map(), kS, 0, 64);
    EXPECT_TRUE(sb->at_least_fraction_empty(1.0));
    std::vector<void*> blocks;
    while (!sb->full())
        blocks.push_back(sb->allocate());
    EXPECT_FALSE(sb->at_least_fraction_empty(0.25));
    // Free a quarter.
    std::size_t quarter = blocks.size() / 4 + 1;
    for (std::size_t i = 0; i < quarter; ++i)
        sb->deallocate(blocks[i]);
    EXPECT_TRUE(sb->at_least_fraction_empty(0.25));
    EXPECT_FALSE(sb->at_least_fraction_empty(0.5));
}

TEST_F(SuperblockTest, ReformatChangesClassWhenEmpty)
{
    Superblock* sb = Superblock::create(map(), kS, 0, 64);
    void* p = sb->allocate();
    sb->deallocate(p);
    ASSERT_TRUE(sb->empty());
    sb->reformat(5, 512);
    EXPECT_EQ(sb->size_class(), 5);
    EXPECT_EQ(sb->block_bytes(), 512u);
    EXPECT_EQ(sb->capacity(), (kS - Superblock::header_bytes()) / 512);
    // Old free list must be gone: fresh bump allocation.
    void* q = sb->allocate();
    EXPECT_TRUE(detail::is_aligned(q, 16));
}

TEST_F(SuperblockTest, OwnerRoundTrips)
{
    Superblock* sb = Superblock::create(map(), kS, 0, 64);
    EXPECT_EQ(sb->owner(), nullptr);
    int heap_stand_in;
    sb->set_owner(&heap_stand_in);
    EXPECT_EQ(sb->owner(), &heap_stand_in);
}

TEST_F(SuperblockTest, HugeSuperblock)
{
    void* mem = provider_.map(kS * 3, kS);
    Superblock* sb = Superblock::create_huge(mem, kS * 3, 20000);
    EXPECT_TRUE(sb->huge());
    EXPECT_EQ(sb->huge_user_bytes(), 20000u);
    EXPECT_EQ(sb->span_bytes(), kS * 3);
    EXPECT_EQ(sb->used_bytes(), 20000u);
    EXPECT_FALSE(sb->empty());
    // The mask finds the header from the user pointer.
    void* user = static_cast<char*>(mem) + Superblock::header_bytes();
    EXPECT_EQ(Superblock::from_pointer(user, kS), sb);
    provider_.unmap(mem, kS * 3);
}

TEST_F(SuperblockTest, PatternsSurviveNeighborChurn)
{
    // Data in live blocks is untouched while neighbors are recycled.
    Superblock* sb = Superblock::create(map(), kS, 0, 64);
    void* keep = sb->allocate();
    detail::pattern_fill(keep, 64, 1);
    for (int i = 0; i < 1000; ++i) {
        void* tmp = sb->allocate();
        detail::pattern_fill(tmp, 64, 2);
        sb->deallocate(tmp);
    }
    EXPECT_TRUE(detail::pattern_check(keep, 64, 1));
}

TEST_F(SuperblockTest, DeathOnForeignPointer)
{
    // An aligned, zeroed region that was never formatted: the magic
    // check must reject pointers into it loudly.
    void* region = provider_.map(kS, kS);
    mapped_.push_back(region);
    EXPECT_DEATH(
        Superblock::from_pointer(static_cast<char*>(region) + 100, kS),
        "not from this allocator");
}

}  // namespace
}  // namespace hoard
