/** @file Tests for the std::pmr adapter. */

#include "core/pmr_resource.h"

#include <gtest/gtest.h>

#include <memory_resource>
#include <string>
#include <vector>

#include "baselines/serial_allocator.h"
#include "core/hoard_allocator.h"
#include "policy/native_policy.h"

namespace hoard {
namespace {

TEST(PmrResource, VectorAndString)
{
    HoardAllocator<NativePolicy> backend{Config{}};
    HoardPmrResource resource(backend);

    std::pmr::vector<int> v(&resource);
    for (int i = 0; i < 50000; ++i)
        v.push_back(i);
    EXPECT_EQ(v[49999], 49999);

    std::pmr::string s(&resource);
    for (int i = 0; i < 2000; ++i)
        s += static_cast<char>('a' + i % 26);
    EXPECT_EQ(s.size(), 2000u);

    EXPECT_GT(backend.stats().allocs.get(), 0u);
    v = std::pmr::vector<int>(&resource);
    s.clear();
    s.shrink_to_fit();
}

TEST(PmrResource, ReleasesEverything)
{
    HoardAllocator<NativePolicy> backend{Config{}};
    {
        HoardPmrResource resource(backend);
        std::pmr::vector<std::pmr::string> rows(&resource);
        for (int i = 0; i < 500; ++i)
            rows.emplace_back("some string content that is not SSO-"
                              "sized at all, number " +
                              std::to_string(i));
    }
    EXPECT_EQ(backend.stats().in_use_bytes.current(), 0u);
    EXPECT_TRUE(backend.check_invariants());
}

TEST(PmrResource, OverAlignedThroughHoard)
{
    HoardAllocator<NativePolicy> backend{Config{}};
    HoardPmrResource resource(backend);
    void* p = resource.allocate(100, 1024);
    EXPECT_TRUE(detail::is_aligned(p, 1024));
    resource.deallocate(p, 100, 1024);
    EXPECT_EQ(backend.stats().in_use_bytes.current(), 0u);
}

TEST(PmrResource, GenericBackendHandlesNaturalAlignment)
{
    baselines::SerialAllocator<NativePolicy> backend{Config{}};
    PmrResource resource(backend);
    void* p = resource.allocate(64, 16);
    EXPECT_NE(p, nullptr);
    resource.deallocate(p, 64, 16);
}

TEST(PmrResource, GenericBackendRejectsOverAlignment)
{
    baselines::SerialAllocator<NativePolicy> backend{Config{}};
    PmrResource resource(backend);
    EXPECT_DEATH(resource.allocate(64, 256), "alignment");
}

TEST(PmrResource, EqualityFollowsBackend)
{
    HoardAllocator<NativePolicy> a{Config{}};
    HoardAllocator<NativePolicy> b{Config{}};
    HoardPmrResource ra1(a), ra2(a), rb(b);
    EXPECT_TRUE(ra1.is_equal(ra2));
    EXPECT_FALSE(ra1.is_equal(rb));
    EXPECT_FALSE(ra1.is_equal(*std::pmr::new_delete_resource()));
}

TEST(PmrResource, MonotonicChainUpstream)
{
    HoardAllocator<NativePolicy> backend{Config{}};
    HoardPmrResource upstream(backend);
    std::pmr::monotonic_buffer_resource arena(&upstream);
    std::pmr::vector<double> v(&arena);
    for (int i = 0; i < 10000; ++i)
        v.push_back(i * 0.5);
    EXPECT_DOUBLE_EQ(v[9999], 4999.5);
    EXPECT_GT(backend.stats().allocs.get(), 0u);
}

}  // namespace
}  // namespace hoard
