/**
 * @file
 * Property tests for Hoard's emptiness invariant and blowup bound —
 * the paper's central formal claims (§3.2):
 *
 *   P1. After any operation sequence, each per-processor heap obeys
 *       u_i >= a_i - K*S  or  u_i >= (1-f) a_i   (within one-transfer
 *       and header slack).
 *   P2. Blowup is O(1): total held memory is bounded by a constant
 *       multiple of the program's maximum live memory plus constants,
 *       independent of how ownership migrates between threads.
 *   P3. Frees always make blocks reusable: no operation sequence can
 *       strand memory outside the heaps' books (accounting closure).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/hoard_allocator.h"
#include "policy/native_policy.h"
#include "workloads/prodcons.h"

namespace hoard {
namespace {

using NativeHoard = HoardAllocator<NativePolicy>;

struct InvariantCase
{
    std::uint64_t seed;
    double empty_fraction;
    double release_threshold;
    std::size_t slack;
    int max_live;
    std::size_t max_size;
};

class HoardInvariantTest
    : public ::testing::TestWithParam<InvariantCase>
{};

/** P1 + P3: random single-threaded churn with periodic full checks. */
TEST_P(HoardInvariantTest, RandomChurnKeepsInvariant)
{
    const InvariantCase& param = GetParam();
    Config config;
    config.heap_count = 4;
    config.empty_fraction = param.empty_fraction;
    config.release_threshold = param.release_threshold;
    config.slack_superblocks = param.slack;
    NativeHoard allocator(config);

    detail::Rng rng(param.seed);
    std::vector<void*> live;
    for (int op = 0; op < 8000; ++op) {
        // Hop between logical threads so superblocks change owners.
        if (op % 97 == 0) {
            NativePolicy::rebind_thread_index(
                static_cast<int>(rng.below(6)));
        }
        bool grow = live.empty() ||
                    (static_cast<int>(live.size()) < param.max_live &&
                     rng.chance(0.55));
        if (grow) {
            live.push_back(allocator.allocate(
                rng.range(1, param.max_size)));
        } else {
            auto idx = static_cast<std::size_t>(rng.below(live.size()));
            allocator.deallocate(live[idx]);
            live[idx] = live.back();
            live.pop_back();
        }
        if (op % 512 == 0)
            ASSERT_TRUE(allocator.check_invariants()) << "op " << op;
    }
    ASSERT_TRUE(allocator.check_invariants());
    for (void* p : live)
        allocator.deallocate(p);
    ASSERT_TRUE(allocator.check_invariants());
    EXPECT_EQ(allocator.stats().in_use_bytes.current(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, HoardInvariantTest,
    ::testing::Values(
        // Paper-literal mode: victims need only be f empty.
        InvariantCase{1, 0.25, 0.25, 0, 300, 500},
        InvariantCase{2, 0.25, 0.25, 2, 300, 500},
        InvariantCase{3, 0.125, 0.125, 0, 100, 2000},
        // Default mode: victims must be nearly empty.
        InvariantCase{4, 0.25, 0.875, 8, 300, 500},
        InvariantCase{5, 0.5, 0.875, 4, 500, 100},
        InvariantCase{6, 0.75, 0.75, 2, 50, 3000},
        InvariantCase{7, 0.25, 1.0, 2, 1000, 64},
        InvariantCase{8, 0.5, 0.5, 0, 200, 1200},
        InvariantCase{9, 0.125, 0.875, 0, 100, 2000}));

/** P2: Hoard's footprint does not grow with producer-consumer rounds. */
TEST(HoardBlowup, ProdConsFootprintIsFlat)
{
    Config config;
    config.heap_count = 4;
    NativeHoard allocator(config);
    workloads::ProdConsParams params;
    params.rounds = 80;
    params.batch_objects = 300;
    params.object_bytes = 64;
    std::vector<std::size_t> held;
    workloads::prodcons_pair<NativePolicy>(allocator, params, 0, &held);

    // After warmup, held memory must plateau: compare round 10 vs 80.
    EXPECT_LE(held[79], held[9] + 4 * config.superblock_bytes)
        << "footprint grew across rounds: blowup is not O(1)";
}

/** P2 quantified: held <= (1/(1-f)) * live + heaps * (K+1) * S + slack. */
TEST(HoardBlowup, FootprintBoundedByInvariantFormula)
{
    Config config;
    config.heap_count = 4;
    config.empty_fraction = 0.25;
    config.release_threshold = 0.25;  // paper-literal victim rule
    config.slack_superblocks = 2;
    NativeHoard allocator(config);

    detail::Rng rng(99);
    std::vector<std::pair<void*, std::size_t>> live;
    std::size_t live_bytes = 0;
    std::size_t max_live_bytes = 0;

    for (int op = 0; op < 30000; ++op) {
        if (op % 61 == 0) {
            NativePolicy::rebind_thread_index(
                static_cast<int>(rng.below(8)));
        }
        if (live.size() < 400 && rng.chance(0.52)) {
            std::size_t size = rng.range(8, 900);
            live.emplace_back(allocator.allocate(size), size);
            live_bytes += size;
            max_live_bytes = std::max(max_live_bytes, live_bytes);
        } else if (!live.empty()) {
            auto idx = static_cast<std::size_t>(rng.below(live.size()));
            allocator.deallocate(live[idx].first);
            live_bytes -= live[idx].second;
            live[idx] = live.back();
            live.pop_back();
        }
    }

    const double f = config.empty_fraction;
    const std::size_t S = config.superblock_bytes;
    // Size classes introduce up to the class ratio (~1.2x, plus
    // rounding) of internal fragmentation on top of the invariant's
    // 1/(1-f); heaps can additionally hold (K+1) superblocks each and
    // the global heap caches empties (bounded by what was ever held).
    double bound =
        static_cast<double>(max_live_bytes) * 1.35 / (1.0 - f) +
        static_cast<double>(
            (static_cast<std::size_t>(config.heap_count) + 1) *
            (config.slack_superblocks + 2) * S);
    EXPECT_LE(static_cast<double>(allocator.stats().held_bytes.peak()),
              bound);
    for (auto& [p, size] : live)
        allocator.deallocate(p);
}

/** The serial-equivalent footprint: single heap never blows up. */
TEST(HoardBlowup, SingleHeapMatchesLiveMemory)
{
    Config config;
    config.heap_count = 1;
    NativeHoard allocator(config);
    std::vector<void*> blocks;
    for (int i = 0; i < 4000; ++i)
        blocks.push_back(allocator.allocate(64));
    std::size_t held = allocator.stats().held_bytes.current();
    std::size_t used = allocator.stats().in_use_bytes.current();
    EXPECT_LT(static_cast<double>(held),
              static_cast<double>(used) * 1.15 +
                  2 * config.superblock_bytes);
    for (void* p : blocks)
        allocator.deallocate(p);
}

}  // namespace
}  // namespace hoard
