/** @file Unit tests for the malloc-style facade. */

#include "core/facade.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>
#include <limits>
#include <vector>

namespace hoard {
namespace {

TEST(Facade, MallocFreeBasics)
{
    void* p = hoard_malloc(100);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0xaa, 100);
    EXPECT_GE(hoard_usable_size(p), 100u);
    hoard_free(p);
    hoard_free(nullptr);  // no-op
}

TEST(Facade, MallocZeroGivesUniquePointers)
{
    void* a = hoard_malloc(0);
    void* b = hoard_malloc(0);
    EXPECT_NE(a, nullptr);
    EXPECT_NE(b, nullptr);
    EXPECT_NE(a, b);
    hoard_free(a);
    hoard_free(b);
}

TEST(Facade, CallocZeroes)
{
    auto* p = static_cast<unsigned char*>(hoard_calloc(100, 7));
    ASSERT_NE(p, nullptr);
    for (int i = 0; i < 700; ++i)
        EXPECT_EQ(p[i], 0u);
    // Dirty it, free, re-calloc: must be zero again despite reuse.
    std::memset(p, 0xff, 700);
    hoard_free(p);
    auto* q = static_cast<unsigned char*>(hoard_calloc(100, 7));
    for (int i = 0; i < 700; ++i)
        EXPECT_EQ(q[i], 0u);
    hoard_free(q);
}

TEST(Facade, CallocOverflowReturnsNull)
{
    std::size_t half = std::numeric_limits<std::size_t>::max() / 2 + 2;
    errno = 0;
    EXPECT_EQ(hoard_calloc(half, 2), nullptr);
    EXPECT_EQ(errno, ENOMEM);
}

TEST(Facade, CallocRecycledSmallBlockIsZeroed)
{
    // Regression for the huge-path memset skip: small blocks recycle
    // through free lists, so calloc must keep clearing them even
    // though huge spans are handed out untouched.
    const std::size_t bytes = 3000;
    auto* p = static_cast<unsigned char*>(hoard_malloc(bytes));
    ASSERT_NE(p, nullptr);
    std::memset(p, 0xee, bytes);
    hoard_free(p);
    auto* q = static_cast<unsigned char*>(hoard_calloc(1, bytes));
    ASSERT_NE(q, nullptr);
    for (std::size_t i = 0; i < bytes; ++i)
        ASSERT_EQ(q[i], 0u) << "byte " << i;
    hoard_free(q);
}

TEST(Facade, CallocHugeIsZeroed)
{
    // Served memset-free from freshly mapped (zero) pages.
    const std::size_t bytes = 256 * 1024;
    auto* p = static_cast<unsigned char*>(hoard_calloc(1, bytes));
    ASSERT_NE(p, nullptr);
    for (std::size_t i = 0; i < bytes; i += 256)
        ASSERT_EQ(p[i], 0u) << "byte " << i;
    EXPECT_EQ(p[bytes - 1], 0u);
    hoard_free(p);
}

TEST(Facade, ErrnoSetOnMallocExhaustion)
{
    errno = 0;
    EXPECT_EQ(hoard_malloc(std::numeric_limits<std::size_t>::max() / 4),
              nullptr);
    EXPECT_EQ(errno, ENOMEM);
}

TEST(Facade, ErrnoSetOnReallocExhaustionAndBlockSurvives)
{
    auto* p = static_cast<char*>(hoard_malloc(64));
    ASSERT_NE(p, nullptr);
    std::memcpy(p, "payload", 8);
    errno = 0;
    EXPECT_EQ(
        hoard_realloc(p, std::numeric_limits<std::size_t>::max() / 4),
        nullptr);
    EXPECT_EQ(errno, ENOMEM);
    EXPECT_STREQ(p, "payload");  // failure must not disturb the block
    hoard_free(p);
}

TEST(Facade, ReallocBehavesLikeLibc)
{
    auto* p = static_cast<char*>(hoard_realloc(nullptr, 10));
    ASSERT_NE(p, nullptr);
    std::memcpy(p, "123456789", 10);
    p = static_cast<char*>(hoard_realloc(p, 10000));
    EXPECT_STREQ(p, "123456789");
    EXPECT_EQ(hoard_realloc(p, 0), nullptr);
}

TEST(Facade, AlignedAlloc)
{
    void* p = hoard_aligned_alloc(512, 100);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 512, 0u);
    hoard_free(p);
}

TEST(Facade, AlignedAllocZeroSizeGivesFreeablePointer)
{
    // Size 0 clamps to 1 (like hoard_malloc) instead of tripping the
    // allocator's size validation.
    void* p = hoard_aligned_alloc(256, 0);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 256, 0u);
    hoard_free(p);
}

TEST(Facade, PosixMemalign)
{
    void* p = nullptr;
    EXPECT_EQ(hoard_posix_memalign(&p, 256, 100), 0);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 256, 0u);
    hoard_free(p);

    EXPECT_EQ(hoard_posix_memalign(&p, 3, 100), EINVAL);
    EXPECT_EQ(hoard_posix_memalign(&p, 4, 100), EINVAL)
        << "alignment must be a multiple of sizeof(void*)";
    EXPECT_EQ(hoard_posix_memalign(&p, 1 << 20, 100), EINVAL)
        << "alignment beyond S/2 is rejected, not fatal";
    EXPECT_EQ(hoard_posix_memalign(nullptr, 256, 100), EINVAL);

    EXPECT_EQ(hoard_posix_memalign(&p, 256, 0), 0);
    hoard_free(p);
}

TEST(Facade, StatsAreLive)
{
    std::uint64_t before = hoard_stats().allocs.get();
    void* p = hoard_malloc(32);
    EXPECT_EQ(hoard_stats().allocs.get(), before + 1);
    hoard_free(p);
}

TEST(Facade, GlobalAllocatorIsStable)
{
    EXPECT_EQ(&global_allocator(), &global_allocator());
}

TEST(Facade, MixedSizesStressRoundTrip)
{
    std::vector<void*> blocks;
    for (int i = 1; i <= 300; ++i) {
        void* p = hoard_malloc(static_cast<std::size_t>(i * 13 % 5000) + 1);
        ASSERT_NE(p, nullptr);
        blocks.push_back(p);
    }
    for (void* p : blocks)
        hoard_free(p);
    global_allocator().check_invariants();
}

}  // namespace
}  // namespace hoard
