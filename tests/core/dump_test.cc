/** @file Tests for the heap introspection report. */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/hoard_allocator.h"
#include "policy/native_policy.h"

namespace hoard {
namespace {

TEST(Dump, ReportsConfigAndHeaps)
{
    Config config;
    config.heap_count = 3;
    HoardAllocator<NativePolicy> allocator(config);
    NativePolicy::rebind_thread_index(0);
    std::vector<void*> blocks;
    for (int i = 0; i < 300; ++i)
        blocks.push_back(allocator.allocate(64));

    std::ostringstream os;
    allocator.dump(os);
    std::string out = os.str();

    EXPECT_NE(out.find("S=8192"), std::string::npos);
    EXPECT_NE(out.find("P=3"), std::string::npos);
    EXPECT_NE(out.find("heap 0 (global)"), std::string::npos);
    EXPECT_NE(out.find("superblock(s)"), std::string::npos);
    EXPECT_NE(out.find("64 B"), std::string::npos);

    for (void* p : blocks)
        allocator.deallocate(p);
}

TEST(Dump, EmptyAllocatorStillPrints)
{
    HoardAllocator<NativePolicy> allocator{Config{}};
    std::ostringstream os;
    allocator.dump(os);
    EXPECT_NE(os.str().find("heap 0 (global)"), std::string::npos);
}

TEST(Dump, ShowsThreadCacheWhenEnabled)
{
    Config config;
    config.thread_cache_blocks = 16;
    config.thread_cache_batch = 1;  // refill singly: exactly one parks
    HoardAllocator<NativePolicy> allocator(config);
    void* p = allocator.allocate(32);
    allocator.deallocate(p);  // parks in the cache
    std::ostringstream os;
    allocator.dump(os);
    EXPECT_NE(os.str().find("thread caches: 1 block(s)"),
              std::string::npos);
    allocator.flush_thread_caches();
}

}  // namespace
}  // namespace hoard
