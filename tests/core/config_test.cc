/** @file Config validation sweep. */

#include "core/config.h"

#include <gtest/gtest.h>

#include <functional>

namespace hoard {
namespace {

TEST(Config, DefaultsAreValid)
{
    Config config;
    config.validate();  // must not abort
    EXPECT_EQ(config.superblock_bytes, 8192u);
    EXPECT_DOUBLE_EQ(config.empty_fraction, 0.25);
    EXPECT_EQ(config.slack_superblocks, 8u);
    EXPECT_DOUBLE_EQ(config.release_threshold, 1.0);
    EXPECT_EQ(config.thread_cache_blocks, 0u);
}

struct ConfigCase
{
    const char* name;
    std::function<void(Config&)> mutate;
    const char* expected_message;
};

class ConfigValidationTest : public ::testing::TestWithParam<ConfigCase>
{};

TEST_P(ConfigValidationTest, RejectsOutOfRange)
{
    Config config;
    GetParam().mutate(config);
    EXPECT_DEATH(config.validate(), GetParam().expected_message);
}

INSTANTIATE_TEST_SUITE_P(
    BadValues, ConfigValidationTest,
    ::testing::Values(
        ConfigCase{"NonPow2Superblock",
                   [](Config& c) { c.superblock_bytes = 10000; },
                   "power of two"},
        ConfigCase{"TinySuperblock",
                   [](Config& c) { c.superblock_bytes = 512; },
                   "power of two"},
        ConfigCase{"ZeroEmptyFraction",
                   [](Config& c) { c.empty_fraction = 0.0; },
                   "empty_fraction"},
        ConfigCase{"FullEmptyFraction",
                   [](Config& c) { c.empty_fraction = 1.0; },
                   "empty_fraction"},
        ConfigCase{"ReleaseBelowF",
                   [](Config& c) {
                       c.empty_fraction = 0.5;
                       c.release_threshold = 0.25;
                   },
                   "release_threshold"},
        ConfigCase{"ReleaseAboveOne",
                   [](Config& c) { c.release_threshold = 1.5; },
                   "release_threshold"},
        ConfigCase{"BaseTooSmall",
                   [](Config& c) { c.size_class_base = 1.0; },
                   "size_class_base"},
        ConfigCase{"BaseTooLarge",
                   [](Config& c) { c.size_class_base = 8.0; },
                   "size_class_base"},
        ConfigCase{"MinBlockNotMultiple",
                   [](Config& c) { c.min_block_bytes = 12; },
                   "min_block_bytes"},
        ConfigCase{"MinBlockZero",
                   [](Config& c) { c.min_block_bytes = 0; },
                   "min_block_bytes"},
        ConfigCase{"HeapCountZero",
                   [](Config& c) { c.heap_count = 0; }, "heap_count"},
        ConfigCase{"HeapCountHuge",
                   [](Config& c) { c.heap_count = 100000; },
                   "heap_count"},
        ConfigCase{"MinBlockVsSuperblock",
                   [](Config& c) {
                       c.superblock_bytes = 1024;
                       c.min_block_bytes = 512;
                   },
                   "too large"}),
    [](const ::testing::TestParamInfo<ConfigCase>& info) {
        return info.param.name;
    });

TEST(Config, BoundaryValuesAccepted)
{
    Config config;
    config.empty_fraction = 0.001;
    config.release_threshold = 0.001;
    config.validate();

    Config config2;
    config2.empty_fraction = 0.999;
    config2.release_threshold = 1.0;
    config2.slack_superblocks = 0;
    config2.heap_count = 4096;
    config2.validate();

    Config config3;
    config3.superblock_bytes = 1024;
    config3.min_block_bytes = 8;
    config3.validate();
}

}  // namespace
}  // namespace hoard
