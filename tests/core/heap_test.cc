/** @file Unit tests for HoardHeap's fullness-group bookkeeping. */

#include "core/heap.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/config.h"
#include "core/size_classes.h"
#include "os/page_provider.h"
#include "policy/native_policy.h"

namespace hoard {
namespace {

constexpr std::size_t kS = 8192;

class HeapTest : public ::testing::Test
{
  protected:
    HeapTest() : classes_(config_, Superblock::payload_bytes_for(kS)) {}

    Superblock*
    make_superblock(int cls)
    {
        void* mem = provider_.map(kS, kS);
        mapped_.push_back(mem);
        return Superblock::create(
            mem, kS, cls,
            static_cast<std::uint32_t>(classes_.block_size(cls)));
    }

    void
    TearDown() override
    {
        for (void* mem : mapped_)
            provider_.unmap(mem, kS);
    }

    Config config_;
    SizeClasses classes_;
    os::MmapPageProvider provider_;
    std::vector<void*> mapped_;
    HoardHeap<NativePolicy> heap_{1, 40};
};

TEST_F(HeapTest, LinkPlacesInCorrectGroup)
{
    Superblock* sb = make_superblock(0);
    heap_.link(sb);
    int probes = 0;
    // Empty superblock lives in band 0, which find_allocatable reaches
    // only after probing every fuller band.
    EXPECT_EQ(heap_.find_allocatable(0, &probes), sb);
    EXPECT_EQ(probes, Superblock::kFullnessBands);
}

TEST_F(HeapTest, FindAllocatablePrefersFullest)
{
    Superblock* nearly_full = make_superblock(0);
    Superblock* half = make_superblock(0);
    Superblock* empty = make_superblock(0);

    while (!nearly_full->full())
        nearly_full->allocate();
    nearly_full->deallocate(
        nearly_full->payload_begin());  // one free slot
    for (std::uint32_t i = 0; i < half->capacity() / 2; ++i)
        half->allocate();

    heap_.link(empty);
    heap_.link(half);
    heap_.link(nearly_full);

    int probes = 0;
    EXPECT_EQ(heap_.find_allocatable(0, &probes), nearly_full);
}

TEST_F(HeapTest, FullSuperblocksNotOffered)
{
    Superblock* sb = make_superblock(0);
    while (!sb->full())
        sb->allocate();
    heap_.link(sb);
    int probes = 0;
    EXPECT_EQ(heap_.find_allocatable(0, &probes), nullptr);
}

TEST_F(HeapTest, RelinkFollowsFullnessChanges)
{
    Superblock* sb = make_superblock(0);
    heap_.link(sb);
    // Fill it completely, relinking as the group changes.
    while (!sb->full()) {
        int old_group = sb->fullness_group();
        sb->allocate();
        heap_.relink(sb, old_group);
    }
    int probes = 0;
    EXPECT_EQ(heap_.find_allocatable(0, &probes), nullptr);
    // Free one block: it must be findable again.
    int old_group = sb->fullness_group();
    sb->deallocate(sb->payload_begin());
    heap_.relink(sb, old_group);
    EXPECT_EQ(heap_.find_allocatable(0, &probes), sb);
}

TEST_F(HeapTest, ClassesAreSegregated)
{
    Superblock* a = make_superblock(0);
    Superblock* b = make_superblock(3);
    heap_.link(a);
    heap_.link(b);
    int probes = 0;
    EXPECT_EQ(heap_.find_allocatable(0, &probes), a);
    EXPECT_EQ(heap_.find_allocatable(3, &probes), b);
    EXPECT_EQ(heap_.find_allocatable(7, &probes), nullptr);
}

TEST_F(HeapTest, TransferVictimMustBeFractionEmpty)
{
    Superblock* busy = make_superblock(0);
    // Fill until fewer than 26% of its blocks are free.
    while (busy->at_least_fraction_empty(0.26) && !busy->full())
        busy->allocate();
    heap_.link(busy);
    // busy is less than 26% empty, so no victim at f=0.5.
    EXPECT_EQ(heap_.find_transfer_victim(0.5), nullptr);

    Superblock* idle = make_superblock(2);
    idle->allocate();
    heap_.link(idle);
    EXPECT_EQ(heap_.find_transfer_victim(0.5), idle);
}

TEST_F(HeapTest, TransferVictimPrefersEmptiest)
{
    Superblock* half = make_superblock(0);
    for (std::uint32_t i = 0; i < half->capacity() / 2; ++i)
        half->allocate();
    Superblock* nearly_empty = make_superblock(0);
    nearly_empty->allocate();
    heap_.link(half);
    heap_.link(nearly_empty);
    EXPECT_EQ(heap_.find_transfer_victim(0.25), nearly_empty);
}

TEST_F(HeapTest, UnlinkRemovesFromGroup)
{
    Superblock* sb = make_superblock(0);
    heap_.link(sb);
    heap_.unlink(sb, sb->fullness_group());
    int probes = 0;
    EXPECT_EQ(heap_.find_allocatable(0, &probes), nullptr);
}

}  // namespace
}  // namespace hoard
