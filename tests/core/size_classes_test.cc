/** @file Unit and property tests for the geometric size classes. */

#include "core/size_classes.h"

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/superblock.h"

namespace hoard {
namespace {

SizeClasses
make_classes(Config config = Config())
{
    return SizeClasses(
        config, Superblock::payload_bytes_for(config.superblock_bytes));
}

TEST(SizeClasses, SmallestClassCoversMinBlock)
{
    auto classes = make_classes();
    EXPECT_EQ(classes.block_size(0), 8u);
    EXPECT_EQ(classes.class_for(1), 0);
    EXPECT_EQ(classes.class_for(8), 0);
    EXPECT_NE(classes.class_for(9), 0);
}

TEST(SizeClasses, ZeroBytesServedAsOne)
{
    auto classes = make_classes();
    EXPECT_EQ(classes.class_for(0), 0);
}

TEST(SizeClasses, HugeBeyondLargest)
{
    auto classes = make_classes();
    EXPECT_NE(classes.class_for(classes.largest()), SizeClasses::kHuge);
    EXPECT_EQ(classes.class_for(classes.largest() + 1),
              SizeClasses::kHuge);
    EXPECT_EQ(classes.class_for(1 << 20), SizeClasses::kHuge);
}

TEST(SizeClasses, LargestFitsTwoBlocksPerSuperblock)
{
    Config config;
    auto classes = make_classes(config);
    std::size_t payload =
        Superblock::payload_bytes_for(config.superblock_bytes);
    EXPECT_LE(2 * classes.largest(), payload);
}

TEST(SizeClasses, BlockSizesStrictlyIncrease)
{
    auto classes = make_classes();
    for (int c = 1; c < classes.count(); ++c)
        EXPECT_GT(classes.block_size(c), classes.block_size(c - 1));
}

TEST(SizeClasses, GrowthBoundedByBase)
{
    Config config;
    auto classes = make_classes(config);
    for (int c = 1; c < classes.count(); ++c) {
        double ratio =
            static_cast<double>(classes.block_size(c)) /
            static_cast<double>(classes.block_size(c - 1));
        // Rounding to alignment can push slightly past b for tiny
        // classes; internal fragmentation stays bounded regardless.
        EXPECT_LE(ratio, 2.01) << "class " << c;
    }
}

TEST(SizeClasses, AlignmentGuarantees)
{
    auto classes = make_classes();
    for (int c = 0; c < classes.count(); ++c) {
        std::size_t bs = classes.block_size(c);
        if (bs <= 8)
            EXPECT_EQ(bs % 8, 0u);
        else
            EXPECT_EQ(bs % 16, 0u) << "class " << c;
    }
}

/** Property: every size maps to the smallest class that covers it. */
TEST(SizeClasses, MappingIsTightEverywhere)
{
    auto classes = make_classes();
    for (std::size_t size = 1; size <= classes.largest(); ++size) {
        int cls = classes.class_for(size);
        ASSERT_NE(cls, SizeClasses::kHuge) << size;
        EXPECT_GE(classes.block_size(cls), size) << size;
        if (cls > 0) {
            EXPECT_LT(classes.block_size(cls - 1), size)
                << "class not minimal for size " << size;
        }
    }
}

/** The same tightness property across different configurations. */
class SizeClassesConfigTest
    : public ::testing::TestWithParam<std::pair<std::size_t, double>>
{};

TEST_P(SizeClassesConfigTest, MappingTightForConfig)
{
    Config config;
    config.superblock_bytes = GetParam().first;
    config.size_class_base = GetParam().second;
    auto classes = make_classes(config);
    EXPECT_GT(classes.count(), 3);
    for (std::size_t size = 1; size <= classes.largest();
         size += size < 64 ? 1 : 37) {
        int cls = classes.class_for(size);
        ASSERT_NE(cls, SizeClasses::kHuge);
        EXPECT_GE(classes.block_size(cls), size);
        if (cls > 0)
            EXPECT_LT(classes.block_size(cls - 1), size);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SizeClassesConfigTest,
    ::testing::Values(std::make_pair(std::size_t{4096}, 1.2),
                      std::make_pair(std::size_t{8192}, 1.2),
                      std::make_pair(std::size_t{8192}, 1.5),
                      std::make_pair(std::size_t{16384}, 1.1),
                      std::make_pair(std::size_t{65536}, 2.0)));

}  // namespace
}  // namespace hoard
