/**
 * @file
 * OOM-path unit tests: every allocation path must answer provider
 * exhaustion with nullptr (or std::bad_alloc where the interface
 * demands it), leave allocator state untouched on failure, and — for
 * Hoard — recover by reclaiming thread caches and empty superblocks
 * before reporting OOM.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <memory_resource>
#include <new>
#include <vector>

#include "baselines/ownership_allocator.h"
#include "baselines/pure_private_allocator.h"
#include "baselines/serial_allocator.h"
#include "core/debug_allocator.h"
#include "core/hoard_allocator.h"
#include "core/pmr_resource.h"
#include "os/fault_injection.h"
#include "policy/native_policy.h"

namespace hoard {
namespace {

using NativeHoard = HoardAllocator<NativePolicy>;

Config
small_config()
{
    Config config;
    config.heap_count = 1;
    return config;
}

/**
 * Acceptance test for reclaim-before-fail: an allocation whose first
 * map attempt fails under a hard byte budget succeeds after the
 * allocator drains its thread caches and releases empty superblocks.
 */
TEST(OomReclaim, RecoversByDrainingCachesAndEmptySuperblocks)
{
    NativePolicy::rebind_thread_index(0);
    os::MmapPageProvider inner;
    // Budget: exactly three superblocks.
    Config config = small_config();
    config.thread_cache_blocks = 16;
    os::CappedPageProvider provider(inner, 3 * config.superblock_bytes);
    NativeHoard allocator(config, provider);

    // Fill three superblocks of one class, exhausting the budget.
    const std::size_t block = 128;
    std::vector<void*> blocks;
    while (provider.mapped_bytes() < 3 * config.superblock_bytes) {
        void* p = allocator.allocate(block);
        ASSERT_NE(p, nullptr);
        blocks.push_back(p);
    }
    // Free everything: blocks land in the thread cache and the heaps;
    // nothing goes back to the OS yet (empty superblocks are cached).
    for (void* p : blocks)
        allocator.deallocate(p);
    EXPECT_EQ(provider.mapped_bytes(), 3 * config.superblock_bytes);

    // A different size class needs a fresh superblock.  The map fails
    // on the first attempt (budget full), the allocator reclaims, and
    // the retry succeeds.
    void* p = allocator.allocate(512);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(allocator.stats().oom_reclaims.get(), 1u);
    EXPECT_EQ(allocator.stats().oom_failures.get(), 0u);
    EXPECT_TRUE(allocator.check_invariants());
    std::memset(p, 0x7e, 512);
    allocator.deallocate(p);
}

TEST(OomReclaim, FailsCleanlyWhenNothingIsReclaimable)
{
    NativePolicy::rebind_thread_index(0);
    os::MmapPageProvider inner;
    os::CappedPageProvider provider(inner, 0);
    NativeHoard allocator(small_config(), provider);

    EXPECT_EQ(allocator.allocate(64), nullptr);
    EXPECT_EQ(allocator.stats().oom_reclaims.get(), 1u);
    EXPECT_EQ(allocator.stats().oom_failures.get(), 1u);
    EXPECT_EQ(allocator.stats().allocs.get(), 0u);
    EXPECT_EQ(allocator.stats().in_use_bytes.current(), 0u);
    EXPECT_EQ(allocator.stats().held_bytes.current(), 0u);
    EXPECT_TRUE(allocator.check_invariants());
}

TEST(OomReclaim, StateUnchangedOnFailedAllocation)
{
    NativePolicy::rebind_thread_index(0);
    os::MmapPageProvider inner;
    Config config = small_config();
    os::CappedPageProvider provider(inner, config.superblock_bytes);
    NativeHoard allocator(config, provider);

    auto* a = static_cast<char*>(allocator.allocate(64));
    ASSERT_NE(a, nullptr);
    std::memset(a, 0x42, 64);

    std::size_t u1 = allocator.heap_in_use(1);
    std::size_t a1 = allocator.heap_held(1);
    std::uint64_t allocs = allocator.stats().allocs.get();
    std::uint64_t in_use = allocator.stats().in_use_bytes.current();

    // The budget is spent; a huge allocation must fail...
    EXPECT_EQ(allocator.allocate(100 * 1024), nullptr);
    // ...and every book must read exactly as before the attempt.
    EXPECT_EQ(allocator.heap_in_use(1), u1);
    EXPECT_EQ(allocator.heap_held(1), a1);
    EXPECT_EQ(allocator.stats().allocs.get(), allocs);
    EXPECT_EQ(allocator.stats().in_use_bytes.current(), in_use);
    EXPECT_TRUE(allocator.check_invariants());
    EXPECT_EQ(a[63], 0x42);
    allocator.deallocate(a);
}

TEST(OomReclaim, AlignedAndReallocPathsPropagateNull)
{
    NativePolicy::rebind_thread_index(0);
    os::MmapPageProvider inner;
    Config config = small_config();
    os::CappedPageProvider provider(inner, config.superblock_bytes);
    NativeHoard allocator(config, provider);

    auto* p = static_cast<char*>(allocator.allocate(64));
    ASSERT_NE(p, nullptr);
    std::memcpy(p, "payload", 8);

    // Aligned path: needs a fresh superblock of a bigger class.
    EXPECT_EQ(allocator.allocate_aligned(3000, 1024), nullptr);
    // Realloc to a huge size: fails, original block intact.
    EXPECT_EQ(allocator.reallocate(p, 1 << 20), nullptr);
    EXPECT_STREQ(p, "payload");
    allocator.deallocate(p);
    EXPECT_TRUE(allocator.check_invariants());
}

TEST(OomReclaim, HugeSizeOverflowIsOomNotCorruption)
{
    NativePolicy::rebind_thread_index(0);
    os::MmapPageProvider provider;
    NativeHoard allocator(small_config(), provider);
    // Near-SIZE_MAX requests would overflow the header arithmetic;
    // they must come back as nullptr, not wrap into a tiny mapping.
    EXPECT_EQ(
        allocator.allocate(std::numeric_limits<std::size_t>::max() - 8),
        nullptr);
    EXPECT_EQ(allocator.allocate(std::numeric_limits<std::size_t>::max() / 2),
              nullptr);
    EXPECT_EQ(allocator.stats().allocs.get(), 0u);
    EXPECT_EQ(provider.mapped_bytes(), 0u);
    EXPECT_TRUE(allocator.check_invariants());
}

TEST(OomReclaim, ReleaseFreeMemoryReturnsEverythingReclaimable)
{
    NativePolicy::rebind_thread_index(0);
    os::MmapPageProvider provider;
    Config config = small_config();
    config.thread_cache_blocks = 32;
    NativeHoard allocator(config, provider);

    std::vector<void*> blocks;
    for (int i = 0; i < 500; ++i)
        blocks.push_back(allocator.allocate(64));
    for (void* p : blocks)
        allocator.deallocate(p);

    // Nothing is live: a reclaim must return every mapped byte.
    std::size_t released = allocator.release_free_memory();
    EXPECT_GT(released, 0u);
    EXPECT_EQ(allocator.stats().held_bytes.current(), 0u);
    EXPECT_EQ(provider.mapped_bytes(), 0u);
    EXPECT_TRUE(allocator.check_invariants());

    // The allocator keeps working after a full purge.
    void* p = allocator.allocate(64);
    ASSERT_NE(p, nullptr);
    allocator.deallocate(p);
}

TEST(OomReclaim, BaselinesReturnNullGracefully)
{
    NativePolicy::rebind_thread_index(0);
    Config config;
    config.heap_count = 2;

    {
        os::MmapPageProvider inner;
        os::FaultInjectingPageProvider provider(inner);
        baselines::SerialAllocator<NativePolicy> alloc(config, provider);
        provider.fail_every_kth_map(1);
        EXPECT_EQ(alloc.allocate(64), nullptr);
        EXPECT_EQ(alloc.allocate(100 * 1024), nullptr);
        EXPECT_EQ(alloc.stats().allocs.get(), 0u);
        provider.clear_schedule();
        void* p = alloc.allocate(64);
        ASSERT_NE(p, nullptr);
        alloc.deallocate(p);
    }
    {
        os::MmapPageProvider inner;
        os::FaultInjectingPageProvider provider(inner);
        baselines::PurePrivateAllocator<NativePolicy> alloc(config,
                                                            provider);
        provider.fail_every_kth_map(1);
        EXPECT_EQ(alloc.allocate(64), nullptr);
        EXPECT_EQ(alloc.allocate(100 * 1024), nullptr);
        provider.clear_schedule();
        void* p = alloc.allocate(64);
        ASSERT_NE(p, nullptr);
        alloc.deallocate(p);
    }
    {
        os::MmapPageProvider inner;
        os::FaultInjectingPageProvider provider(inner);
        baselines::OwnershipAllocator<NativePolicy> alloc(config,
                                                          provider);
        provider.fail_every_kth_map(1);
        EXPECT_EQ(alloc.allocate(64), nullptr);
        EXPECT_EQ(alloc.allocate(100 * 1024), nullptr);
        provider.clear_schedule();
        void* p = alloc.allocate(64);
        ASSERT_NE(p, nullptr);
        alloc.deallocate(p);
    }
}

TEST(OomReclaim, PmrResourceThrowsBadAllocOnExhaustion)
{
    NativePolicy::rebind_thread_index(0);
    os::MmapPageProvider inner;
    os::CappedPageProvider provider(inner, 0);
    NativeHoard backend(small_config(), provider);
    HoardPmrResource resource(backend);
    EXPECT_THROW(resource.allocate(64), std::bad_alloc);
    EXPECT_THROW(resource.allocate(64, 64), std::bad_alloc);
    EXPECT_TRUE(backend.check_invariants());
}

TEST(OomReclaim, DebugAllocatorPropagatesInnerNull)
{
    NativePolicy::rebind_thread_index(0);
    os::MmapPageProvider inner;
    os::CappedPageProvider provider(inner, 0);
    NativeHoard backend(small_config(), provider);
    DebugAllocator debug(backend, DebugAllocator::OnError::count);
    EXPECT_EQ(debug.allocate(64), nullptr);
    EXPECT_EQ(debug.live_allocations(), 0u);
    // Canary-overflow guard: near-SIZE_MAX requests fail cleanly.
    EXPECT_EQ(
        debug.allocate(std::numeric_limits<std::size_t>::max() - 2),
        nullptr);
    EXPECT_EQ(debug.stats().allocs.get(), 0u);
}

}  // namespace
}  // namespace hoard
