/**
 * @file
 * Tests for the sharded global-heap slow path: per-size-class bins
 * with batched fetch/transfer, the class-keyed lock-free reuse cache,
 * and the drain/scavenge protocols that keep snapshots byte-exact.
 * The claims under test:
 *
 *  - a cold heap's fetch pulls up to Config::global_fetch_batch
 *    superblocks from its class's bin in one visit;
 *  - superblocks that empty inside a bin are retained there (still
 *    formatted) and release_free_memory scavenges them;
 *  - empty superblocks recycle through the cache within and across
 *    size classes without fresh OS mappings;
 *  - under multi-threaded churn that populates the bins, quiescent
 *    snapshots reconcile byte-exactly, every remote free is drained,
 *    and the emptiness invariant verdict stays green — in both the
 *    native and deterministic-sim worlds.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/hoard_allocator.h"
#include "obs/snapshot.h"
#include "policy/native_policy.h"
#include "policy/sim_policy.h"
#include "sim/machine.h"
#include "workloads/runners.h"

namespace hoard {
namespace {

using NativeHoard = HoardAllocator<NativePolicy>;
using SimHoard = HoardAllocator<SimPolicy>;

/** Paper-literal victim mode so partial superblocks reach the bins. */
Config
bin_config(int heaps)
{
    Config config;
    config.heap_count = heaps;
    config.empty_fraction = 0.25;
    config.release_threshold = 0.25;
    config.slack_superblocks = 0;
    config.global_fetch_batch = 4;
    return config;
}

/** Fills heap 1 with @p superblocks half-full superblocks of 64-byte
    blocks and lets the invariant sweep them into the global bin.
    Returns the still-live blocks. */
std::vector<void*>
populate_bin(NativeHoard& allocator, int superblocks)
{
    NativePolicy::rebind_thread_index(0);
    const std::size_t per_sb =
        Superblock::payload_bytes_for(
            allocator.config().superblock_bytes) /
        64;
    std::vector<void*> blocks;
    for (std::size_t i = 0;
         i < per_sb * static_cast<std::size_t>(superblocks); ++i)
        blocks.push_back(allocator.allocate(64));
    // Free every other block: each superblock turns half-empty, the
    // heap's occupancy ratio falls to 1/2 < (1 - f), and with K = 0
    // every free sweeps victims into the class bin.
    std::vector<void*> live;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        if (i % 2 == 0)
            allocator.deallocate(blocks[i]);
        else
            live.push_back(blocks[i]);
    }
    return live;
}

TEST(GlobalBins, BatchedFetchPullsMultipleSuperblocks)
{
    NativeHoard allocator(bin_config(2));
    std::vector<void*> live = populate_bin(allocator, 6);
    ASSERT_GT(allocator.heap_held(0), 0u)
        << "partial superblocks should have transferred to the bin";
    const std::uint64_t fetches0 =
        allocator.stats().global_fetches.get();
    const std::uint64_t hits0 =
        allocator.stats().global_bin_hits.get();

    // A different heap going cold on the same class: one allocation
    // must batch-pull several superblocks under one bin visit.
    NativePolicy::rebind_thread_index(1);
    ASSERT_EQ(allocator.my_heap_index(), 2);
    void* p = allocator.allocate(64);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(allocator.stats().global_bin_hits.get(), hits0 + 1);
    const std::uint64_t pulled =
        allocator.stats().global_fetches.get() - fetches0;
    EXPECT_GE(pulled, 2u) << "fetch did not batch";
    EXPECT_LE(pulled, allocator.config().global_fetch_batch);
    EXPECT_TRUE(allocator.check_invariants());

    allocator.deallocate(p);
    for (void* q : live)
        allocator.deallocate(q);
    EXPECT_EQ(allocator.stats().in_use_bytes.current(), 0u);
    EXPECT_TRUE(allocator.check_invariants());
}

TEST(GlobalBins, EmptiesRetainedInBinAndScavenged)
{
    NativeHoard allocator(bin_config(2));
    std::vector<void*> live = populate_bin(allocator, 6);

    // Free the rest.  The blocks' superblocks now live in the bin, so
    // these frees land there and the superblocks empty *inside* it —
    // retained in band 0, still formatted, never pushed to the
    // cross-class cache.
    for (void* q : live)
        allocator.deallocate(q);
    EXPECT_EQ(allocator.stats().in_use_bytes.current(), 0u);
    EXPECT_TRUE(allocator.check_invariants());
    EXPECT_GT(allocator.heap_held(0), 0u)
        << "bin should retain its emptied superblocks";

    obs::AllocatorSnapshot snap = allocator.take_snapshot();
    EXPECT_TRUE(snap.reconciles());
    EXPECT_EQ(snap.heaps[0].in_use, 0u);
    EXPECT_GT(snap.heaps[0].held, 0u);

    // A same-class refetch takes a retained superblock back without
    // a fresh mapping.
    const std::uint64_t maps0 =
        allocator.stats().superblock_allocs.get();
    void* p = allocator.allocate(64);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(allocator.stats().superblock_allocs.get(), maps0);
    allocator.deallocate(p);

    // Memory pressure scavenges the retained empties.
    const std::size_t released = allocator.release_free_memory();
    EXPECT_GT(released, 0u);
    EXPECT_EQ(allocator.heap_held(0), 0u);
    EXPECT_EQ(allocator.stats().held_bytes.current(), 0u);
    EXPECT_TRUE(allocator.check_invariants());
}

TEST(ReuseCache, SameClassRoundTripSkipsTheOs)
{
    Config config;
    config.heap_count = 2;
    config.slack_superblocks = 0;
    NativeHoard allocator(config);
    NativePolicy::rebind_thread_index(0);

    std::vector<void*> blocks;
    for (int i = 0; i < 1000; ++i)
        blocks.push_back(allocator.allocate(64));
    for (void* p : blocks)
        allocator.deallocate(p);
    blocks.clear();
    ASSERT_GT(allocator.stats().cache_pushes.get(), 0u);

    // Same class again: every superblock comes back out of the keyed
    // cache, already formatted — no OS traffic.
    const std::uint64_t maps0 =
        allocator.stats().superblock_allocs.get();
    const std::uint64_t pops0 = allocator.stats().cache_pops.get();
    for (int i = 0; i < 1000; ++i)
        blocks.push_back(allocator.allocate(64));
    EXPECT_EQ(allocator.stats().superblock_allocs.get(), maps0);
    EXPECT_GT(allocator.stats().cache_pops.get(), pops0);

    for (void* p : blocks)
        allocator.deallocate(p);
    EXPECT_TRUE(allocator.check_invariants());
}

TEST(ReuseCache, CrossClassStealRecyclesFormattedSpans)
{
    Config config;
    config.heap_count = 2;
    config.slack_superblocks = 0;
    NativeHoard allocator(config);
    NativePolicy::rebind_thread_index(0);

    std::vector<void*> blocks;
    for (int i = 0; i < 1000; ++i)
        blocks.push_back(allocator.allocate(64));
    for (void* p : blocks)
        allocator.deallocate(p);
    blocks.clear();

    // A different class finds its own stack empty and steals from the
    // 64-byte class's stack — still no OS traffic.
    const std::uint64_t maps0 =
        allocator.stats().superblock_allocs.get();
    const std::uint64_t pops0 = allocator.stats().cache_pops.get();
    for (int i = 0; i < 200; ++i)
        blocks.push_back(allocator.allocate(256));
    EXPECT_EQ(allocator.stats().superblock_allocs.get(), maps0);
    EXPECT_GT(allocator.stats().cache_pops.get(), pops0);

    for (void* p : blocks)
        allocator.deallocate(p);
    EXPECT_TRUE(allocator.check_invariants());
}

TEST(GlobalHeapStress, NativeChurnReconcilesWithBinsPopulated)
{
    constexpr int kThreads = 4;
    constexpr int kBlocks = 600;
    NativeHoard allocator(bin_config(kThreads));

    // Phase 1: every thread allocates its own size mix, then frees
    // every other block — partial superblocks stream into the bins
    // while the survivors pin them partially full.
    std::vector<std::vector<void*>> live(kThreads);
    workloads::native_run(kThreads, [&](int tid) {
        NativePolicy::rebind_thread_index(tid);
        const std::size_t bytes = 64u << (tid % 3);
        std::vector<void*> mine;
        for (int i = 0; i < kBlocks; ++i)
            mine.push_back(allocator.allocate(bytes));
        for (std::size_t i = 0; i < mine.size(); ++i) {
            if (i % 2 == 0)
                allocator.deallocate(mine[i]);
            else
                live[static_cast<std::size_t>(tid)].push_back(mine[i]);
        }
    });

    obs::AllocatorSnapshot snap = allocator.take_snapshot();
    EXPECT_GT(snap.heaps[0].held, 0u) << "bins are not populated";
    EXPECT_TRUE(snap.reconciles());
    EXPECT_TRUE(snap.all_heaps_satisfy_invariant());
    EXPECT_EQ(snap.stats.remote_frees, snap.stats.remote_drains);

    // Phase 2: threads free their *neighbor's* survivors, forcing
    // cross-thread frees into foreign heaps and the bins.
    workloads::native_run(kThreads, [&](int tid) {
        NativePolicy::rebind_thread_index(tid);
        auto& victim = live[static_cast<std::size_t>(
            (tid + 1) % kThreads)];
        for (void* p : victim)
            allocator.deallocate(p);
    });

    // remote_frees may legitimately be zero on a single-core host
    // (frees only queue when the owner lock is observed busy); the
    // invariant is that whatever queued was drained.
    snap = allocator.take_snapshot();
    EXPECT_EQ(snap.stats.in_use_bytes, 0u);
    EXPECT_TRUE(snap.reconciles());
    EXPECT_TRUE(snap.all_heaps_satisfy_invariant());
    EXPECT_EQ(snap.stats.remote_frees, snap.stats.remote_drains);
    EXPECT_TRUE(allocator.check_invariants());
}

TEST(GlobalHeapStress, SimChurnReconcilesWithBinsPopulated)
{
    constexpr int kThreads = 4;
    SimHoard allocator(bin_config(kThreads));

    std::vector<std::vector<void*>> live(kThreads);
    std::uint64_t makespan = workloads::sim_run(
        kThreads, kThreads, [&](int tid) {
            const std::size_t bytes = 64u << (tid % 3);
            std::vector<void*> mine;
            for (int i = 0; i < 400; ++i)
                mine.push_back(allocator.allocate(bytes));
            for (std::size_t i = 0; i < mine.size(); ++i) {
                if (i % 2 == 0)
                    allocator.deallocate(mine[i]);
                else
                    live[static_cast<std::size_t>(tid)].push_back(
                        mine[i]);
            }
        });
    EXPECT_GT(makespan, 0u);

    // Lock-taking introspection runs on a simulated thread.
    obs::AllocatorSnapshot snap;
    sim::Machine checker(1);
    checker.spawn(0, 0, [&allocator, &snap] {
        snap = allocator.take_snapshot();
        EXPECT_TRUE(allocator.check_invariants());
    });
    checker.run();

    EXPECT_GT(snap.heaps[0].held, 0u) << "bins are not populated";
    EXPECT_TRUE(snap.reconciles());
    EXPECT_TRUE(snap.all_heaps_satisfy_invariant());
    EXPECT_EQ(snap.stats.remote_frees, snap.stats.remote_drains);

    // Cross-fiber frees, then byte-exact quiescence.
    workloads::sim_run(kThreads, kThreads, [&](int tid) {
        auto& victim = live[static_cast<std::size_t>(
            (tid + 1) % kThreads)];
        for (void* p : victim)
            allocator.deallocate(p);
    });
    sim::Machine final_checker(1);
    final_checker.spawn(0, 0, [&allocator, &snap] {
        snap = allocator.take_snapshot();
        EXPECT_TRUE(allocator.check_invariants());
    });
    final_checker.run();
    EXPECT_EQ(snap.stats.in_use_bytes, 0u);
    EXPECT_TRUE(snap.reconciles());
    EXPECT_EQ(snap.stats.remote_frees, snap.stats.remote_drains);
}

}  // namespace
}  // namespace hoard
