/**
 * @file
 * Tests for the thread-cache extension (Config::thread_cache_blocks):
 * correctness under caching, bounded cache growth, flush semantics,
 * and stat accounting — plus the behavioral point of the feature:
 * cached operations bypass the heaps entirely.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/memutil.h"
#include "common/rng.h"
#include "core/hoard_allocator.h"
#include "policy/native_policy.h"
#include "workloads/runners.h"

namespace hoard {
namespace {

using NativeHoard = HoardAllocator<NativePolicy>;

Config
cached_config(std::uint32_t cache_blocks = 32)
{
    Config config;
    config.heap_count = 4;
    config.thread_cache_blocks = cache_blocks;
    return config;
}

TEST(ThreadCache, RoundTripAndPatterns)
{
    NativeHoard allocator(cached_config());
    std::vector<void*> blocks;
    std::set<void*> seen;
    for (int i = 0; i < 3000; ++i) {
        void* p = allocator.allocate(48);
        ASSERT_NE(p, nullptr);
        EXPECT_TRUE(seen.insert(p).second);
        detail::pattern_fill(p, 48, static_cast<std::uint64_t>(i));
        blocks.push_back(p);
    }
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        EXPECT_TRUE(detail::pattern_check(blocks[i], 48, i));
        allocator.deallocate(blocks[i]);
    }
    allocator.flush_thread_caches();
    EXPECT_EQ(allocator.stats().in_use_bytes.current(), 0u);
    EXPECT_EQ(allocator.stats().cached_bytes.current(), 0u);
    EXPECT_TRUE(allocator.check_invariants());
}

TEST(ThreadCache, HitBypassesHeaps)
{
    NativeHoard allocator(cached_config());
    // Prime: one allocation reaches the heap and comes back via cache.
    void* p = allocator.allocate(64);
    allocator.deallocate(p);
    std::uint64_t heap_ops_before = allocator.stats().global_fetches.get();
    std::uint64_t sb_before = allocator.stats().superblock_allocs.get();
    for (int i = 0; i < 1000; ++i) {
        void* q = allocator.allocate(64);
        EXPECT_EQ(q, p) << "cache must serve the hot block";
        allocator.deallocate(q);
    }
    EXPECT_EQ(allocator.stats().superblock_allocs.get(), sb_before);
    EXPECT_EQ(allocator.stats().global_fetches.get(), heap_ops_before);
}

TEST(ThreadCache, CacheIsBounded)
{
    const std::uint32_t cap = 16;
    NativeHoard allocator(cached_config(cap));
    std::vector<void*> blocks;
    for (int i = 0; i < 500; ++i)
        blocks.push_back(allocator.allocate(128));
    for (void* p : blocks)
        allocator.deallocate(p);
    // At most cap blocks per class per slot may linger.
    std::size_t cache_slots = 2 * 4;  // 2 * heap_count
    EXPECT_LE(allocator.stats().cached_bytes.current(),
              cache_slots * cap * 128);
}

TEST(ThreadCache, SpillKeepsEverythingReachable)
{
    const std::uint32_t cap = 8;
    NativeHoard allocator(cached_config(cap));
    detail::Rng rng(5);
    std::vector<std::pair<void*, std::size_t>> live;
    for (int op = 0; op < 20000; ++op) {
        if (live.size() < 300 || rng.chance(0.5)) {
            std::size_t size = rng.range(1, 1000);
            void* p = allocator.allocate(size);
            detail::pattern_fill(p, size, size + 1);
            live.emplace_back(p, size);
        } else {
            auto idx = static_cast<std::size_t>(rng.below(live.size()));
            EXPECT_TRUE(detail::pattern_check(
                live[idx].first, live[idx].second, live[idx].second + 1));
            allocator.deallocate(live[idx].first);
            live[idx] = live.back();
            live.pop_back();
        }
    }
    for (auto& [p, size] : live)
        allocator.deallocate(p);
    allocator.flush_thread_caches();
    EXPECT_EQ(allocator.stats().in_use_bytes.current(), 0u);
    EXPECT_EQ(allocator.stats().cached_bytes.current(), 0u);
    EXPECT_TRUE(allocator.check_invariants());
}

TEST(ThreadCache, CrossThreadChurnStaysCorrect)
{
    NativeHoard allocator(cached_config());
    std::vector<void*> blocks(2000);
    workloads::native_run(2, [&](int tid) {
        NativePolicy::rebind_thread_index(tid);
        if (tid == 0) {
            for (auto& p : blocks) {
                p = allocator.allocate(56);
                detail::pattern_fill(p, 56, 9);
            }
        }
    });
    workloads::native_run(2, [&](int tid) {
        NativePolicy::rebind_thread_index(tid + 1);
        if (tid == 0) {
            for (void* p : blocks) {
                EXPECT_TRUE(detail::pattern_check(p, 56, 9));
                allocator.deallocate(p);
            }
        }
    });
    allocator.flush_thread_caches();
    EXPECT_EQ(allocator.stats().in_use_bytes.current(), 0u);
    EXPECT_TRUE(allocator.check_invariants());
}

TEST(ThreadCache, AlignedBlocksCacheWholeBlocks)
{
    NativeHoard allocator(cached_config());
    // An aligned allocation returns an interior pointer; freeing it
    // must cache the *whole* block so the next hit is a valid block.
    void* p = allocator.allocate_aligned(100, 256);
    EXPECT_TRUE(detail::is_aligned(p, 256));
    allocator.deallocate(p);
    void* q = allocator.allocate(300);  // any class reuse is fine
    detail::pattern_fill(q, 300, 2);
    EXPECT_TRUE(detail::pattern_check(q, 300, 2));
    allocator.deallocate(q);
    allocator.flush_thread_caches();
    EXPECT_TRUE(allocator.check_invariants());
}

TEST(ThreadCache, DisabledByDefault)
{
    Config config;
    EXPECT_EQ(config.thread_cache_blocks, 0u);
    NativeHoard allocator(config);
    void* p = allocator.allocate(64);
    allocator.deallocate(p);
    EXPECT_EQ(allocator.stats().cached_bytes.peak(), 0u);
    allocator.flush_thread_caches();  // must be a harmless no-op
}

}  // namespace
}  // namespace hoard
