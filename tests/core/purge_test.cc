/**
 * @file
 * Purge-pass unit tests: decommit accounting (committed + purged ==
 * held), revival on the fetch path, RSS targeting, the deallocate-tail
 * cadence, provider-refusal rollback, and byte-identical replay under
 * the simulated policy.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "common/memutil.h"
#include "core/hoard_allocator.h"
#include "os/fault_injection.h"
#include "os/page_provider.h"
#include "os/reserved_arena.h"
#include "policy/native_policy.h"
#include "policy/sim_policy.h"
#include "sim/machine.h"

namespace hoard {
namespace {

using NativeHoard = HoardAllocator<NativePolicy>;
using SimHoard = HoardAllocator<SimPolicy>;

constexpr std::size_t kSuperblock = std::size_t{64} << 10;
constexpr std::size_t kBlock = 512;
constexpr int kSpikeBlocks = 4000;  // ~34 superblocks at 512 B

/** 64 KiB superblocks so a purged span gives back 15/16 of its pages
    (at the 8 KiB default the header page would be half the span). */
Config
purge_config()
{
    Config config;
    config.heap_count = 1;
    config.superblock_bytes = kSuperblock;
    config.slack_superblocks = 1;
    return config;
}

/** Test-local arenas: 4 MiB reservations instead of 1 GiB. */
os::ReservedArenaProvider::Options
small_arena()
{
    os::ReservedArenaProvider::Options o;
    o.arena_bytes = std::size_t{8} << 20;
    o.max_span_bytes = std::size_t{1} << 20;
    return o;
}

/** Spike: allocate, touch, and free @p count blocks, then flush. */
template <typename Allocator>
void
spike_and_free(Allocator& allocator, int count)
{
    std::vector<void*> blocks;
    blocks.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        void* p = allocator.allocate(kBlock);
        ASSERT_NE(p, nullptr);
        detail::pattern_fill(p, kBlock, static_cast<std::uint64_t>(i));
        blocks.push_back(p);
    }
    for (void* p : blocks)
        allocator.deallocate(p);
    allocator.flush_thread_caches();
}

TEST(PurgePass, ForcePurgeDecommitsAndReconciles)
{
    NativePolicy::rebind_thread_index(0);
    os::ReservedArenaProvider provider(small_arena());
    NativeHoard allocator(purge_config(), provider);
    spike_and_free(allocator, kSpikeBlocks);

    obs::AllocatorSnapshot before = allocator.take_snapshot();
    ASSERT_TRUE(before.reconciles());
    EXPECT_EQ(before.stats.purged_bytes, 0u);
    EXPECT_GT(before.stats.committed_bytes, 10 * kSuperblock);

    const std::size_t released = allocator.purge(/*force=*/true);
    EXPECT_GT(released, 0u);

    obs::AllocatorSnapshot after = allocator.take_snapshot();
    EXPECT_TRUE(after.reconciles());
    // The byte-exact ledger: what purge reported moved, gauge for
    // gauge, from committed to purged; held never changed.
    EXPECT_EQ(after.stats.purged_bytes, released);
    EXPECT_EQ(after.stats.committed_bytes + released,
              before.stats.committed_bytes);
    EXPECT_EQ(after.stats.held_bytes, before.stats.held_bytes);
    // The allocator's committed gauge mirrors the provider's.
    EXPECT_EQ(after.stats.committed_bytes, provider.mapped_bytes());
    EXPECT_GE(allocator.stats().purge_passes.get(), 1u);
    EXPECT_GT(allocator.stats().purged_superblocks.get(), 0u);
    EXPECT_TRUE(allocator.check_invariants());
}

TEST(PurgePass, PurgedSuperblocksReviveIntoService)
{
    NativePolicy::rebind_thread_index(0);
    os::ReservedArenaProvider provider(small_arena());
    NativeHoard allocator(purge_config(), provider);
    spike_and_free(allocator, kSpikeBlocks);
    ASSERT_GT(allocator.purge(/*force=*/true), 0u);
    ASSERT_GT(allocator.stats().purged_bytes.current(), 0u);

    // A second spike must adopt the purged superblocks: memory comes
    // back zero-refaulted and fully usable, the purged gauge drains,
    // and the ledger still reconciles.
    std::vector<void*> blocks;
    for (int i = 0; i < kSpikeBlocks; ++i) {
        void* p = allocator.allocate(kBlock);
        ASSERT_NE(p, nullptr);
        detail::pattern_fill(p, kBlock, static_cast<std::uint64_t>(i));
        blocks.push_back(p);
    }
    EXPECT_GT(allocator.stats().revived_superblocks.get(), 0u);
    for (std::size_t i = 0; i < blocks.size(); ++i)
        EXPECT_TRUE(detail::pattern_check(blocks[i], kBlock, i));

    obs::AllocatorSnapshot snap = allocator.take_snapshot();
    EXPECT_TRUE(snap.reconciles());
    for (void* p : blocks)
        allocator.deallocate(p);
    EXPECT_TRUE(allocator.check_invariants());
}

TEST(PurgePass, RssTargetStopsAtTheLine)
{
    NativePolicy::rebind_thread_index(0);
    os::ReservedArenaProvider provider(small_arena());
    Config config = purge_config();
    config.rss_target_bytes = 16 * kSuperblock;  // 1 MiB
    // The target also arms the deallocate-tail cadence; on a slow run
    // (sanitizers) the spike's free loop outlasts the interval and a
    // cadence pass purges toward the target before the assertions
    // below.  Park it — this test is about the explicit purge().
    config.purge_interval_ticks = std::uint64_t{1} << 62;
    NativeHoard allocator(config, provider);
    spike_and_free(allocator, kSpikeBlocks);
    ASSERT_GT(allocator.stats().committed_bytes.current(),
              config.rss_target_bytes);

    allocator.purge();
    // Eligibility re-reads the committed gauge per superblock, so the
    // pass decommits just enough to cross the target and then stops —
    // within one superblock of the line, not all the way to zero.
    const std::size_t committed =
        allocator.stats().committed_bytes.current();
    EXPECT_LE(committed, config.rss_target_bytes);
    EXPECT_GT(committed + 2 * kSuperblock, config.rss_target_bytes);
    EXPECT_TRUE(allocator.take_snapshot().reconciles());
    EXPECT_TRUE(allocator.check_invariants());
}

TEST(PurgePass, AgeEligibilityPurgesRetiredEmpties)
{
    NativePolicy::rebind_thread_index(0);
    os::ReservedArenaProvider provider(small_arena());
    Config config = purge_config();
    config.purge_age_ticks = 1;  // everything retired is instantly old
    NativeHoard allocator(config, provider);
    spike_and_free(allocator, kSpikeBlocks);

    EXPECT_GT(allocator.purge(), 0u);
    EXPECT_GT(allocator.stats().purged_bytes.current(), 0u);
    EXPECT_TRUE(allocator.take_snapshot().reconciles());
}

TEST(PurgePass, DeallocateTailCadenceRunsPasses)
{
    NativePolicy::rebind_thread_index(0);
    os::ReservedArenaProvider provider(small_arena());
    Config config = purge_config();
    config.rss_target_bytes = 1;  // armed, always over target
    config.purge_interval_ticks = 1;
    NativeHoard allocator(config, provider);
    spike_and_free(allocator, kSpikeBlocks);
    const std::size_t before =
        allocator.stats().committed_bytes.current();

    // No explicit purge() call: the free-path cadence (one check per
    // 1024 frees per thread) must elect a pass by itself.
    for (int i = 0; i < 8192; ++i) {
        void* p = allocator.allocate(64);
        ASSERT_NE(p, nullptr);
        allocator.deallocate(p);
    }
    EXPECT_GE(allocator.stats().purge_passes.get(), 1u);
    EXPECT_LT(allocator.stats().committed_bytes.current(), before);
    EXPECT_TRUE(allocator.check_invariants());
}

TEST(PurgePass, ProviderRefusalRollsBackCleanly)
{
    NativePolicy::rebind_thread_index(0);
    os::MmapPageProvider inner;
    os::FaultInjectingPageProvider provider(inner);
    NativeHoard allocator(purge_config(), provider);
    spike_and_free(allocator, kSpikeBlocks);
    const std::size_t committed =
        allocator.stats().committed_bytes.current();

    // madvise refuses: the pass must report zero bytes, leave every
    // gauge untouched, and keep the superblocks purgeable later.
    provider.set_fail_purges(true);
    EXPECT_EQ(allocator.purge(/*force=*/true), 0u);
    EXPECT_GT(provider.injected_purge_failures(), 0u);
    EXPECT_EQ(allocator.stats().purged_bytes.current(), 0u);
    EXPECT_EQ(allocator.stats().committed_bytes.current(), committed);
    EXPECT_EQ(allocator.stats().purged_superblocks.get(), 0u);
    EXPECT_TRUE(allocator.take_snapshot().reconciles());

    // The allocator still serves traffic after the failed pass...
    void* p = allocator.allocate(kBlock);
    ASSERT_NE(p, nullptr);
    allocator.deallocate(p);

    // ...and the same superblocks purge once the provider recovers.
    provider.set_fail_purges(false);
    EXPECT_GT(allocator.purge(/*force=*/true), 0u);
    EXPECT_TRUE(allocator.take_snapshot().reconciles());
    EXPECT_TRUE(allocator.check_invariants());
}

TEST(PurgePass, SimReplayIsByteIdentical)
{
    // The purge pass exists in both policies: identical simulated runs
    // must produce identical makespans (CostKind::os_purge is charged
    // per decommit) and identical footprint ledgers.
    auto run_once = [] {
        os::MmapPageProvider provider;
        Config config;
        config.heap_count = 2;
        config.superblock_bytes = kSuperblock;
        SimHoard allocator(config, provider);
        sim::Machine machine(2);
        std::size_t released = 0;
        machine.spawn(0, 0, [&allocator, &released] {
            std::vector<void*> blocks;
            for (int i = 0; i < 2000; ++i) {
                void* p = allocator.allocate(256);
                ASSERT_NE(p, nullptr);
                blocks.push_back(p);
            }
            for (void* p : blocks)
                allocator.deallocate(p);
            released = allocator.purge(/*force=*/true);
        });
        const std::uint64_t makespan = machine.run();
        return std::make_tuple(
            makespan, released,
            allocator.stats().committed_bytes.current(),
            allocator.stats().purged_bytes.current(),
            allocator.stats().purged_superblocks.get());
    };

    const auto first = run_once();
    const auto second = run_once();
    EXPECT_GT(std::get<1>(first), 0u);
    EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace hoard
