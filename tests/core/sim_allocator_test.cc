/**
 * @file
 * HoardAllocator<SimPolicy> unit tests: the allocator running on the
 * virtual-time machine — correctness of the simulated instantiation,
 * determinism, and the cost-model interactions the speedup figures
 * depend on.
 */

#include <gtest/gtest.h>

#include <vector>

#include "baselines/factory.h"
#include "common/memutil.h"
#include "common/rng.h"
#include "core/hoard_allocator.h"
#include "policy/sim_policy.h"
#include "sim/machine.h"
#include "sim/virtual_event.h"

namespace hoard {
namespace {

using SimHoard = HoardAllocator<SimPolicy>;

Config
sim_config(int heaps)
{
    Config config;
    config.heap_count = heaps;
    return config;
}

TEST(SimAllocator, BasicRoundTripUnderMachine)
{
    SimHoard allocator(sim_config(2));
    sim::Machine machine(2);
    machine.spawn(0, 0, [&allocator] {
        std::vector<void*> blocks;
        for (int i = 0; i < 500; ++i) {
            void* p = allocator.allocate(64);
            ASSERT_NE(p, nullptr);
            detail::pattern_fill(p, 64, 1);
            blocks.push_back(p);
        }
        for (void* p : blocks) {
            EXPECT_TRUE(detail::pattern_check(p, 64, 1));
            allocator.deallocate(p);
        }
    });
    std::uint64_t makespan = machine.run();
    EXPECT_GT(makespan, 0u);
    EXPECT_EQ(allocator.stats().in_use_bytes.current(), 0u);
}

TEST(SimAllocator, MakespanDeterministicAcrossRuns)
{
    auto run_once = [] {
        SimHoard allocator(sim_config(4));
        sim::Machine machine(4);
        for (int t = 0; t < 4; ++t) {
            machine.spawn(t, t, [&allocator] {
                std::vector<void*> blocks;
                for (int i = 0; i < 200; ++i)
                    blocks.push_back(allocator.allocate(48));
                for (void* p : blocks)
                    allocator.deallocate(p);
            });
        }
        return machine.run();
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(SimAllocator, SeparateHeapsDoNotContend)
{
    SimHoard allocator(sim_config(2));
    sim::Machine machine(2);
    for (int t = 0; t < 2; ++t) {
        machine.spawn(t, t, [&allocator] {
            for (int i = 0; i < 300; ++i) {
                void* p = allocator.allocate(32);
                allocator.deallocate(p);
            }
        });
    }
    machine.run();
    EXPECT_EQ(machine.lock_contentions(), 0u)
        << "threads on distinct heaps must not contend";
}

TEST(SimAllocator, SharedHeapContends)
{
    // Both simulated threads carry the same logical tid, forcing them
    // onto one heap: the heap mutex must show contention.
    SimHoard allocator(sim_config(4));
    sim::Machine machine(2);
    for (int t = 0; t < 2; ++t) {
        machine.spawn(t, /*logical_tid=*/0, [&allocator] {
            for (int i = 0; i < 300; ++i) {
                void* p = allocator.allocate(32);
                allocator.deallocate(p);
            }
        });
    }
    machine.run();
    EXPECT_GT(machine.lock_contentions(), 0u);
}

TEST(SimAllocator, CrossThreadFreeCostsRemoteTransfers)
{
    SimHoard allocator(sim_config(2));
    std::vector<void*> blocks;

    sim::Machine machine(2);
    sim::VirtualEvent handoff;
    machine.spawn(0, 0, [&] {
        for (int i = 0; i < 100; ++i) {
            void* p = allocator.allocate(64);
            SimPolicy::touch(p, 64, true);
            blocks.push_back(p);
        }
        handoff.signal();
    });
    machine.spawn(1, 1, [&] {
        handoff.wait();
        for (void* p : blocks)
            allocator.deallocate(p);
    });
    machine.run();
    EXPECT_GT(machine.cache().remote_transfers(), 50u)
        << "freeing another proc's blocks must move their lines";
}

TEST(SimAllocator, InvariantsHoldAfterSimulatedChurn)
{
    SimHoard allocator(sim_config(4));
    sim::Machine machine(4);
    for (int t = 0; t < 4; ++t) {
        machine.spawn(t, t, [&allocator, t] {
            detail::Rng rng(static_cast<std::uint64_t>(t) + 1);
            std::vector<void*> live;
            for (int op = 0; op < 2000; ++op) {
                if (live.size() < 100 || rng.chance(0.5)) {
                    live.push_back(
                        allocator.allocate(rng.range(1, 700)));
                } else {
                    auto idx = static_cast<std::size_t>(
                        rng.below(live.size()));
                    allocator.deallocate(live[idx]);
                    live[idx] = live.back();
                    live.pop_back();
                }
            }
            for (void* p : live)
                allocator.deallocate(p);
        });
    }
    machine.run();
    EXPECT_EQ(allocator.stats().in_use_bytes.current(), 0u);
    // check_invariants locks VirtualMutexes, so it must run inside a
    // machine.
    sim::Machine checker(1);
    checker.spawn(0, 0,
                  [&allocator] { allocator.check_invariants(); });
    checker.run();
}

TEST(SimAllocator, AllBaselinesRunUnderSim)
{
    for (auto kind : baselines::kAllKinds) {
        Config config = sim_config(4);
        auto allocator =
            baselines::make_allocator<SimPolicy>(kind, config);
        sim::Machine machine(4);
        for (int t = 0; t < 4; ++t) {
            machine.spawn(t, t, [&allocator] {
                std::vector<void*> blocks;
                for (int i = 0; i < 150; ++i)
                    blocks.push_back(allocator->allocate(
                        static_cast<std::size_t>(i % 500) + 1));
                for (void* p : blocks)
                    allocator->deallocate(p);
            });
        }
        std::uint64_t makespan = machine.run();
        EXPECT_GT(makespan, 0u) << baselines::to_string(kind);
        EXPECT_EQ(allocator->stats().in_use_bytes.current(), 0u)
            << baselines::to_string(kind);
    }
}

TEST(SimAllocator, ThreadCacheWorksUnderSim)
{
    Config config = sim_config(2);
    config.thread_cache_blocks = 16;
    SimHoard allocator(config);
    sim::Machine machine(2);
    for (int t = 0; t < 2; ++t) {
        machine.spawn(t, t, [&allocator] {
            for (int i = 0; i < 400; ++i) {
                void* p = allocator.allocate(64);
                allocator.deallocate(p);
            }
        });
    }
    machine.run();
    EXPECT_GT(allocator.stats().cached_bytes.peak(), 0u);
    sim::Machine flusher(1);
    flusher.spawn(0, 0,
                  [&allocator] { allocator.flush_thread_caches(); });
    flusher.run();
    EXPECT_EQ(allocator.stats().cached_bytes.current(), 0u);
}

}  // namespace
}  // namespace hoard
