/**
 * @file
 * Unit tests for the background engine's plumbing: the WorkHintQueue's
 * packing/drop/clear semantics and the BackgroundEngine lifecycle —
 * arm/disarm idempotence, the idle-wakeup cadence, kick(), and the
 * sim world's inert-engine / worker-fiber analogue.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>

#include "core/background.h"
#include "core/hoard_allocator.h"
#include "policy/native_policy.h"
#include "policy/sim_policy.h"
#include "sim/machine.h"

namespace hoard {
namespace {

using NativeHoard = HoardAllocator<NativePolicy>;
using SimHoard = HoardAllocator<SimPolicy>;
using detail::WorkHintQueue;

/** Polls @p done every millisecond for up to ~5 s. */
template <typename Predicate>
bool
eventually(Predicate done)
{
    for (int i = 0; i < 5000; ++i) {
        if (done())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return done();
}

TEST(WorkHintQueue, FifoOrderAndPacking)
{
    WorkHintQueue queue;
    EXPECT_EQ(queue.pop(), 0u);  // empty: the reserved sentinel

    EXPECT_TRUE(queue.push(WorkHintQueue::Kind::refill, 7));
    EXPECT_TRUE(queue.push(WorkHintQueue::Kind::refill, 0x00ffffffu));

    std::uint32_t hint = queue.pop();
    ASSERT_NE(hint, 0u);
    EXPECT_EQ(WorkHintQueue::kind_of(hint), WorkHintQueue::Kind::refill);
    EXPECT_EQ(WorkHintQueue::arg_of(hint), 7u);

    hint = queue.pop();
    ASSERT_NE(hint, 0u);
    EXPECT_EQ(WorkHintQueue::arg_of(hint), 0x00ffffffu);
    EXPECT_EQ(queue.pop(), 0u);
}

TEST(WorkHintQueue, FullRingDropsAndCounts)
{
    WorkHintQueue queue;
    for (std::size_t i = 0; i < WorkHintQueue::kSlots; ++i)
        EXPECT_TRUE(queue.push(WorkHintQueue::Kind::refill,
                               static_cast<std::uint32_t>(i)));
    EXPECT_EQ(queue.dropped(), 0u);
    EXPECT_FALSE(queue.push(WorkHintQueue::Kind::refill, 999));
    EXPECT_FALSE(queue.push(WorkHintQueue::Kind::refill, 999));
    EXPECT_EQ(queue.dropped(), 2u);

    // Popping one slot makes the ring writable again.
    EXPECT_EQ(WorkHintQueue::arg_of(queue.pop()), 0u);
    EXPECT_TRUE(queue.push(WorkHintQueue::Kind::refill, 999));

    // FIFO across the wrap: the oldest survivors come out first.
    EXPECT_EQ(WorkHintQueue::arg_of(queue.pop()), 1u);
}

TEST(WorkHintQueue, ClearEmptiesTheRing)
{
    WorkHintQueue queue;
    for (std::uint32_t i = 0; i < 10; ++i)
        queue.push(WorkHintQueue::Kind::refill, i);
    queue.clear();
    EXPECT_EQ(queue.pop(), 0u);
    // And the ring is fully reusable afterwards.
    EXPECT_TRUE(queue.push(WorkHintQueue::Kind::refill, 42));
    EXPECT_EQ(WorkHintQueue::arg_of(queue.pop()), 42u);
}

TEST(BackgroundEngine, DisarmedStartIsANoop)
{
    Config config;  // background_engine defaults to false
    NativeHoard allocator(config);
    EXPECT_FALSE(allocator.background_armed());
    allocator.start_background();
    EXPECT_FALSE(allocator.background_running());
    allocator.stop_background();  // and stop is safe too
}

TEST(BackgroundEngine, StartStopIdempotent)
{
    Config config;
    config.background_engine = true;
    config.bg_interval_ticks = 1000000;  // 1 ms
    NativeHoard allocator(config);
    EXPECT_TRUE(allocator.background_armed());
    EXPECT_FALSE(allocator.background_running());

    allocator.start_background();
    EXPECT_TRUE(allocator.background_running());
    allocator.start_background();  // no second worker
    EXPECT_TRUE(allocator.background_running());

    allocator.stop_background();
    EXPECT_FALSE(allocator.background_running());
    allocator.stop_background();  // idempotent
    EXPECT_FALSE(allocator.background_running());

    // Restart after a stop works.
    allocator.start_background();
    EXPECT_TRUE(allocator.background_running());
    allocator.stop_background();
}

TEST(BackgroundEngine, IdleWakeupCadence)
{
    Config config;
    config.background_engine = true;
    config.bg_interval_ticks = 1000000;  // 1 ms between passes
    NativeHoard allocator(config);
    allocator.start_background();

    // The worker passes on its own cadence with no foreground traffic
    // at all — the interval wait, not a kick, drives it.
    EXPECT_TRUE(
        eventually([&] { return allocator.background_passes() >= 3; }));
    allocator.stop_background();

    const std::uint64_t settled = allocator.background_passes();
    EXPECT_GE(settled, 3u);
    // Engine and allocator count the same passes.
    EXPECT_EQ(allocator.stats().bg_wakeups.get(), settled);
}

TEST(BackgroundEngine, KickForcesAPass)
{
    Config config;
    config.background_engine = true;
    // An interval no test run reaches: only kicks advance the worker
    // past its first pass.
    config.bg_interval_ticks = ~std::uint64_t{0} / 4;
    NativeHoard allocator(config);
    allocator.start_background();

    // One pass runs at startup before the first wait.
    ASSERT_TRUE(
        eventually([&] { return allocator.background_passes() >= 1; }));
    const std::uint64_t before = allocator.background_passes();
    allocator.kick_background();
    EXPECT_TRUE(eventually(
        [&] { return allocator.background_passes() > before; }));
    allocator.stop_background();
}

TEST(BackgroundEngine, SimEngineIsInertAndFiberStepsInline)
{
    Config config;
    config.background_engine = true;
    SimHoard allocator(config);
    EXPECT_TRUE(allocator.background_armed());

    // No native thread exists under SimPolicy: start is a no-op.
    allocator.start_background();
    EXPECT_FALSE(allocator.background_running());

    // The deterministic analogue: a fiber runs bg_step() inline.
    sim::Machine machine(1);
    machine.spawn(0, 0, [&allocator] {
        SimPolicy::rebind_thread_index(0);
        allocator.bg_worker_sim(3);
    });
    machine.run();
    EXPECT_EQ(allocator.stats().bg_wakeups.get(), 3u);
}

}  // namespace
}  // namespace hoard
