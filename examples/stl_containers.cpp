/**
 * @file
 * Example: pooling standard-container memory in Hoard.
 *
 * Demonstrates hoard::StlAllocator with vector/map/string across
 * multiple threads — the "multithreaded C++ application" the paper's
 * title is about — and compares the footprint Hoard retains against a
 * baseline after a burst of container churn.
 *
 * Build & run:  ./build/examples/stl_containers
 */

#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "baselines/serial_allocator.h"
#include "core/hoard_allocator.h"
#include "core/stl_allocator.h"
#include "metrics/table.h"
#include "policy/native_policy.h"

namespace {

using namespace hoard;

template <typename T>
using HVector = std::vector<T, StlAllocator<T>>;

using HString =
    std::basic_string<char, std::char_traits<char>, StlAllocator<char>>;

/** Bursty per-thread container churn through @p backend. */
void
churn(Allocator& backend, int tid)
{
    StlAllocator<int> ints(backend);
    StlAllocator<char> chars(backend);
    StlAllocator<std::pair<const int, HString>> pairs(backend);

    for (int round = 0; round < 40; ++round) {
        HVector<int> v(ints);
        for (int i = 0; i < 2000; ++i)
            v.push_back(tid * 1000 + i);

        std::map<int, HString, std::less<int>,
                 StlAllocator<std::pair<const int, HString>>>
            m(std::less<int>(), pairs);
        for (int i = 0; i < 200; ++i) {
            HString s(chars);
            s.assign("key-");
            s += static_cast<char>('a' + i % 26);
            s.append(static_cast<std::size_t>(i % 64), 'x');
            m.emplace(i, std::move(s));
        }
        // Containers die here; all memory returns to the backend.
    }
}

}  // namespace

int
main()
{
    using namespace hoard;

    Config config;
    config.heap_count = 4;
    HoardAllocator<NativePolicy> hoard_backend(config);
    baselines::SerialAllocator<NativePolicy> serial_backend(config);

    auto run = [](Allocator& backend) {
        std::vector<std::thread> threads;
        for (int tid = 0; tid < 4; ++tid)
            threads.emplace_back([&backend, tid] { churn(backend, tid); });
        for (auto& t : threads)
            t.join();
    };

    run(hoard_backend);
    run(serial_backend);

    auto report = [](const char* name, const Allocator& a) {
        const detail::AllocatorStats& s = a.stats();
        std::printf("%-8s  allocs %8llu  peak in use %10s  peak held %10s"
                    "  frag %.2f\n",
                    name, static_cast<unsigned long long>(s.allocs.get()),
                    metrics::format_bytes(s.in_use_bytes.peak()).c_str(),
                    metrics::format_bytes(s.held_bytes.peak()).c_str(),
                    s.fragmentation());
    };

    std::printf("container churn, 4 threads x 40 rounds:\n");
    report("hoard", hoard_backend);
    report("serial", serial_backend);
    std::printf("\nNote: identical correctness behavior; the difference"
                " is that every hoard heap scales independently\n"
                "(run the fig_* benches for the timing story).\n");
    return 0;
}
