/**
 * @file
 * Quickstart: the five-minute tour of the library's public API.
 *
 *   1. malloc-style calls on the process-wide Hoard instance;
 *   2. an explicitly configured allocator instance;
 *   3. reading the statistics the paper's tables are built from.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>
#include <vector>

#include "core/facade.h"
#include "core/hoard_allocator.h"
#include "metrics/table.h"
#include "policy/native_policy.h"

int
main()
{
    using namespace hoard;

    // --- 1. C-style API on the global instance -------------------------
    void* p = hoard_malloc(100);
    std::printf("hoard_malloc(100)        -> %p (usable %zu bytes)\n", p,
                hoard_usable_size(p));

    p = hoard_realloc(p, 5000);
    std::printf("hoard_realloc(..., 5000) -> %p (usable %zu bytes)\n", p,
                hoard_usable_size(p));

    void* aligned = hoard_aligned_alloc(4096, 256);
    std::printf("hoard_aligned_alloc(4096) -> %p (4096-aligned: %s)\n",
                aligned,
                reinterpret_cast<std::uintptr_t>(aligned) % 4096 == 0
                    ? "yes"
                    : "no");
    hoard_free(aligned);
    hoard_free(p);

    // --- 2. A dedicated allocator with custom parameters ---------------
    Config config;
    config.superblock_bytes = 16384;  // S
    config.empty_fraction = 0.5;      // f
    config.heap_count = 8;            // P
    HoardAllocator<NativePolicy> allocator(config);

    std::vector<void*> objects;
    for (int i = 0; i < 10000; ++i)
        objects.push_back(allocator.allocate(24));
    for (void* obj : objects)
        allocator.deallocate(obj);

    // --- 3. Statistics --------------------------------------------------
    const detail::AllocatorStats& stats = allocator.stats();
    std::printf("\ncustom instance after 10k alloc/free of 24 B:\n");
    std::printf("  allocations        %llu\n",
                static_cast<unsigned long long>(stats.allocs.get()));
    std::printf("  peak in use (U)    %s\n",
                metrics::format_bytes(stats.in_use_bytes.peak()).c_str());
    std::printf("  peak held (A)      %s\n",
                metrics::format_bytes(stats.held_bytes.peak()).c_str());
    std::printf("  fragmentation A/U  %.3f\n", stats.fragmentation());
    std::printf("  superblock moves   %llu (heap -> global heap)\n",
                static_cast<unsigned long long>(
                    stats.superblock_transfers.get()));

    allocator.check_invariants();
    std::printf("\nemptiness invariant verified on every heap — done.\n");
    return 0;
}
