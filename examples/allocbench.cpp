/**
 * @file
 * allocbench: the swiss-army driver for this repository.
 *
 * Runs any workload from the paper's suite against any allocator, in
 * either execution world, from the command line:
 *
 *   allocbench --workload larson --allocator hoard --mode sim \
 *              --procs 8 --scale 2
 *
 *   --workload   threadtest|shbench|larson|activefalse|passivefalse|
 *                bemsim|barneshut        (default threadtest)
 *   --allocator  hoard|serial|private|ownership|all  (default all)
 *   --mode       sim|native              (default sim)
 *   --procs      simulated processors / native threads (default 4)
 *   --scale      work multiplier (default 1)
 *
 * In sim mode it prints the virtual makespan plus contention and
 * cache diagnostics; in native mode, wall time and the memory books.
 * This is what "adopting the library" looks like for measurement
 * work: everything the fig and tbl benches do is reachable from here.
 */

#include <chrono>
#include <sstream>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>

#include "baselines/factory.h"
#include "metrics/table.h"
#include "policy/native_policy.h"
#include "policy/sim_policy.h"
#include "workloads/native_bodies.h"
#include "workloads/runners.h"
#include "workloads/sim_bodies.h"

namespace {

using namespace hoard;

struct Options
{
    std::string workload = "threadtest";
    std::string allocator = "all";
    std::string mode = "sim";
    int procs = 4;
    int scale = 1;
};

bool
parse(int argc, char** argv, Options* out)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--workload") {
            const char* v = next();
            if (v == nullptr)
                return false;
            out->workload = v;
        } else if (arg == "--allocator") {
            const char* v = next();
            if (v == nullptr)
                return false;
            out->allocator = v;
        } else if (arg == "--mode") {
            const char* v = next();
            if (v == nullptr)
                return false;
            out->mode = v;
        } else if (arg == "--procs") {
            const char* v = next();
            if (v == nullptr)
                return false;
            out->procs = std::atoi(v);
        } else if (arg == "--scale") {
            const char* v = next();
            if (v == nullptr)
                return false;
            out->scale = std::atoi(v);
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
            return false;
        }
    }
    return out->procs >= 1 && out->procs <= 32 && out->scale >= 1 &&
           out->scale <= 1000;
}

metrics::SimWorkloadBody
make_sim_body(const Options& opt)
{
    int s = opt.scale;
    if (opt.workload == "threadtest") {
        workloads::ThreadtestParams p;
        p.total_objects = 8000 * s;
        p.iterations = 4;
        return workloads::threadtest_body(p);
    }
    if (opt.workload == "shbench") {
        workloads::ShbenchParams p;
        p.operations = 30000 * s;
        return workloads::shbench_body(p);
    }
    if (opt.workload == "larson") {
        workloads::LarsonParams p;
        p.rounds_per_epoch = 40000 * s;
        p.epochs = 2;
        return workloads::larson_body(p);
    }
    if (opt.workload == "activefalse") {
        workloads::FalseSharingParams p;
        p.total_objects = 800 * s;
        return workloads::active_false_body(p);
    }
    if (opt.workload == "passivefalse") {
        workloads::FalseSharingParams p;
        p.total_objects = 800 * s;
        return workloads::passive_false_body(p);
    }
    if (opt.workload == "bemsim") {
        workloads::BemSimParams p;
        p.phases = s;
        return workloads::bemsim_body(p);
    }
    if (opt.workload == "barneshut") {
        workloads::BarnesHutParams p;
        p.steps = s;
        return workloads::barneshut_body(p);
    }
    return nullptr;
}

workloads::NativeWorkloadBody
make_native_body(const Options& opt)
{
    int s = opt.scale;
    if (opt.workload == "threadtest") {
        workloads::ThreadtestParams p;
        p.total_objects = 8000 * s;
        p.iterations = 4;
        return workloads::native_threadtest_body(p);
    }
    if (opt.workload == "shbench") {
        workloads::ShbenchParams p;
        p.operations = 30000 * s;
        return workloads::native_shbench_body(p);
    }
    if (opt.workload == "larson") {
        workloads::LarsonParams p;
        p.rounds_per_epoch = 40000 * s;
        p.epochs = 2;
        return workloads::native_larson_body(p);
    }
    if (opt.workload == "activefalse") {
        workloads::FalseSharingParams p;
        p.total_objects = 800 * s;
        return workloads::native_active_false_body(p);
    }
    if (opt.workload == "passivefalse") {
        workloads::FalseSharingParams p;
        p.total_objects = 800 * s;
        return workloads::native_passive_false_body(p);
    }
    if (opt.workload == "bemsim") {
        workloads::BemSimParams p;
        p.phases = s;
        return workloads::native_bemsim_body(p);
    }
    if (opt.workload == "barneshut") {
        workloads::BarnesHutParams p;
        p.steps = s;
        return workloads::native_barneshut_body(p);
    }
    return nullptr;
}

std::vector<baselines::AllocatorKind>
selected_kinds(const Options& opt)
{
    if (opt.allocator == "all") {
        return {baselines::kAllKinds.begin(), baselines::kAllKinds.end()};
    }
    for (auto kind : baselines::kAllKinds) {
        if (opt.allocator == baselines::to_string(kind))
            return {kind};
    }
    return {};
}

int
run_sim(const Options& opt)
{
    metrics::SimWorkloadBody body = make_sim_body(opt);
    if (!body) {
        std::fprintf(stderr, "unknown workload '%s'\n",
                     opt.workload.c_str());
        return 1;
    }
    metrics::Table table({"allocator", "makespan (vcycles)",
                          "contended locks", "remote transfers"});
    for (auto kind : selected_kinds(opt)) {
        Config config;
        config.heap_count = opt.procs;
        auto allocator =
            baselines::make_allocator<SimPolicy>(kind, config);
        sim::Machine machine(opt.procs);
        for (int t = 0; t < opt.procs; ++t) {
            machine.spawn(t, t, [&, t] {
                body(*allocator, t, opt.procs);
            });
        }
        std::uint64_t makespan = machine.run();
        table.begin_row();
        table.cell(baselines::to_string(kind));
        table.cell_u64(makespan);
        table.cell_u64(machine.lock_contentions());
        table.cell_u64(machine.cache().remote_transfers());
    }
    std::printf("workload=%s mode=sim procs=%d scale=%d\n",
                opt.workload.c_str(), opt.procs, opt.scale);
    std::ostringstream os;
    table.print(os);
    std::fputs(os.str().c_str(), stdout);
    return 0;
}

int
run_native(const Options& opt)
{
    workloads::NativeWorkloadBody body = make_native_body(opt);
    if (!body) {
        std::fprintf(stderr, "unknown workload '%s'\n",
                     opt.workload.c_str());
        return 1;
    }
    metrics::Table table({"allocator", "wall (ms)", "Mops/s",
                          "peak in use", "peak held", "frag"});
    for (auto kind : selected_kinds(opt)) {
        Config config;
        config.heap_count = opt.procs;
        auto allocator =
            baselines::make_allocator<NativePolicy>(kind, config);
        auto start = std::chrono::steady_clock::now();
        workloads::native_run(opt.procs, [&](int tid) {
            body(*allocator, tid, opt.procs);
        });
        double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
        const detail::AllocatorStats& stats = allocator->stats();
        double mops =
            static_cast<double>(stats.allocs.get() + stats.frees.get()) /
            (ms / 1000.0) / 1e6;
        table.begin_row();
        table.cell(baselines::to_string(kind));
        table.cell_double(ms, 1);
        table.cell_double(mops, 2);
        table.cell(metrics::format_bytes(stats.in_use_bytes.peak()));
        table.cell(metrics::format_bytes(stats.held_bytes.peak()));
        table.cell_double(stats.fragmentation());
    }
    std::printf("workload=%s mode=native threads=%d scale=%d\n",
                opt.workload.c_str(), opt.procs, opt.scale);
    std::ostringstream os;
    table.print(os);
    std::fputs(os.str().c_str(), stdout);
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    Options opt;
    if (!parse(argc, argv, &opt)) {
        std::fprintf(
            stderr,
            "usage: allocbench [--workload W] [--allocator A]"
            " [--mode sim|native] [--procs N] [--scale K]\n");
        return 1;
    }
    if (selected_kinds(opt).empty()) {
        std::fprintf(stderr, "unknown allocator '%s'\n",
                     opt.allocator.c_str());
        return 1;
    }
    return opt.mode == "native" ? run_native(opt) : run_sim(opt);
}
