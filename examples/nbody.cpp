/**
 * @file
 * Example: Barnes-Hut n-body simulation with per-step octrees drawn
 * from Hoard.
 *
 * A real scientific-kernel shape (the paper's Table 2 uses the same
 * application): every step builds a fresh octree — thousands of small
 * node allocations — computes approximate gravity, integrates, and
 * frees the tree.  Prints a physics sanity check (momentum drift) plus
 * the allocator's view of the run.
 *
 *   ./build/examples/nbody [bodies-per-thread] [steps] [threads]
 */

#include <cstdio>
#include <cstdlib>

#include "core/hoard_allocator.h"
#include "metrics/table.h"
#include "policy/native_policy.h"
#include "workloads/barneshut.h"
#include "workloads/runners.h"

int
main(int argc, char** argv)
{
    using namespace hoard;

    workloads::BarnesHutParams params;
    params.bodies_per_system = argc > 1 ? std::atoi(argv[1]) : 400;
    params.steps = argc > 2 ? std::atoi(argv[2]) : 6;
    params.nthreads = argc > 3 ? std::atoi(argv[3]) : 4;
    params.total_systems = 4 * params.nthreads;
    if (params.bodies_per_system < 8 || params.steps < 1 ||
        params.nthreads < 1 || params.nthreads > 64) {
        std::fprintf(stderr,
                     "usage: nbody [bodies-per-system>=8] [steps>=1]"
                     " [threads 1..64]\n");
        return 1;
    }

    Config config;
    config.heap_count = params.nthreads;
    HoardAllocator<NativePolicy> allocator(config);

    std::printf("nbody: %d systems x %d bodies on %d threads, %d steps,"
                " theta=%.2f\n",
                params.total_systems, params.bodies_per_system,
                params.nthreads, params.steps, params.theta);

    workloads::native_run(params.nthreads, [&](int tid) {
        workloads::barneshut_thread<NativePolicy>(allocator, params, tid);
    });

    const detail::AllocatorStats& stats = allocator.stats();
    std::printf("\n  tree nodes allocated  %llu (%s)\n",
                static_cast<unsigned long long>(stats.allocs.get()),
                metrics::format_bytes(stats.requested_bytes.peak())
                    .c_str());
    std::printf("  peak in use           %s\n",
                metrics::format_bytes(stats.in_use_bytes.peak()).c_str());
    std::printf("  peak held             %s\n",
                metrics::format_bytes(stats.held_bytes.peak()).c_str());
    std::printf("  fragmentation         %.3f\n", stats.fragmentation());
    std::printf("  leaks                 %llu\n",
                static_cast<unsigned long long>(stats.allocs.get() -
                                                stats.frees.get()));
    allocator.check_invariants();
    std::printf("  emptiness invariant   ok\n");
    return 0;
}
