/**
 * @file
 * Example: a Larson-style multithreaded "server" on real threads.
 *
 * Worker threads keep a table of live request objects and continuously
 * retire/replace them (random sizes, cross-thread handoff every epoch
 * via logical-id rebinding — the pattern the paper's Larson benchmark
 * models).  Prints throughput and the allocator's memory story at the
 * end.  Run with an allocator name to compare:
 *
 *   ./build/examples/mtserver [hoard|serial|private|ownership] [threads]
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "baselines/factory.h"
#include "metrics/table.h"
#include "workloads/larson.h"
#include "workloads/native_bodies.h"
#include "workloads/runners.h"

int
main(int argc, char** argv)
{
    using namespace hoard;

    baselines::AllocatorKind kind = baselines::AllocatorKind::hoard;
    if (argc > 1) {
        bool found = false;
        for (auto k : baselines::kAllKinds) {
            if (std::strcmp(argv[1], baselines::to_string(k)) == 0) {
                kind = k;
                found = true;
            }
        }
        if (!found) {
            std::fprintf(stderr,
                         "unknown allocator '%s' "
                         "(hoard|serial|private|ownership)\n",
                         argv[1]);
            return 1;
        }
    }
    int nthreads = argc > 2 ? std::atoi(argv[2]) : 4;
    if (nthreads < 1 || nthreads > 64)
        nthreads = 4;

    Config config;
    config.heap_count = nthreads;
    auto allocator = baselines::make_allocator<NativePolicy>(kind, config);

    workloads::LarsonParams params;
    params.nthreads = nthreads;
    params.slots_per_thread = 512;
    params.rounds_per_epoch = 50000;
    params.epochs = 4;

    std::printf("mtserver: allocator=%s threads=%d slots=%d"
                " rounds/epoch=%d epochs=%d\n",
                allocator->name(), nthreads, params.slots_per_thread,
                params.rounds_per_epoch, params.epochs);

    auto start = std::chrono::steady_clock::now();
    workloads::native_run(nthreads, [&](int tid) {
        workloads::larson_thread<NativePolicy>(*allocator, params, tid);
    });
    auto elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();

    const detail::AllocatorStats& stats = allocator->stats();
    double mops = static_cast<double>(stats.allocs.get() +
                                      stats.frees.get()) /
                  elapsed / 1e6;
    std::printf("\n  wall time          %.3f s\n", elapsed);
    std::printf("  memory ops         %.2f M ops/s\n", mops);
    std::printf("  peak in use (U)    %s\n",
                metrics::format_bytes(stats.in_use_bytes.peak()).c_str());
    std::printf("  peak held (A)      %s\n",
                metrics::format_bytes(stats.held_bytes.peak()).c_str());
    std::printf("  fragmentation      %.3f\n", stats.fragmentation());
    std::printf("\n(wall-clock scalability needs >1 CPU; see the"
                " fig_speedup_larson bench for the simulated 1..14"
                " processor figure)\n");
    return 0;
}
