/**
 * @file
 * Example: allocation-trace tooling.
 *
 * Records a server workload's allocation trace through the
 * TraceRecorder, saves it to a file, reloads it, and replays it
 * against every allocator in the taxonomy — the Wilson/Johnstone-style
 * trace-driven fragmentation study the paper's memory results build
 * on, runnable on any workload you can link against the library.
 *
 *   ./build/examples/trace_tools [trace-file]
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include "baselines/factory.h"
#include "core/hoard_allocator.h"
#include "metrics/table.h"
#include "policy/native_policy.h"
#include "workloads/larson.h"
#include "workloads/trace.h"

int
main(int argc, char** argv)
{
    using namespace hoard;
    const char* path = argc > 1 ? argv[1] : "/tmp/hoard_example.trace";

    // --- 1. Record: run a Larson-style workload through the recorder.
    workloads::Trace trace;
    {
        HoardAllocator<NativePolicy> inner{Config{}};
        workloads::TraceRecorder recorder(inner, trace);
        workloads::LarsonParams params;
        params.nthreads = 1;
        params.slots_per_thread = 200;
        params.rounds_per_epoch = 5000;
        params.epochs = 3;
        NativePolicy::rebind_thread_index(0);
        workloads::larson_thread<NativePolicy>(recorder, params, 0);
    }
    std::printf("recorded %zu operations (max live %s)\n", trace.size(),
                metrics::format_bytes(trace.max_live_bytes()).c_str());

    // --- 2. Serialize and reload.
    {
        std::ofstream out(path);
        trace.save(out);
    }
    std::ifstream in(path);
    workloads::Trace loaded = workloads::Trace::load(in);
    std::printf("saved to %s and reloaded: %s\n", path,
                trace == loaded ? "identical" : "MISMATCH");

    // --- 3. Replay against every allocator: the fragmentation study.
    metrics::Table table({"allocator", "peak in use", "peak held",
                          "frag (held/in-use)",
                          "frag vs trace live"});
    for (auto kind : baselines::kAllKinds) {
        Config config;
        config.heap_count = 4;
        auto allocator = baselines::make_allocator<NativePolicy>(
            kind, config);
        auto result =
            workloads::replay<NativePolicy>(*allocator, loaded);
        table.begin_row();
        table.cell(baselines::to_string(kind));
        table.cell(metrics::format_bytes(result.peak_in_use_bytes));
        table.cell(metrics::format_bytes(result.peak_held_bytes));
        table.cell_double(static_cast<double>(result.peak_held_bytes) /
                          static_cast<double>(result.peak_in_use_bytes));
        table.cell_double(static_cast<double>(result.peak_held_bytes) /
                          static_cast<double>(loaded.max_live_bytes()));
    }
    std::printf("\ntrace-driven fragmentation comparison:\n");
    std::ostringstream os;
    table.print(os);
    std::fputs(os.str().c_str(), stdout);
    return 0;
}
