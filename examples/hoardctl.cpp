/**
 * @file
 * hoardctl: drive the observability layer from the command line.
 *
 * Runs a Larson-style multithreaded churn on a dedicated Hoard
 * instance with event tracing and lock profiling enabled, then exports
 * everything src/obs/ offers:
 *
 *   ./build/examples/hoardctl                         # human snapshot
 *   ./build/examples/hoardctl --trace /tmp/h.json     # chrome://tracing
 *   ./build/examples/hoardctl --prom /tmp/h.prom      # Prometheus text
 *   ./build/examples/hoardctl --timeline /tmp/h.jsonl # gauge timeline
 *   ./build/examples/hoardctl --threads 8 --rounds 20000
 *
 * The exit status doubles as a health check: 0 only when the per-heap
 * snapshot reconciles exactly with the global gauges and every heap
 * satisfies the emptiness invariant — the same two checks the
 * integration tests assert.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/hoard_allocator.h"
#include "obs/gating.h"
#include "obs/trace_export.h"
#include "policy/native_policy.h"
#include "workloads/larson.h"
#include "workloads/runners.h"

namespace {

struct Options
{
    int threads = 4;
    int slots = 800;
    int rounds = 5000;
    int epochs = 4;
    std::size_t ring_events = 4096;
    std::uint64_t interval = 200000;  // ns between timeline samples
    std::string trace_path;
    std::string prom_path;
    std::string timeline_path;
    std::string snapshot_path;  // empty: human dump to stdout
    bool quiet = false;
};

void
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --threads N    worker threads / heaps (default 4)\n"
        "  --slots N      live objects per thread (default 800)\n"
        "  --rounds N     replacements per epoch (default 5000)\n"
        "  --epochs N     thread generations (default 4)\n"
        "  --ring N       trace events retained per shard, power of\n"
        "                 two (default 4096)\n"
        "  --trace FILE   write Chrome trace JSON (chrome://tracing)\n"
        "  --prom FILE    write Prometheus text exposition\n"
        "  --timeline FILE  write the gauge timeline as JSONL\n"
        "                 (schema hoard-timeline-v1)\n"
        "  --interval N   nanoseconds between timeline samples\n"
        "                 (default 200000)\n"
        "  --snapshot FILE  write the human-readable snapshot\n"
        "                 (default: stdout)\n"
        "  --quiet        verdicts only\n",
        argv0);
}

bool
parse_int(const char* s, int& out)
{
    char* end = nullptr;
    long v = std::strtol(s, &end, 10);
    if (end == s || *end != '\0' || v <= 0 || v > 1 << 20)
        return false;
    out = static_cast<int>(v);
    return true;
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace hoard;

    Options opt;
    for (int i = 1; i < argc; ++i) {
        auto need_value = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--threads") == 0) {
            if (!parse_int(need_value("--threads"), opt.threads))
                return 2;
        } else if (std::strcmp(argv[i], "--slots") == 0) {
            if (!parse_int(need_value("--slots"), opt.slots))
                return 2;
        } else if (std::strcmp(argv[i], "--rounds") == 0) {
            if (!parse_int(need_value("--rounds"), opt.rounds))
                return 2;
        } else if (std::strcmp(argv[i], "--epochs") == 0) {
            if (!parse_int(need_value("--epochs"), opt.epochs))
                return 2;
        } else if (std::strcmp(argv[i], "--ring") == 0) {
            int n = 0;
            if (!parse_int(need_value("--ring"), n))
                return 2;
            opt.ring_events = static_cast<std::size_t>(n);
        } else if (std::strcmp(argv[i], "--trace") == 0) {
            opt.trace_path = need_value("--trace");
        } else if (std::strcmp(argv[i], "--prom") == 0) {
            opt.prom_path = need_value("--prom");
        } else if (std::strcmp(argv[i], "--timeline") == 0) {
            opt.timeline_path = need_value("--timeline");
        } else if (std::strcmp(argv[i], "--interval") == 0) {
            int n = 0;
            if (!parse_int(need_value("--interval"), n))
                return 2;
            opt.interval = static_cast<std::uint64_t>(n);
        } else if (std::strcmp(argv[i], "--snapshot") == 0) {
            opt.snapshot_path = need_value("--snapshot");
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            opt.quiet = true;
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    if (!obs::kCompiledIn) {
        std::fprintf(stderr,
                     "hoardctl: observability compiled out "
                     "(rebuild with -DHOARD_OBS=ON)\n");
        return 2;
    }

    Config config;
    config.heap_count = opt.threads;
    config.thread_cache_blocks = 8;
    config.observability = true;
    config.obs_ring_events = opt.ring_events;
    if (!opt.timeline_path.empty())
        config.obs_sample_interval = opt.interval;
    if ((opt.ring_events & (opt.ring_events - 1)) != 0 ||
        opt.ring_events < 2) {
        std::fprintf(stderr,
                     "hoardctl: --ring must be a power of two >= 2\n");
        return 2;
    }
    HoardAllocator<NativePolicy> allocator(config);

    workloads::LarsonParams params;
    params.nthreads = opt.threads;
    params.slots_per_thread = opt.slots;
    params.rounds_per_epoch = opt.rounds;
    params.epochs = opt.epochs;
    workloads::native_run(opt.threads, [&allocator, &params](int tid) {
        workloads::larson_thread<NativePolicy>(allocator, params, tid);
    });

    allocator.sample_now();  // flush the timeline with a final sample
    obs::AllocatorSnapshot snap = allocator.take_snapshot();

    if (!opt.quiet) {
        if (opt.snapshot_path.empty()) {
            obs::write_human(std::cout, snap);
        } else {
            std::ofstream os(opt.snapshot_path);
            obs::write_human(os, snap);
            std::printf("snapshot: %s\n", opt.snapshot_path.c_str());
        }
    }
    if (!opt.prom_path.empty()) {
        std::ofstream os(opt.prom_path);
        obs::write_prometheus(os, snap);
        if (!opt.quiet)
            std::printf("prometheus: %s\n", opt.prom_path.c_str());
    }
    if (!opt.timeline_path.empty() && allocator.sampler() != nullptr) {
        std::ofstream os(opt.timeline_path);
        obs::write_timeseries_jsonl(os, *allocator.sampler());
        if (!opt.quiet) {
            std::printf("timeline: %s (%llu samples, %llu "
                        "overwritten)\n",
                        opt.timeline_path.c_str(),
                        static_cast<unsigned long long>(
                            allocator.sampler()->total_samples()),
                        static_cast<unsigned long long>(
                            allocator.sampler()->dropped()));
        }
    }
    if (!opt.trace_path.empty()) {
        std::ofstream os(opt.trace_path);
        obs::write_chrome_trace(os, *allocator.recorder(),
                                /*ts_per_us=*/1000.0,
                                allocator.sampler());
        if (!opt.quiet) {
            std::printf("chrome trace: %s (%llu events recorded, "
                        "%llu dropped)\n",
                        opt.trace_path.c_str(),
                        static_cast<unsigned long long>(
                            allocator.recorder()->total_recorded()),
                        static_cast<unsigned long long>(
                            allocator.recorder()->dropped()));
        }
    }

    bool reconciles = snap.reconciles();
    bool invariant = snap.all_heaps_satisfy_invariant();
    std::printf("reconcile: %s\n", reconciles ? "PASS" : "FAIL");
    std::printf("emptiness invariant: %s\n",
                invariant ? "PASS" : "FAIL");
    return reconciles && invariant ? 0 : 1;
}
