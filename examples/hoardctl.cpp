/**
 * @file
 * hoardctl: drive the observability layer from the command line.
 *
 * Runs a Larson-style multithreaded churn on a dedicated Hoard
 * instance with event tracing and lock profiling enabled, then exports
 * everything src/obs/ offers:
 *
 *   ./build/examples/hoardctl                         # human snapshot
 *   ./build/examples/hoardctl --trace /tmp/h.json     # chrome://tracing
 *   ./build/examples/hoardctl --prom /tmp/h.prom      # Prometheus text
 *   ./build/examples/hoardctl --timeline /tmp/h.jsonl # gauge timeline
 *   ./build/examples/hoardctl --profile /tmp/h.pb     # pprof heap profile
 *   ./build/examples/hoardctl --threads 8 --rounds 20000
 *
 * Flags are parsed by the shared strict parser (common/cli.h): unknown
 * flags exit 2, --help exits 0, and the usage text is generated from
 * the same registry that parses, so it cannot drift.
 *
 * The exit status doubles as a health check: 0 only when the per-heap
 * snapshot reconciles exactly with the global gauges and every heap
 * satisfies the emptiness invariant — the same two checks the
 * integration tests assert.
 */

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "common/cli.h"
#include "core/hoard_allocator.h"
#include "obs/gating.h"
#include "obs/heap_profiler.h"
#include "obs/trace_export.h"
#include "policy/native_policy.h"
#include "workloads/larson.h"
#include "workloads/runners.h"

namespace {

struct Options
{
    int threads = 4;
    int slots = 800;
    int rounds = 5000;
    int epochs = 4;
    int ring_events = 4096;
    std::uint64_t interval = 200000;  // ns between timeline samples
    std::uint64_t profile_rate = 0;   // 0: pick a default when dumping
    std::string trace_path;
    std::string prom_path;
    std::string timeline_path;
    std::string profile_path;
    std::string snapshot_path;  // empty: human dump to stdout
    std::uint64_t outlier_cycles = 0;  // --latency outlier threshold
    std::uint64_t rss_target = 0;      // --rss committed-bytes target
    bool latency = false;
    bool do_purge = false;
    bool bg = false;
    bool quiet = false;
};

}  // namespace

int
main(int argc, char** argv)
{
    using namespace hoard;

    Options opt;
    cli::Parser parser(
        "exercise a traced Hoard instance and export its telemetry");
    parser.add_int("--threads", "N",
                   "worker threads / heaps (default 4)", &opt.threads);
    parser.add_int("--slots", "N",
                   "live objects per thread (default 800)", &opt.slots);
    parser.add_int("--rounds", "N",
                   "replacements per epoch (default 5000)",
                   &opt.rounds);
    parser.add_int("--epochs", "N", "thread generations (default 4)",
                   &opt.epochs);
    parser.add_int("--ring", "N",
                   "trace events retained per shard, power\n"
                   "of two (default 4096)",
                   &opt.ring_events);
    parser.add_string("--trace", "FILE",
                      "write Chrome trace JSON (chrome://tracing)",
                      &opt.trace_path);
    parser.add_string("--prom", "FILE",
                      "write Prometheus text exposition",
                      &opt.prom_path);
    parser.add_string("--timeline", "FILE",
                      "write the gauge timeline as JSONL\n"
                      "(schema hoard-timeline-v5)",
                      &opt.timeline_path);
    parser.add_uint64("--interval", "N",
                      "nanoseconds between timeline samples\n"
                      "(default 200000)",
                      &opt.interval, 1);
    parser.add_string("--profile", "FILE",
                      "write a pprof heap profile\n"
                      "(profile.proto; `pprof -http=: FILE`)",
                      &opt.profile_path);
    parser.add_uint64("--profile-rate", "N",
                      "mean bytes between profile samples;\n"
                      "1 samples every allocation (default\n"
                      "65536 when --profile is given)",
                      &opt.profile_rate, 1);
    parser.add_string("--snapshot", "FILE",
                      "write the human-readable snapshot\n"
                      "(default: stdout)",
                      &opt.snapshot_path);
    parser.add_flag("--latency",
                    "arm the per-path latency histograms\n"
                    "(exact mode: every op timed) and print\n"
                    "the per-path percentile table",
                    &opt.latency);
    parser.add_uint64("--outlier", "N",
                      "with --latency: trace ops slower than\n"
                      "N cycles into the event ring (default\n"
                      "0 = off)",
                      &opt.outlier_cycles, 1);
    parser.add_flag("--purge",
                    "after the churn, force one purge pass\n"
                    "(madvise decommit of idle empties) and\n"
                    "print the bytes decommitted",
                    &opt.do_purge);
    parser.add_uint64("--rss", "BYTES",
                      "arm RSS targeting: automatic purge\n"
                      "passes while committed bytes exceed\n"
                      "BYTES (default 0 = off)",
                      &opt.rss_target, 1);
    parser.add_flag("--bg",
                    "arm the asynchronous background engine\n"
                    "(helper-thread bin refill, remote-free\n"
                    "settling, pre-commit, async purge) and\n"
                    "print its counters",
                    &opt.bg);
    parser.add_flag("--quiet", "verdicts only", &opt.quiet);
    parser.parse(argc, argv);

    if (!obs::kCompiledIn) {
        std::fprintf(stderr,
                     "hoardctl: observability compiled out "
                     "(rebuild with -DHOARD_OBS=ON)\n");
        return 2;
    }
    const bool want_profile =
        !opt.profile_path.empty() || opt.profile_rate != 0;
    if (want_profile && !obs::kProfilerCompiledIn) {
        std::fprintf(stderr,
                     "hoardctl: profiler compiled out "
                     "(rebuild with -DHOARD_PROFILER=ON)\n");
        return 2;
    }
    if ((opt.ring_events & (opt.ring_events - 1)) != 0 ||
        opt.ring_events < 2) {
        std::fprintf(stderr,
                     "hoardctl: --ring must be a power of two >= 2\n");
        return 2;
    }

    Config config;
    config.heap_count = opt.threads;
    config.thread_cache_blocks = 8;
    config.observability = true;
    config.obs_ring_events = static_cast<std::size_t>(opt.ring_events);
    if (!opt.timeline_path.empty())
        config.obs_sample_interval = opt.interval;
    if (want_profile) {
        // A short churn at the production default (512 KiB) yields a
        // handful of samples; 64 KiB gives a usable profile without
        // distorting the run.
        config.profile_sample_rate = static_cast<std::size_t>(
            opt.profile_rate != 0 ? opt.profile_rate : 65536);
    }
    if (opt.latency) {
        config.latency_histograms = true;
        // Exact mode: a diagnosis run wants every op in the histogram,
        // not one in 64 — the few-percent overhead is irrelevant here.
        config.latency_sample_period = 1;
        config.latency_outlier_cycles = opt.outlier_cycles;
    }
    if (opt.rss_target != 0) {
        config.rss_target_bytes =
            static_cast<std::size_t>(opt.rss_target);
        // React within the run, not once per default interval.
        config.purge_interval_ticks = 1;
    }
    if (opt.bg) {
        config.background_engine = true;
        // One pass every ~65 µs so a short churn sees many wakeups.
        config.bg_interval_ticks = 1 << 16;
    }
    HoardAllocator<NativePolicy> allocator(config);
    allocator.start_background();  // no-op unless --bg armed it

    workloads::LarsonParams params;
    params.nthreads = opt.threads;
    params.slots_per_thread = opt.slots;
    params.rounds_per_epoch = opt.rounds;
    params.epochs = opt.epochs;
    workloads::native_run(opt.threads, [&allocator, &params](int tid) {
        workloads::larson_thread<NativePolicy>(allocator, params, tid);
    });

    if (opt.do_purge) {
        std::size_t purged = allocator.purge(/*force=*/true);
        if (!opt.quiet) {
            std::printf("purge: %llu bytes decommitted (committed "
                        "%llu, purged gauge %llu)\n",
                        static_cast<unsigned long long>(purged),
                        static_cast<unsigned long long>(
                            allocator.stats()
                                .committed_bytes.current()),
                        static_cast<unsigned long long>(
                            allocator.stats().purged_bytes.current()));
        }
    }

    allocator.stop_background();  // quiesce before the final snapshot
    allocator.sample_now();  // flush the timeline with a final sample
    obs::AllocatorSnapshot snap = allocator.take_snapshot();

    if (opt.bg && !opt.quiet) {
        std::printf("background: wakeups %llu refills %llu drains "
                    "%llu precommits %llu purges %llu hint-drops %llu\n",
                    static_cast<unsigned long long>(
                        snap.stats.bg_wakeups),
                    static_cast<unsigned long long>(
                        snap.stats.bg_refills),
                    static_cast<unsigned long long>(
                        snap.stats.bg_drains),
                    static_cast<unsigned long long>(
                        snap.stats.bg_precommits),
                    static_cast<unsigned long long>(
                        snap.stats.bg_purges),
                    static_cast<unsigned long long>(
                        allocator.background_hint_drops()));
    }

    if (!opt.quiet) {
        if (opt.snapshot_path.empty()) {
            obs::write_human(std::cout, snap);
        } else {
            std::ofstream os(opt.snapshot_path);
            obs::write_human(os, snap);
            std::printf("snapshot: %s\n", opt.snapshot_path.c_str());
        }
    }
    if (!opt.prom_path.empty()) {
        std::ofstream os(opt.prom_path);
        obs::write_prometheus(os, snap);
        if (allocator.profiler() != nullptr)
            allocator.profiler()->write_prometheus(os);
        if (!opt.quiet)
            std::printf("prometheus: %s\n", opt.prom_path.c_str());
    }
    if (!opt.timeline_path.empty() && allocator.sampler() != nullptr) {
        std::ofstream os(opt.timeline_path);
        obs::write_timeseries_jsonl(os, *allocator.sampler());
        if (!opt.quiet) {
            std::printf("timeline: %s (%llu samples, %llu "
                        "overwritten)\n",
                        opt.timeline_path.c_str(),
                        static_cast<unsigned long long>(
                            allocator.sampler()->total_samples()),
                        static_cast<unsigned long long>(
                            allocator.sampler()->dropped()));
        }
    }
    if (!opt.trace_path.empty()) {
        std::ofstream os(opt.trace_path);
        obs::write_chrome_trace(os, *allocator.recorder(),
                                /*ts_per_us=*/1000.0,
                                allocator.sampler());
        if (!opt.quiet) {
            std::printf("chrome trace: %s (%llu events recorded, "
                        "%llu dropped)\n",
                        opt.trace_path.c_str(),
                        static_cast<unsigned long long>(
                            allocator.recorder()->total_recorded()),
                        static_cast<unsigned long long>(
                            allocator.recorder()->dropped()));
        }
    }
    if (!opt.profile_path.empty() && allocator.profiler() != nullptr) {
        std::ofstream os(opt.profile_path, std::ios::binary);
        allocator.profiler()->write_pprof_profile(os);
        if (!opt.quiet) {
            const obs::ProfilerTotals totals =
                allocator.profiler()->totals();
            std::printf("pprof profile: %s (%llu sites, %llu sampled "
                        "objects, %llu live)\n",
                        opt.profile_path.c_str(),
                        static_cast<unsigned long long>(totals.sites),
                        static_cast<unsigned long long>(
                            totals.sampled_objects),
                        static_cast<unsigned long long>(
                            totals.live_objects));
        }
    }

    if (opt.latency && snap.latency_armed && !opt.quiet) {
        std::printf("latency (cycles, %llu ops, %llu outliers):\n",
                    static_cast<unsigned long long>(
                        snap.latency.total_count()),
                    static_cast<unsigned long long>(
                        snap.latency.outliers));
        std::printf("  %-18s %12s %10s %10s %10s %12s\n", "path", "n",
                    "p50", "p99", "p99.9", "max");
        for (int p = 0; p < obs::kLatencyPathCount; ++p) {
            const auto path = static_cast<obs::LatencyPath>(p);
            const obs::LatencyHistogram& h = snap.latency.path(path);
            if (h.count() == 0)
                continue;
            std::printf("  %-18s %12llu %10.0f %10.0f %10.0f %12llu\n",
                        obs::to_string(path),
                        static_cast<unsigned long long>(h.count()),
                        h.percentile(50.0), h.percentile(99.0),
                        h.percentile(99.9),
                        static_cast<unsigned long long>(h.max()));
        }
    }

    bool reconciles = snap.reconciles();
    bool invariant = snap.all_heaps_satisfy_invariant();
    std::printf("reconcile: %s\n", reconciles ? "PASS" : "FAIL");
    std::printf("emptiness invariant: %s\n",
                invariant ? "PASS" : "FAIL");
    return reconciles && invariant ? 0 : 1;
}
