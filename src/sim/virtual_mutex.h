/**
 * @file
 * Mutex for simulated threads, with std::mutex-compatible API so the
 * templated allocator code locks it through std::lock_guard unchanged.
 *
 * Contention is modeled in virtual time: a blocked thread's clock jumps
 * to the releaser's clock plus a handoff penalty, and the lock word's
 * cache line is charged through the cache model, so a single hot lock
 * (the serial allocator) serializes the whole simulated machine exactly
 * as the paper describes.
 */

#ifndef HOARD_SIM_VIRTUAL_MUTEX_H_
#define HOARD_SIM_VIRTUAL_MUTEX_H_

#include <cstdint>
#include <deque>

#include "common/failure.h"
#include "sim/machine.h"

namespace hoard {
namespace sim {

/** FIFO mutex living in virtual time. */
class VirtualMutex
{
  public:
    VirtualMutex() = default;
    VirtualMutex(const VirtualMutex&) = delete;
    VirtualMutex& operator=(const VirtualMutex&) = delete;

    /** Acquires, blocking the simulated thread in virtual time. */
    void
    lock()
    {
        Machine* m = Machine::current();
        SimThread* self = m->running();
        m->charge(m->costs().lock_base);
        m->touch(this, sizeof(std::uint64_t), true);
        if (holder_ == nullptr) {
            holder_ = self;
            return;
        }
        ++contentions_;
        m->note_contention();
        waiters_.push_back(self);
        m->block_running();
        // wake() handed us the lock before readying us.
        HOARD_DCHECK(holder_ == self);
    }

    /** Non-blocking acquire. */
    bool
    try_lock()
    {
        Machine* m = Machine::current();
        m->charge(m->costs().lock_base);
        m->touch(this, sizeof(std::uint64_t), true);
        if (holder_ != nullptr)
            return false;
        holder_ = m->running();
        return true;
    }

    /** Releases; hands off to the oldest waiter if any. */
    void
    unlock()
    {
        Machine* m = Machine::current();
        SimThread* self = m->running();
        HOARD_DCHECK(holder_ == self);
        m->charge(m->costs().lock_base);
        if (waiters_.empty()) {
            holder_ = nullptr;
            return;
        }
        SimThread* next = waiters_.front();
        waiters_.pop_front();
        holder_ = next;
        // The waiter resumes no earlier than our release, paying the
        // handoff (lock line transfer + wakeup) plus an invalidation
        // term for every other thread still spinning on the line — this
        // is what bends a one-lock allocator's curve *down* as P grows.
        m->commit(self);
        std::uint64_t handoff =
            m->costs().lock_handoff +
            m->costs().lock_waiter_overhead * waiters_.size();
        m->wake(next, self->clock() + handoff);
    }

    /** Times this mutex was found held at lock(). */
    std::uint64_t contentions() const { return contentions_; }

  private:
    SimThread* holder_ = nullptr;
    std::deque<SimThread*> waiters_;
    std::uint64_t contentions_ = 0;
};

}  // namespace sim
}  // namespace hoard

#endif  // HOARD_SIM_VIRTUAL_MUTEX_H_
