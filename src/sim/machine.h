/**
 * @file
 * Virtual-time multiprocessor.
 *
 * A Machine owns P simulated processors, each running at most one
 * simulated thread (a fiber).  Threads accumulate cycle charges via
 * charge()/touch(); the scheduler always resumes the runnable thread
 * with the smallest virtual clock, so lock queueing and cache-line
 * transfers serialize in virtual time exactly as they would in real
 * time on a real multiprocessor.  The makespan (max final clock) of a
 * run is the figure of merit; speedup(P) = makespan(1) / makespan(P).
 *
 * Determinism: ties in virtual time break by spawn order; the only
 * sources of nondeterminism in a run are the workload RNG seeds, which
 * are fixed.  Threads yield to the scheduler whenever their un-committed
 * charge exceeds a quantum, at every blocking point, and at explicit
 * yield() calls, bounding how far any thread can run ahead of virtual
 * time (DESIGN.md §7 discusses the approximation).
 */

#ifndef HOARD_SIM_MACHINE_H_
#define HOARD_SIM_MACHINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "sim/cache_model.h"
#include "sim/cost_model.h"
#include "sim/fiber.h"

namespace hoard {
namespace sim {

class Machine;

/** One simulated thread: a fiber plus its virtual clock and identity. */
class SimThread
{
  public:
    enum class State { ready, running, blocked, finished };

    std::uint64_t clock() const { return clock_; }
    int proc() const { return proc_; }
    int logical_tid() const { return logical_tid_; }
    State state() const { return state_; }

  private:
    friend class Machine;
    friend class VirtualMutex;

    std::unique_ptr<Fiber> fiber_;
    void* cache_slot_ = nullptr;  ///< per-fiber allocator cache root
    std::uint64_t profile_site_ = 0;  ///< deterministic backtrace token
    std::uint64_t clock_ = 0;
    std::uint64_t pending_ = 0;   ///< charged but not yet committed
    std::uint64_t seq_ = 0;       ///< tie-break key, set on each enqueue
    int proc_ = 0;
    int logical_tid_ = 0;
    int index_ = 0;
    State state_ = State::ready;
};

/** The simulated multiprocessor. */
class Machine
{
  public:
    /**
     * @param nprocs   number of simulated processors (1..32)
     * @param costs    cycle-cost table
     * @param quantum  max cycles a thread may accumulate before yielding
     */
    explicit Machine(int nprocs, const CostModel& costs = CostModel(),
                     std::uint64_t quantum = 200);
    ~Machine();

    Machine(const Machine&) = delete;
    Machine& operator=(const Machine&) = delete;

    /**
     * Adds a simulated thread pinned to processor @p proc with the given
     * logical thread id (used for heap mapping).  Must be called before
     * run().
     */
    void spawn(int proc, int logical_tid, std::function<void()> body);

    /** Runs all spawned threads to completion; returns the makespan. */
    std::uint64_t run();

    /// @name Calls valid only from inside a simulated thread.
    /// @{

    /** The machine driving the calling fiber (null outside a run). */
    static Machine* current();

    /** Charges @p cycles of computation; may yield at quantum edges. */
    void charge(std::uint64_t cycles);

    /** Charges a memory access through the cache model; may yield. */
    void touch(const void* p, std::size_t bytes, bool write);

    /** Commits pending charges and reschedules if someone is earlier. */
    void yield();

    int current_proc() const;
    int current_tid() const;

    /**
     * The calling simulated thread's virtual clock, with pending
     * charges committed — the timestamp source for latency measurement
     * inside simulated workloads.
     */
    std::uint64_t current_clock();

    /**
     * Rebinds the calling simulated thread's logical id — models thread
     * churn (the Larson benchmark passes work to "new" threads).
     */
    void rebind_tid(int logical_tid);

    /**
     * The calling simulated thread's opaque cache slot (thread-magazine
     * root) — the per-fiber analogue of a thread_local, because many
     * fibers share one OS thread.
     */
    void*& thread_cache_slot();

    /**
     * The calling fiber's profile-site token: frame 0 of the
     * deterministic "backtrace" SimPolicy::profile_backtrace reports.
     * Simulated workloads set it before an allocation phase the way a
     * real program's call site is implied by its stack.
     */
    std::uint64_t profile_site() const;
    void set_profile_site(std::uint64_t token);

    /// @}

    /**
     * Installs the hook invoked with a thread's non-null cache slot
     * when its fiber body returns.  The hook runs *inside* the fiber,
     * so it may take virtual mutexes and charge costs like any other
     * simulated code.  Process-wide; last writer wins.
     */
    static void set_thread_exit_hook(void (*hook)(void*));

    int nprocs() const { return nprocs_; }
    const CostModel& costs() const { return costs_; }
    CacheModel& cache() { return cache_; }

    /** Total contended lock acquisitions observed (all mutexes). */
    std::uint64_t lock_contentions() const { return lock_contentions_; }

  private:
    friend class VirtualMutex;
    friend class VirtualEvent;

    SimThread* running() const { return running_; }

    /** Commits pending_ into clock_. */
    void commit(SimThread* t);

    /** Puts @p t on the ready queue. */
    void make_ready(SimThread* t);

    /** Suspends the running thread as blocked; returns when woken. */
    void block_running();

    /** Readies @p t with clock at least @p at. */
    void wake(SimThread* t, std::uint64_t at);

    /** Switches from the running fiber back to the scheduler. */
    void switch_to_scheduler();

    void note_contention() { ++lock_contentions_; }

    struct ReadyOrder
    {
        bool
        operator()(const SimThread* a, const SimThread* b) const
        {
            if (a->clock() != b->clock())
                return a->clock() < b->clock();
            return a->seq_ < b->seq_;
        }
    };

    const int nprocs_;
    const CostModel costs_;
    const std::uint64_t quantum_;
    CacheModel cache_;

    std::vector<std::unique_ptr<SimThread>> threads_;
    std::set<SimThread*, ReadyOrder> ready_;
    std::unique_ptr<Fiber> scheduler_fiber_;
    SimThread* running_ = nullptr;
    std::uint64_t next_seq_ = 0;
    std::uint64_t makespan_ = 0;
    std::uint64_t lock_contentions_ = 0;
    bool in_run_ = false;
};

}  // namespace sim
}  // namespace hoard

#endif  // HOARD_SIM_MACHINE_H_
