/**
 * @file
 * One-shot event for simulated threads (the virtual-time analogue of a
 * condition-variable broadcast).  Workloads use it for setup handoffs,
 * e.g. passive-false's "main thread distributes one object to each
 * worker before the measured loop starts".
 */

#ifndef HOARD_SIM_VIRTUAL_EVENT_H_
#define HOARD_SIM_VIRTUAL_EVENT_H_

#include <vector>

#include "sim/machine.h"

namespace hoard {
namespace sim {

/** Once signaled, stays signaled; waiters resume at the signal time. */
class VirtualEvent
{
  public:
    VirtualEvent() = default;
    VirtualEvent(const VirtualEvent&) = delete;
    VirtualEvent& operator=(const VirtualEvent&) = delete;

    /** Blocks the calling simulated thread until signal(). */
    void
    wait()
    {
        Machine* m = Machine::current();
        if (set_) {
            // Already signaled: just synchronize the clock.
            SimThread* self = m->running();
            m->commit(self);
            if (self->clock() < signal_time_)
                jump_clock(m, self);
            return;
        }
        waiters_.push_back(m->running());
        m->block_running();
    }

    /** Signals; every current and future waiter resumes. */
    void
    signal()
    {
        Machine* m = Machine::current();
        SimThread* self = m->running();
        m->commit(self);
        set_ = true;
        signal_time_ = self->clock();
        for (SimThread* t : waiters_)
            m->wake(t, signal_time_);
        waiters_.clear();
    }

    bool is_set() const { return set_; }

  private:
    void
    jump_clock(Machine* m, SimThread* self)
    {
        // A thread that waits after the signal simply advances to the
        // signal time (it could not have observed the event earlier).
        m->charge(signal_time_ - self->clock());
        m->commit(self);
    }

    bool set_ = false;
    std::uint64_t signal_time_ = 0;
    std::vector<SimThread*> waiters_;
};

}  // namespace sim
}  // namespace hoard

#endif  // HOARD_SIM_VIRTUAL_EVENT_H_
