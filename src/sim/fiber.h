/**
 * @file
 * Cooperative fibers (ucontext-based).
 *
 * The simulator runs every simulated processor's thread as a fiber on one
 * host thread, so the same allocator code that runs under real threads in
 * the native build executes under deterministic virtual-time scheduling
 * here.  Switching is two orders of magnitude cheaper than a condition-
 * variable handshake between real threads, which is what makes simulating
 * millions of allocator operations practical.
 */

#ifndef HOARD_SIM_FIBER_H_
#define HOARD_SIM_FIBER_H_

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>

namespace hoard {
namespace sim {

/**
 * A fiber with its own stack.  start() must be called from the owning
 * host context; the body runs until it returns or calls
 * Fiber::switch_to() back to another fiber.
 */
class Fiber
{
  public:
    /** Creates a fiber that will run @p body when first resumed. */
    explicit Fiber(std::function<void()> body,
                   std::size_t stack_bytes = 256 * 1024);
    ~Fiber();

    Fiber(const Fiber&) = delete;
    Fiber& operator=(const Fiber&) = delete;

    /** True once the body has returned. */
    bool finished() const { return finished_; }

    /**
     * Suspends @p from and resumes this fiber.  @p from may be the
     * scheduler's context wrapper (a Fiber constructed with no body).
     */
    void resume_from(Fiber& from);

    /** Wraps the calling host context so fibers can switch back to it. */
    static std::unique_ptr<Fiber> wrap_host();

  private:
    Fiber();  // host-context wrapper

    static void trampoline(unsigned hi, unsigned lo);
    void run_body();

    ucontext_t context_;
    std::unique_ptr<char[]> stack_;
    std::function<void()> body_;
    bool finished_ = false;
    bool host_wrapper_ = false;
};

}  // namespace sim
}  // namespace hoard

#endif  // HOARD_SIM_FIBER_H_
