#include "sim/machine.h"

#include <atomic>

#include "common/failure.h"

namespace hoard {
namespace sim {

namespace {

/// The machine whose run() loop is active on this host thread.
Machine* g_current_machine = nullptr;

/// Thread-exit hook for simulated threads (allocator magazine flush).
std::atomic<void (*)(void*)> g_thread_exit_hook{nullptr};

}  // namespace

Machine::Machine(int nprocs, const CostModel& costs, std::uint64_t quantum)
    : nprocs_(nprocs), costs_(costs), quantum_(quantum), cache_(costs_)
{
    HOARD_CHECK(nprocs >= 1 && nprocs <= 32);
}

Machine::~Machine() = default;

void
Machine::spawn(int proc, int logical_tid, std::function<void()> body)
{
    HOARD_CHECK(!in_run_);
    HOARD_CHECK(proc >= 0 && proc < nprocs_);

    auto thread = std::make_unique<SimThread>();
    SimThread* t = thread.get();
    t->proc_ = proc;
    t->logical_tid_ = logical_tid;
    t->index_ = static_cast<int>(threads_.size());
    t->fiber_ = std::make_unique<Fiber>([this, t, fn = std::move(body)] {
        fn();
        // Thread exit: flush this fiber's allocator magazines while the
        // fiber can still take virtual locks and be charged for it.
        void (*hook)(void*) =
            g_thread_exit_hook.load(std::memory_order_acquire);
        if (t->cache_slot_ != nullptr && hook != nullptr) {
            hook(t->cache_slot_);
            t->cache_slot_ = nullptr;
        }
        commit(t);
        t->state_ = SimThread::State::finished;
        if (t->clock_ > makespan_)
            makespan_ = t->clock_;
        switch_to_scheduler();
    });
    threads_.push_back(std::move(thread));
}

std::uint64_t
Machine::run()
{
    HOARD_CHECK(!in_run_);
    HOARD_CHECK(g_current_machine == nullptr);
    in_run_ = true;
    g_current_machine = this;
    scheduler_fiber_ = Fiber::wrap_host();
    makespan_ = 0;

    for (auto& t : threads_) {
        if (t->state_ == SimThread::State::ready)
            make_ready(t.get());
    }

    std::size_t finished = 0;
    while (finished < threads_.size()) {
        if (ready_.empty()) {
            HOARD_PANIC("simulated deadlock: %zu thread(s) blocked forever",
                        threads_.size() - finished);
        }
        SimThread* t = *ready_.begin();
        ready_.erase(ready_.begin());
        t->state_ = SimThread::State::running;
        running_ = t;
        t->fiber_->resume_from(*scheduler_fiber_);
        running_ = nullptr;
        if (t->state_ == SimThread::State::finished)
            ++finished;
    }

    g_current_machine = nullptr;
    in_run_ = false;
    return makespan_;
}

Machine*
Machine::current()
{
    return g_current_machine;
}

void
Machine::commit(SimThread* t)
{
    t->clock_ += t->pending_;
    t->pending_ = 0;
}

void
Machine::make_ready(SimThread* t)
{
    t->seq_ = next_seq_++;
    t->state_ = SimThread::State::ready;
    ready_.insert(t);
}

void
Machine::charge(std::uint64_t cycles)
{
    SimThread* t = running_;
    HOARD_DCHECK(t != nullptr);
    t->pending_ += cycles;
    if (t->pending_ >= quantum_)
        yield();
}

void
Machine::touch(const void* p, std::size_t bytes, bool write)
{
    SimThread* t = running_;
    HOARD_DCHECK(t != nullptr);
    charge(cache_.access(t->proc_, p, bytes, write));
}

void
Machine::yield()
{
    SimThread* t = running_;
    HOARD_DCHECK(t != nullptr);
    commit(t);
    // Fast path: still the earliest runnable thread, keep going without
    // a fiber switch.
    if (ready_.empty() || (*ready_.begin())->clock() >= t->clock_)
        return;
    make_ready(t);
    switch_to_scheduler();
}

void
Machine::block_running()
{
    SimThread* t = running_;
    HOARD_DCHECK(t != nullptr);
    commit(t);
    t->state_ = SimThread::State::blocked;
    switch_to_scheduler();
}

void
Machine::wake(SimThread* t, std::uint64_t at)
{
    HOARD_CHECK(t->state_ == SimThread::State::blocked);
    if (t->clock_ < at)
        t->clock_ = at;
    make_ready(t);
}

void
Machine::switch_to_scheduler()
{
    SimThread* t = running_;
    // swapcontext back into Machine::run's loop.
    Fiber* self = t->fiber_.get();
    // resume_from(scheduler <- self): swap current (self) out, scheduler in.
    scheduler_fiber_->resume_from(*self);
}

int
Machine::current_proc() const
{
    HOARD_DCHECK(running_ != nullptr);
    return running_->proc_;
}

int
Machine::current_tid() const
{
    HOARD_DCHECK(running_ != nullptr);
    return running_->logical_tid_;
}

void
Machine::rebind_tid(int logical_tid)
{
    HOARD_DCHECK(running_ != nullptr);
    running_->logical_tid_ = logical_tid;
}

void*&
Machine::thread_cache_slot()
{
    HOARD_DCHECK(running_ != nullptr);
    return running_->cache_slot_;
}

std::uint64_t
Machine::profile_site() const
{
    HOARD_DCHECK(running_ != nullptr);
    return running_->profile_site_;
}

void
Machine::set_profile_site(std::uint64_t token)
{
    HOARD_DCHECK(running_ != nullptr);
    running_->profile_site_ = token;
}

void
Machine::set_thread_exit_hook(void (*hook)(void*))
{
    g_thread_exit_hook.store(hook, std::memory_order_release);
}

std::uint64_t
Machine::current_clock()
{
    HOARD_DCHECK(running_ != nullptr);
    commit(running_);
    return running_->clock();
}

}  // namespace sim
}  // namespace hoard
