/**
 * @file
 * Cost model for the virtual-time multiprocessor.
 *
 * The paper evaluates on a 14-processor Sun Enterprise 5000; we do not
 * have that machine (or more than one CPU at all), so speedup figures are
 * regenerated on a simulated machine.  Costs are relative cycle counts,
 * chosen to respect the orderings that drive the paper's results:
 *
 *   cache hit  <<  cold miss  <  coherence transfer (remote dirty line)
 *   uncontended lock  <<  contended lock handoff
 *   allocator bookkeeping  <<  OS page mapping
 *
 * Absolute values are not calibrated to any real machine; only the shapes
 * of the resulting curves are claimed (see DESIGN.md §7).
 */

#ifndef HOARD_SIM_COST_MODEL_H_
#define HOARD_SIM_COST_MODEL_H_

#include <cstdint>

namespace hoard {
namespace sim {

/** Relative cycle costs charged by the simulator. */
struct CostModel
{
    std::uint64_t cache_hit = 1;        ///< line already local
    std::uint64_t cache_cold = 25;      ///< first touch of a line
    std::uint64_t cache_remote = 90;    ///< line last written by another proc
    std::uint64_t cache_shared_read = 8;///< read of a clean remote line

    std::uint64_t lock_base = 10;       ///< uncontended acquire or release
    std::uint64_t lock_handoff = 60;    ///< waking a waiter (lock line moves)
    std::uint64_t lock_waiter_overhead = 8;  ///< extra handoff cost per
                                             ///< additional spinner on the
                                             ///< lock line (invalidation
                                             ///< broadcast grows with P)

    std::uint64_t malloc_base = 30;     ///< size-class lookup + list pop
    std::uint64_t free_base = 25;       ///< mask + list push
    std::uint64_t list_op = 5;          ///< one fullness-group relink
    std::uint64_t superblock_init = 400;///< formatting a fresh superblock
    std::uint64_t os_map = 3000;        ///< mmap round trip
    std::uint64_t os_commit = 600;      ///< committing / reviving a span
                                        ///< (mprotect or zero-page refault)
    std::uint64_t os_purge = 900;       ///< decommitting a span (madvise)
    std::uint64_t transfer = 120;       ///< heap <-> global superblock move
    std::uint64_t bg_wakeup = 40;       ///< background-worker pass overhead
                                        ///< (hint-queue drain + watermark
                                        ///< scan, before any job charges
                                        ///< its own os_*/transfer costs)
};

}  // namespace sim
}  // namespace hoard

#endif  // HOARD_SIM_COST_MODEL_H_
