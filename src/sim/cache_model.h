/**
 * @file
 * Cache-coherence cost model.
 *
 * Tracks, per 64-byte line, which simulated processors hold the line and
 * which one wrote it last, and charges MESI-flavored costs: local hits
 * are cheap, cold misses moderate, and writes to lines dirtied by another
 * processor expensive.  This is the substrate that makes the paper's
 * active-false / passive-false benchmarks come out: an allocator that
 * hands pieces of one line to two processors causes the line to ping-pong
 * and the simulated threads to stop scaling.
 */

#ifndef HOARD_SIM_CACHE_MODEL_H_
#define HOARD_SIM_CACHE_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "common/memutil.h"
#include "sim/cost_model.h"

namespace hoard {
namespace sim {

/** Per-line sharing state and the cost charging logic. */
class CacheModel
{
  public:
    explicit CacheModel(const CostModel& costs) : costs_(costs) {}

    /**
     * Charges an access by @p proc to [p, p+bytes) and returns its cost
     * in cycles.  @p write selects invalidation semantics.
     */
    std::uint64_t
    access(int proc, const void* p, std::size_t bytes, bool write)
    {
        auto addr = reinterpret_cast<std::uintptr_t>(p);
        std::uintptr_t first = addr / detail::kCacheLineBytes;
        std::uintptr_t last = (addr + (bytes == 0 ? 0 : bytes - 1)) /
                              detail::kCacheLineBytes;
        std::uint64_t cost = 0;
        for (std::uintptr_t line = first; line <= last; ++line)
            cost += access_line(proc, line, write);
        return cost;
    }

    /** Drops all line state (used between independent runs). */
    void reset() { lines_.clear(); }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t cold_misses() const { return cold_; }
    std::uint64_t remote_transfers() const { return remote_; }
    std::uint64_t shared_reads() const { return shared_; }

  private:
    struct Line
    {
        std::uint32_t sharers = 0;  ///< bitmap of procs with a copy
        std::int8_t writer = -1;    ///< proc holding the line dirty
        std::uint16_t contention = 0;   ///< contended-writes countdown
        std::uint16_t owner_writes = 0; ///< writes by current writer
    };

    /** Cap on the contended window (one scheduling quantum's worth). */
    static constexpr std::uint16_t kContentionCap = 512;

    std::uint64_t
    access_line(int proc, std::uintptr_t line, bool write)
    {
        Line& st = lines_[line];
        const std::uint32_t me = 1u << proc;

        if (write) {
            if (st.writer == proc && st.sharers == me) {
                if (st.owner_writes < kContentionCap)
                    ++st.owner_writes;
                if (st.contention > 0) {
                    // The previous owner was mid-hammer when we stole
                    // the line: on real hardware our writes would
                    // interleave with theirs per write, so they price
                    // as transfers until the window drains.
                    --st.contention;
                    ++remote_;
                    return costs_.cache_remote;
                }
                ++hits_;
                return costs_.cache_hit;
            }
            std::uint64_t cost;
            if (st.writer == -1 && st.sharers == 0) {
                ++cold_;
                cost = costs_.cache_cold;
            } else if (st.writer != -1 && st.writer != proc) {
                // Steal.  Price the *symmetric* half of the duel: the
                // scheduler batched the previous owner's writes as
                // local hits, so the stealer inherits a contended
                // window of equal length.  A single-write migration
                // (cross-thread free) therefore costs ~2 transfers,
                // while two threads hammering one line price as
                // nearly all-remote — matching real coherence traffic
                // in both regimes.
                ++remote_;
                cost = costs_.cache_remote;
                st.contention = st.owner_writes;
            } else {
                // Upgrading a shared copy: invalidate other sharers.
                ++remote_;
                cost = (st.sharers & ~me) != 0 ? costs_.cache_remote
                                               : costs_.cache_hit;
                st.contention = 0;
            }
            st.sharers = me;
            st.writer = static_cast<std::int8_t>(proc);
            st.owner_writes = 1;
            return cost;
        }

        // Read.
        if ((st.sharers & me) != 0) {
            ++hits_;
            return costs_.cache_hit;
        }
        std::uint64_t cost;
        if (st.writer == -1 && st.sharers == 0) {
            ++cold_;
            cost = costs_.cache_cold;
        } else if (st.writer != -1 && st.writer != proc) {
            // Dirty elsewhere: full transfer, line becomes clean-shared.
            ++remote_;
            cost = costs_.cache_remote;
            st.writer = -1;
            st.contention = 0;
            st.owner_writes = 0;
        } else {
            ++shared_;
            cost = costs_.cache_shared_read;
        }
        st.sharers |= me;
        return cost;
    }

    const CostModel& costs_;
    std::unordered_map<std::uintptr_t, Line> lines_;
    std::uint64_t hits_ = 0;
    std::uint64_t cold_ = 0;
    std::uint64_t remote_ = 0;
    std::uint64_t shared_ = 0;
};

}  // namespace sim
}  // namespace hoard

#endif  // HOARD_SIM_CACHE_MODEL_H_
