#include "sim/fiber.h"

#include <cstdint>

#include "common/failure.h"

namespace hoard {
namespace sim {

Fiber::Fiber() : host_wrapper_(true)
{
    // Context is filled in by the first swapcontext() away from the host.
}

Fiber::Fiber(std::function<void()> body, std::size_t stack_bytes)
    : stack_(new char[stack_bytes]), body_(std::move(body))
{
    int rc = ::getcontext(&context_);
    HOARD_CHECK(rc == 0);
    context_.uc_stack.ss_sp = stack_.get();
    context_.uc_stack.ss_size = stack_bytes;
    context_.uc_link = nullptr;

    // makecontext passes ints only; split the this-pointer.
    auto self = reinterpret_cast<std::uintptr_t>(this);
    ::makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline),
                  2, static_cast<unsigned>(self >> 32),
                  static_cast<unsigned>(self & 0xffffffffu));
}

Fiber::~Fiber() = default;

void
Fiber::trampoline(unsigned hi, unsigned lo)
{
    auto self = reinterpret_cast<Fiber*>(
        (static_cast<std::uintptr_t>(hi) << 32) | lo);
    self->run_body();
    // Returning from a makecontext body with uc_link == nullptr exits the
    // process, so the body must never return here.
    HOARD_PANIC("fiber body returned without switching away");
}

void
Fiber::run_body()
{
    body_();
    finished_ = true;
    // The scheduler (Machine::run) switches finished fibers away; the
    // body_ callable is expected to end with a switch back to the
    // scheduler.  Machine arranges that via its worker wrapper.
    HOARD_PANIC("fiber finished without yielding to the scheduler");
}

void
Fiber::resume_from(Fiber& from)
{
    HOARD_CHECK(!finished_);
    int rc = ::swapcontext(&from.context_, &context_);
    HOARD_CHECK(rc == 0);
}

std::unique_ptr<Fiber>
Fiber::wrap_host()
{
    return std::unique_ptr<Fiber>(new Fiber());
}

}  // namespace sim
}  // namespace hoard
