/**
 * @file
 * Virtual-memory-first page substrate: large PROT_NONE reservations,
 * lock-free span carving, lazy commit, and madvise-based decommit.
 *
 * The mmap provider pays one syscall pair per superblock and gives the
 * address space back on every release, so a spike-then-idle workload
 * keeps nothing warm and a steady workload churns the kernel's VMA
 * tree.  This provider does what scalloc's span pools and every modern
 * production allocator do instead:
 *
 *   - **Reserve** address space in large arenas (default 1 GiB,
 *     PROT_NONE + MAP_NORESERVE): buys naturally-aligned carving and a
 *     contiguous hull for pennies — reserved_bytes is the only thing
 *     that grows.
 *   - **Carve** power-of-two spans from an arena with a lock-free bump
 *     cursor (one fetch_add per max-order chunk) plus per-order Treiber
 *     free stacks; a miss at one order splits a larger span buddy-style,
 *     pushing the unused halves onto their order stacks.  Spans are
 *     naturally aligned (an order-k span sits on a 2^k boundary) because
 *     arenas are max-span aligned and splitting preserves alignment.
 *   - **Commit lazily**: a span is mprotect'ed READ|WRITE the first
 *     time it is carved; recycled spans are already READ|WRITE and cost
 *     *zero syscalls* to hand out again (their pages were returned via
 *     MADV_DONTNEED, so they refault zeroed on first touch).
 *   - **Decommit instead of unmap**: unmap() gives the physical pages
 *     back with MADV_DONTNEED and parks the span on its free stack; the
 *     virtual range stays reserved and mapped, so mapped_bytes (the
 *     committed/RSS gauge) falls while reserved_bytes does not.
 *
 * Requests too large for the span machinery (beyond max_span_bytes)
 * fall back to a plain over-map-and-trim mmap, accounted in both
 * gauges, so huge allocations keep working unchanged.
 *
 * The ABA-prone Treiber stacks use 16-bit tags packed into the unused
 * high bits of the head word (user pointers fit in 48 bits on every
 * platform this tree targets); span metadata lives in a side node pool
 * (never handed to callers, never unmapped before the destructor), so
 * free spans hold **no committed pages at all**.
 *
 * The actual syscalls are behind protected virtual hooks (os_reserve /
 * os_commit / os_decommit / os_release / os_map_rw) so fault-injection
 * tests can fail reservation, commit, or decommit deterministically
 * and prove the layers above survive.
 */

#ifndef HOARD_OS_RESERVED_ARENA_H_
#define HOARD_OS_RESERVED_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "common/stats.h"
#include "os/page_provider.h"

namespace hoard {
namespace os {

/** Reserve-then-commit provider; see the file comment. */
class ReservedArenaProvider : public PageProvider
{
  public:
    struct Options
    {
        /** Virtual bytes reserved per arena (rounded up to a multiple
            of max_span_bytes).  HOARD_ARENA_BYTES under the facade. */
        std::size_t arena_bytes = std::size_t{1} << 30;

        /** Largest span the arena machinery serves; bigger requests
            fall back to plain mmap.  Power of two >= the page size.
            Also the bump-carve granularity.  HOARD_ARENA_SPAN. */
        std::size_t max_span_bytes = std::size_t{4} << 20;

        /** Apply MADV_HUGEPAGE to each arena reservation so the kernel
            may back superblock spans with transparent huge pages.
            HOARD_HUGEPAGE=1. */
        bool huge_pages = false;
    };

    ReservedArenaProvider();  ///< default Options
    explicit ReservedArenaProvider(Options options);
    ~ReservedArenaProvider() override;

    ReservedArenaProvider(const ReservedArenaProvider&) = delete;
    ReservedArenaProvider& operator=(const ReservedArenaProvider&) =
        delete;

    void* map(std::size_t bytes, std::size_t align) override;
    void unmap(void* p, std::size_t bytes) override;
    std::size_t mapped_bytes() const override
    {
        return committed_.current();
    }
    std::size_t peak_mapped_bytes() const override
    {
        return committed_.peak();
    }
    std::size_t reserved_bytes() const override
    {
        return reserved_.current();
    }
    std::size_t peak_reserved_bytes() const override
    {
        return reserved_.peak();
    }
    bool purge(void* p, std::size_t bytes) override;
    void unpurge(void* p, std::size_t bytes) override;

    /**
     * Ensures at least @p count spans of @p bytes sit on the order's
     * free stack already READ|WRITE, committing fresh carves as needed
     * so a later map() is one tagged pop with zero syscalls.  Racing
     * foreground maps make this best-effort: a span popped while being
     * examined is simply handed out warm.  Returns the spans newly
     * committed (the precommit telemetry the bg_precommits counter
     * aggregates).
     */
    std::size_t prewarm(std::size_t bytes, std::size_t count) override;

    /// @name Telemetry (diagnostics; not part of any reconciliation).
    /// @{
    std::uint64_t reservations() const { return reservations_.get(); }
    std::uint64_t commit_calls() const { return commit_calls_.get(); }
    std::uint64_t decommit_calls() const
    {
        return decommit_calls_.get();
    }
    std::uint64_t decommit_failures() const
    {
        return decommit_failures_.get();
    }
    std::uint64_t span_recycles() const { return span_recycles_.get(); }
    std::uint64_t span_carves() const { return span_carves_.get(); }
    std::uint64_t fallback_maps() const { return fallback_maps_.get(); }
    /// @}

    const Options& options() const { return options_; }

  protected:
    /// @name Syscall seams, overridable for fault injection.
    /// Each default implementation is exactly one syscall.
    /// @{

    /** Reserves @p bytes of PROT_NONE address space; nullptr on
        failure. */
    virtual void* os_reserve(std::size_t bytes);

    /** Makes [@p p, @p p + @p bytes) readable/writable. */
    virtual bool os_commit(void* p, std::size_t bytes);

    /** Returns the physical pages behind [@p p, @p p + @p bytes) while
        keeping the mapping; the next touch refaults zero pages. */
    virtual bool os_decommit(void* p, std::size_t bytes);

    /** Unmaps [@p p, @p p + @p bytes) outright. */
    virtual void os_release(void* p, std::size_t bytes);

    /** Plain committed mapping for the over-max-span fallback path. */
    virtual void* os_map_rw(std::size_t bytes);

    /// @}

  private:
    /// Side metadata for one free span.  Nodes are pooled and never
    /// unmapped before the destructor, so a stale Treiber traversal can
    /// always dereference them; the head tags make stale CASes fail.
    struct SpanNode
    {
        std::uintptr_t base = 0;
        /// False until the span's first commit: a span carved fresh
        /// from the PROT_NONE bump region needs an mprotect before it
        /// can be handed out; recycled spans are already READ|WRITE.
        bool rw = false;
        std::atomic<SpanNode*> next{nullptr};
    };

    /// One reserved region.  `bump` may overshoot `bytes`; carvers
    /// treat any offset past the end as exhaustion.
    struct ArenaChunk
    {
        std::uintptr_t base = 0;
        std::size_t bytes = 0;
        std::atomic<std::size_t> bump{0};
    };

    static constexpr int kMaxOrders = 32;
    static constexpr std::size_t kMaxChunks = 64;
    static constexpr std::size_t kMaxNodeChunks = 256;
    static constexpr std::size_t kNodeChunkBytes = std::size_t{256}
                                                   << 10;
    /// User-space pointers fit in 48 bits on the platforms this tree
    /// targets; the 16 bits above them hold the ABA tag.
    static constexpr std::uintptr_t kPtrMask =
        (std::uintptr_t{1} << 48) - 1;

    static SpanNode* node_of(std::uintptr_t head)
    {
        return reinterpret_cast<SpanNode*>(head & kPtrMask);
    }
    static std::uintptr_t pack(SpanNode* node, std::uintptr_t old_head)
    {
        return reinterpret_cast<std::uintptr_t>(node) |
               ((old_head + (std::uintptr_t{1} << 48)) & ~kPtrMask);
    }

    /** Lock-free tagged push of @p node onto @p head. */
    void push_node(std::atomic<std::uintptr_t>& head, SpanNode* node);

    /** Lock-free tagged pop from @p head; nullptr when empty. */
    SpanNode* pop_node(std::atomic<std::uintptr_t>& head);

    /** Pops or bump-allocates a metadata node; nullptr only when the
        pool cannot grow (then the caller releases the span outright). */
    SpanNode* alloc_node();

    /** Returns @p node to the pool's free stack. */
    void free_node(SpanNode* node);

    /** Parks a free span on its order stack; falls back to releasing
        the span (a permanent VA hole) if no metadata node is available. */
    void park_span(std::uintptr_t base, int order, bool rw);

    /**
     * Produces one span of exactly @p order: order stack first, then
     * larger orders split down, then a fresh bump carve (growing the
     * arena set if every chunk is exhausted).  Returns 0 on exhaustion.
     */
    std::uintptr_t take_span(int order, bool* rw);

    /** Bump-carves one max-order span; 0 when reservation fails. */
    std::uintptr_t carve_max_span();

    /** Reserves and registers one more arena chunk (caller holds
        grow_mutex_); false when the OS refuses. */
    bool grow_arena();

    /** True when @p p lies inside a registered arena chunk. */
    bool in_arena(const void* p) const;

    /** Over-map-and-trim path for requests the arena cannot serve. */
    void* map_fallback(std::size_t bytes, std::size_t align);

    /** Order serving a request of @p bytes aligned to @p align, or -1
        when it exceeds the span machinery. */
    int order_for(std::size_t bytes, std::size_t align) const;

    const Options options_;
    const std::size_t page_bytes_;
    const int min_order_;
    const int max_order_;

    /// Per-order Treiber stacks of free spans (tagged heads).
    std::atomic<std::uintptr_t> free_spans_[kMaxOrders] = {};
    /// Free metadata nodes (tagged head).
    std::atomic<std::uintptr_t> free_nodes_{0};

    /// Registered reservations; append-only, count published with
    /// release so lock-free readers see initialized entries.
    ArenaChunk chunks_[kMaxChunks];
    std::atomic<std::size_t> chunk_count_{0};
    std::mutex grow_mutex_;

    /// Node-pool backing chunks (plain RW mappings).  node_bump_ is a
    /// monotonic global node index — chunk = idx / nodes-per-chunk —
    /// so appending a chunk never races with concurrent claims.
    void* node_chunks_[kMaxNodeChunks] = {};
    std::atomic<std::size_t> node_chunk_count_{0};
    std::atomic<std::size_t> node_bump_{0};
    std::mutex node_mutex_;

    detail::Gauge committed_;
    detail::Gauge reserved_;
    detail::Counter reservations_;
    detail::Counter commit_calls_;
    detail::Counter decommit_calls_;
    detail::Counter decommit_failures_;
    detail::Counter span_recycles_;
    detail::Counter span_carves_;
    detail::Counter fallback_maps_;
};

}  // namespace os
}  // namespace hoard

#endif  // HOARD_OS_RESERVED_ARENA_H_
