#include "os/page_provider.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <limits>

#include "common/failure.h"
#include "common/mathutil.h"

namespace hoard {
namespace os {

namespace {

std::size_t
page_size()
{
    static const std::size_t ps =
        static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    return ps;
}

}  // namespace

void*
MmapPageProvider::map(std::size_t bytes, std::size_t align)
{
    HOARD_CHECK(bytes > 0);
    HOARD_CHECK(detail::is_pow2(align));

    const std::size_t ps = page_size();
    // Absurd requests (page rounding or the alignment over-map would
    // overflow size_t) are exhaustion, not caller error: they arise
    // from legitimate huge allocation sizes, so report OOM rather than
    // aborting.
    constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
    if (bytes > kMax - (ps - 1))
        return nullptr;
    bytes = detail::align_up(bytes, ps);
    if (align < ps)
        align = ps;
    if (bytes > kMax - (align - ps))
        return nullptr;

    // Over-map so an aligned sub-range of the right size must exist,
    // then trim the misaligned head and the surplus tail.
    const std::size_t span = bytes + align - ps;
    void* raw = ::mmap(nullptr, span, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (raw == MAP_FAILED)
        return nullptr;

    auto base = reinterpret_cast<std::uintptr_t>(raw);
    std::uintptr_t aligned = detail::align_up(base, align);

    if (std::size_t head = aligned - base; head != 0)
        ::munmap(raw, head);
    if (std::size_t tail = (base + span) - (aligned + bytes); tail != 0)
        ::munmap(reinterpret_cast<void*>(aligned + bytes), tail);

    gauge_.add(bytes);
    return reinterpret_cast<void*>(aligned);
}

void
MmapPageProvider::unmap(void* p, std::size_t bytes)
{
    HOARD_CHECK(p != nullptr);
    bytes = detail::align_up(bytes, page_size());
    int rc = ::munmap(p, bytes);
    HOARD_CHECK(rc == 0);
    gauge_.sub(bytes);
}

MmapPageProvider&
default_page_provider()
{
    static MmapPageProvider provider;
    return provider;
}

}  // namespace os
}  // namespace hoard
