#include "os/page_provider.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <limits>
#include <new>

#include "common/failure.h"
#include "common/mathutil.h"
#include "os/reserved_arena.h"

namespace hoard {
namespace os {

namespace {

std::size_t
page_size()
{
    static const std::size_t ps =
        static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    return ps;
}

std::size_t
env_size(const char* name, std::size_t fallback)
{
    const char* v = std::getenv(name);
    if (v == nullptr)
        return fallback;
    char* end = nullptr;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    return end != v ? static_cast<std::size_t>(parsed) : fallback;
}

}  // namespace

std::size_t
page_bytes()
{
    return page_size();
}

void*
MmapPageProvider::map(std::size_t bytes, std::size_t align)
{
    HOARD_CHECK(bytes > 0);
    HOARD_CHECK(detail::is_pow2(align));

    const std::size_t ps = page_size();
    // Absurd requests (page rounding or the alignment over-map would
    // overflow size_t) are exhaustion, not caller error: they arise
    // from legitimate huge allocation sizes, so report OOM rather than
    // aborting.
    constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
    if (bytes > kMax - (ps - 1))
        return nullptr;
    bytes = detail::align_up(bytes, ps);
    if (align < ps)
        align = ps;
    if (bytes > kMax - (align - ps))
        return nullptr;

    // Over-map so an aligned sub-range of the right size must exist,
    // then trim the misaligned head and surplus tail slices in one
    // pass.  Each munmap is checked: a silently failed trim would
    // leak live PROT_READ|WRITE pages outside every gauge.
    const std::size_t span = bytes + align - ps;
    void* raw = ::mmap(nullptr, span, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (raw == MAP_FAILED)
        return nullptr;

    auto base = reinterpret_cast<std::uintptr_t>(raw);
    std::uintptr_t aligned = detail::align_up(base, align);

    const struct
    {
        std::uintptr_t start;
        std::size_t bytes;
    } slices[2] = {
        {base, aligned - base},
        {aligned + bytes, (base + span) - (aligned + bytes)},
    };
    for (const auto& slice : slices) {
        if (slice.bytes == 0)
            continue;
        int rc = ::munmap(reinterpret_cast<void*>(slice.start),
                          slice.bytes);
        HOARD_CHECK(rc == 0);
    }

    gauge_.add(bytes);
    return reinterpret_cast<void*>(aligned);
}

void
MmapPageProvider::unmap(void* p, std::size_t bytes)
{
    HOARD_CHECK(p != nullptr);
    bytes = detail::align_up(bytes, page_size());
    int rc = ::munmap(p, bytes);
    HOARD_CHECK(rc == 0);
    gauge_.sub(bytes);
}

bool
MmapPageProvider::purge(void* p, std::size_t bytes)
{
    HOARD_CHECK(p != nullptr);
    HOARD_CHECK(detail::is_aligned(p, page_size()));
    bytes = detail::align_up(bytes, page_size());
    if (::madvise(p, bytes, MADV_DONTNEED) != 0)
        return false;
    gauge_.sub(bytes);
    return true;
}

void
MmapPageProvider::unpurge(void* /* p */, std::size_t bytes)
{
    gauge_.add(detail::align_up(bytes, page_size()));
}

PageProvider&
default_page_provider()
{
    // Constructed in static storage with placement new: the first call
    // can arrive from inside malloc bootstrap (the LD_PRELOAD shim's
    // global allocator), where an operator-new recursion would
    // deadlock static initialization.  Deliberately never destroyed —
    // allocator singletons unmap through it during process teardown.
    alignas(ReservedArenaProvider) static unsigned char
        storage[sizeof(ReservedArenaProvider)];
    static ReservedArenaProvider* provider = [] {
        ReservedArenaProvider::Options opt;
        opt.arena_bytes =
            env_size("HOARD_ARENA_BYTES", opt.arena_bytes);
        opt.max_span_bytes =
            env_size("HOARD_ARENA_SPAN", opt.max_span_bytes);
        opt.huge_pages = env_size("HOARD_HUGEPAGE", 0) != 0;
        return new (storage) ReservedArenaProvider(opt);
    }();
    return *provider;
}

}  // namespace os
}  // namespace hoard
