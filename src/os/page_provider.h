/**
 * @file
 * OS page substrate: aligned chunk mapping.
 *
 * Every superblock in this system lives at an S-aligned address so that
 * `block -> superblock` is a single mask (paper §4.1 stores a pointer per
 * block; alignment gives us the same lookup with zero per-block header).
 * The provider maps chunks with that alignment guarantee and accounts for
 * the bytes currently mapped.
 *
 * All allocators (Hoard and the baselines) draw memory exclusively from a
 * PageProvider, so the os_bytes gauge is the ground truth for the memory
 * consumption tables.
 */

#ifndef HOARD_OS_PAGE_PROVIDER_H_
#define HOARD_OS_PAGE_PROVIDER_H_

#include <cstddef>

#include "common/stats.h"

namespace hoard {
namespace os {

/** Abstract source of aligned memory chunks. */
class PageProvider
{
  public:
    virtual ~PageProvider() = default;

    /**
     * Maps @p bytes of zeroed memory aligned to @p align (a power of two).
     * @return the chunk, or nullptr when the system is out of memory.
     */
    virtual void* map(std::size_t bytes, std::size_t align) = 0;

    /** Returns a chunk previously obtained from map() with same size. */
    virtual void unmap(void* p, std::size_t bytes) = 0;

    /** Bytes currently mapped through this provider. */
    virtual std::size_t mapped_bytes() const = 0;

    /** High-water mark of mapped_bytes(). */
    virtual std::size_t peak_mapped_bytes() const = 0;
};

/**
 * mmap-backed provider.  Alignment is produced by over-mapping by
 * align-1 bytes and trimming the misaligned head/tail, so no memory is
 * wasted beyond the request.
 */
class MmapPageProvider final : public PageProvider
{
  public:
    void* map(std::size_t bytes, std::size_t align) override;
    void unmap(void* p, std::size_t bytes) override;
    std::size_t mapped_bytes() const override { return gauge_.current(); }
    std::size_t peak_mapped_bytes() const override { return gauge_.peak(); }

  private:
    detail::Gauge gauge_;
};

/** Process-wide default provider (one per process is plenty). */
MmapPageProvider& default_page_provider();

}  // namespace os
}  // namespace hoard

#endif  // HOARD_OS_PAGE_PROVIDER_H_
