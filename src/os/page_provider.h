/**
 * @file
 * OS page substrate: aligned chunk mapping with a virtual-memory-first
 * accounting model.
 *
 * Every superblock in this system lives at an S-aligned address so that
 * `block -> superblock` is a single mask (paper §4.1 stores a pointer per
 * block; alignment gives us the same lookup with zero per-block header).
 * The provider maps chunks with that alignment guarantee and accounts
 * two footprints separately:
 *
 *   - reserved_bytes: virtual address space this provider holds from
 *     the OS (PROT_NONE arenas included).  Cheap; never the number a
 *     production deployment is judged on.
 *   - mapped_bytes, a.k.a. *committed* bytes: memory the provider has
 *     actually handed out readable/writable — the RSS ground truth the
 *     allocator's committed_bytes gauge mirrors.
 *
 * A plain mmap provider reserves exactly what it commits, so the two
 * gauges coincide; the reserved-arena provider (os/reserved_arena.h)
 * is where they diverge.  Providers may additionally support purge():
 * returning the physical pages behind a committed range to the OS
 * (madvise) while keeping the range mapped, so a later touch revives it
 * as zero-fill-on-demand with no syscall.
 */

#ifndef HOARD_OS_PAGE_PROVIDER_H_
#define HOARD_OS_PAGE_PROVIDER_H_

#include <cstddef>

#include "common/stats.h"

namespace hoard {
namespace os {

/** Host page size in bytes (cached sysconf). */
std::size_t page_bytes();

/** Abstract source of aligned memory chunks. */
class PageProvider
{
  public:
    virtual ~PageProvider() = default;

    /**
     * Maps @p bytes of zeroed memory aligned to @p align (a power of two).
     * @return the chunk, or nullptr when the system is out of memory.
     */
    virtual void* map(std::size_t bytes, std::size_t align) = 0;

    /** Returns a chunk previously obtained from map() with same size. */
    virtual void unmap(void* p, std::size_t bytes) = 0;

    /** Committed bytes currently handed out through this provider —
        the RSS ground truth. */
    virtual std::size_t mapped_bytes() const = 0;

    /** High-water mark of mapped_bytes(). */
    virtual std::size_t peak_mapped_bytes() const = 0;

    /**
     * Virtual address space held from the OS, committed or not.  A
     * provider with no reservation machinery reserves exactly what it
     * commits, hence the default.
     */
    virtual std::size_t reserved_bytes() const { return mapped_bytes(); }

    /** High-water mark of reserved_bytes(). */
    virtual std::size_t
    peak_reserved_bytes() const
    {
        return peak_mapped_bytes();
    }

    /**
     * Decommits the page-aligned range [@p p, @p p + @p bytes) inside a
     * chunk this provider mapped: physical pages go back to the OS, the
     * range stays mapped read/write, and the next touch refaults zeroed
     * pages.  On success the committed gauge drops by @p bytes.  Returns
     * false when the provider does not support purging or the kernel
     * refused (the range then stays committed and accounted — callers
     * must treat failure as "nothing happened").
     */
    virtual bool
    purge(void* /* p */, std::size_t /* bytes */)
    {
        return false;
    }

    /**
     * Re-accounts a previously purged range as committed again (the
     * pages themselves revive lazily on touch; no syscall happens
     * here).  Callers pair every successful purge() with either an
     * unpurge() before reuse or an unpurge() before unmap(), so the
     * committed gauge never double-counts.
     */
    virtual void unpurge(void* /* p */, std::size_t /* bytes */) {}

    /**
     * Pre-commit seam for the background engine: makes up to @p count
     * recyclable spans of @p bytes immediately mappable with zero
     * syscalls, paying any mprotect here — off the foreground critical
     * path — instead of inside a later map().  Best effort and purely
     * an optimization: the committed gauge is untouched (an RW
     * protection change commits no physical pages) and a provider with
     * no reservation machinery has nothing to warm, hence the no-op
     * default.  Returns the number of spans actually transitioned.
     */
    virtual std::size_t
    prewarm(std::size_t /* bytes */, std::size_t /* count */)
    {
        return 0;
    }
};

/**
 * mmap-backed provider.  Alignment is produced by over-mapping by
 * align-1 bytes and trimming the misaligned head/tail, so no memory is
 * wasted beyond the request.  Purge is supported (anonymous private
 * mappings take MADV_DONTNEED), so the allocator's purge pass works
 * even without the reserved-arena layer.
 */
class MmapPageProvider final : public PageProvider
{
  public:
    void* map(std::size_t bytes, std::size_t align) override;
    void unmap(void* p, std::size_t bytes) override;
    std::size_t mapped_bytes() const override { return gauge_.current(); }
    std::size_t peak_mapped_bytes() const override { return gauge_.peak(); }
    bool purge(void* p, std::size_t bytes) override;
    void unpurge(void* p, std::size_t bytes) override;

  private:
    detail::Gauge gauge_;
};

/**
 * Process-wide default provider: the reserved-arena provider from
 * os/reserved_arena.h (env-tunable via HOARD_ARENA_BYTES /
 * HOARD_ARENA_SPAN / HOARD_HUGEPAGE), constructed on first use in
 * preallocated storage — no heap allocation, so the call is safe from
 * inside malloc bootstrap — and never destroyed, so allocators with
 * static storage duration can release memory during process teardown.
 */
PageProvider& default_page_provider();

}  // namespace os
}  // namespace hoard

#endif  // HOARD_OS_PAGE_PROVIDER_H_
