/**
 * @file
 * Bump arena for allocator metadata.
 *
 * Allocator-internal bookkeeping (heap tables, size-class tables) must not
 * recurse into any malloc, so it is carved out of provider-mapped pages by
 * this simple monotonic arena.  Freed only wholesale at arena destruction.
 */

#ifndef HOARD_OS_META_ARENA_H_
#define HOARD_OS_META_ARENA_H_

#include <cstddef>
#include <mutex>
#include <new>

#include "common/mathutil.h"
#include "os/page_provider.h"

namespace hoard {
namespace os {

/** Monotonic allocator for internal metadata; thread-safe. */
class MetaArena
{
  public:
    explicit MetaArena(PageProvider& provider,
                       std::size_t chunk_bytes = 64 * 1024)
        : provider_(provider), chunk_bytes_(chunk_bytes)
    {}

    ~MetaArena() { release_all(); }

    MetaArena(const MetaArena&) = delete;
    MetaArena& operator=(const MetaArena&) = delete;

    /**
     * Allocates @p bytes with @p align alignment.  Returns nullptr when
     * the provider is out of memory; the arena's cursor and accounting
     * are unchanged on the failure path, so callers can retry after
     * relieving pressure.
     */
    void*
    allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t))
    {
        std::lock_guard<std::mutex> guard(mutex_);
        std::uintptr_t at = detail::align_up(cursor_, align);
        if (current_ == nullptr || at + bytes > chunk_limit_) {
            if (!grow(bytes, align))
                return nullptr;
            at = detail::align_up(cursor_, align);
        }
        void* p = reinterpret_cast<void*>(at);
        cursor_ = at + bytes;
        allocated_ += bytes;
        return p;
    }

    /** Constructs a T in arena storage; nullptr on exhaustion. */
    template <typename T, typename... Args>
    T*
    make(Args&&... args)
    {
        void* p = allocate(sizeof(T), alignof(T));
        if (p == nullptr)
            return nullptr;
        return new (p) T(static_cast<Args&&>(args)...);
    }

    /**
     * Constructs an array of @p n default-initialized Ts; nullptr on
     * exhaustion.
     */
    template <typename T>
    T*
    make_array(std::size_t n)
    {
        void* p = allocate(sizeof(T) * n, alignof(T));
        if (p == nullptr)
            return nullptr;
        T* arr = static_cast<T*>(p);
        for (std::size_t i = 0; i < n; ++i)
            new (arr + i) T();
        return arr;
    }

    /** Total payload bytes handed out. */
    std::size_t allocated_bytes() const { return allocated_; }

  private:
    struct ChunkHeader
    {
        ChunkHeader* next;
        std::size_t bytes;
    };

    /**
     * Maps a fresh chunk big enough for @p bytes at @p align (the extra
     * @p align covers re-aligning the post-header cursor).  Returns
     * false — leaving every member untouched — when the provider cannot
     * supply memory.
     */
    bool
    grow(std::size_t bytes, std::size_t align)
    {
        std::size_t need =
            detail::align_up(sizeof(ChunkHeader) + bytes + align,
                             chunk_bytes_);
        void* chunk = provider_.map(need, alignof(std::max_align_t));
        if (chunk == nullptr)
            return false;
        auto* hdr = static_cast<ChunkHeader*>(chunk);
        hdr->next = chunks_;
        hdr->bytes = need;
        chunks_ = hdr;
        current_ = chunk;
        cursor_ = reinterpret_cast<std::uintptr_t>(chunk) +
                  sizeof(ChunkHeader);
        chunk_limit_ = reinterpret_cast<std::uintptr_t>(chunk) + need;
        return true;
    }

    void
    release_all()
    {
        std::lock_guard<std::mutex> guard(mutex_);
        while (chunks_ != nullptr) {
            ChunkHeader* next = chunks_->next;
            provider_.unmap(chunks_, chunks_->bytes);
            chunks_ = next;
        }
        current_ = nullptr;
    }

    PageProvider& provider_;
    const std::size_t chunk_bytes_;
    std::mutex mutex_;
    ChunkHeader* chunks_ = nullptr;
    void* current_ = nullptr;
    std::uintptr_t cursor_ = 0;
    std::uintptr_t chunk_limit_ = 0;
    std::size_t allocated_ = 0;
};

}  // namespace os
}  // namespace hoard

#endif  // HOARD_OS_META_ARENA_H_
