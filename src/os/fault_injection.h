/**
 * @file
 * Fault-injecting and memory-pressure decorators for the page substrate.
 *
 * Every allocator in this repository draws memory exclusively from a
 * PageProvider, so wrapping the provider is enough to subject the whole
 * stack to deterministic out-of-memory scenarios:
 *
 *   - FaultInjectingPageProvider: fails map() calls on a seedable,
 *     reproducible schedule (fail the nth call, fail every kth call, or
 *     fail with probability p under a fixed RNG seed).  Models transient
 *     mmap failure (ENOMEM under overcommit pressure).
 *   - CappedPageProvider: enforces a hard byte budget, modeling an RSS
 *     limit or cgroup memory ceiling.  map() fails once the budget is
 *     reached and succeeds again after enough memory is unmapped; the
 *     budget can be shrunk at runtime to model mounting pressure.
 *
 * Both decorators are thread-safe (the allocators map from many heaps
 * concurrently) and assume exclusive use of the wrapped provider for
 * accounting purposes.  They are cheap enough to leave in test builds
 * but are not intended for production hot paths.
 */

#ifndef HOARD_OS_FAULT_INJECTION_H_
#define HOARD_OS_FAULT_INJECTION_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>

#include "common/failure.h"
#include "common/rng.h"
#include "common/stats.h"
#include "os/page_provider.h"

namespace hoard {
namespace os {

/**
 * Decorator that fails map() calls on a deterministic schedule.
 *
 * Exactly one schedule is active at a time; setting a new one replaces
 * the previous and resets the call position, so tests can re-arm the
 * same provider between phases.  unmap() is never failed — a provider
 * that loses memory on release would corrupt every accounting gauge
 * above it, which is not a scenario any allocator can survive.
 */
class FaultInjectingPageProvider final : public PageProvider
{
  public:
    explicit FaultInjectingPageProvider(PageProvider& inner)
        : inner_(inner)
    {}

    /** Disables injection; all calls pass through. */
    void
    clear_schedule()
    {
        std::lock_guard<std::mutex> guard(mutex_);
        mode_ = Mode::none;
        position_ = 0;
    }

    /** Fails the @p n-th map() from now (1-based), once. */
    void
    fail_nth_map(std::uint64_t n)
    {
        HOARD_CHECK(n > 0);
        std::lock_guard<std::mutex> guard(mutex_);
        mode_ = Mode::nth;
        param_ = n;
        position_ = 0;
    }

    /** Fails every @p k-th map() from now (the kth, 2kth, ...). */
    void
    fail_every_kth_map(std::uint64_t k)
    {
        HOARD_CHECK(k > 0);
        std::lock_guard<std::mutex> guard(mutex_);
        mode_ = Mode::every_k;
        param_ = k;
        position_ = 0;
    }

    /** Fails each map() independently with probability @p p (seeded). */
    void
    fail_with_probability(double p, std::uint64_t seed)
    {
        HOARD_CHECK(p >= 0.0 && p <= 1.0);
        std::lock_guard<std::mutex> guard(mutex_);
        mode_ = Mode::probabilistic;
        probability_ = p;
        rng_ = detail::Rng(seed);
        position_ = 0;
    }

    /**
     * Fails every purge() while set (modeling madvise refusing, e.g.
     * EAGAIN on a locked range).  Purge failure is the one fault a
     * provider reports by return value rather than by nullptr, so it
     * gets its own toggle instead of riding the map() schedule.
     */
    void
    set_fail_purges(bool fail)
    {
        std::lock_guard<std::mutex> guard(mutex_);
        fail_purges_ = fail;
    }

    void*
    map(std::size_t bytes, std::size_t align) override
    {
        map_calls_.add();
        if (should_fail()) {
            injected_failures_.add();
            return nullptr;
        }
        return inner_.map(bytes, align);
    }

    void
    unmap(void* p, std::size_t bytes) override
    {
        unmap_calls_.add();
        inner_.unmap(p, bytes);
    }

    std::size_t mapped_bytes() const override
    {
        return inner_.mapped_bytes();
    }

    std::size_t peak_mapped_bytes() const override
    {
        return inner_.peak_mapped_bytes();
    }

    std::size_t reserved_bytes() const override
    {
        return inner_.reserved_bytes();
    }

    std::size_t peak_reserved_bytes() const override
    {
        return inner_.peak_reserved_bytes();
    }

    bool
    purge(void* p, std::size_t bytes) override
    {
        purge_calls_.add();
        {
            std::lock_guard<std::mutex> guard(mutex_);
            if (fail_purges_) {
                injected_purge_failures_.add();
                return false;
            }
        }
        return inner_.purge(p, bytes);
    }

    void
    unpurge(void* p, std::size_t bytes) override
    {
        inner_.unpurge(p, bytes);
    }

    /// @name Injection telemetry.
    /// @{
    std::uint64_t map_calls() const { return map_calls_.get(); }
    std::uint64_t unmap_calls() const { return unmap_calls_.get(); }
    std::uint64_t injected_failures() const
    {
        return injected_failures_.get();
    }
    std::uint64_t purge_calls() const { return purge_calls_.get(); }
    std::uint64_t injected_purge_failures() const
    {
        return injected_purge_failures_.get();
    }
    /// @}

  private:
    enum class Mode
    {
        none,
        nth,
        every_k,
        probabilistic,
    };

    bool
    should_fail()
    {
        std::lock_guard<std::mutex> guard(mutex_);
        switch (mode_) {
        case Mode::none:
            return false;
        case Mode::nth:
            if (++position_ == param_) {
                mode_ = Mode::none;  // one-shot
                return true;
            }
            return false;
        case Mode::every_k:
            if (++position_ == param_) {
                position_ = 0;
                return true;
            }
            return false;
        case Mode::probabilistic:
            return rng_.uniform() < probability_;
        }
        return false;
    }

    PageProvider& inner_;
    std::mutex mutex_;
    bool fail_purges_ = false;
    Mode mode_ = Mode::none;
    std::uint64_t param_ = 0;
    std::uint64_t position_ = 0;
    double probability_ = 0.0;
    detail::Rng rng_{0};
    detail::Counter map_calls_;
    detail::Counter unmap_calls_;
    detail::Counter injected_failures_;
    detail::Counter purge_calls_;
    detail::Counter injected_purge_failures_;
};

/**
 * Decorator that enforces a hard byte budget — a model of a fixed RSS
 * ceiling.  A map() whose request would push the mapped total past the
 * budget fails with nullptr; releasing memory restores headroom.  The
 * accounted charge is whatever the inner provider actually books (page
 * rounding included), measured as the delta of its gauge, so this
 * decorator must wrap a provider it uses exclusively.
 */
class CappedPageProvider final : public PageProvider
{
  public:
    static constexpr std::size_t kUnlimited =
        std::numeric_limits<std::size_t>::max();

    explicit CappedPageProvider(PageProvider& inner,
                                std::size_t budget_bytes = kUnlimited)
        : inner_(inner), budget_(budget_bytes)
    {}

    /**
     * Adjusts the budget.  Shrinking below the currently mapped total is
     * allowed (models pressure arriving while memory is out): existing
     * mappings stay valid, and every new map() fails until enough memory
     * is returned.
     */
    void
    set_budget(std::size_t budget_bytes)
    {
        std::lock_guard<std::mutex> guard(mutex_);
        budget_ = budget_bytes;
    }

    std::size_t
    budget() const
    {
        std::lock_guard<std::mutex> guard(mutex_);
        return budget_;
    }

    void*
    map(std::size_t bytes, std::size_t align) override
    {
        std::lock_guard<std::mutex> guard(mutex_);
        std::size_t before = inner_.mapped_bytes();
        if (bytes > budget_ || before > budget_ - bytes) {
            budget_rejections_.add();
            return nullptr;
        }
        void* p = inner_.map(bytes, align);
        if (p == nullptr)
            return nullptr;
        // Re-check against the actual page-rounded charge; a request
        // that rounds past the ceiling is over budget, not over by a
        // little.
        if (inner_.mapped_bytes() > budget_) {
            inner_.unmap(p, bytes);
            budget_rejections_.add();
            return nullptr;
        }
        gauge_.add(inner_.mapped_bytes() - before);
        return p;
    }

    void
    unmap(void* p, std::size_t bytes) override
    {
        std::lock_guard<std::mutex> guard(mutex_);
        std::size_t before = inner_.mapped_bytes();
        inner_.unmap(p, bytes);
        gauge_.sub(before - inner_.mapped_bytes());
    }

    std::size_t mapped_bytes() const override { return gauge_.current(); }
    std::size_t peak_mapped_bytes() const override { return gauge_.peak(); }

    // The budget models an RSS ceiling, so it is charged on *committed*
    // bytes; address-space reservation is reported but unbounded.
    std::size_t reserved_bytes() const override
    {
        return inner_.reserved_bytes();
    }

    std::size_t peak_reserved_bytes() const override
    {
        return inner_.peak_reserved_bytes();
    }

    bool
    purge(void* p, std::size_t bytes) override
    {
        std::lock_guard<std::mutex> guard(mutex_);
        std::size_t before = inner_.mapped_bytes();
        if (!inner_.purge(p, bytes))
            return false;
        // A successful purge lowers the committed total, restoring
        // budget headroom exactly like an unmap.
        gauge_.sub(before - inner_.mapped_bytes());
        return true;
    }

    void
    unpurge(void* p, std::size_t bytes) override
    {
        std::lock_guard<std::mutex> guard(mutex_);
        std::size_t before = inner_.mapped_bytes();
        inner_.unpurge(p, bytes);
        gauge_.add(inner_.mapped_bytes() - before);
    }

    /** map() calls refused because they would exceed the budget. */
    std::uint64_t budget_rejections() const
    {
        return budget_rejections_.get();
    }

  private:
    PageProvider& inner_;
    mutable std::mutex mutex_;
    std::size_t budget_;
    detail::Gauge gauge_;
    detail::Counter budget_rejections_;
};

}  // namespace os
}  // namespace hoard

#endif  // HOARD_OS_FAULT_INJECTION_H_
