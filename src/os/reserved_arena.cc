#include "os/reserved_arena.h"

#include <sys/mman.h>
#include <unistd.h>

#include <limits>
#include <mutex>
#include <new>

#include "common/failure.h"
#include "common/mathutil.h"

namespace hoard {
namespace os {

namespace {

std::size_t
runtime_page_size()
{
    static const std::size_t ps =
        static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    return ps;
}

/**
 * Snaps user-supplied knobs onto the grid the carver needs: a
 * power-of-two max span no smaller than a page, and arenas that are a
 * whole number of max spans so the bump cursor tiles them exactly.
 */
ReservedArenaProvider::Options
normalize(ReservedArenaProvider::Options o)
{
    const std::size_t ps = runtime_page_size();
    if (o.max_span_bytes < ps)
        o.max_span_bytes = ps;
    o.max_span_bytes = detail::next_pow2(o.max_span_bytes);
    if (o.arena_bytes < o.max_span_bytes)
        o.arena_bytes = o.max_span_bytes;
    o.arena_bytes = detail::align_up(o.arena_bytes, o.max_span_bytes);
    return o;
}

}  // namespace

ReservedArenaProvider::ReservedArenaProvider()
    : ReservedArenaProvider(Options())
{
}

ReservedArenaProvider::ReservedArenaProvider(Options options)
    : options_(normalize(options)),
      page_bytes_(runtime_page_size()),
      min_order_(static_cast<int>(detail::floor_log2(page_bytes_))),
      max_order_(
          static_cast<int>(detail::floor_log2(options_.max_span_bytes)))
{
    HOARD_CHECK(max_order_ < kMaxOrders);
    HOARD_CHECK(min_order_ <= max_order_);
}

ReservedArenaProvider::~ReservedArenaProvider()
{
    // Failed decommits punch munmap holes into arena chunks; munmap
    // over a range with holes still succeeds, so a whole-chunk unmap
    // is always the right teardown.
    const std::size_t n = chunk_count_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i)
        ::munmap(reinterpret_cast<void*>(chunks_[i].base),
                 chunks_[i].bytes);
    const std::size_t nc =
        node_chunk_count_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < nc; ++i)
        ::munmap(node_chunks_[i], kNodeChunkBytes);
}

// ---------------------------------------------------------------------------
// Syscall seams.

void*
ReservedArenaProvider::os_reserve(std::size_t bytes)
{
    void* p = ::mmap(nullptr, bytes, PROT_NONE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    return p == MAP_FAILED ? nullptr : p;
}

bool
ReservedArenaProvider::os_commit(void* p, std::size_t bytes)
{
    return ::mprotect(p, bytes, PROT_READ | PROT_WRITE) == 0;
}

bool
ReservedArenaProvider::os_decommit(void* p, std::size_t bytes)
{
    return ::madvise(p, bytes, MADV_DONTNEED) == 0;
}

void
ReservedArenaProvider::os_release(void* p, std::size_t bytes)
{
    int rc = ::munmap(p, bytes);
    HOARD_CHECK(rc == 0);
}

void*
ReservedArenaProvider::os_map_rw(std::size_t bytes)
{
    void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    return p == MAP_FAILED ? nullptr : p;
}

// ---------------------------------------------------------------------------
// Tagged Treiber stacks and the span-node pool.

void
ReservedArenaProvider::push_node(std::atomic<std::uintptr_t>& head,
                                 SpanNode* node)
{
    std::uintptr_t old = head.load(std::memory_order_relaxed);
    for (;;) {
        node->next.store(node_of(old), std::memory_order_relaxed);
        if (head.compare_exchange_weak(old, pack(node, old),
                                       std::memory_order_release,
                                       std::memory_order_relaxed))
            return;
    }
}

ReservedArenaProvider::SpanNode*
ReservedArenaProvider::pop_node(std::atomic<std::uintptr_t>& head)
{
    std::uintptr_t old = head.load(std::memory_order_acquire);
    for (;;) {
        SpanNode* node = node_of(old);
        if (node == nullptr)
            return nullptr;
        // Safe even if another thread pops and recycles `node` first:
        // pool nodes are never unmapped, and the tag in `old` makes the
        // CAS fail on any interleaving that changed the stack.
        SpanNode* next = node->next.load(std::memory_order_relaxed);
        if (head.compare_exchange_weak(old, pack(next, old),
                                       std::memory_order_acquire,
                                       std::memory_order_acquire))
            return node;
    }
}

ReservedArenaProvider::SpanNode*
ReservedArenaProvider::alloc_node()
{
    if (SpanNode* node = pop_node(free_nodes_))
        return node;

    constexpr std::size_t kPerChunk = kNodeChunkBytes / sizeof(SpanNode);
    const std::size_t idx =
        node_bump_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t chunk = idx / kPerChunk;
    if (chunk >= kMaxNodeChunks)
        return nullptr;
    if (chunk >= node_chunk_count_.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> lock(node_mutex_);
        while (chunk >=
               node_chunk_count_.load(std::memory_order_relaxed)) {
            // Raw mmap on purpose: pool metadata must stay alive even
            // when a fault-injecting subclass is failing the os_* seams.
            void* mem =
                ::mmap(nullptr, kNodeChunkBytes, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
            if (mem == MAP_FAILED)
                return nullptr;
            const std::size_t count =
                node_chunk_count_.load(std::memory_order_relaxed);
            node_chunks_[count] = mem;
            node_chunk_count_.store(count + 1,
                                    std::memory_order_release);
        }
    }
    char* mem = static_cast<char*>(node_chunks_[chunk]) +
                (idx % kPerChunk) * sizeof(SpanNode);
    return new (mem) SpanNode();
}

void
ReservedArenaProvider::free_node(SpanNode* node)
{
    push_node(free_nodes_, node);
}

void
ReservedArenaProvider::park_span(std::uintptr_t base, int order, bool rw)
{
    SpanNode* node = alloc_node();
    if (node == nullptr) {
        // Metadata pool exhausted: give the span back to the OS rather
        // than lose track of it.  The arena keeps a permanent VA hole.
        const std::size_t span = std::size_t{1} << order;
        os_release(reinterpret_cast<void*>(base), span);
        reserved_.sub(span);
        return;
    }
    node->base = base;
    node->rw = rw;
    push_node(free_spans_[order], node);
}

// ---------------------------------------------------------------------------
// Arena growth and span carving.

bool
ReservedArenaProvider::grow_arena()
{
    const std::size_t n = chunk_count_.load(std::memory_order_relaxed);
    if (n == kMaxChunks)
        return false;

    // Over-reserve by one max span so an aligned arena of the full
    // size must exist inside, then trim the PROT_NONE head/tail.
    const std::size_t want = options_.arena_bytes;
    const std::size_t span = options_.max_span_bytes;
    const std::size_t total = want + span - page_bytes_;
    void* raw = os_reserve(total);
    if (raw == nullptr)
        return false;
    reservations_.add();

    const auto base = reinterpret_cast<std::uintptr_t>(raw);
    const std::uintptr_t aligned = detail::align_up(base, span);
    if (aligned != base)
        os_release(raw, aligned - base);
    if (aligned + want != base + total)
        os_release(reinterpret_cast<void*>(aligned + want),
                   (base + total) - (aligned + want));

#ifdef MADV_HUGEPAGE
    if (options_.huge_pages)
        (void)::madvise(reinterpret_cast<void*>(aligned), want,
                        MADV_HUGEPAGE);
#endif

    chunks_[n].base = aligned;
    chunks_[n].bytes = want;
    chunks_[n].bump.store(0, std::memory_order_relaxed);
    chunk_count_.store(n + 1, std::memory_order_release);
    reserved_.add(want);
    return true;
}

std::uintptr_t
ReservedArenaProvider::carve_max_span()
{
    const std::size_t span = options_.max_span_bytes;
    for (;;) {
        const std::size_t n =
            chunk_count_.load(std::memory_order_acquire);
        for (std::size_t i = 0; i < n; ++i) {
            ArenaChunk& chunk = chunks_[i];
            // Losing racers overshoot the cursor and move on; the
            // chunk is then permanently exhausted, which is fine —
            // at most one max span per chunk is at stake.
            const std::size_t off =
                chunk.bump.fetch_add(span, std::memory_order_relaxed);
            if (off + span <= chunk.bytes)
                return chunk.base + off;
        }
        std::lock_guard<std::mutex> lock(grow_mutex_);
        if (chunk_count_.load(std::memory_order_acquire) != n)
            continue;  // another thread grew the set; retry the carve
        if (!grow_arena())
            return 0;
    }
}

std::uintptr_t
ReservedArenaProvider::take_span(int order, bool* rw)
{
    // Exact-order recycle: the hot path for steady-state superblock
    // traffic, one tagged pop and zero syscalls.
    if (SpanNode* node = pop_node(free_spans_[order])) {
        const std::uintptr_t base = node->base;
        *rw = node->rw;
        free_node(node);
        span_recycles_.add();
        return base;
    }

    // Split a larger free span buddy-style, parking the upper halves.
    for (int o = order + 1; o <= max_order_; ++o) {
        SpanNode* node = pop_node(free_spans_[o]);
        if (node == nullptr)
            continue;
        const std::uintptr_t base = node->base;
        const bool committed = node->rw;
        free_node(node);
        for (int cur = o; cur > order; --cur)
            park_span(base + (std::uintptr_t{1} << (cur - 1)), cur - 1,
                      committed);
        span_recycles_.add();
        *rw = committed;
        return base;
    }

    // Bump-carve fresh reservation (still PROT_NONE → rw = false).
    const std::uintptr_t base = carve_max_span();
    if (base == 0)
        return 0;
    span_carves_.add();
    for (int cur = max_order_; cur > order; --cur)
        park_span(base + (std::uintptr_t{1} << (cur - 1)), cur - 1,
                  false);
    *rw = false;
    return base;
}

int
ReservedArenaProvider::order_for(std::size_t bytes,
                                 std::size_t align) const
{
    if (bytes > options_.max_span_bytes)
        return -1;
    const std::size_t span = detail::next_pow2(
        bytes < page_bytes_ ? page_bytes_ : bytes);
    if (span > options_.max_span_bytes)
        return -1;
    // The span size must be derivable from `bytes` alone so unmap()
    // can recompute it; an alignment stricter than the natural span
    // therefore goes to the fallback path.
    if (align > span)
        return -1;
    return static_cast<int>(detail::floor_log2(span));
}

// ---------------------------------------------------------------------------
// Public interface.

void*
ReservedArenaProvider::map(std::size_t bytes, std::size_t align)
{
    HOARD_CHECK(bytes > 0);
    HOARD_CHECK(detail::is_pow2(align));

    const int order = order_for(bytes, align);
    if (order < 0)
        return map_fallback(bytes, align);

    bool rw = false;
    const std::uintptr_t base = take_span(order, &rw);
    if (base == 0)
        return map_fallback(bytes, align);  // every arena exhausted

    const std::size_t span = std::size_t{1} << order;
    if (!rw) {
        commit_calls_.add();
        if (!os_commit(reinterpret_cast<void*>(base), span)) {
            // Commit failure is memory pressure (page tables or commit
            // charge); park the span for a later retry and report OOM
            // so the allocator's reclaim path can kick in.
            park_span(base, order, false);
            return nullptr;
        }
    }
    committed_.add(span);
    return reinterpret_cast<void*>(base);
}

void*
ReservedArenaProvider::map_fallback(std::size_t bytes, std::size_t align)
{
    const std::size_t ps = page_bytes_;
    constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
    if (bytes > kMax - (ps - 1))
        return nullptr;
    bytes = detail::align_up(bytes, ps);
    if (align < ps)
        align = ps;
    if (bytes > kMax - (align - ps))
        return nullptr;

    const std::size_t span = bytes + align - ps;
    void* raw = os_map_rw(span);
    if (raw == nullptr)
        return nullptr;
    fallback_maps_.add();

    const auto base = reinterpret_cast<std::uintptr_t>(raw);
    const std::uintptr_t aligned = detail::align_up(base, align);
    if (aligned != base)
        os_release(raw, aligned - base);
    if (aligned + bytes != base + span)
        os_release(reinterpret_cast<void*>(aligned + bytes),
                   (base + span) - (aligned + bytes));

    committed_.add(bytes);
    reserved_.add(bytes);
    return reinterpret_cast<void*>(aligned);
}

void
ReservedArenaProvider::unmap(void* p, std::size_t bytes)
{
    HOARD_CHECK(p != nullptr);

    if (!in_arena(p)) {
        bytes = detail::align_up(bytes, page_bytes_);
        os_release(p, bytes);
        committed_.sub(bytes);
        reserved_.sub(bytes);
        return;
    }

    const int order = order_for(bytes, 1);
    HOARD_CHECK(order >= 0);
    const std::size_t span = std::size_t{1} << order;
    decommit_calls_.add();
    if (os_decommit(p, span)) {
        committed_.sub(span);
        park_span(reinterpret_cast<std::uintptr_t>(p), order, true);
    } else {
        // Decommit refused: unmapping instead still upholds the
        // map()-returns-zeroed contract (the span just cannot be
        // recycled — a permanent VA hole in the arena).
        decommit_failures_.add();
        os_release(p, span);
        committed_.sub(span);
        reserved_.sub(span);
    }
}

std::size_t
ReservedArenaProvider::prewarm(std::size_t bytes, std::size_t count)
{
    const int order = order_for(bytes, 1);
    if (order < 0 || count == 0)
        return 0;
    const std::size_t span = std::size_t{1} << order;

    // Hold the examined spans privately: a concurrent map() simply
    // misses them and carves its own, so no lock is needed and the
    // result is only ever conservative.
    constexpr std::size_t kCap = 64;
    if (count > kCap)
        count = kCap;
    std::uintptr_t held[kCap];
    bool rw[kCap];
    std::size_t n = 0;
    while (n < count) {
        SpanNode* node = pop_node(free_spans_[order]);
        if (node == nullptr)
            break;
        held[n] = node->base;
        rw[n] = node->rw;
        ++n;
        free_node(node);
    }
    // Shortfall: carve ahead of demand (splits and fresh bump carves
    // arrive cold and get committed below).
    while (n < count) {
        bool carved_rw = false;
        const std::uintptr_t base = take_span(order, &carved_rw);
        if (base == 0)
            break;
        held[n] = base;
        rw[n] = carved_rw;
        ++n;
    }

    std::size_t transitioned = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (!rw[i]) {
            commit_calls_.add();
            if (os_commit(reinterpret_cast<void*>(held[i]), span)) {
                rw[i] = true;
                ++transitioned;
            }
        }
        park_span(held[i], order, rw[i]);
    }
    return transitioned;
}

bool
ReservedArenaProvider::purge(void* p, std::size_t bytes)
{
    HOARD_CHECK(p != nullptr);
    HOARD_CHECK(detail::is_aligned(p, page_bytes_));
    bytes = detail::align_up(bytes, page_bytes_);
    decommit_calls_.add();
    if (!os_decommit(p, bytes)) {
        decommit_failures_.add();
        return false;
    }
    committed_.sub(bytes);
    return true;
}

void
ReservedArenaProvider::unpurge(void* /* p */, std::size_t bytes)
{
    committed_.add(detail::align_up(bytes, page_bytes_));
}

bool
ReservedArenaProvider::in_arena(const void* p) const
{
    const auto a = reinterpret_cast<std::uintptr_t>(p);
    const std::size_t n = chunk_count_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
        if (a >= chunks_[i].base && a < chunks_[i].base + chunks_[i].bytes)
            return true;
    }
    return false;
}

}  // namespace os
}  // namespace hoard
