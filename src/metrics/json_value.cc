#include "metrics/json_value.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace hoard {
namespace metrics {

namespace {

/** Shortest round-trip formatting for a finite double. */
void
put_number(std::ostream& os, double v)
{
    if (!std::isfinite(v)) {
        // JSON has no NaN/Inf; emit null so the document stays valid.
        os << "null";
        return;
    }
    char buf[40];
    // Try increasing precision until the text parses back exactly;
    // %.17g always does, shorter usually suffices and diffs cleaner.
    for (int precision = 15; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    os << buf;
}

/** Recursive-descent parser over a string; tracks one error message. */
class Parser
{
  public:
    Parser(const std::string& text, std::string* error)
        : text_(text), error_(error)
    {}

    bool
    parse_document(JsonValue& out)
    {
        skip_ws();
        if (!parse_value(out))
            return false;
        skip_ws();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const char* message)
    {
        if (error_ != nullptr && error_->empty()) {
            std::ostringstream os;
            os << message << " at offset " << pos_;
            *error_ = os.str();
        }
        return false;
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    skip_ws()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    parse_value(JsonValue& out)
    {
        skip_ws();
        switch (peek()) {
          case '{':
            return parse_object(out);
          case '[':
            return parse_array(out);
          case '"': {
            std::string s;
            if (!parse_string(s))
                return false;
            out = JsonValue::make_string(std::move(s));
            return true;
          }
          case 't':
            if (!literal("true"))
                return false;
            out = JsonValue::make_bool(true);
            return true;
          case 'f':
            if (!literal("false"))
                return false;
            out = JsonValue::make_bool(false);
            return true;
          case 'n':
            if (!literal("null"))
                return false;
            out = JsonValue();
            return true;
          default:
            return parse_number(out);
        }
    }

    bool
    literal(const char* word)
    {
        for (const char* c = word; *c != '\0'; ++c, ++pos_) {
            if (pos_ >= text_.size() || text_[pos_] != *c)
                return fail("bad literal");
        }
        return true;
    }

    bool
    parse_object(JsonValue& out)
    {
        ++pos_;  // '{'
        out = JsonValue::make_object();
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skip_ws();
            std::string key;
            if (!parse_string(key))
                return fail("expected object key");
            skip_ws();
            if (peek() != ':')
                return fail("expected ':'");
            ++pos_;
            JsonValue value;
            if (!parse_value(value))
                return false;
            out.set(key, std::move(value));
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    parse_array(JsonValue& out)
    {
        ++pos_;  // '['
        out = JsonValue::make_array();
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            JsonValue value;
            if (!parse_value(value))
                return false;
            out.append(std::move(value));
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parse_string(std::string& out)
    {
        if (peek() != '"')
            return fail("expected string");
        ++pos_;
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                ++pos_;
                continue;
            }
            ++pos_;
            if (pos_ >= text_.size())
                return fail("truncated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"':  out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/':  out.push_back('/'); break;
              case 'b':  out.push_back('\b'); break;
              case 'f':  out.push_back('\f'); break;
              case 'n':  out.push_back('\n'); break;
              case 'r':  out.push_back('\r'); break;
              case 't':  out.push_back('\t'); break;
              case 'u': {
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    if (pos_ >= text_.size() ||
                        !std::isxdigit(static_cast<unsigned char>(
                            text_[pos_])))
                        return fail("bad \\u escape");
                    char h = text_[pos_++];
                    code = code * 16 +
                           static_cast<unsigned>(
                               h <= '9'   ? h - '0'
                               : h <= 'F' ? h - 'A' + 10
                                          : h - 'a' + 10);
                }
                // UTF-8 encode the BMP code point (surrogate pairs in
                // metric documents do not occur; keep them as-is
                // bytes would be wrong, so encode each half directly).
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(
                        static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(
                        static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
              }
              default:
                return fail("bad escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parse_number(JsonValue& out)
    {
        std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            return fail("expected value");
        if (peek() == '0') {
            ++pos_;
        } else {
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == '.') {
            ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return fail("digit must follow '.'");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return fail("digit must follow exponent");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        out = JsonValue::make_number(
            std::strtod(text_.c_str() + start, nullptr));
        return true;
    }

    const std::string& text_;
    std::string* error_;
    std::size_t pos_ = 0;
};

}  // namespace

JsonValue
JsonValue::make_bool(bool v)
{
    JsonValue j;
    j.kind_ = Kind::boolean;
    j.bool_ = v;
    return j;
}

JsonValue
JsonValue::make_number(double v)
{
    JsonValue j;
    j.kind_ = Kind::number;
    j.number_ = v;
    return j;
}

JsonValue
JsonValue::make_string(std::string v)
{
    JsonValue j;
    j.kind_ = Kind::string;
    j.string_ = std::move(v);
    return j;
}

JsonValue
JsonValue::make_array()
{
    JsonValue j;
    j.kind_ = Kind::array;
    return j;
}

JsonValue
JsonValue::make_object()
{
    JsonValue j;
    j.kind_ = Kind::object;
    return j;
}

const JsonValue*
JsonValue::find(const std::string& key) const
{
    for (const auto& member : members_) {
        if (member.first == key)
            return &member.second;
    }
    return nullptr;
}

JsonValue*
JsonValue::find(const std::string& key)
{
    for (auto& member : members_) {
        if (member.first == key)
            return &member.second;
    }
    return nullptr;
}

void
JsonValue::set(const std::string& key, JsonValue value)
{
    if (kind_ != Kind::object)
        return;
    if (JsonValue* existing = find(key)) {
        *existing = std::move(value);
        return;
    }
    members_.emplace_back(key, std::move(value));
}

void
JsonValue::append(JsonValue value)
{
    if (kind_ != Kind::array)
        return;
    items_.push_back(std::move(value));
}

double
JsonValue::number_or(const std::string& key, double fallback) const
{
    const JsonValue* v = find(key);
    return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

std::string
JsonValue::string_or(const std::string& key,
                     const std::string& fallback) const
{
    const JsonValue* v = find(key);
    return v != nullptr && v->is_string() ? v->as_string() : fallback;
}

void
write_json_string(std::ostream& os, const std::string& text)
{
    os << '"';
    for (char c : text) {
        switch (c) {
          case '"':  os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\b': os << "\\b"; break;
          case '\f': os << "\\f"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned char>(c));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
JsonValue::write_indented(std::ostream& os, int indent, int depth) const
{
    auto newline_pad = [&](int d) {
        if (indent < 0)
            return;
        os << '\n';
        for (int i = 0; i < indent * d; ++i)
            os << ' ';
    };

    switch (kind_) {
      case Kind::null:
        os << "null";
        break;
      case Kind::boolean:
        os << (bool_ ? "true" : "false");
        break;
      case Kind::number:
        put_number(os, number_);
        break;
      case Kind::string:
        write_json_string(os, string_);
        break;
      case Kind::array:
        if (items_.empty()) {
            os << "[]";
            break;
        }
        os << '[';
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (i != 0)
                os << ',';
            newline_pad(depth + 1);
            items_[i].write_indented(os, indent, depth + 1);
        }
        newline_pad(depth);
        os << ']';
        break;
      case Kind::object:
        if (members_.empty()) {
            os << "{}";
            break;
        }
        os << '{';
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (i != 0)
                os << ',';
            newline_pad(depth + 1);
            write_json_string(os, members_[i].first);
            os << (indent < 0 ? ":" : ": ");
            members_[i].second.write_indented(os, indent, depth + 1);
        }
        newline_pad(depth);
        os << '}';
        break;
    }
}

void
JsonValue::write(std::ostream& os, int indent) const
{
    write_indented(os, indent, 0);
    if (indent >= 0)
        os << '\n';
}

std::string
JsonValue::to_string(int indent) const
{
    std::ostringstream os;
    write(os, indent);
    return os.str();
}

JsonValue
JsonValue::parse(const std::string& text, std::string* error)
{
    if (error != nullptr)
        error->clear();
    JsonValue out;
    Parser parser(text, error);
    if (!parser.parse_document(out)) {
        if (error != nullptr && error->empty())
            *error = "parse error";
        return JsonValue();
    }
    return out;
}

bool
JsonValue::parse_ok(const std::string& text, std::string* error)
{
    if (error != nullptr)
        error->clear();
    std::string local;
    JsonValue out;
    Parser parser(text, error != nullptr ? error : &local);
    return parser.parse_document(out);
}

}  // namespace metrics
}  // namespace hoard
