/**
 * @file
 * Latency histogram with log-spaced buckets and percentile queries.
 *
 * Used by the latency table (TBL-latency): per-operation virtual-cycle
 * latencies are recorded per allocator, and the percentile spread —
 * especially the tail — exposes what averages hide: a one-lock
 * allocator's p99 explodes under contention long before its mean does.
 */

#ifndef HOARD_METRICS_LATENCY_H_
#define HOARD_METRICS_LATENCY_H_

#include <array>
#include <cstdint>

namespace hoard {
namespace metrics {

/**
 * Log2-bucketed histogram of non-negative samples.  Bucket i counts
 * samples whose value's floor(log2) is i (bucket 0 holds 0 and 1).
 * Percentile queries return the geometric midpoint of the bucket, so
 * results are exact to within a factor of sqrt(2) — plenty for
 * order-of-magnitude tail comparisons.
 */
class LatencyHistogram
{
  public:
    static constexpr int kBuckets = 48;

    void
    record(std::uint64_t value)
    {
        ++buckets_[static_cast<std::size_t>(bucket_for(value))];
        ++count_;
        sum_ += value;
        if (value > max_)
            max_ = value;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t max() const { return max_; }

    double
    mean() const
    {
        return count_ == 0
                   ? 0.0
                   : static_cast<double>(sum_) /
                         static_cast<double>(count_);
    }

    /** Value at percentile @p p in [0, 100]. */
    double
    percentile(double p) const
    {
        if (count_ == 0)
            return 0.0;
        auto target = static_cast<std::uint64_t>(
            p / 100.0 * static_cast<double>(count_));
        if (target >= count_)
            target = count_ - 1;
        std::uint64_t seen = 0;
        for (int i = 0; i < kBuckets; ++i) {
            seen += buckets_[static_cast<std::size_t>(i)];
            if (seen > target)
                return bucket_mid(i);
        }
        return bucket_mid(kBuckets - 1);
    }

    /** Merges another histogram into this one. */
    void
    merge(const LatencyHistogram& other)
    {
        for (int i = 0; i < kBuckets; ++i)
            buckets_[static_cast<std::size_t>(i)] +=
                other.buckets_[static_cast<std::size_t>(i)];
        count_ += other.count_;
        sum_ += other.sum_;
        if (other.max_ > max_)
            max_ = other.max_;
    }

  private:
    static int
    bucket_for(std::uint64_t value)
    {
        if (value <= 1)
            return 0;
        int b = 63 - __builtin_clzll(value);
        return b < kBuckets ? b : kBuckets - 1;
    }

    static double
    bucket_mid(int bucket)
    {
        if (bucket == 0)
            return 1.0;
        double lo = static_cast<double>(std::uint64_t{1} << bucket);
        return lo * 1.41421356;  // geometric midpoint of [2^b, 2^b+1)
    }

    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
};

}  // namespace metrics
}  // namespace hoard

#endif  // HOARD_METRICS_LATENCY_H_
