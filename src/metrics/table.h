/**
 * @file
 * Aligned text-table writer.  Every bench binary prints its paper table
 * or figure through this, so all outputs share one format that is easy
 * to diff and to paste next to the paper.
 */

#ifndef HOARD_METRICS_TABLE_H_
#define HOARD_METRICS_TABLE_H_

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace hoard {
namespace metrics {

/** Rectangular table of strings with a header row, printed aligned. */
class Table
{
  public:
    explicit Table(std::vector<std::string> header)
        : header_(std::move(header))
    {}

    /** Starts a new row. */
    void begin_row() { rows_.emplace_back(); }

    /** Appends a cell to the current row. */
    void
    cell(std::string value)
    {
        rows_.back().push_back(std::move(value));
    }

    /** Convenience: formatted numeric cells. */
    void cell_u64(unsigned long long v);
    void cell_double(double v, int precision = 2);
    void cell_bytes(unsigned long long bytes);

    std::size_t rows() const { return rows_.size(); }
    std::size_t columns() const { return header_.size(); }

    /** Prints with per-column alignment and a separator rule. */
    void print(std::ostream& os) const;

    /** Prints as comma-separated values (machine-readable). */
    void print_csv(std::ostream& os) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Human-readable byte count ("12.3 MiB"). */
std::string format_bytes(unsigned long long bytes);

}  // namespace metrics
}  // namespace hoard

#endif  // HOARD_METRICS_TABLE_H_
