/**
 * @file
 * Minimal JSON document model for the bench tooling.
 *
 * The bench harness writes machine-readable reports (bench_report.h)
 * and the suite tools (bench/run_suite, bench/bench_compare) must read
 * them back: merge per-bench documents into one suite file and diff
 * two suite files metric by metric.  That needs an actual DOM, not the
 * validate-only checker the tests use — so this is a small
 * recursive-descent parser into a tagged value tree plus a serializer
 * that round-trips it.
 *
 * Scope is deliberately RFC 8259 JSON and nothing more: no comments,
 * no NaN/Inf, numbers held as double (every metric this repo emits
 * fits), object keys kept in insertion order so merged documents diff
 * stably.
 */

#ifndef HOARD_METRICS_JSON_VALUE_H_
#define HOARD_METRICS_JSON_VALUE_H_

#include <cstddef>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace hoard {
namespace metrics {

/** One JSON value; objects preserve key insertion order. */
class JsonValue
{
  public:
    enum class Kind
    {
        null,
        boolean,
        number,
        string,
        array,
        object
    };

    JsonValue() : kind_(Kind::null) {}

    static JsonValue make_bool(bool v);
    static JsonValue make_number(double v);
    static JsonValue make_string(std::string v);
    static JsonValue make_array();
    static JsonValue make_object();

    Kind kind() const { return kind_; }
    bool is_null() const { return kind_ == Kind::null; }
    bool is_object() const { return kind_ == Kind::object; }
    bool is_array() const { return kind_ == Kind::array; }
    bool is_number() const { return kind_ == Kind::number; }
    bool is_string() const { return kind_ == Kind::string; }
    bool is_bool() const { return kind_ == Kind::boolean; }

    /** Value accessors; only meaningful for the matching kind. */
    bool as_bool() const { return bool_; }
    double as_number() const { return number_; }
    const std::string& as_string() const { return string_; }

    /** Array elements (empty unless is_array()). */
    const std::vector<JsonValue>& items() const { return items_; }
    std::vector<JsonValue>& items() { return items_; }

    /** Object members in insertion order (empty unless is_object()). */
    const std::vector<std::pair<std::string, JsonValue>>&
    members() const
    {
        return members_;
    }

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue* find(const std::string& key) const;
    JsonValue* find(const std::string& key);

    /** Sets (replacing) an object member; no-op unless is_object(). */
    void set(const std::string& key, JsonValue value);

    /** Appends an array element; no-op unless is_array(). */
    void append(JsonValue value);

    /**
     * Convenience chains for schema walking: number at @p key, or
     * @p fallback when absent / wrong kind.
     */
    double number_or(const std::string& key, double fallback) const;
    std::string string_or(const std::string& key,
                          const std::string& fallback) const;

    /**
     * Serializes as compact JSON (indent < 0) or pretty-printed with
     * @p indent spaces per level.  Numbers print with up to 17
     * significant digits, trimmed, so parse(write(v)) == v.
     */
    void write(std::ostream& os, int indent = 2) const;
    std::string to_string(int indent = 2) const;

    /**
     * Parses @p text as exactly one JSON document.  On failure returns
     * a null value and, when @p error is non-null, stores a message
     * with the byte offset of the failure.
     */
    static JsonValue parse(const std::string& text,
                           std::string* error = nullptr);

    /** True when the parse consumed the document (distinguishes a
     *  parsed `null` literal from a parse failure). */
    static bool parse_ok(const std::string& text,
                         std::string* error = nullptr);

  private:
    void write_indented(std::ostream& os, int indent, int depth) const;

    Kind kind_;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/** Writes @p text with JSON string escaping, including the quotes. */
void write_json_string(std::ostream& os, const std::string& text);

}  // namespace metrics
}  // namespace hoard

#endif  // HOARD_METRICS_JSON_VALUE_H_
