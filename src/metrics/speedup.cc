#include "metrics/speedup.h"

#include <cstdio>
#include <fstream>
#include <memory>

#include "common/failure.h"
#include "core/hoard_allocator.h"
#include "metrics/table.h"
#include "obs/trace_export.h"
#include "policy/sim_policy.h"
#include "sim/machine.h"

namespace hoard {
namespace metrics {

namespace {

/**
 * Post-run observability harvest for one cell.  Snapshots must run on
 * a simulated thread (they take VirtualMutexes), so this spins up a
 * one-processor machine just for the walk.
 */
void
harvest_observability(Allocator& allocator, const SpeedupOptions& options,
                      baselines::AllocatorKind kind, int procs,
                      SpeedupCell& cell)
{
    auto* hoard_alloc =
        dynamic_cast<HoardAllocator<SimPolicy>*>(&allocator);
    if (hoard_alloc == nullptr || !hoard_alloc->observability_enabled())
        return;

    // One machine run does both the final forced sample and the
    // snapshot: the workload machine has retired, so the allocator is
    // quiesced and the sample's gauges must reconcile exactly with the
    // snapshot's.
    obs::AllocatorSnapshot snap;
    sim::Machine checker(1);
    checker.spawn(0, 0, [hoard_alloc, &snap] {
        hoard_alloc->sample_now();
        snap = hoard_alloc->take_snapshot();
    });
    checker.run();

    for (const obs::HeapSnapshot& h : snap.heaps) {
        cell.heap_lock_acquires += h.lock.acquires;
        cell.heap_lock_contended += h.lock.contended;
    }
    cell.trace_events = hoard_alloc->recorder()->total_recorded();

    const obs::TimeSeriesSampler* sampler = hoard_alloc->sampler();
    if (sampler != nullptr) {
        cell.timeline_samples = sampler->total_samples();
        std::vector<obs::TimeSample> samples = sampler->collect();
        if (!samples.empty()) {
            // The forced sample above ran quiesced, so it must agree
            // with the snapshot gauges exactly.
            const obs::TimeSample& last = samples.back();
            HOARD_CHECK(last.in_use == snap.stats.in_use_bytes);
            HOARD_CHECK(last.held == snap.stats.held_bytes);
            for (std::size_t t = 1; t < samples.size(); ++t) {
                HOARD_CHECK(samples[t].timestamp >=
                            samples[t - 1].timestamp);
            }
        }
    }

    const std::string stem = options.slug + baselines::to_string(kind) +
                             "_p" + std::to_string(procs);
    if (!options.trace_dir.empty()) {
        std::string path =
            options.trace_dir + "/" + stem + ".trace.json";
        std::ofstream os(path);
        if (os) {
            // Virtual cycles as-is: no wall-clock unit to scale to.
            obs::write_chrome_trace(os, *hoard_alloc->recorder(),
                                    /*ts_per_us=*/1.0, sampler);
        }
    }
    if (!options.timeline_dir.empty() && sampler != nullptr) {
        std::string path =
            options.timeline_dir + "/" + stem + ".timeline.jsonl";
        std::ofstream os(path);
        if (os)
            obs::write_timeseries_jsonl(os, *sampler);
    }
}

}  // namespace

SpeedupResult
run_speedup_experiment(const std::string& title,
                       const SpeedupOptions& options,
                       const SimWorkloadBody& body)
{
    SpeedupResult result;
    result.title = title;
    result.options = options;
    result.cells.resize(options.procs.size());

    for (std::size_t pi = 0; pi < options.procs.size(); ++pi)
        result.cells[pi].resize(options.kinds.size());

    for (std::size_t ki = 0; ki < options.kinds.size(); ++ki) {
        std::uint64_t base_makespan = 0;
        for (std::size_t pi = 0; pi < options.procs.size(); ++pi) {
            const int procs = options.procs[pi];
            Config config = options.base_config;
            config.heap_count = procs;
            if (options.observability || !options.trace_dir.empty() ||
                !options.timeline_dir.empty())
                config.observability = true;
            if (!options.timeline_dir.empty())
                config.obs_sample_interval = options.sample_interval;

            auto allocator = baselines::make_allocator<SimPolicy>(
                options.kinds[ki], config);

            const int nthreads = procs * options.threads_per_proc;
            sim::Machine machine(procs, options.costs, options.quantum);
            for (int tid = 0; tid < nthreads; ++tid) {
                machine.spawn(tid % procs, tid,
                              [&body, &allocator, tid, nthreads] {
                                  body(*allocator, tid, nthreads);
                              });
            }
            std::uint64_t makespan = machine.run();

            SpeedupCell& cell = result.cells[pi][ki];
            cell.makespan = makespan;
            cell.lock_contentions = machine.lock_contentions();
            cell.remote_transfers = machine.cache().remote_transfers();
            if (procs == 1)
                base_makespan = makespan;
            HOARD_CHECK(base_makespan != 0);
            cell.speedup = static_cast<double>(base_makespan) /
                           static_cast<double>(makespan);
            if (config.observability) {
                harvest_observability(*allocator, options,
                                      options.kinds[ki], procs, cell);
            }
        }
    }
    return result;
}

void
SpeedupResult::print(std::ostream& os, bool diagnostics) const
{
    os << "# " << title << "\n";
    os << "# speedup(P) = virtual makespan at P=1 / makespan at P,"
          " per allocator\n";

    std::vector<std::string> header = {"P"};
    for (auto kind : options.kinds)
        header.emplace_back(baselines::to_string(kind));
    Table table(header);

    for (std::size_t pi = 0; pi < options.procs.size(); ++pi) {
        table.begin_row();
        table.cell_u64(static_cast<unsigned long long>(options.procs[pi]));
        for (std::size_t ki = 0; ki < options.kinds.size(); ++ki)
            table.cell_double(cells[pi][ki].speedup);
    }
    table.print(os);

    if (diagnostics) {
        os << "\n# diagnostics: makespan / contended locks / remote line"
              " transfers\n";
        std::vector<std::string> dheader = {"P"};
        for (auto kind : options.kinds)
            dheader.emplace_back(baselines::to_string(kind));
        Table dtable(dheader);
        for (std::size_t pi = 0; pi < options.procs.size(); ++pi) {
            dtable.begin_row();
            dtable.cell_u64(
                static_cast<unsigned long long>(options.procs[pi]));
            for (std::size_t ki = 0; ki < options.kinds.size(); ++ki) {
                const SpeedupCell& c = cells[pi][ki];
                char buf[96];
                std::snprintf(buf, sizeof(buf), "%llu/%llu/%llu",
                              static_cast<unsigned long long>(c.makespan),
                              static_cast<unsigned long long>(
                                  c.lock_contentions),
                              static_cast<unsigned long long>(
                                  c.remote_transfers));
                dtable.cell(buf);
            }
        }
        dtable.print(os);

        if (options.observability || !options.trace_dir.empty()) {
            os << "\n# heap-lock profile: acquires / contended /"
                  " trace events (Hoard cells only)\n";
            Table otable(dheader);
            for (std::size_t pi = 0; pi < options.procs.size(); ++pi) {
                otable.begin_row();
                otable.cell_u64(static_cast<unsigned long long>(
                    options.procs[pi]));
                for (std::size_t ki = 0; ki < options.kinds.size();
                     ++ki) {
                    const SpeedupCell& c = cells[pi][ki];
                    char buf[96];
                    std::snprintf(
                        buf, sizeof(buf), "%llu/%llu/%llu",
                        static_cast<unsigned long long>(
                            c.heap_lock_acquires),
                        static_cast<unsigned long long>(
                            c.heap_lock_contended),
                        static_cast<unsigned long long>(c.trace_events));
                    otable.cell(buf);
                }
            }
            otable.print(os);
        }
    }
    os.flush();
}

}  // namespace metrics
}  // namespace hoard
