#include "metrics/speedup.h"

#include <cstdio>
#include <memory>

#include "common/failure.h"
#include "metrics/table.h"
#include "policy/sim_policy.h"
#include "sim/machine.h"

namespace hoard {
namespace metrics {

SpeedupResult
run_speedup_experiment(const std::string& title,
                       const SpeedupOptions& options,
                       const SimWorkloadBody& body)
{
    SpeedupResult result;
    result.title = title;
    result.options = options;
    result.cells.resize(options.procs.size());

    for (std::size_t pi = 0; pi < options.procs.size(); ++pi)
        result.cells[pi].resize(options.kinds.size());

    for (std::size_t ki = 0; ki < options.kinds.size(); ++ki) {
        std::uint64_t base_makespan = 0;
        for (std::size_t pi = 0; pi < options.procs.size(); ++pi) {
            const int procs = options.procs[pi];
            Config config = options.base_config;
            config.heap_count = procs;

            auto allocator = baselines::make_allocator<SimPolicy>(
                options.kinds[ki], config);

            const int nthreads = procs * options.threads_per_proc;
            sim::Machine machine(procs, options.costs, options.quantum);
            for (int tid = 0; tid < nthreads; ++tid) {
                machine.spawn(tid % procs, tid,
                              [&body, &allocator, tid, nthreads] {
                                  body(*allocator, tid, nthreads);
                              });
            }
            std::uint64_t makespan = machine.run();

            SpeedupCell& cell = result.cells[pi][ki];
            cell.makespan = makespan;
            cell.lock_contentions = machine.lock_contentions();
            cell.remote_transfers = machine.cache().remote_transfers();
            if (procs == 1)
                base_makespan = makespan;
            HOARD_CHECK(base_makespan != 0);
            cell.speedup = static_cast<double>(base_makespan) /
                           static_cast<double>(makespan);
        }
    }
    return result;
}

void
SpeedupResult::print(std::ostream& os, bool diagnostics) const
{
    os << "# " << title << "\n";
    os << "# speedup(P) = virtual makespan at P=1 / makespan at P,"
          " per allocator\n";

    std::vector<std::string> header = {"P"};
    for (auto kind : options.kinds)
        header.emplace_back(baselines::to_string(kind));
    Table table(header);

    for (std::size_t pi = 0; pi < options.procs.size(); ++pi) {
        table.begin_row();
        table.cell_u64(static_cast<unsigned long long>(options.procs[pi]));
        for (std::size_t ki = 0; ki < options.kinds.size(); ++ki)
            table.cell_double(cells[pi][ki].speedup);
    }
    table.print(os);

    if (diagnostics) {
        os << "\n# diagnostics: makespan / contended locks / remote line"
              " transfers\n";
        std::vector<std::string> dheader = {"P"};
        for (auto kind : options.kinds)
            dheader.emplace_back(baselines::to_string(kind));
        Table dtable(dheader);
        for (std::size_t pi = 0; pi < options.procs.size(); ++pi) {
            dtable.begin_row();
            dtable.cell_u64(
                static_cast<unsigned long long>(options.procs[pi]));
            for (std::size_t ki = 0; ki < options.kinds.size(); ++ki) {
                const SpeedupCell& c = cells[pi][ki];
                char buf[96];
                std::snprintf(buf, sizeof(buf), "%llu/%llu/%llu",
                              static_cast<unsigned long long>(c.makespan),
                              static_cast<unsigned long long>(
                                  c.lock_contentions),
                              static_cast<unsigned long long>(
                                  c.remote_transfers));
                dtable.cell(buf);
            }
        }
        dtable.print(os);
    }
    os.flush();
}

}  // namespace metrics
}  // namespace hoard
