/**
 * @file
 * Speedup-figure harness.
 *
 * Regenerates one paper figure: for each allocator and each processor
 * count P, builds a fresh virtual-time machine and a fresh allocator
 * configured with P heaps, runs one workload thread per processor, and
 * reports speedup = makespan(1) / makespan(P) per allocator — exactly
 * the y-axis of the paper's figures (each allocator normalized to its
 * own single-processor run).
 */

#ifndef HOARD_METRICS_SPEEDUP_H_
#define HOARD_METRICS_SPEEDUP_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "baselines/factory.h"
#include "core/config.h"
#include "sim/cost_model.h"

namespace hoard {
namespace metrics {

/**
 * Workload body bound to SimPolicy: (allocator, tid, nthreads).
 * The harness supplies a fresh allocator per cell.
 */
using SimWorkloadBody =
    std::function<void(Allocator& allocator, int tid, int nthreads)>;

/** Options for one speedup experiment. */
struct SpeedupOptions
{
    std::vector<int> procs = {1, 2, 4, 6, 8, 10, 12, 14};
    std::vector<baselines::AllocatorKind> kinds{
        baselines::kAllKinds.begin(), baselines::kAllKinds.end()};
    sim::CostModel costs;
    std::uint64_t quantum = 200;
    Config base_config;  ///< heap_count is overridden with P per cell

    /**
     * Simulated threads per processor (default 1, the paper's setup).
     * With more, threads hash onto the P heaps — the oversubscription
     * regime the paper's thread-to-heap mapping is designed for.
     */
    int threads_per_proc = 1;

    /**
     * Enables the observability layer (src/obs/) per cell: event
     * tracing plus heap-lock contention profiling, surfaced in the
     * diagnostics table.  Profiling charges the cost model for extra
     * lock probes, so leave this off for paper-figure runs.
     */
    bool observability = false;

    /**
     * When non-empty, each Hoard cell dumps its retained event window
     * to <trace_dir>/<slug><allocator>_p<P>.trace.json (Chrome trace
     * format, timestamps in virtual cycles).  Implies observability.
     */
    std::string trace_dir;

    /**
     * When non-empty, each Hoard cell also writes its gauge timeline
     * to <timeline_dir>/<slug><allocator>_p<P>.timeline.jsonl (see
     * obs/trace_export.h).  Implies observability; the cell's config
     * gets obs_sample_interval = sample_interval.
     */
    std::string timeline_dir;

    /**
     * Virtual cycles between timeline samples when timeline_dir is
     * set.  The paper benches run ~10^7-10^8 cycles, so the default
     * yields hundreds of samples against the 256-slot ring.
     */
    std::uint64_t sample_interval = 1 << 18;

    /** Filename prefix for trace/timeline artifacts, e.g. "larson_". */
    std::string slug;
};

/** One measured cell. */
struct SpeedupCell
{
    std::uint64_t makespan = 0;
    double speedup = 0.0;
    std::uint64_t lock_contentions = 0;
    std::uint64_t remote_transfers = 0;

    /// @name Filled only when SpeedupOptions::observability is on and
    /// the allocator is Hoard (zeros otherwise).
    /// @{
    std::uint64_t heap_lock_acquires = 0;
    std::uint64_t heap_lock_contended = 0;
    std::uint64_t trace_events = 0;
    std::uint64_t timeline_samples = 0;
    /// @}
};

/** Results of one experiment: cells[proc_index][kind_index]. */
struct SpeedupResult
{
    std::string title;
    SpeedupOptions options;
    std::vector<std::vector<SpeedupCell>> cells;

    /** Speedup for (procs index, kind index). */
    const SpeedupCell&
    at(std::size_t proc_idx, std::size_t kind_idx) const
    {
        return cells[proc_idx][kind_idx];
    }

    /** Prints the figure as a table (and per-cell diagnostics). */
    void print(std::ostream& os, bool diagnostics = false) const;
};

/** Runs the experiment; see file comment. */
SpeedupResult run_speedup_experiment(const std::string& title,
                                     const SpeedupOptions& options,
                                     const SimWorkloadBody& body);

}  // namespace metrics
}  // namespace hoard

#endif  // HOARD_METRICS_SPEEDUP_H_
