#include "metrics/table.h"

#include <algorithm>
#include <cstdio>

namespace hoard {
namespace metrics {

void
Table::cell_u64(unsigned long long v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu", v);
    cell(buf);
}

void
Table::cell_double(double v, int precision)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    cell(buf);
}

void
Table::cell_bytes(unsigned long long bytes)
{
    cell(format_bytes(bytes));
}

void
Table::print(std::ostream& os) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string& v = c < row.size() ? row[c] : std::string();
            os << v;
            if (c + 1 < widths.size())
                os << std::string(widths[c] - v.size() + 2, ' ');
        }
        os << '\n';
    };

    emit_row(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_)
        emit_row(row);
}

void
Table::print_csv(std::ostream& os) const
{
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c != 0)
                os << ',';
            os << row[c];
        }
        os << '\n';
    };
    emit(header_);
    for (const auto& row : rows_)
        emit(row);
}

std::string
format_bytes(unsigned long long bytes)
{
    const char* units[] = {"B", "KiB", "MiB", "GiB"};
    double v = static_cast<double>(bytes);
    int unit = 0;
    while (v >= 1024.0 && unit < 3) {
        v /= 1024.0;
        ++unit;
    }
    char buf[48];
    if (unit == 0)
        std::snprintf(buf, sizeof(buf), "%llu B", bytes);
    else
        std::snprintf(buf, sizeof(buf), "%.1f %s", v, units[unit]);
    return buf;
}

}  // namespace metrics
}  // namespace hoard
