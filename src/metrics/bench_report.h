/**
 * @file
 * Machine-readable bench results: the performance-trajectory substrate.
 *
 * Every bench binary historically printed human tables only, so runs
 * left no comparable artifact — no way to tell whether a change
 * regressed threadtest speedup or blowup.  BenchReport turns one bench
 * run into a schema-versioned JSON document:
 *
 *   {
 *     "schema": "hoard-bench-report-v1",
 *     "bench": "fig_speedup_threadtest",
 *     "title": "...", "quick": true,
 *     "environment": { compiler, pointer bits, HOARD_OBS compile and
 *                      env state, hardware thread count },
 *     "config": { superblock_bytes, empty_fraction, ... },
 *     "metrics": [ {"key": "speedup/hoard/p8", "value": 7.97,
 *                   "unit": "x", "better": "higher"}, ... ],
 *     "cells": [ ... ]   // per-cell speedup detail, when applicable
 *   }
 *
 * Metric keys are stable slash-paths; `better` declares the regression
 * direction ("higher", "lower", or "info" for ungated context values)
 * so the compare tool never has to guess.  bench/run_suite merges the
 * per-bench documents into one BENCH_hoard.json
 * ("hoard-bench-suite-v1") and bench/bench_compare diffs two suite
 * files and gates on threshold — see docs/BENCHMARKING.md.
 */

#ifndef HOARD_METRICS_BENCH_REPORT_H_
#define HOARD_METRICS_BENCH_REPORT_H_

#include <ostream>
#include <string>
#include <vector>

#include "core/config.h"
#include "metrics/json_value.h"

namespace hoard {
namespace metrics {

struct SpeedupResult;  // speedup.h

/** Regression direction of one metric. */
enum class Better
{
    higher,  ///< larger is better (speedup, throughput)
    lower,   ///< smaller is better (latency, blowup, fragmentation)
    info     ///< context only; never gated
};

const char* to_string(Better better);

/** One named scalar measurement. */
struct MetricSample
{
    std::string key;    ///< stable slash-path, e.g. "speedup/hoard/p8"
    double value = 0.0;
    std::string unit;   ///< "x", "ns", "bytes", "cycles", ...
    Better better = Better::info;
};

/** Builder for one bench's JSON document. */
class BenchReport
{
  public:
    static constexpr const char* kSchema = "hoard-bench-report-v1";
    static constexpr const char* kSuiteSchema = "hoard-bench-suite-v1";

    /** @param bench stable bench identifier (binary name). */
    explicit BenchReport(std::string bench, bool quick = false);

    void set_title(std::string title) { title_ = std::move(title); }

    /** Echoes the allocator configuration the bench ran with. */
    void set_config(const Config& config);

    /** Adds one measurement (keys should be unique per report). */
    void add_metric(const std::string& key, double value,
                    const std::string& unit, Better better);

    /**
     * Records a full speedup experiment: per-cell makespan, speedup,
     * contention/transfer diagnostics and observability counters under
     * "cells", plus gateable "speedup/<allocator>/p<P>" metrics.
     */
    void add_speedup_result(const SpeedupResult& result);

    const std::vector<MetricSample>& metrics() const { return metrics_; }

    /** The report as a JSON document. */
    JsonValue to_json() const;

    /** Writes the document (pretty-printed) to @p os. */
    void write(std::ostream& os) const;

    /** Writes to @p path; returns false (with perror) on I/O failure. */
    bool write_file(const std::string& path) const;

    /**
     * Build/run environment capture shared by reports and the suite
     * merger: compiler, pointer width, HOARD_OBS compile-time state,
     * HOARD_OBS environment override, hardware thread count.
     */
    static JsonValue environment_json();

  private:
    std::string bench_;
    std::string title_;
    bool quick_;
    bool has_config_ = false;
    Config config_;
    std::vector<MetricSample> metrics_;
    JsonValue cells_ = JsonValue::make_array();
};

/** One per-metric delta between two reports. */
struct MetricDelta
{
    std::string key;        ///< "<bench>/<metric key>"
    double base = 0.0;
    double next = 0.0;
    double change_pct = 0.0;  ///< signed (next-base)/|base| * 100
    Better better = Better::info;
    bool regression = false;  ///< past threshold in the worse direction
};

/** Outcome of comparing two suite (or report) documents. */
struct CompareResult
{
    std::vector<MetricDelta> deltas;      ///< every gated metric pair
    std::vector<std::string> missing;     ///< in base but not in next
    int regressions = 0;

    bool ok() const { return regressions == 0; }
};

/**
 * Compares two parsed documents — either two suite files
 * (hoard-bench-suite-v1) or two single reports — metric by metric.
 * A metric regresses when it moves more than @p max_regress_pct in
 * its declared worse direction; "info" metrics are never gated.
 * Metrics present only in @p base are listed in `missing` (and are
 * not regressions — benches come and go).
 */
CompareResult compare_reports(const JsonValue& base,
                              const JsonValue& next,
                              double max_regress_pct);

}  // namespace metrics
}  // namespace hoard

#endif  // HOARD_METRICS_BENCH_REPORT_H_
