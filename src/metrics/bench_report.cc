#include "metrics/bench_report.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <thread>

#include "baselines/factory.h"
#include "metrics/speedup.h"
#include "obs/gating.h"

namespace hoard {
namespace metrics {

const char*
to_string(Better better)
{
    switch (better) {
      case Better::higher:
        return "higher";
      case Better::lower:
        return "lower";
      case Better::info:
        return "info";
    }
    return "info";
}

BenchReport::BenchReport(std::string bench, bool quick)
    : bench_(std::move(bench)), quick_(quick)
{}

void
BenchReport::set_config(const Config& config)
{
    has_config_ = true;
    config_ = config;
}

void
BenchReport::add_metric(const std::string& key, double value,
                        const std::string& unit, Better better)
{
    MetricSample sample;
    sample.key = key;
    sample.value = value;
    sample.unit = unit;
    sample.better = better;
    metrics_.push_back(std::move(sample));
}

void
BenchReport::add_speedup_result(const SpeedupResult& result)
{
    const SpeedupOptions& opt = result.options;
    for (std::size_t pi = 0; pi < opt.procs.size(); ++pi) {
        for (std::size_t ki = 0; ki < opt.kinds.size(); ++ki) {
            const SpeedupCell& c = result.cells[pi][ki];
            const std::string kind =
                baselines::to_string(opt.kinds[ki]);
            const std::string suffix =
                kind + "/p" + std::to_string(opt.procs[pi]);

            // Speedup is the paper's y-axis and the primary gate; the
            // makespan is the raw measurement behind it (lower is
            // better, but gating both would double-count).
            add_metric("speedup/" + suffix, c.speedup, "x",
                       Better::higher);
            add_metric("makespan/" + suffix,
                       static_cast<double>(c.makespan), "cycles",
                       Better::info);

            JsonValue cell = JsonValue::make_object();
            cell.set("figure", JsonValue::make_string(
                                   title_.empty() ? bench_ : title_));
            cell.set("allocator", JsonValue::make_string(kind));
            cell.set("procs", JsonValue::make_number(
                                  static_cast<double>(opt.procs[pi])));
            cell.set("makespan",
                     JsonValue::make_number(
                         static_cast<double>(c.makespan)));
            cell.set("speedup", JsonValue::make_number(c.speedup));
            cell.set("lock_contentions",
                     JsonValue::make_number(
                         static_cast<double>(c.lock_contentions)));
            cell.set("remote_transfers",
                     JsonValue::make_number(
                         static_cast<double>(c.remote_transfers)));
            if (opt.observability || !opt.trace_dir.empty()) {
                JsonValue obs = JsonValue::make_object();
                obs.set("heap_lock_acquires",
                        JsonValue::make_number(static_cast<double>(
                            c.heap_lock_acquires)));
                obs.set("heap_lock_contended",
                        JsonValue::make_number(static_cast<double>(
                            c.heap_lock_contended)));
                obs.set("trace_events",
                        JsonValue::make_number(
                            static_cast<double>(c.trace_events)));
                obs.set("timeline_samples",
                        JsonValue::make_number(static_cast<double>(
                            c.timeline_samples)));
                cell.set("obs", std::move(obs));
            }
            cells_.append(std::move(cell));
        }
    }
    if (!opt.procs.empty())
        set_config(opt.base_config);
}

JsonValue
BenchReport::environment_json()
{
    JsonValue env = JsonValue::make_object();
#ifdef __VERSION__
    env.set("compiler", JsonValue::make_string(__VERSION__));
#else
    env.set("compiler", JsonValue::make_string("unknown"));
#endif
    env.set("pointer_bits",
            JsonValue::make_number(sizeof(void*) * 8.0));
    env.set("obs_compiled", JsonValue::make_bool(obs::kCompiledIn));
    env.set("obs_env", JsonValue::make_bool(obs::env_enabled()));
    env.set("hardware_threads",
            JsonValue::make_number(static_cast<double>(
                std::thread::hardware_concurrency())));
    return env;
}

JsonValue
BenchReport::to_json() const
{
    JsonValue doc = JsonValue::make_object();
    doc.set("schema", JsonValue::make_string(kSchema));
    doc.set("bench", JsonValue::make_string(bench_));
    if (!title_.empty())
        doc.set("title", JsonValue::make_string(title_));
    doc.set("quick", JsonValue::make_bool(quick_));
    doc.set("environment", environment_json());

    if (has_config_) {
        JsonValue config = JsonValue::make_object();
        config.set("superblock_bytes",
                   JsonValue::make_number(static_cast<double>(
                       config_.superblock_bytes)));
        config.set("empty_fraction",
                   JsonValue::make_number(config_.empty_fraction));
        config.set("slack_superblocks",
                   JsonValue::make_number(static_cast<double>(
                       config_.slack_superblocks)));
        config.set("release_threshold",
                   JsonValue::make_number(config_.release_threshold));
        config.set("heap_count",
                   JsonValue::make_number(
                       static_cast<double>(config_.heap_count)));
        config.set("thread_cache_blocks",
                   JsonValue::make_number(static_cast<double>(
                       config_.thread_cache_blocks)));
        config.set("thread_cache_batch",
                   JsonValue::make_number(static_cast<double>(
                       config_.thread_cache_batch)));
        config.set("global_fetch_batch",
                   JsonValue::make_number(static_cast<double>(
                       config_.global_fetch_batch)));
        config.set("observability",
                   JsonValue::make_bool(config_.observability));
        config.set("obs_sample_interval",
                   JsonValue::make_number(static_cast<double>(
                       config_.obs_sample_interval)));
        doc.set("config", std::move(config));
    }

    JsonValue metrics = JsonValue::make_array();
    for (const MetricSample& m : metrics_) {
        JsonValue entry = JsonValue::make_object();
        entry.set("key", JsonValue::make_string(m.key));
        entry.set("value", JsonValue::make_number(m.value));
        entry.set("unit", JsonValue::make_string(m.unit));
        entry.set("better",
                  JsonValue::make_string(to_string(m.better)));
        metrics.append(std::move(entry));
    }
    doc.set("metrics", std::move(metrics));

    if (!cells_.items().empty())
        doc.set("cells", cells_);
    return doc;
}

void
BenchReport::write(std::ostream& os) const
{
    to_json().write(os);
    os.flush();
}

bool
BenchReport::write_file(const std::string& path) const
{
    std::ofstream os(path);
    if (!os) {
        std::perror(path.c_str());
        return false;
    }
    write(os);
    return os.good();
}

namespace {

/**
 * Flattens one document's gated metrics into @p out with keys
 * "<bench>/<metric key>".  Accepts both a single report and a suite
 * document (which nests reports under "benches").
 */
void
collect_metrics(const JsonValue& doc, const std::string& prefix,
                std::vector<MetricSample>& out)
{
    if (const JsonValue* benches = doc.find("benches")) {
        for (const auto& member : benches->members())
            collect_metrics(member.second, member.first + "/", out);
        return;
    }
    const JsonValue* metrics = doc.find("metrics");
    if (metrics == nullptr || !metrics->is_array())
        return;
    for (const JsonValue& entry : metrics->items()) {
        MetricSample sample;
        sample.key = prefix + entry.string_or("key", "");
        sample.value = entry.number_or("value", 0.0);
        sample.unit = entry.string_or("unit", "");
        std::string better = entry.string_or("better", "info");
        sample.better = better == "higher"  ? Better::higher
                        : better == "lower" ? Better::lower
                                            : Better::info;
        if (!sample.key.empty() && sample.key != prefix)
            out.push_back(std::move(sample));
    }
}

}  // namespace

CompareResult
compare_reports(const JsonValue& base, const JsonValue& next,
                double max_regress_pct)
{
    std::vector<MetricSample> base_metrics, next_metrics;
    collect_metrics(base, "", base_metrics);
    collect_metrics(next, "", next_metrics);

    CompareResult result;
    for (const MetricSample& b : base_metrics) {
        const MetricSample* n = nullptr;
        for (const MetricSample& candidate : next_metrics) {
            if (candidate.key == b.key) {
                n = &candidate;
                break;
            }
        }
        if (n == nullptr) {
            result.missing.push_back(b.key);
            continue;
        }
        if (b.better == Better::info)
            continue;

        MetricDelta delta;
        delta.key = b.key;
        delta.base = b.value;
        delta.next = n->value;
        delta.better = b.better;
        const double denom = std::fabs(b.value);
        if (denom > 0.0) {
            delta.change_pct = (n->value - b.value) / denom * 100.0;
        } else {
            // From exactly zero any worsening is infinite-percent;
            // flag only genuine movement in the worse direction.
            delta.change_pct = n->value == 0.0 ? 0.0
                               : n->value > 0.0
                                   ? 100.0 * (1.0 + max_regress_pct)
                                   : -100.0 * (1.0 + max_regress_pct);
        }
        const double worse = b.better == Better::higher
                                 ? -delta.change_pct
                                 : delta.change_pct;
        delta.regression = worse > max_regress_pct;
        if (delta.regression)
            ++result.regressions;
        result.deltas.push_back(std::move(delta));
    }
    return result;
}

}  // namespace metrics
}  // namespace hoard
