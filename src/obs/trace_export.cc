#include "obs/trace_export.h"

#include <cinttypes>
#include <cstdio>
#include <vector>

namespace hoard {
namespace obs {

namespace {

/** Fixed-format double: Chrome's ts field and Prometheus values. */
void
put_double(std::ostream& os, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    os << buf;
}

void
prom_header(std::ostream& os, const char* name, const char* type,
            const char* help)
{
    os << "# HELP " << name << ' ' << help << '\n'
       << "# TYPE " << name << ' ' << type << '\n';
}

/**
 * Emits one LatencyHistogram as a Prometheus cumulative histogram:
 * `<name>_bucket{<labels>,le="..."}` for every bucket boundary that
 * closes a non-empty bucket (empty buckets are skipped — a cumulative
 * histogram stays valid under any subset of boundaries, and 189
 * boundaries per series would swamp the exposition), then +Inf,
 * `<name>_count`, and `<name>_sum`.  @p labels is either empty or a
 * `key="value"` list without braces.
 */
void
prom_cycle_histogram(std::ostream& os, const char* name,
                     const std::string& labels,
                     const LatencyHistogram& h)
{
    const std::string sep = labels.empty() ? "" : ",";
    std::uint64_t cumulative = 0;
    for (int b = 0; b < LatencyHistogram::kBuckets - 1; ++b) {
        const std::uint64_t n = h.bucket(b);
        if (n == 0)
            continue;
        cumulative += n;
        // Bucket b covers [lower, upper); cycles are integers, so the
        // inclusive Prometheus boundary is upper - 1.
        os << name << "_bucket{" << labels << sep << "le=\""
           << LatencyHistogram::bucket_upper(b) - 1 << "\"} "
           << cumulative << '\n';
    }
    os << name << "_bucket{" << labels << sep << "le=\"+Inf\"} "
       << h.count() << '\n'
       << name << "_count{" << labels << "} " << h.count() << '\n'
       << name << "_sum{" << labels << "} " << h.sum() << '\n';
}

}  // namespace

void
write_chrome_trace(std::ostream& os, const EventRecorder& recorder,
                   double ts_per_us, const TimeSeriesSampler* sampler)
{
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent& ev : recorder.collect()) {
        if (!first)
            os << ",";
        first = false;
        os << "\n{\"name\":\"" << json_escape(to_string(ev.kind))
           << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":" << ev.tid
           << ",\"ts\":";
        put_double(os, static_cast<double>(ev.timestamp) / ts_per_us);
        os << ",\"args\":{\"heap\":" << ev.heap
           << ",\"size_class\":" << ev.size_class
           << ",\"bytes\":" << ev.bytes << "}}";
    }
    if (sampler != nullptr) {
        for (const TimeSample& s : sampler->collect()) {
            if (!first)
                os << ",";
            first = false;
            os << "\n{\"name\":\"hoard_bytes\",\"ph\":\"C\",\"pid\":1"
               << ",\"ts\":";
            put_double(os,
                       static_cast<double>(s.timestamp) / ts_per_us);
            os << ",\"args\":{\"in_use\":" << s.in_use
               << ",\"held\":" << s.held
               << ",\"committed\":" << s.committed_bytes
               << ",\"reserved\":" << s.reserved_bytes
               << ",\"purged\":" << s.purged_bytes
               << ",\"cached\":" << s.cached_bytes << "}},"
               << "\n{\"name\":\"hoard_blowup\",\"ph\":\"C\",\"pid\":1"
               << ",\"ts\":";
            put_double(os,
                       static_cast<double>(s.timestamp) / ts_per_us);
            os << ",\"args\":{\"blowup\":";
            put_double(os, s.blowup());
            os << "}}";
        }
    }
    os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
       << "\"recorded\":" << recorder.total_recorded()
       << ",\"dropped\":" << recorder.dropped();
    if (sampler != nullptr) {
        os << ",\"samples\":" << sampler->total_samples()
           << ",\"samples_dropped\":" << sampler->dropped();
    }
    os << "}}\n";
    os.flush();
}

void
write_timeseries_jsonl(std::ostream& os, const TimeSeriesSampler& sampler)
{
    for (const TimeSample& s : sampler.collect()) {
        // "os" is kept as an alias of committed for v1-v3 consumers.
        os << "{\"schema\":\"hoard-timeline-v5\",\"ts\":" << s.timestamp
           << ",\"in_use\":" << s.in_use << ",\"held\":" << s.held
           << ",\"os\":" << s.committed_bytes
           << ",\"committed\":" << s.committed_bytes
           << ",\"reserved\":" << s.reserved_bytes
           << ",\"purged\":" << s.purged_bytes
           << ",\"cached\":" << s.cached_bytes
           << ",\"allocs\":" << s.allocs << ",\"frees\":" << s.frees
           << ",\"transfers\":" << s.transfers
           << ",\"global_fetches\":" << s.global_fetches
           << ",\"global_bin_hits\":" << s.bin_hits
           << ",\"global_bin_misses\":" << s.bin_misses
           << ",\"cache_pushes\":" << s.cache_pushes
           << ",\"cache_pops\":" << s.cache_pops
           << ",\"bad_free_wild\":" << s.bad_free_wild
           << ",\"bad_free_foreign\":" << s.bad_free_foreign
           << ",\"bad_free_interior\":" << s.bad_free_interior
           << ",\"bad_free_double\":" << s.bad_free_double
           << ",\"prof_sampled_requested\":" << s.prof_requested
           << ",\"prof_sampled_rounded\":" << s.prof_rounded
           << ",\"bg_wakeups\":" << s.bg_wakeups
           << ",\"bg_refills\":" << s.bg_refills
           << ",\"bg_drains\":" << s.bg_drains
           << ",\"bg_precommits\":" << s.bg_precommits
           << ",\"bg_purges\":" << s.bg_purges;
        for (int p = 0; p < kLatencyPathCount; ++p) {
            const char* name = to_string(static_cast<LatencyPath>(p));
            const auto i = static_cast<std::size_t>(p);
            os << ",\"lat_" << name << "_n\":" << s.lat_counts[i]
               << ",\"lat_" << name << "_p99\":" << s.lat_p99[i];
        }
        os << ",\"blowup\":";
        put_double(os, s.blowup());
        os << ",\"heaps\":[";
        for (std::size_t h = 0; h < s.heaps.size(); ++h) {
            if (h != 0)
                os << ',';
            os << "{\"u\":" << s.heaps[h].in_use
               << ",\"a\":" << s.heaps[h].held << '}';
        }
        os << "]}\n";
    }
    os.flush();
}

void
write_prometheus(std::ostream& os, const AllocatorSnapshot& snap)
{
    prom_header(os, "hoard_heap_in_use_bytes", "gauge",
                "u_i: block bytes handed to the program, per heap");
    for (const HeapSnapshot& h : snap.heaps) {
        os << "hoard_heap_in_use_bytes{heap=\"" << h.index << "\"} "
           << h.in_use << '\n';
    }

    prom_header(os, "hoard_heap_held_bytes", "gauge",
                "a_i: bytes held in superblocks, per heap");
    for (const HeapSnapshot& h : snap.heaps) {
        os << "hoard_heap_held_bytes{heap=\"" << h.index << "\"} "
           << h.held << '\n';
    }

    prom_header(os, "hoard_heap_invariant_slack_bytes", "gauge",
                "signed slack above the emptiness-invariant bound");
    for (const HeapSnapshot& h : snap.heaps) {
        if (h.index == 0)
            continue;
        os << "hoard_heap_invariant_slack_bytes{heap=\"" << h.index
           << "\"} ";
        put_double(os, h.invariant_slack_bytes(snap.superblock_bytes,
                                               snap.release_threshold,
                                               snap.slack_superblocks,
                                               snap.global_fetch_batch));
        os << '\n';
    }

    prom_header(os, "hoard_heap_superblocks", "gauge",
                "superblock count per heap and size class");
    for (const HeapSnapshot& h : snap.heaps) {
        for (const ClassSnapshot& c : h.classes) {
            os << "hoard_heap_superblocks{heap=\"" << h.index
               << "\",size_class=\"" << c.size_class << "\"} "
               << c.superblocks << '\n';
        }
    }

    // Occupancy CDF: cumulative superblock counts per fullness band,
    // aggregated over all heaps, one histogram per size class.  Band g
    // of kFullnessBands covers fullness [g/8, (g+1)/8); the trailing
    // full group lands in le="1".  This is the fragmentation signal
    // purge policies key on (ROADMAP item 2): mass in the low buckets
    // is reclaimable, mass at le="1" is dense and should stay put.
    prom_header(os, "hoard_superblock_occupancy", "histogram",
                "fullness CDF of superblocks per size class");
    {
        struct ClassCdf
        {
            int size_class = 0;
            std::vector<std::uint64_t> groups;
        };
        std::vector<ClassCdf> cdfs;
        for (const HeapSnapshot& h : snap.heaps) {
            for (const ClassSnapshot& c : h.classes) {
                ClassCdf* cdf = nullptr;
                for (ClassCdf& seen : cdfs) {
                    if (seen.size_class == c.size_class) {
                        cdf = &seen;
                        break;
                    }
                }
                if (cdf == nullptr) {
                    cdfs.push_back({c.size_class, {}});
                    cdf = &cdfs.back();
                }
                if (cdf->groups.size() < c.group_counts.size())
                    cdf->groups.resize(c.group_counts.size(), 0);
                for (std::size_t g = 0; g < c.group_counts.size(); ++g)
                    cdf->groups[g] += c.group_counts[g];
            }
        }
        for (const ClassCdf& cdf : cdfs) {
            const std::size_t bands =
                cdf.groups.size() > 1 ? cdf.groups.size() - 1 : 1;
            std::uint64_t cumulative = 0;
            for (std::size_t g = 0; g < cdf.groups.size(); ++g) {
                cumulative += cdf.groups[g];
                // The final two groups (band 7 and "full") share the
                // le="1" boundary; emit only the full one there.
                if (g + 2 == cdf.groups.size())
                    continue;
                os << "hoard_superblock_occupancy_bucket{size_class=\""
                   << cdf.size_class << "\",le=\"";
                if (g + 1 == cdf.groups.size())
                    os << "1";
                else
                    put_double(os,
                               static_cast<double>(g + 1) /
                                   static_cast<double>(bands));
                os << "\"} " << cumulative << '\n';
            }
            os << "hoard_superblock_occupancy_bucket{size_class=\""
               << cdf.size_class << "\",le=\"+Inf\"} " << cumulative
               << '\n'
               << "hoard_superblock_occupancy_count{size_class=\""
               << cdf.size_class << "\"} " << cumulative << '\n';
        }
    }

    prom_header(os, "hoard_global_bin_occupancy", "gauge",
                "superblocks parked in each per-class global bin");
    for (const HeapSnapshot& h : snap.heaps) {
        if (h.index != 0)
            continue;
        for (const ClassSnapshot& c : h.classes) {
            os << "hoard_global_bin_occupancy{size_class=\""
               << c.size_class << "\"} " << c.superblocks << '\n';
        }
    }

    prom_header(os, "hoard_lock_acquires_total", "counter",
                "heap lock acquisitions (0 unless profiling enabled)");
    for (const HeapSnapshot& h : snap.heaps) {
        os << "hoard_lock_acquires_total{heap=\"" << h.index << "\"} "
           << h.lock.acquires << '\n';
    }

    prom_header(os, "hoard_lock_contended_total", "counter",
                "heap lock acquisitions that had to wait");
    for (const HeapSnapshot& h : snap.heaps) {
        os << "hoard_lock_contended_total{heap=\"" << h.index << "\"} "
           << h.lock.contended << '\n';
    }

    prom_header(os, "hoard_lock_wait", "gauge",
                "contended-wait percentiles (policy time units)");
    for (const HeapSnapshot& h : snap.heaps) {
        for (double p : {50.0, 99.0}) {
            os << "hoard_lock_wait{heap=\"" << h.index
               << "\",quantile=\"" << (p == 50.0 ? "0.5" : "0.99")
               << "\"} ";
            put_double(os, h.lock.wait.percentile(p));
            os << '\n';
        }
    }

    prom_header(os, "hoard_lock_wait_cycles", "histogram",
                "contended lock-wait time per heap (policy time units)");
    for (const HeapSnapshot& h : snap.heaps) {
        prom_cycle_histogram(os, "hoard_lock_wait_cycles",
                             "heap=\"" + std::to_string(h.index) + "\"",
                             h.lock.wait);
    }

    if (snap.latency_armed) {
        prom_header(os, "hoard_latency_cycles", "histogram",
                    "operation latency per allocator path (cycles)");
        for (int p = 0; p < kLatencyPathCount; ++p) {
            const auto path = static_cast<LatencyPath>(p);
            prom_cycle_histogram(
                os, "hoard_latency_cycles",
                std::string("path=\"") + to_string(path) + "\"",
                snap.latency.path(path));
        }

        prom_header(os, "hoard_latency", "gauge",
                    "operation-latency percentiles per path (cycles)");
        static const struct
        {
            double p;
            const char* label;
        } kQuantiles[] = {{50.0, "0.5"},
                          {90.0, "0.9"},
                          {99.0, "0.99"},
                          {99.9, "0.999"}};
        for (int p = 0; p < kLatencyPathCount; ++p) {
            const auto path = static_cast<LatencyPath>(p);
            for (const auto& q : kQuantiles) {
                os << "hoard_latency{path=\"" << to_string(path)
                   << "\",quantile=\"" << q.label << "\"} ";
                put_double(os, snap.latency.path(path).percentile(q.p));
                os << '\n';
            }
        }

        prom_header(os, "hoard_latency_max_cycles", "gauge",
                    "worst observed operation latency per path");
        for (int p = 0; p < kLatencyPathCount; ++p) {
            const auto path = static_cast<LatencyPath>(p);
            os << "hoard_latency_max_cycles{path=\"" << to_string(path)
               << "\"} " << snap.latency.path(path).max() << '\n';
        }

        prom_header(os, "hoard_latency_outliers_total", "counter",
                    "ops exceeding Config::latency_outlier_cycles");
        os << "hoard_latency_outliers_total " << snap.latency.outliers
           << '\n';

        prom_header(os, "hoard_latency_sample_period", "gauge",
                    "fast-path timing sample period (1 = exact)");
        os << "hoard_latency_sample_period "
           << snap.latency.sample_period << '\n';
    }

    const StatsSummary& s = snap.stats;
    prom_header(os, "hoard_allocs_total", "counter", "allocate() calls");
    os << "hoard_allocs_total " << s.allocs << '\n';
    prom_header(os, "hoard_frees_total", "counter", "deallocate() calls");
    os << "hoard_frees_total " << s.frees << '\n';
    prom_header(os, "hoard_in_use_bytes", "gauge",
                "block bytes currently live (U)");
    os << "hoard_in_use_bytes " << s.in_use_bytes << '\n';
    prom_header(os, "hoard_held_bytes", "gauge",
                "bytes held in superblocks (A)");
    os << "hoard_held_bytes " << s.held_bytes << '\n';
    prom_header(os, "hoard_os_bytes", "gauge",
                "deprecated alias of hoard_committed_bytes");
    os << "hoard_os_bytes " << s.committed_bytes << '\n';
    prom_header(os, "hoard_committed_bytes", "gauge",
                "OS-committed bytes (RSS ground truth)");
    os << "hoard_committed_bytes " << s.committed_bytes << '\n';
    prom_header(os, "hoard_reserved_bytes", "gauge",
                "virtual address space held by the page provider");
    os << "hoard_reserved_bytes " << s.reserved_bytes << '\n';
    prom_header(os, "hoard_purged_bytes", "gauge",
                "held bytes returned to the OS by the purge pass");
    os << "hoard_purged_bytes " << s.purged_bytes << '\n';
    prom_header(os, "hoard_purge_passes_total", "counter",
                "purge sweeps over idle superblocks");
    os << "hoard_purge_passes_total " << s.purge_passes << '\n';
    prom_header(os, "hoard_purged_superblocks_total", "counter",
                "superblock payloads decommitted by purge");
    os << "hoard_purged_superblocks_total " << s.purged_superblocks
       << '\n';
    prom_header(os, "hoard_revived_superblocks_total", "counter",
                "purged superblocks put back into service");
    os << "hoard_revived_superblocks_total " << s.revived_superblocks
       << '\n';
    prom_header(os, "hoard_cached_bytes", "gauge",
                "bytes parked in thread caches");
    os << "hoard_cached_bytes " << s.cached_bytes << '\n';
    prom_header(os, "hoard_superblock_transfers_total", "counter",
                "per-processor heap to global heap moves");
    os << "hoard_superblock_transfers_total " << s.superblock_transfers
       << '\n';
    prom_header(os, "hoard_global_fetches_total", "counter",
                "superblocks pulled from the global heap");
    os << "hoard_global_fetches_total " << s.global_fetches << '\n';
    prom_header(os, "hoard_oom_reclaims_total", "counter",
                "map failures answered by reclaiming");
    os << "hoard_oom_reclaims_total " << s.oom_reclaims << '\n';
    prom_header(os, "hoard_oom_failures_total", "counter",
                "allocations that failed even after reclaim");
    os << "hoard_oom_failures_total " << s.oom_failures << '\n';
    prom_header(os, "hoard_remote_frees_total", "counter",
                "frees pushed to a busy owner's remote queue");
    os << "hoard_remote_frees_total " << s.remote_frees << '\n';
    prom_header(os, "hoard_remote_drains_total", "counter",
                "blocks drained from remote-free queues");
    os << "hoard_remote_drains_total " << s.remote_drains << '\n';
    prom_header(os, "hoard_batch_refills_total", "counter",
                "magazine batch refills (one heap lock each)");
    os << "hoard_batch_refills_total " << s.batch_refills << '\n';
    prom_header(os, "hoard_batch_flushes_total", "counter",
                "magazine batch spills/flushes");
    os << "hoard_batch_flushes_total " << s.batch_flushes << '\n';
    prom_header(os, "hoard_global_bin_hits_total", "counter",
                "fetches served by a per-class global bin");
    os << "hoard_global_bin_hits_total " << s.global_bin_hits << '\n';
    prom_header(os, "hoard_global_bin_misses_total", "counter",
                "bin probes that found the size class empty");
    os << "hoard_global_bin_misses_total " << s.global_bin_misses
       << '\n';
    prom_header(os, "hoard_cache_pushes_total", "counter",
                "empty superblocks retired to the reuse cache");
    os << "hoard_cache_pushes_total " << s.cache_pushes << '\n';
    prom_header(os, "hoard_cache_pops_total", "counter",
                "empty superblocks recycled from the reuse cache");
    os << "hoard_cache_pops_total " << s.cache_pops << '\n';
    prom_header(os, "hoard_bad_free_wild_total", "counter",
                "frees of pointers outside any superblock");
    os << "hoard_bad_free_wild_total " << s.bad_free_wild << '\n';
    prom_header(os, "hoard_bad_free_foreign_total", "counter",
                "frees of another allocator's memory");
    os << "hoard_bad_free_foreign_total " << s.bad_free_foreign << '\n';
    prom_header(os, "hoard_bad_free_interior_total", "counter",
                "frees of misaligned or interior pointers");
    os << "hoard_bad_free_interior_total " << s.bad_free_interior << '\n';
    prom_header(os, "hoard_bad_free_double_total", "counter",
                "frees of blocks that were already free");
    os << "hoard_bad_free_double_total " << s.bad_free_double << '\n';
    prom_header(os, "hoard_bg_wakeups_total", "counter",
                "background-worker passes");
    os << "hoard_bg_wakeups_total " << s.bg_wakeups << '\n';
    prom_header(os, "hoard_bg_refills_total", "counter",
                "global-bin superblocks parked by the background worker");
    os << "hoard_bg_refills_total " << s.bg_refills << '\n';
    prom_header(os, "hoard_bg_drains_total", "counter",
                "remote-free queues settled by the background worker");
    os << "hoard_bg_drains_total " << s.bg_drains << '\n';
    prom_header(os, "hoard_bg_precommits_total", "counter",
                "spans pre-committed ahead of demand");
    os << "hoard_bg_precommits_total " << s.bg_precommits << '\n';
    prom_header(os, "hoard_bg_purges_total", "counter",
                "purge passes run on the background cadence");
    os << "hoard_bg_purges_total " << s.bg_purges << '\n';
    os.flush();
}

void
write_human(std::ostream& os, const AllocatorSnapshot& snap)
{
    os << snap.allocator_name << " snapshot: S=" << snap.superblock_bytes
       << " f=" << snap.empty_fraction << " t=" << snap.release_threshold
       << " K=" << snap.slack_superblocks << " P=" << snap.heap_count
       << "\n";
    os << "  totals: in-use " << snap.stats.in_use_bytes << " held "
       << snap.stats.held_bytes << " committed "
       << snap.stats.committed_bytes << " purged "
       << snap.stats.purged_bytes << " reserved "
       << snap.stats.reserved_bytes << " cached " << snap.cached_bytes
       << " huge " << snap.huge_count << " (" << snap.huge_user_bytes
       << "/" << snap.huge_span_bytes << " B)\n";
    os << "  slow path: transfers " << snap.stats.superblock_transfers
       << " fetches " << snap.stats.global_fetches << " (bin hits "
       << snap.stats.global_bin_hits << " misses "
       << snap.stats.global_bin_misses << "), cache pushes "
       << snap.stats.cache_pushes << " pops " << snap.stats.cache_pops
       << "\n";
    if (snap.stats.bad_free_wild + snap.stats.bad_free_foreign +
            snap.stats.bad_free_interior + snap.stats.bad_free_double !=
        0) {
        os << "  bad frees: wild " << snap.stats.bad_free_wild
           << " foreign " << snap.stats.bad_free_foreign << " interior "
           << snap.stats.bad_free_interior << " double "
           << snap.stats.bad_free_double << "\n";
    }
    if (snap.stats.bg_wakeups != 0) {
        os << "  background: wakeups " << snap.stats.bg_wakeups
           << " refills " << snap.stats.bg_refills << " drains "
           << snap.stats.bg_drains << " precommits "
           << snap.stats.bg_precommits << " purges "
           << snap.stats.bg_purges << "\n";
    }
    os << "  reconciles: " << (snap.reconciles() ? "yes" : "no")
       << ", invariant: "
       << (snap.all_heaps_satisfy_invariant() ? "ok" : "VIOLATED")
       << "\n";
    if (snap.latency_armed) {
        os << "  latency (cycles, sample period "
           << snap.latency.sample_period << ", outliers "
           << snap.latency.outliers << "):\n";
        for (int p = 0; p < kLatencyPathCount; ++p) {
            const auto path = static_cast<LatencyPath>(p);
            const LatencyHistogram& h = snap.latency.path(path);
            if (h.count() == 0)
                continue;
            os << "    " << to_string(path) << ": n=" << h.count()
               << " p50=";
            put_double(os, h.percentile(50.0));
            os << " p99=";
            put_double(os, h.percentile(99.0));
            os << " p99.9=";
            put_double(os, h.percentile(99.9));
            os << " max=" << h.max() << "\n";
        }
    }
    for (const HeapSnapshot& h : snap.heaps) {
        os << (h.index == 0 ? "  heap 0 (global)" : "  heap ")
           << (h.index == 0 ? "" : std::to_string(h.index)) << ": u="
           << h.in_use << " a=" << h.held;
        if (h.index != 0) {
            os << " slack=";
            put_double(os, h.invariant_slack_bytes(
                               snap.superblock_bytes,
                               snap.release_threshold,
                               snap.slack_superblocks,
                               snap.global_fetch_batch));
        }
        if (h.index == 0)
            os << " empty-cached=" << h.empty_cached;
        if (h.lock.acquires != 0) {
            os << " lock(acq=" << h.lock.acquires
               << " contended=" << h.lock.contended << " wait-p99=";
            put_double(os, h.lock.wait.percentile(99));
            os << ")";
        }
        os << "\n";
        for (const ClassSnapshot& c : h.classes) {
            os << "    class " << c.size_class << " (" << c.block_bytes
               << " B): " << c.superblocks << " superblock(s), "
               << c.used_blocks << "/" << c.capacity_blocks
               << " blocks, groups [";
            for (std::size_t g = 0; g < c.group_counts.size(); ++g) {
                if (g != 0)
                    os << ' ';
                os << c.group_counts[g];
            }
            os << "]\n";
        }
    }
    os.flush();
}

}  // namespace obs
}  // namespace hoard
