/**
 * @file
 * Tail-latency observability: per-path operation-latency histograms.
 *
 * Averages hide the tail.  This layer answers "what is malloc's P99.9
 * and which stage caused it": every timed operation lands in a
 * log-linear cycle histogram keyed by *operation path* — the deepest
 * stage the op reached — so a malloc that had to map a fresh
 * superblock is attributed to the fresh-map stage, not smeared into
 * an aggregate with magazine hits.
 *
 * Three pieces:
 *
 *  - LatencyHistogram: plain fixed-array log-linear histogram (log2
 *    octaves split into 4 linear sub-buckets) with intra-bucket
 *    interpolated percentile queries.  No allocation, trivially
 *    copyable, mergeable — the snapshot/serialization type, and the
 *    wait-time histogram inside obs::LockStats.
 *  - AtomicLatencyHistogram: the same bucket layout with relaxed
 *    atomic counters, for lock-free concurrent recording.
 *  - LatencyCollector: what HoardAllocator owns when armed — sharded
 *    atomic histograms per path, a sampling countdown for the fast
 *    paths, and a fixed ring of outlier records (ops that exceeded
 *    Config::latency_outlier_cycles, with an optional backtrace).
 *
 * Clocks are policy time: rdtsc-style cycles natively, Machine
 * virtual cycles under SimPolicy.  Recording uses only relaxed
 * fetch-adds and a relaxed CAS max — all commutative — so two
 * identical sim runs merge to byte-identical snapshots regardless of
 * shard interleaving (the determinism bar the profiler set).
 */

#ifndef HOARD_OBS_LATENCY_H_
#define HOARD_OBS_LATENCY_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace hoard {
namespace obs {

/**
 * Operation paths, ordered by depth: within each op family a larger
 * value is a *deeper* stage, so "deepest stage reached" is a running
 * max.  malloc_fast is a magazine hit (or, with magazines off, a
 * local-heap hit); free_fast is a magazine park or the owner-locked
 * free (huge frees land here too — rare, and their munmap cost is
 * real free-path latency).  owner_drain is recorded by the owner
 * settling its remote queue, nested inside whichever op visited the
 * lock.
 */
enum class LatencyPath : std::uint8_t {
    malloc_fast = 0,       ///< magazine/local-heap hit
    malloc_refill,         ///< magazine refill from the owning heap
    malloc_global_fetch,   ///< refill reached the global bins/cache
    malloc_fresh_map,      ///< mapped fresh memory (includes huge)
    free_fast,             ///< magazine park / owner-locked free / huge
    free_spill,            ///< full magazine spilled a batch
    free_remote_push,      ///< busy owner; lock-free remote push
    owner_drain,           ///< owner settled its remote queue
};

constexpr int kLatencyPathCount = 8;

/** Stable lowercase name for exports ("malloc_fast", ...). */
const char* to_string(LatencyPath path);

/**
 * Log-linear histogram of non-negative samples (cycle latencies).
 *
 * Buckets 0..3 are exact (values 0..3); above that each log2 octave
 * [2^k, 2^(k+1)) splits into 4 linear sub-buckets, giving <= 12.5%
 * relative bucket width everywhere.  Values at or above 2^48 cycles
 * (~days) saturate into the last bucket.  Fixed arrays, trivially
 * copyable, no allocation anywhere.
 */
class LatencyHistogram
{
  public:
    static constexpr int kSubBuckets = 4;
    /// Values >= 2^kMaxOctave saturate into the last bucket.
    static constexpr int kMaxOctave = 48;
    static constexpr int kBuckets =
        4 + (kMaxOctave - 2) * kSubBuckets + 1;  // 189

    /** Bucket index for @p value (golden boundaries unit-tested). */
    static int
    bucket_for(std::uint64_t value)
    {
        if (value < 4)
            return static_cast<int>(value);
        int msb = 63 - __builtin_clzll(value);
        if (msb >= kMaxOctave)
            return kBuckets - 1;
        int sub = static_cast<int>((value >> (msb - 2)) & 3);
        return 4 + (msb - 2) * kSubBuckets + sub;
    }

    /** Smallest value that lands in bucket @p b. */
    static std::uint64_t
    bucket_lower(int b)
    {
        if (b < 4)
            return static_cast<std::uint64_t>(b);
        if (b >= kBuckets - 1)
            return std::uint64_t{1} << kMaxOctave;
        int octave = 2 + (b - 4) / kSubBuckets;
        int sub = (b - 4) % kSubBuckets;
        return static_cast<std::uint64_t>(4 + sub) << (octave - 2);
    }

    /** One past the largest value in bucket @p b (saturating). */
    static std::uint64_t
    bucket_upper(int b)
    {
        if (b >= kBuckets - 1)
            return std::numeric_limits<std::uint64_t>::max();
        return bucket_lower(b + 1);
    }

    void
    record(std::uint64_t value)
    {
        ++buckets_[static_cast<std::size_t>(bucket_for(value))];
        ++count_;
        sum_ += value;
        if (value > max_)
            max_ = value;
    }

    void
    merge(const LatencyHistogram& other)
    {
        for (int i = 0; i < kBuckets; ++i)
            buckets_[static_cast<std::size_t>(i)] +=
                other.buckets_[static_cast<std::size_t>(i)];
        count_ += other.count_;
        sum_ += other.sum_;
        if (other.max_ > max_)
            max_ = other.max_;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t max() const { return max_; }

    std::uint64_t
    bucket(int i) const
    {
        return buckets_[static_cast<std::size_t>(i)];
    }

    double
    mean() const
    {
        return count_ == 0 ? 0.0
                           : static_cast<double>(sum_) /
                                 static_cast<double>(count_);
    }

    /**
     * Value at percentile @p p in [0, 100], linearly interpolated
     * inside the containing bucket and clamped to the recorded max
     * (so a saturated last bucket cannot report beyond reality).
     * 0 when empty.
     */
    double percentile(double p) const;

    bool
    operator==(const LatencyHistogram& other) const
    {
        return count_ == other.count_ && sum_ == other.sum_ &&
               max_ == other.max_ && buckets_ == other.buckets_;
    }
    bool
    operator!=(const LatencyHistogram& other) const
    {
        return !(*this == other);
    }

  private:
    friend class AtomicLatencyHistogram;

    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * The same bucket layout with relaxed atomic counters for lock-free
 * concurrent recording.  Every mutation commutes (fetch-adds and a
 * CAS max), so a merged snapshot is independent of recording
 * interleaving — the determinism property the sim replay test pins.
 */
class AtomicLatencyHistogram
{
  public:
    void
    record(std::uint64_t value)
    {
        const auto b = static_cast<std::size_t>(
            LatencyHistogram::bucket_for(value));
        buckets_[b].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(value, std::memory_order_relaxed);
        std::uint64_t seen = max_.load(std::memory_order_relaxed);
        while (value > seen &&
               !max_.compare_exchange_weak(seen, value,
                                           std::memory_order_relaxed)) {
        }
    }

    /** Adds this histogram's contents into @p out (relaxed reads). */
    void merge_into(LatencyHistogram& out) const;

  private:
    std::array<std::atomic<std::uint64_t>, LatencyHistogram::kBuckets>
        buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> max_{0};
};

/**
 * Stack-carried timing state for one in-flight operation: when the
 * slow path started, and the deepest stage it has reached so far.
 * Passed by pointer through the slow-path call chain (NOT
 * thread_local — sim fibers share OS threads).  Within an op family
 * the enum's numeric order is depth order, so raise() is a max.
 */
struct LatencyProbe
{
    std::uint64_t t0 = 0;
    bool active = false;
    LatencyPath stage = LatencyPath::malloc_fast;

    void
    begin(std::uint64_t now)
    {
        if (!active) {
            active = true;
            t0 = now;
        }
    }

    void
    raise(LatencyPath s)
    {
        if (s > stage)
            stage = s;
    }
};

/** Merged view of every path histogram; the serialization unit. */
struct LatencySnapshot
{
    std::array<LatencyHistogram, kLatencyPathCount> paths;
    std::uint64_t outliers = 0;          ///< ops past the threshold
    std::uint64_t outlier_cycles = 0;    ///< the threshold (0 = off)
    std::uint32_t sample_period = 1;     ///< fast-path timing cadence

    const LatencyHistogram&
    path(LatencyPath p) const
    {
        return paths[static_cast<std::size_t>(p)];
    }

    std::uint64_t
    total_count() const
    {
        std::uint64_t n = 0;
        for (const LatencyHistogram& h : paths)
            n += h.count();
        return n;
    }

    bool
    operator==(const LatencySnapshot& other) const
    {
        return paths == other.paths && outliers == other.outliers &&
               outlier_cycles == other.outlier_cycles &&
               sample_period == other.sample_period;
    }
};

/** One outlier record: an op that exceeded the cycle threshold. */
struct LatencyOutlier
{
    std::uint64_t timestamp = 0;  ///< policy timestamp at detection
    std::uint64_t cycles = 0;     ///< the op's measured latency
    int tid = 0;
    LatencyPath path = LatencyPath::malloc_fast;
    int frame_count = 0;
    std::array<std::uintptr_t, 16> frames{};
};

/**
 * What an armed allocator owns: per-path atomic histograms sharded by
 * thread index (spreading fetch-add contention), a per-thread
 * sampling countdown deciding which fast-path ops get timed, and a
 * lock-free overwrite ring of the most recent outliers.
 *
 * Slow-path ops (refill and deeper, spills, huge) are always timed —
 * they are rare and they are where the tail lives, so outliers are
 * never missed there.  Fast-path ops (magazine hit, magazine park,
 * locked free) are timed one in sample_period per thread; with
 * period 1 every op is timed and histogram counts reconcile exactly
 * with the allocator's op counters (the integration tests' mode).
 */
class LatencyCollector
{
  public:
    static constexpr int kShards = 16;
    static constexpr int kOutlierSlots = 64;
    static constexpr int kMaxOutlierFrames = 16;

    explicit LatencyCollector(std::uint32_t sample_period,
                              std::uint64_t outlier_cycles)
        : period_(sample_period == 0 ? 1 : sample_period),
          outlier_cycles_(outlier_cycles)
    {
    }

    LatencyCollector(const LatencyCollector&) = delete;
    LatencyCollector& operator=(const LatencyCollector&) = delete;

    /**
     * Fast-path sampling countdown: true when the caller should time
     * this op.  One thread-local decrement and a predicted branch —
     * the entire armed cost of an untimed fast-path op.  The
     * countdown is per OS thread and shared across collector
     * instances (cadence only; correctness never depends on it).
     */
    bool
    tick()
    {
        // Single decrement-and-branch on the thread-local (one RMW
        // instruction on x86); the countdown is always >= 1, so the
        // untimed path never stores a reset.
        if (--t_countdown != 0) [[likely]]
            return false;
        t_countdown = period_;
        return true;
    }

    /** Records one timed op.  Lock-free; any thread. */
    void
    record(int tid, LatencyPath path, std::uint64_t cycles)
    {
        shards_[static_cast<std::size_t>(tid) & (kShards - 1)]
            .paths[static_cast<std::size_t>(path)]
            .record(cycles);
    }

    /** True when @p cycles crosses the outlier threshold. */
    bool
    is_outlier(std::uint64_t cycles) const
    {
        return outlier_cycles_ != 0 && cycles >= outlier_cycles_;
    }

    /**
     * Stores one outlier in the overwrite ring (newest wins when
     * full).  @p frames may be null.  Lock-free claim; field writes
     * are relaxed atomics, read back quiesced like the event rings.
     */
    void record_outlier(std::uint64_t timestamp, int tid,
                        LatencyPath path, std::uint64_t cycles,
                        const std::uintptr_t* frames, int frame_count);

    std::uint32_t sample_period() const { return period_; }
    std::uint64_t outlier_cycles() const { return outlier_cycles_; }

    std::uint64_t
    outliers() const
    {
        return outlier_head_.load(std::memory_order_relaxed);
    }

    /** Merged copy of every shard; deterministic for a given set of
        recorded ops.  Safe concurrently; exact when quiesced. */
    LatencySnapshot snapshot() const;

    /** The retained outliers, oldest first (at most kOutlierSlots). */
    std::vector<LatencyOutlier> recent_outliers() const;

  private:
    struct OutlierSlot
    {
        std::atomic<std::uint64_t> timestamp{0};
        std::atomic<std::uint64_t> cycles{0};
        std::atomic<std::int32_t> tid{0};
        std::atomic<std::uint8_t> path{0};
        std::atomic<std::int32_t> frame_count{0};
        std::array<std::atomic<std::uintptr_t>, kMaxOutlierFrames>
            frames{};
    };

    struct alignas(64) Shard
    {
        std::array<AtomicLatencyHistogram, kLatencyPathCount> paths;
    };

    static thread_local std::uint32_t t_countdown;

    const std::uint32_t period_;
    const std::uint64_t outlier_cycles_;
    std::array<Shard, kShards> shards_;
    std::atomic<std::uint64_t> outlier_head_{0};
    std::array<OutlierSlot, kOutlierSlots> outliers_;
};

}  // namespace obs
}  // namespace hoard

#endif  // HOARD_OBS_LATENCY_H_
