/**
 * @file
 * Lock-free binary event tracing for the allocator's rare-path events.
 *
 * The paper's scalability argument rests on events that are *rare* per
 * operation — superblock transfers to and from the global heap, fresh
 * superblock refills, OOM reclaims.  This module records exactly those
 * events (plus thread-cache hits/misses and huge allocations) into a
 * small set of overwrite rings so a run's recent history can be dumped
 * as a Chrome trace and correlated with per-heap snapshots.
 *
 * Design constraints, in order:
 *  - recording must never take a lock or allocate (it runs inside the
 *    allocator, sometimes under a heap lock);
 *  - a slow reader must never stall writers (rings overwrite);
 *  - concurrent writers must be well-defined C++ (every slot word is a
 *    relaxed atomic, so the worst interleaving yields a *mixed* event,
 *    never UB; readers that want exact streams read quiesced).
 *
 * The recorder shards events across kShards rings by thread index, so
 * the fetch_add on a ring head is rarely contended.
 */

#ifndef HOARD_OBS_EVENT_RING_H_
#define HOARD_OBS_EVENT_RING_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/failure.h"
#include "common/mathutil.h"

namespace hoard {
namespace obs {

/** Allocator events worth a trace entry (all off the per-op fast path). */
enum class EventKind : std::uint16_t
{
    transfer_to_global,   ///< emptiness invariant moved a superblock out
    fetch_from_global,    ///< allocation pulled a superblock from heap 0
    cache_hit,            ///< thread cache served an allocation
    cache_miss,           ///< thread cache empty; fell through to heap
    class_refill,         ///< fresh superblock mapped for a size class
    oom_reclaim,          ///< map failure answered by release_free_memory
    huge_alloc,           ///< > S/2 request served by a dedicated chunk
    remote_free,          ///< free pushed to a busy owner's remote queue
    batch_refill,         ///< magazine refilled N blocks under one lock
    batch_flush,          ///< magazine spilled/flushed a batch of blocks
    cache_push,           ///< empty superblock retired to the reuse cache
    cache_pop,            ///< reuse cache supplied a recycled superblock
    bad_free,             ///< hardened free path rejected a pointer
    latency_outlier,      ///< op exceeded Config::latency_outlier_cycles
    bg_wakeup,            ///< background worker started a pass
    bg_refill,            ///< worker formatted a superblock into a bin
    bg_drain,             ///< worker settled a heap's remote-free queue
    bg_precommit,         ///< worker pre-committed spans in the provider
    bg_purge,             ///< worker ran the purge pass on its cadence
    kCount
};

/** Stable short name (trace event name / test assertions). */
inline const char*
to_string(EventKind kind)
{
    switch (kind) {
      case EventKind::transfer_to_global:
        return "transfer_to_global";
      case EventKind::fetch_from_global:
        return "fetch_from_global";
      case EventKind::cache_hit:
        return "cache_hit";
      case EventKind::cache_miss:
        return "cache_miss";
      case EventKind::class_refill:
        return "class_refill";
      case EventKind::oom_reclaim:
        return "oom_reclaim";
      case EventKind::huge_alloc:
        return "huge_alloc";
      case EventKind::remote_free:
        return "remote_free";
      case EventKind::batch_refill:
        return "batch_refill";
      case EventKind::batch_flush:
        return "batch_flush";
      case EventKind::cache_push:
        return "cache_push";
      case EventKind::cache_pop:
        return "cache_pop";
      case EventKind::bad_free:
        return "bad_free";
      case EventKind::latency_outlier:
        return "latency_outlier";
      case EventKind::bg_wakeup:
        return "bg_wakeup";
      case EventKind::bg_refill:
        return "bg_refill";
      case EventKind::bg_drain:
        return "bg_drain";
      case EventKind::bg_precommit:
        return "bg_precommit";
      case EventKind::bg_purge:
        return "bg_purge";
      case EventKind::kCount:
        break;
    }
    return "?";
}

/**
 * One decoded trace event.  `timestamp` is Policy time: steady_clock
 * nanoseconds under NativePolicy, virtual cycles under SimPolicy.
 */
struct TraceEvent
{
    std::uint64_t timestamp = 0;
    std::uint64_t bytes = 0;    ///< payload size the event concerns
    std::int32_t tid = 0;       ///< logical thread index
    std::int32_t size_class = 0;
    std::uint16_t heap = 0;     ///< heap index (0 = global)
    EventKind kind = EventKind::kCount;
};

/**
 * Fixed-capacity overwrite ring of TraceEvents.  record() is lock-free
 * (one relaxed fetch_add plus four relaxed stores); when the ring is
 * full the oldest events are overwritten and counted as dropped.
 */
class EventRing
{
  public:
    /** @param capacity number of events retained; power of two >= 2. */
    explicit EventRing(std::size_t capacity)
        : capacity_(capacity),
          mask_(capacity - 1),
          slots_(new Slot[capacity]())
    {
        HOARD_CHECK(detail::is_pow2(capacity) && capacity >= 2);
    }

    EventRing(const EventRing&) = delete;
    EventRing& operator=(const EventRing&) = delete;

    /** Records @p ev; never blocks, never allocates. */
    void
    record(const TraceEvent& ev)
    {
        std::uint64_t i = head_.fetch_add(1, std::memory_order_relaxed);
        Slot& s = slots_[i & mask_];
        s.w0.store(ev.timestamp, std::memory_order_relaxed);
        s.w1.store(ev.bytes, std::memory_order_relaxed);
        s.w2.store((static_cast<std::uint64_t>(
                        static_cast<std::uint32_t>(ev.tid))
                    << 32) |
                       static_cast<std::uint32_t>(ev.size_class),
                   std::memory_order_relaxed);
        s.w3.store((static_cast<std::uint64_t>(ev.kind) << 16) | ev.heap,
                   std::memory_order_relaxed);
    }

    /** Events ever recorded (including overwritten ones). */
    std::uint64_t
    total_recorded() const
    {
        return head_.load(std::memory_order_relaxed);
    }

    /** Events lost to overwrite so far. */
    std::uint64_t
    dropped() const
    {
        std::uint64_t n = total_recorded();
        return n > capacity_ ? n - capacity_ : 0;
    }

    std::size_t capacity() const { return capacity_; }

    /**
     * Appends the retained events, oldest first, to @p out.  Intended
     * for quiesced readers; racing a writer is memory-safe but may see
     * events whose fields mix two writes.  Returns the count appended.
     */
    std::size_t
    collect(std::vector<TraceEvent>& out) const
    {
        std::uint64_t head = head_.load(std::memory_order_relaxed);
        std::uint64_t n = std::min<std::uint64_t>(head, capacity_);
        out.reserve(out.size() + n);
        for (std::uint64_t i = head - n; i != head; ++i) {
            const Slot& s = slots_[i & mask_];
            TraceEvent ev;
            ev.timestamp = s.w0.load(std::memory_order_relaxed);
            ev.bytes = s.w1.load(std::memory_order_relaxed);
            std::uint64_t w2 = s.w2.load(std::memory_order_relaxed);
            ev.tid = static_cast<std::int32_t>(w2 >> 32);
            ev.size_class =
                static_cast<std::int32_t>(w2 & 0xffffffffu);
            std::uint64_t w3 = s.w3.load(std::memory_order_relaxed);
            ev.kind = static_cast<EventKind>(w3 >> 16);
            ev.heap = static_cast<std::uint16_t>(w3 & 0xffffu);
            out.push_back(ev);
        }
        return static_cast<std::size_t>(n);
    }

  private:
    struct Slot
    {
        std::atomic<std::uint64_t> w0{0};
        std::atomic<std::uint64_t> w1{0};
        std::atomic<std::uint64_t> w2{0};
        std::atomic<std::uint64_t> w3{0};
    };

    const std::size_t capacity_;
    const std::uint64_t mask_;
    std::unique_ptr<Slot[]> slots_;
    std::atomic<std::uint64_t> head_{0};
};

/**
 * A set of event rings sharded by thread index.  One recorder serves
 * one allocator instance; the allocator owns it for its lifetime and
 * hands out a const reference for export.
 */
class EventRecorder
{
  public:
    /** Rings; power of two so `tid & (kShards-1)` shards evenly. */
    static constexpr std::size_t kShards = 16;

    /** @param ring_capacity events retained per shard (power of two). */
    explicit EventRecorder(std::size_t ring_capacity = 1024)
    {
        rings_.reserve(kShards);
        for (std::size_t i = 0; i < kShards; ++i)
            rings_.push_back(std::make_unique<EventRing>(ring_capacity));
    }

    /** Records one event, sharded by @p tid. */
    void
    record(std::uint64_t timestamp, int tid, EventKind kind, int heap,
           int size_class, std::uint64_t bytes)
    {
        TraceEvent ev;
        ev.timestamp = timestamp;
        ev.bytes = bytes;
        ev.tid = tid;
        ev.size_class = size_class;
        ev.heap = static_cast<std::uint16_t>(heap);
        ev.kind = kind;
        rings_[static_cast<std::size_t>(tid) & (kShards - 1)]->record(ev);
    }

    /** All retained events across shards, sorted by timestamp. */
    std::vector<TraceEvent>
    collect() const
    {
        std::vector<TraceEvent> events;
        for (const auto& ring : rings_)
            ring->collect(events);
        std::stable_sort(events.begin(), events.end(),
                         [](const TraceEvent& a, const TraceEvent& b) {
                             return a.timestamp < b.timestamp;
                         });
        return events;
    }

    std::uint64_t
    total_recorded() const
    {
        std::uint64_t n = 0;
        for (const auto& ring : rings_)
            n += ring->total_recorded();
        return n;
    }

    std::uint64_t
    dropped() const
    {
        std::uint64_t n = 0;
        for (const auto& ring : rings_)
            n += ring->dropped();
        return n;
    }

    /** Per-event-kind totals over the *retained* window. */
    std::vector<std::uint64_t>
    kind_counts() const
    {
        std::vector<std::uint64_t> counts(
            static_cast<std::size_t>(EventKind::kCount), 0);
        for (const TraceEvent& ev : collect()) {
            auto k = static_cast<std::size_t>(ev.kind);
            if (k < counts.size())
                ++counts[k];
        }
        return counts;
    }

  private:
    std::vector<std::unique_ptr<EventRing>> rings_;
};

}  // namespace obs
}  // namespace hoard

#endif  // HOARD_OBS_EVENT_RING_H_
