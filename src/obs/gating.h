/**
 * @file
 * Observability gating (DESIGN.md; docs/OBSERVABILITY.md).
 *
 * Two independent switches decide whether the allocator records
 * anything:
 *
 *  - Compile time: the HOARD_OBS CMake option (default ON) defines the
 *    HOARD_OBS macro.  When 0, every instrumentation site in the
 *    allocator is removed by `if constexpr` on Policy::kObsEnabled and
 *    the hot paths are bit-identical to an uninstrumented build.
 *  - Run time: Config::observability, OR-ed with the HOARD_OBS
 *    environment variable ("1"/"true"/"on").  When off (the default),
 *    the only residual cost on the hot path is one predictable branch
 *    on a plain bool.
 *
 * The compile-time switch is surfaced as a Policy constant rather than
 * used directly so a single binary can instantiate both an instrumented
 * and an uninstrumented allocator (bench/micro_obs_overhead.cc measures
 * one against the other).
 */

#ifndef HOARD_OBS_GATING_H_
#define HOARD_OBS_GATING_H_

#include <cstdlib>
#include <cstring>

// Builds that bypass CMake get the instrumented default.
#ifndef HOARD_OBS
#define HOARD_OBS 1
#endif

// The sampling heap profiler gates independently (HOARD_PROFILER CMake
// option): a build can keep site attribution while dropping tracing.
#ifndef HOARD_PROFILER
#define HOARD_PROFILER 1
#endif

namespace hoard {
namespace obs {

/** True when instrumentation is compiled into this build. */
inline constexpr bool kCompiledIn = HOARD_OBS != 0;

/** True when the sampling heap profiler is compiled into this build. */
inline constexpr bool kProfilerCompiledIn = HOARD_PROFILER != 0;

/** True when the HOARD_OBS environment variable requests tracing. */
inline bool
env_enabled()
{
    static const bool enabled = [] {
        const char* v = std::getenv("HOARD_OBS");
        if (v == nullptr)
            return false;
        return std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
               std::strcmp(v, "on") == 0;
    }();
    return enabled;
}

/** True when the HOARD_LATENCY environment variable arms the latency
    histograms (same value grammar as HOARD_OBS). */
inline bool
latency_env_enabled()
{
    static const bool enabled = [] {
        const char* v = std::getenv("HOARD_LATENCY");
        if (v == nullptr)
            return false;
        return std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
               std::strcmp(v, "on") == 0;
    }();
    return enabled;
}

}  // namespace obs
}  // namespace hoard

#endif  // HOARD_OBS_GATING_H_
