/**
 * @file
 * Lock-contention profiling for the per-heap and global-heap locks.
 *
 * ProfiledMutex wraps the execution policy's mutex with an
 * std::mutex-compatible API, so std::lock_guard and the allocator's
 * manual lock()/unlock() sites work unchanged.  When profiling is off
 * (the default) the wrapper forwards with zero added work; when on, it
 * counts acquisitions, detects contention with a try_lock fast path,
 * and accumulates the wait time of contended acquisitions into an
 * obs::LatencyHistogram — virtual cycles under SimPolicy, steady_clock
 * nanoseconds under NativePolicy (Policy::timestamp supplies both).
 * The log-linear histogram keeps full tail resolution, so per-heap
 * lock-wait P99 goes out through Prometheus, not just counts/totals.
 *
 * The statistics are mutated only while the wrapped mutex is held, so
 * they need no atomics; readers must hold the lock too (the snapshot
 * walk already does).
 *
 * Observer effect: under SimPolicy a profiled contended acquisition
 * charges the cost model for one extra try_lock probe.  Profiling is
 * for diagnosis runs; figures meant for the paper's tables should keep
 * it off.
 */

#ifndef HOARD_OBS_CONTENTION_H_
#define HOARD_OBS_CONTENTION_H_

#include <atomic>
#include <cstdint>

#include "obs/gating.h"
#include "obs/latency.h"

namespace hoard {
namespace obs {

/** Contention profile of one lock. */
struct LockStats
{
    std::uint64_t acquires = 0;   ///< successful lock() / try_lock()
    std::uint64_t contended = 0;  ///< acquisitions that had to wait
    obs::LatencyHistogram wait;   ///< wait time of contended ones
};

/**
 * Policy mutex wrapped with optional contention profiling.  Profiling
 * is enabled per instance via set_profiled(), which must be called
 * while no other thread can touch the mutex (allocator construction).
 */
template <typename Policy>
class ProfiledMutex
{
  public:
    void
    lock()
    {
        if constexpr (Policy::kObsEnabled) {
            if (profiled_) {
                lock_profiled();
                held_.store(true, std::memory_order_relaxed);
                return;
            }
        }
        inner_.lock();
        held_.store(true, std::memory_order_relaxed);
    }

    bool
    try_lock()
    {
        bool ok = inner_.try_lock();
        if constexpr (Policy::kObsEnabled) {
            if (ok && profiled_)
                ++stats_.acquires;
        }
        if (ok)
            held_.store(true, std::memory_order_relaxed);
        return ok;
    }

    void
    unlock()
    {
        held_.store(false, std::memory_order_relaxed);
        inner_.unlock();
    }

    /**
     * Heuristic busy probe: true when some thread holds the lock.  A
     * relaxed load, so the answer can be stale in either direction —
     * callers must treat it as advice (the remote-free path uses it to
     * choose between a lock-free handoff and a blocking acquire; both
     * choices are correct).  Much cheaper than a failed try_lock on
     * the uncontended path.
     */
    bool
    is_locked_hint() const
    {
        return held_.load(std::memory_order_relaxed);
    }

    /** Turns profiling on/off.  Call only while quiesced. */
    void set_profiled(bool on) { profiled_ = on; }
    bool profiled() const { return profiled_; }

    /** Profile so far.  Caller must hold the lock. */
    const LockStats& stats_locked() const { return stats_; }

  private:
    void
    lock_profiled()
    {
        if (inner_.try_lock()) {
            ++stats_.acquires;
            return;
        }
        std::uint64_t t0 = Policy::timestamp();
        inner_.lock();
        std::uint64_t waited = Policy::timestamp() - t0;
        ++stats_.acquires;
        ++stats_.contended;
        stats_.wait.record(waited);
    }

    typename Policy::Mutex inner_;
    std::atomic<bool> held_{false};
    bool profiled_ = false;
    LockStats stats_;
};

}  // namespace obs
}  // namespace hoard

#endif  // HOARD_OBS_CONTENTION_H_
