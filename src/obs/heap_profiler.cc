// dladdr is a glibc extension; this must precede every include.
#ifndef _GNU_SOURCE
#define _GNU_SOURCE 1
#endif

#include "obs/heap_profiler.h"

#include <dlfcn.h>

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <ostream>
#include <vector>

#include "common/mathutil.h"

namespace hoard {
namespace obs {

namespace {

/** splitmix64 finalizer: the mixing stage shared with detail::Rng. */
std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** FNV-1a over the frame words, then mixed; never returns 0. */
std::uint64_t
hash_frames(const std::uintptr_t* frames, int depth)
{
    std::uint64_t h = 0xcbf29ce484222325ULL ^
                      static_cast<std::uint64_t>(depth);
    for (int i = 0; i < depth; ++i) {
        h ^= static_cast<std::uint64_t>(frames[i]);
        h *= 0x100000001b3ULL;
    }
    h = mix64(h);
    return h == 0 ? 1 : h;
}

/** Best-effort "name+0xoff (module)" for one return address. */
std::string
symbolize(std::uintptr_t addr)
{
    char buf[512];
    Dl_info info;
    if (dladdr(reinterpret_cast<void*>(addr), &info) != 0 &&
        info.dli_sname != nullptr) {
        const std::uintptr_t base =
            reinterpret_cast<std::uintptr_t>(info.dli_saddr);
        std::snprintf(buf, sizeof buf, "%s+0x%" PRIxPTR " (%s)",
                      info.dli_sname, addr - base,
                      info.dli_fname != nullptr ? info.dli_fname : "?");
    } else {
        std::snprintf(buf, sizeof buf, "0x%" PRIxPTR, addr);
    }
    return buf;
}

/** Symbol name alone (or the hex address) for the pprof Function. */
std::string
symbol_name(std::uintptr_t addr)
{
    Dl_info info;
    if (dladdr(reinterpret_cast<void*>(addr), &info) != 0 &&
        info.dli_sname != nullptr)
        return info.dli_sname;
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%" PRIxPTR, addr);
    return buf;
}

/** Per-site Poisson sampling weight (see write_pprof_profile doc). */
double
sample_weight(double mean_bytes, double rate)
{
    if (rate <= 1.0 || mean_bytes <= 0.0)
        return 1.0;
    const double p = 1.0 - std::exp(-mean_bytes / rate);
    return p > 0.0 ? 1.0 / p : 1.0;
}

/** One site copied out of the lock-free table for export. */
struct SiteCopy
{
    const std::uintptr_t* frames;
    int depth;
    std::uint64_t cum_objects, cum_requested, cum_rounded;
    std::uint64_t live_objects, live_requested, live_rounded;
    std::uint64_t lifetime_sum, lifetime_count;
};

}  // namespace

HeapProfiler::HeapProfiler(std::size_t sample_rate, std::size_t site_slots,
                           std::size_t live_slots, int max_frames,
                           std::uint32_t num_classes)
    : rate_(sample_rate == 0 ? 1 : sample_rate),
      site_slots_(site_slots),
      live_slots_(live_slots),
      max_frames_(std::min(max_frames, kMaxFrames)),
      num_classes_(num_classes)
{
    HOARD_CHECK(detail::is_pow2(site_slots_) && site_slots_ >= 2);
    HOARD_CHECK(detail::is_pow2(live_slots_) && live_slots_ >= 8);
    HOARD_CHECK(max_frames_ >= 1);

    threads_ = new ThreadState[kThreadSlots];
    sites_ = new Site[site_slots_];
    frames_store_ =
        new std::uintptr_t[site_slots_ *
                           static_cast<std::size_t>(max_frames_)]();
    live_ = new LiveSlot[live_slots_];
    classes_ = new ClassAccum[num_classes_ + 1];

    // Deterministic per-slot RNG seeds (keyed by slot index, not by
    // address or time) so sim runs replay bit-identically; arm every
    // countdown with a fresh exponential draw.
    for (int i = 0; i < kThreadSlots; ++i) {
        threads_[i].rng.store(
            mix64(0x9e3779b97f4a7c15ULL *
                  (static_cast<std::uint64_t>(i) + 1)),
            std::memory_order_relaxed);
        threads_[i].countdown.store(next_threshold(threads_[i]),
                                    std::memory_order_relaxed);
    }
}

HeapProfiler::~HeapProfiler()
{
    delete[] threads_;
    delete[] sites_;
    delete[] frames_store_;
    delete[] live_;
    delete[] classes_;
}

std::int64_t
HeapProfiler::next_threshold(ThreadState& t)
{
    // rate 1 is exact mode: every allocation of >= 1 byte crosses the
    // threshold.  An exponential draw here would occasionally exceed
    // the allocation size and *skip* one, breaking the tests that rely
    // on sample == every allocation.
    if (rate_ <= 1)
        return 1;
    std::uint64_t s = t.rng.load(std::memory_order_relaxed) +
                      0x9e3779b97f4a7c15ULL;
    t.rng.store(s, std::memory_order_relaxed);
    const double u = (mix64(s) >> 11) * (1.0 / 9007199254740992.0);
    const double gap =
        -std::log(1.0 - u) * static_cast<double>(rate_);
    // Clamp: >= 1 so progress is guaranteed, and well below the int64
    // range so repeated subtraction can never wrap.
    if (gap < 1.0)
        return 1;
    if (gap >= 9.0e18)
        return std::int64_t{1} << 62;
    return static_cast<std::int64_t>(gap);
}

std::ptrdiff_t
HeapProfiler::site_find_or_claim(std::uint64_t hash,
                                 const std::uintptr_t* frames, int depth)
{
    const std::size_t mask = site_slots_ - 1;
    const std::size_t probes = std::min<std::size_t>(site_slots_, 32);
    for (std::size_t i = 0; i < probes; ++i) {
        const std::size_t idx = (hash + i) & mask;
        Site& s = sites_[idx];
        std::uint64_t cur = s.hash.load(std::memory_order_relaxed);
        if (cur == hash)
            return static_cast<std::ptrdiff_t>(idx);
        if (cur != 0)
            continue;
        if (s.hash.compare_exchange_strong(cur, hash,
                                           std::memory_order_relaxed)) {
            const int kept = std::min(depth, max_frames_);
            std::uintptr_t* dst =
                frames_store_ +
                idx * static_cast<std::size_t>(max_frames_);
            for (int f = 0; f < kept; ++f)
                dst[f] = frames[f];
            s.depth = kept;
            s.ready.store(true, std::memory_order_release);
            site_count_.fetch_add(1, std::memory_order_relaxed);
            return static_cast<std::ptrdiff_t>(idx);
        }
        if (cur == hash)  // lost the claim race to our own stack
            return static_cast<std::ptrdiff_t>(idx);
    }
    return -1;
}

bool
HeapProfiler::record_alloc(const void* ptr, std::size_t requested,
                           std::size_t rounded, std::uint32_t cls,
                           const std::uintptr_t* frames, int depth,
                           std::uint64_t now)
{
    sampled_objects_.fetch_add(1, std::memory_order_relaxed);
    sampled_requested_.fetch_add(requested, std::memory_order_relaxed);
    sampled_rounded_.fetch_add(rounded, std::memory_order_relaxed);

    ClassAccum& ca =
        classes_[cls < num_classes_ ? cls : num_classes_];
    ca.objects.fetch_add(1, std::memory_order_relaxed);
    ca.requested.fetch_add(requested, std::memory_order_relaxed);
    ca.rounded.fetch_add(rounded, std::memory_order_relaxed);

    const std::uint64_t h = hash_frames(frames, depth);
    const std::ptrdiff_t idx = site_find_or_claim(h, frames, depth);
    if (idx < 0) {
        site_drops_.fetch_add(1, std::memory_order_relaxed);
        return false;  // no site => no live entry; stays exact
    }
    Site& s = sites_[idx];
    s.cum_objects.fetch_add(1, std::memory_order_relaxed);
    s.cum_requested.fetch_add(requested, std::memory_order_relaxed);
    s.cum_rounded.fetch_add(rounded, std::memory_order_relaxed);
    const std::uint32_t pos =
        s.ts_pos.fetch_add(1, std::memory_order_relaxed);
    s.ts_ring[pos & (kTimestampRing - 1)].store(
        now, std::memory_order_relaxed);

    // Live-map insert: probe the aligned 8-slot window for a free
    // slot, claim it through the busy sentinel, publish values, then
    // the key.  Live gauges are bumped before the key goes visible so
    // a racing free's decrement cannot pass its own increment.
    const std::uintptr_t key = reinterpret_cast<std::uintptr_t>(ptr);
    const std::size_t base =
        (mix64(key) & (live_slots_ - 1)) & ~std::size_t{7};
    for (std::size_t i = 0; i < 8; ++i) {
        LiveSlot& slot = live_[base + i];
        std::uintptr_t expect = 0;
        if (!slot.key.compare_exchange_strong(
                expect, kBusy, std::memory_order_acquire,
                std::memory_order_relaxed))
            continue;
        slot.site.store(static_cast<std::uint32_t>(idx),
                        std::memory_order_relaxed);
        slot.cls.store(cls, std::memory_order_relaxed);
        slot.requested.store(requested, std::memory_order_relaxed);
        slot.rounded.store(rounded, std::memory_order_relaxed);
        slot.alloc_ts.store(now, std::memory_order_relaxed);
        s.live_objects.fetch_add(1, std::memory_order_relaxed);
        s.live_requested.fetch_add(requested, std::memory_order_relaxed);
        s.live_rounded.fetch_add(rounded, std::memory_order_relaxed);
        live_objects_.fetch_add(1, std::memory_order_relaxed);
        live_requested_.fetch_add(requested, std::memory_order_relaxed);
        live_rounded_.fetch_add(rounded, std::memory_order_relaxed);
        slot.key.store(key, std::memory_order_release);
        return true;
    }
    live_drops_.fetch_add(1, std::memory_order_relaxed);
    live_drop_bytes_.fetch_add(rounded, std::memory_order_relaxed);
    return false;
}

HeapProfiler::LiveSlot*
HeapProfiler::live_claim(const void* ptr)
{
    const std::uintptr_t key = reinterpret_cast<std::uintptr_t>(ptr);
    const std::size_t base =
        (mix64(key) & (live_slots_ - 1)) & ~std::size_t{7};
    for (std::size_t i = 0; i < 8; ++i) {
        LiveSlot& slot = live_[base + i];
        std::uintptr_t cur = slot.key.load(std::memory_order_relaxed);
        if (cur != key)
            continue;
        if (slot.key.compare_exchange_strong(cur, kBusy,
                                             std::memory_order_acquire,
                                             std::memory_order_relaxed))
            return &slot;
    }
    return nullptr;
}

void
HeapProfiler::finish_free(LiveSlot* slot, std::uint64_t now)
{
    const std::uint32_t si = slot->site.load(std::memory_order_relaxed);
    const std::uint64_t requested =
        slot->requested.load(std::memory_order_relaxed);
    const std::uint64_t rounded =
        slot->rounded.load(std::memory_order_relaxed);
    const std::uint64_t born =
        slot->alloc_ts.load(std::memory_order_relaxed);

    Site& s = sites_[si];
    s.live_objects.fetch_sub(1, std::memory_order_relaxed);
    s.live_requested.fetch_sub(requested, std::memory_order_relaxed);
    s.live_rounded.fetch_sub(rounded, std::memory_order_relaxed);
    s.lifetime_sum.fetch_add(now > born ? now - born : 0,
                             std::memory_order_relaxed);
    s.lifetime_count.fetch_add(1, std::memory_order_relaxed);
    live_objects_.fetch_sub(1, std::memory_order_relaxed);
    live_requested_.fetch_sub(requested, std::memory_order_relaxed);
    live_rounded_.fetch_sub(rounded, std::memory_order_relaxed);
    frees_paired_.fetch_add(1, std::memory_order_relaxed);

    slot->key.store(0, std::memory_order_release);
}

ProfilerTotals
HeapProfiler::totals() const
{
    ProfilerTotals t;
    t.sampled_objects = sampled_objects_.load(std::memory_order_relaxed);
    t.sampled_requested =
        sampled_requested_.load(std::memory_order_relaxed);
    t.sampled_rounded = sampled_rounded_.load(std::memory_order_relaxed);
    t.live_objects = live_objects_.load(std::memory_order_relaxed);
    t.live_bytes = live_rounded_.load(std::memory_order_relaxed);
    t.live_requested = live_requested_.load(std::memory_order_relaxed);
    t.frees_paired = frees_paired_.load(std::memory_order_relaxed);
    t.sites = site_count_.load(std::memory_order_relaxed);
    t.site_drops = site_drops_.load(std::memory_order_relaxed);
    t.live_drops = live_drops_.load(std::memory_order_relaxed);
    t.live_drop_bytes = live_drop_bytes_.load(std::memory_order_relaxed);
    return t;
}

ClassProfile
HeapProfiler::class_profile(std::uint32_t cls) const
{
    const ClassAccum& ca =
        classes_[cls < num_classes_ ? cls : num_classes_];
    ClassProfile p;
    p.objects = ca.objects.load(std::memory_order_relaxed);
    p.requested_bytes = ca.requested.load(std::memory_order_relaxed);
    p.rounded_bytes = ca.rounded.load(std::memory_order_relaxed);
    return p;
}

void
HeapProfiler::write_pprof_profile(std::ostream& os) const
{
    std::vector<SiteCopy> sites;
    for_each_site([&](const std::uintptr_t* frames, int depth,
                      std::uint64_t co, std::uint64_t cr, std::uint64_t cb,
                      std::uint64_t lo, std::uint64_t lr, std::uint64_t lb,
                      std::uint64_t ls, std::uint64_t lc) {
        sites.push_back({frames, depth, co, cr, cb, lo, lr, lb, ls, lc});
    });

    // String table: index 0 must be "" per the format.
    std::vector<std::string> strings{""};
    std::map<std::string, std::uint64_t> string_ids{{"", 0}};
    auto intern = [&](const std::string& s) -> std::uint64_t {
        auto [it, fresh] = string_ids.try_emplace(s, strings.size());
        if (fresh)
            strings.push_back(s);
        return it->second;
    };

    // One Location (+ one Function) per distinct return address.
    std::map<std::uintptr_t, std::uint64_t> location_ids;
    for (const SiteCopy& s : sites)
        for (int f = 0; f < s.depth; ++f)
            location_ids.try_emplace(s.frames[f],
                                     location_ids.size() + 1);

    std::string profile;

    auto put_value_type = [&](int field, const char* type,
                              const char* unit) {
        std::string vt;
        pprof_put_field_varint(vt, 1, intern(type));
        pprof_put_field_varint(vt, 2, intern(unit));
        pprof_put_field_bytes(profile, field, vt);
    };
    put_value_type(1, "alloc_objects", "count");
    put_value_type(1, "alloc_space", "bytes");
    put_value_type(1, "inuse_objects", "count");
    put_value_type(1, "inuse_space", "bytes");

    const double rate = static_cast<double>(rate_);
    for (const SiteCopy& s : sites) {
        const double alloc_mean =
            s.cum_objects > 0
                ? static_cast<double>(s.cum_rounded) /
                      static_cast<double>(s.cum_objects)
                : 0.0;
        const double live_mean =
            s.live_objects > 0
                ? static_cast<double>(s.live_rounded) /
                      static_cast<double>(s.live_objects)
                : 0.0;
        const double wa = sample_weight(alloc_mean, rate);
        const double wl = sample_weight(live_mean, rate);

        std::string locs;
        for (int f = 0; f < s.depth; ++f)
            pprof_put_varint(locs, location_ids[s.frames[f]]);
        std::string vals;
        pprof_put_varint(
            vals, static_cast<std::uint64_t>(
                      std::llround(static_cast<double>(s.cum_objects) *
                                   wa)));
        pprof_put_varint(
            vals, static_cast<std::uint64_t>(
                      std::llround(static_cast<double>(s.cum_rounded) *
                                   wa)));
        pprof_put_varint(
            vals, static_cast<std::uint64_t>(
                      std::llround(static_cast<double>(s.live_objects) *
                                   wl)));
        pprof_put_varint(
            vals, static_cast<std::uint64_t>(
                      std::llround(static_cast<double>(s.live_rounded) *
                                   wl)));
        std::string sample;
        pprof_put_field_bytes(sample, 1, locs);
        pprof_put_field_bytes(sample, 2, vals);
        pprof_put_field_bytes(profile, 2, sample);
    }

    // Minimal single mapping covering the address space; pprof only
    // needs it to exist so locations have a home.
    {
        std::string mapping;
        pprof_put_field_varint(mapping, 1, 1);  // id
        pprof_put_field_varint(mapping, 2, 0);  // memory_start
        pprof_put_field_varint(mapping, 3, ~std::uint64_t{0} >> 1);
        pprof_put_field_varint(mapping, 5, intern("[hoard]"));
        pprof_put_field_bytes(profile, 3, mapping);
    }

    for (const auto& [addr, id] : location_ids) {
        std::string line;
        pprof_put_field_varint(line, 1, id);  // function id == loc id
        std::string loc;
        pprof_put_field_varint(loc, 1, id);
        pprof_put_field_varint(loc, 2, 1);  // mapping id
        pprof_put_field_varint(loc, 3, static_cast<std::uint64_t>(addr));
        pprof_put_field_bytes(loc, 4, line);
        pprof_put_field_bytes(profile, 4, loc);
    }
    for (const auto& [addr, id] : location_ids) {
        const std::string name = symbol_name(addr);
        std::string fn;
        pprof_put_field_varint(fn, 1, id);
        pprof_put_field_varint(fn, 2, intern(name));
        pprof_put_field_varint(fn, 3, intern(name));
        pprof_put_field_bytes(profile, 5, fn);
    }

    for (const std::string& s : strings)
        pprof_put_field_bytes(profile, 6, s);

    {
        std::string pt;
        pprof_put_field_varint(pt, 1, intern("space"));
        pprof_put_field_varint(pt, 2, intern("bytes"));
        pprof_put_field_bytes(profile, 11, pt);
    }
    pprof_put_field_varint(profile, 12,
                           static_cast<std::uint64_t>(rate_));

    os.write(profile.data(),
             static_cast<std::streamsize>(profile.size()));
}

std::size_t
HeapProfiler::write_leak_report(std::ostream& os,
                                std::size_t max_sites) const
{
    std::vector<SiteCopy> leaks;
    for_each_site([&](const std::uintptr_t* frames, int depth,
                      std::uint64_t co, std::uint64_t cr, std::uint64_t cb,
                      std::uint64_t lo, std::uint64_t lr, std::uint64_t lb,
                      std::uint64_t ls, std::uint64_t lc) {
        if (lo > 0)
            leaks.push_back(
                {frames, depth, co, cr, cb, lo, lr, lb, ls, lc});
    });
    std::sort(leaks.begin(), leaks.end(),
              [](const SiteCopy& a, const SiteCopy& b) {
                  return a.live_rounded > b.live_rounded;
              });

    const ProfilerTotals t = totals();
    os << "hoard leak report: " << leaks.size()
       << " sampled site(s) with live objects, " << t.live_bytes
       << " live bytes (" << t.live_objects << " objects, sample rate "
       << rate_ << ")\n";
    if (t.live_drops > 0) {
        os << "  note: " << t.live_drops
           << " sampled object(s) untracked (live map full), "
           << t.live_drop_bytes << " bytes not attributed\n";
    }
    if (leaks.empty()) {
        os << "  no leaks detected among sampled allocations\n";
        return 0;
    }

    const double rate = static_cast<double>(rate_);
    std::size_t shown = 0;
    for (const SiteCopy& s : leaks) {
        if (shown++ >= max_sites) {
            os << "  ... " << leaks.size() - max_sites
               << " more site(s)\n";
            break;
        }
        const double mean =
            static_cast<double>(s.live_rounded) /
            static_cast<double>(s.live_objects);
        const double w = sample_weight(mean, rate);
        os << "LEAK: " << s.live_rounded << " bytes in "
           << s.live_objects << " sampled objects (est. "
           << static_cast<std::uint64_t>(
                  std::llround(static_cast<double>(s.live_rounded) * w))
           << " bytes total) at\n";
        for (int f = 0; f < s.depth; ++f)
            os << "    #" << f << " " << symbolize(s.frames[f]) << "\n";
    }
    return leaks.size();
}

void
HeapProfiler::write_prometheus(std::ostream& os) const
{
    const ProfilerTotals t = totals();
    os << "# TYPE hoard_profiler_sampled_objects_total counter\n"
       << "hoard_profiler_sampled_objects_total " << t.sampled_objects
       << "\n"
       << "# TYPE hoard_profiler_sampled_requested_bytes_total counter\n"
       << "hoard_profiler_sampled_requested_bytes_total "
       << t.sampled_requested << "\n"
       << "# TYPE hoard_profiler_sampled_rounded_bytes_total counter\n"
       << "hoard_profiler_sampled_rounded_bytes_total "
       << t.sampled_rounded << "\n"
       << "# TYPE hoard_profiler_live_objects gauge\n"
       << "hoard_profiler_live_objects " << t.live_objects << "\n"
       << "# TYPE hoard_profiler_live_bytes gauge\n"
       << "hoard_profiler_live_bytes " << t.live_bytes << "\n"
       << "# TYPE hoard_profiler_live_requested_bytes gauge\n"
       << "hoard_profiler_live_requested_bytes " << t.live_requested
       << "\n"
       << "# TYPE hoard_profiler_sites gauge\n"
       << "hoard_profiler_sites " << t.sites << "\n"
       << "# TYPE hoard_profiler_site_drops_total counter\n"
       << "hoard_profiler_site_drops_total " << t.site_drops << "\n"
       << "# TYPE hoard_profiler_live_drops_total counter\n"
       << "hoard_profiler_live_drops_total " << t.live_drops << "\n";

    os << "# TYPE hoard_profiler_class_objects_total counter\n"
       << "# TYPE hoard_profiler_class_requested_bytes_total counter\n"
       << "# TYPE hoard_profiler_class_rounded_bytes_total counter\n";
    for (std::uint32_t cls = 0; cls <= num_classes_; ++cls) {
        const ClassProfile p = class_profile(cls);
        if (p.objects == 0)
            continue;
        char label[32];
        if (cls == num_classes_)
            std::snprintf(label, sizeof label, "huge");
        else
            std::snprintf(label, sizeof label, "%u", cls);
        os << "hoard_profiler_class_objects_total{class=\"" << label
           << "\"} " << p.objects << "\n"
           << "hoard_profiler_class_requested_bytes_total{class=\""
           << label << "\"} " << p.requested_bytes << "\n"
           << "hoard_profiler_class_rounded_bytes_total{class=\""
           << label << "\"} " << p.rounded_bytes << "\n";
    }
}

}  // namespace obs
}  // namespace hoard
