/**
 * @file
 * Structured per-heap snapshots of a Hoard-style allocator.
 *
 * The paper's bounds are per-heap statements — u_i >= a_i - K*S and
 * u_i >= (1-f) a_i — but AllocatorStats only aggregates process-wide.
 * A snapshot records every heap's u_i/a_i, its superblock population
 * per size class and fullness group, and its lock-contention profile,
 * so tests and tools can assert the emptiness invariant heap by heap
 * and reconcile the per-heap totals against the global gauges.
 *
 * Snapshots are plain data: taking one (HoardAllocator::take_snapshot)
 * briefly locks each heap in turn, and the result is safe to keep,
 * ship, or diff after the allocator has moved on.  Exact reconciliation
 * against the global gauges is only guaranteed when the allocator is
 * quiesced — a concurrent allocation can land between two heap walks.
 */

#ifndef HOARD_OBS_SNAPSHOT_H_
#define HOARD_OBS_SNAPSHOT_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/contention.h"

namespace hoard {
namespace obs {

/** Superblock population of one size class within one heap. */
struct ClassSnapshot
{
    int size_class = 0;
    std::uint32_t block_bytes = 0;
    std::uint64_t superblocks = 0;     ///< total across all groups
    std::uint64_t used_blocks = 0;
    std::uint64_t capacity_blocks = 0;
    /** Superblock count per fullness group (band 0 emptiest … full). */
    std::vector<std::uint64_t> group_counts;
};

/** One heap's state at snapshot time. */
struct HeapSnapshot
{
    int index = 0;             ///< 0 is the global heap
    std::uint64_t in_use = 0;  ///< u_i: block bytes handed to the program
    std::uint64_t held = 0;    ///< a_i: span bytes of owned superblocks

    /** Bytes no superblock can carve (headers + tail remainders). */
    std::uint64_t uncarved = 0;

    /** Size classes with at least one superblock present. */
    std::uint64_t active_classes = 0;

    /** Superblocks parked in the empty reuse cache (global heap only). */
    std::uint64_t empty_cached = 0;

    /** Non-empty size classes only. */
    std::vector<ClassSnapshot> classes;

    /** Heap-lock contention profile (zeros when obs is compiled out). */
    LockStats lock;

    /**
     * Emptiness-invariant check in the form the algorithm guarantees at
     * an arbitrary instant (mirrors HoardAllocator::check_heap; the
     * allowance terms are discussed there and in DESIGN.md):
     *
     *   u + K*S + S >= a, or
     *   u >= (1-t) * (a - allowance) - (K*S + S)
     *
     * with allowance = uncarved + (active_classes * F + 1) * S, where
     * F is Config::global_fetch_batch: an allocation may batch-pull up
     * to F partial superblocks per class from the global bins between
     * frees (enforcement runs on free only).  Not meaningful for the
     * global heap (index 0), which returns true.
     *
     * @param superblock_bytes   S
     * @param release_threshold  t (Config::release_threshold)
     * @param slack_superblocks  K
     * @param global_fetch_batch F (Config::global_fetch_batch)
     */
    bool
    emptiness_ok(std::size_t superblock_bytes, double release_threshold,
                 std::size_t slack_superblocks,
                 std::size_t global_fetch_batch = 1) const
    {
        if (index == 0)
            return true;
        const std::uint64_t S = superblock_bytes;
        const std::uint64_t k_slack = slack_superblocks * S + S;
        if (in_use + k_slack >= held)
            return true;
        const std::uint64_t allowance =
            uncarved + (active_classes * global_fetch_batch + 1) * S;
        const std::uint64_t reduced =
            held > allowance ? held - allowance : 0;
        return static_cast<double>(in_use) >=
               (1.0 - release_threshold) * static_cast<double>(reduced) -
                   static_cast<double>(k_slack);
    }

    /**
     * Signed slack above the invariant bound in bytes: how many more
     * bytes of u_i this heap could lose before emptiness_ok() flips.
     * Positive means the invariant holds with room to spare.
     */
    double
    invariant_slack_bytes(std::size_t superblock_bytes,
                          double release_threshold,
                          std::size_t slack_superblocks,
                          std::size_t global_fetch_batch = 1) const
    {
        const double S = static_cast<double>(superblock_bytes);
        const double k_slack =
            static_cast<double>(slack_superblocks) * S + S;
        const double allowance =
            static_cast<double>(uncarved) +
            (static_cast<double>(active_classes) *
                 static_cast<double>(global_fetch_batch) +
             1.0) * S;
        const double reduced = std::max(
            0.0, static_cast<double>(held) - allowance);
        // emptiness_ok is an OR of two conditions, so the binding
        // threshold is whichever is easier to satisfy.
        const double bound = std::min(
            static_cast<double>(held) - k_slack,
            (1.0 - release_threshold) * reduced - k_slack);
        return static_cast<double>(in_use) - bound;
    }
};

/** Copy of the process-wide AllocatorStats counters at snapshot time. */
struct StatsSummary
{
    std::uint64_t allocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t in_use_bytes = 0;
    std::uint64_t held_bytes = 0;
    std::uint64_t committed_bytes = 0;  ///< OS-committed (RSS ground truth)
    std::uint64_t purged_bytes = 0;     ///< held but decommitted by purge
    std::uint64_t reserved_bytes = 0;   ///< provider address space held
    std::uint64_t cached_bytes = 0;
    std::uint64_t superblock_allocs = 0;
    std::uint64_t superblock_transfers = 0;
    std::uint64_t global_fetches = 0;
    std::uint64_t huge_allocs = 0;
    std::uint64_t oom_reclaims = 0;
    std::uint64_t oom_failures = 0;
    std::uint64_t remote_frees = 0;
    std::uint64_t remote_drains = 0;
    std::uint64_t batch_refills = 0;
    std::uint64_t batch_flushes = 0;
    std::uint64_t global_bin_hits = 0;
    std::uint64_t global_bin_misses = 0;
    std::uint64_t cache_pushes = 0;
    std::uint64_t cache_pops = 0;
    std::uint64_t purge_passes = 0;
    std::uint64_t purged_superblocks = 0;
    std::uint64_t revived_superblocks = 0;
    std::uint64_t bad_free_wild = 0;
    std::uint64_t bad_free_foreign = 0;
    std::uint64_t bad_free_interior = 0;
    std::uint64_t bad_free_double = 0;
    std::uint64_t bg_wakeups = 0;
    std::uint64_t bg_refills = 0;
    std::uint64_t bg_drains = 0;
    std::uint64_t bg_precommits = 0;
    std::uint64_t bg_purges = 0;
};

/** Full allocator snapshot: configuration echo + per-heap state. */
struct AllocatorSnapshot
{
    std::string allocator_name;

    /// @name Configuration echo (the invariant's parameters).
    /// @{
    std::size_t superblock_bytes = 0;
    double empty_fraction = 0.0;
    double release_threshold = 0.0;
    std::size_t slack_superblocks = 0;
    std::size_t global_fetch_batch = 1;
    int heap_count = 0;
    /// @}

    std::vector<HeapSnapshot> heaps;  ///< heaps[0] is the global heap

    /// @name Allocations outside the heaps.
    /// @{
    std::uint64_t huge_count = 0;
    std::uint64_t huge_user_bytes = 0;
    std::uint64_t huge_span_bytes = 0;
    std::uint64_t cached_bytes = 0;  ///< thread-cache occupancy
    /// @}

    /**
     * Blocks the snapshot's pre-drain pass settled out of the per-heap
     * remote-free queues before walking (drain-and-attribute): those
     * frees had already left the in_use gauge but not yet the owning
     * heap's u_i, so reconciliation is exact only after they land.
     */
    std::uint64_t remote_drained_blocks = 0;

    StatsSummary stats;

    /**
     * Per-path operation-latency histograms (obs/latency.h), merged
     * across threads at snapshot time.  Populated only when the
     * allocator was armed (Config::latency_histograms or
     * HOARD_LATENCY); latency_armed distinguishes "off" from
     * "armed but nothing recorded yet".
     */
    LatencySnapshot latency;
    bool latency_armed = false;

    /** Sum of u_i over all heaps. */
    std::uint64_t
    sum_in_use() const
    {
        std::uint64_t n = 0;
        for (const HeapSnapshot& h : heaps)
            n += h.in_use;
        return n;
    }

    /** Sum of a_i over all heaps. */
    std::uint64_t
    sum_held() const
    {
        std::uint64_t n = 0;
        for (const HeapSnapshot& h : heaps)
            n += h.held;
        return n;
    }

    /**
     * True when the per-heap totals reconcile exactly with the global
     * gauges.  Heap u_i counts blocks parked in thread caches (the
     * heaps never saw those frees), while the in_use gauge does not, so:
     *
     *   sum(u_i) + huge_user == in_use_bytes + cached_bytes
     *   sum(a_i) + huge_span == held_bytes
     *   committed_bytes + purged_bytes == held_bytes
     *
     * The third line is the virtual-memory split: every held byte is
     * either OS-committed or parked decommitted by the purge pass.
     * Only guaranteed on a quiesced allocator.
     */
    bool
    reconciles() const
    {
        return sum_in_use() + huge_user_bytes ==
                   stats.in_use_bytes + cached_bytes &&
               sum_held() + huge_span_bytes == stats.held_bytes &&
               stats.committed_bytes + stats.purged_bytes ==
                   stats.held_bytes;
    }

    /** True when every per-processor heap satisfies emptiness_ok(). */
    bool
    all_heaps_satisfy_invariant() const
    {
        for (const HeapSnapshot& h : heaps) {
            if (!h.emptiness_ok(superblock_bytes, release_threshold,
                                slack_superblocks, global_fetch_batch))
                return false;
        }
        return true;
    }
};

}  // namespace obs
}  // namespace hoard

#endif  // HOARD_OBS_SNAPSHOT_H_
