/**
 * @file
 * Exporters for event rings and snapshots.
 *
 * Three formats, one per consumer:
 *  - Chrome trace_event JSON (chrome://tracing, Perfetto) for the
 *    event rings — each allocator event becomes an instant event on
 *    its recording thread's track;
 *  - Prometheus text exposition for snapshots — per-heap gauges with
 *    heap/size-class labels, ready for a scrape endpoint;
 *  - a human-readable dump for operators and test logs.
 */

#ifndef HOARD_OBS_TRACE_EXPORT_H_
#define HOARD_OBS_TRACE_EXPORT_H_

#include <ostream>

#include "obs/event_ring.h"
#include "obs/snapshot.h"

namespace hoard {
namespace obs {

/**
 * Writes the recorder's retained events as Chrome trace JSON
 * ({"traceEvents":[...]}).  @p ts_per_us converts recorded timestamps
 * to the format's microseconds: 1000 for NativePolicy nanoseconds, 1
 * to map one virtual cycle to 1 us for SimPolicy traces.
 */
void write_chrome_trace(std::ostream& os, const EventRecorder& recorder,
                        double ts_per_us = 1000.0);

/** Writes a snapshot as Prometheus text exposition (version 0.0.4). */
void write_prometheus(std::ostream& os, const AllocatorSnapshot& snap);

/** Writes a snapshot as an indented human-readable report. */
void write_human(std::ostream& os, const AllocatorSnapshot& snap);

}  // namespace obs
}  // namespace hoard

#endif  // HOARD_OBS_TRACE_EXPORT_H_
