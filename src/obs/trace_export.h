/**
 * @file
 * Exporters for event rings and snapshots.
 *
 * Three formats, one per consumer:
 *  - Chrome trace_event JSON (chrome://tracing, Perfetto) for the
 *    event rings — each allocator event becomes an instant event on
 *    its recording thread's track;
 *  - Prometheus text exposition for snapshots — per-heap gauges with
 *    heap/size-class labels, ready for a scrape endpoint;
 *  - a human-readable dump for operators and test logs;
 *  - JSONL for time-series samples (obs/timeseries.h) — one JSON
 *    object per line, stream-appendable and trivially loadable into
 *    pandas/jq, plus Chrome counter tracks riding along in the trace.
 */

#ifndef HOARD_OBS_TRACE_EXPORT_H_
#define HOARD_OBS_TRACE_EXPORT_H_

#include <ostream>

#include "obs/event_ring.h"
#include "obs/snapshot.h"
#include "obs/timeseries.h"

namespace hoard {
namespace obs {

/**
 * Writes the recorder's retained events as Chrome trace JSON
 * ({"traceEvents":[...]}).  @p ts_per_us converts recorded timestamps
 * to the format's microseconds: 1000 for NativePolicy nanoseconds, 1
 * to map one virtual cycle to 1 us for SimPolicy traces.  When
 * @p sampler is non-null its retained samples are added as Chrome
 * counter tracks ("ph":"C": in-use/held/os/cached bytes and blowup),
 * drawn above the instant events in chrome://tracing.
 */
void write_chrome_trace(std::ostream& os, const EventRecorder& recorder,
                        double ts_per_us = 1000.0,
                        const TimeSeriesSampler* sampler = nullptr);

/**
 * Writes the sampler's retained samples as JSONL, one
 * {"schema":"hoard-timeline-v1", ...} object per line, oldest first:
 * policy-time timestamp, the global gauges and counters, blowup, and
 * a "heaps" array of per-heap {"u":..,"a":..} points (index 0 is the
 * global heap).
 */
void write_timeseries_jsonl(std::ostream& os,
                            const TimeSeriesSampler& sampler);

/** Writes a snapshot as Prometheus text exposition (version 0.0.4). */
void write_prometheus(std::ostream& os, const AllocatorSnapshot& snap);

/** Writes a snapshot as an indented human-readable report. */
void write_human(std::ostream& os, const AllocatorSnapshot& snap);

}  // namespace obs
}  // namespace hoard

#endif  // HOARD_OBS_TRACE_EXPORT_H_
