/**
 * @file
 * Exporters for event rings and snapshots.
 *
 * Three formats, one per consumer:
 *  - Chrome trace_event JSON (chrome://tracing, Perfetto) for the
 *    event rings — each allocator event becomes an instant event on
 *    its recording thread's track;
 *  - Prometheus text exposition for snapshots — per-heap gauges with
 *    heap/size-class labels, ready for a scrape endpoint;
 *  - a human-readable dump for operators and test logs;
 *  - JSONL for time-series samples (obs/timeseries.h) — one JSON
 *    object per line, stream-appendable and trivially loadable into
 *    pandas/jq, plus Chrome counter tracks riding along in the trace.
 */

#ifndef HOARD_OBS_TRACE_EXPORT_H_
#define HOARD_OBS_TRACE_EXPORT_H_

#include <ostream>
#include <string>

#include "obs/event_ring.h"
#include "obs/snapshot.h"
#include "obs/timeseries.h"

namespace hoard {
namespace obs {

/**
 * Escapes @p text for embedding inside a JSON string literal: quotes,
 * backslashes, and control characters.  Symbolized C++ names can carry
 * both (operator\"\"_x literals, lambda manglings), so every exporter
 * that quotes a non-constant name routes through this.  Local to
 * src/obs because hoard_obs cannot link the metrics JSON library
 * (hoard_metrics depends on hoard_core depends on hoard_obs);
 * metrics/json_value.h round-trips what this produces.
 */
inline std::string
json_escape(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (unsigned char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                const char* hex = "0123456789abcdef";
                out += "\\u00";
                out += hex[(c >> 4) & 0xF];
                out += hex[c & 0xF];
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

/**
 * Writes the recorder's retained events as Chrome trace JSON
 * ({"traceEvents":[...]}).  @p ts_per_us converts recorded timestamps
 * to the format's microseconds: 1000 for NativePolicy nanoseconds, 1
 * to map one virtual cycle to 1 us for SimPolicy traces.  When
 * @p sampler is non-null its retained samples are added as Chrome
 * counter tracks ("ph":"C": in-use/held/os/cached bytes and blowup),
 * drawn above the instant events in chrome://tracing.
 */
void write_chrome_trace(std::ostream& os, const EventRecorder& recorder,
                        double ts_per_us = 1000.0,
                        const TimeSeriesSampler* sampler = nullptr);

/**
 * Writes the sampler's retained samples as JSONL, one
 * {"schema":"hoard-timeline-v5", ...} object per line, oldest first:
 * policy-time timestamp, the global gauges and counters, blowup, and
 * a "heaps" array of per-heap {"u":..,"a":..} points (index 0 is the
 * global heap).  v2 renames v1's "bin_hits"/"bin_misses" to
 * "global_bin_hits"/"global_bin_misses" and adds the "bad_free_*"
 * rejection counters and the profiler's "prof_sampled_requested"/
 * "prof_sampled_rounded" byte totals.  v3 adds per-path operation
 * latency: "lat_<path>_n" (cumulative op count) and "lat_<path>_p99"
 * (cumulative P99 in policy cycles) for each obs::LatencyPath, zeros
 * when the latency histograms are disarmed.  v4 splits the footprint
 * gauges for the virtual-memory-first page layer: "committed" (the
 * RSS ground truth; "os" remains as a deprecated alias), "reserved"
 * (provider address space), and "purged" (held-but-decommitted, so
 * committed + purged == held at quiescence).  v5 adds the
 * background-engine counters "bg_wakeups", "bg_refills", "bg_drains",
 * "bg_precommits", and "bg_purges", zeros while the engine is
 * disarmed; bench_compare --timeline reads all five schemas.
 */
void write_timeseries_jsonl(std::ostream& os,
                            const TimeSeriesSampler& sampler);

/** Writes a snapshot as Prometheus text exposition (version 0.0.4). */
void write_prometheus(std::ostream& os, const AllocatorSnapshot& snap);

/** Writes a snapshot as an indented human-readable report. */
void write_human(std::ostream& os, const AllocatorSnapshot& snap);

}  // namespace obs
}  // namespace hoard

#endif  // HOARD_OBS_TRACE_EXPORT_H_
