/**
 * @file
 * Time-series sampling of the allocator's gauges: the film to
 * snapshot.h's single frames.
 *
 * Fragmentation and blowup are time-series properties — a point sample
 * can miss a footprint excursion entirely — so this module records the
 * global gauges plus every heap's u_i/a_i into a fixed-size overwrite
 * ring at a configurable policy-time cadence (steady-clock nanoseconds
 * under NativePolicy, virtual cycles under SimPolicy, so native and
 * simulated runs produce the same shape of timeline).
 *
 * Design constraints mirror event_ring.h:
 *  - the per-operation cadence check must be branch-cheap (the
 *    micro_obs_overhead --check budget covers it);
 *  - sampling must never allocate (slots are fully preallocated at
 *    construction) and never hold a sampler lock across a heap lock
 *    (SimPolicy fibers may yield inside heap mutexes);
 *  - a slow reader must never stall writers: every slot word is a
 *    relaxed atomic, rings overwrite, racing readers can at worst see
 *    a mixed sample, never UB.  Quiesced reads are exact.
 *
 * The sampler is gated like the rest of src/obs/: compiled out with
 * Policy::kObsEnabled, created at runtime only when observability is
 * on and Config::obs_sample_interval > 0.
 */

#ifndef HOARD_OBS_TIMESERIES_H_
#define HOARD_OBS_TIMESERIES_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/failure.h"
#include "common/mathutil.h"
#include "obs/latency.h"

namespace hoard {
namespace obs {

/** One heap's footprint at a sample instant. */
struct HeapPoint
{
    std::uint64_t in_use = 0;  ///< u_i
    std::uint64_t held = 0;    ///< a_i
};

/** One decoded sample; timestamps are policy time. */
struct TimeSample
{
    std::uint64_t timestamp = 0;
    std::uint64_t in_use = 0;        ///< global gauge U
    std::uint64_t held = 0;          ///< global gauge A
    /// @name Virtual-memory split (schema hoard-timeline-v4).
    /// committed is the RSS ground truth; reserved is provider address
    /// space; purged is held-but-decommitted.  committed + purged ==
    /// held at quiescence.
    /// @{
    std::uint64_t committed_bytes = 0;
    std::uint64_t reserved_bytes = 0;
    std::uint64_t purged_bytes = 0;
    /// @}
    std::uint64_t cached_bytes = 0;
    std::uint64_t allocs = 0;        ///< cumulative counters
    std::uint64_t frees = 0;
    std::uint64_t transfers = 0;     ///< superblock transfers to global
    std::uint64_t global_fetches = 0;
    std::uint64_t bin_hits = 0;      ///< fetches served by a global bin
    std::uint64_t bin_misses = 0;    ///< bin probes finding the class empty
    std::uint64_t cache_pushes = 0;  ///< empties retired to the reuse cache
    std::uint64_t cache_pops = 0;    ///< empties recycled from the cache
    /// @name Hardened-free rejections (schema hoard-timeline-v2).
    /// @{
    std::uint64_t bad_free_wild = 0;
    std::uint64_t bad_free_foreign = 0;
    std::uint64_t bad_free_interior = 0;
    std::uint64_t bad_free_double = 0;
    /// @}
    /// @name Heap-profiler sampled totals (v2; zero when disarmed).
    /// @{
    std::uint64_t prof_requested = 0;  ///< sampled requested bytes
    std::uint64_t prof_rounded = 0;    ///< sampled size-class bytes
    /// @}
    /// @name Per-path latency series (schema hoard-timeline-v3;
    /// zeros when the latency histograms are disarmed).  Indexed by
    /// LatencyPath; p99 is in policy cycles, cumulative-to-date.
    /// @{
    std::array<std::uint64_t, kLatencyPathCount> lat_counts{};
    std::array<std::uint64_t, kLatencyPathCount> lat_p99{};
    /// @}
    /// @name Background-engine counters (schema hoard-timeline-v5;
    /// zeros while the engine is disarmed).  Cumulative, like every
    /// other counter here.
    /// @{
    std::uint64_t bg_wakeups = 0;     ///< worker passes
    std::uint64_t bg_refills = 0;     ///< bin refills parked
    std::uint64_t bg_drains = 0;      ///< remote-queue settle passes
    std::uint64_t bg_precommits = 0;  ///< spans pre-committed
    std::uint64_t bg_purges = 0;      ///< cadenced purge passes run
    /// @}
    std::vector<HeapPoint> heaps;    ///< [0] is the global heap

    /** A/U blowup at this instant (0 when nothing is live). */
    double
    blowup() const
    {
        return in_use == 0 ? 0.0
                           : static_cast<double>(held) /
                                 static_cast<double>(in_use);
    }
};

/**
 * Fixed-capacity overwrite ring of samples.  Writers claim a slot with
 * one fetch_add and fill it with relaxed stores; the interval cadence
 * is enforced by claim_due(), a CAS on the last sample time, so at
 * most one thread samples per interval window.
 */
class TimeSeriesSampler
{
  public:
    /**
     * @param slots     samples retained; power of two >= 2
     * @param heaps     heap entries per sample (heap_count + 1)
     * @param interval  minimum policy-time gap between samples
     */
    TimeSeriesSampler(std::size_t slots, std::size_t heaps,
                      std::uint64_t interval)
        : capacity_(slots),
          mask_(slots - 1),
          heap_slots_(heaps),
          interval_(interval),
          slots_(new Slot[slots])
    {
        HOARD_CHECK(detail::is_pow2(slots) && slots >= 2);
        for (std::size_t i = 0; i < slots; ++i) {
            slots_[i].heap_words.reset(
                new std::atomic<std::uint64_t>[heaps * 2]());
        }
    }

    TimeSeriesSampler(const TimeSeriesSampler&) = delete;
    TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

    std::uint64_t interval() const { return interval_; }
    std::size_t capacity() const { return capacity_; }
    std::size_t heap_slots() const { return heap_slots_; }

    /**
     * Claims the right to take one sample stamped @p now.  Returns
     * false when the interval has not elapsed, when @p now is behind
     * the last claimed time (another thread's clock may be ahead —
     * losing claims keeps retained timestamps monotone), or when a
     * racing thread claimed this window first.
     */
    bool
    claim_due(std::uint64_t now)
    {
        std::uint64_t last = last_claim_.load(std::memory_order_relaxed);
        if (now < last + interval_)
            return false;
        return last_claim_.compare_exchange_strong(
            last, now, std::memory_order_relaxed);
    }

    /**
     * Forces a claim regardless of the interval, for end-of-run
     * flushes.  Never fails: when @p now is behind the last claimed
     * time the stamp is clamped forward to it, so retained timestamps
     * stay monotone even when the flushing clock restarted (a fresh
     * checker Machine's virtual clock begins at zero).  Returns the
     * timestamp to stamp the sample with.
     */
    std::uint64_t
    claim_flush(std::uint64_t now)
    {
        std::uint64_t last = last_claim_.load(std::memory_order_relaxed);
        for (;;) {
            const std::uint64_t stamp = now > last ? now : last;
            if (last_claim_.compare_exchange_weak(
                    last, stamp, std::memory_order_relaxed))
                return stamp;
        }
    }

  private:
    struct Slot;

  public:
    /**
     * Writer interface: claim a slot, store fields, then store heap
     * points.  The caller (the allocator) fills heap points one heap
     * lock at a time; no sampler-side lock is held anywhere.
     */
    class Writer
    {
      public:
        void
        set_gauges(std::uint64_t in_use, std::uint64_t held,
                   std::uint64_t committed, std::uint64_t cached)
        {
            slot_->in_use.store(in_use, std::memory_order_relaxed);
            slot_->held.store(held, std::memory_order_relaxed);
            slot_->committed.store(committed,
                                   std::memory_order_relaxed);
            slot_->cached.store(cached, std::memory_order_relaxed);
        }

        /** Virtual-memory split gauges (schema v4). */
        void
        set_vm(std::uint64_t reserved, std::uint64_t purged)
        {
            slot_->reserved.store(reserved, std::memory_order_relaxed);
            slot_->purged.store(purged, std::memory_order_relaxed);
        }

        void
        set_counters(std::uint64_t allocs, std::uint64_t frees,
                     std::uint64_t transfers, std::uint64_t fetches)
        {
            slot_->allocs.store(allocs, std::memory_order_relaxed);
            slot_->frees.store(frees, std::memory_order_relaxed);
            slot_->transfers.store(transfers,
                                   std::memory_order_relaxed);
            slot_->fetches.store(fetches, std::memory_order_relaxed);
        }

        void
        set_slowpath(std::uint64_t bin_hits, std::uint64_t bin_misses,
                     std::uint64_t cache_pushes,
                     std::uint64_t cache_pops)
        {
            slot_->bin_hits.store(bin_hits, std::memory_order_relaxed);
            slot_->bin_misses.store(bin_misses,
                                    std::memory_order_relaxed);
            slot_->cache_pushes.store(cache_pushes,
                                      std::memory_order_relaxed);
            slot_->cache_pops.store(cache_pops,
                                    std::memory_order_relaxed);
        }

        void
        set_bad_frees(std::uint64_t wild, std::uint64_t foreign,
                      std::uint64_t interior, std::uint64_t dbl)
        {
            slot_->bad_free_wild.store(wild, std::memory_order_relaxed);
            slot_->bad_free_foreign.store(foreign,
                                          std::memory_order_relaxed);
            slot_->bad_free_interior.store(interior,
                                           std::memory_order_relaxed);
            slot_->bad_free_double.store(dbl, std::memory_order_relaxed);
        }

        /** Background-engine counters (schema v5). */
        void
        set_bg(std::uint64_t wakeups, std::uint64_t refills,
               std::uint64_t drains, std::uint64_t precommits,
               std::uint64_t purges)
        {
            slot_->bg_wakeups.store(wakeups,
                                    std::memory_order_relaxed);
            slot_->bg_refills.store(refills,
                                    std::memory_order_relaxed);
            slot_->bg_drains.store(drains, std::memory_order_relaxed);
            slot_->bg_precommits.store(precommits,
                                       std::memory_order_relaxed);
            slot_->bg_purges.store(purges, std::memory_order_relaxed);
        }

        void
        set_profiler(std::uint64_t sampled_requested,
                     std::uint64_t sampled_rounded)
        {
            slot_->prof_requested.store(sampled_requested,
                                        std::memory_order_relaxed);
            slot_->prof_rounded.store(sampled_rounded,
                                      std::memory_order_relaxed);
        }

        void
        set_latency(int path, std::uint64_t count, std::uint64_t p99)
        {
            if (path < 0 || path >= kLatencyPathCount)
                return;
            const auto i = static_cast<std::size_t>(path);
            slot_->lat_counts[i].store(count,
                                       std::memory_order_relaxed);
            slot_->lat_p99[i].store(p99, std::memory_order_relaxed);
        }

        void
        set_heap(std::size_t index, std::uint64_t in_use,
                 std::uint64_t held)
        {
            if (index >= heap_slots_)
                return;
            slot_->heap_words[index * 2].store(
                in_use, std::memory_order_relaxed);
            slot_->heap_words[index * 2 + 1].store(
                held, std::memory_order_relaxed);
        }

      private:
        friend class TimeSeriesSampler;
        Writer(Slot* slot, std::size_t heap_slots)
            : slot_(slot), heap_slots_(heap_slots)
        {}
        Slot* slot_;
        std::size_t heap_slots_;
    };

    /**
     * Claims the next ring slot for a sample stamped @p now.
     *
     * Slot order must match stamp order (collect() promises monotone
     * timestamps across the retained window).  Claims are monotone,
     * but the claimer of an *earlier* window can reach this append
     * *after* a later claimer — the drain between claim and append is
     * long — so the slot index and the stamp are assigned under one
     * tiny ordering lock, with the stamp clamped forward to the
     * newest appended one.  The critical section is three stores; the
     * lock is policy-free on purpose (no virtual-time cost under the
     * simulator, no yield point inside).
     */
    Writer
    begin_sample(std::uint64_t now)
    {
        while (order_lock_.test_and_set(std::memory_order_acquire)) {
        }
        std::uint64_t i = head_.fetch_add(1, std::memory_order_relaxed);
        if (now < last_appended_)
            now = last_appended_;
        last_appended_ = now;
        Slot& slot = slots_[i & mask_];
        slot.timestamp.store(now, std::memory_order_relaxed);
        order_lock_.clear(std::memory_order_release);
        return Writer(&slot, heap_slots_);
    }

    /** Forked-child repair: a parent thread may have been inside
        begin_sample()'s ordering lock at the fork instant; the thread
        does not exist in the child, so the flag must be cleared. */
    void
    child_after_fork()
    {
        order_lock_.clear(std::memory_order_relaxed);
    }

    /** Samples ever taken (including overwritten ones). */
    std::uint64_t
    total_samples() const
    {
        return head_.load(std::memory_order_relaxed);
    }

    /** Samples lost to overwrite so far. */
    std::uint64_t
    dropped() const
    {
        std::uint64_t n = total_samples();
        return n > capacity_ ? n - capacity_ : 0;
    }

    /**
     * Returns the retained samples, oldest first.  Intended for
     * quiesced readers; racing a writer is memory-safe but may yield
     * mixed samples (same contract as EventRing::collect).
     */
    std::vector<TimeSample>
    collect() const
    {
        std::uint64_t head = head_.load(std::memory_order_relaxed);
        std::uint64_t n =
            head < capacity_ ? head : static_cast<std::uint64_t>(
                                          capacity_);
        std::vector<TimeSample> out;
        out.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = head - n; i != head; ++i) {
            const Slot& slot = slots_[i & mask_];
            TimeSample sample;
            sample.timestamp =
                slot.timestamp.load(std::memory_order_relaxed);
            sample.in_use = slot.in_use.load(std::memory_order_relaxed);
            sample.held = slot.held.load(std::memory_order_relaxed);
            sample.committed_bytes =
                slot.committed.load(std::memory_order_relaxed);
            sample.reserved_bytes =
                slot.reserved.load(std::memory_order_relaxed);
            sample.purged_bytes =
                slot.purged.load(std::memory_order_relaxed);
            sample.cached_bytes =
                slot.cached.load(std::memory_order_relaxed);
            sample.allocs = slot.allocs.load(std::memory_order_relaxed);
            sample.frees = slot.frees.load(std::memory_order_relaxed);
            sample.transfers =
                slot.transfers.load(std::memory_order_relaxed);
            sample.global_fetches =
                slot.fetches.load(std::memory_order_relaxed);
            sample.bin_hits =
                slot.bin_hits.load(std::memory_order_relaxed);
            sample.bin_misses =
                slot.bin_misses.load(std::memory_order_relaxed);
            sample.cache_pushes =
                slot.cache_pushes.load(std::memory_order_relaxed);
            sample.cache_pops =
                slot.cache_pops.load(std::memory_order_relaxed);
            sample.bad_free_wild =
                slot.bad_free_wild.load(std::memory_order_relaxed);
            sample.bad_free_foreign =
                slot.bad_free_foreign.load(std::memory_order_relaxed);
            sample.bad_free_interior =
                slot.bad_free_interior.load(std::memory_order_relaxed);
            sample.bad_free_double =
                slot.bad_free_double.load(std::memory_order_relaxed);
            sample.prof_requested =
                slot.prof_requested.load(std::memory_order_relaxed);
            sample.prof_rounded =
                slot.prof_rounded.load(std::memory_order_relaxed);
            sample.bg_wakeups =
                slot.bg_wakeups.load(std::memory_order_relaxed);
            sample.bg_refills =
                slot.bg_refills.load(std::memory_order_relaxed);
            sample.bg_drains =
                slot.bg_drains.load(std::memory_order_relaxed);
            sample.bg_precommits =
                slot.bg_precommits.load(std::memory_order_relaxed);
            sample.bg_purges =
                slot.bg_purges.load(std::memory_order_relaxed);
            for (std::size_t p = 0; p < sample.lat_counts.size(); ++p) {
                sample.lat_counts[p] =
                    slot.lat_counts[p].load(std::memory_order_relaxed);
                sample.lat_p99[p] =
                    slot.lat_p99[p].load(std::memory_order_relaxed);
            }
            sample.heaps.resize(heap_slots_);
            for (std::size_t h = 0; h < heap_slots_; ++h) {
                sample.heaps[h].in_use = slot.heap_words[h * 2].load(
                    std::memory_order_relaxed);
                sample.heaps[h].held = slot.heap_words[h * 2 + 1].load(
                    std::memory_order_relaxed);
            }
            out.push_back(std::move(sample));
        }
        return out;
    }

  private:
    struct Slot
    {
        std::atomic<std::uint64_t> timestamp{0};
        std::atomic<std::uint64_t> in_use{0};
        std::atomic<std::uint64_t> held{0};
        std::atomic<std::uint64_t> committed{0};
        std::atomic<std::uint64_t> reserved{0};
        std::atomic<std::uint64_t> purged{0};
        std::atomic<std::uint64_t> cached{0};
        std::atomic<std::uint64_t> allocs{0};
        std::atomic<std::uint64_t> frees{0};
        std::atomic<std::uint64_t> transfers{0};
        std::atomic<std::uint64_t> fetches{0};
        std::atomic<std::uint64_t> bin_hits{0};
        std::atomic<std::uint64_t> bin_misses{0};
        std::atomic<std::uint64_t> cache_pushes{0};
        std::atomic<std::uint64_t> cache_pops{0};
        std::atomic<std::uint64_t> bad_free_wild{0};
        std::atomic<std::uint64_t> bad_free_foreign{0};
        std::atomic<std::uint64_t> bad_free_interior{0};
        std::atomic<std::uint64_t> bad_free_double{0};
        std::atomic<std::uint64_t> prof_requested{0};
        std::atomic<std::uint64_t> prof_rounded{0};
        std::atomic<std::uint64_t> bg_wakeups{0};
        std::atomic<std::uint64_t> bg_refills{0};
        std::atomic<std::uint64_t> bg_drains{0};
        std::atomic<std::uint64_t> bg_precommits{0};
        std::atomic<std::uint64_t> bg_purges{0};
        std::array<std::atomic<std::uint64_t>, kLatencyPathCount>
            lat_counts{};
        std::array<std::atomic<std::uint64_t>, kLatencyPathCount>
            lat_p99{};
        /// u/a pairs, heap_slots entries of two words each.
        std::unique_ptr<std::atomic<std::uint64_t>[]> heap_words;
    };

    const std::size_t capacity_;
    const std::uint64_t mask_;
    const std::size_t heap_slots_;
    const std::uint64_t interval_;
    std::unique_ptr<Slot[]> slots_;
    std::atomic<std::uint64_t> head_{0};
    std::atomic<std::uint64_t> last_claim_{0};
    /// Orders slot assignment against stamping in begin_sample().
    std::atomic_flag order_lock_ = ATOMIC_FLAG_INIT;
    /// Newest appended stamp; guarded by order_lock_.
    std::uint64_t last_appended_ = 0;
};

}  // namespace obs
}  // namespace hoard

#endif  // HOARD_OBS_TIMESERIES_H_
