#include "obs/latency.h"

#include <algorithm>

namespace hoard {
namespace obs {

thread_local std::uint32_t LatencyCollector::t_countdown = 1;

const char*
to_string(LatencyPath path)
{
    switch (path) {
    case LatencyPath::malloc_fast:
        return "malloc_fast";
    case LatencyPath::malloc_refill:
        return "malloc_refill";
    case LatencyPath::malloc_global_fetch:
        return "malloc_global_fetch";
    case LatencyPath::malloc_fresh_map:
        return "malloc_fresh_map";
    case LatencyPath::free_fast:
        return "free_fast";
    case LatencyPath::free_spill:
        return "free_spill";
    case LatencyPath::free_remote_push:
        return "free_remote_push";
    case LatencyPath::owner_drain:
        return "owner_drain";
    }
    return "unknown";
}

double
LatencyHistogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    if (p <= 0.0)
        return static_cast<double>(bucket_lower(bucket_for(0)));
    if (p >= 100.0)
        return static_cast<double>(max_);
    const double need = p / 100.0 * static_cast<double>(count_);
    std::uint64_t cumulative = 0;
    for (int b = 0; b < kBuckets; ++b) {
        const std::uint64_t n = buckets_[static_cast<std::size_t>(b)];
        if (n == 0)
            continue;
        if (static_cast<double>(cumulative + n) >= need) {
            // Interpolate linearly inside the bucket; the upper edge
            // is capped at the recorded max so the open-ended last
            // bucket (and any sparse top bucket) cannot report a
            // value no sample ever reached.
            const double lo = static_cast<double>(bucket_lower(b));
            double hi = static_cast<double>(
                std::min(bucket_upper(b), max_));
            if (hi < lo)
                hi = lo;
            const double frac =
                (need - static_cast<double>(cumulative)) /
                static_cast<double>(n);
            const double value = lo + frac * (hi - lo);
            return std::min(value, static_cast<double>(max_));
        }
        cumulative += n;
    }
    return static_cast<double>(max_);
}

void
AtomicLatencyHistogram::merge_into(LatencyHistogram& out) const
{
    for (int i = 0; i < LatencyHistogram::kBuckets; ++i)
        out.buckets_[static_cast<std::size_t>(i)] +=
            buckets_[static_cast<std::size_t>(i)].load(
                std::memory_order_relaxed);
    out.count_ += count_.load(std::memory_order_relaxed);
    out.sum_ += sum_.load(std::memory_order_relaxed);
    const std::uint64_t m = max_.load(std::memory_order_relaxed);
    if (m > out.max_)
        out.max_ = m;
}

LatencySnapshot
LatencyCollector::snapshot() const
{
    LatencySnapshot snap;
    snap.outliers = outlier_head_.load(std::memory_order_relaxed);
    snap.outlier_cycles = outlier_cycles_;
    snap.sample_period = period_;
    for (const Shard& shard : shards_)
        for (int p = 0; p < kLatencyPathCount; ++p)
            shard.paths[static_cast<std::size_t>(p)].merge_into(
                snap.paths[static_cast<std::size_t>(p)]);
    return snap;
}

void
LatencyCollector::record_outlier(std::uint64_t timestamp, int tid,
                                 LatencyPath path, std::uint64_t cycles,
                                 const std::uintptr_t* frames,
                                 int frame_count)
{
    const std::uint64_t seq =
        outlier_head_.fetch_add(1, std::memory_order_relaxed);
    OutlierSlot& slot = outliers_[seq % kOutlierSlots];
    slot.timestamp.store(timestamp, std::memory_order_relaxed);
    slot.cycles.store(cycles, std::memory_order_relaxed);
    slot.tid.store(tid, std::memory_order_relaxed);
    slot.path.store(static_cast<std::uint8_t>(path),
                    std::memory_order_relaxed);
    if (frame_count > kMaxOutlierFrames)
        frame_count = kMaxOutlierFrames;
    for (int i = 0; i < frame_count; ++i)
        slot.frames[static_cast<std::size_t>(i)].store(
            frames == nullptr ? 0 : frames[i],
            std::memory_order_relaxed);
    slot.frame_count.store(frames == nullptr ? 0 : frame_count,
                           std::memory_order_relaxed);
}

std::vector<LatencyOutlier>
LatencyCollector::recent_outliers() const
{
    const std::uint64_t head =
        outlier_head_.load(std::memory_order_relaxed);
    const std::uint64_t retained = std::min(
        head, static_cast<std::uint64_t>(kOutlierSlots));
    std::vector<LatencyOutlier> out;
    out.reserve(retained);
    for (std::uint64_t i = head - retained; i < head; ++i) {
        const OutlierSlot& slot = outliers_[i % kOutlierSlots];
        LatencyOutlier rec;
        rec.timestamp = slot.timestamp.load(std::memory_order_relaxed);
        rec.cycles = slot.cycles.load(std::memory_order_relaxed);
        rec.tid = slot.tid.load(std::memory_order_relaxed);
        rec.path = static_cast<LatencyPath>(
            slot.path.load(std::memory_order_relaxed));
        int n = slot.frame_count.load(std::memory_order_relaxed);
        if (n > kMaxOutlierFrames)
            n = kMaxOutlierFrames;
        rec.frame_count = n;
        for (int f = 0; f < n; ++f)
            rec.frames[static_cast<std::size_t>(f)] =
                slot.frames[static_cast<std::size_t>(f)].load(
                    std::memory_order_relaxed);
        out.push_back(rec);
    }
    return out;
}

}  // namespace obs
}  // namespace hoard
