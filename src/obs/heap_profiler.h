/**
 * @file
 * Sampling heap profiler: allocation-site attribution with pprof
 * export and live fragmentation telemetry (docs/PROFILING.md).
 *
 * The design is tcmalloc's sampler transplanted onto Hoard: every
 * logical thread counts allocated bytes down from an exponentially
 * distributed threshold (mean = Config::profile_sample_rate); when the
 * countdown crosses zero the allocator captures a bounded backtrace
 * (Policy::profile_backtrace — a frame-pointer walk natively, a
 * deterministic {site token, fiber} pair in the sim) and records the
 * allocation here.  Exponential gaps make the sampling a Poisson
 * process *in bytes*: every byte is equally likely to be the sampled
 * one, so per-site estimates are unbiased no matter how allocation
 * sizes are distributed, and each sampled allocation of size s stands
 * for 1/(1 - e^(-s/rate)) real ones.
 *
 * Everything on the recording path is lock-free and allocation-free:
 *
 *  - The *site table* is a fixed open-addressing array keyed by the
 *    stack hash.  Slots are claimed by CAS on the hash word; counters
 *    are per-slot relaxed atomics; frames are published once behind a
 *    release/acquire ready flag.  Distinct stacks that collide on the
 *    full 64-bit hash merge into one site (astronomically unlikely and
 *    harmless for attribution); distinct hashes that collide on a slot
 *    probe onward, and a full table drops new sites into a counter
 *    rather than blocking.
 *
 *  - The *live map* pairs frees back to their sampled site so live
 *    attribution is exact per sampled object: an aligned 8-slot window
 *    (one cache line of keys) is probed by pointer hash; slots are
 *    claimed by CAS through a busy sentinel so value fields are always
 *    accessed exclusively.  A free of an unsampled pointer — the
 *    common case — costs one cache line of key loads and no writes.
 *
 * The class is deliberately policy-free (plain data + atomics); the
 * allocator template feeds it thread indices, timestamps, and frames
 * from its Policy, which is what makes profiler tests replayable
 * bit-for-bit under SimPolicy.
 */

#ifndef HOARD_OBS_HEAP_PROFILER_H_
#define HOARD_OBS_HEAP_PROFILER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "common/failure.h"

namespace hoard {
namespace obs {

/// @name pprof varint/wire-format primitives.
/// Exposed (and unit-tested against golden bytes) so the hand-rolled
/// encoder in write_pprof_profile is verifiable without a protobuf
/// dependency.  Wire format: https://protobuf.dev/programming-guides/encoding
/// @{

/** Appends @p v as a base-128 varint (1..10 bytes). */
inline void
pprof_put_varint(std::string& out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<char>(0x80u | (v & 0x7Fu)));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

/** Appends a varint-typed field: tag (field<<3 | 0) then the value. */
inline void
pprof_put_field_varint(std::string& out, int field, std::uint64_t v)
{
    pprof_put_varint(out, (static_cast<std::uint64_t>(field) << 3) | 0u);
    pprof_put_varint(out, v);
}

/** Appends a length-delimited field: tag (field<<3 | 2), len, bytes. */
inline void
pprof_put_field_bytes(std::string& out, int field, const std::string& bytes)
{
    pprof_put_varint(out, (static_cast<std::uint64_t>(field) << 3) | 2u);
    pprof_put_varint(out, bytes.size());
    out.append(bytes);
}

/// @}

/** Aggregate profiler counters (all relaxed reads; exact only at
    quiescence, like every other gauge in the system). */
struct ProfilerTotals
{
    std::uint64_t sampled_objects = 0;    ///< samples recorded
    std::uint64_t sampled_requested = 0;  ///< sum of requested bytes
    std::uint64_t sampled_rounded = 0;    ///< sum of size-class bytes
    std::uint64_t live_objects = 0;       ///< sampled objects still live
    std::uint64_t live_bytes = 0;         ///< their rounded bytes
    std::uint64_t live_requested = 0;     ///< their requested bytes
    std::uint64_t frees_paired = 0;       ///< frees matched in the map
    std::uint64_t sites = 0;              ///< distinct sites recorded
    std::uint64_t site_drops = 0;         ///< samples lost: table full
    std::uint64_t live_drops = 0;         ///< inserts lost: window full
    std::uint64_t live_drop_bytes = 0;    ///< their rounded bytes
};

/** Per-size-class sampled fragmentation accumulators. */
struct ClassProfile
{
    std::uint64_t objects = 0;
    std::uint64_t requested_bytes = 0;
    std::uint64_t rounded_bytes = 0;
};

/** @see file comment. */
class HeapProfiler
{
  public:
    /** Hard cap on captured frames (Config::profile_max_frames <= 64). */
    static constexpr int kMaxFrames = 64;

    /** Countdown slots; logical threads map in by index modulo this.
        Two threads sharing a slot merely interleave one byte-counter —
        statistically harmless, and it bounds the footprint. */
    static constexpr int kThreadSlots = 256;

    /** Size-class index used for huge (superblock-bypassing) blocks. */
    static constexpr std::uint32_t kHugeClass = 0xFFFFFFFFu;

    /**
     * @param sample_rate mean bytes between samples (>= 1; 1 = every
     *                    allocation, exact mode)
     * @param site_slots  site-table capacity (power of two >= 2)
     * @param live_slots  live-map capacity (power of two >= 8)
     * @param max_frames  frames kept per site (1..kMaxFrames)
     * @param num_classes small size classes (for per-class telemetry)
     */
    HeapProfiler(std::size_t sample_rate, std::size_t site_slots,
                 std::size_t live_slots, int max_frames,
                 std::uint32_t num_classes);
    ~HeapProfiler();

    HeapProfiler(const HeapProfiler&) = delete;
    HeapProfiler& operator=(const HeapProfiler&) = delete;

    /**
     * Fast-path byte countdown: charges @p bytes against the calling
     * thread's threshold and reports whether this allocation is
     * sampled.  One relaxed load, a subtraction, one relaxed store,
     * and a predicted-not-taken branch; deliberately *not* a
     * fetch_sub, so no lock-prefixed instruction lands on the
     * allocation fast path (slot sharing makes a lost update merely a
     * skipped tick).
     */
    bool
    tick(int thread_index, std::size_t bytes)
    {
        ThreadState& t =
            threads_[static_cast<unsigned>(thread_index) &
                     (kThreadSlots - 1)];
        const std::int64_t c =
            t.countdown.load(std::memory_order_relaxed) -
            static_cast<std::int64_t>(bytes);
        if (c > 0) [[likely]] {
            t.countdown.store(c, std::memory_order_relaxed);
            return false;
        }
        t.countdown.store(next_threshold(t), std::memory_order_relaxed);
        return true;
    }

    /**
     * Records one sampled allocation: finds or creates the site for
     * @p frames, bumps its cumulative counters, and inserts @p ptr
     * into the live map so the matching free can be paired.
     *
     * @param ptr       block handed to the program
     * @param requested bytes the program asked for
     * @param rounded   bytes the allocator accounted (block_bytes for
     *                  small classes, the request itself for huge)
     * @param cls       size-class index, or kHugeClass
     * @param frames    backtrace, innermost first
     * @param depth     frames captured (>= 0)
     * @param now       Policy::timestamp() at allocation
     * @return whether @p ptr was inserted into the live map (a later
     *         on_free for it can hit); false on a site or live drop,
     *         so callers can skip free-side probes they know miss
     */
    bool record_alloc(const void* ptr, std::size_t requested,
                      std::size_t rounded, std::uint32_t cls,
                      const std::uintptr_t* frames, int depth,
                      std::uint64_t now);

    /**
     * Pairs a free: if @p ptr is a sampled live object, decrements its
     * site's live gauges and records its lifetime, calling @p now_fn
     * for the timestamp only on a hit (so unsampled frees — the
     * common case — never read the clock).  Returns whether it hit.
     */
    template <typename NowFn>
    bool
    on_free(const void* ptr, NowFn&& now_fn)
    {
        LiveSlot* slot = live_claim(ptr);
        if (slot == nullptr) [[likely]]
            return false;
        finish_free(slot, now_fn());
        return true;
    }

    /** Mean bytes between samples this profiler was armed with. */
    std::size_t sample_rate() const { return rate_; }

    /** @see ProfilerTotals */
    ProfilerTotals totals() const;

    /** Sampled per-class accumulators; index num_classes() is huge. */
    ClassProfile class_profile(std::uint32_t cls) const;
    std::uint32_t num_classes() const { return num_classes_; }

    /**
     * Serializes the pprof `profile.proto` wire format (uncompressed;
     * `pprof` and `go tool pprof` accept it directly).  Four sample
     * values per site — alloc_objects, alloc_space, inuse_objects,
     * inuse_space — scaled by the per-site Poisson weight
     * 1/(1 - e^(-m/rate)) with m the site's mean sampled size (an
     * approximation of summing per-object weights; exact when
     * rate == 1).  Frames are symbolized best-effort via dladdr.
     */
    void write_pprof_profile(std::ostream& os) const;

    /**
     * Human-readable end-of-run report: sites with live sampled bytes,
     * largest first, symbolized best-effort.  @p max_sites bounds the
     * listing.  Returns the number of leaking sites.
     */
    std::size_t write_leak_report(std::ostream& os,
                                  std::size_t max_sites = 32) const;

    /**
     * Prometheus-format fragmentation telemetry: totals plus per-class
     * sampled requested-vs-rounded bytes (internal fragmentation) and
     * live attribution.  Appended after obs::write_prometheus by the
     * tools so both land in one scrape.
     */
    void write_prometheus(std::ostream& os) const;

    /** Timestamps of the last few samples of site @p site_index
        (newest unspecified order); for lifetime/burst inspection. */
    static constexpr int kTimestampRing = 8;

    /**
     * Visits every populated site: fn(frames, depth, cumulative
     * objects/requested/rounded, live objects/requested/rounded,
     * lifetime_sum, lifetime_count).  Test/export hook; counters are
     * relaxed reads.
     */
    template <typename Fn>
    void
    for_each_site(Fn&& fn) const
    {
        for (std::size_t i = 0; i < site_slots_; ++i) {
            const Site& s = sites_[i];
            if (s.hash.load(std::memory_order_relaxed) == 0)
                continue;
            if (!s.ready.load(std::memory_order_acquire))
                continue;  // claimed a moment ago; frames not out yet
            fn(frames_store_ + i * static_cast<std::size_t>(max_frames_),
               s.depth,
               s.cum_objects.load(std::memory_order_relaxed),
               s.cum_requested.load(std::memory_order_relaxed),
               s.cum_rounded.load(std::memory_order_relaxed),
               s.live_objects.load(std::memory_order_relaxed),
               s.live_requested.load(std::memory_order_relaxed),
               s.live_rounded.load(std::memory_order_relaxed),
               s.lifetime_sum.load(std::memory_order_relaxed),
               s.lifetime_count.load(std::memory_order_relaxed));
        }
    }

  private:
    struct alignas(64) ThreadState
    {
        std::atomic<std::int64_t> countdown{0};
        std::atomic<std::uint64_t> rng{0};
    };

    struct Site
    {
        std::atomic<std::uint64_t> hash{0};  ///< 0 = empty; CAS-claimed
        std::atomic<bool> ready{false};      ///< frames published
        int depth = 0;                       ///< valid once ready

        std::atomic<std::uint64_t> cum_objects{0};
        std::atomic<std::uint64_t> cum_requested{0};
        std::atomic<std::uint64_t> cum_rounded{0};
        std::atomic<std::uint64_t> live_objects{0};
        std::atomic<std::uint64_t> live_requested{0};
        std::atomic<std::uint64_t> live_rounded{0};
        std::atomic<std::uint64_t> lifetime_sum{0};
        std::atomic<std::uint64_t> lifetime_count{0};

        /** Overwrite ring of recent sample timestamps. */
        std::atomic<std::uint64_t> ts_ring[kTimestampRing];
        std::atomic<std::uint32_t> ts_pos{0};
    };

    /**
     * One live-map entry.  The key owns the protocol: 0 = empty,
     * kBusy = claimed (values being read or written exclusively),
     * anything else = a live sampled pointer.  Values are relaxed
     * atomics only so that a quiescence-time export scan is race-free
     * by construction; the claim CASes carry the real ordering.
     */
    struct LiveSlot
    {
        std::atomic<std::uintptr_t> key{0};
        std::atomic<std::uint32_t> site{0};
        std::atomic<std::uint32_t> cls{0};
        std::atomic<std::uint64_t> requested{0};
        std::atomic<std::uint64_t> rounded{0};
        std::atomic<std::uint64_t> alloc_ts{0};
    };

    static constexpr std::uintptr_t kBusy = 1;  ///< never a valid block

    struct ClassAccum
    {
        std::atomic<std::uint64_t> objects{0};
        std::atomic<std::uint64_t> requested{0};
        std::atomic<std::uint64_t> rounded{0};
    };

    /** Draws the next exponential threshold for @p t (>= 1). */
    std::int64_t next_threshold(ThreadState& t);

    /** Finds or claims the site slot for @p hash; -1 if table full. */
    std::ptrdiff_t site_find_or_claim(std::uint64_t hash,
                                      const std::uintptr_t* frames,
                                      int depth);

    /** Claims @p ptr's live slot (key -> kBusy); null on miss. */
    LiveSlot* live_claim(const void* ptr);

    /** Completes a paired free on an exclusively held slot. */
    void finish_free(LiveSlot* slot, std::uint64_t now);

    const std::size_t rate_;
    const std::size_t site_slots_;   ///< power of two
    const std::size_t live_slots_;   ///< power of two, >= 8
    const int max_frames_;
    const std::uint32_t num_classes_;

    ThreadState* threads_ = nullptr;      ///< [kThreadSlots]
    Site* sites_ = nullptr;               ///< [site_slots_]
    std::uintptr_t* frames_store_ = nullptr;  ///< [site_slots_ * max_frames_]
    LiveSlot* live_ = nullptr;            ///< [live_slots_]
    ClassAccum* classes_ = nullptr;       ///< [num_classes_ + 1], last = huge

    std::atomic<std::uint64_t> sampled_objects_{0};
    std::atomic<std::uint64_t> sampled_requested_{0};
    std::atomic<std::uint64_t> sampled_rounded_{0};
    std::atomic<std::uint64_t> live_objects_{0};
    std::atomic<std::uint64_t> live_requested_{0};
    std::atomic<std::uint64_t> live_rounded_{0};
    std::atomic<std::uint64_t> frees_paired_{0};
    std::atomic<std::uint64_t> site_count_{0};
    std::atomic<std::uint64_t> site_drops_{0};
    std::atomic<std::uint64_t> live_drops_{0};
    std::atomic<std::uint64_t> live_drop_bytes_{0};
};

}  // namespace obs
}  // namespace hoard

#endif  // HOARD_OBS_HEAP_PROFILER_H_
