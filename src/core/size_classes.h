/**
 * @file
 * Geometric size classes (paper §3.1: block sizes b^k).
 *
 * Classes start at min_block_bytes and grow by the configured base,
 * rounded to the alignment the class must guarantee (8 bytes below 16,
 * 16 bytes at and above).  The largest class fits at least two blocks in
 * a superblock payload; anything bigger is a "huge" allocation served by
 * a dedicated superblock.
 */

#ifndef HOARD_CORE_SIZE_CLASSES_H_
#define HOARD_CORE_SIZE_CLASSES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/config.h"

namespace hoard {

/** Immutable size-class table computed from a Config. */
class SizeClasses
{
  public:
    /**
     * @param config         allocator configuration (base, min block)
     * @param payload_bytes  usable bytes in a superblock after its header
     */
    SizeClasses(const Config& config, std::size_t payload_bytes);

    /** Number of classes. */
    int count() const { return static_cast<int>(sizes_.size()); }

    /**
     * Class index whose block size covers @p size, or kHuge when the
     * request exceeds the largest class.  size == 0 is served as 1.
     */
    int
    class_for(std::size_t size) const
    {
        if (size == 0)
            size = 1;
        std::size_t slot = (size + kLutGranularity - 1) / kLutGranularity;
        if (slot >= lut_.size())
            return kHuge;
        return lut_[slot];
    }

    /** Block size of class @p cls. */
    std::size_t
    block_size(int cls) const
    {
        return sizes_[static_cast<std::size_t>(cls)];
    }

    /** Largest non-huge request size. */
    std::size_t largest() const { return sizes_.back(); }

    /** Sentinel returned by class_for() for huge requests. */
    static constexpr int kHuge = -1;

  private:
    static constexpr std::size_t kLutGranularity = 8;

    std::vector<std::size_t> sizes_;
    std::vector<std::int16_t> lut_;  ///< (size/8 rounded up) -> class
};

}  // namespace hoard

#endif  // HOARD_CORE_SIZE_CLASSES_H_
