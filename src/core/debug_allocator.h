/**
 * @file
 * DebugAllocator: a shadow-checking wrapper for any hoard::Allocator.
 *
 * Wraps an inner allocator and validates every operation against its
 * own shadow ledger:
 *
 *   - double free / foreign free (pointer not live from this wrapper)
 *   - heap buffer overrun (a tail canary after the requested bytes is
 *     verified on free)
 *   - leak reporting (live allocations with requested sizes)
 *
 * This is the layer a downstream user turns on while integrating; the
 * conformance tests run the whole workload suite through it, so the
 * checks themselves are exercised continuously.
 *
 * The wrapper allocates `size + kTailCanaryBytes` from the inner
 * allocator and returns the inner pointer unchanged, so it composes
 * with every allocator in the taxonomy (some baselines require frees
 * to carry the original block pointer).
 */

#ifndef HOARD_CORE_DEBUG_ALLOCATOR_H_
#define HOARD_CORE_DEBUG_ALLOCATOR_H_

#include <cstdarg>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/failure.h"
#include "common/memutil.h"
#include "common/stats.h"
#include "core/allocator.h"

namespace hoard {

/** Shadow-checking allocator wrapper. */
class DebugAllocator final : public Allocator
{
  public:
    /** Bytes of tail canary appended to every allocation. */
    static constexpr std::size_t kTailCanaryBytes = 8;

    /** What to do on a detected error. */
    enum class OnError
    {
        fatal,  ///< abort with a message (default)
        count,  ///< record in the error counters and continue
    };

    explicit DebugAllocator(Allocator& inner,
                            OnError on_error = OnError::fatal)
        : inner_(inner), on_error_(on_error)
    {}

    ~DebugAllocator() override = default;

    DebugAllocator(const DebugAllocator&) = delete;
    DebugAllocator& operator=(const DebugAllocator&) = delete;

    void*
    allocate(std::size_t size) override
    {
        if (size > std::numeric_limits<std::size_t>::max() -
                       kTailCanaryBytes) {
            return nullptr;  // canary would overflow the request
        }
        void* p = inner_.allocate(size + kTailCanaryBytes);
        if (p == nullptr)
            return nullptr;
        write_canary(p, size);
        {
            std::lock_guard<std::mutex> guard(mutex_);
            live_[p] = size;
        }
        stats_.allocs.add();
        stats_.requested_bytes.add(size);
        stats_.in_use_bytes.add(size);
        return p;
    }

    void
    deallocate(void* p) override
    {
        if (p == nullptr)
            return;
        std::size_t size = 0;
        {
            std::lock_guard<std::mutex> guard(mutex_);
            auto it = live_.find(p);
            if (it == live_.end()) {
                report("free of untracked pointer %p"
                       " (double free or foreign pointer)",
                       p);
                bad_frees_.add();
                return;
            }
            size = it->second;
            live_.erase(it);
        }
        if (!check_canary(p, size)) {
            report("buffer overrun detected behind %p (%zu bytes"
                   " requested)",
                   p, size);
            overruns_.add();
        }
        stats_.frees.add();
        stats_.in_use_bytes.sub(size);
        inner_.deallocate(p);
    }

    std::size_t
    usable_size(const void* p) const override
    {
        std::lock_guard<std::mutex> guard(mutex_);
        auto it = live_.find(const_cast<void*>(p));
        if (it == live_.end())
            return 0;
        return it->second;
    }

    const detail::AllocatorStats& stats() const override { return stats_; }
    const char* name() const override { return "debug"; }

    /// @name Shadow-ledger introspection.
    /// @{

    /** Currently live allocations (leaks, if the program is done). */
    std::size_t
    live_allocations() const
    {
        std::lock_guard<std::mutex> guard(mutex_);
        return live_.size();
    }

    /** Live bytes as requested by the program. */
    std::size_t
    live_bytes() const
    {
        std::lock_guard<std::mutex> guard(mutex_);
        std::size_t total = 0;
        for (const auto& [p, size] : live_)
            total += size;
        return total;
    }

    /** Snapshot of live pointers and their sizes (leak report). */
    std::vector<std::pair<void*, std::size_t>>
    leak_report() const
    {
        std::lock_guard<std::mutex> guard(mutex_);
        return {live_.begin(), live_.end()};
    }

    std::uint64_t bad_free_count() const { return bad_frees_.get(); }
    std::uint64_t overrun_count() const { return overruns_.get(); }

    /// @}

  private:
    void
    write_canary(void* p, std::size_t size)
    {
        auto* tail = static_cast<std::uint8_t*>(p) + size;
        for (std::size_t i = 0; i < kTailCanaryBytes; ++i)
            tail[i] = detail::pattern_byte(p, i, kCanarySalt);
    }

    bool
    check_canary(const void* p, std::size_t size) const
    {
        const auto* tail = static_cast<const std::uint8_t*>(p) + size;
        for (std::size_t i = 0; i < kTailCanaryBytes; ++i) {
            if (tail[i] != detail::pattern_byte(p, i, kCanarySalt))
                return false;
        }
        return true;
    }

    void
    report(const char* fmt, ...) const
        __attribute__((format(printf, 2, 3)))
    {
        if (on_error_ != OnError::fatal)
            return;
        // Reuse the failure machinery for a consistent message; the
        // formatting dance is worth one allocation-free path.
        va_list ap;
        va_start(ap, fmt);
        char buf[256];
        std::vsnprintf(buf, sizeof(buf), fmt, ap);
        va_end(ap);
        HOARD_FATAL("%s", buf);
    }

    static constexpr std::uint64_t kCanarySalt = 0xdebac1e;

    Allocator& inner_;
    const OnError on_error_;
    mutable std::mutex mutex_;
    std::unordered_map<void*, std::size_t> live_;
    detail::AllocatorStats stats_;
    detail::Counter bad_frees_;
    detail::Counter overruns_;
};

}  // namespace hoard

#endif  // HOARD_CORE_DEBUG_ALLOCATOR_H_
