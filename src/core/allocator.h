/**
 * @file
 * Type-erased allocator interface.
 *
 * The benchmark harness, the conformance test suite, and the workloads
 * drive Hoard and every baseline through this interface so a single
 * driver covers all allocators.  Thread identity is ambient (supplied by
 * the execution policy), so the interface itself is policy-agnostic.
 */

#ifndef HOARD_CORE_ALLOCATOR_H_
#define HOARD_CORE_ALLOCATOR_H_

#include <cstddef>
#include <cstring>

#include "common/stats.h"

namespace hoard {

/** Abstract multithreaded allocator. */
class Allocator
{
  public:
    virtual ~Allocator() = default;

    /** Allocates @p size bytes; returns nullptr only on OS exhaustion. */
    virtual void* allocate(std::size_t size) = 0;

    /** Frees a pointer obtained from allocate() on any thread. */
    virtual void deallocate(void* p) = 0;

    /** Usable bytes behind @p p (>= the requested size). */
    virtual std::size_t usable_size(const void* p) const = 0;

    /** Statistics block (see TBL-frag / TBL-blowup in DESIGN.md). */
    virtual const detail::AllocatorStats& stats() const = 0;

    /** Short identifier used in benchmark table headers. */
    virtual const char* name() const = 0;

    /**
     * Grows or shrinks @p p to @p size, preserving contents.  Default:
     * allocate + copy + free; implementations may reuse in place.
     */
    virtual void*
    reallocate(void* p, std::size_t size)
    {
        if (p == nullptr)
            return allocate(size);
        if (size == 0) {
            deallocate(p);
            return nullptr;
        }
        std::size_t old = usable_size(p);
        if (size <= old)
            return p;
        void* fresh = allocate(size);
        if (fresh != nullptr) {
            std::memcpy(fresh, p, old);
            deallocate(p);
        }
        return fresh;
    }
};

}  // namespace hoard

#endif  // HOARD_CORE_ALLOCATOR_H_
