/**
 * @file
 * Thread-local magazine plumbing shared by every HoardAllocator
 * instantiation: the per-(thread, allocator) magazine node, the
 * per-logical-thread node chain, and the process-wide liveness
 * registry that lets a thread-exit hook tell a live allocator from a
 * destroyed one.
 *
 * Why this is not simply a `thread_local` member: the allocator is a
 * template over the execution policy, and under SimPolicy the logical
 * "thread" is a fiber — many fibers share one OS thread, so C++
 * thread_local is the wrong key.  The policy instead hands out one
 * opaque per-logical-thread pointer slot (Policy::thread_cache_slot);
 * this module defines what hangs off it.  The node layout is
 * deliberately policy-free so every allocator instantiation (native,
 * sim, the uninstrumented bench policy) shares one chain format and
 * one exit hook.
 *
 * Memory discipline: nodes and roots are std::malloc'd, never operator
 * new'd — in whole-process deployments (global_new.h) operator new is
 * the allocator under construction, and registering a magazine from
 * inside allocate() must not recurse into it.  A node is freed only by
 * its owning thread's exit hook; other threads may empty a node's
 * lists (quiesced flush) but never free it, so the fast path needs no
 * lifetime synchronization.
 *
 * Lock order (the only multi-lock paths in the allocator):
 *   allocator cache-set mutex -> heap locks -> global-heap lock.
 * The liveness-registry mutex nests inside nothing and guards nothing
 * that suspends: exit hooks pin an allocator with a busy refcount and
 * drop the registry mutex *before* calling into it, because under
 * SimPolicy a policy mutex can suspend the calling fiber and parking a
 * process-wide std::mutex across that would deadlock the one OS thread
 * the simulation runs on.
 */

#ifndef HOARD_CORE_MAGAZINE_H_
#define HOARD_CORE_MAGAZINE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace hoard {
namespace detail {

/**
 * One thread's magazines for one allocator instance: a bounded LIFO of
 * whole free blocks per size class, threaded through block first words
 * (the same chain format Superblock::allocate_batch builds and
 * HoardHeap::remote_push consumes, so batches move by splice).
 *
 * Single-writer: only the owning logical thread touches `mags` and
 * `synced_bytes` on the fast path.  `occupancy_bytes` is the one field
 * other threads read (snapshot/sampler cached-bytes attribution); it is
 * updated per operation with relaxed stores and is exact whenever the
 * owner is quiesced.  The global cached_bytes gauge is synced to it
 * only at batch boundaries — that is the "statistics move to batch
 * boundaries" half of the fast path.
 */
struct MagazineNode
{
    struct Magazine
    {
        void* head = nullptr;      ///< LIFO threaded through blocks
        std::uint32_t count = 0;
    };

    /** Owning allocator; valid only while `allocator_id` is live. */
    void* allocator = nullptr;

    /** Monotonic allocator identity — never reused, so a stale node
        can never be mistaken for a new allocator at the same address. */
    std::uint64_t allocator_id = 0;

    /**
     * Flushes this node's blocks back into `allocator` and unlinks the
     * node from the allocator's set list.  Installed by the owning
     * HoardAllocator instantiation; called by the thread-exit hook with
     * the allocator pinned in the liveness registry (busy refcount —
     * which is what keeps `allocator` alive across the call).
     */
    void (*flush_fn)(void* allocator, MagazineNode* node) = nullptr;

    MagazineNode* next_in_thread = nullptr;  ///< per-thread root chain
    MagazineNode* next_in_set = nullptr;     ///< per-allocator chain

    /** Exact bytes parked across all classes (relaxed; see above). */
    std::atomic<std::size_t> occupancy_bytes{0};

    /** Portion already reflected in the global cached_bytes gauge.
        Touched only at batch boundaries, by the owner (or a quiesced
        flusher). */
    std::size_t synced_bytes = 0;

    std::uint32_t num_classes = 0;

    /**
     * Latency-sampling countdown (obs/latency.h): decremented on each
     * armed fast-path op; hitting zero selects the op for timing and
     * reloads Config::latency_sample_period.  Lives here instead of a
     * thread_local because the node pointer is already in a register
     * on every magazine op and this line is already dirty — the armed
     * untimed cost stays one in-cache decrement and a predicted
     * branch.  Starts at 1 so a fresh thread's first op is timed
     * (exact from the first op at period 1).  Owner-only, like mags.
     */
    std::uint32_t lat_countdown = 1;

    /** Per-class magazines; points into this node's own allocation. */
    Magazine* mags = nullptr;
};

/** What a logical thread's cache slot points at: its node chain. */
struct MagazineRoot
{
    MagazineNode* nodes = nullptr;
};

/** mallocs a node with space for @p num_classes magazines (zeroed);
    returns nullptr on malloc failure (caching then silently degrades
    to the uncached path for this thread). */
MagazineNode* magazine_node_new(std::uint32_t num_classes);

/** mallocs an empty root, or nullptr. */
MagazineRoot* magazine_root_new();

/// @name Allocator liveness registry.
/// Serializes thread-exit flushes against allocator destruction: the
/// exit hook flushes a node only while its allocator's id is still
/// registered (pinning it with a busy refcount for the duration), and
/// unregistering blocks until no exit flush holds a pin.  Do not
/// destroy an allocator *from a sim fiber* while another fiber of the
/// same machine may be exiting with blocks cached — the waiting
/// destructor would park the machine's only OS thread.
/// @{

/** Registers a new allocator; returns its fresh nonzero id. */
std::uint64_t magazine_register_allocator();

/** Unregisters @p id; after return no exit hook will flush into it. */
void magazine_unregister_allocator(std::uint64_t id);

/// @}

/// @name Fork support (pthread_atfork; see docs/SHIM.md).
/// The registry mutex is held across fork() — it is the outermost
/// lock of every multi-lock path, so it is taken before any
/// allocator's own prepare handler — and the child additionally
/// clears busy pins left by exit flushes of threads that no longer
/// exist (a stale pin would block that allocator's destructor
/// forever).
/// @{

/** Parent, before fork(): locks the registry mutex. */
void magazine_registry_prepare_fork();

/** Parent, after fork(): unlocks the registry mutex. */
void magazine_registry_parent_after_fork();

/** Child, after fork(): unlocks and clears stale busy pins. */
void magazine_registry_child_after_fork();

/// @}

/**
 * The thread-exit hook both execution policies invoke with a thread's
 * non-null cache slot: flushes every node whose allocator is still
 * live (via node->flush_fn, under the registry mutex), then frees the
 * nodes and the root.  Signature matches
 * Policy::set_thread_exit_hook.
 */
void magazine_thread_exit(void* root);

}  // namespace detail
}  // namespace hoard

#endif  // HOARD_CORE_MAGAZINE_H_
