/**
 * @file
 * Hoard heap structures (paper §3): the lock + u_i/a_i counter base
 * shared by every superblock home, the full per-processor heap with
 * per-size-class fullness-group lists, and the per-class global bin —
 * one shard of the sharded global heap (heap 0).
 *
 * The free path discovers a block's home through Superblock::owner(),
 * which stores a HeapBase pointer: index 0 means the owner is a
 * GlobalBin (one size class, its own lock), index >= 1 a per-processor
 * HoardHeap.  All fields are guarded by `mutex` except where noted.
 */

#ifndef HOARD_CORE_HEAP_H_
#define HOARD_CORE_HEAP_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/failure.h"
#include "core/superblock.h"
#include "obs/contention.h"

namespace hoard {

/** Fullness-group lists for one size class within one heap. */
struct SizeClassBin
{
    SuperblockList groups[Superblock::kGroupCount];
};

/**
 * State every superblock home shares: the lock, the u_i / a_i byte
 * counters, and the remote-free stack.  Superblock::owner() points at
 * this base; the free path dispatches on `index` (0 = global bin).
 */
template <typename Policy>
struct HeapBase
{
    /**
     * The policy mutex behind an optional contention profiler.  The
     * wrapper is a plain forwarder until ProfiledMutex::set_profiled
     * flips it on (and compiles down to the raw mutex entirely when
     * observability is off at build time).
     */
    using Mutex = obs::ProfiledMutex<Policy>;

    explicit HeapBase(int index_) : index(index_) {}

    HeapBase(const HeapBase&) = delete;
    HeapBase& operator=(const HeapBase&) = delete;

    /** Heap number; 0 marks a global-heap shard (GlobalBin). */
    const int index;

    Mutex mutex;

    /** u_i: block bytes currently handed to the program from here. */
    std::size_t in_use = 0;

    /** a_i: bytes held in this home's superblocks (span bytes). */
    std::size_t held = 0;

    /**
     * MPSC remote-free stack (Treiber, push-only): a thread freeing a
     * block owned by this heap while its lock is busy pushes here
     * instead of blocking; the owner splices the whole chain off with
     * one exchange at its next lock acquisition and settles the frees
     * under the lock it already holds.  Blocks link through their first
     * words — the magazine/bulk-carve chain format.  No individual pop
     * ever happens, so the classic Treiber ABA hazard cannot arise; the
     * release/acquire pair on the head is what publishes each block's
     * next-pointer write to the draining owner.
     */
    std::atomic<void*> remote_head{nullptr};

    /**
     * Approximate pending-chain depth, the background engine's settle
     * watermark: pushers bump it relaxed (a hint, never synchronization
     * — a torn or stale read costs one early or late settle pass, never
     * correctness) and the drain zeroes it.  The worker compares it
     * against Config::bg_drain_threshold without taking the lock.
     */
    std::atomic<std::uint32_t> remote_depth{0};

    /** Cheap empty test so the drain's exchange is skipped when idle. */
    bool
    remote_pending() const
    {
        return remote_head.load(std::memory_order_relaxed) != nullptr;
    }

    /** Lock-free push of a (whole, free) block. Any thread, no lock. */
    void
    remote_push(void* block)
    {
        void* old = remote_head.load(std::memory_order_relaxed);
        do {
            *static_cast<void**>(block) = old;
        } while (!remote_head.compare_exchange_weak(
            old, block, std::memory_order_release,
            std::memory_order_relaxed));
        remote_depth.store(
            remote_depth.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
    }

    /**
     * Detaches the whole pending chain (nullptr when empty).  Caller
     * holds the lock and owns every block on the returned chain.
     */
    void*
    remote_drain()
    {
        remote_depth.store(0, std::memory_order_relaxed);
        return remote_head.exchange(nullptr, std::memory_order_acquire);
    }
};

/** One per-processor heap; template parameter supplies the mutex type. */
template <typename Policy>
struct HoardHeap : HeapBase<Policy>
{
    HoardHeap(int index_, int num_classes)
        : HeapBase<Policy>(index_),
          bins(static_cast<std::size_t>(num_classes))
    {}

    /** Superblock lists per size class, segregated by fullness. */
    std::vector<SizeClassBin> bins;

    /** Completely-empty superblocks (baseline allocators only; the
        Hoard allocator retires empties to its lock-free reuse cache). */
    SuperblockList empty_list;

    /**
     * Finds a superblock of @p cls with a free block, preferring the
     * fullest (paper §3.1 allocates from nearly-full superblocks to keep
     * memory dense).  Returns nullptr when no superblock has space.
     * Caller holds the lock and charges one list_op per probed group.
     */
    Superblock*
    find_allocatable(int cls, int* probes)
    {
        SizeClassBin& bin = bins[static_cast<std::size_t>(cls)];
        *probes = 0;
        for (int g = Superblock::kFullnessBands - 1; g >= 0; --g) {
            ++*probes;
            if (Superblock* sb = bin.groups[g].front())
                return sb;
        }
        return nullptr;
    }

    /**
     * Finds a superblock that is at least @p f empty for transfer to the
     * global heap; emptiest candidates first.  Returns nullptr if none
     * qualifies.  Caller holds the lock.
     */
    Superblock*
    find_transfer_victim(double f)
    {
        // A superblock in band g has used/capacity >= g / kFullnessBands;
        // bands beyond (1-f) cannot contain an f-empty superblock.
        const double band_width = 1.0 / Superblock::kFullnessBands;
        for (int g = 0; g < Superblock::kFullnessBands; ++g) {
            if (g * band_width > 1.0 - f)
                break;
            for (auto& bin : bins) {
                for (Superblock* sb = bin.groups[g].front(); sb != nullptr;
                     sb = bin.groups[g].next(sb)) {
                    if (sb->at_least_fraction_empty(f))
                        return sb;
                }
            }
        }
        return nullptr;
    }

    /** Links @p sb into the right fullness group. Caller holds lock. */
    void
    link(Superblock* sb)
    {
        HOARD_DCHECK(!SuperblockList::is_linked(sb));
        bins[static_cast<std::size_t>(sb->size_class())]
            .groups[sb->fullness_group()]
            .push_front(sb);
    }

    /** Unlinks @p sb from its current group. Caller holds lock. */
    void
    unlink(Superblock* sb, int group)
    {
        bins[static_cast<std::size_t>(sb->size_class())]
            .groups[group]
            .remove(sb);
    }

    /** Moves @p sb between groups after its fullness changed. */
    void
    relink(Superblock* sb, int old_group)
    {
        int now = sb->fullness_group();
        if (now == old_group)
            return;
        unlink(sb, old_group);
        bins[static_cast<std::size_t>(sb->size_class())]
            .groups[now]
            .push_front(sb);
    }
};

/**
 * One shard of the global heap: the superblocks of a single size class,
 * under their own lock.  fetch_from_global and maybe_release_superblock
 * for different classes therefore never contend.  A superblock that
 * empties *inside* its bin stays there (band 0), still formatted for
 * the class, so the next same-class fetch skips the re-carve; empties
 * arriving from per-processor heaps go to the lock-free cross-class
 * reuse cache instead, where any class can claim them.
 */
template <typename Policy>
struct GlobalBin : HeapBase<Policy>
{
    explicit GlobalBin(int cls) : HeapBase<Policy>(0), size_class(cls) {}

    const int size_class;

    /** Fullness-group lists (band 0 emptiest, kFullGroup full). */
    SuperblockList groups[Superblock::kGroupCount];

    /**
     * Approximate superblock count: written under `mutex`
     * (link/unlink), read without it by fetchers deciding whether the
     * bin is worth locking.  A stale zero costs one extra miss of the
     * class; a stale nonzero costs one wasted lock — never correctness.
     */
    std::atomic<std::uint32_t> occupancy{0};

    /**
     * Demand hint for the background refill job: fetch_from_global
     * bumps it (relaxed, on the already-cold miss path) whenever the
     * occupancy probe found the bin empty.  The worker refills only
     * classes whose demand advanced since its last pass, so idle
     * classes are never pre-filled and the blowup bound is untouched.
     */
    std::atomic<std::uint32_t> fetch_misses{0};

    /**
     * Fullest allocatable superblock in the bin (paper §3.1 density
     * rule).  Caller holds the lock; charges one list_op per probe.
     */
    Superblock*
    find_allocatable(int* probes)
    {
        *probes = 0;
        for (int g = Superblock::kFullnessBands - 1; g >= 0; --g) {
            ++*probes;
            if (Superblock* sb = groups[g].front())
                return sb;
        }
        return nullptr;
    }

    /** Links @p sb into the right fullness group. Caller holds lock. */
    void
    link(Superblock* sb)
    {
        HOARD_DCHECK(!SuperblockList::is_linked(sb));
        HOARD_DCHECK(sb->size_class() == size_class);
        groups[sb->fullness_group()].push_front(sb);
        occupancy.fetch_add(1, std::memory_order_relaxed);
    }

    /** Unlinks @p sb from its current group. Caller holds lock. */
    void
    unlink(Superblock* sb, int group)
    {
        groups[group].remove(sb);
        occupancy.fetch_sub(1, std::memory_order_relaxed);
    }

    /** Moves @p sb between groups after its fullness changed. */
    void
    relink(Superblock* sb, int old_group)
    {
        int now = sb->fullness_group();
        if (now == old_group)
            return;
        groups[old_group].remove(sb);
        groups[now].push_front(sb);
    }
};

}  // namespace hoard

#endif  // HOARD_CORE_HEAP_H_
