/**
 * @file
 * The Hoard allocator (paper §3, Figures 2-3).
 *
 * Structure: P per-processor heaps plus one global heap (heap 0).  A
 * thread allocates from heap `1 + (tid mod P)`.  Each heap tracks the
 * bytes it holds (a_i) and the bytes in use by the program (u_i) and
 * maintains the emptiness invariant
 *
 *     u_i >= a_i - K*S   or   u_i >= (1 - f) * a_i
 *
 * by transferring a superblock that is at least f empty to the global
 * heap whenever a free leaves both conditions violated.  That invariant
 * is the paper's central device: it bounds blowup to O(1) and makes the
 * expected synchronization per operation constant.
 *
 * The class is templated on an execution policy (NativePolicy /
 * SimPolicy) so the identical algorithm runs under real threads and on
 * the virtual-time multiprocessor that regenerates the paper's figures.
 */

#ifndef HOARD_CORE_HOARD_ALLOCATOR_H_
#define HOARD_CORE_HOARD_ALLOCATOR_H_

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <limits>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/failure.h"
#include "common/mathutil.h"
#include "common/memutil.h"
#include "common/stats.h"
#include "core/allocator.h"
#include "core/config.h"
#include "core/heap.h"
#include "core/size_classes.h"
#include "core/superblock.h"
#include "obs/event_ring.h"
#include "obs/gating.h"
#include "obs/snapshot.h"
#include "obs/timeseries.h"
#include "os/page_provider.h"
#include "policy/cost_kind.h"

namespace hoard {

/** Hoard allocator, parameterized by execution policy. */
template <typename Policy>
class HoardAllocator final : public Allocator
{
  public:
    using Heap = HoardHeap<Policy>;

    explicit HoardAllocator(
        const Config& config = Config(),
        os::PageProvider& provider = os::default_page_provider())
        : config_(validated(config)),
          provider_(provider),
          classes_(config_,
                   Superblock::payload_bytes_for(config_.superblock_bytes))
    {
        heaps_.reserve(static_cast<std::size_t>(config_.heap_count) + 1);
        for (int i = 0; i <= config_.heap_count; ++i)
            heaps_.push_back(std::make_unique<Heap>(i, classes_.count()));
        if (config_.thread_cache_blocks > 0) {
            std::size_t slots =
                static_cast<std::size_t>(config_.heap_count) * 2;
            for (std::size_t i = 0; i < slots; ++i)
                caches_.push_back(std::make_unique<ThreadCacheSlot>(
                    static_cast<std::size_t>(classes_.count())));
        }
        if constexpr (Policy::kObsEnabled) {
            if (config_.observability || obs::env_enabled()) {
                recorder_ = std::make_unique<obs::EventRecorder>(
                    config_.obs_ring_events);
                for (auto& heap : heaps_)
                    heap->mutex.set_profiled(true);
                if (config_.obs_sample_interval > 0) {
                    sampler_ = std::make_unique<obs::TimeSeriesSampler>(
                        config_.obs_sample_slots, heaps_.size(),
                        config_.obs_sample_interval);
                }
            }
        }
    }

    ~HoardAllocator() override { release_everything(); }

    HoardAllocator(const HoardAllocator&) = delete;
    HoardAllocator& operator=(const HoardAllocator&) = delete;

    /// @name Allocator interface
    /// @{

    void*
    allocate(std::size_t size) override
    {
        Policy::work(CostKind::malloc_base);
        int cls = classes_.class_for(size);
        if (cls == SizeClasses::kHuge)
            return allocate_huge(size, /*align=*/16);
        void* block = nullptr;
        if (!caches_.empty()) {
            block = cache_pop(cls);
            if (tracing()) {
                record_event(block != nullptr
                                 ? obs::EventKind::cache_hit
                                 : obs::EventKind::cache_miss,
                             my_heap_index(), cls,
                             classes_.block_size(cls));
            }
        }
        if (block == nullptr)
            block = allocate_from_class(cls);
        if (block == nullptr)
            return nullptr;
        stats_.allocs.add();
        stats_.requested_bytes.add(size);
        stats_.in_use_bytes.add(classes_.block_size(cls));
        return block;
    }

    void
    deallocate(void* p) override
    {
        if (p == nullptr)
            return;
        Policy::work(CostKind::free_base);
        Superblock* sb =
            Superblock::from_pointer(p, config_.superblock_bytes);
        if (sb->huge()) {
            deallocate_huge(sb);
            return;
        }
        stats_.frees.add();
        stats_.in_use_bytes.sub(sb->block_bytes());
        if (caches_.empty() || !cache_push(sb, p))
            free_block(sb, p);
        // Tail position: no locks held here, so a due sample may take
        // heap locks without self-deadlock risk.
        maybe_sample();
    }

    std::size_t
    usable_size(const void* p) const override
    {
        const Superblock* sb =
            Superblock::from_pointer(p, config_.superblock_bytes);
        if (sb->huge())
            return sb->huge_user_bytes();
        // The usable span runs from the given pointer to the block end
        // (aligned allocations hand out interior pointers).
        auto addr = reinterpret_cast<std::uintptr_t>(p);
        auto begin = reinterpret_cast<std::uintptr_t>(sb->block_start(p));
        return sb->block_bytes() - (addr - begin);
    }

    const detail::AllocatorStats& stats() const override { return stats_; }
    const char* name() const override { return "hoard"; }

    /// @}

    /**
     * Allocates @p size bytes aligned to @p align (power of two, at most
     * S/2).  Alignments up to 16 are free; larger ones may return an
     * interior pointer of a larger block, which deallocate() handles.
     */
    void*
    allocate_aligned(std::size_t size, std::size_t align)
    {
        if (!detail::is_pow2(align))
            HOARD_FATAL("alignment %zu is not a power of two", align);
        if (align > config_.superblock_bytes / 2) {
            HOARD_FATAL("alignment %zu exceeds S/2 = %zu", align,
                        config_.superblock_bytes / 2);
        }
        if (align <= 16)
            return allocate(size == 0 ? 1 : size);

        Policy::work(CostKind::malloc_base);
        // Find a class big enough that an aligned point with `size`
        // bytes after it must exist inside the block.
        std::size_t need = size + align;
        int cls = classes_.class_for(need);
        void* block;
        if (cls == SizeClasses::kHuge) {
            return allocate_huge(size, align);
        }
        block = allocate_from_class(cls);
        if (block == nullptr)
            return nullptr;
        stats_.allocs.add();
        stats_.requested_bytes.add(size);
        stats_.in_use_bytes.add(classes_.block_size(cls));
        auto addr = reinterpret_cast<std::uintptr_t>(block);
        return reinterpret_cast<void*>(detail::align_up(addr, align));
    }

    const Config& config() const { return config_; }
    const SizeClasses& size_classes() const { return classes_; }
    int heap_count() const { return config_.heap_count; }

    /**
     * Best-effort memory release back to the OS: drains every thread
     * cache to the heaps, then unmaps every completely-empty superblock
     * from every heap (including the global heap's empty cache).
     * Returns the bytes unmapped.  This is the reclaim step of the
     * OOM retry path and doubles as a malloc_trim-style API for
     * long-running servers reacting to memory pressure.  Takes no lock
     * on entry; heap locks are taken one at a time, so concurrent
     * allocation stays safe (and may legitimately race fresh memory in).
     */
    std::size_t
    release_free_memory()
    {
        flush_thread_caches();
        std::size_t released = 0;
        for (auto& heap_ptr : heaps_) {
            Heap& heap = *heap_ptr;
            std::lock_guard<typename Heap::Mutex> guard(heap.mutex);
            for (auto& bin : heap.bins) {
                // Only band 0 can hold used == 0 superblocks.
                auto& group = bin.groups[0];
                Superblock* sb = group.front();
                while (sb != nullptr) {
                    Superblock* next = group.next(sb);
                    if (sb->empty()) {
                        group.remove(sb);
                        heap.held -= sb->span_bytes();
                        released += release_to_provider(sb);
                    }
                    sb = next;
                }
            }
            while (Superblock* sb = heap.empty_list.pop_front()) {
                heap.held -= sb->span_bytes();
                released += release_to_provider(sb);
            }
        }
        return released;
    }

    /**
     * Drains every thread cache back to the owning heaps (no-op when
     * thread caching is disabled).  Call when quiescing — e.g. before
     * reading footprint gauges or asserting leak-freedom in tests.
     */
    void
    flush_thread_caches()
    {
        for (auto& slot : caches_) {
            std::lock_guard<typename Policy::Mutex> guard(slot->mutex);
            for (auto& list : slot->lists) {
                while (list.head != nullptr) {
                    void* block = list.head;
                    list.head = *static_cast<void**>(block);
                    --list.count;
                    Superblock* sb = Superblock::from_pointer(
                        block, config_.superblock_bytes);
                    stats_.cached_bytes.sub(sb->block_bytes());
                    free_block(sb, block);
                }
                HOARD_DCHECK(list.count == 0);
            }
        }
    }

    /// @name Introspection for tests and tables.
    /// @{

    /**
     * Writes a human-readable report of every heap: u_i/a_i, the
     * superblock population per size class with its fullness-group
     * histogram, the global empty cache, and thread-cache occupancy.
     * Takes each heap's lock briefly; intended for quiesced moments or
     * operator diagnostics, not hot paths.
     */
    void
    dump(std::ostream& os)
    {
        os << "HoardAllocator S=" << config_.superblock_bytes
           << " f=" << config_.empty_fraction
           << " K=" << config_.slack_superblocks
           << " t=" << config_.release_threshold
           << " P=" << config_.heap_count << "\n";
        for (auto& heap_ptr : heaps_) {
            Heap& heap = *heap_ptr;
            std::lock_guard<typename Heap::Mutex> guard(heap.mutex);
            os << (heap.index == 0 ? "  heap 0 (global)" : "  heap ")
               << (heap.index == 0 ? "" : std::to_string(heap.index))
               << ": in-use " << heap.in_use << " held " << heap.held;
            if (heap.index == 0)
                os << " empty-cached " << heap.empty_list.size();
            os << "\n";
            for (std::size_t cls = 0; cls < heap.bins.size(); ++cls) {
                auto& bin = heap.bins[cls];
                std::size_t count = 0;
                for (auto& group : bin.groups)
                    count += group.size();
                if (count == 0)
                    continue;
                os << "    class " << cls << " ("
                   << classes_.block_size(static_cast<int>(cls))
                   << " B): " << count << " superblock(s), groups [";
                for (int g = 0; g < Superblock::kGroupCount; ++g) {
                    if (g != 0)
                        os << ' ';
                    os << bin.groups[g].size();
                }
                os << "]\n";
            }
        }
        if (!caches_.empty()) {
            std::size_t cached_blocks = 0;
            for (auto& slot : caches_) {
                std::lock_guard<typename Policy::Mutex> guard(
                    slot->mutex);
                for (auto& list : slot->lists)
                    cached_blocks += list.count;
            }
            os << "  thread caches: " << cached_blocks << " block(s), "
               << stats_.cached_bytes.current() << " B\n";
        }
        os.flush();
    }

    /** u_i of heap @p i (0 = global). */
    std::size_t
    heap_in_use(int i)
    {
        Heap& h = *heaps_[static_cast<std::size_t>(i)];
        std::lock_guard<typename Heap::Mutex> guard(h.mutex);
        return h.in_use;
    }

    /** a_i of heap @p i (0 = global). */
    std::size_t
    heap_held(int i)
    {
        Heap& h = *heaps_[static_cast<std::size_t>(i)];
        std::lock_guard<typename Heap::Mutex> guard(h.mutex);
        return h.held;
    }

    /** Heap index the calling thread allocates from. */
    int
    my_heap_index() const
    {
        return 1 + Policy::thread_index() % config_.heap_count;
    }

    /**
     * Walks every heap verifying counter consistency and the emptiness
     * invariant (allowing the one-superblock transient and per-header
     * slack discussed in DESIGN.md).  Aborts on violation; returns true
     * so it can sit inside EXPECT_TRUE.
     */
    bool
    check_invariants()
    {
        for (auto& heap : heaps_)
            check_heap(*heap);
        return true;
    }

    /**
     * Structured snapshot of every heap: u_i/a_i, superblock population
     * per size class and fullness group, lock-contention profiles, the
     * huge list, and a copy of the global counters.  Available whether
     * or not event tracing is enabled.  Takes each heap's lock briefly
     * (one at a time, so concurrent allocation stays safe); exact
     * reconciliation against the gauges needs a quiesced allocator.
     * Under SimPolicy this must run inside a simulated thread, like any
     * other lock-taking introspection.
     */
    obs::AllocatorSnapshot
    take_snapshot()
    {
        // Phase 1: allocate every byte the snapshot will ever need.
        // In whole-process deployments (global_new.h) these
        // allocations come back through this very allocator, so they
        // must land (a) outside any heap lock — allocating under one
        // self-deadlocks — and (b) *before* the gauges are copied:
        // an allocation between the gauge copy and the heap walk is
        // seen by one side but not the other and breaks exact
        // reconciliation.
        obs::AllocatorSnapshot snap;
        snap.allocator_name = name();
        snap.superblock_bytes = config_.superblock_bytes;
        snap.empty_fraction = config_.empty_fraction;
        snap.release_threshold = config_.release_threshold;
        snap.slack_superblocks = config_.slack_superblocks;
        snap.heap_count = config_.heap_count;
        snap.heaps.resize(heaps_.size());
        for (obs::HeapSnapshot& hs : snap.heaps) {
            hs.classes.resize(
                static_cast<std::size_t>(classes_.count()));
            for (std::size_t cls = 0; cls < hs.classes.size(); ++cls) {
                hs.classes[cls].size_class = static_cast<int>(cls);
                hs.classes[cls].block_bytes =
                    static_cast<std::uint32_t>(
                        classes_.block_size(static_cast<int>(cls)));
                hs.classes[cls].group_counts.assign(
                    Superblock::kGroupCount, 0);
            }
        }

        // Phase 2: copy the gauges, then walk — allocation-free.
        snap.cached_bytes = stats_.cached_bytes.current();
        snap.stats.allocs = stats_.allocs.get();
        snap.stats.frees = stats_.frees.get();
        snap.stats.in_use_bytes = stats_.in_use_bytes.current();
        snap.stats.held_bytes = stats_.held_bytes.current();
        snap.stats.os_bytes = stats_.os_bytes.current();
        snap.stats.cached_bytes = stats_.cached_bytes.current();
        snap.stats.superblock_allocs = stats_.superblock_allocs.get();
        snap.stats.superblock_transfers =
            stats_.superblock_transfers.get();
        snap.stats.global_fetches = stats_.global_fetches.get();
        snap.stats.huge_allocs = stats_.huge_allocs.get();
        snap.stats.oom_reclaims = stats_.oom_reclaims.get();
        snap.stats.oom_failures = stats_.oom_failures.get();
        for (std::size_t i = 0; i < heaps_.size(); ++i)
            fill_heap_snapshot(*heaps_[i], snap.heaps[i]);
        {
            std::lock_guard<typename Policy::Mutex> guard(huge_mutex_);
            for (Superblock* sb = huge_list_.front(); sb != nullptr;
                 sb = huge_list_.next(sb)) {
                ++snap.huge_count;
                snap.huge_user_bytes += sb->huge_user_bytes();
                snap.huge_span_bytes += sb->span_bytes();
            }
        }

        // Phase 3: prune empty classes.  erase() only moves and
        // destroys — still no allocation.
        for (obs::HeapSnapshot& hs : snap.heaps) {
            hs.classes.erase(
                std::remove_if(hs.classes.begin(), hs.classes.end(),
                               [](const obs::ClassSnapshot& cs) {
                                   return cs.superblocks == 0;
                               }),
                hs.classes.end());
            hs.active_classes =
                static_cast<std::uint32_t>(hs.classes.size());
        }
        return snap;
    }

    /**
     * The event recorder, or nullptr when tracing is off (runtime flag
     * unset, or observability compiled out).
     */
    const obs::EventRecorder* recorder() const { return recorder_.get(); }

    /** True when event tracing and lock profiling are active. */
    bool observability_enabled() const { return recorder_ != nullptr; }

    /**
     * The time-series sampler, or nullptr when sampling is off
     * (observability disabled, obs_sample_interval == 0, or
     * observability compiled out).
     */
    const obs::TimeSeriesSampler* sampler() const
    {
        return sampler_.get();
    }

    /**
     * Forces one sample at the current policy time, ignoring the
     * cadence.  For end-of-run timeline flushes and
     * gauge-reconciliation tests; must not be called with any heap
     * lock held.  Returns false only when sampling is off.  Under
     * SimPolicy this must run inside a simulated thread, like
     * take_snapshot(); a fresh checker machine's clock restarts at
     * zero, so the sample is stamped no earlier than the last
     * in-run sample (claim_flush clamps forward).
     */
    bool
    sample_now()
    {
        if constexpr (Policy::kObsEnabled) {
            if (sampler_ == nullptr)
                return false;
            take_sample(sampler_->claim_flush(Policy::timestamp()));
            return true;
        } else {
            return false;
        }
    }

    /// @}

  private:
    /** One per-thread-slot block cache (extension, see Config). */
    struct ThreadCacheSlot
    {
        explicit ThreadCacheSlot(std::size_t num_classes)
            : lists(num_classes)
        {}

        struct ClassList
        {
            void* head = nullptr;     ///< LIFO threaded through blocks
            std::uint32_t count = 0;
        };

        typename Policy::Mutex mutex;
        std::vector<ClassList> lists;
        /// Slots are written by one thread at a time; keep them off
        /// each other's cache lines.
        char pad[detail::kCacheLineBytes] = {};
    };

    static const Config&
    validated(const Config& config)
    {
        config.validate();
        return config;
    }

    ThreadCacheSlot&
    my_cache()
    {
        auto idx = static_cast<std::size_t>(Policy::thread_index()) %
                   caches_.size();
        return *caches_[idx];
    }

    /** Pops a cached block of @p cls, or nullptr. */
    void*
    cache_pop(int cls)
    {
        ThreadCacheSlot& slot = my_cache();
        std::lock_guard<typename Policy::Mutex> guard(slot.mutex);
        auto& list = slot.lists[static_cast<std::size_t>(cls)];
        if (list.head == nullptr)
            return nullptr;
        void* block = list.head;
        Policy::touch(block, sizeof(void*), false);
        list.head = *static_cast<void**>(block);
        --list.count;
        stats_.cached_bytes.sub(classes_.block_size(cls));
        return block;
    }

    /**
     * Parks the (whole, free) block containing @p p in the caller's
     * cache; on overflow, spills half the class list to the heaps.
     * Returns false when caching is a loss (never, currently).
     */
    bool
    cache_push(Superblock* sb, void* p)
    {
        void* block = sb->block_start(p);
        int cls = sb->size_class();
        const std::size_t block_bytes = sb->block_bytes();

        ThreadCacheSlot& slot = my_cache();
        std::lock_guard<typename Policy::Mutex> guard(slot.mutex);
        auto& list = slot.lists[static_cast<std::size_t>(cls)];
        if (list.count >= config_.thread_cache_blocks) {
            // Spill the older half back to the owning heaps.
            std::uint32_t spill = list.count / 2 + 1;
            for (std::uint32_t i = 0; i < spill; ++i) {
                void* victim = list.head;
                list.head = *static_cast<void**>(victim);
                --list.count;
                Superblock* vsb = Superblock::from_pointer(
                    victim, config_.superblock_bytes);
                stats_.cached_bytes.sub(vsb->block_bytes());
                free_block(vsb, victim);
            }
        }
        Policy::touch(block, sizeof(void*), true);
        *static_cast<void**>(block) = list.head;
        list.head = block;
        ++list.count;
        stats_.cached_bytes.add(block_bytes);
        return true;
    }

    /**
     * True when events should be recorded.  A constant false when
     * observability is compiled out, so `if (tracing())` folds away
     * along with its argument computations.
     */
    bool
    tracing() const
    {
        if constexpr (Policy::kObsEnabled)
            return recorder_ != nullptr;
        else
            return false;
    }

    /**
     * Records one trace event.  Compiles to nothing when observability
     * is off at build time; costs one predicted branch when tracing is
     * off at run time.  Safe to call with or without heap locks held
     * (the ring is lock-free).
     */
    void
    record_event(obs::EventKind kind, int heap, int size_class,
                 std::uint64_t bytes)
    {
        if constexpr (Policy::kObsEnabled) {
            if (recorder_ != nullptr) {
                recorder_->record(Policy::timestamp(),
                                  Policy::thread_index(), kind, heap,
                                  size_class, bytes);
            }
        } else {
            (void)kind;
            (void)heap;
            (void)size_class;
            (void)bytes;
        }
    }

    /// Frees between cadence checks.  The residue rides only on
    /// deallocate() (one thread_local decrement per free, a clock read
    /// every kSampleCheckPeriod frees) to stay inside the
    /// micro_obs_overhead --check idle budget; frees track churn, and
    /// alloc-only growth phases are covered by the sample_now() flush.
    static constexpr unsigned kSampleCheckPeriod = 256;

    /**
     * Takes a time-series sample if one is due.  Called only at the
     * tail of deallocate(), where no locks are held — take_sample()
     * acquires each heap's lock one at a time, which would
     * self-deadlock from inside a locked region in whole-process
     * deployments (global_new.h).  Compiles to nothing when
     * observability is off at build time; when sampling is off at run
     * time the cost is one null check per free.
     */
    void
    maybe_sample()
    {
        if constexpr (Policy::kObsEnabled) {
            if (sampler_ == nullptr)
                return;
            thread_local unsigned countdown = kSampleCheckPeriod;
            if (--countdown != 0)
                return;
            countdown = kSampleCheckPeriod;
            std::uint64_t now = Policy::timestamp();
            if (!sampler_->claim_due(now))
                return;
            take_sample(now);
        }
    }

    /**
     * Records one sample stamped @p now: global gauges and counters
     * first, then every heap's u_i/a_i under its lock (one lock at a
     * time; nothing here allocates, so this is safe in whole-process
     * deployments).  A racing reader may see the sample half-filled —
     * same relaxed-atomic contract as the event rings.
     */
    void
    take_sample(std::uint64_t now)
    {
        if constexpr (Policy::kObsEnabled) {
            obs::TimeSeriesSampler::Writer writer =
                sampler_->begin_sample(now);
            writer.set_gauges(stats_.in_use_bytes.current(),
                              stats_.held_bytes.current(),
                              stats_.os_bytes.current(),
                              stats_.cached_bytes.current());
            writer.set_counters(stats_.allocs.get(), stats_.frees.get(),
                                stats_.superblock_transfers.get(),
                                stats_.global_fetches.get());
            for (std::size_t i = 0; i < heaps_.size(); ++i) {
                Heap& heap = *heaps_[i];
                std::lock_guard<typename Heap::Mutex> guard(heap.mutex);
                writer.set_heap(i, heap.in_use, heap.held);
            }
        } else {
            (void)now;
        }
    }

    /**
     * Fills one heap's snapshot in place; takes and releases the
     * heap's lock.  @p hs arrives with every vector pre-sized by
     * take_snapshot() — nothing here may allocate.  Allocating under
     * the heap lock would self-deadlock whole-process deployments
     * (global_new.h), and allocating at all between the gauge copy and
     * this walk would break exact reconciliation.  LockStats is safe
     * to copy under the lock: its histogram is a fixed std::array.
     */
    void
    fill_heap_snapshot(Heap& heap, obs::HeapSnapshot& hs)
    {
        std::lock_guard<typename Heap::Mutex> guard(heap.mutex);
        hs.index = heap.index;
        hs.in_use = heap.in_use;
        hs.held = heap.held;
        hs.empty_cached = heap.empty_list.size();
        for (std::size_t cls = 0; cls < heap.bins.size(); ++cls) {
            auto& bin = heap.bins[cls];
            obs::ClassSnapshot& cs = hs.classes[cls];
            for (int g = 0; g < Superblock::kGroupCount; ++g) {
                for (Superblock* sb = bin.groups[g].front();
                     sb != nullptr; sb = bin.groups[g].next(sb)) {
                    ++cs.group_counts[static_cast<std::size_t>(g)];
                    ++cs.superblocks;
                    cs.used_blocks += sb->used();
                    cs.capacity_blocks += sb->capacity();
                    hs.uncarved +=
                        sb->span_bytes() -
                        static_cast<std::size_t>(sb->capacity()) *
                            sb->block_bytes();
                }
            }
        }
        if constexpr (Policy::kObsEnabled)
            hs.lock = heap.mutex.stats_locked();
    }

    Heap& global_heap() { return *heaps_[0]; }

    Heap&
    my_heap()
    {
        return *heaps_[static_cast<std::size_t>(my_heap_index())];
    }

    /**
     * Graceful-degradation wrapper around the class allocation path:
     * when the provider refuses memory, reclaim everything reclaimable
     * (thread caches, empty superblocks across all heaps) and retry
     * exactly once before reporting OOM to the caller.  All heap
     * accounting is already settled when the try-path reports failure,
     * so the retry observes a consistent allocator.
     */
    void*
    allocate_from_class(int cls)
    {
        void* block = try_allocate_from_class(cls);
        if (block == nullptr) {
            stats_.oom_reclaims.add();
            record_event(obs::EventKind::oom_reclaim, my_heap_index(),
                         cls, classes_.block_size(cls));
            release_free_memory();
            block = try_allocate_from_class(cls);
            if (block == nullptr)
                stats_.oom_failures.add();
        }
        return block;
    }

    /** malloc slow+fast path for a non-huge class (paper Figure 2). */
    void*
    try_allocate_from_class(int cls)
    {
        const std::size_t block_bytes = classes_.block_size(cls);
        Heap& heap = my_heap();
        std::lock_guard<typename Heap::Mutex> guard(heap.mutex);

        int probes = 0;
        Superblock* sb = heap.find_allocatable(cls, &probes);
        for (int i = 0; i < probes; ++i)
            Policy::work(CostKind::list_op);

        if (sb == nullptr) {
            sb = fetch_from_global(cls, heap);
            if (sb == nullptr) {
                sb = fresh_superblock(cls);
                if (sb == nullptr)
                    return nullptr;  // OS exhausted
                // A fresh superblock is invisible to other threads (no
                // block of it has escaped), so adopting it outside the
                // global lock is race-free.
                adopt(heap, sb);
                record_event(obs::EventKind::class_refill, heap.index,
                             cls, sb->span_bytes());
            }
        }

        int old_group = sb->fullness_group();
        Policy::touch(sb, sizeof(Superblock), true);
        void* block = sb->allocate();
        heap.in_use += block_bytes;
        heap.relink(sb, old_group);
        Policy::work(CostKind::list_op);
        return block;
    }

    /** free path for a non-huge block (paper Figure 3). */
    void
    free_block(Superblock* sb, void* p)
    {
        const std::size_t block_bytes = sb->block_bytes();

        // Lock the owning heap; the owner may change while we wait
        // (another thread can transfer the superblock), so re-check and
        // retry until the lock we hold matches the owner (paper §3.4).
        Heap* heap;
        for (;;) {
            heap = static_cast<Heap*>(sb->owner());
            heap->mutex.lock();
            if (static_cast<Heap*>(sb->owner()) == heap)
                break;
            heap->mutex.unlock();
        }

        int old_group = sb->fullness_group();
        Policy::touch(p, sizeof(void*), true);
        Policy::touch(sb, sizeof(Superblock), true);
        sb->deallocate(p);
        heap->in_use -= block_bytes;
        heap->relink(sb, old_group);
        Policy::work(CostKind::list_op);

        if (heap->index == 0) {
            // Global heap: recycle fully-empty superblocks across
            // classes instead of enforcing the emptiness invariant.
            if (sb->empty()) {
                heap->unlink(sb, sb->fullness_group());
                retire_empty_locked(*heap, sb);
            }
            heap->mutex.unlock();
            return;
        }

        maybe_release_superblock(*heap);
        heap->mutex.unlock();
    }

    /**
     * Emptiness-invariant enforcement: while u_i < a_i - K*S and
     * u_i < (1-f) a_i, move at-least-f-empty superblocks to the global
     * heap.  The paper's Figure 3 transfers once per free; because we
     * pick the *emptiest* victim first, once is almost always enough —
     * but a victim sitting right at the f-empty boundary reduces the
     * deficit by less than one free added, so a single transfer does
     * not restore the invariant inductively.  Looping does, keeps the
     * amortized cost O(1) (every transferred superblock was paid for
     * by the frees that emptied it), and is what the invariant-based
     * blowup bound actually requires.  Caller holds the heap lock.
     */
    void
    maybe_release_superblock(Heap& heap)
    {
        const std::size_t slack =
            config_.slack_superblocks * config_.superblock_bytes;
        const double keep_fraction = 1.0 - config_.empty_fraction;

        while (heap.in_use + slack < heap.held &&
               static_cast<double>(heap.in_use) <
                   keep_fraction * static_cast<double>(heap.held)) {
            Superblock* victim =
                heap.find_transfer_victim(config_.release_threshold);
            if (victim == nullptr)
                return;  // only header slack remains (rare)

            Policy::work(CostKind::transfer);
            heap.unlink(victim, victim->fullness_group());
            heap.held -= victim->span_bytes();
            heap.in_use -= victim->used_bytes();
            stats_.superblock_transfers.add();
            record_event(obs::EventKind::transfer_to_global, heap.index,
                         victim->size_class(), victim->span_bytes());

            Heap& global = global_heap();
            std::lock_guard<typename Heap::Mutex> guard(global.mutex);
            victim->set_owner(&global);
            global.held += victim->span_bytes();
            global.in_use += victim->used_bytes();
            if (victim->empty())
                retire_empty_locked(global, victim);
            else
                global.link(victim);
        }
    }

    /**
     * Pulls a superblock of @p cls from the global heap — a partial one
     * of the same class if available, otherwise a recycled empty one
     * reformatted to @p cls — and hands it to @p dest, whose lock the
     * caller holds.  The handover happens entirely under the global
     * lock: a superblock with escaped blocks must never have a null or
     * stale owner, or a concurrent free would lock (or dereference)
     * the wrong heap.  Returns nullptr when the global heap is empty.
     */
    Superblock*
    fetch_from_global(int cls, Heap& dest)
    {
        Heap& global = global_heap();
        std::lock_guard<typename Heap::Mutex> guard(global.mutex);

        int probes = 0;
        Superblock* sb = global.find_allocatable(cls, &probes);
        for (int i = 0; i < probes; ++i)
            Policy::work(CostKind::list_op);

        if (sb != nullptr) {
            global.unlink(sb, sb->fullness_group());
        } else if ((sb = global.empty_list.pop_front()) != nullptr) {
            if (sb->size_class() != cls) {
                Policy::work(CostKind::superblock_init);
                sb->reformat(cls, static_cast<std::uint32_t>(
                                      classes_.block_size(cls)));
            }
        } else {
            return nullptr;
        }

        global.held -= sb->span_bytes();
        global.in_use -= sb->used_bytes();
        stats_.global_fetches.add();
        adopt(dest, sb);
        record_event(obs::EventKind::fetch_from_global, dest.index, cls,
                     sb->span_bytes());
        return sb;
    }

    /** Maps and formats a brand-new superblock of @p cls. */
    Superblock*
    fresh_superblock(int cls)
    {
        Policy::work(CostKind::os_map);
        Policy::work(CostKind::superblock_init);
        void* memory = provider_.map(config_.superblock_bytes,
                                     config_.superblock_bytes);
        if (memory == nullptr)
            return nullptr;
        stats_.superblock_allocs.add();
        stats_.os_bytes.add(config_.superblock_bytes);
        stats_.held_bytes.add(config_.superblock_bytes);
        return Superblock::create(
            memory, config_.superblock_bytes, cls,
            static_cast<std::uint32_t>(classes_.block_size(cls)));
    }

    /** Hands ownership of unowned @p sb to @p heap. Caller holds lock. */
    void
    adopt(Heap& heap, Superblock* sb)
    {
        sb->set_owner(&heap);
        heap.held += sb->span_bytes();
        heap.in_use += sb->used_bytes();
        heap.link(sb);
    }

    /**
     * Parks empty @p sb on the global empty list, unmapping it instead
     * when the cache is over its limit.  Caller holds the global lock.
     */
    void
    retire_empty_locked(Heap& global, Superblock* sb)
    {
        if (global.empty_list.size() >= config_.empty_cache_limit) {
            global.held -= sb->span_bytes();
            release_to_provider(sb);
            return;
        }
        global.empty_list.push_front(sb);
    }

    /**
     * Unmaps an unlinked superblock, settling the footprint gauges.
     * The caller has already removed @p sb from its heap's lists and
     * held count.  Returns the bytes given back.
     */
    std::size_t
    release_to_provider(Superblock* sb)
    {
        std::size_t bytes = sb->span_bytes();
        stats_.held_bytes.sub(bytes);
        stats_.os_bytes.sub(bytes);
        Policy::work(CostKind::os_map);
        sb->~Superblock();
        provider_.unmap(sb, bytes);
        return bytes;
    }

    /** Huge path with the same reclaim-then-retry-once OOM handling. */
    void*
    allocate_huge(std::size_t size, std::size_t align)
    {
        void* p = try_allocate_huge(size, align);
        if (p == nullptr) {
            stats_.oom_reclaims.add();
            record_event(obs::EventKind::oom_reclaim, 0,
                         SizeClasses::kHuge, size);
            release_free_memory();
            p = try_allocate_huge(size, align);
            if (p == nullptr)
                stats_.oom_failures.add();
        }
        return p;
    }

    /** Huge path: a dedicated chunk with a superblock header. */
    void*
    try_allocate_huge(std::size_t size, std::size_t align)
    {
        Policy::work(CostKind::os_map);
        std::size_t header = Superblock::header_bytes();
        std::size_t offset =
            align <= header ? header : detail::align_up(header, align);
        if (size > std::numeric_limits<std::size_t>::max() - offset)
            return nullptr;  // span would overflow; report OOM
        std::size_t total = offset + size;
        void* memory = provider_.map(total, config_.superblock_bytes);
        if (memory == nullptr)
            return nullptr;
        Superblock* sb = Superblock::create_huge(memory, total, size);
        {
            std::lock_guard<typename Policy::Mutex> guard(huge_mutex_);
            huge_list_.push_front(sb);
        }
        stats_.allocs.add();
        stats_.huge_allocs.add();
        stats_.requested_bytes.add(size);
        stats_.in_use_bytes.add(size);
        stats_.held_bytes.add(total);
        stats_.os_bytes.add(total);
        record_event(obs::EventKind::huge_alloc, 0, SizeClasses::kHuge,
                     size);
        return static_cast<char*>(memory) + offset;
    }

    void
    deallocate_huge(Superblock* sb)
    {
        Policy::work(CostKind::os_map);
        {
            std::lock_guard<typename Policy::Mutex> guard(huge_mutex_);
            huge_list_.remove(sb);
        }
        std::size_t user = sb->huge_user_bytes();
        std::size_t total = sb->span_bytes();
        stats_.frees.add();
        stats_.in_use_bytes.sub(user);
        stats_.held_bytes.sub(total);
        stats_.os_bytes.sub(total);
        sb->~Superblock();
        provider_.unmap(sb, total);
    }

    /** Destructor support: unmaps every superblock still held. */
    void
    release_everything()
    {
        for (auto& heap : heaps_) {
            for (auto& bin : heap->bins) {
                for (auto& group : bin.groups) {
                    while (Superblock* sb = group.pop_front())
                        unmap_superblock(sb);
                }
            }
            while (Superblock* sb = heap->empty_list.pop_front())
                unmap_superblock(sb);
        }
        while (Superblock* sb = huge_list_.pop_front())
            unmap_superblock(sb);
    }

    void
    unmap_superblock(Superblock* sb)
    {
        std::size_t bytes = sb->span_bytes();
        sb->~Superblock();
        provider_.unmap(sb, bytes);
    }

    void
    check_heap(Heap& heap)
    {
        std::lock_guard<typename Heap::Mutex> guard(heap.mutex);
        std::size_t used_sum = 0;
        std::size_t held_sum = 0;
        std::size_t uncarved = 0;  // header + tail remainder per sb
        std::size_t active_classes = 0;
        for (std::size_t cls = 0; cls < heap.bins.size(); ++cls) {
            auto& bin = heap.bins[cls];
            bool any = false;
            for (int g = 0; g < Superblock::kGroupCount; ++g)
                any = any || !bin.groups[g].empty();
            if (any)
                ++active_classes;
            for (int g = 0; g < Superblock::kGroupCount; ++g) {
                for (Superblock* sb = bin.groups[g].front(); sb != nullptr;
                     sb = bin.groups[g].next(sb)) {
                    HOARD_CHECK(sb->size_class() ==
                                static_cast<int>(cls));
                    HOARD_CHECK(sb->fullness_group() == g);
                    HOARD_CHECK(sb->owner() == &heap);
                    HOARD_CHECK(sb->used() <= sb->capacity());
                    used_sum += sb->used_bytes();
                    held_sum += sb->span_bytes();
                    uncarved += sb->span_bytes() -
                                static_cast<std::size_t>(sb->capacity()) *
                                    sb->block_bytes();
                }
            }
        }
        for (Superblock* sb = heap.empty_list.front(); sb != nullptr;
             sb = heap.empty_list.next(sb)) {
            HOARD_CHECK(sb->empty());
            held_sum += sb->span_bytes();
        }
        HOARD_CHECK(used_sum == heap.in_use);
        HOARD_CHECK(held_sum == heap.held);

        if (heap.index != 0) {
            // Emptiness invariant, in the form the algorithm actually
            // guarantees at an arbitrary instant:
            //
            //   u >= (1-t) * (a - allowance) - K*S
            //
            // with t the victim release threshold: the transfer loop
            // stops either restored (u >= (1-f)a, stronger since
            // t >= f) or because no superblock is t-empty, i.e. every
            // superblock has used > (1-t)*capacity.  The allowance
            // covers (a) bytes a superblock cannot carve into blocks
            // (header + tail remainder); (b) one *fetched* superblock
            // per active size class — enforcement runs on free only
            // (paper Figure 3), and an allocation may pull one partial
            // superblock per class from the global heap between frees;
            // (c) one superblock of transient for the free currently
            // in flight on another thread.
            const double t = config_.release_threshold;
            const std::size_t S = config_.superblock_bytes;
            const std::size_t k_slack =
                config_.slack_superblocks * S + S;
            const std::size_t allowance =
                uncarved + (active_classes + 1) * S;
            bool ok =
                heap.in_use + k_slack >= heap.held ||
                static_cast<double>(heap.in_use) >=
                    (1.0 - t) *
                            static_cast<double>(heap.held - std::min(
                                                    allowance,
                                                    heap.held)) -
                        static_cast<double>(k_slack);
            HOARD_CHECK(ok);
        }
    }

    const Config config_;
    os::PageProvider& provider_;
    SizeClasses classes_;
    std::vector<std::unique_ptr<Heap>> heaps_;
    std::vector<std::unique_ptr<ThreadCacheSlot>> caches_;
    typename Policy::Mutex huge_mutex_;
    SuperblockList huge_list_;
    detail::AllocatorStats stats_;
    /// Event rings; non-null only while tracing is enabled.
    std::unique_ptr<obs::EventRecorder> recorder_;
    /// Gauge time series; non-null only when tracing is enabled and
    /// Config::obs_sample_interval > 0.
    std::unique_ptr<obs::TimeSeriesSampler> sampler_;
};

}  // namespace hoard

#endif  // HOARD_CORE_HOARD_ALLOCATOR_H_
