/**
 * @file
 * The Hoard allocator (paper §3, Figures 2-3).
 *
 * Structure: P per-processor heaps plus one global heap (heap 0).  A
 * thread allocates from heap `1 + (tid mod P)`.  Each heap tracks the
 * bytes it holds (a_i) and the bytes in use by the program (u_i) and
 * maintains the emptiness invariant
 *
 *     u_i >= a_i - K*S   or   u_i >= (1 - f) * a_i
 *
 * by transferring a superblock that is at least f empty to the global
 * heap whenever a free leaves both conditions violated.  That invariant
 * is the paper's central device: it bounds blowup to O(1) and makes the
 * expected synchronization per operation constant.
 *
 * The global heap itself is *sharded* (the scalloc direction — global
 * structures must scale too, PAPERS.md): one GlobalBin per size class,
 * each with its own lock and an approximate occupancy counter so
 * fetchers skip empty classes without locking; a lock-free Treiber
 * cache (superblock_cache.h) holds the completely-empty superblocks
 * any class may claim; transfers and fetches move superblocks in
 * batches (Config::global_fetch_batch) so one lock round trip lands or
 * pulls several; and the huge-object list is striped across
 * kHugeStripes locks.  Together heap 0 is a logical construct — u_0 /
 * a_0 are sums over the bins plus the cache — and no single mutex
 * serializes the slow path.
 *
 * The class is templated on an execution policy (NativePolicy /
 * SimPolicy) so the identical algorithm runs under real threads and on
 * the virtual-time multiprocessor that regenerates the paper's figures.
 *
 * Fast path (extension over the paper, see docs/ARCHITECTURE.md): with
 * Config::thread_cache_blocks > 0 each logical thread keeps per-class
 * *magazines* of free blocks (magazine.h).  malloc/free on a warm
 * magazine is lock-free and touches no shared statistics; magazines
 * refill and spill in batches of Config::thread_cache_batch blocks
 * under a single heap-lock acquisition, and the cached-bytes gauge is
 * synced once per batch.  Each heap additionally owns a lock-free MPSC
 * remote-free queue: a free whose owning heap's lock is busy is pushed
 * there instead of blocking, and the owner settles the whole chain
 * with one exchange the next time it holds its lock.
 */

#ifndef HOARD_CORE_HOARD_ALLOCATOR_H_
#define HOARD_CORE_HOARD_ALLOCATOR_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/failure.h"
#include "common/mathutil.h"
#include "common/memutil.h"
#include "common/stats.h"
#include "core/allocator.h"
#include "core/background.h"
#include "core/config.h"
#include "core/heap.h"
#include "core/magazine.h"
#include "core/size_classes.h"
#include "core/superblock.h"
#include "core/superblock_cache.h"
#include "obs/event_ring.h"
#include "obs/gating.h"
#include "obs/heap_profiler.h"
#include "obs/latency.h"
#include "obs/snapshot.h"
#include "obs/timeseries.h"
#include "os/page_provider.h"
#include "policy/cost_kind.h"

namespace hoard {
namespace detail {

/**
 * Process-unique id stamped into every superblock an allocator
 * instance formats, so the hardened free path can tell "this span
 * belongs to a *different* HoardAllocator" apart from "this span is
 * not a superblock at all".  Shared across policy instantiations (one
 * counter for the process, not one per template), starting at 1 so the
 * default Superblock arena 0 never matches a hardened allocator.
 */
inline std::uint32_t
next_arena_id()
{
    static std::atomic<std::uint32_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

/** Hoard allocator, parameterized by execution policy. */
template <typename Policy>
class HoardAllocator final : public Allocator
{
  public:
    using Heap = HoardHeap<Policy>;
    using Base = HeapBase<Policy>;
    using Bin = GlobalBin<Policy>;

    /** Lock stripes for the huge-object list. Power of two. */
    static constexpr std::size_t kHugeStripes = 8;

    explicit HoardAllocator(
        const Config& config = Config(),
        os::PageProvider& provider = os::default_page_provider())
        : config_(validated(config)),
          provider_(provider),
          classes_(config_,
                   Superblock::payload_bytes_for(config_.superblock_bytes)),
          reuse_cache_(config_.superblock_bytes,
                       static_cast<std::size_t>(classes_.count()))
    {
        // heaps_[i] is per-processor heap i+1; the global heap (0) is
        // the bins + reuse cache, not a Heap object.
        heaps_.reserve(static_cast<std::size_t>(config_.heap_count));
        for (int i = 1; i <= config_.heap_count; ++i)
            heaps_.push_back(std::make_unique<Heap>(i, classes_.count()));
        global_bins_.reserve(static_cast<std::size_t>(classes_.count()));
        for (int cls = 0; cls < classes_.count(); ++cls)
            global_bins_.push_back(std::make_unique<Bin>(cls));
        if (config_.thread_cache_blocks > 0) {
            batch_blocks_ =
                config_.thread_cache_batch != 0
                    ? config_.thread_cache_batch
                    : std::max(1u, config_.thread_cache_blocks / 2);
            magazine_id_ = detail::magazine_register_allocator();
            if (magazine_id_ != 0)
                Policy::set_thread_exit_hook(
                    &detail::magazine_thread_exit);
        }
        if constexpr (Policy::kObsEnabled) {
            if (config_.observability || obs::env_enabled()) {
                recorder_ = std::make_unique<obs::EventRecorder>(
                    config_.obs_ring_events);
                for (auto& heap : heaps_)
                    heap->mutex.set_profiled(true);
                for (auto& bin : global_bins_)
                    bin->mutex.set_profiled(true);
                if (config_.obs_sample_interval > 0) {
                    sampler_ = std::make_unique<obs::TimeSeriesSampler>(
                        config_.obs_sample_slots, heaps_.size() + 1,
                        config_.obs_sample_interval);
                }
            }
        }
        // The latency histograms gate independently of observability,
        // like the profiler: disarmed leaves latency_ null, so the hot
        // paths keep one never-taken null check on the same read-mostly
        // cache line as the profiler pointer.
        if constexpr (Policy::kObsEnabled) {
            if (config_.latency_histograms ||
                obs::latency_env_enabled()) {
                latency_ = std::make_unique<obs::LatencyCollector>(
                    config_.latency_sample_period,
                    config_.latency_outlier_cycles);
            }
        }
        // The profiler gates independently of observability: a
        // production process can attribute its heap without paying for
        // event tracing.  rate 0 leaves profiler_ null, so the hot
        // paths keep a single never-taken null check.
        if constexpr (Policy::kProfilerEnabled) {
            if (config_.profile_sample_rate > 0) {
                profiler_ = std::make_unique<obs::HeapProfiler>(
                    config_.profile_sample_rate,
                    config_.profile_site_slots,
                    config_.profile_live_slots,
                    config_.profile_max_frames,
                    static_cast<std::uint32_t>(classes_.count()));
            }
        }
        // Worker-only state; sized here, touched by nothing on the
        // foreground paths.  The engine itself is NOT started in the
        // constructor: spawning a thread can re-enter malloc (TLS
        // setup), which deadlocks a facade whose magic static is
        // mid-construction.  Embedders call start_background() once
        // the instance is reachable (the facade does so lazily).
        bg_miss_seen_.assign(static_cast<std::size_t>(classes_.count()),
                             0);
    }

    ~HoardAllocator() override
    {
        // Quiesce the background worker before anything is torn down:
        // a pass in flight may hold bin or heap locks and map fresh
        // memory, all of which must settle before release_everything.
        stop_background();
        // Unregister next: it blocks until any in-flight thread-exit
        // flush drains, and afterwards no exit hook will call back
        // into this allocator.  Surviving threads' stale nodes are
        // freed by their own exit hooks (the dead id skips the flush).
        detail::magazine_unregister_allocator(magazine_id_);
        release_everything();
    }

    HoardAllocator(const HoardAllocator&) = delete;
    HoardAllocator& operator=(const HoardAllocator&) = delete;

    /// @name Allocator interface
    /// @{

    void*
    allocate(std::size_t size) override
    {
        Policy::work(CostKind::malloc_base);
        int cls = classes_.class_for(size);
        if (cls == SizeClasses::kHuge)
            return allocate_huge(size, /*align=*/16);
        void* block = nullptr;
        if (detail::MagazineNode* node = my_magazines())
            block = magazine_pop(node, cls);
        if (block == nullptr)
            block = allocate_from_class(cls);
        if (block == nullptr)
            return nullptr;
        stats_.allocs.add();
        stats_.requested_bytes.add(size);
        stats_.in_use_bytes.add(classes_.block_size(cls));
        profile_alloc(block, size, classes_.block_size(cls),
                      static_cast<std::uint32_t>(cls));
        return block;
    }

    void
    deallocate(void* p) override
    {
        if (p == nullptr)
            return;
        Policy::work(CostKind::free_base);
        Superblock* sb;
        if (config_.hardened_free) {
            sb = resolve_for_free(p);
            if (sb == nullptr)
                return;  // rejected and reported (warn policy leaks it)
        } else {
            sb = Superblock::from_pointer(p, config_.superblock_bytes);
        }
        // Pair a sampled free once the pointer is known good; covers
        // the huge path too.  The superblock's sampled count — on the
        // header line this path already reads — gates the live-map
        // probe, so the common unsampled free touches no profiler
        // memory at all.  Only the guard stays inline: the probe
        // itself is out of line so this branch costs deallocate no
        // inlining budget (the helpers below must keep inlining
        // identically to a kProfilerEnabled=false instantiation).
        // The superblock test comes first: its header line is already
        // hot from the resolve above, so an unsampled free decides
        // without even loading profiler_.
        if constexpr (Policy::kProfilerEnabled) {
            if ((sb->huge() || sb->has_sampled()) &&
                profiler_ != nullptr) [[unlikely]]
                profile_free_slow(sb, p);
        }
        if (sb->huge()) {
            deallocate_huge(sb);
            return;
        }
        // Read before freeing: once free_block lands the block, the
        // emptied superblock can be unmapped (empty_cache_limit) and
        // sb must not be dereferenced again.
        const std::size_t block_bytes = sb->block_bytes();
        if (detail::MagazineNode* node = my_magazines()) {
            // Magazine blocks are trusted on re-allocation, so the
            // gauges settle up front as usual.
            stats_.frees.add();
            stats_.in_use_bytes.sub(block_bytes);
            magazine_push(node, sb, p);
        } else if (free_block(sb, p)) {
            // Gauges settle only after the locked path accepted the
            // block: the under-lock double-free probe may still reject
            // it, and decrementing first would wrap in_use.
            stats_.frees.add();
            stats_.in_use_bytes.sub(block_bytes);
        }
        // Tail position: no locks held here, so a due sample or purge
        // pass may take heap/bin locks without self-deadlock risk.
        maybe_sample();
        maybe_purge();
    }

    std::size_t
    usable_size(const void* p) const override
    {
        const Superblock* sb =
            Superblock::from_pointer(p, config_.superblock_bytes);
        if (sb->huge())
            return sb->huge_user_bytes();
        // The usable span runs from the given pointer to the block end
        // (aligned allocations hand out interior pointers).
        auto addr = reinterpret_cast<std::uintptr_t>(p);
        auto begin = reinterpret_cast<std::uintptr_t>(sb->block_start(p));
        return sb->block_bytes() - (addr - begin);
    }

    const detail::AllocatorStats& stats() const override { return stats_; }
    const char* name() const override { return "hoard"; }

    /// @}

    /**
     * Allocates @p size bytes aligned to @p align (power of two, at most
     * S/2).  Alignments up to 16 are free; larger ones may return an
     * interior pointer of a larger block, which deallocate() handles.
     */
    void*
    allocate_aligned(std::size_t size, std::size_t align)
    {
        if (!detail::is_pow2(align))
            HOARD_FATAL("alignment %zu is not a power of two", align);
        if (align > config_.superblock_bytes / 2) {
            HOARD_FATAL("alignment %zu exceeds S/2 = %zu", align,
                        config_.superblock_bytes / 2);
        }
        if (align <= 16)
            return allocate(size == 0 ? 1 : size);

        Policy::work(CostKind::malloc_base);
        // Find a class big enough that an aligned point with `size`
        // bytes after it must exist inside the block.
        std::size_t need = size + align;
        int cls = classes_.class_for(need);
        void* block;
        if (cls == SizeClasses::kHuge) {
            return allocate_huge(size, align);
        }
        block = allocate_from_class(cls);
        if (block == nullptr)
            return nullptr;
        stats_.allocs.add();
        stats_.requested_bytes.add(size);
        stats_.in_use_bytes.add(classes_.block_size(cls));
        auto addr = reinterpret_cast<std::uintptr_t>(block);
        // Profile with the *returned* (interior) pointer: that is the
        // one the program frees, so it is the live-map key.
        void* out = reinterpret_cast<void*>(detail::align_up(addr, align));
        profile_alloc(out, size, classes_.block_size(cls),
                      static_cast<std::uint32_t>(cls));
        return out;
    }

    const Config& config() const { return config_; }
    const SizeClasses& size_classes() const { return classes_; }
    int heap_count() const { return config_.heap_count; }

    /**
     * Best-effort memory release back to the OS: flushes the calling
     * thread's own magazines, settles every remote-free queue, then
     * unmaps every completely-empty superblock from every heap
     * (including the global heap's empty cache).  Returns the bytes
     * unmapped.  This is the reclaim step of the OOM retry path and
     * doubles as a malloc_trim-style API for long-running servers
     * reacting to memory pressure.  Takes no lock on entry; heap locks
     * are taken one at a time, so concurrent allocation stays safe
     * (and may legitimately race fresh memory in).  Foreign threads'
     * magazines stay parked — emptying them would race their owners'
     * lock-free fast paths; use flush_thread_caches() when quiesced.
     */
    std::size_t
    release_free_memory()
    {
        if (detail::MagazineNode* node = my_magazines()) {
            std::lock_guard<typename Policy::Mutex> guard(cache_mutex_);
            flush_node_locked(node);
        }
        drain_all_remote();
        std::size_t released = 0;
        for (auto& heap_ptr : heaps_) {
            Heap& heap = *heap_ptr;
            std::lock_guard<typename Heap::Mutex> guard(heap.mutex);
            for (auto& bin : heap.bins) {
                // Only band 0 can hold used == 0 superblocks.
                auto& group = bin.groups[0];
                Superblock* sb = group.front();
                while (sb != nullptr) {
                    Superblock* next = group.next(sb);
                    if (sb->empty()) {
                        group.remove(sb);
                        heap.held -= sb->span_bytes();
                        released += release_to_provider(sb);
                    }
                    sb = next;
                }
            }
        }
        // Global bins retain their own class's empties in band 0;
        // scavenge those before draining the cross-class cache.
        for (auto& bin_ptr : global_bins_) {
            Bin& bin = *bin_ptr;
            std::lock_guard<typename Bin::Mutex> guard(bin.mutex);
            auto& group = bin.groups[0];
            Superblock* sb = group.front();
            while (sb != nullptr) {
                Superblock* next = group.next(sb);
                if (sb->empty()) {
                    bin.unlink(sb, 0);
                    bin.held -= sb->span_bytes();
                    bin_empties_.fetch_sub(1,
                                           std::memory_order_relaxed);
                    released += release_to_provider(sb);
                }
                sb = next;
            }
        }
        Superblock* chain = reuse_cache_.drain();
        while (chain != nullptr) {
            Superblock* next =
                chain->cache_next.load(std::memory_order_relaxed);
            released += release_to_provider(chain);
            chain = next;
        }
        return released;
    }

    /**
     * Purge pass: decommits the payload pages of idle completely-empty
     * superblocks (the reuse cache plus the global bins' retained
     * band-0 empties) via the provider's purge(), keeping each span
     * mapped and its header formatted for O(1) revival.  Milder than
     * release_free_memory() — nothing is unmapped, the next same-class
     * fetch costs one unpurge() gauge move instead of a map syscall.
     * Eligibility: @p force takes everything; otherwise a superblock
     * must have sat idle for Config::purge_age_ticks, or
     * committed_bytes must still exceed Config::rss_target_bytes
     * (re-read per superblock, so targeting stops at the line).
     * Serialized by purge_mutex_; safe against concurrent allocation
     * (cache entries are detached while marked, bin entries are marked
     * under their bin's lock).  Returns the bytes decommitted.
     */
    std::size_t
    purge(bool force = false)
    {
        std::lock_guard<typename Policy::Mutex> guard(purge_mutex_);
        const std::uint64_t now = force ? 0 : Policy::timestamp();
        auto eligible = [&](Superblock* sb) {
            if (sb->purged())
                return false;
            if (force)
                return true;
            if (config_.purge_age_ticks != 0 &&
                now >= sb->retire_tick() + config_.purge_age_ticks)
                return true;
            return config_.rss_target_bytes != 0 &&
                   stats_.committed_bytes.current() >
                       config_.rss_target_bytes;
        };
        std::size_t released = 0;
        // The cross-class reuse cache: detach everything (so no popper
        // can adopt a half-purged span), purge the eligible, push all
        // back.  Pushing re-publishes purged spans; the fetch path
        // revives them before first use.
        Superblock* chain = reuse_cache_.drain();
        while (chain != nullptr) {
            Superblock* next =
                chain->cache_next.load(std::memory_order_relaxed);
            if (eligible(chain))
                released += purge_superblock(chain);
            reuse_cache_.push(chain);
            chain = next;
        }
        // Class-retentive empties inside the global bins: band 0 only
        // (the one band that can hold used == 0 spans), under each
        // bin's own lock.
        for (auto& bin_ptr : global_bins_) {
            Bin& bin = *bin_ptr;
            std::lock_guard<typename Bin::Mutex> bguard(bin.mutex);
            auto& group = bin.groups[0];
            for (Superblock* sb = group.front(); sb != nullptr;
                 sb = group.next(sb)) {
                if (sb->empty() && eligible(sb))
                    released += purge_superblock(sb);
            }
        }
        stats_.purge_passes.add();
        return released;
    }

    /**
     * Drains every thread's magazines back to the owning heaps and
     * settles every remote-free queue (no-op when thread caching is
     * disabled and no remote frees are pending).  Call when quiescing
     * — e.g. before reading footprint gauges or asserting leak-freedom
     * in tests.  Must not race the owning threads' fast paths: a
     * magazine is lock-free for its owner, so emptying a node under
     * cache_mutex_ is only safe once that owner has stopped mutating
     * (joined, or provably idle).
     */
    void
    flush_thread_caches()
    {
        if (magazine_id_ != 0) {
            std::lock_guard<typename Policy::Mutex> guard(cache_mutex_);
            for (detail::MagazineNode* node = cache_nodes_;
                 node != nullptr; node = node->next_in_set)
                flush_node_locked(node);
        }
        // The flush itself can remote-push (a busy owner lock); settle
        // the queues after the magazines so nothing stays in flight.
        drain_all_remote();
    }

    /// @name Introspection for tests and tables.
    /// @{

    /**
     * Writes a human-readable report of every heap: u_i/a_i, the
     * superblock population per size class with its fullness-group
     * histogram, the global empty cache, and thread-cache occupancy.
     * Takes each heap's lock briefly; intended for quiesced moments or
     * operator diagnostics, not hot paths.
     */
    void
    dump(std::ostream& os)
    {
        os << "HoardAllocator S=" << config_.superblock_bytes
           << " f=" << config_.empty_fraction
           << " K=" << config_.slack_superblocks
           << " t=" << config_.release_threshold
           << " P=" << config_.heap_count << "\n";
        os << "  heap 0 (global): in-use " << heap_in_use(0) << " held "
           << heap_held(0) << " empty-cached " << reuse_cache_.size()
           << "\n";
        for (auto& bin_ptr : global_bins_) {
            Bin& bin = *bin_ptr;
            std::lock_guard<typename Bin::Mutex> guard(bin.mutex);
            std::size_t count = 0;
            for (auto& group : bin.groups)
                count += group.size();
            if (count == 0)
                continue;
            os << "    bin " << bin.size_class << " ("
               << classes_.block_size(bin.size_class) << " B): " << count
               << " superblock(s), groups [";
            for (int g = 0; g < Superblock::kGroupCount; ++g) {
                if (g != 0)
                    os << ' ';
                os << bin.groups[g].size();
            }
            os << "]\n";
        }
        for (auto& heap_ptr : heaps_) {
            Heap& heap = *heap_ptr;
            std::lock_guard<typename Heap::Mutex> guard(heap.mutex);
            os << "  heap " << heap.index << ": in-use " << heap.in_use
               << " held " << heap.held << "\n";
            for (std::size_t cls = 0; cls < heap.bins.size(); ++cls) {
                auto& bin = heap.bins[cls];
                std::size_t count = 0;
                for (auto& group : bin.groups)
                    count += group.size();
                if (count == 0)
                    continue;
                os << "    class " << cls << " ("
                   << classes_.block_size(static_cast<int>(cls))
                   << " B): " << count << " superblock(s), groups [";
                for (int g = 0; g < Superblock::kGroupCount; ++g) {
                    if (g != 0)
                        os << ' ';
                    os << bin.groups[g].size();
                }
                os << "]\n";
            }
        }
        if (magazine_id_ != 0) {
            std::size_t cached_blocks = 0;
            std::size_t cached_bytes = 0;
            {
                std::lock_guard<typename Policy::Mutex> guard(
                    cache_mutex_);
                for (detail::MagazineNode* node = cache_nodes_;
                     node != nullptr; node = node->next_in_set) {
                    for (std::uint32_t c = 0; c < node->num_classes;
                         ++c)
                        cached_blocks += node->mags[c].count;
                    cached_bytes += node->occupancy_bytes.load(
                        std::memory_order_relaxed);
                }
            }
            os << "  thread caches: " << cached_blocks << " block(s), "
               << cached_bytes << " B\n";
        }
        os.flush();
    }

    /** u_i of heap @p i (0 = global: summed over the per-class bins). */
    std::size_t
    heap_in_use(int i)
    {
        if (i == 0) {
            std::size_t sum = 0;
            for (auto& bin : global_bins_) {
                std::lock_guard<typename Bin::Mutex> guard(bin->mutex);
                sum += bin->in_use;
            }
            return sum;
        }
        Heap& h = *heaps_[static_cast<std::size_t>(i - 1)];
        std::lock_guard<typename Heap::Mutex> guard(h.mutex);
        return h.in_use;
    }

    /** a_i of heap @p i (0 = global: bins plus the reuse cache). */
    std::size_t
    heap_held(int i)
    {
        if (i == 0) {
            std::size_t sum =
                reuse_cache_.size() * config_.superblock_bytes;
            for (auto& bin : global_bins_) {
                std::lock_guard<typename Bin::Mutex> guard(bin->mutex);
                sum += bin->held;
            }
            return sum;
        }
        Heap& h = *heaps_[static_cast<std::size_t>(i - 1)];
        std::lock_guard<typename Heap::Mutex> guard(h.mutex);
        return h.held;
    }

    /** Heap index the calling thread allocates from. */
    int
    my_heap_index() const
    {
        return 1 + Policy::thread_index() % config_.heap_count;
    }

    /**
     * Walks every heap verifying counter consistency and the emptiness
     * invariant (allowing the one-superblock transient and per-header
     * slack discussed in DESIGN.md).  Aborts on violation; returns true
     * so it can sit inside EXPECT_TRUE.
     */
    bool
    check_invariants()
    {
        // Settle pending remote frees first: they have left the in_use
        // gauge but not yet the owning heap's u_i, and the emptiness
        // invariant is only enforced when the owner visits its lock.
        drain_all_remote();
        for (auto& heap : heaps_)
            check_heap(*heap);
        std::size_t bin_empties = 0;
        for (auto& bin : global_bins_)
            bin_empties += check_bin(*bin);
        HOARD_CHECK(bin_empties ==
                    bin_empties_.load(std::memory_order_relaxed));
        return true;
    }

    /**
     * Structured snapshot of every heap: u_i/a_i, superblock population
     * per size class and fullness group, lock-contention profiles, the
     * huge list, and a copy of the global counters.  Available whether
     * or not event tracing is enabled.  Takes each heap's lock briefly
     * (one at a time, so concurrent allocation stays safe); exact
     * reconciliation against the gauges needs a quiesced allocator.
     * Under SimPolicy this must run inside a simulated thread, like any
     * other lock-taking introspection.
     */
    obs::AllocatorSnapshot
    take_snapshot()
    {
        // Phase 1: allocate every byte the snapshot will ever need.
        // In whole-process deployments (global_new.h) these
        // allocations come back through this very allocator, so they
        // must land (a) outside any heap lock — allocating under one
        // self-deadlocks — and (b) *before* the gauges are copied:
        // an allocation between the gauge copy and the heap walk is
        // seen by one side but not the other and breaks exact
        // reconciliation.
        obs::AllocatorSnapshot snap;
        snap.allocator_name = name();
        snap.superblock_bytes = config_.superblock_bytes;
        snap.empty_fraction = config_.empty_fraction;
        snap.release_threshold = config_.release_threshold;
        snap.slack_superblocks = config_.slack_superblocks;
        snap.heap_count = config_.heap_count;
        snap.global_fetch_batch = config_.global_fetch_batch;
        // heaps[0] is the synthesized global heap (the per-class bins
        // plus the reuse cache); heaps[i], i >= 1, per-processor heap i.
        snap.heaps.resize(heaps_.size() + 1);
        for (obs::HeapSnapshot& hs : snap.heaps) {
            hs.classes.resize(
                static_cast<std::size_t>(classes_.count()));
            for (std::size_t cls = 0; cls < hs.classes.size(); ++cls) {
                hs.classes[cls].size_class = static_cast<int>(cls);
                hs.classes[cls].block_bytes =
                    static_cast<std::uint32_t>(
                        classes_.block_size(static_cast<int>(cls)));
                hs.classes[cls].group_counts.assign(
                    Superblock::kGroupCount, 0);
            }
        }

        // Phase 2a: settle the remote-free queues (drain-and-
        // attribute).  Those frees already left the in_use gauge at
        // deallocate() time but not yet the owning heap's u_i;
        // draining before the gauge copy is what keeps quiesced
        // reconciliation byte-exact with remote queues in play.
        snap.remote_drained_blocks = drain_all_remote();

        // Phase 2b: thread-cache occupancy, summed from the magazine
        // nodes themselves.  The global cached-bytes gauge is synced
        // only at batch boundaries and may lag by a partial batch; the
        // per-node occupancy is exact whenever the owners are idle.
        if (magazine_id_ != 0) {
            std::lock_guard<typename Policy::Mutex> guard(cache_mutex_);
            for (detail::MagazineNode* node = cache_nodes_;
                 node != nullptr; node = node->next_in_set)
                snap.cached_bytes += node->occupancy_bytes.load(
                    std::memory_order_relaxed);
        }

        // Phase 2c: copy the gauges, then walk — allocation-free.
        snap.stats.allocs = stats_.allocs.get();
        snap.stats.frees = stats_.frees.get();
        snap.stats.in_use_bytes = stats_.in_use_bytes.current();
        snap.stats.held_bytes = stats_.held_bytes.current();
        snap.stats.committed_bytes = stats_.committed_bytes.current();
        snap.stats.purged_bytes = stats_.purged_bytes.current();
        snap.stats.reserved_bytes = provider_.reserved_bytes();
        snap.stats.cached_bytes = stats_.cached_bytes.current();
        snap.stats.superblock_allocs = stats_.superblock_allocs.get();
        snap.stats.superblock_transfers =
            stats_.superblock_transfers.get();
        snap.stats.global_fetches = stats_.global_fetches.get();
        snap.stats.huge_allocs = stats_.huge_allocs.get();
        snap.stats.oom_reclaims = stats_.oom_reclaims.get();
        snap.stats.oom_failures = stats_.oom_failures.get();
        snap.stats.remote_frees = stats_.remote_frees.get();
        snap.stats.remote_drains = stats_.remote_drains.get();
        snap.stats.batch_refills = stats_.batch_refills.get();
        snap.stats.batch_flushes = stats_.batch_flushes.get();
        snap.stats.global_bin_hits = stats_.global_bin_hits.get();
        snap.stats.global_bin_misses = stats_.global_bin_misses.get();
        snap.stats.cache_pushes = stats_.cache_pushes.get();
        snap.stats.cache_pops = stats_.cache_pops.get();
        snap.stats.purge_passes = stats_.purge_passes.get();
        snap.stats.purged_superblocks = stats_.purged_superblocks.get();
        snap.stats.revived_superblocks =
            stats_.revived_superblocks.get();
        snap.stats.bad_free_wild = stats_.bad_free_wild.get();
        snap.stats.bad_free_foreign = stats_.bad_free_foreign.get();
        snap.stats.bad_free_interior = stats_.bad_free_interior.get();
        snap.stats.bad_free_double = stats_.bad_free_double.get();
        snap.stats.bg_wakeups = stats_.bg_wakeups.get();
        snap.stats.bg_refills = stats_.bg_refills.get();
        snap.stats.bg_drains = stats_.bg_drains.get();
        snap.stats.bg_precommits = stats_.bg_precommits.get();
        snap.stats.bg_purges = stats_.bg_purges.get();
        if constexpr (Policy::kObsEnabled) {
            // Merged per-path latency histograms: fixed arrays, so no
            // allocation here either; exact at quiescence like the
            // counters above.
            if (latency_ != nullptr) {
                snap.latency = latency_->snapshot();
                snap.latency_armed = true;
            }
        }
        fill_global_snapshot(snap.heaps[0]);
        for (std::size_t i = 0; i < heaps_.size(); ++i)
            fill_heap_snapshot(*heaps_[i], snap.heaps[i + 1]);
        for (auto& stripe : huge_stripes_) {
            std::lock_guard<typename Policy::Mutex> guard(stripe.mutex);
            for (Superblock* sb = stripe.list.front(); sb != nullptr;
                 sb = stripe.list.next(sb)) {
                ++snap.huge_count;
                snap.huge_user_bytes += sb->huge_user_bytes();
                snap.huge_span_bytes += sb->span_bytes();
            }
        }

        // Phase 3: prune empty classes.  erase() only moves and
        // destroys — still no allocation.
        for (obs::HeapSnapshot& hs : snap.heaps) {
            hs.classes.erase(
                std::remove_if(hs.classes.begin(), hs.classes.end(),
                               [](const obs::ClassSnapshot& cs) {
                                   return cs.superblocks == 0;
                               }),
                hs.classes.end());
            hs.active_classes =
                static_cast<std::uint32_t>(hs.classes.size());
        }
        return snap;
    }

    /**
     * The event recorder, or nullptr when tracing is off (runtime flag
     * unset, or observability compiled out).
     */
    const obs::EventRecorder* recorder() const { return recorder_.get(); }

    /** The page substrate this instance maps through. */
    const os::PageProvider& provider() const { return provider_; }

    /** True when event tracing and lock profiling are active. */
    bool observability_enabled() const { return recorder_ != nullptr; }

    /**
     * The time-series sampler, or nullptr when sampling is off
     * (observability disabled, obs_sample_interval == 0, or
     * observability compiled out).
     */
    const obs::TimeSeriesSampler* sampler() const
    {
        return sampler_.get();
    }

    /**
     * Forces one sample at the current policy time, ignoring the
     * cadence.  For end-of-run timeline flushes and
     * gauge-reconciliation tests; must not be called with any heap
     * lock held.  Returns false only when sampling is off.  Under
     * SimPolicy this must run inside a simulated thread, like
     * take_snapshot(); a fresh checker machine's clock restarts at
     * zero, so the sample is stamped no earlier than the last
     * in-run sample (claim_flush clamps forward).
     */
    bool
    sample_now()
    {
        if constexpr (Policy::kObsEnabled) {
            if (sampler_ == nullptr)
                return false;
            take_sample(sampler_->claim_flush(Policy::timestamp()));
            return true;
        } else {
            return false;
        }
    }

    /// @}

    /// @name Background engine (core/background.h; docs/ARCHITECTURE.md).
    ///
    /// The engine is configured with Config::background_engine and
    /// *started* with start_background() — two separate acts, because
    /// spawning a thread from inside a facade's magic-static
    /// initializer can deadlock (the engine header explains).  While
    /// armed, the deallocate tail's inline purge election is folded
    /// away (purge_inline_armed_): the worker owns the purge cadence.
    /// Under SimPolicy start/stop are inert; the harness spawns
    /// bg_worker_sim as one more fiber instead.
    /// @{

    /**
     * Spawns the native worker at the Config::bg_interval_ticks
     * cadence (a tick is a nanosecond under NativePolicy).  No-op
     * when Config::background_engine is off, when already running, or
     * under policies without native threads.  Never call from inside
     * a function-local static's initializer.
     */
    void
    start_background()
    {
        if (!bg_armed_)
            return;
        bg_engine_.start(config_.bg_interval_ticks);
    }

    /** Quiesces the worker: signals, joins, leaves no pass in flight.
        Idempotent; safe when never started. */
    void
    stop_background()
    {
        bg_engine_.stop();
    }

    /** True when the engine is configured on (whether or not the
        worker thread has been started yet). */
    bool background_armed() const { return bg_armed_; }

    /** True while a native worker thread is live. */
    bool background_running() const { return bg_engine_.running(); }

    /** Wakes a running worker for an immediate pass (tests). */
    void kick_background() { bg_engine_.kick(); }

    /** Completed worker passes (engine-side mirror of bg_wakeups). */
    std::uint64_t background_passes() const
    {
        return bg_engine_.passes();
    }

    /** Work hints dropped against a full ring (telemetry). */
    std::uint64_t background_hint_drops() const
    {
        return bg_hints_.dropped();
    }

    /**
     * One worker pass, runnable from any context that holds no
     * allocator lock: services queued hints, scans the refill and
     * remote-depth watermarks, pre-commits spans, and runs the purge
     * cadence.  This is the single body both worlds execute — the
     * native thread calls it on its interval, the sim fiber from
     * bg_worker_sim — so behavior differences between worlds reduce
     * to scheduling.  Returns true when any job found work (idle
     * passes cost one hint-pop, one watermark scan, and the prewarm
     * probe).
     */
    bool
    bg_step()
    {
        Policy::work(CostKind::bg_wakeup);
        stats_.bg_wakeups.add();
        bool worked = false;
        // Hinted refills first: a hint names the exact class a
        // foreground miss just paid for, so it beats the scan to it.
        for (std::uint32_t hint = bg_hints_.pop(); hint != 0;
             hint = bg_hints_.pop()) {
            if (detail::WorkHintQueue::kind_of(hint) ==
                detail::WorkHintQueue::Kind::refill) {
                worked |= bg_refill_class(static_cast<int>(
                    detail::WorkHintQueue::arg_of(hint)));
            }
        }
        // Watermark scan: classes whose demand advanced since the last
        // pass but whose hint was dropped or predates the engine.
        for (int cls = 0; cls < classes_.count(); ++cls)
            worked |= bg_refill_class(cls);
        // Remote-free settling, deepest queues first would need a
        // sort; a flat scan is O(P + classes) and every pass.
        for (auto& heap : heaps_)
            worked |= bg_settle(*heap);
        for (auto& bin : global_bins_)
            worked |= bg_settle(*bin);
        // Pre-commit: keep bg_precommit_spans superblock spans warm in
        // the provider so the foreground fresh_map path is a tagged
        // pop with zero syscalls.
        if (config_.bg_precommit_spans != 0) {
            const std::size_t warmed = provider_.prewarm(
                config_.superblock_bytes, config_.bg_precommit_spans);
            if (warmed != 0) {
                for (std::size_t i = 0; i < warmed; ++i)
                    Policy::work(CostKind::os_commit);
                stats_.bg_precommits.add(warmed);
                record_event(obs::EventKind::bg_precommit, 0, -1,
                             warmed * config_.superblock_bytes);
                worked = true;
            }
        }
        // Purge cadence: same next_purge_tick_ election the inline
        // hook uses, so a manual maybe_purge caller and the worker
        // can never double-run an interval.
        if (purge_armed_) {
            const std::uint64_t now = Policy::timestamp();
            std::uint64_t due =
                next_purge_tick_.load(std::memory_order_relaxed);
            if (now >= due &&
                next_purge_tick_.compare_exchange_strong(
                    due, now + config_.purge_interval_ticks,
                    std::memory_order_relaxed)) {
                const std::size_t released = purge();
                stats_.bg_purges.add();
                record_event(obs::EventKind::bg_purge, 0, -1,
                             released);
                worked |= released != 0;
            }
        }
        record_event(obs::EventKind::bg_wakeup, 0, -1,
                     worked ? 1 : 0);
        return worked;
    }

    /**
     * Deterministic sim worker: the body a harness spawns as one more
     * fiber *before* Machine::run().  Bounded at @p steps passes so
     * the machine's run-to-completion scheduler and deadlock detector
     * see an ordinary finite fiber; each pass charges
     * CostKind::bg_wakeup plus whatever its jobs cost, so two
     * identical runs replay byte-identically.
     */
    void
    bg_worker_sim(int steps)
    {
        for (int i = 0; i < steps; ++i)
            bg_step();
    }

    /// @}

    /// @name Fork support (pthread_atfork; see docs/SHIM.md).
    /// @{

    /**
     * Acquires every lock this allocator owns, in a fixed total order
     * (cache mutex, then the purge mutex, then per-processor heaps by
     * index, then global bins by class, then huge stripes by slot),
     * so fork() snapshots no lock in a half-held state and no heap
     * structure mid-mutation.  The background worker is quiesced
     * *before* the first lock — it takes bin and heap locks on its
     * own schedule — and the engine's lifecycle mutex stays held
     * across the fork so no late start_background() can slip a worker
     * in mid-snapshot.  The magazine registry's own lock is taken by
     * the caller (hoard_install_atfork) *before* this, since flushes
     * can hold it while waiting on heap locks.  MmapPageProvider and
     * the reuse cache are lock-free and need no quiescing here.
     */
    void
    prepare_fork()
    {
        bg_engine_.prepare_fork();
        cache_mutex_.lock();
        purge_mutex_.lock();
        for (auto& heap : heaps_)
            heap->mutex.lock();
        for (auto& bin : global_bins_)
            bin->mutex.lock();
        for (auto& stripe : huge_stripes_)
            stripe.mutex.lock();
    }

    /** Releases every lock prepare_fork() took, in reverse order,
        then restarts the worker if the engine is armed. */
    void
    parent_after_fork()
    {
        release_fork_locks();
        bg_engine_.parent_after_fork();
        start_background();
    }

    /**
     * Child-side recovery: the forking thread (the only one alive)
     * still owns every lock prepare_fork() took, so release them,
     * then repair the pieces of state fork() can tear:
     *
     *  - the background engine's primitives are reinitialized (the
     *    worker thread does not exist in the child) and its hint
     *    queue cleared; the worker is NOT respawned here — it comes
     *    back lazily on the child's next allocation;
     *  - the reuse cache's popper count may include parent threads
     *    that no longer exist; a nonzero count would make the next
     *    release_to_provider() spin in await_poppers() forever;
     *  - the process-wide gauges are updated *outside* the heap locks
     *    (deallocate settles them after free_block returns), so a
     *    parent thread caught between its heap update and its gauge
     *    update leaves them torn.  Per-heap counters cannot tear —
     *    every mutation happens under a lock the prepare handler held
     *    across the fork — so the gauges are recounted from them.
     *
     * Dead parent threads' magazines are flushed back to the heaps
     * (their owners cannot race: they do not exist in the child), so
     * their blocks are reusable immediately; the node metadata itself
     * stays on the set list and is reused if a same-index thread
     * re-registers, else idles at a few hundred bytes per dead thread.
     */
    void
    child_after_fork()
    {
        release_fork_locks();
        bg_engine_.child_after_fork();
        bg_hints_.clear();
        reuse_cache_.reset_poppers();
        if constexpr (Policy::kObsEnabled) {
            // A dead parent thread may have held the sampler's append
            // ordering lock at the fork instant.
            if (sampler_ != nullptr)
                sampler_->child_after_fork();
        }
        flush_thread_caches();
        repair_after_fork();
        // Deliberately NO start_background() here: pthread_create
        // inside an atfork child handler runs while the process is
        // still inside fork(); the facade's lazy spawn restarts the
        // worker on the child's next allocation instead.  Embedders
        // driving the allocator directly do the same after forking.
    }

    /// @}

    /**
     * The sampling heap profiler, or null when disabled
     * (profile_sample_rate == 0 or HOARD_PROFILER compiled out).
     * Lock-free throughout, so it is safe to export from any thread at
     * any time; counters are exact only at quiescence.
     */
    const obs::HeapProfiler* profiler() const { return profiler_.get(); }

    /**
     * The latency collector, or null when disarmed
     * (Config::latency_histograms off and HOARD_LATENCY unset, or
     * observability compiled out).  Lock-free throughout; snapshots
     * are exact at quiescence.
     */
    const obs::LatencyCollector* latency() const { return latency_.get(); }

  private:
    static const Config&
    validated(const Config& config)
    {
        config.validate();
        return config;
    }

    /**
     * Sampling hook shared by every allocation path.  With the
     * profiler disarmed this is one predicted null check; armed, it
     * adds the byte countdown (load, subtract, store, branch), and
     * only a triggered sample pays for a backtrace and table insert.
     * Charges @p rounded bytes so exact mode (rate 1) samples every
     * allocation — requested can legally be 0.
     */
    void
    profile_alloc(void* block, std::size_t requested, std::size_t rounded,
                  std::uint32_t cls)
    {
        if constexpr (Policy::kProfilerEnabled) {
            if (profiler_ == nullptr) [[likely]]
                return;
            if (!profiler_->tick(Policy::thread_index(), rounded))
                [[likely]]
                return;
            profile_alloc_slow(block, requested, rounded, cls);
        } else {
            (void)block;
            (void)requested;
            (void)rounded;
            (void)cls;
        }
    }

    /**
     * The triggered-sample tail of profile_alloc: backtrace, table
     * insert, and the superblock's sampled-count bump that lets the
     * free path skip live-map probes.  Out of line and cold so the
     * 512-byte frame scratch and the record plumbing stay off the
     * malloc hot path — only the countdown and a predicted branch
     * remain inline.
     */
    __attribute__((noinline, cold)) void
    profile_alloc_slow(void* block, std::size_t requested,
                       std::size_t rounded, std::uint32_t cls)
    {
        std::uintptr_t frames[obs::HeapProfiler::kMaxFrames];
        const int depth = Policy::profile_backtrace(
            frames, config_.profile_max_frames);
        const bool live = profiler_->record_alloc(
            block, requested, rounded, cls, frames, depth,
            Policy::timestamp());
        // Count the live entry on its superblock (huge spans always
        // probe — rare).  Incremented before allocate() returns, so
        // any legal free of this pointer observes it.
        if (live && cls != obs::HeapProfiler::kHugeClass)
            Superblock::from_pointer(block, config_.superblock_bytes)
                ->sampled_inc();
    }

    /**
     * Free-side pairing for a superblock that holds sampled live
     * objects (or a huge span, which always probes).  Out of line and
     * cold for the same reason as profile_alloc_slow: deallocate
     * keeps only the armed-and-sampled guard inline.  The timestamp
     * lambda runs only on a live-map hit, so a miss never reads the
     * clock.
     */
    __attribute__((noinline, cold)) void
    profile_free_slow(Superblock* sb, void* p)
    {
        if (profiler_->on_free(p, [] { return Policy::timestamp(); }) &&
            !sb->huge())
            sb->sampled_dec();
    }

    /// @name Thread-local magazines (extension; layout in magazine.h).
    /// @{

    /**
     * The calling logical thread's magazine node for this allocator,
     * or nullptr when caching is disabled or malloc refused the
     * metadata (the caller then falls through to the locked path).
     * The fast path is one TLS-slot read plus a short chain walk kept
     * effectively O(1) by move-to-front: a thread touching one
     * allocator — the common case — matches on the first node.
     */
    detail::MagazineNode*
    my_magazines()
    {
        if (magazine_id_ == 0)
            return nullptr;
        void*& slot = Policy::thread_cache_slot();
        auto* root = static_cast<detail::MagazineRoot*>(slot);
        if (root == nullptr) {
            root = detail::magazine_root_new();
            if (root == nullptr)
                return nullptr;
            slot = root;
        }
        detail::MagazineNode* prev = nullptr;
        for (detail::MagazineNode* node = root->nodes; node != nullptr;
             prev = node, node = node->next_in_thread) {
            if (node->allocator_id != magazine_id_)
                continue;
            if (prev != nullptr) {  // move-to-front
                prev->next_in_thread = node->next_in_thread;
                node->next_in_thread = root->nodes;
                root->nodes = node;
            }
            return node;
        }
        return register_thread_node(root);
    }

    /** Cold path of my_magazines(): creates and links this thread's
        node for this allocator (thread chain + allocator set). */
    detail::MagazineNode*
    register_thread_node(detail::MagazineRoot* root)
    {
        detail::MagazineNode* node = detail::magazine_node_new(
            static_cast<std::uint32_t>(classes_.count()));
        if (node == nullptr)
            return nullptr;
        node->allocator = this;
        node->allocator_id = magazine_id_;
        node->flush_fn = &HoardAllocator::exit_flush_node;
        node->next_in_thread = root->nodes;
        root->nodes = node;
        {
            std::lock_guard<typename Policy::Mutex> guard(cache_mutex_);
            node->next_in_set = cache_nodes_;
            cache_nodes_ = node;
        }
        return node;
    }

    /** node->flush_fn target: a thread's exit hook flushing its node
        back into this (registry-pinned, still live) allocator. */
    static void
    exit_flush_node(void* allocator, detail::MagazineNode* node)
    {
        auto* self = static_cast<HoardAllocator*>(allocator);
        std::lock_guard<typename Policy::Mutex> guard(
            self->cache_mutex_);
        self->unlink_node_locked(node);
        self->flush_node_locked(node);
    }

    /**
     * Pops a block from the calling thread's magazine: two pointer
     * moves and one relaxed occupancy update — no lock, no shared-
     * gauge write.  An empty magazine refills one batch under a single
     * heap-lock acquisition; nullptr means the OS refused memory and
     * the caller takes the reclaiming slow path.
     */
    void*
    magazine_pop(detail::MagazineNode* node, int cls)
    {
        auto& mag = node->mags[static_cast<std::size_t>(cls)];
        if (mag.head == nullptr) [[unlikely]]
            return magazine_pop_slow(node, cls);
        if (tracing()) {
            record_event(obs::EventKind::cache_hit, my_heap_index(),
                         cls, classes_.block_size(cls));
        }
        if constexpr (Policy::kObsEnabled) {
            if (latency_ != nullptr && lat_tick(node)) [[unlikely]]
                return magazine_pop_timed(node, cls);
        }
        return magazine_pop_take(node, mag, cls);
    }

    /** The magazine-hit pop tail: two pointer moves and one relaxed
        occupancy update — no lock, no shared-gauge write. */
    void*
    magazine_pop_take(detail::MagazineNode* node,
                      detail::MagazineNode::Magazine& mag, int cls)
    {
        void* block = mag.head;
        Policy::touch(block, sizeof(void*), false);
        mag.head = *static_cast<void**>(block);
        --mag.count;
        node->occupancy_bytes.fetch_sub(classes_.block_size(cls),
                                        std::memory_order_relaxed);
        return block;
    }

    /** A sampled magazine hit: the same pop tail bracketed by the
        cycle clock.  noinline: one in latency_sample_period ops, and
        keeping it out of line holds magazine_pop to its unarmed size
        (see refill_magazine on inlining parity). */
    __attribute__((noinline)) void*
    magazine_pop_timed(detail::MagazineNode* node, int cls)
    {
        auto& mag = node->mags[static_cast<std::size_t>(cls)];
        const std::uint64_t t0 = Policy::cycle_timestamp();
        void* block = magazine_pop_take(node, mag, cls);
        latency_commit(obs::LatencyPath::malloc_fast, t0);
        return block;
    }

    /** The magazine-miss path: refill one batch, then pop.  Always
        timed when armed — this is a slow-path op, and the refill tags
        the deepest stage it reached (local carve, global fetch, or
        fresh map).  nullptr means the OS refused memory; the caller
        takes the reclaiming slow path (which does its own timing), so
        nothing is recorded here for a failed op.  noinline: see
        refill_magazine. */
    __attribute__((noinline)) void*
    magazine_pop_slow(detail::MagazineNode* node, int cls)
    {
        if (tracing()) {
            record_event(obs::EventKind::cache_miss, my_heap_index(),
                         cls, classes_.block_size(cls));
        }
        obs::LatencyPath stage = obs::LatencyPath::malloc_refill;
        [[maybe_unused]] std::uint64_t t0 = 0;
        if constexpr (Policy::kObsEnabled) {
            if (latency_ != nullptr)
                t0 = Policy::cycle_timestamp();
        }
        if (refill_magazine(node, cls, &stage) == 0)
            return nullptr;
        auto& mag = node->mags[static_cast<std::size_t>(cls)];
        void* block = magazine_pop_take(node, mag, cls);
        if constexpr (Policy::kObsEnabled) {
            if (latency_ != nullptr)
                latency_commit(stage, t0);
        }
        return block;
    }

    /**
     * Parks the (whole, free) block containing @p p in the calling
     * thread's magazine; a full magazine first spills one batch back
     * to the owning heaps through the bulk-return path.
     */
    void
    magazine_push(detail::MagazineNode* node, Superblock* sb, void* p)
    {
        void* block = sb->block_start(p);
        int cls = sb->size_class();
        auto& mag = node->mags[static_cast<std::size_t>(cls)];
        if (mag.count >= config_.thread_cache_blocks) [[unlikely]] {
            magazine_push_spill(node, sb, cls, block);
            return;
        }
        if constexpr (Policy::kObsEnabled) {
            if (latency_ != nullptr && lat_tick(node)) [[unlikely]] {
                magazine_push_timed(node, sb, cls, block);
                return;
            }
        }
        magazine_park(node, mag, sb, block);
    }

    /** The magazine-park tail: link the block, bump the counts. */
    void
    magazine_park(detail::MagazineNode* node,
                  detail::MagazineNode::Magazine& mag, Superblock* sb,
                  void* block)
    {
        Policy::touch(block, sizeof(void*), true);
        *static_cast<void**>(block) = mag.head;
        mag.head = block;
        ++mag.count;
        node->occupancy_bytes.fetch_add(sb->block_bytes(),
                                        std::memory_order_relaxed);
    }

    /** A sampled magazine park (free fast path).  noinline: see
        magazine_pop_timed. */
    __attribute__((noinline)) void
    magazine_push_timed(detail::MagazineNode* node, Superblock* sb,
                        int cls, void* block)
    {
        auto& mag = node->mags[static_cast<std::size_t>(cls)];
        const std::uint64_t t0 = Policy::cycle_timestamp();
        magazine_park(node, mag, sb, block);
        latency_commit(obs::LatencyPath::free_fast, t0);
    }

    /** A full magazine: spill one batch, then park.  Always timed
        when armed (slow-path op).  noinline: see refill_magazine. */
    __attribute__((noinline)) void
    magazine_push_spill(detail::MagazineNode* node, Superblock* sb,
                        int cls, void* block)
    {
        [[maybe_unused]] std::uint64_t t0 = 0;
        if constexpr (Policy::kObsEnabled) {
            if (latency_ != nullptr)
                t0 = Policy::cycle_timestamp();
        }
        spill_magazine(node, cls);
        auto& mag = node->mags[static_cast<std::size_t>(cls)];
        magazine_park(node, mag, sb, block);
        if constexpr (Policy::kObsEnabled) {
            if (latency_ != nullptr)
                latency_commit(obs::LatencyPath::free_spill, t0);
        }
    }

    /**
     * Refills @p node's magazine of @p cls with one batch carved under
     * a single acquisition of the caller's heap lock — N blocks per
     * lock round trip instead of one.  Pending remote frees are
     * settled first (the owner is visiting its lock anyway, so the
     * drain costs no extra acquisition); the emptiness invariant is
     * enforced after the carve if the drain moved anything.  Returns
     * the number of blocks parked; 0 means the OS refused memory.
     *
     * noinline: once-per-batch, and keeping it (and spill_magazine /
     * free_block) out of line holds magazine_pop/push to their
     * two-pointer-move size in every policy instantiation — otherwise
     * instrumentation growth tips GCC's inlining budget differently
     * per variant and the overhead gate compares unlike hot paths.
     *
     * @p stage is raised to the deepest stage the refill reached
     * (global fetch, fresh map) for latency attribution; may be null.
     */
    __attribute__((noinline)) std::uint32_t
    refill_magazine(detail::MagazineNode* node, int cls,
                    obs::LatencyPath* stage = nullptr)
    {
        const std::size_t block_bytes = classes_.block_size(cls);
        Heap& heap = my_heap();
        heap.mutex.lock();
        std::size_t drained = drain_remote_locked(heap);
        void* chain = nullptr;
        std::uint32_t got = 0;
        while (got < batch_blocks_) {
            int probes = 0;
            Superblock* sb = heap.find_allocatable(cls, &probes);
            for (int i = 0; i < probes; ++i)
                Policy::work(CostKind::list_op);
            if (sb == nullptr) {
                sb = fetch_from_global(cls, heap);
                if (sb != nullptr) {
                    if (stage != nullptr &&
                        *stage < obs::LatencyPath::malloc_global_fetch)
                        *stage = obs::LatencyPath::malloc_global_fetch;
                } else {
                    if (got > 0)
                        break;  // have blocks; don't map just to top up
                    sb = fresh_superblock(cls);
                    if (sb == nullptr)
                        break;  // OS exhausted; caller reclaims
                    if (stage != nullptr)
                        *stage = obs::LatencyPath::malloc_fresh_map;
                    adopt(heap, sb);
                    record_event(obs::EventKind::class_refill,
                                 heap.index, cls, sb->span_bytes());
                }
            }
            int old_group = sb->fullness_group();
            Policy::touch(sb, sizeof(Superblock), true);
            std::uint32_t n =
                sb->allocate_batch(batch_blocks_ - got, &chain);
            heap.relink(sb, old_group);
            for (std::uint32_t i = 0; i < n; ++i)
                Policy::work(CostKind::list_op);
            got += n;
        }
        heap.in_use += static_cast<std::size_t>(got) * block_bytes;
        if (drained > 0)
            maybe_release_superblock(heap);
        heap.mutex.unlock();
        if (got == 0)
            return 0;
        auto& mag = node->mags[static_cast<std::size_t>(cls)];
        HOARD_DCHECK(mag.head == nullptr && mag.count == 0);
        mag.head = chain;
        mag.count = got;
        node->occupancy_bytes.fetch_add(
            static_cast<std::size_t>(got) * block_bytes,
            std::memory_order_relaxed);
        sync_node_gauge(node);
        stats_.batch_refills.add();
        record_event(obs::EventKind::batch_refill, heap.index, cls,
                     static_cast<std::uint64_t>(got) * block_bytes);
        return got;
    }

    /**
     * Spills one batch (the most recently freed blocks) from @p
     * node's magazine of @p cls back to the owning heaps via the
     * bulk-return path: one gauge sync and one stats bump for the
     * whole batch.  noinline: see refill_magazine.
     */
    __attribute__((noinline)) void
    spill_magazine(detail::MagazineNode* node, int cls)
    {
        auto& mag = node->mags[static_cast<std::size_t>(cls)];
        std::uint32_t n = std::min(batch_blocks_, mag.count);
        if (n == 0)
            return;
        void* chain = mag.head;
        void* tail = chain;
        for (std::uint32_t i = 1; i < n; ++i) {
            Policy::touch(tail, sizeof(void*), false);
            tail = *static_cast<void**>(tail);
        }
        mag.head = *static_cast<void**>(tail);
        *static_cast<void**>(tail) = nullptr;
        mag.count -= n;
        node->occupancy_bytes.fetch_sub(
            static_cast<std::size_t>(n) * classes_.block_size(cls),
            std::memory_order_relaxed);
        sync_node_gauge(node);
        stats_.batch_flushes.add();
        record_event(obs::EventKind::batch_flush, my_heap_index(), cls,
                     static_cast<std::uint64_t>(n) *
                         classes_.block_size(cls));
        return_chain(chain);
    }

    /**
     * Empties every magazine of @p node back to the owning heaps and
     * settles the node's share of the cached-bytes gauge.  Caller
     * holds cache_mutex_ and guarantees the node's owner is not
     * concurrently on its fast path (exit hook, quiesced flush, or
     * the owner itself).
     */
    void
    flush_node_locked(detail::MagazineNode* node)
    {
        void* chain = nullptr;
        std::uint64_t blocks = 0;
        std::size_t bytes = 0;
        for (std::uint32_t cls = 0; cls < node->num_classes; ++cls) {
            auto& mag = node->mags[cls];
            blocks += mag.count;
            bytes += static_cast<std::size_t>(mag.count) *
                     classes_.block_size(static_cast<int>(cls));
            while (mag.head != nullptr) {
                void* block = mag.head;
                mag.head = *static_cast<void**>(block);
                *static_cast<void**>(block) = chain;
                chain = block;
            }
            mag.count = 0;
        }
        node->occupancy_bytes.fetch_sub(bytes,
                                        std::memory_order_relaxed);
        sync_node_gauge(node);
        if (blocks != 0) {
            stats_.batch_flushes.add();
            record_event(obs::EventKind::batch_flush, 0, -1, bytes);
            return_chain(chain);
        }
    }

    /** Removes @p node from this allocator's set list.  Caller holds
        cache_mutex_. */
    void
    unlink_node_locked(detail::MagazineNode* node)
    {
        for (detail::MagazineNode** p = &cache_nodes_; *p != nullptr;
             p = &(*p)->next_in_set) {
            if (*p == node) {
                *p = node->next_in_set;
                node->next_in_set = nullptr;
                return;
            }
        }
    }

    /**
     * Brings the global cached-bytes gauge in line with @p node's
     * exact occupancy — the only place the gauge is written, so batch
     * boundaries are the only fast-path writes to shared statistics.
     * Caller is the node's owner at a batch boundary, or a flusher
     * holding cache_mutex_ with the owner quiesced.
     */
    void
    sync_node_gauge(detail::MagazineNode* node)
    {
        std::size_t occ =
            node->occupancy_bytes.load(std::memory_order_relaxed);
        if (occ > node->synced_bytes)
            stats_.cached_bytes.add(occ - node->synced_bytes);
        else if (occ < node->synced_bytes)
            stats_.cached_bytes.sub(node->synced_bytes - occ);
        node->synced_bytes = occ;
    }

    /// @}

    /// @name Remote-free queues and bulk block return.
    /// @{

    /**
     * Returns a chain of free blocks (threaded through first words,
     * any mix of classes) to their owning heaps.  Consecutive blocks
     * of one heap reuse a single lock acquisition — the batched flush
     * that replaces a one-lock-per-victim spill loop.  A busy owner is
     * never waited on: the block goes to its lock-free remote queue
     * instead.  Each heap is settled (remote drain plus invariant
     * enforcement) once, as its lock is released.
     */
    void
    return_chain(void* chain)
    {
        Base* locked = nullptr;
        while (chain != nullptr) {
            void* block = chain;
            Policy::touch(block, sizeof(void*), false);
            chain = *static_cast<void**>(block);
            Superblock* sb = Superblock::from_pointer(
                block, config_.superblock_bytes);
            for (;;) {
                Base* owner = static_cast<Base*>(sb->owner());
                if (owner == locked) {
                    // Stable: transfers require the lock we hold.
                    free_into_locked(*locked, sb, block);
                    Policy::work(CostKind::list_op);
                    break;
                }
                if (locked != nullptr) {
                    settle_and_unlock(*locked);
                    locked = nullptr;
                }
                if (owner->mutex.is_locked_hint()) {
                    remote_free(*owner, sb, block);
                    break;
                }
                owner->mutex.lock();
                if (static_cast<Base*>(sb->owner()) == owner) {
                    locked = owner;
                    continue;
                }
                owner->mutex.unlock();
                continue;  // raced an ownership change; retry
            }
        }
        if (locked != nullptr)
            settle_and_unlock(*locked);
    }

    /** Lock-free handoff of a (whole, free) block to busy @p owner's
        remote queue (Treiber push; the owner settles it later). */
    void
    remote_free(Base& owner, Superblock* sb, void* block)
    {
        Policy::touch(block, sizeof(void*), true);
        // Capture event fields before the push publishes the block:
        // the owner may drain it, empty the superblock, and retire it
        // into the reuse cache, where a concurrent fetch reformats.
        const int cls = sb->size_class();
        const std::uint32_t bytes = sb->block_bytes();
        owner.remote_push(block);
        Policy::work(CostKind::list_op);
        stats_.remote_frees.add();
        record_event(obs::EventKind::remote_free, owner.index, cls,
                     bytes);
    }

    /**
     * Settles every block pending on @p home's remote queue; the
     * caller holds the lock.  A block whose superblock changed owner
     * while queued is re-routed (lock-free) to the current owner's
     * queue.  Returns the number of blocks settled here.  A queued
     * block has left the in_use gauge but not its superblock's used
     * count, so the superblock cannot have been retired to the reuse
     * cache — the owner read never sees null.
     */
    std::size_t
    drain_remote_locked(Base& home)
    {
        if (!home.remote_pending())
            return 0;
        // Always timed when armed (the pending probe above keeps the
        // no-work case clock-free): the owner settling its remote
        // queue is a distinct slow-path stage, nested inside whichever
        // op visited the lock.
        [[maybe_unused]] std::uint64_t t0 = 0;
        if constexpr (Policy::kObsEnabled) {
            if (latency_ != nullptr)
                t0 = Policy::cycle_timestamp();
        }
        void* chain = home.remote_drain();
        std::size_t drained = 0;
        while (chain != nullptr) {
            void* block = chain;
            Policy::touch(block, sizeof(void*), false);
            chain = *static_cast<void**>(block);
            Superblock* sb = Superblock::from_pointer(
                block, config_.superblock_bytes);
            Base* owner = static_cast<Base*>(sb->owner());
            if (owner != &home) {
                owner->remote_push(block);
                continue;
            }
            free_into_locked(home, sb, block);
            Policy::work(CostKind::list_op);
            ++drained;
        }
        if (drained != 0) {
            stats_.remote_drains.add(drained);
            if constexpr (Policy::kObsEnabled) {
                if (latency_ != nullptr)
                    latency_commit(obs::LatencyPath::owner_drain, t0);
            }
        }
        return drained;
    }

    /**
     * Drains every remote queue, enforcing the emptiness invariant on
     * each per-processor heap it settles.  Per-processor heaps first,
     * the global bins last: on a quiesced allocator the only re-routes
     * a drain can generate point global-ward (the drain's own
     * enforcement is the only thing moving ownership, heap to bin;
     * bin-to-heap moves only happen in fetches, none of which are in
     * flight), so this order leaves every queue empty.  Returns the
     * total blocks settled.
     */
    std::uint64_t
    drain_all_remote()
    {
        std::uint64_t drained = 0;
        for (auto& heap : heaps_)
            drained += drain_home_remote(*heap);
        for (auto& bin : global_bins_)
            drained += drain_home_remote(*bin);
        return drained;
    }

    /** One home's share of drain_all_remote(); takes the lock only
        when the cheap pending probe says there is work. */
    std::uint64_t
    drain_home_remote(Base& home)
    {
        if (!home.remote_pending())
            return 0;
        std::lock_guard<typename Base::Mutex> guard(home.mutex);
        std::size_t n = drain_remote_locked(home);
        if (home.index != 0 && n != 0)
            maybe_release_superblock(static_cast<Heap&>(home));
        return n;
    }

    /** Drains pending remote frees, enforces the emptiness invariant
        (per-processor heaps only), and releases @p home's lock. */
    void
    settle_and_unlock(Base& home)
    {
        drain_remote_locked(home);
        if (home.index != 0)
            maybe_release_superblock(static_cast<Heap&>(home));
        home.mutex.unlock();
    }

    /// @}

    /**
     * True when events should be recorded.  A constant false when
     * observability is compiled out, so `if (tracing())` folds away
     * along with its argument computations.
     */
    bool
    tracing() const
    {
        if constexpr (Policy::kObsEnabled)
            return recorder_ != nullptr;
        else
            return false;
    }

    /**
     * Records one trace event.  Compiles to nothing when observability
     * is off at build time; costs one predicted branch when tracing is
     * off at run time.  Safe to call with or without heap locks held
     * (the ring is lock-free).
     */
    void
    record_event(obs::EventKind kind, int heap, int size_class,
                 std::uint64_t bytes)
    {
        if constexpr (Policy::kObsEnabled) {
            if (recorder_ != nullptr) {
                recorder_->record(Policy::timestamp(),
                                  Policy::thread_index(), kind, heap,
                                  size_class, bytes);
            }
        } else {
            (void)kind;
            (void)heap;
            (void)size_class;
            (void)bytes;
        }
    }

    /// @name Latency instrumentation (obs/latency.h).
    ///
    /// Timing discipline: *slow-path* operations (magazine refill and
    /// anything deeper, spills, huge allocs/frees, owner drains) are
    /// always timed when armed — they are rare and they are where the
    /// tail lives.  *Fast-path* operations (magazine hit/park, locked
    /// local alloc/free) are timed one in Config::latency_sample_period
    /// per thread, so the armed overhead of an untimed fast op is one
    /// null check plus one in-cache countdown decrement (on the
    /// magazine node when there is one, a thread_local otherwise;
    /// lat_tick below).  Period 1
    /// times everything: histogram counts then reconcile exactly with
    /// the allocator's op counters (the integration tests' mode).
    /// Every record is made at most once per operation, and only for
    /// operations the op counters count (an OOM-null allocation or a
    /// rejected bad free records nothing).
    /// @{

    /**
     * Fast-path sampling countdown for magazine ops.  Same cadence as
     * LatencyCollector::tick() but the counter lives on the caller's
     * magazine node — the node pointer is already in a register and
     * its cache line already dirty, so the untimed armed cost is one
     * L1 RMW plus a predicted branch (a thread_local would add a GOT
     * load and a %fs-relative access).  Caller has checked latency_.
     */
    bool
    lat_tick(detail::MagazineNode* node)
    {
        if (--node->lat_countdown != 0) [[likely]]
            return false;
        node->lat_countdown = latency_->sample_period();
        return true;
    }

    /**
     * Records one timed op ending now.  Caller has checked latency_.
     * The outlier test rides the same branch misprediction budget:
     * with the knob unset is_outlier is one always-false compare.
     */
    void
    latency_commit(obs::LatencyPath path, std::uint64_t t0)
    {
        if constexpr (Policy::kObsEnabled) {
            const std::uint64_t elapsed =
                Policy::cycle_timestamp() - t0;
            latency_->record(Policy::thread_index(), path, elapsed);
            if (latency_->is_outlier(elapsed)) [[unlikely]]
                latency_outlier_slow(path, elapsed);
        } else {
            (void)path;
            (void)t0;
        }
    }

    /**
     * Outlier capture: an event-ring trace record (stage in the
     * size_class field, cycles in bytes) plus a collector-ring entry
     * with a frame-pointer backtrace.  noinline+cold: never on the
     * non-outlier path's inlining budget.
     */
    __attribute__((noinline, cold)) void
    latency_outlier_slow(obs::LatencyPath path, std::uint64_t elapsed)
    {
        if constexpr (Policy::kObsEnabled) {
            std::uintptr_t
                frames[obs::LatencyCollector::kMaxOutlierFrames];
            int n = Policy::profile_backtrace(
                frames, obs::LatencyCollector::kMaxOutlierFrames);
            latency_->record_outlier(Policy::timestamp(),
                                     Policy::thread_index(), path,
                                     elapsed, frames, n);
            record_event(obs::EventKind::latency_outlier,
                         my_heap_index(), static_cast<int>(path),
                         elapsed);
        } else {
            (void)path;
            (void)elapsed;
        }
    }

    /// @}

    /// Frees between cadence checks.  The residue rides only on
    /// deallocate() (one thread_local decrement per free, a clock read
    /// every kSampleCheckPeriod frees) to stay inside the
    /// micro_obs_overhead --check idle budget; frees track churn, and
    /// alloc-only growth phases are covered by the sample_now() flush.
    static constexpr unsigned kSampleCheckPeriod = 256;

    /**
     * Takes a time-series sample if one is due.  Called only at the
     * tail of deallocate(), where no locks are held — take_sample()
     * acquires each heap's lock one at a time, which would
     * self-deadlock from inside a locked region in whole-process
     * deployments (global_new.h).  Compiles to nothing when
     * observability is off at build time; when sampling is off at run
     * time the cost is one null check per free.
     */
    void
    maybe_sample()
    {
        if constexpr (Policy::kObsEnabled) {
            if (sampler_ == nullptr)
                return;
            thread_local unsigned countdown = kSampleCheckPeriod;
            if (--countdown != 0)
                return;
            countdown = kSampleCheckPeriod;
            std::uint64_t now = Policy::timestamp();
            if (!sampler_->claim_due(now))
                return;
            take_sample(now);
        }
    }

    /**
     * Records one sample stamped @p now: global gauges and counters
     * first, then every heap's u_i/a_i under its lock (one lock at a
     * time; nothing here allocates, so this is safe in whole-process
     * deployments).  A racing reader may see the sample half-filled —
     * same relaxed-atomic contract as the event rings.
     */
    void
    take_sample(std::uint64_t now)
    {
        if constexpr (Policy::kObsEnabled) {
            // Drain-and-attribute, like take_snapshot(): settle pending
            // remote frees so per-heap u_i matches the gauges, and sum
            // cached bytes from the magazine nodes (the global gauge
            // lags by up to a partial batch per thread).
            drain_all_remote();
            std::uint64_t cached = 0;
            if (magazine_id_ != 0) {
                std::lock_guard<typename Policy::Mutex> guard(
                    cache_mutex_);
                for (detail::MagazineNode* node = cache_nodes_;
                     node != nullptr; node = node->next_in_set)
                    cached += node->occupancy_bytes.load(
                        std::memory_order_relaxed);
            }
            obs::TimeSeriesSampler::Writer writer =
                sampler_->begin_sample(now);
            writer.set_gauges(stats_.in_use_bytes.current(),
                              stats_.held_bytes.current(),
                              stats_.committed_bytes.current(), cached);
            writer.set_vm(provider_.reserved_bytes(),
                          stats_.purged_bytes.current());
            writer.set_counters(stats_.allocs.get(), stats_.frees.get(),
                                stats_.superblock_transfers.get(),
                                stats_.global_fetches.get());
            writer.set_slowpath(stats_.global_bin_hits.get(),
                                stats_.global_bin_misses.get(),
                                stats_.cache_pushes.get(),
                                stats_.cache_pops.get());
            writer.set_bad_frees(stats_.bad_free_wild.get(),
                                 stats_.bad_free_foreign.get(),
                                 stats_.bad_free_interior.get(),
                                 stats_.bad_free_double.get());
            writer.set_bg(stats_.bg_wakeups.get(),
                          stats_.bg_refills.get(),
                          stats_.bg_drains.get(),
                          stats_.bg_precommits.get(),
                          stats_.bg_purges.get());
            if constexpr (Policy::kProfilerEnabled) {
                if (profiler_ != nullptr) {
                    const obs::ProfilerTotals pt = profiler_->totals();
                    writer.set_profiler(pt.sampled_requested,
                                        pt.sampled_rounded);
                }
            }
            if (latency_ != nullptr) {
                // LatencySnapshot is fixed-size arrays on the stack —
                // no allocation, so the no-alloc contract above holds.
                const obs::LatencySnapshot lat = latency_->snapshot();
                for (int p = 0; p < obs::kLatencyPathCount; ++p)
                    writer.set_latency(
                        p, lat.paths[static_cast<std::size_t>(p)].count(),
                        static_cast<std::uint64_t>(
                            lat.paths[static_cast<std::size_t>(p)]
                                .percentile(99.0)));
            }
            writer.set_heap(0, heap_in_use(0), heap_held(0));
            for (std::size_t i = 0; i < heaps_.size(); ++i) {
                Heap& heap = *heaps_[i];
                std::lock_guard<typename Heap::Mutex> guard(heap.mutex);
                writer.set_heap(i + 1, heap.in_use, heap.held);
            }
        } else {
            (void)now;
        }
    }

    /**
     * Fills one heap's snapshot in place; takes and releases the
     * heap's lock.  @p hs arrives with every vector pre-sized by
     * take_snapshot() — nothing here may allocate.  Allocating under
     * the heap lock would self-deadlock whole-process deployments
     * (global_new.h), and allocating at all between the gauge copy and
     * this walk would break exact reconciliation.  LockStats is safe
     * to copy under the lock: its histogram is a fixed std::array.
     */
    void
    fill_heap_snapshot(Heap& heap, obs::HeapSnapshot& hs)
    {
        std::lock_guard<typename Heap::Mutex> guard(heap.mutex);
        hs.index = heap.index;
        hs.in_use = heap.in_use;
        hs.held = heap.held;
        hs.empty_cached = 0;  // per-proc heaps cache no empties
        for (std::size_t cls = 0; cls < heap.bins.size(); ++cls) {
            auto& bin = heap.bins[cls];
            obs::ClassSnapshot& cs = hs.classes[cls];
            for (int g = 0; g < Superblock::kGroupCount; ++g) {
                for (Superblock* sb = bin.groups[g].front();
                     sb != nullptr; sb = bin.groups[g].next(sb)) {
                    ++cs.group_counts[static_cast<std::size_t>(g)];
                    ++cs.superblocks;
                    cs.used_blocks += sb->used();
                    cs.capacity_blocks += sb->capacity();
                    hs.uncarved +=
                        sb->span_bytes() -
                        static_cast<std::size_t>(sb->capacity()) *
                            sb->block_bytes();
                }
            }
        }
        if constexpr (Policy::kObsEnabled)
            hs.lock = heap.mutex.stats_locked();
    }

    /**
     * Synthesizes heap 0's snapshot from the per-class bins and the
     * reuse cache, one bin lock at a time.  Lock profiles are summed
     * across the bins (histogram merge) so the heap-0 contention row
     * keeps meaning "the global heap" after the sharding.  Same
     * no-allocation contract as fill_heap_snapshot().
     */
    void
    fill_global_snapshot(obs::HeapSnapshot& hs)
    {
        hs.index = 0;
        for (auto& bin_ptr : global_bins_) {
            Bin& bin = *bin_ptr;
            std::lock_guard<typename Bin::Mutex> guard(bin.mutex);
            hs.in_use += bin.in_use;
            hs.held += bin.held;
            obs::ClassSnapshot& cs =
                hs.classes[static_cast<std::size_t>(bin.size_class)];
            for (int g = 0; g < Superblock::kGroupCount; ++g) {
                for (Superblock* sb = bin.groups[g].front();
                     sb != nullptr; sb = bin.groups[g].next(sb)) {
                    ++cs.group_counts[static_cast<std::size_t>(g)];
                    ++cs.superblocks;
                    cs.used_blocks += sb->used();
                    cs.capacity_blocks += sb->capacity();
                    hs.uncarved +=
                        sb->span_bytes() -
                        static_cast<std::size_t>(sb->capacity()) *
                            sb->block_bytes();
                }
            }
            if constexpr (Policy::kObsEnabled) {
                obs::LockStats ls = bin.mutex.stats_locked();
                hs.lock.acquires += ls.acquires;
                hs.lock.contended += ls.contended;
                hs.lock.wait.merge(ls.wait);
            }
        }
        hs.empty_cached = reuse_cache_.size();
        hs.held += hs.empty_cached * config_.superblock_bytes;
    }

    Heap&
    my_heap()
    {
        return *heaps_[static_cast<std::size_t>(my_heap_index() - 1)];
    }

    /**
     * Graceful-degradation wrapper around the class allocation path:
     * when the provider refuses memory, reclaim everything reclaimable
     * (thread caches, empty superblocks across all heaps) and retry
     * exactly once before reporting OOM to the caller.  All heap
     * accounting is already settled when the try-path reports failure,
     * so the retry observes a consistent allocator.
     */
    void*
    allocate_from_class(int cls)
    {
        if constexpr (Policy::kObsEnabled) {
            if (latency_ != nullptr) [[unlikely]]
                return allocate_from_class_timed(cls);
        }
        void* block = try_allocate_from_class(cls);
        if (block == nullptr) {
            stats_.oom_reclaims.add();
            record_event(obs::EventKind::oom_reclaim, my_heap_index(),
                         cls, classes_.block_size(cls));
            release_free_memory();
            block = try_allocate_from_class(cls);
            if (block == nullptr)
                stats_.oom_failures.add();
        }
        return block;
    }

    /**
     * allocate_from_class with the latency probe threaded through.
     * With magazines off this is malloc's per-op path, so the local
     * hit is *sampled* (tick); the probe self-arms at slow-path entry
     * regardless, so refills/fetches/maps are always timed — from op
     * start when the countdown selected the op, from slow-path entry
     * otherwise (exact mode, period 1, always times from the start).
     * Records only ops that return a block, like the counters.
     * noinline: armed-only, off the disarmed comparison's budget.
     */
    __attribute__((noinline)) void*
    allocate_from_class_timed(int cls)
    {
        obs::LatencyProbe probe;
        if (latency_->tick())
            probe.begin(Policy::cycle_timestamp());
        void* block = try_allocate_from_class(cls, &probe);
        if (block == nullptr) {
            stats_.oom_reclaims.add();
            record_event(obs::EventKind::oom_reclaim, my_heap_index(),
                         cls, classes_.block_size(cls));
            release_free_memory();
            block = try_allocate_from_class(cls, &probe);
            if (block == nullptr)
                stats_.oom_failures.add();
        }
        if (block != nullptr && probe.active)
            latency_commit(probe.stage, probe.t0);
        return block;
    }

    /** malloc slow+fast path for a non-huge class (paper Figure 2).
        @p probe, when non-null, is armed at slow-path entry and
        raised to the deepest stage reached. */
    void*
    try_allocate_from_class(int cls, obs::LatencyProbe* probe = nullptr)
    {
        const std::size_t block_bytes = classes_.block_size(cls);
        Heap& heap = my_heap();
        std::lock_guard<typename Heap::Mutex> guard(heap.mutex);

        int probes = 0;
        Superblock* sb = heap.find_allocatable(cls, &probes);
        for (int i = 0; i < probes; ++i)
            Policy::work(CostKind::list_op);

        if (sb == nullptr) {
            if constexpr (Policy::kObsEnabled) {
                if (probe != nullptr)
                    probe->begin(Policy::cycle_timestamp());
            }
            sb = fetch_from_global(cls, heap);
            if (sb != nullptr) {
                if constexpr (Policy::kObsEnabled) {
                    if (probe != nullptr)
                        probe->raise(
                            obs::LatencyPath::malloc_global_fetch);
                }
            } else {
                sb = fresh_superblock(cls);
                if (sb == nullptr)
                    return nullptr;  // OS exhausted
                if constexpr (Policy::kObsEnabled) {
                    if (probe != nullptr)
                        probe->raise(obs::LatencyPath::malloc_fresh_map);
                }
                // A fresh superblock is invisible to other threads (no
                // block of it has escaped), so adopting it outside the
                // global lock is race-free.
                adopt(heap, sb);
                record_event(obs::EventKind::class_refill, heap.index,
                             cls, sb->span_bytes());
            }
        }

        int old_group = sb->fullness_group();
        Policy::touch(sb, sizeof(Superblock), true);
        void* block = sb->allocate();
        heap.in_use += block_bytes;
        heap.relink(sb, old_group);
        Policy::work(CostKind::list_op);
        return block;
    }

    /**
     * free path for a non-huge block (paper Figure 3, with the remote
     * queue replacing the paper's blocking lock).  The owner may change
     * between the read and the lock (another thread can transfer the
     * superblock), so re-check under the lock and retry on a mismatch
     * (paper §3.4).  An owner observed *busy* (is_locked_hint, a
     * relaxed probe — cheaper than a failed try_lock) is not waited
     * on: the block goes to its lock-free remote queue and the owner
     * settles it at its next lock visit.
     *
     * Returns false when the hardened under-lock double-free probe
     * rejected the block (reported; nothing was freed) — the caller
     * then leaves the gauges untouched.  The remote-queue path skips
     * the probe (best-effort: the owner's state can't be examined
     * without its lock) and always reports success.
     *
     * noinline: lock-bound, and see refill_magazine.
     */
    __attribute__((noinline)) bool
    free_block(Superblock* sb, void* p)
    {
        // Sampled timing: with magazines off this is free's per-op
        // path.  The countdown decides up front; the stage is whichever
        // branch the op takes (owner-locked accept = free_fast, busy
        // owner = free_remote_push).  A rejected double free records
        // nothing, matching the untouched op counters.
        [[maybe_unused]] std::uint64_t t0 = 0;
        [[maybe_unused]] bool timed = false;
        if constexpr (Policy::kObsEnabled) {
            if (latency_ != nullptr && latency_->tick()) [[unlikely]] {
                timed = true;
                t0 = Policy::cycle_timestamp();
            }
        }
        void* block = sb->block_start(p);
        for (;;) {
            Base* home = static_cast<Base*>(sb->owner());
            if (home->mutex.is_locked_hint()) {
                remote_free(*home, sb, block);
                if constexpr (Policy::kObsEnabled) {
                    if (timed)
                        latency_commit(
                            obs::LatencyPath::free_remote_push, t0);
                }
                return true;
            }
            // The hint can go stale before the acquire; then we block
            // briefly (the paper's behavior), which is still correct.
            home->mutex.lock();
            if (static_cast<Base*>(sb->owner()) != home) {
                home->mutex.unlock();
                continue;
            }
            if (config_.hardened_free &&
                (sb->used() == 0 || sb->free_list_head() == block)) {
                // Stable under the owner's lock: a used_ of zero or
                // the block already heading the free list is a double
                // free.  Deeper list scans are deliberately skipped —
                // O(1) keeps the check inside the overhead gate.
                home->mutex.unlock();
                report_bad_free(stats_.bad_free_double, "double", p,
                                sb->size_class());
                return false;
            }
            free_into_locked(*home, sb, block);
            Policy::work(CostKind::list_op);
            settle_and_unlock(*home);
            if constexpr (Policy::kObsEnabled) {
                if (timed)
                    latency_commit(obs::LatencyPath::free_fast, t0);
            }
            return true;
        }
    }

    /**
     * Hardened free path (Config::hardened_free): classifies @p p
     * before any heap structure is touched.  Returns the superblock
     * when the pointer is plausible, nullptr when it was rejected and
     * reported (the fatal policy never returns).  Every probe is a
     * lock-free read of memory free() touches anyway:
     *
     *  1. range: outside the hull of every span this process ever
     *     mapped -> wild.  The bounds are relaxed atomics, but a valid
     *     pointer crossing threads implies an app-level happens-before
     *     edge that publishes the bound stores sequenced before
     *     allocate() returned it, so a valid free never false-fires.
     *  2. header magic mismatch -> wild (not a superblock).
     *  3. arena-id mismatch -> foreign (another allocator's span).
     *  4. huge: anything but the exact pointer handed out -> interior.
     *  5. small: an implausible class/block-size pairing -> foreign
     *     (reformatted foreign span); outside the carved payload ->
     *     interior (header or tail remainder); a cleared owner means
     *     the superblock sits empty in the reuse cache, so the block
     *     was already freed -> double.
     *
     * A pointer *interior to a block* is legitimate (aligned
     * allocations hand those out) and passes; only pointers no
     * allocation path can have produced are rejected.  Blocks parked
     * in thread magazines are re-handed out without these checks, and
     * the remote-free path skips the under-lock double probe — the
     * hardening is best-effort by design (docs/SHIM.md).
     *
     * always_inline: this is deallocate's hot prefix under the
     * default hardened_free, and the accept path is a handful of
     * header compares against data the free path loads anyway.  Left
     * to the heuristics, instrumented instantiations outline it (a
     * call per free) while uninstrumented ones inline it, and the
     * overhead gate ends up comparing unlike free paths.
     */
    inline __attribute__((always_inline)) Superblock*
    resolve_for_free(void* p)
    {
        auto addr = reinterpret_cast<std::uintptr_t>(p);
        if (addr < mapped_lo_.load(std::memory_order_relaxed) ||
            addr >= mapped_hi_.load(std::memory_order_relaxed)) {
            return report_bad_free(stats_.bad_free_wild, "wild", p, -1);
        }
        Superblock* sb = Superblock::from_pointer_checked(
            p, config_.superblock_bytes);
        if (sb == nullptr)
            return report_bad_free(stats_.bad_free_wild, "wild", p, -1);
        if (sb->arena() != arena_id_) {
            return report_bad_free(stats_.bad_free_foreign, "foreign",
                                   p, sb->size_class());
        }
        if (sb->huge()) {
            std::size_t offset =
                sb->span_bytes() - sb->huge_user_bytes();
            if (addr != reinterpret_cast<std::uintptr_t>(sb) + offset) {
                return report_bad_free(stats_.bad_free_interior,
                                       "interior", p,
                                       SizeClasses::kHuge);
            }
            return sb;
        }
        int cls = sb->size_class();
        if (cls < 0 || cls >= classes_.count() ||
            sb->block_bytes() != classes_.block_size(cls)) {
            return report_bad_free(stats_.bad_free_foreign, "foreign",
                                   p, cls);
        }
        auto base = reinterpret_cast<std::uintptr_t>(sb->payload_begin());
        if (addr < base ||
            addr >= base + static_cast<std::size_t>(sb->capacity()) *
                               sb->block_bytes()) {
            return report_bad_free(stats_.bad_free_interior, "interior",
                                   p, cls);
        }
        if (sb->owner() == nullptr) {
            return report_bad_free(stats_.bad_free_double, "double", p,
                                   cls);
        }
        return sb;
    }

    /**
     * Reports one rejected free per Config::on_bad_free: fatal aborts
     * with a diagnostic; warn bumps @p counter, records a trace event,
     * and leaks the block.  Returns nullptr so rejection sites can
     * `return report_bad_free(...)`.  noinline, cold: rejection is
     * the exceptional outcome, and compact call sites keep the
     * always-inlined resolve_for_free from bloating deallocate.
     */
    __attribute__((noinline, cold)) Superblock*
    report_bad_free(detail::Counter& counter, const char* kind,
                    const void* p, int size_class)
    {
        if (config_.on_bad_free == Config::BadFreePolicy::fatal) {
            HOARD_FATAL("bad free (%s) of pointer %p (size class %d)",
                        kind, p, size_class);
        }
        counter.add();
        record_event(obs::EventKind::bad_free, 0, size_class, 0);
        return nullptr;
    }

    /**
     * Widens the [mapped_lo_, mapped_hi_) hull to cover a span just
     * mapped from the provider.  The hull only grows (spans given back
     * are not carved out), so the range probe over-accepts and never
     * over-rejects; over-accepted pointers still face the magic and
     * arena checks.
     */
    void
    note_mapped_range(const void* p, std::size_t bytes)
    {
        auto lo = reinterpret_cast<std::uintptr_t>(p);
        auto hi = lo + bytes;
        std::uintptr_t seen = mapped_lo_.load(std::memory_order_relaxed);
        while (lo < seen &&
               !mapped_lo_.compare_exchange_weak(
                   seen, lo, std::memory_order_relaxed)) {
        }
        seen = mapped_hi_.load(std::memory_order_relaxed);
        while (hi > seen &&
               !mapped_hi_.compare_exchange_weak(
                   seen, hi, std::memory_order_relaxed)) {
        }
    }

    /**
     * Recounts the process-wide gauges from the per-heap ground truth
     * (child_after_fork documents why only the gauges can tear).  The
     * child is single-threaded here, magazines are already flushed and
     * remote queues settled, so the sums are exact: in_use is heap u_i
     * plus bin u_i plus huge user bytes; held adds the reuse cache's
     * spans; committed is held minus whatever the purge pass has
     * decommitted (summed span-by-span over the only two places purged
     * superblocks live).  Event counters and requested_bytes are left
     * alone — they are diagnostics, not reconciled.
     */
    void
    repair_after_fork()
    {
        std::uint64_t in_use = 0;
        std::uint64_t held = 0;
        std::uint64_t purged = 0;
        for (auto& heap : heaps_) {
            in_use += heap->in_use;
            held += heap->held;
        }
        for (auto& bin : global_bins_) {
            in_use += bin->in_use;
            held += bin->held;
            // Only band 0 can hold purged (empty) superblocks.
            auto& group = bin->groups[0];
            for (Superblock* sb = group.front(); sb != nullptr;
                 sb = group.next(sb))
                purged += sb->purged_bytes();
        }
        // Walk the reuse cache (single-threaded child: the
        // drain/re-push pair cannot race anyone) so purged spans are
        // counted span-exactly, not just by cache size.
        Superblock* chain = reuse_cache_.drain();
        while (chain != nullptr) {
            Superblock* next =
                chain->cache_next.load(std::memory_order_relaxed);
            held += chain->span_bytes();
            purged += chain->purged_bytes();
            reuse_cache_.push(chain);
            chain = next;
        }
        for (auto& stripe : huge_stripes_) {
            for (Superblock* sb = stripe.list.front(); sb != nullptr;
                 sb = stripe.list.next(sb)) {
                in_use += sb->huge_user_bytes();
                held += sb->span_bytes();
            }
        }
        std::uint64_t cached = 0;
        for (detail::MagazineNode* node = cache_nodes_; node != nullptr;
             node = node->next_in_set) {
            std::size_t occ =
                node->occupancy_bytes.load(std::memory_order_relaxed);
            node->synced_bytes = occ;
            cached += occ;
        }
        // Heap u_i counts magazine-parked blocks; the gauge does not.
        stats_.in_use_bytes.set(in_use - cached);
        stats_.held_bytes.set(held);
        stats_.committed_bytes.set(held - purged);
        stats_.purged_bytes.set(purged);
        stats_.cached_bytes.set(cached);
    }

    /** Lands one free block in its home, dispatching on the home kind
        (index 0 = global bin).  Caller holds @p home's lock. */
    void
    free_into_locked(Base& home, Superblock* sb, void* block)
    {
        if (home.index == 0)
            free_into_bin_locked(static_cast<Bin&>(home), sb, block);
        else
            free_into_heap_locked(static_cast<Heap&>(home), sb, block);
    }

    /**
     * Lands one (whole) free block in per-processor @p heap, which owns
     * @p sb and whose lock the caller holds: superblock bookkeeping,
     * u_i, and the fullness-group move.  Invariant enforcement is the
     * caller's job (settle_and_unlock / drain paths), so chains can
     * land many blocks per enforcement pass.
     */
    void
    free_into_heap_locked(Heap& heap, Superblock* sb, void* block)
    {
        int old_group = sb->fullness_group();
        Policy::touch(block, sizeof(void*), true);
        Policy::touch(sb, sizeof(Superblock), true);
        sb->deallocate_block(block);
        heap.in_use -= sb->block_bytes();
        heap.relink(sb, old_group);
    }

    /**
     * Lands one (whole) free block in global bin @p bin, which owns
     * @p sb and whose lock the caller holds.  A superblock that empties
     * here *stays in the bin* (band 0), class-retentive: the next
     * same-class fetch takes it back formatted, with no re-carve.  Only
     * empties born in per-processor heaps — class-neutral capital —
     * go to the lock-free cross-class reuse cache.  Retained empties
     * count against Config::empty_cache_limit together with the cache;
     * past the limit the superblock is unmapped instead.
     */
    void
    free_into_bin_locked(Bin& bin, Superblock* sb, void* block)
    {
        int old_group = sb->fullness_group();
        Policy::touch(block, sizeof(void*), true);
        Policy::touch(sb, sizeof(Superblock), true);
        sb->deallocate_block(block);
        bin.in_use -= sb->block_bytes();
        if (sb->empty() &&
            reuse_cache_.size() +
                    bin_empties_.load(std::memory_order_relaxed) >=
                config_.empty_cache_limit) {
            bin.unlink(sb, old_group);
            bin.held -= sb->span_bytes();
            release_to_provider(sb);
            return;
        }
        if (sb->empty()) {
            bin_empties_.fetch_add(1, std::memory_order_relaxed);
            if (purge_armed_)
                sb->set_retire_tick(Policy::timestamp());
        }
        bin.relink(sb, old_group);
    }

    /**
     * Emptiness-invariant enforcement: while u_i < a_i - K*S and
     * u_i < (1-f) a_i, move at-least-f-empty superblocks to the global
     * heap.  The paper's Figure 3 transfers once per free; because we
     * pick the *emptiest* victim first, once is almost always enough —
     * but a victim sitting right at the f-empty boundary reduces the
     * deficit by less than one free added, so a single transfer does
     * not restore the invariant inductively.  Looping does, keeps the
     * amortized cost O(1) (every transferred superblock was paid for
     * by the frees that emptied it), and is what the invariant-based
     * blowup bound actually requires.  Caller holds the heap lock.
     *
     * Batched: the loop collects every victim first (the owner's lock
     * is already held; no global lock is touched while deciding), then
     * lands them — empties go to the lock-free reuse cache, partials
     * to their class bins with every same-class victim spliced in
     * under one bin-lock acquisition.  Between unlink and landing a
     * victim's owner still reads @p heap, whose lock we hold, so a
     * concurrent free remote-queues and is re-routed at the next
     * drain — the same transient the single-victim transfer had.
     */
    void
    maybe_release_superblock(Heap& heap)
    {
        const std::size_t slack =
            config_.slack_superblocks * config_.superblock_bytes;
        const double keep_fraction = 1.0 - config_.empty_fraction;

        SuperblockList victims;
        while (heap.in_use + slack < heap.held &&
               static_cast<double>(heap.in_use) <
                   keep_fraction * static_cast<double>(heap.held)) {
            Superblock* victim =
                heap.find_transfer_victim(config_.release_threshold);
            if (victim == nullptr)
                break;  // only header slack remains (rare)

            Policy::work(CostKind::transfer);
            heap.unlink(victim, victim->fullness_group());
            heap.held -= victim->span_bytes();
            heap.in_use -= victim->used_bytes();
            stats_.superblock_transfers.add();
            record_event(obs::EventKind::transfer_to_global, heap.index,
                         victim->size_class(), victim->span_bytes());
            victims.push_front(victim);
        }

        while (Superblock* sb = victims.pop_front()) {
            if (sb->empty()) {
                retire_empty(sb);
                continue;
            }
            Bin& bin = *global_bins_[
                static_cast<std::size_t>(sb->size_class())];
            std::lock_guard<typename Bin::Mutex> guard(bin.mutex);
            land_in_bin_locked(bin, sb);
            // Splice every remaining victim of this class under the
            // same acquisition — the batched transfer.
            Superblock* next = victims.front();
            while (next != nullptr) {
                Superblock* after = victims.next(next);
                if (!next->empty() &&
                    next->size_class() == bin.size_class) {
                    victims.remove(next);
                    land_in_bin_locked(bin, next);
                }
                next = after;
            }
        }
    }

    /** Hands unlinked @p sb to @p bin. Caller holds the bin lock; the
        owner store happens under it (escaped blocks may exist).  A
        caller landing an *empty* superblock (the background refill)
        also owns the bin_empties_ bump. */
    void
    land_in_bin_locked(Bin& bin, Superblock* sb)
    {
        sb->set_owner(static_cast<Base*>(&bin));
        bin.held += sb->span_bytes();
        bin.in_use += sb->used_bytes();
        bin.link(sb);
        Policy::work(CostKind::list_op);
    }

    /**
     * Pulls superblocks of @p cls from the global heap for @p dest,
     * whose lock the caller holds.  The class's bin is probed first —
     * without its lock, via the approximate occupancy counter — and a
     * hit pulls up to Config::global_fetch_batch superblocks (partials
     * fullest-first, then the bin's retained empties, all already
     * formatted for @p cls) under one bin-lock acquisition: the cold
     * heap is about to miss repeatedly, so batching amortizes the
     * round trip.  On a miss the lock-free reuse cache supplies a
     * recycled empty superblock, reformatted if its last class
     * differs.  Each handover happens
     * under the lock of the side that still owns escaped blocks (bin
     * for partials; an empty superblock has none), so a concurrent
     * free never sees a null or stale owner it could act on.  Returns
     * the fullest pulled superblock, or nullptr when the global heap
     * has nothing — the caller then maps fresh memory.
     */
    Superblock*
    fetch_from_global(int cls, Heap& dest)
    {
        Bin& bin = *global_bins_[static_cast<std::size_t>(cls)];
        Superblock* first = nullptr;
        if (bin.occupancy.load(std::memory_order_relaxed) != 0) {
            std::lock_guard<typename Bin::Mutex> guard(bin.mutex);
            drain_remote_locked(bin);
            for (std::size_t pulled = 0;
                 pulled < config_.global_fetch_batch; ++pulled) {
                int probes = 0;
                Superblock* sb = bin.find_allocatable(&probes);
                for (int i = 0; i < probes; ++i)
                    Policy::work(CostKind::list_op);
                if (sb == nullptr)
                    break;
                bin.unlink(sb, sb->fullness_group());
                bin.held -= sb->span_bytes();
                bin.in_use -= sb->used_bytes();
                if (sb->empty())
                    bin_empties_.fetch_sub(1,
                                           std::memory_order_relaxed);
                revive_superblock(sb);
                stats_.global_fetches.add();
                adopt(dest, sb);
                record_event(obs::EventKind::fetch_from_global,
                             dest.index, cls, sb->span_bytes());
                if (first == nullptr)
                    first = sb;  // fullest: pulled fullest-first
            }
        }
        if (first != nullptr) {
            stats_.global_bin_hits.add();
            return first;
        }
        stats_.global_bin_misses.add();
        // Demand hint for the background refill job: the bump alone
        // arms the watermark scan; the queued hint names the class so
        // the next pass services it first.  Both already on the cold
        // miss path, so the armed cost is invisible and the disarmed
        // cost is one predicted branch.
        bin.fetch_misses.store(
            bin.fetch_misses.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
        if (bg_armed_) {
            bg_hints_.push(detail::WorkHintQueue::Kind::refill,
                           static_cast<std::uint32_t>(cls));
        }

        Superblock* sb = reuse_cache_.pop(cls);
        if (sb == nullptr)
            return nullptr;
        stats_.cache_pops.add();
        record_event(obs::EventKind::cache_pop, dest.index,
                     sb->size_class(), sb->span_bytes());
        revive_superblock(sb);
        if (sb->size_class() != cls) {
            Policy::work(CostKind::superblock_init);
            sb->reformat(cls, static_cast<std::uint32_t>(
                                  classes_.block_size(cls)));
        }
        stats_.global_fetches.add();
        adopt(dest, sb);
        record_event(obs::EventKind::fetch_from_global, dest.index, cls,
                     sb->span_bytes());
        return sb;
    }

    /** Maps and formats a brand-new superblock of @p cls. */
    Superblock*
    fresh_superblock(int cls)
    {
        Policy::work(CostKind::os_map);
        Policy::work(CostKind::superblock_init);
        void* memory = provider_.map(config_.superblock_bytes,
                                     config_.superblock_bytes);
        if (memory == nullptr)
            return nullptr;
        note_mapped_range(memory, config_.superblock_bytes);
        stats_.superblock_allocs.add();
        stats_.committed_bytes.add(config_.superblock_bytes);
        stats_.held_bytes.add(config_.superblock_bytes);
        return Superblock::create(
            memory, config_.superblock_bytes, cls,
            static_cast<std::uint32_t>(classes_.block_size(cls)),
            arena_id_);
    }

    /** Hands ownership of unowned @p sb to @p heap. Caller holds lock. */
    void
    adopt(Heap& heap, Superblock* sb)
    {
        sb->set_owner(static_cast<Base*>(&heap));
        heap.held += sb->span_bytes();
        heap.in_use += sb->used_bytes();
        heap.link(sb);
    }

    /**
     * Retires unlinked, completely-empty @p sb: pushed onto the
     * lock-free reuse cache, or unmapped when the cache is over its
     * limit.  The owner is cleared first — safe because an empty
     * superblock has no escaped blocks, so no free can race the store.
     * Callers hold no particular lock (the push is lock-free).
     */
    void
    retire_empty(Superblock* sb)
    {
        if (reuse_cache_.size() >= config_.empty_cache_limit) {
            release_to_provider(sb);
            return;
        }
        sb->set_owner(nullptr);
        if (purge_armed_)
            sb->set_retire_tick(Policy::timestamp());
        // Capture event fields before the push publishes the
        // superblock: a concurrent popper may reformat it immediately.
        const int cls = sb->size_class();
        const std::size_t span = sb->span_bytes();
        reuse_cache_.push(sb);
        stats_.cache_pushes.add();
        record_event(obs::EventKind::cache_push, 0, cls, span);
    }

    /**
     * Decommits one empty superblock's payload (everything past the
     * page-aligned header) through the provider, moving its bytes from
     * the committed gauge to the purged gauge.  The caller owns @p sb
     * exclusively (detached from the cache, or under its bin's lock).
     * Returns the bytes decommitted — 0 when the span is too small to
     * have a whole payload page or the provider refused (then nothing
     * changed and the superblock is whole again).
     */
    std::size_t
    purge_superblock(Superblock* sb)
    {
        Superblock::PurgeRegion region =
            sb->prepare_purge(os::page_bytes());
        if (region.bytes == 0)
            return 0;
        Policy::work(CostKind::os_purge);
        if (!provider_.purge(region.p, region.bytes)) {
            sb->revive();  // roll the mark back; no gauge moved yet
            return 0;
        }
        stats_.committed_bytes.sub(region.bytes);
        stats_.purged_bytes.add(region.bytes);
        stats_.purged_superblocks.add();
        return region.bytes;
    }

    /**
     * Moves a purged superblock's bytes back from the purged gauge to
     * committed and tells the provider (the pages themselves refault
     * zeroed on first touch — no syscall).  No-op on unpurged spans,
     * so every path that puts a superblock back to work calls this
     * unconditionally.  @p into_service distinguishes a real revival
     * (counted, costed as a commit) from the bookkeeping restore
     * release_to_provider does just before the span dies.
     */
    void
    revive_superblock(Superblock* sb, bool into_service = true)
    {
        const std::size_t bytes = sb->revive();
        if (bytes == 0)
            return;
        char* payload = reinterpret_cast<char*>(sb) +
                        (sb->span_bytes() - bytes);
        provider_.unpurge(payload, bytes);
        stats_.purged_bytes.sub(bytes);
        stats_.committed_bytes.add(bytes);
        if (into_service) {
            Policy::work(CostKind::os_commit);
            stats_.revived_superblocks.add();
        }
    }

    /** Reverse of prepare_fork()'s lock sweep (both after-fork hooks
        start here; the engine and repair steps differ per side). */
    void
    release_fork_locks()
    {
        for (std::size_t i = kHugeStripes; i-- > 0;)
            huge_stripes_[i].mutex.unlock();
        for (std::size_t i = global_bins_.size(); i-- > 0;)
            global_bins_[i]->mutex.unlock();
        for (std::size_t i = heaps_.size(); i-- > 0;)
            heaps_[i]->mutex.unlock();
        purge_mutex_.unlock();
        cache_mutex_.unlock();
    }

    /// @name Background-engine jobs (called from bg_step only).
    /// @{

    /**
     * Refill job: when @p cls's global bin sits below
     * Config::bg_refill_watermark *and* a foreground fetch has missed
     * the class since the worker's last look (the fetch_misses demand
     * hint), park one empty formatted superblock in the bin's band 0,
     * so the next fetch_from_global is a warm hit instead of a
     * fresh-map.  The demand gate is what keeps the blowup bound
     * honest: an idle class is never pre-filled, so worker-created
     * empties only ever replace fresh maps the foreground was about
     * to pay for anyway.  Sourcing prefers the cross-class reuse
     * cache (reviving and reformatting off the critical path — the
     * exact work fetch_from_global would otherwise do under the
     * caller's latency); only a dry cache maps fresh memory, and
     * never past Config::empty_cache_limit, the same bound the free
     * path enforces.
     */
    bool
    bg_refill_class(int cls)
    {
        if (cls < 0 || cls >= classes_.count())
            return false;  // stale or corrupt hint; ignore
        const auto idx = static_cast<std::size_t>(cls);
        Bin& bin = *global_bins_[idx];
        const std::uint32_t misses =
            bin.fetch_misses.load(std::memory_order_relaxed);
        if (misses == bg_miss_seen_[idx])
            return false;  // no demand since the last pass
        if (config_.bg_refill_watermark == 0 ||
            bin.occupancy.load(std::memory_order_relaxed) >=
                config_.bg_refill_watermark) {
            bg_miss_seen_[idx] = misses;
            return false;
        }
        Superblock* sb = reuse_cache_.pop(cls);
        if (sb != nullptr) {
            stats_.cache_pops.add();
            record_event(obs::EventKind::cache_pop, 0,
                         sb->size_class(), sb->span_bytes());
            revive_superblock(sb);
            if (sb->size_class() != cls) {
                Policy::work(CostKind::superblock_init);
                sb->reformat(cls,
                             static_cast<std::uint32_t>(
                                 classes_.block_size(cls)));
            }
        } else {
            if (reuse_cache_.size() +
                    bin_empties_.load(std::memory_order_relaxed) >=
                config_.empty_cache_limit)
                return false;
            sb = fresh_superblock(cls);
            if (sb == nullptr)
                return false;  // OOM; the foreground path reclaims
        }
        // Stamp before publication: once linked, a fetch may adopt
        // and reformat the superblock concurrently.
        if (purge_armed_)
            sb->set_retire_tick(Policy::timestamp());
        {
            std::lock_guard<typename Bin::Mutex> guard(bin.mutex);
            land_in_bin_locked(bin, sb);
            bin_empties_.fetch_add(1, std::memory_order_relaxed);
        }
        bg_miss_seen_[idx] = misses;
        stats_.bg_refills.add();
        record_event(obs::EventKind::bg_refill, 0, cls,
                     config_.superblock_bytes);
        return true;
    }

    /**
     * Settle job: drains @p home's remote-free queue once its depth
     * hint crosses Config::bg_drain_threshold, but only when the
     * owner lock looks free — the worker must never contend a lock a
     * foreground thread is using (the owner settles its own queue at
     * its next acquisition anyway; this job exists for queues whose
     * owner went quiet with frees still parked).
     */
    bool
    bg_settle(Base& home)
    {
        if (home.remote_depth.load(std::memory_order_relaxed) <
            config_.bg_drain_threshold)
            return false;
        if (home.mutex.is_locked_hint())
            return false;
        std::size_t drained = 0;
        {
            std::lock_guard<typename Base::Mutex> guard(home.mutex);
            drained = drain_remote_locked(home);
            if (home.index != 0 && drained != 0)
                maybe_release_superblock(static_cast<Heap&>(home));
        }
        if (drained == 0)
            return false;
        stats_.bg_drains.add();
        record_event(obs::EventKind::bg_drain, home.index, -1,
                     drained);
        return true;
    }

    /// @}

    /// Frees between purge-cadence checks.  Coarser than the sampler's
    /// period: a due check still costs a timestamp, and a due pass
    /// takes bin locks and issues madvise.
    static constexpr unsigned kPurgeCheckPeriod = 1024;

    /**
     * Deallocate-tail hook: every kPurgeCheckPeriod frees per thread,
     * check whether a purge pass is due (policy time has passed
     * next_purge_tick_) and run one.  The CAS elects a single thread
     * per interval; losers — and winners — never block here beyond the
     * pass itself.  Compiled to a single predicted-not-taken branch
     * when the pass is disarmed — and "disarmed" includes the case
     * where the background engine owns the cadence instead
     * (purge_inline_armed_), so arming the engine removes this
     * election from the deallocate tail entirely.
     */
    void
    maybe_purge()
    {
        if (!purge_inline_armed_) [[likely]]
            return;
        thread_local unsigned countdown = kPurgeCheckPeriod;
        if (--countdown != 0) [[likely]]
            return;
        countdown = kPurgeCheckPeriod;
        const std::uint64_t now = Policy::timestamp();
        std::uint64_t due =
            next_purge_tick_.load(std::memory_order_relaxed);
        if (now < due)
            return;
        if (!next_purge_tick_.compare_exchange_strong(
                due, now + config_.purge_interval_ticks,
                std::memory_order_relaxed))
            return;
        purge();
    }

    /**
     * Unmaps an unlinked superblock, settling the footprint gauges.
     * The caller has already removed @p sb from its home's lists and
     * held count.  Waits out any in-flight reuse-cache pop first: a
     * popper holding a stale head pointer may still dereference the
     * superblock's cache link (one relaxed load when no pop is in
     * flight — the overwhelmingly common case).  Returns the bytes
     * given back.
     */
    std::size_t
    release_to_provider(Superblock* sb)
    {
        reuse_cache_.await_poppers();
        // A purged span's committed accounting must be restored before
        // the unmap so the provider's whole-span decommit books
        // symmetrically (not a revival into service — the span dies).
        revive_superblock(sb, /*into_service=*/false);
        std::size_t bytes = sb->span_bytes();
        stats_.held_bytes.sub(bytes);
        stats_.committed_bytes.sub(bytes);
        Policy::work(CostKind::os_map);
        sb->~Superblock();
        provider_.unmap(sb, bytes);
        return bytes;
    }

    /** Huge path with the same reclaim-then-retry-once OOM handling.
        Always timed when armed, attributed to malloc_fresh_map (every
        huge allocation maps fresh memory); records on success only. */
    void*
    allocate_huge(std::size_t size, std::size_t align)
    {
        [[maybe_unused]] std::uint64_t t0 = 0;
        if constexpr (Policy::kObsEnabled) {
            if (latency_ != nullptr)
                t0 = Policy::cycle_timestamp();
        }
        void* p = try_allocate_huge(size, align);
        if (p == nullptr) {
            stats_.oom_reclaims.add();
            record_event(obs::EventKind::oom_reclaim, 0,
                         SizeClasses::kHuge, size);
            release_free_memory();
            p = try_allocate_huge(size, align);
            if (p == nullptr)
                stats_.oom_failures.add();
        }
        if constexpr (Policy::kObsEnabled) {
            if (p != nullptr && latency_ != nullptr)
                latency_commit(obs::LatencyPath::malloc_fresh_map, t0);
        }
        return p;
    }

    /** Huge path: a dedicated chunk with a superblock header. */
    void*
    try_allocate_huge(std::size_t size, std::size_t align)
    {
        Policy::work(CostKind::os_map);
        std::size_t header = Superblock::header_bytes();
        std::size_t offset =
            align <= header ? header : detail::align_up(header, align);
        if (size > std::numeric_limits<std::size_t>::max() - offset)
            return nullptr;  // span would overflow; report OOM
        std::size_t total = offset + size;
        void* memory = provider_.map(total, config_.superblock_bytes);
        if (memory == nullptr)
            return nullptr;
        note_mapped_range(memory, total);
        Superblock* sb =
            Superblock::create_huge(memory, total, size, arena_id_);
        {
            HugeStripe& stripe = huge_stripe_for(memory);
            std::lock_guard<typename Policy::Mutex> guard(stripe.mutex);
            stripe.list.push_front(sb);
        }
        stats_.allocs.add();
        stats_.huge_allocs.add();
        stats_.requested_bytes.add(size);
        stats_.in_use_bytes.add(size);
        stats_.held_bytes.add(total);
        stats_.committed_bytes.add(total);
        record_event(obs::EventKind::huge_alloc, 0, SizeClasses::kHuge,
                     size);
        // Huge accounting charges the user size to in_use, so the
        // profiler's "rounded" is the user size too — that keeps the
        // live-bytes reconciliation exact across both paths.
        profile_alloc(static_cast<char*>(memory) + offset, size, size,
                      obs::HeapProfiler::kHugeClass);
        return static_cast<char*>(memory) + offset;
    }

    void
    deallocate_huge(Superblock* sb)
    {
        // Always timed when armed; recorded as free_fast (a huge free
        // is rare, and its munmap cost is genuine free-path latency —
        // docs/OBSERVABILITY.md documents the attribution).
        [[maybe_unused]] std::uint64_t t0 = 0;
        if constexpr (Policy::kObsEnabled) {
            if (latency_ != nullptr)
                t0 = Policy::cycle_timestamp();
        }
        Policy::work(CostKind::os_map);
        {
            HugeStripe& stripe = huge_stripe_for(sb);
            std::lock_guard<typename Policy::Mutex> guard(stripe.mutex);
            stripe.list.remove(sb);
        }
        std::size_t user = sb->huge_user_bytes();
        std::size_t total = sb->span_bytes();
        stats_.frees.add();
        stats_.in_use_bytes.sub(user);
        stats_.held_bytes.sub(total);
        stats_.committed_bytes.sub(total);
        sb->~Superblock();
        provider_.unmap(sb, total);
        if constexpr (Policy::kObsEnabled) {
            if (latency_ != nullptr)
                latency_commit(obs::LatencyPath::free_fast, t0);
        }
    }

    /** Destructor support: unmaps every superblock still held. */
    void
    release_everything()
    {
        for (auto& heap : heaps_) {
            for (auto& bin : heap->bins) {
                for (auto& group : bin.groups) {
                    while (Superblock* sb = group.pop_front())
                        unmap_superblock(sb);
                }
            }
        }
        for (auto& bin : global_bins_) {
            for (auto& group : bin->groups) {
                while (Superblock* sb = group.pop_front())
                    unmap_superblock(sb);
            }
        }
        Superblock* chain = reuse_cache_.drain();
        while (chain != nullptr) {
            Superblock* next =
                chain->cache_next.load(std::memory_order_relaxed);
            unmap_superblock(chain);
            chain = next;
        }
        for (auto& stripe : huge_stripes_) {
            while (Superblock* sb = stripe.list.pop_front())
                unmap_superblock(sb);
        }
    }

    void
    unmap_superblock(Superblock* sb)
    {
        revive_superblock(sb, /*into_service=*/false);
        std::size_t bytes = sb->span_bytes();
        sb->~Superblock();
        provider_.unmap(sb, bytes);
    }

    void
    check_heap(Heap& heap)
    {
        std::lock_guard<typename Heap::Mutex> guard(heap.mutex);
        std::size_t used_sum = 0;
        std::size_t held_sum = 0;
        std::size_t uncarved = 0;  // header + tail remainder per sb
        std::size_t active_classes = 0;
        for (std::size_t cls = 0; cls < heap.bins.size(); ++cls) {
            auto& bin = heap.bins[cls];
            bool any = false;
            for (int g = 0; g < Superblock::kGroupCount; ++g)
                any = any || !bin.groups[g].empty();
            if (any)
                ++active_classes;
            for (int g = 0; g < Superblock::kGroupCount; ++g) {
                for (Superblock* sb = bin.groups[g].front(); sb != nullptr;
                     sb = bin.groups[g].next(sb)) {
                    HOARD_CHECK(sb->size_class() ==
                                static_cast<int>(cls));
                    HOARD_CHECK(sb->fullness_group() == g);
                    HOARD_CHECK(sb->owner() == &heap);
                    HOARD_CHECK(sb->used() <= sb->capacity());
                    used_sum += sb->used_bytes();
                    held_sum += sb->span_bytes();
                    uncarved += sb->span_bytes() -
                                static_cast<std::size_t>(sb->capacity()) *
                                    sb->block_bytes();
                }
            }
        }
        HOARD_CHECK(used_sum == heap.in_use);
        HOARD_CHECK(held_sum == heap.held);

        // Emptiness invariant, in the form the algorithm actually
        // guarantees at an arbitrary instant:
        //
        //   u >= (1-t) * (a - allowance) - K*S
        //
        // with t the victim release threshold: the transfer loop
        // stops either restored (u >= (1-f)a, stronger since
        // t >= f) or because no superblock is t-empty, i.e. every
        // superblock has used > (1-t)*capacity.  The allowance
        // covers (a) bytes a superblock cannot carve into blocks
        // (header + tail remainder); (b) up to global_fetch_batch
        // *fetched* superblocks per active size class — enforcement
        // runs on free only (paper Figure 3), and an allocation may
        // batch-pull that many partial superblocks per class from the
        // global bins between frees; (c) one superblock of transient
        // for the free currently in flight on another thread.
        const double t = config_.release_threshold;
        const std::size_t S = config_.superblock_bytes;
        const std::size_t k_slack = config_.slack_superblocks * S + S;
        const std::size_t allowance =
            uncarved +
            (active_classes * config_.global_fetch_batch + 1) * S;
        bool ok =
            heap.in_use + k_slack >= heap.held ||
            static_cast<double>(heap.in_use) >=
                (1.0 - t) *
                        static_cast<double>(heap.held - std::min(
                                                allowance,
                                                heap.held)) -
                    static_cast<double>(k_slack);
        HOARD_CHECK(ok);
    }

    /** Counter/list consistency for one global bin; takes its lock.
        Bins hold superblocks of their own class only — partials plus
        retained empties (band 0) — and the lock-free occupancy hint
        is exact at quiescence.  Returns the retained-empty count so
        check_invariants can reconcile the bin_empties_ gauge. */
    std::size_t
    check_bin(Bin& bin)
    {
        std::lock_guard<typename Bin::Mutex> guard(bin.mutex);
        std::size_t used_sum = 0;
        std::size_t held_sum = 0;
        std::size_t empties = 0;
        std::uint32_t count = 0;
        for (int g = 0; g < Superblock::kGroupCount; ++g) {
            for (Superblock* sb = bin.groups[g].front(); sb != nullptr;
                 sb = bin.groups[g].next(sb)) {
                HOARD_CHECK(sb->size_class() == bin.size_class);
                HOARD_CHECK(sb->fullness_group() == g);
                HOARD_CHECK(sb->owner() == static_cast<Base*>(&bin));
                HOARD_CHECK(sb->used() <= sb->capacity());
                if (sb->empty())
                    ++empties;
                used_sum += sb->used_bytes();
                held_sum += sb->span_bytes();
                ++count;
            }
        }
        HOARD_CHECK(used_sum == bin.in_use);
        HOARD_CHECK(held_sum == bin.held);
        HOARD_CHECK(count ==
                    bin.occupancy.load(std::memory_order_relaxed));
        return empties;
    }

    /// One stripe of the huge-object list: huge registrations hash to
    /// a stripe by address, so concurrent huge allocations rarely
    /// share a lock.
    struct HugeStripe
    {
        typename Policy::Mutex mutex;
        SuperblockList list;
    };

    /** The stripe registering the huge span that starts at @p p. */
    HugeStripe&
    huge_stripe_for(const void* p)
    {
        auto addr = reinterpret_cast<std::uintptr_t>(p);
        return huge_stripes_[(addr / config_.superblock_bytes) &
                             (kHugeStripes - 1)];
    }

    const Config config_;
    os::PageProvider& provider_;
    SizeClasses classes_;
    /// Identity stamped into every superblock this instance formats
    /// (the hardened free path's foreign-span check).
    const std::uint32_t arena_id_ = detail::next_arena_id();
    /// Sampling heap profiler; non-null only when
    /// Config::profile_sample_rate > 0 (see profile_alloc).  Declared
    /// among the read-mostly members every allocation touches so the
    /// unarmed null check shares their cache line, and destroyed
    /// after the heaps (reverse declaration order) so teardown flushes
    /// can still pair sampled frees.
    std::unique_ptr<obs::HeapProfiler> profiler_;
    /// Per-path latency histograms; non-null only when armed
    /// (Config::latency_histograms or HOARD_LATENCY).  Read-mostly
    /// like profiler_, for the same disarmed-null-check reason.
    std::unique_ptr<obs::LatencyCollector> latency_;
    /// Hull of every span ever mapped for this instance; [max, 0)
    /// until the first map, so a fresh allocator rejects everything.
    std::atomic<std::uintptr_t> mapped_lo_{
        std::numeric_limits<std::uintptr_t>::max()};
    std::atomic<std::uintptr_t> mapped_hi_{0};
    /// Per-processor heaps; heaps_[i] is heap i + 1.  Heap 0 — the
    /// global heap — is the per-class bins plus the reuse cache below.
    std::vector<std::unique_ptr<Heap>> heaps_;
    /// The sharded global heap: one bin (own lock) per size class.
    std::vector<std::unique_ptr<Bin>> global_bins_;
    /// Lock-free cache of completely-empty superblocks: one Treiber
    /// stack per size class, so a same-class pop recycles a superblock
    /// already formatted for it; cross-class steals reformat.
    SuperblockCache<Policy> reuse_cache_;
    /// Empty superblocks retained inside global bins (class-local, so
    /// not in the cache).  Updated under the owning bin's lock but
    /// atomic because distinct bin locks do not order each other;
    /// together with the cache size it is bounded by
    /// Config::empty_cache_limit.
    std::atomic<std::size_t> bin_empties_{0};
    /// Guards cache_nodes_ and serializes magazine flushes against each
    /// other (never against the owners' lock-free fast paths).
    typename Policy::Mutex cache_mutex_;
    detail::MagazineNode* cache_nodes_ = nullptr;
    std::uint64_t magazine_id_ = 0;   ///< 0 = caching disabled
    std::uint32_t batch_blocks_ = 1;  ///< N of the batched fast path
    HugeStripe huge_stripes_[kHugeStripes];
    /// True when any purge trigger is configured; hoisted so the
    /// deallocate tail's maybe_purge() costs one predictable branch.
    const bool purge_armed_ = config_.purge_age_ticks != 0 ||
                              config_.rss_target_bytes != 0;
    /// Serializes purge passes (manual purge() vs. the cadence hook).
    typename Policy::Mutex purge_mutex_;
    /// Policy time before which no automatic pass runs; the CAS in
    /// maybe_purge() elects one thread per interval.
    std::atomic<std::uint64_t> next_purge_tick_{0};
    /// True when Config::background_engine asked for the engine:
    /// hints are pushed and start_background() spawns the worker.
    const bool bg_armed_ = config_.background_engine;
    /// The deallocate tail's inline purge election stays armed only
    /// while the background engine is not the cadence owner; hoisted
    /// so maybe_purge() keeps exactly one predicted branch either way.
    const bool purge_inline_armed_ = purge_armed_ && !bg_armed_;
    /// Foreground-to-worker work hints (lock-free MPSC; droppable).
    detail::WorkHintQueue bg_hints_;
    /// Per-class fetch_misses value at the worker's last pass — the
    /// demand gate of bg_refill_class.  Worker-only state.
    std::vector<std::uint32_t> bg_miss_seen_;
    /// The worker's lifecycle shell: a native thread under
    /// Policy::kBackgroundThread, inert under SimPolicy (the harness
    /// drives bg_worker_sim instead).
    BackgroundEngine<HoardAllocator, Policy> bg_engine_{this};
    detail::AllocatorStats stats_;
    /// Event rings; non-null only while tracing is enabled.
    std::unique_ptr<obs::EventRecorder> recorder_;
    /// Gauge time series; non-null only when tracing is enabled and
    /// Config::obs_sample_interval > 0.
    std::unique_ptr<obs::TimeSeriesSampler> sampler_;
};

}  // namespace hoard

#endif  // HOARD_CORE_HOARD_ALLOCATOR_H_
