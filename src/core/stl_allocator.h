/**
 * @file
 * std::allocator-compatible adapter so standard containers draw from a
 * Hoard (or baseline) Allocator.  Examples and tests use it to exercise
 * realistic container churn through the public API.
 */

#ifndef HOARD_CORE_STL_ALLOCATOR_H_
#define HOARD_CORE_STL_ALLOCATOR_H_

#include <cstddef>
#include <new>

#include "common/failure.h"
#include "core/allocator.h"
#include "core/facade.h"

namespace hoard {

/**
 * STL allocator forwarding to an hoard::Allocator.  Defaults to the
 * process-wide native Hoard instance; pass any Allocator to pool
 * container memory elsewhere (e.g. a baseline, for comparisons).
 */
template <typename T>
class StlAllocator
{
  public:
    using value_type = T;

    StlAllocator() noexcept : backend_(&global_allocator()) {}
    explicit StlAllocator(Allocator& backend) noexcept
        : backend_(&backend)
    {}

    template <typename U>
    StlAllocator(const StlAllocator<U>& other) noexcept
        : backend_(other.backend())
    {}

    T*
    allocate(std::size_t n)
    {
        void* p = backend_->allocate(n * sizeof(T));
        if (p == nullptr)
            throw std::bad_alloc();
        return static_cast<T*>(p);
    }

    void
    deallocate(T* p, std::size_t /* n */) noexcept
    {
        backend_->deallocate(p);
    }

    Allocator* backend() const noexcept { return backend_; }

    friend bool
    operator==(const StlAllocator& a, const StlAllocator& b) noexcept
    {
        return a.backend_ == b.backend_;
    }

    friend bool
    operator!=(const StlAllocator& a, const StlAllocator& b) noexcept
    {
        return !(a == b);
    }

  private:
    Allocator* backend_;
};

}  // namespace hoard

#endif  // HOARD_CORE_STL_ALLOCATOR_H_
