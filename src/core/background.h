/**
 * @file
 * Asynchronous background allocation engine: the lifecycle shell and
 * work-hint plumbing for a helper core that runs the allocator's slow
 * maintenance off the foreground critical path.
 *
 * The engine owns *when* the worker runs, never *what* it does — the
 * jobs themselves (global-bin refill, remote-free settling, span
 * pre-commit, cadenced purge) live in HoardAllocator::bg_step(), so
 * the identical job code executes under both policies:
 *
 *  - **NativePolicy** (kBackgroundThread == true): BackgroundEngine
 *    spawns one worker thread with raw pthread_create.  std::thread is
 *    deliberately avoided — its constructor allocates its shared state
 *    through operator new, which in whole-process deployments re-enters
 *    the facade while its magic static may still be mid-construction.
 *    pthread_create keeps the spawn path allocation-free on the calling
 *    thread (glibc places the stack, descriptor, and static TLS in one
 *    mmap), and the engine's own synchronization is a raw
 *    pthread_mutex_t + pthread_cond_t pair so fork recovery can
 *    reinitialize them in the child.
 *
 *  - **SimPolicy** (kBackgroundThread == false): every engine method is
 *    inert.  The deterministic analogue is a cooperative fiber the
 *    harness spawns *before* Machine::run() with a bounded body,
 *    HoardAllocator::bg_worker_sim(steps) — the machine schedules it
 *    like any workload fiber, so replays stay byte-identical and the
 *    deadlock detector never sees an unbounded spinner.
 *
 * Foreground paths communicate with the worker two ways, both wait-free
 * for the foreground: per-heap / per-class watermark counters updated
 * with one relaxed store (HeapBase::remote_depth, GlobalBin::
 * fetch_misses), which the worker scans every pass, and the
 * WorkHintQueue below, a lock-free bounded MPSC queue of packed hints
 * that lets a cold-path miss name the exact size class needing a
 * refill so the next pass services it first.
 */

#ifndef HOARD_CORE_BACKGROUND_H_
#define HOARD_CORE_BACKGROUND_H_

#include <pthread.h>
#include <time.h>

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace hoard {
namespace detail {

/**
 * Lock-free bounded queue of packed work hints (Vyukov bounded-queue
 * scheme: one sequence word per cell arbitrates producers and the
 * consumer without a lock).  Multi-producer — any foreground thread on
 * a cold path — single-consumer (the worker).  Hints are *droppable by
 * design*: a push against a full ring returns false and counts the
 * drop, because every hint is recoverable from the watermark counters
 * the worker scans anyway; losing one costs at most one pass of
 * latency, never correctness.
 *
 * A hint packs an 8-bit Kind with a 24-bit argument.  Kind::none never
 * enters the queue, so the packed value 0 can serve as pop()'s "empty"
 * sentinel.
 */
class WorkHintQueue
{
  public:
    enum class Kind : std::uint32_t
    {
        none = 0,    ///< never queued; reserves packed value 0
        refill = 1,  ///< arg = size class whose global bin ran dry
    };

    /** Ring capacity; power of two.  256 outstanding hints is far past
        anything a pass-per-millisecond worker can fall behind by. */
    static constexpr std::size_t kSlots = 256;

    WorkHintQueue();

    WorkHintQueue(const WorkHintQueue&) = delete;
    WorkHintQueue& operator=(const WorkHintQueue&) = delete;

    /** Enqueues one hint; false (and a drop count) when full.  Any
        thread; lock-free; @p kind must not be Kind::none. */
    bool push(Kind kind, std::uint32_t arg);

    /** Dequeues the oldest hint, or 0 when empty.  Worker only. */
    std::uint32_t pop();

    /** Discards everything queued (fork-child repair). */
    void clear();

    static Kind
    kind_of(std::uint32_t hint)
    {
        return static_cast<Kind>(hint >> 24);
    }

    static std::uint32_t
    arg_of(std::uint32_t hint)
    {
        return hint & 0x00ffffffu;
    }

    /** Hints lost to a full ring (telemetry; monotone). */
    std::uint64_t
    dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

  private:
    static std::uint32_t
    pack(Kind kind, std::uint32_t arg)
    {
        return (static_cast<std::uint32_t>(kind) << 24) |
               (arg & 0x00ffffffu);
    }

    /// One ring cell: `seq` runs ahead of the ticket counters to mark
    /// the cell writable (seq == ticket) or readable (seq == ticket+1).
    struct Cell
    {
        std::atomic<std::uint32_t> seq{0};
        std::uint32_t value = 0;
    };

    Cell cells_[kSlots];
    std::atomic<std::uint32_t> head_{0};  ///< producers' ticket
    std::atomic<std::uint32_t> tail_{0};  ///< consumer's ticket
    std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace detail

/**
 * Lifecycle shell for the background worker: spawn, interval waits,
 * quiesce, and fork recovery.  @p Owner supplies the actual work as
 * `bool bg_step()`; @p Policy gates whether a native thread exists at
 * all (kBackgroundThread).  Every method is a no-op under policies
 * without native threads, so the allocator calls them unconditionally.
 *
 * Lifecycle: start() is idempotent and allocation-free; stop() signals
 * and joins (a pass in flight completes first — quiescing is exactly
 * "no pass running, none will start").  Fork protocol, driven by the
 * allocator's own fork hooks: prepare_fork() raises a fork-pending
 * flag (start() refuses while it is set — without it a lazy start
 * racing stop()'s join window could put a live worker at the fork
 * instant), stops the worker, and then holds the lifecycle mutex
 * across the fork; parent_after_fork() clears the flag and releases
 * the mutex; child_after_fork() reinitializes the pthread primitives
 * outright (the worker thread does not exist in the child, and a
 * mutex image held at the fork instant must not leak into it).  The
 * owner restarts the worker in the parent; the child spawns no thread
 * inside the atfork handler — it respawns lazily on its next trip
 * through the facade.  The handlers themselves must never call
 * anything that can re-enter start() (the facade's lazy-spawn
 * accessor included): the forking thread owns mutex_ for the whole
 * window, and a second lock attempt self-deadlocks inside fork().
 */
template <typename Owner, typename Policy>
class BackgroundEngine
{
  public:
    explicit BackgroundEngine(Owner* owner) : owner_(owner) {}

    ~BackgroundEngine() { stop(); }

    BackgroundEngine(const BackgroundEngine&) = delete;
    BackgroundEngine& operator=(const BackgroundEngine&) = delete;

    /**
     * Spawns the worker with a pass cadence of @p interval_ns
     * nanoseconds (clamped to >= 1); no-op when already running or
     * when the policy has no native threads.  Nothing on this path
     * allocates, so it is safe from inside a malloc facade (though
     * never from inside the facade's own magic-static initializer —
     * pthread_create may touch TLS machinery that re-enters malloc).
     */
    void
    start(std::uint64_t interval_ns)
    {
        if constexpr (Policy::kBackgroundThread) {
            pthread_mutex_lock(&mutex_);
            if (!running_.load(std::memory_order_relaxed) &&
                !fork_pending_) {
                stop_ = false;
                kicked_ = false;
                interval_ns_ = interval_ns == 0 ? 1 : interval_ns;
                if (pthread_create(&thread_, nullptr,
                                   &BackgroundEngine::thread_main,
                                   this) == 0)
                    running_.store(true, std::memory_order_relaxed);
            }
            pthread_mutex_unlock(&mutex_);
        } else {
            (void)interval_ns;
        }
    }

    /**
     * Quiesces the worker: raises the stop flag, wakes it, and joins.
     * A pass in flight finishes (and releases every lock it took)
     * before the join returns.  Idempotent; no-op when not running.
     */
    void
    stop()
    {
        if constexpr (Policy::kBackgroundThread) {
            pthread_t victim{};
            bool was_running = false;
            pthread_mutex_lock(&mutex_);
            if (running_.load(std::memory_order_relaxed)) {
                was_running = true;
                stop_ = true;
                victim = thread_;
                running_.store(false, std::memory_order_relaxed);
                pthread_cond_broadcast(&cv_);
            }
            pthread_mutex_unlock(&mutex_);
            if (was_running)
                pthread_join(victim, nullptr);
        }
    }

    /** Wakes the worker for an immediate pass (tests; never needed
        for correctness — the interval wait expires on its own). */
    void
    kick()
    {
        if constexpr (Policy::kBackgroundThread) {
            pthread_mutex_lock(&mutex_);
            kicked_ = true;
            pthread_cond_broadcast(&cv_);
            pthread_mutex_unlock(&mutex_);
        }
    }

    /** True while a worker thread is live (or being joined). */
    bool
    running() const
    {
        return running_.load(std::memory_order_relaxed);
    }

    /** Passes the worker has completed (telemetry mirror of the
        allocator's bg_wakeups counter; readable without a snapshot). */
    std::uint64_t
    passes() const
    {
        return passes_.load(std::memory_order_relaxed);
    }

    /// @name Fork protocol (see the class comment).
    /// @{

    void
    prepare_fork()
    {
        if constexpr (Policy::kBackgroundThread) {
            // Raise the fork flag *before* stopping: stop() joins the
            // worker outside mutex_, and without the flag a concurrent
            // lazy start() could slip a fresh worker into that window
            // — a thread that would then be live at the fork instant,
            // possibly mid-mutation in a heap the child inherits.
            pthread_mutex_lock(&mutex_);
            fork_pending_ = true;
            pthread_mutex_unlock(&mutex_);
            stop();
            pthread_mutex_lock(&mutex_);
        }
    }

    void
    parent_after_fork()
    {
        if constexpr (Policy::kBackgroundThread) {
            fork_pending_ = false;
            pthread_mutex_unlock(&mutex_);
        }
    }

    void
    child_after_fork()
    {
        if constexpr (Policy::kBackgroundThread) {
            // The worker does not exist in the child and the forking
            // thread owns mutex_; rebuild the primitives from scratch
            // rather than trusting a forked lock image.
            pthread_mutex_init(&mutex_, nullptr);
            pthread_cond_init(&cv_, nullptr);
            stop_ = false;
            kicked_ = false;
            fork_pending_ = false;
            running_.store(false, std::memory_order_relaxed);
        }
    }

    /// @}

  private:
    static void*
    thread_main(void* arg)
    {
        static_cast<BackgroundEngine*>(arg)->run();
        return nullptr;
    }

    void
    run()
    {
        pthread_mutex_lock(&mutex_);
        while (!stop_) {
            pthread_mutex_unlock(&mutex_);
            owner_->bg_step();
            passes_.fetch_add(1, std::memory_order_relaxed);
            pthread_mutex_lock(&mutex_);
            if (stop_)
                break;
            if (!kicked_) {
                struct timespec deadline;
                clock_gettime(CLOCK_REALTIME, &deadline);
                deadline.tv_sec +=
                    static_cast<time_t>(interval_ns_ / 1000000000ull);
                deadline.tv_nsec +=
                    static_cast<long>(interval_ns_ % 1000000000ull);
                if (deadline.tv_nsec >= 1000000000l) {
                    deadline.tv_nsec -= 1000000000l;
                    ++deadline.tv_sec;
                }
                pthread_cond_timedwait(&cv_, &mutex_, &deadline);
            }
            kicked_ = false;
        }
        pthread_mutex_unlock(&mutex_);
    }

    Owner* const owner_;
    std::uint64_t interval_ns_ = 1;
    pthread_t thread_{};
    /// Raw pthread primitives (not std::mutex) so child_after_fork can
    /// reinitialize them; see the class comment.
    pthread_mutex_t mutex_ = PTHREAD_MUTEX_INITIALIZER;
    pthread_cond_t cv_ = PTHREAD_COND_INITIALIZER;
    bool stop_ = false;    ///< guarded by mutex_
    bool kicked_ = false;  ///< guarded by mutex_
    /// Guarded by mutex_: true from prepare_fork() until the matching
    /// after-fork hook; start() refuses to spawn while set, so no
    /// worker can come alive inside the fork window.
    bool fork_pending_ = false;
    std::atomic<bool> running_{false};
    std::atomic<std::uint64_t> passes_{0};
};

}  // namespace hoard

#endif  // HOARD_CORE_BACKGROUND_H_
