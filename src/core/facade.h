/**
 * @file
 * C-style convenience API over a process-wide native Hoard instance.
 *
 * This is the "drop-in" face of the library: hoard_malloc/hoard_free
 * mirror malloc/free semantics (including calloc zeroing, realloc
 * content preservation, and C11 aligned allocation) on top of
 * HoardAllocator<NativePolicy>.  The global instance is created on first
 * use and intentionally never destroyed (static-destruction-order safe).
 */

#ifndef HOARD_CORE_FACADE_H_
#define HOARD_CORE_FACADE_H_

#include <cstddef>
#include <iosfwd>

#include "common/stats.h"
#include "core/hoard_allocator.h"
#include "policy/native_policy.h"

namespace hoard {

/** The process-wide native allocator behind the C-style API. */
HoardAllocator<NativePolicy>& global_allocator();

/** malloc: allocates @p size bytes (size 0 yields a unique pointer). */
void* hoard_malloc(std::size_t size);

/** free: releases @p p; nullptr is a no-op. */
void hoard_free(void* p);

/** calloc: allocates @p count * @p size zeroed bytes. */
void* hoard_calloc(std::size_t count, std::size_t size);

/** realloc with malloc-compatible edge cases. */
void* hoard_realloc(void* p, std::size_t size);

/** aligned allocation; @p align must be a power of two <= S/2. */
void* hoard_aligned_alloc(std::size_t align, std::size_t size);

/**
 * POSIX-style aligned allocation: stores the block in *out and returns
 * 0, or EINVAL for a bad alignment (not a power of two, not a multiple
 * of sizeof(void*), or beyond S/2) and ENOMEM on exhaustion.
 */
int hoard_posix_memalign(void** out, std::size_t align, std::size_t size);

/** Usable bytes behind @p p. */
std::size_t hoard_usable_size(const void* p);

/**
 * malloc_trim analog: drains thread caches and returns every
 * completely-empty superblock to the OS.  Returns the bytes released.
 * Useful for long-running servers reacting to memory-pressure signals;
 * also invoked automatically (once) before any allocation reports OOM.
 */
std::size_t hoard_release_free_memory();

/**
 * Runs one purge pass over the global instance: decommits idle
 * completely-empty superblocks (madvise) while keeping them mapped and
 * formatted for O(1) revival.  @p force ignores the age/RSS
 * thresholds and purges every idle empty.  Returns the bytes
 * decommitted.  Milder than hoard_release_free_memory(): the address
 * space and superblock metadata survive, so a later burst pays page
 * faults instead of map syscalls.  Automatic passes ride the free
 * path when HOARD_PURGE_AGE or HOARD_RSS_TARGET is set (docs/SHIM.md).
 */
std::size_t hoard_purge(bool force);

/** Committed bytes of the global instance — the RSS ground truth. */
std::size_t hoard_committed_bytes();

/** Reserved virtual address space of the global instance's provider. */
std::size_t hoard_reserved_bytes();

/** Held-but-decommitted bytes (committed + purged == held). */
std::size_t hoard_purged_bytes();

/**
 * Registers pthread_atfork handlers that make the global instance
 * fork-safe in a multithreaded parent: the prepare handler acquires
 * the magazine liveness registry and then every allocator lock in a
 * fixed total order, so the child never inherits a lock frozen in a
 * half-held state; the child handler additionally resets the reuse
 * cache's popper protocol and recounts the gauges (docs/SHIM.md).
 * Idempotent — only the first call registers.  Forces construction of
 * the global instance, so call it early (the LD_PRELOAD shim does, in
 * a constructor).
 */
void hoard_install_atfork();

/** Statistics of the global instance. */
const detail::AllocatorStats& hoard_stats();

/// @name Observability of the global instance (src/obs/).
/// @{

/** Per-heap snapshot; works whether or not tracing is enabled. */
obs::AllocatorSnapshot hoard_snapshot();

/**
 * Event recorder of the global instance, or nullptr unless tracing was
 * enabled (HOARD_OBS env var at first use, with HOARD_OBS compiled in).
 */
const obs::EventRecorder* hoard_event_recorder();

/**
 * Writes the retained trace as Chrome trace JSON.  Returns the number
 * of events written (0 with a valid-but-empty document when tracing is
 * off).
 */
std::size_t hoard_write_chrome_trace(std::ostream& os);

/**
 * Writes a snapshot as Prometheus text exposition, with the heap
 * profiler's fragmentation telemetry appended when it is armed.
 */
void hoard_write_prometheus(std::ostream& os);

/**
 * The global instance's sampling heap profiler, or nullptr unless it
 * was armed (HOARD_PROFILE_RATE env var at first use, with
 * HOARD_PROFILER compiled in).
 */
const obs::HeapProfiler* hoard_profiler();

/**
 * The global instance's per-path latency collector, or nullptr unless
 * armed (Config::latency_histograms or the HOARD_LATENCY env var at
 * first use, with HOARD_OBS compiled in).
 */
const obs::LatencyCollector* hoard_latency();

/**
 * Serializes the heap profile in pprof profile.proto wire format
 * (uncompressed; `pprof -http=: <file>` renders it).  Returns false
 * without writing when the profiler is off.
 */
bool hoard_write_heap_profile(std::ostream& os);

/**
 * Writes the end-of-run leak report (sampled sites with live bytes,
 * symbolized best-effort).  Returns the number of leaking sites, 0
 * when the profiler is off.
 */
std::size_t hoard_write_leak_report(std::ostream& os);

/**
 * Takes one final sample and writes the gauge timeline
 * (hoard-timeline-v5 JSONL) of the global instance, or returns false
 * when the sampler is disarmed.  Armed by Config::obs_sample_interval
 * or the HOARD_TIMELINE env var at first use; the LD_PRELOAD shim
 * dumps to the HOARD_TIMELINE path at process exit.
 */
bool hoard_write_timeline(std::ostream& os);

/// @}

}  // namespace hoard

#endif  // HOARD_CORE_FACADE_H_
