/**
 * @file
 * Lock-free cache of completely-empty superblocks: one Treiber stack
 * per (span, size class) key.
 *
 * The slow path's recycling hot spot: under the default release
 * threshold (t = 1) every superblock that reaches the global heap is
 * completely empty, so with a sharded global heap the reuse traffic
 * all lands here.  An empty superblock keeps the block format of its
 * last class, and re-carving it for a different class costs a
 * superblock_init, so the cache is *keyed*: pushes file a superblock
 * under its current class, and a pop for class c takes from c's stack
 * first — recycling formatted superblocks for free — before stealing
 * from any other class's stack (scalloc's span pools make the same
 * move: global, segregated, lock-free).  Push and pop stay single
 * compare-exchanges on one head word — no mutex anywhere.
 *
 * Two classic Treiber hazards and their resolutions:
 *
 *  - **ABA**: a popper reads head = A, gets preempted; A is popped,
 *    B pushed, A pushed again.  The stale popper's CAS would succeed
 *    and install A's *old* next pointer.  Superblocks are S-aligned,
 *    so the low log2(S) bits of the head are free: they hold a tag
 *    incremented on every successful swing, making the stale CAS fail.
 *    (At the minimum S = 1024 that is a 10-bit tag — 1024 complete
 *    head swings inside one read-to-CAS window are needed to wrap it.)
 *
 *  - **Use-after-unmap**: a popper holding a stale head pointer
 *    dereferences sb->cache_next while another thread pops that
 *    superblock and returns it to the OS.  Poppers therefore announce
 *    themselves in `poppers_` (seq_cst) around the pop loop — one
 *    announcement covers every stack a steal scan may visit — and any
 *    code path about to unmap a superblock that ever transited this
 *    cache must call await_poppers() first: once the superblock is
 *    unreachable from every head *and* the announced poppers have
 *    drained, no thread can still hold a pointer into it.  The bulk
 *    drain (snapshots, release_free_memory, destructor) detaches all
 *    chains and then waits once.
 *
 * The count is maintained outside the CAS (relaxed): exact whenever
 * the cache is quiescent — which is when snapshots reconcile — and
 * within one push/pop of exact otherwise; it doubles as the
 * "occupancy" hint that lets allocation skip an empty cache without
 * touching any head cache line.
 */

#ifndef HOARD_CORE_SUPERBLOCK_CACHE_H_
#define HOARD_CORE_SUPERBLOCK_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/failure.h"
#include "common/mathutil.h"
#include "core/superblock.h"
#include "policy/cost_kind.h"

namespace hoard {

template <typename Policy>
class SuperblockCache
{
  public:
    /**
     * @param superblock_bytes  span S (power of two; also the tag mask)
     * @param num_classes       stacks to key by (size-class count)
     */
    SuperblockCache(std::size_t superblock_bytes, std::size_t num_classes)
        : tag_mask_(superblock_bytes - 1),
          num_classes_(num_classes),
          heads_(new std::atomic<std::uintptr_t>[num_classes]())
    {
        HOARD_DCHECK(detail::is_pow2(superblock_bytes));
        HOARD_DCHECK(num_classes >= 1);
    }

    SuperblockCache(const SuperblockCache&) = delete;
    SuperblockCache& operator=(const SuperblockCache&) = delete;

    /** Superblocks currently cached (exact at quiescence). */
    std::size_t
    size() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    /** Lock-free push of a completely-empty superblock, filed under
        its current size class.  Any thread. */
    void
    push(Superblock* sb)
    {
        HOARD_DCHECK(sb->empty());
        HOARD_DCHECK(sb->size_class() >= 0 &&
                     static_cast<std::size_t>(sb->size_class()) <
                         num_classes_);
        const auto ptr = reinterpret_cast<std::uintptr_t>(sb);
        HOARD_DCHECK((ptr & tag_mask_) == 0);
        std::atomic<std::uintptr_t>& head =
            heads_[static_cast<std::size_t>(sb->size_class())];
        std::uintptr_t old = head.load(std::memory_order_relaxed);
        for (;;) {
            sb->cache_next.store(untag(old), std::memory_order_relaxed);
            if (head.compare_exchange_weak(old, ptr | next_tag(old),
                                           std::memory_order_release,
                                           std::memory_order_relaxed))
                break;
        }
        count_.fetch_add(1, std::memory_order_relaxed);
        Policy::work(CostKind::list_op);
    }

    /**
     * Lock-free pop for class @p cls; nullptr when the whole cache is
     * empty.  @p cls's own stack is tried first — a hit needs no
     * re-carve — then the other stacks in ring order (the steal probes
     * are relaxed head loads, charged only when a nonempty stack is
     * actually popped).  The caller owns the returned superblock
     * outright (it is on no list and has no owner heap) and must check
     * its size_class(): a stolen superblock still wears its old class.
     */
    Superblock*
    pop(int cls)
    {
        if (count_.load(std::memory_order_relaxed) == 0)
            return nullptr;
        HOARD_DCHECK(cls >= 0 &&
                     static_cast<std::size_t>(cls) < num_classes_);
        poppers_.fetch_add(1, std::memory_order_seq_cst);
        Superblock* out = take(
            heads_[static_cast<std::size_t>(cls)]);
        for (std::size_t i = 1; out == nullptr && i < num_classes_;
             ++i) {
            std::atomic<std::uintptr_t>& head =
                heads_[(static_cast<std::size_t>(cls) + i) %
                       num_classes_];
            if (head.load(std::memory_order_relaxed) == 0)
                continue;
            out = take(head);
        }
        poppers_.fetch_sub(1, std::memory_order_seq_cst);
        if (out != nullptr)
            count_.fetch_sub(1, std::memory_order_relaxed);
        Policy::work(CostKind::list_op);
        return out;
    }

    /**
     * Detaches every cached superblock with one exchange per stack and
     * waits for announced poppers to drain, so the caller may walk —
     * and unmap — the returned chain (linked through cache_next)
     * safely.  Per-class chains are spliced in class order, each LIFO;
     * nullptr when the cache was empty.
     */
    Superblock*
    drain()
    {
        Superblock* chain = nullptr;
        std::size_t n = 0;
        for (std::size_t c = 0; c < num_classes_; ++c) {
            std::uintptr_t old =
                heads_[c].exchange(0, std::memory_order_acquire);
            Superblock* head = untag(old);
            if (head == nullptr)
                continue;
            Superblock* tail = head;
            ++n;
            for (Superblock* next = tail->cache_next.load(
                     std::memory_order_relaxed);
                 next != nullptr;
                 next = tail->cache_next.load(
                     std::memory_order_relaxed)) {
                tail = next;
                ++n;
            }
            tail->cache_next.store(chain, std::memory_order_relaxed);
            chain = head;
        }
        if (n != 0)
            count_.fetch_sub(n, std::memory_order_relaxed);
        await_poppers();
        return chain;
    }

    /**
     * Spins until no pop is in flight.  Precondition for unmapping any
     * superblock that was ever reachable from a cache head.  The
     * spin charges virtual work under the simulator so cooperative
     * fibers keep making progress.
     */
    void
    await_poppers() const
    {
        while (poppers_.load(std::memory_order_seq_cst) != 0)
            Policy::work(CostKind::list_op);
    }

    /**
     * Forgets every announced popper.  Post-fork child only: a parent
     * thread caught mid-pop by fork() no longer exists in the child,
     * and its stale announcement would make every later
     * await_poppers() spin forever.  The child is single-threaded
     * when this runs, so no live pop can be in flight.
     */
    void
    reset_poppers()
    {
        poppers_.store(0, std::memory_order_seq_cst);
    }

  private:
    /** One CAS-loop pop from @p head; nullptr when it is empty. */
    Superblock*
    take(std::atomic<std::uintptr_t>& head)
    {
        std::uintptr_t old = head.load(std::memory_order_acquire);
        while (untag(old) != nullptr) {
            Superblock* sb = untag(old);
            // Safe dereference: sb is reachable from head, and any
            // unmapper must await_poppers() (we are announced) first.
            Superblock* next =
                sb->cache_next.load(std::memory_order_relaxed);
            const auto next_ptr = reinterpret_cast<std::uintptr_t>(next);
            if (head.compare_exchange_weak(old, next_ptr | next_tag(old),
                                           std::memory_order_acquire,
                                           std::memory_order_acquire))
                return sb;
        }
        return nullptr;
    }

    Superblock*
    untag(std::uintptr_t word) const
    {
        return reinterpret_cast<Superblock*>(word & ~tag_mask_);
    }

    /** Tag for the next head value: previous tag + 1, wrapped. */
    std::uintptr_t
    next_tag(std::uintptr_t old) const
    {
        return ((old & tag_mask_) + 1) & tag_mask_;
    }

    const std::uintptr_t tag_mask_;
    const std::size_t num_classes_;
    /// One Treiber head per size class; zero-initialized.
    std::unique_ptr<std::atomic<std::uintptr_t>[]> heads_;
    std::atomic<std::size_t> count_{0};
    std::atomic<std::uint32_t> poppers_{0};
};

}  // namespace hoard

#endif  // HOARD_CORE_SUPERBLOCK_CACHE_H_
