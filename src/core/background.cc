/**
 * @file
 * WorkHintQueue implementation: the Vyukov bounded-queue protocol.
 * Each cell's sequence word encodes its state relative to the ticket
 * counters — seq == ticket means "writable by the producer holding
 * ticket", seq == ticket + 1 means "readable by the consumer expecting
 * ticket" — so a single acquire load decides, and the only contended
 * CAS is the ticket claim itself.
 */

#include "core/background.h"

namespace hoard {
namespace detail {

WorkHintQueue::WorkHintQueue()
{
    for (std::size_t i = 0; i < kSlots; ++i)
        cells_[i].seq.store(static_cast<std::uint32_t>(i),
                            std::memory_order_relaxed);
}

bool
WorkHintQueue::push(Kind kind, std::uint32_t arg)
{
    const std::uint32_t value = pack(kind, arg);
    std::uint32_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
        Cell& cell = cells_[pos & (kSlots - 1)];
        const std::uint32_t seq =
            cell.seq.load(std::memory_order_acquire);
        const auto dif = static_cast<std::int32_t>(seq - pos);
        if (dif == 0) {
            if (head_.compare_exchange_weak(
                    pos, pos + 1, std::memory_order_relaxed)) {
                cell.value = value;
                cell.seq.store(pos + 1, std::memory_order_release);
                return true;
            }
            // CAS refreshed pos; retry against the new ticket.
        } else if (dif < 0) {
            // The cell still holds an unconsumed hint a full ring ago:
            // drop (the watermark scan recovers the work).
            dropped_.fetch_add(1, std::memory_order_relaxed);
            return false;
        } else {
            pos = head_.load(std::memory_order_relaxed);
        }
    }
}

std::uint32_t
WorkHintQueue::pop()
{
    std::uint32_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
        Cell& cell = cells_[pos & (kSlots - 1)];
        const std::uint32_t seq =
            cell.seq.load(std::memory_order_acquire);
        const auto dif = static_cast<std::int32_t>(seq - (pos + 1));
        if (dif == 0) {
            // Single consumer: the ticket bump cannot race another
            // pop, but keep the CAS so a future multi-consumer caller
            // degrades safely instead of corrupting the ring.
            if (tail_.compare_exchange_weak(
                    pos, pos + 1, std::memory_order_relaxed)) {
                const std::uint32_t value = cell.value;
                cell.seq.store(
                    pos + static_cast<std::uint32_t>(kSlots),
                    std::memory_order_release);
                return value;
            }
        } else if (dif < 0) {
            return 0;  // empty
        } else {
            pos = tail_.load(std::memory_order_relaxed);
        }
    }
}

void
WorkHintQueue::clear()
{
    while (pop() != 0) {
    }
}

}  // namespace detail
}  // namespace hoard
