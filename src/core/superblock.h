/**
 * @file
 * Superblocks (paper §3.1).
 *
 * A superblock is an S-byte, S-aligned chunk carved into equal-size
 * blocks of one size class.  Because every superblock is S-aligned,
 * `pointer -> superblock` is a mask — the reproduction's substitute for
 * the paper's per-block back-pointer, with zero per-block overhead.
 *
 * The header lives at the start of the chunk; blocks follow.  Free
 * blocks form a LIFO list threaded through their first word; blocks that
 * have never been allocated are handed out by a bump cursor so a fresh
 * superblock needs no list construction.
 *
 * Thread safety: all mutation happens under the owning heap's lock,
 * except the owner field itself, which is atomic because the free path
 * must read it before it can know which lock to take (paper §3.4's
 * ownership-change race).
 *
 * Huge allocations (> S/2) get a dedicated chunk with the same header so
 * the mask in free() works uniformly.
 */

#ifndef HOARD_CORE_SUPERBLOCK_H_
#define HOARD_CORE_SUPERBLOCK_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>

#include "common/failure.h"
#include "common/intrusive_list.h"
#include "common/mathutil.h"
#include "common/memutil.h"

namespace hoard {

/** Header + block-carving logic for one superblock. */
class Superblock
{
  public:
    /** Number of partial fullness bands; band index 0 is emptiest. */
    static constexpr int kFullnessBands = 8;

    /** Group index used for completely-full superblocks. */
    static constexpr int kFullGroup = kFullnessBands;

    /** Total number of group lists a heap keeps per size class. */
    static constexpr int kGroupCount = kFullnessBands + 1;

    /**
     * Formats @p memory (S-aligned, @p superblock_bytes long) as a
     * superblock of @p size_class with @p block_bytes blocks.
     */
    static Superblock*
    create(void* memory, std::size_t superblock_bytes, int size_class,
           std::uint32_t block_bytes, std::uint32_t arena = 0)
    {
        HOARD_DCHECK(detail::is_aligned(memory, superblock_bytes));
        auto* sb = new (memory) Superblock();
        sb->span_bytes_ = superblock_bytes;
        sb->arena_ = arena;
        sb->reformat(size_class, block_bytes);
        return sb;
    }

    /**
     * Formats @p memory as a dedicated superblock for one huge object of
     * @p user_bytes; @p total_bytes is the full mapped span.
     */
    static Superblock*
    create_huge(void* memory, std::size_t total_bytes,
                std::size_t user_bytes, std::uint32_t arena = 0)
    {
        auto* sb = new (memory) Superblock();
        sb->span_bytes_ = total_bytes;
        sb->arena_ = arena;
        sb->size_class_ = kHugeClass;
        sb->block_bytes_ = 0;
        sb->capacity_ = 1;
        sb->used_ = 1;
        sb->huge_user_bytes_ = user_bytes;
        return sb;
    }

    /**
     * Recovers the superblock containing @p p.  @p superblock_bytes must
     * match the allocator's S.  Checks the magic word, so handing a
     * foreign pointer to free() fails loudly instead of corrupting.
     */
    static Superblock*
    from_pointer(const void* p, std::size_t superblock_bytes)
    {
        auto addr = reinterpret_cast<std::uintptr_t>(p);
        auto* sb = reinterpret_cast<Superblock*>(
            detail::align_down(addr, superblock_bytes));
        if (sb->magic_ != kMagic)
            HOARD_FATAL("free of pointer %p not from this allocator", p);
        return sb;
    }

    /**
     * Like from_pointer(), but returns nullptr on a magic mismatch
     * instead of aborting — the hardened free path classifies and
     * reports the bad pointer itself (Config::on_bad_free).
     */
    static Superblock*
    from_pointer_checked(const void* p, std::size_t superblock_bytes)
    {
        auto addr = reinterpret_cast<std::uintptr_t>(p);
        auto* sb = reinterpret_cast<Superblock*>(
            detail::align_down(addr, superblock_bytes));
        return sb->magic_ == kMagic ? sb : nullptr;
    }

    /**
     * Re-carves an empty superblock for a (possibly different) size
     * class — how the global heap recycles fully-empty superblocks
     * across classes.  @pre empty().
     */
    void
    reformat(int size_class, std::uint32_t block_bytes)
    {
        HOARD_DCHECK(used_ == 0 || magic_ != kMagic);
        size_class_ = size_class;
        block_bytes_ = block_bytes;
        capacity_ = static_cast<std::uint32_t>(
            (span_bytes_ - header_bytes()) / block_bytes);
        HOARD_DCHECK(capacity_ >= 2);
        used_ = 0;
        bump_ = 0;
        free_list_ = nullptr;
        huge_user_bytes_ = 0;
        sampled_.store(0, std::memory_order_relaxed);
    }

    /** Takes a free block. @pre !full(). */
    void*
    allocate()
    {
        HOARD_DCHECK(!full());
        void* block;
        if (free_list_ != nullptr) {
            block = free_list_;
            free_list_ = *static_cast<void**>(block);
        } else {
            block = payload_begin() +
                    static_cast<std::size_t>(bump_) * block_bytes_;
            ++bump_;
        }
        ++used_;
        return block;
    }

    /**
     * Carves up to @p n free blocks in one pass, pushing each onto the
     * LIFO chain at @p *head (threaded through block first words — the
     * same format the thread magazines and remote-free stacks use, so
     * a batch moves between the three by pointer splice alone).
     * Returns the number carved; fewer than @p n only when the
     * superblock filled up.  Caller holds the owning heap's lock and
     * settles heap.in_use for the whole batch at once.
     */
    std::uint32_t
    allocate_batch(std::uint32_t n, void** head)
    {
        std::uint32_t got = 0;
        while (got < n && used_ < capacity_) {
            void* block;
            if (free_list_ != nullptr) {
                block = free_list_;
                free_list_ = *static_cast<void**>(block);
            } else {
                block = payload_begin() +
                        static_cast<std::size_t>(bump_) * block_bytes_;
                ++bump_;
            }
            ++used_;
            *static_cast<void**>(block) = *head;
            *head = block;
            ++got;
        }
        return got;
    }

    /**
     * Returns a block.  @p p may point anywhere inside the block (the
     * aligned-allocation path hands out interior pointers).
     */
    void
    deallocate(void* p)
    {
        deallocate_block(block_start(p));
    }

    /**
     * Returns a block already normalized to its start, skipping the
     * block_start() division — the free fast path and the bulk-return
     * chains only ever carry block starts.
     */
    void
    deallocate_block(void* block)
    {
        HOARD_DCHECK(block == block_start(block));
        HOARD_DCHECK(used_ > 0);
        *static_cast<void**>(block) = free_list_;
        free_list_ = block;
        --used_;
    }

    /** Start of the block containing @p p. */
    void*
    block_start(const void* p) const
    {
        auto addr = reinterpret_cast<std::uintptr_t>(p);
        auto base = reinterpret_cast<std::uintptr_t>(payload_begin());
        HOARD_DCHECK(addr >= base &&
                     addr < base + static_cast<std::size_t>(capacity_) *
                                       block_bytes_);
        std::size_t index = (addr - base) / block_bytes_;
        return reinterpret_cast<void*>(base + index * block_bytes_);
    }

    bool full() const { return used_ == capacity_; }
    bool empty() const { return used_ == 0; }
    std::uint32_t used() const { return used_; }
    std::uint32_t capacity() const { return capacity_; }
    std::uint32_t block_bytes() const { return block_bytes_; }
    int size_class() const { return size_class_; }
    std::size_t span_bytes() const { return span_bytes_; }

    bool huge() const { return size_class_ == kHugeClass; }
    std::size_t huge_user_bytes() const { return huge_user_bytes_; }

    /** Identifier of the allocator instance that formatted this span. */
    std::uint32_t arena() const { return arena_; }

    /// @name Heap-profiler sampled-block count.
    /// Number of profiler-sampled blocks currently live in this
    /// superblock.  The free path reads it from the header line it
    /// already touches, so the overwhelmingly common unsampled free
    /// skips the profiler's live-map probe (a guaranteed-cold cache
    /// line) entirely.  Relaxed suffices: the increment happens before
    /// allocate() returns the pointer, and any legal free of that
    /// pointer is ordered after the program's own handoff of it.
    /// @{
    bool
    has_sampled() const
    {
        return sampled_.load(std::memory_order_relaxed) != 0;
    }
    void sampled_inc() { sampled_.fetch_add(1, std::memory_order_relaxed); }
    void sampled_dec() { sampled_.fetch_sub(1, std::memory_order_relaxed); }
    /// @}

    /**
     * Head of the freed-block LIFO.  The hardened free path peeks at it
     * under the owning heap's lock: a block that is already the head of
     * the free list is a double free.
     */
    void* free_list_head() const { return free_list_; }

    /// @name Purge state (virtual-memory-first page layer).
    ///
    /// The purge pass decommits an *empty* superblock's payload pages
    /// while the span stays mapped and the header page stays committed,
    /// so the superblock remains discoverable (magic/owner/class intact)
    /// and revival is O(1): re-account the bytes and let the payload
    /// refault zeroed on first touch.  The freed-block LIFO threads
    /// through payload first words, so purging destroys it — the carve
    /// state is reset to never-carved (bump_ = 0, free_list_ = null),
    /// exactly the state allocate() already handles.
    /// @{

    /** Payload region a purge would decommit. */
    struct PurgeRegion
    {
        void* p = nullptr;
        std::size_t bytes = 0;
    };

    /**
     * Transitions an empty, unpurged superblock to purged: resets the
     * carve state and records the decommittable payload region (from
     * the first page boundary past the header to the span end).
     * Returns a zero region when the span has no whole page to give
     * back (then nothing was changed).  The caller performs the actual
     * provider purge and owns the accounting.
     * @pre empty() && !purged()
     */
    PurgeRegion
    prepare_purge(std::size_t page_bytes)
    {
        HOARD_DCHECK(used_ == 0);
        HOARD_DCHECK(purged_bytes_ == 0);
        std::size_t offset = detail::align_up(header_bytes(), page_bytes);
        if (offset >= span_bytes_)
            return PurgeRegion{};
        free_list_ = nullptr;
        bump_ = 0;
        purged_bytes_ = span_bytes_ - offset;
        return PurgeRegion{
            const_cast<char*>(reinterpret_cast<const char*>(this)) +
                offset,
            purged_bytes_};
    }

    /**
     * Clears the purged mark before the superblock re-enters service
     * (or is unmapped), returning the byte count the caller must move
     * from the purged gauge back to committed.
     */
    std::size_t
    revive()
    {
        std::size_t bytes = purged_bytes_;
        purged_bytes_ = 0;
        return bytes;
    }

    bool purged() const { return purged_bytes_ != 0; }
    std::size_t purged_bytes() const { return purged_bytes_; }

    /** Policy-time stamp of when this superblock went idle (retired to
        the reuse cache or went empty in a global bin); the purge pass
        ages against it. */
    void set_retire_tick(std::uint64_t tick) { retire_tick_ = tick; }
    std::uint64_t retire_tick() const { return retire_tick_; }

    /// @}

    /** Bytes of payload currently handed out. */
    std::size_t
    used_bytes() const
    {
        return huge() ? huge_user_bytes_
                      : static_cast<std::size_t>(used_) * block_bytes_;
    }

    /**
     * Fullness group for the heap's segregated lists: completely full
     * superblocks go to kFullGroup; partial ones to band
     * floor(used * kFullnessBands / capacity), so band 0 holds the
     * emptiest.
     */
    int
    fullness_group() const
    {
        if (full())
            return kFullGroup;
        return static_cast<int>(
            (static_cast<std::uint64_t>(used_) * kFullnessBands) /
            capacity_);
    }

    /** True iff at least fraction @p f of the blocks are free. */
    bool
    at_least_fraction_empty(double f) const
    {
        return static_cast<double>(capacity_ - used_) >=
               f * static_cast<double>(capacity_);
    }

    /// @name Owner heap (atomic: read racily by the free path).
    /// @{
    void*
    owner() const
    {
        return owner_.load(std::memory_order_acquire);
    }

    void
    set_owner(void* heap)
    {
        owner_.store(heap, std::memory_order_release);
    }
    /// @}

    /** First byte available for blocks. */
    char*
    payload_begin() const
    {
        return const_cast<char*>(reinterpret_cast<const char*>(this)) +
               header_bytes();
    }

    /** Usable payload given the header. */
    std::size_t payload_bytes() const { return span_bytes_ - header_bytes(); }

    /** Header size: one cache line multiple, keeps blocks 16-aligned. */
    static constexpr std::size_t
    header_bytes()
    {
        return detail::align_up(sizeof(Superblock),
                                detail::kCacheLineBytes);
    }

    /** Payload bytes for a given S (used to build the size-class table). */
    static constexpr std::size_t
    payload_bytes_for(std::size_t superblock_bytes)
    {
        return superblock_bytes - header_bytes();
    }

    /** Intrusive hook: which fullness-group list this superblock is on. */
    detail::ListNode list_hook;

    /**
     * Link used by the lock-free empty-superblock reuse cache
     * (core/superblock_cache.h).  Deliberately distinct from both
     * free_list_ (an empty superblock keeps its freed-block chain
     * intact so a same-class refetch skips the re-carve) and list_hook
     * (a cached superblock is on no fullness-group list).  Atomic
     * because a concurrent popper may read it while a pusher installs
     * it; the cache's head CAS publishes the store.
     */
    std::atomic<Superblock*> cache_next{nullptr};

  private:
    Superblock() = default;

    static constexpr std::uint32_t kMagic = 0x48524442;  // "HRDB"
    static constexpr int kHugeClass = -2;

    std::uint32_t magic_ = kMagic;
    int size_class_ = 0;
    std::uint32_t block_bytes_ = 0;
    std::uint32_t capacity_ = 0;
    std::uint32_t used_ = 0;
    std::uint32_t bump_ = 0;          ///< next never-allocated block index
    std::uint32_t arena_ = 0;         ///< owning allocator instance id
    void* free_list_ = nullptr;       ///< LIFO of freed blocks
    std::atomic<void*> owner_{nullptr};
    std::atomic<std::uint32_t> sampled_{0};  ///< live profiler samples
    std::size_t span_bytes_ = 0;
    std::size_t huge_user_bytes_ = 0;
    std::size_t purged_bytes_ = 0;    ///< payload bytes decommitted by purge
    std::uint64_t retire_tick_ = 0;   ///< policy time the span went idle
};

using SuperblockList =
    detail::IntrusiveList<Superblock, &Superblock::list_hook>;

}  // namespace hoard

#endif  // HOARD_CORE_SUPERBLOCK_H_
