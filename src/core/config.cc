#include "core/config.h"

#include "common/failure.h"
#include "common/mathutil.h"

namespace hoard {

void
Config::validate() const
{
    if (!detail::is_pow2(superblock_bytes) || superblock_bytes < 1024) {
        HOARD_FATAL("superblock_bytes (%zu) must be a power of two >= 1024",
                    superblock_bytes);
    }
    if (!(empty_fraction > 0.0 && empty_fraction < 1.0))
        HOARD_FATAL("empty_fraction (%f) must be in (0, 1)", empty_fraction);
    if (!(release_threshold >= empty_fraction &&
          release_threshold <= 1.0)) {
        HOARD_FATAL("release_threshold (%f) must be in"
                    " [empty_fraction, 1]",
                    release_threshold);
    }
    if (!(size_class_base > 1.0 && size_class_base <= 4.0)) {
        HOARD_FATAL("size_class_base (%f) must be in (1, 4]",
                    size_class_base);
    }
    if (min_block_bytes < 8 || min_block_bytes % 8 != 0) {
        HOARD_FATAL("min_block_bytes (%zu) must be a multiple of 8 >= 8",
                    min_block_bytes);
    }
    if (heap_count < 1 || heap_count > 4096)
        HOARD_FATAL("heap_count (%d) must be in [1, 4096]", heap_count);
    if (min_block_bytes >= superblock_bytes / 4) {
        HOARD_FATAL("min_block_bytes (%zu) too large for superblock (%zu)",
                    min_block_bytes, superblock_bytes);
    }
    if (global_fetch_batch < 1 || global_fetch_batch > 1024) {
        HOARD_FATAL("global_fetch_batch (%zu) must be in [1, 1024]",
                    global_fetch_batch);
    }
    if (thread_cache_batch > 0 &&
        thread_cache_batch > thread_cache_blocks) {
        HOARD_FATAL("thread_cache_batch (%u) must not exceed"
                    " thread_cache_blocks (%u)",
                    thread_cache_batch, thread_cache_blocks);
    }
    if (!detail::is_pow2(obs_ring_events) || obs_ring_events < 2) {
        HOARD_FATAL("obs_ring_events (%zu) must be a power of two >= 2",
                    obs_ring_events);
    }
    if (!detail::is_pow2(obs_sample_slots) || obs_sample_slots < 2) {
        HOARD_FATAL("obs_sample_slots (%zu) must be a power of two >= 2",
                    obs_sample_slots);
    }
    if (!detail::is_pow2(profile_site_slots) || profile_site_slots < 2) {
        HOARD_FATAL("profile_site_slots (%zu) must be a power of two >= 2",
                    profile_site_slots);
    }
    if (!detail::is_pow2(profile_live_slots) || profile_live_slots < 2) {
        HOARD_FATAL("profile_live_slots (%zu) must be a power of two >= 2",
                    profile_live_slots);
    }
    if (profile_max_frames < 1 || profile_max_frames > 64) {
        HOARD_FATAL("profile_max_frames (%d) must be in [1, 64]",
                    profile_max_frames);
    }
    if (latency_sample_period < 1) {
        HOARD_FATAL("latency_sample_period (%u) must be >= 1",
                    latency_sample_period);
    }
    if (purge_interval_ticks < 1) {
        HOARD_FATAL("purge_interval_ticks (%llu) must be >= 1",
                    static_cast<unsigned long long>(
                        purge_interval_ticks));
    }
    if (bg_interval_ticks < 1) {
        HOARD_FATAL("bg_interval_ticks (%llu) must be >= 1",
                    static_cast<unsigned long long>(bg_interval_ticks));
    }
    if (bg_drain_threshold < 1) {
        HOARD_FATAL("bg_drain_threshold (%u) must be >= 1",
                    bg_drain_threshold);
    }
}

}  // namespace hoard
