/**
 * @file
 * Tunable parameters of the Hoard allocator (paper §3).
 *
 * Defaults reproduce the paper's configuration: S = 8 KiB superblocks,
 * empty fraction f = 1/4, slack K = 0, geometric size classes with base
 * b = 1.2.  Every knob here is swept by an ablation bench (DESIGN.md §6).
 */

#ifndef HOARD_CORE_CONFIG_H_
#define HOARD_CORE_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <limits>

namespace hoard {

/** Allocator configuration; validate() is called at construction. */
struct Config
{
    /** Superblock size S in bytes; must be a power of two >= 1024. */
    std::size_t superblock_bytes = 8192;

    /**
     * Empty fraction f in (0, 1): a heap must keep
     * u_i >= (1 - f) * a_i (up to the K*S slack) or it releases a
     * superblock to the global heap.
     */
    double empty_fraction = 0.25;

    /**
     * Slack K in superblocks: u_i >= a_i - K*S is always tolerated.
     * K > 0 damps superblock bouncing: a heap whose active size classes
     * each hold one partial superblock naturally sits below the
     * (1-f) occupancy line, and with K = 0 it would shuttle superblocks
     * to and from the global heap on nearly every free/alloc pair.
     * K = 8 absorbs a typical spread of partial classes (mixed-size
     * workloads touch 10-25 classes) while keeping the blowup bound
     * O(1); the ABL-K bench maps the cliff.
     */
    std::size_t slack_superblocks = 8;

    /**
     * Fraction of a superblock that must be free before it may be
     * transferred to the global heap (the "victim" rule).  The paper's
     * Figure 3 transfers any superblock that is at least f empty;
     * implemented literally, a workload whose natural heap density
     * sits below (1-f) — e.g. mixed sizes spread over many classes —
     * is *pinned at the emptiness boundary*: every free transfers a
     * partial superblock and the next allocation fetches it straight
     * back, serializing all heaps on the global lock (the ABL-release
     * bench measures a ~4x scalability loss on the shbench mix, and
     * shows that any t < 1 still churns — sparse classes live
     * permanently in the emptiest band).  The default transfers only
     * *completely empty* superblocks, which is what the released Hoard
     * implementations do; the cost is that the O(1) blowup bound holds
     * per retained-superblock occupancy rather than by the paper's
     * 1/(1-f) argument (an adversary keeping every superblock one
     * block full evades it — the classic size-class fragmentation
     * bound applies instead).  Set t = empty_fraction for the
     * paper-literal mode, which the invariant property tests validate.
     * Must lie in [empty_fraction, 1].
     */
    double release_threshold = 1.0;

    /** Geometric size-class growth factor b (> 1). */
    double size_class_base = 1.2;

    /** Smallest block size in bytes (>= 8, multiple of 8). */
    std::size_t min_block_bytes = 8;

    /**
     * Number of per-processor heaps P (heap 0 is the global heap and is
     * additional).  Threads map to heap 1 + (tid mod P).
     */
    int heap_count = 16;

    /**
     * Completely-empty superblocks the global heap caches before
     * returning memory to the OS.  The paper's Hoard retains them; set a
     * finite limit to trade fragmentation for syscalls (ABL benches).
     */
    std::size_t empty_cache_limit = std::numeric_limits<std::size_t>::max();

    /**
     * Superblocks a cold per-processor heap may pull from its size
     * class's global bin in one fetch (>= 1).  A heap that misses
     * locally is usually about to miss again — its magazine refill
     * drains whatever it fetched — so batching amortizes the bin lock
     * and the transfer latency over several superblocks.  The cost is a
     * matching widening of the emptiness-invariant allowance: a heap
     * may now hold up to this many not-yet-used superblocks per active
     * size class (check_heap and HeapSnapshot::emptiness_ok account for
     * it), so the O(1) blowup bound gains a constant factor.  1 restores
     * the paper's one-superblock-per-miss behaviour; ABL-fetch sweeps
     * the axis.
     */
    std::size_t global_fetch_batch = 4;

    /**
     * Extension (not in the paper; the direction later allocators —
     * Hoard 3.x, tcmalloc — took): per-logical-thread block caches in
     * front of the heaps.  A freed block parks in the freeing thread's
     * cache and the next allocation of that class pops it without
     * touching any heap.  Value = blocks cached per size class per
     * thread slot; 0 disables (the default, keeping the measured system
     * the paper's).  Caches are bounded (this many blocks per class)
     * and flushed to the owning heaps on overflow, so blowup gains only
     * a constant.  ABL-cache quantifies the effect.
     */
    std::uint32_t thread_cache_blocks = 0;

    /**
     * Blocks moved per magazine refill/flush transfer (the N of the
     * batched fast path): a refill carves up to this many blocks under
     * one heap-lock acquisition, and an overflowing magazine returns
     * this many in one pass.  0 (the default) derives the batch as
     * max(1, thread_cache_blocks / 2) — half the cap, so a thread
     * alternating between allocation-heavy and free-heavy phases keeps
     * headroom in both directions.  Must not exceed
     * thread_cache_blocks; meaningless (and ignored) when caching is
     * off.  ABL-cache sweeps this axis.
     */
    std::uint32_t thread_cache_batch = 0;

    /**
     * Runtime switch for the observability layer (src/obs/): event
     * tracing into per-thread rings plus heap-lock contention
     * profiling.  OR-ed with the HOARD_OBS environment variable, so a
     * deployed binary can be traced without a rebuild.  Off by default:
     * the only hot-path residue is one predicted-not-taken branch (and
     * nothing at all when the HOARD_OBS build option is off).
     * Snapshots (take_snapshot) work regardless of this flag.
     */
    bool observability = false;

    /**
     * Events retained per ring shard when observability is on (the
     * recorder keeps EventRecorder::kShards rings and overwrites the
     * oldest events).  Power of two >= 2.
     */
    std::size_t obs_ring_events = 1024;

    /**
     * Minimum policy-time gap between time-series samples
     * (obs/timeseries.h): steady-clock nanoseconds under NativePolicy,
     * virtual cycles under SimPolicy.  0 (the default) disables the
     * sampler entirely — no ring is allocated and the allocation paths
     * keep only the usual observability branch.  Takes effect only
     * when observability is on.
     */
    std::uint64_t obs_sample_interval = 0;

    /**
     * Time-series samples retained (overwrite ring).  Power of two
     * >= 2.  Each slot preallocates heap_count + 1 u_i/a_i pairs.
     */
    std::size_t obs_sample_slots = 256;

    /**
     * Mean bytes between allocation samples for the heap profiler
     * (src/obs/heap_profiler.h), tcmalloc-style: each thread counts
     * allocated bytes down from an exponentially distributed threshold
     * with this mean, so every byte is equally likely to be sampled and
     * estimates are unbiased regardless of allocation size mix.  0 (the
     * default) disables the profiler — no table is allocated and the
     * fast path keeps a single null check (nothing at all when the
     * HOARD_PROFILER build option is off).  1 samples *every*
     * allocation (exact mode, used by the reconciliation tests).
     * OR-ed with the HOARD_PROFILE_RATE environment variable by the
     * facade, so a shimmed binary can be profiled without a rebuild.
     */
    std::size_t profile_sample_rate = 0;

    /**
     * Allocation-site table capacity (distinct sampled stacks).  Open
     * addressing, fixed size, power of two >= 2; when full, new sites
     * are dropped and counted.  2048 sites is ~0.5 MiB and far beyond
     * what real programs populate at the default sample rate.
     */
    std::size_t profile_site_slots = 2048;

    /**
     * Live-object side map capacity (sampled objects currently live).
     * Power of two >= 2.  At the default rate one slot tracks ~512 KiB
     * of live heap, so 16384 slots cover ~8 GiB; insert failures are
     * counted and roll the site's live gauges back so attribution
     * stays exact for what the map does track.
     */
    std::size_t profile_live_slots = 16384;

    /**
     * Backtrace frames captured per sample (1..64).  Frame-pointer
     * walk under NativePolicy; under SimPolicy the "backtrace" is a
     * deterministic {site token, fiber id} pair and depth is moot.
     */
    int profile_max_frames = 24;

    /**
     * Runtime switch for the tail-latency histograms (src/obs/
     * latency.h): per-path log-linear cycle histograms with
     * deepest-stage attribution on the slow paths.  OR-ed with the
     * HOARD_LATENCY environment variable by the facade.  Off by
     * default: the hot-path residue is one null check on the same
     * read-mostly cache line as the profiler pointer (nothing at all
     * when the HOARD_OBS build option is off).
     */
    bool latency_histograms = false;

    /**
     * When the latency histograms are armed, time one in this many
     * *fast-path* operations per thread (magazine hit, magazine park,
     * owner-locked free).  Slow-path operations (refill and deeper,
     * spill, remote push, huge) are always timed — they are rare and
     * they are the tail.  1 times every operation (exact mode: path
     * counts reconcile with the allocator's op counters, used by the
     * integration tests and required for byte-identical sim replay);
     * the default keeps the armed overhead inside the
     * micro_obs_overhead 5% gate.  Must be >= 1.
     */
    std::uint32_t latency_sample_period = 256;

    /**
     * Timed operations at or above this many cycles emit an outlier
     * record: a latency_outlier trace event (when tracing is on) plus
     * an entry in the collector's outlier ring carrying the deepest
     * stage reached and a frame-pointer backtrace.  0 (the default)
     * disables outlier capture.  Only operations that were timed are
     * considered, so with the default sample period a fast-path
     * outlier can be missed; slow-path operations — where real
     * outliers live — are always timed.
     */
    std::uint64_t latency_outlier_cycles = 0;

    /**
     * Age threshold for the purge pass, in policy time (steady-clock
     * nanoseconds under NativePolicy, virtual cycles under SimPolicy):
     * an empty superblock idle in the reuse cache or a global band-0
     * bin for at least this long has its payload pages decommitted
     * (madvise) while the span stays mapped and formatted for O(1)
     * revival.  0 (the default) means age alone never triggers a
     * purge.  The purge pass is armed when this or rss_target_bytes is
     * nonzero; HOARD_PURGE_AGE under the facade.
     */
    std::uint64_t purge_age_ticks = 0;

    /**
     * Committed-bytes (RSS) target for the purge pass: while
     * stats.committed_bytes exceeds this, the pass decommits idle
     * superblocks regardless of age, oldest first.  0 (the default)
     * disables targeting.  A best-effort pressure valve, not a hard
     * cap — memory the program is actively using is never purged.
     * HOARD_RSS_TARGET under the facade.
     */
    std::size_t rss_target_bytes = 0;

    /**
     * Minimum policy-time gap between automatic purge passes (the
     * deallocate-tail check rides the same cadence machinery as the
     * time-series sampler).  Only meaningful when the pass is armed.
     * Must be >= 1.
     */
    std::uint64_t purge_interval_ticks = 1 << 20;

    /**
     * Arm the asynchronous background engine (src/core/background.h):
     * a helper worker — a native thread under NativePolicy, a
     * cooperative fiber body under SimPolicy — that replenishes global
     * bins below their low watermark, settles remote-free queues whose
     * depth hint crosses bg_drain_threshold, pre-commits spans in the
     * page provider, and runs the purge pass on its own cadence
     * (removing the countdown election from the deallocate tail).
     * Off by default: the foreground paths keep only the relaxed
     * watermark stores they already perform, and purge election is
     * folded into the existing armed flag, so the disarmed hot path
     * is unchanged (micro_obs_overhead gates it).  HOARD_BG under the
     * facade.
     */
    bool background_engine = false;

    /**
     * Policy-time gap between background-worker wakeups (steady-clock
     * nanoseconds under NativePolicy, virtual cycles under SimPolicy).
     * Each wakeup runs one full pass: hint drain, bin-watermark scan,
     * remote-queue settle, provider pre-commit, purge cadence check.
     * Must be >= 1.  HOARD_BG_INTERVAL under the facade.
     */
    std::uint64_t bg_interval_ticks = 1 << 20;

    /**
     * Low watermark for the background bin-refill job: a size class
     * whose global bin holds fewer than this many superblocks *and*
     * has missed a fetch since the last pass is replenished up to the
     * watermark with freshly formatted superblocks, so foreground
     * fetch_from_global hits warm band-0 entries instead of falling
     * through to fresh_map.  0 disables the refill job.
     */
    std::uint32_t bg_refill_watermark = 2;

    /**
     * Remote-free queue depth (per heap, approximate — maintained with
     * relaxed stores on the push path) at which the background worker
     * settles the queue, acquiring the owner lock only when its
     * is_locked_hint probe says it is free.  Must be >= 1.
     */
    std::uint32_t bg_drain_threshold = 16;

    /**
     * Superblock spans the background worker keeps pre-committed in
     * the page provider's recycle stacks, so a foreground fresh-map
     * miss pops a warm span instead of paying mprotect plus the first
     * soft fault.  0 disables the pre-commit job.
     */
    std::uint32_t bg_precommit_spans = 4;

    /**
     * What deallocate() does when the hardened free path rejects a
     * pointer (wild, foreign-arena, interior, or double free).
     */
    enum class BadFreePolicy
    {
        /** Abort with a diagnostic naming the pointer and the defect. */
        fatal,

        /**
         * Count it (stats.bad_free_*), record a trace event, and leak
         * the block — graceful degradation for production processes
         * that prefer a slow leak to an abort.
         */
        warn,
    };

    /**
     * Validate pointers handed to deallocate() before touching any heap
     * structure: superblock magic, owning-arena id, block alignment
     * against the size class, and a bounded double-free probe.  The
     * check is a handful of reads on memory free() touches anyway
     * (micro_obs_overhead gates the cost below 2%); disabling it
     * restores the trusting paper-mode free path, where a hostile
     * pointer corrupts heaps instead of being reported.  Pointers
     * parked in thread magazines are trusted either way — the magazine
     * fast path stays lock- and check-free.
     */
    bool hardened_free = true;

    /** Policy applied when the hardened free path rejects a pointer. */
    BadFreePolicy on_bad_free = BadFreePolicy::fatal;

    /** Aborts with HOARD_FATAL on any out-of-range parameter. */
    void validate() const;
};

}  // namespace hoard

#endif  // HOARD_CORE_CONFIG_H_
